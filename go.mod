module flex

go 1.22
