package flex

// The benchmark harness regenerates every figure and in-text result of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each
// Benchmark prints the same rows/series the paper reports, once, and then
// times the underlying computation. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers come from this repository's simulators rather than the
// authors' production fleet; the shape — who wins, by what factor, where
// crossovers fall — is the reproduction target (see EXPERIMENTS.md).

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"flex/internal/stats"
)

var printOnce sync.Map

// printHeader emits a section banner once per benchmark name.
func printHeader(name, caption string) bool {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return false
	}
	fmt.Printf("\n=== %s — %s ===\n", name, caption)
	return true
}

// ---------------------------------------------------------------------------
// Figure 3: workload distribution across regions.

func BenchmarkFigure3_WorkloadDistribution(b *testing.B) {
	first := printHeader("Figure 3", "workload category distribution across regions (paper avg: 13/56/31)")
	for i := 0; i < b.N; i++ {
		regions := Figure3Regions()
		if first {
			for _, r := range regions {
				fmt.Printf("  %-10s software-redundant %4.0f%%  cap-able %4.0f%%  non-cap-able %4.0f%%\n",
					r.Region, r.Shares[0]*100, r.Shares[1]*100, r.Shares[2]*100)
			}
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 6: UPS overload tolerance curves.

func BenchmarkFigure6_UPSToleranceCurve(b *testing.B) {
	first := printHeader("Figure 6", "UPS overload tolerance (paper anchor: 10s at 133% end-of-life)")
	for i := 0; i < b.N; i++ {
		eol, bol := EndOfLifeTripCurve(), BeginOfLifeTripCurve()
		if first {
			fmt.Printf("  %-8s %-14s %s\n", "load", "end-of-life", "begin-of-life")
			for _, f := range []float64{1.05, 1.10, 1.20, 4.0 / 3.0, 1.50} {
				fmt.Printf("  %5.0f%%   %-14v %v\n", f*100, eol.Tolerance(f), bol.Tolerance(f))
			}
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 9 and 10: placement policies. The placements are computed once
// and shared between the two benchmarks.

type placementRow struct {
	name      string
	stranded  stats.Box
	imbalance stats.Box
}

var (
	fig9Once sync.Once
	fig9Rows []placementRow
	fig9Err  error
)

func figure9Rows() ([]placementRow, error) {
	fig9Once.Do(func() {
		room := PaperRoom()
		base, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 1)
		if err != nil {
			fig9Err = err
			return
		}
		traces := make([][]Deployment, 10)
		for i := range traces {
			traces[i] = ShuffleTrace(base, int64(i))
		}
		short, long, oracle := FlexOfflineShort(), FlexOfflineLong(), FlexOfflineOracle()
		short.MaxNodes, long.MaxNodes, oracle.MaxNodes = 400, 800, 2000
		policies := []Policy{
			RandomPolicy{Seed: 1},
			BalancedRoundRobinPolicy{},
			short, long, oracle,
		}
		for _, pol := range policies {
			var stranded, imbalance []float64
			for _, tr := range traces {
				pl, err := pol.Place(context.Background(), room, tr)
				if err != nil {
					fig9Err = err
					return
				}
				if err := pl.Validate(); err != nil {
					fig9Err = fmt.Errorf("%s: unsafe placement: %w", pol.Name(), err)
					return
				}
				stranded = append(stranded, pl.StrandedFraction()*100)
				imbalance = append(imbalance, pl.ThrottlingImbalance()*100)
			}
			fig9Rows = append(fig9Rows, placementRow{
				name:      pol.Name(),
				stranded:  stats.BoxOf(stranded),
				imbalance: stats.BoxOf(imbalance),
			})
		}
	})
	return fig9Rows, fig9Err
}

func BenchmarkFigure9_StrandedPower(b *testing.B) {
	first := printHeader("Figure 9", "stranded power by placement policy, 10 shuffled traces (% of provisioned)")
	for i := 0; i < b.N; i++ {
		rows, err := figure9Rows()
		if err != nil {
			b.Fatal(err)
		}
		if first {
			for _, r := range rows {
				fmt.Printf("  %-22s %s\n", r.name, r.stranded)
			}
			first = false
		}
	}
}

func BenchmarkFigure10_ThrottlingImbalance(b *testing.B) {
	first := printHeader("Figure 10", "throttling imbalance by placement policy (max−min %)")
	for i := 0; i < b.N; i++ {
		rows, err := figure9Rows()
		if err != nil {
			b.Fatal(err)
		}
		if first {
			for _, r := range rows {
				fmt.Printf("  %-22s %s\n", r.name, r.imbalance)
			}
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// §V-A sensitivity: deployment sizes.

func BenchmarkSectionVA_DeploymentSizes(b *testing.B) {
	first := printHeader("§V-A deployment sizes",
		"Flex-Offline-Short median stranded power vs max deployment size (paper: 10-rack max ≈ half of 20-rack max)")
	for i := 0; i < b.N; i++ {
		room := PaperRoom()
		for _, maxRacks := range []int{20, 10, 5} {
			cfg := DefaultTraceConfig(room.Topo.ProvisionedPower())
			cfg.MaxDeploymentRacks = maxRacks
			var stranded, imbalance []float64
			for s := int64(0); s < 5; s++ {
				base, err := GenerateTrace(cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				tr := ShuffleTrace(base, s)
				pol := FlexOfflineShort()
				pol.MaxNodes = 300
				pl, err := pol.Place(context.Background(), room, tr)
				if err != nil {
					b.Fatal(err)
				}
				stranded = append(stranded, pl.StrandedFraction()*100)
				imbalance = append(imbalance, pl.ThrottlingImbalance()*100)
			}
			if first {
				fmt.Printf("  max %2d racks: stranded med %.2f%%  imbalance med %.2f%%\n",
					maxRacks, stats.BoxOf(stranded).Median, stats.BoxOf(imbalance).Median)
			}
		}
		first = false
	}
}

// ---------------------------------------------------------------------------
// §V-A sensitivity: software-redundant share.

func BenchmarkSectionVA_SoftwareRedundantFraction(b *testing.B) {
	first := printHeader("§V-A software-redundant share",
		"Flex-Offline-Long median stranded power vs SR share (paper: 0%→15%, 5%→4%, 10%→3%, then ±1%)")
	for i := 0; i < b.N; i++ {
		room := PaperRoom()
		for _, sr := range []float64{0, 0.05, 0.10, 0.13, 0.20} {
			cfg := DefaultTraceConfig(room.Topo.ProvisionedPower())
			rest := 1 - sr
			// Keep the paper's 31% non-redundant non-cap-able share fixed
			// and give the remainder to cap-able (the paper's sensitivity
			// study holds non-cap-able at 31%).
			cfg.CategoryShares = [3]float64{sr, rest - 0.31, 0.31}
			var stranded []float64
			for s := int64(0); s < 5; s++ {
				base, err := GenerateTrace(cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				tr := ShuffleTrace(base, s)
				pol := FlexOfflineLong()
				pol.MaxNodes = 500
				pl, err := pol.Place(context.Background(), room, tr)
				if err != nil {
					b.Fatal(err)
				}
				stranded = append(stranded, pl.StrandedFraction()*100)
			}
			if first {
				fmt.Printf("  SR share %4.0f%%: stranded med %.2f%%\n",
					sr*100, stats.BoxOf(stranded).Median)
			}
		}
		first = false
	}
}

// ---------------------------------------------------------------------------
// Figure 11: the impact-function scenario library.

func BenchmarkFigure11_ImpactScenarios(b *testing.B) {
	first := printHeader("Figure 11", "impact-function scenarios (impact at 0/25/50/75/100% affected racks)")
	for i := 0; i < b.N; i++ {
		scenarios := Figure11Scenarios()
		if first {
			for _, sc := range scenarios {
				sr := sc.ByCategory[SoftwareRedundant]
				cap := sc.ByCategory[NonRedundantCapable]
				fmt.Printf("  %-12s SR:[", sc.Name)
				for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
					fmt.Printf(" %.2f", sr.At(f))
				}
				fmt.Printf(" ]  cap-able:[")
				for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
					fmt.Printf(" %.2f", cap.At(f))
				}
				fmt.Printf(" ]\n")
			}
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 12: Flex-Online runtime decisions.

func BenchmarkFigure12_RuntimeDecisions(b *testing.B) {
	first := printHeader("Figure 12",
		"% racks impacted / SR shut down / cap-able throttled vs utilization, mean±std over UPS failures")
	room := PaperRoom()
	trace, err := GenerateTrace(DefaultTraceConfig(room.Topo.ProvisionedPower()), 1)
	if err != nil {
		b.Fatal(err)
	}
	pol := FlexOfflineShort()
	pol.MaxNodes = 300
	pl, err := pol.Place(context.Background(), room, trace)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sc := range Figure11Scenarios() {
			pts, err := RunFigure12(Figure12Config{
				Placement:         pl,
				Scenario:          sc,
				Utilizations:      []float64{0.74, 0.78, 0.82, 0.85},
				SamplesPerFailure: 2,
				Seed:              1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if first {
				fmt.Printf("  %s:\n", sc.Name)
				for _, p := range pts {
					fmt.Printf("    util %.2f: impacted %-12s shut %-12s throttled %s\n",
						p.Utilization, p.Impacted, p.ShutDown, p.Throttled)
				}
			}
		}
		first = false
	}
}

// ---------------------------------------------------------------------------
// Figure 13: end-to-end emulation.

func BenchmarkFigure13_EndToEndEmulation(b *testing.B) {
	first := printHeader("Figure 13",
		"end-to-end emulation: 4.8MW room, 80% util, UPS failure and recovery (paper: 64% SR shut, 51% throttled, ~2s actions)")
	for i := 0; i < b.N; i++ {
		sc := ScenarioRealistic1()
		res, err := RunEmulation(EmulationConfig{
			Scenario:  &sc,
			Tick:      time.Second,
			FailAt:    6 * time.Minute,
			RecoverAt: 10 * time.Minute,
			Duration:  14 * time.Minute,
			Seed:      1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Outage {
			b.Fatal("emulation cascaded")
		}
		if first {
			for _, p := range res.Series {
				if p.T%(2*time.Minute) != 0 {
					continue
				}
				fmt.Printf("  t=%-5v %-9s UPS=[%v %v %v %v]\n",
					p.T, p.Stage, p.UPSPower[0], p.UPSPower[1], p.UPSPower[2], p.UPSPower[3])
			}
			fmt.Printf("  SR shut %.0f%% (64%%), cap-able throttled %.0f%% (51%%), shave latency %v (≈2s), outage=%v\n",
				res.SRShutdownFrac*100, res.CapThrottledFrac*100, res.ShaveLatency, res.Outage)
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// §V-C: throttling impact on the TPC-E-like workload.

func BenchmarkSectionVC_ThrottlingLatency(b *testing.B) {
	first := printHeader("§V-C latency",
		"TPC-E-like p95 latency increase on throttled racks (paper: +4.7% average, +14% worst)")
	for i := 0; i < b.N; i++ {
		sc := ScenarioRealistic1()
		res, err := RunEmulation(EmulationConfig{
			Scenario:  &sc,
			Tick:      time.Second,
			FailAt:    4 * time.Minute,
			RecoverAt: 8 * time.Minute,
			Duration:  10 * time.Minute,
			Seed:      3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if first {
			fmt.Printf("  p95 increase: %+.1f%%  worst-case: %+.1f%%\n",
				res.P95IncreasePct, res.WorstIncreasePct)
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// §III: feasibility analysis.

func BenchmarkSectionIII_Feasibility(b *testing.B) {
	first := printHeader("§III feasibility",
		"joint probability of maintenance × overdraw (paper: ≥4 nines no-action, ≈0.005% SR shutdown)")
	for i := 0; i < b.N; i++ {
		a, err := AnalyzeFeasibility(DefaultFeasibilityParams())
		if err != nil {
			b.Fatal(err)
		}
		if first {
			fmt.Printf("  action threshold %.0f%%, shutdown threshold %.1f%%\n",
				a.ActionThreshold*100, a.ShutdownThreshold*100)
			fmt.Printf("  no-action availability %.5f%% (%.1f nines); P(SR shutdown) %.4f%%; SR %.1f nines; non-redundant %.0f nines\n",
				a.NoActionAvailability*100, a.NoActionNines, a.ProbSRShutdown*100, a.SRNines, a.NonRedundantNines)
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// §I: construction-cost savings.

func BenchmarkSectionI_CostSavings(b *testing.B) {
	first := printHeader("§I savings",
		"128MW site, 4N/3 (paper: +33% servers; $211M @$5/W, $422M @$10/W)")
	for i := 0; i < b.N; i++ {
		for _, dpw := range []float64{5, 10} {
			s, err := ComputeSavings(Redundancy{X: 4, Y: 3}, 128*MW, dpw)
			if err != nil {
				b.Fatal(err)
			}
			if first {
				fmt.Printf("  $%2.0f/W: +%.1f%% servers → $%.0fM\n",
					dpw, s.ExtraServerFraction*100, s.Dollars/1e6)
			}
		}
		first = false
	}
}

// ---------------------------------------------------------------------------
// §IV-C/§VI: end-to-end latency budget.

func BenchmarkSectionVI_EndToEndLatency(b *testing.B) {
	first := printHeader("§VI latency",
		"failure → detection → power-under-capacity vs the 10s budget (paper prod: ≤3.5s p99.9)")
	for i := 0; i < b.N; i++ {
		var detect, shave []float64
		for seed := int64(1); seed <= 3; seed++ {
			sc := ScenarioRealistic1()
			res, err := RunEmulation(EmulationConfig{
				Scenario:  &sc,
				Tick:      500 * time.Millisecond,
				FailAt:    3 * time.Minute,
				RecoverAt: 5 * time.Minute,
				Duration:  6 * time.Minute,
				Seed:      seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			detect = append(detect, res.DetectionLatency.Seconds())
			shave = append(shave, res.ShaveLatency.Seconds())
		}
		if first {
			fmt.Printf("  detection latency: max %.1fs; failure→shaved: max %.1fs (budget %v)\n",
				stats.BoxOf(detect).Max, stats.BoxOf(shave).Max, FlexLatencyBudget)
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 8: production impact-function examples.

func BenchmarkFigure8_ImpactFunctions(b *testing.B) {
	first := printHeader("Figure 8", "example impact functions of three Microsoft services")
	for i := 0; i < b.N; i++ {
		fns := []ImpactFunction{Figure8A(), Figure8B(), Figure8C()}
		if first {
			labels := []string{
				"A: non-redundant cap-able (VM service)",
				"B: software-redundant stateless",
				"C: software-redundant stateful",
			}
			for k, f := range fns {
				fmt.Printf("  %-40s [", labels[k])
				for _, x := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
					fmt.Printf(" %.2f", f.At(x))
				}
				fmt.Printf(" ] at 0/25/50/75/90/100%%\n")
			}
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// §III Monte Carlo: the stochastic check on the analytic feasibility model.

func BenchmarkSectionIII_MonteCarlo(b *testing.B) {
	first := printHeader("§III Monte Carlo",
		"simulated years of operation vs the analytic model (paper: ≥4 nines, ≈0.005% SR shutdown)")
	for i := 0; i < b.N; i++ {
		p := DefaultMonteCarloParams()
		p.Years = 300
		res, err := SimulateYears(p)
		if err != nil {
			b.Fatal(err)
		}
		if first {
			fmt.Printf("  %d simulated years: maintenance %.1f h/yr, action hours %.2f/yr\n",
				p.Years, float64(res.MaintenanceHours)/float64(p.Years),
				float64(res.ActionHours)/float64(p.Years))
			fmt.Printf("  no-action availability %.5f%% (%.1f nines); SR availability %.5f%% (%.1f nines)\n",
				res.NoActionAvailability*100, res.NoActionNines,
				res.SRAvailability*100, res.SRNines)
			first = false
		}
	}
}

// ---------------------------------------------------------------------------
// §VI charge model: differentiated pricing funded by the capacity gain.

func BenchmarkSectionVI_ChargeModel(b *testing.B) {
	first := printHeader("§VI charge model",
		"price discounts that incentivize flexible workloads, funded by the Flex capacity gain")
	for i := 0; i < b.N; i++ {
		a, err := AnalyzeFeasibility(DefaultFeasibilityParams())
		if err != nil {
			b.Fatal(err)
		}
		m := DefaultChargeModel()
		if first {
			for _, cat := range []Category{SoftwareRedundant, NonRedundantCapable, NonRedundantNonCapable} {
				d, err := m.Discount(cat, a)
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("  %-28v discount %.2f%%\n", cat, d*100)
			}
			s, _ := ComputeSavings(Redundancy{X: 4, Y: 3}, 128*MW, 5)
			frac, err := m.FundedBy(map[Category]float64{
				SoftwareRedundant: 0.13, NonRedundantCapable: 0.56, NonRedundantNonCapable: 0.31,
			}, a, s)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("  power-weighted discounts consume %.1f%% of the capacity gain\n", frac*100)
			first = false
		}
	}
}
