package flex

import (
	"context"
	"io"

	"flex/internal/obs/recorder"
	"flex/internal/replay"
)

// Flight recorder: the causally-ordered event log every subsystem can
// emit into (telemetry, consensus, planning, actuation), and the
// deterministic episode replay built on it.
type (
	// FlightRecorder is the bounded in-memory event ring (plus optional
	// JSONL sink). Hand one to EmulationConfig.Recorder, PipelineConfig.
	// Recorder, or the controller/rackmgr configs.
	FlightRecorder = recorder.Recorder
	// FlightEvent is one recorded event.
	FlightEvent = recorder.Event
	// FlightEventType enumerates the event taxonomy.
	FlightEventType = recorder.Type
	// FlightFilter selects events (episode, type, actor, seq range …).
	FlightFilter = recorder.Filter
	// FlightSink persists events as length-prefixed JSONL.
	FlightSink = recorder.Sink
	// ReplayHeader is the episode-log preamble pinning room, scenario and
	// managed racks.
	ReplayHeader = replay.Header
	// ReplayReport is the recorded-vs-replayed decision diff.
	ReplayReport = replay.Report
)

// NewFlightRecorder creates a flight recorder retaining the last capacity
// events (default 8192 when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder { return recorder.New(capacity) }

// NewFlightSink wraps w as a length-prefixed JSONL event sink.
func NewFlightSink(w io.Writer) *FlightSink { return recorder.NewSink(w) }

// ReadFlightEvents parses a length-prefixed JSONL event log.
func ReadFlightEvents(r io.Reader) ([]FlightEvent, error) { return recorder.ReadEvents(r) }

// ReplayEvents re-drives every recorded planning pass of an episode log
// and diffs the replayed decisions against the recorded ones, without an
// external cancellation point.
//
// Deprecated: use ReplayEventsContext.
func ReplayEvents(events []FlightEvent) (*ReplayReport, error) {
	//flexlint:ignore ctxflow deprecated ctx-less facade shorthand; live callers use ReplayEventsContext
	return replay.Replay(context.Background(), events)
}

// ReplayEventsContext re-drives every recorded planning pass of an
// episode log under ctx and diffs the replayed decisions against the
// recorded ones.
func ReplayEventsContext(ctx context.Context, events []FlightEvent) (*ReplayReport, error) {
	return replay.Replay(ctx, events)
}
