// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixtures themselves,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under <testdata>/src/<importpath>/ and marks each line
// where a diagnostic is expected with a trailing comment:
//
//	now := time.Now() // want `use the injected clock`
//
// The backquoted (or double-quoted) argument is a regular expression that
// must match the diagnostic's message. Several expectations may share one
// line: // want `first` `second`. Lines without a want comment must
// produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"flex/internal/analysis"
)

// TestingT is the subset of *testing.T the harness uses.
type TestingT interface {
	Helper()
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
}

var _ TestingT = (*testing.T)(nil)

// TestData returns the analyzer package's testdata directory.
func TestData(t TestingT) string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return dir
}

// expectation is one want entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture packages from testdata/src/<path> — together
// with every fixture package they transitively import — applies the
// analyzer to all of them in one interprocedural run (shared call graph
// and fact store, dependency order), and reports mismatches between
// produced and expected diagnostics on t. Want comments are honored in
// imported fixture packages too, so a multi-package fixture can assert
// diagnostics on both sides of a fact export/import boundary.
func Run(t TestingT, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.IncludeTests = true
	src := filepath.Join(testdata, "src")
	// Register every fixture directory so fixtures may import each other.
	registered := make(map[string]bool)
	err = filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(src, path)
				if err != nil {
					return err
				}
				importPath := filepath.ToSlash(rel)
				loader.RegisterDir(importPath, path)
				registered[importPath] = true
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("analysistest: scanning %s: %v", src, err)
	}

	var pkgs []*analysis.Package
	seen := make(map[string]bool)
	var add func(path string)
	add = func(path string) {
		if seen[path] {
			return
		}
		seen[path] = true
		pkg, err := loader.LoadImport(path)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", path, err)
		}
		for _, imp := range pkg.Types.Imports() {
			if registered[imp.Path()] {
				add(imp.Path())
			}
		}
		pkgs = append(pkgs, pkg)
	}
	for _, path := range paths {
		add(path)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		w, err := collectWants(loader.Fset, pkg)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		wants = append(wants, w...)
	}
	findings, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	for _, f := range findings {
		pos := f.Position(loader.Fset)
		if w := match(wants, pos, f.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// match finds the first unmatched expectation on the diagnostic's line
// whose pattern matches, and marks it used.
func match(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.pattern.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}

// wantRE pulls the quoted patterns out of a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// collectWants parses every "// want ..." comment in the package.
func collectWants(fset *token.FileSet, pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}
