// Package ctxflow guards the ctx-first API discipline that bounds plan
// latency: a context.Context carrying the caller's budget must flow,
// unbroken, from the caller into every budgeted operation
// (SolveContext, PlanContext, …). A context.Background() spliced into
// the middle of that chain silently discards the budget — the solver
// then runs unbounded inside the 10-second battery window the paper's
// safety argument depends on.
//
// The analyzer computes, via the fact store, the set of context sinks:
// seed sinks are exported functions named *Context whose first
// parameter is a context.Context (the repo's ctx-first convention), and
// the set closes over functions that forward their own ctx parameter to
// a known sink (so placement.FlexOffline.Place, which hands its ctx to
// the MILP solver, is a sink too). It reports:
//
//   - context.Background()/context.TODO() passed to a sink from a
//     function that has no context parameter — the caller's budget is
//     unrecoverably dropped; the function must accept a ctx.
//   - context.Background()/context.TODO() anywhere in a function that
//     already has a context parameter — thread the parameter instead.
//   - time.Sleep statically reachable from a seed sink (whole-program
//     pass) — a budgeted path blocking without consulting the context.
//
// package main (the CLI edge, where creating the root context is
// correct) and _test.go files are exempt.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"flex/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid dropping the caller's context on budgeted paths\n\n" +
		"context.Background()/TODO() spliced into a chain that reaches\n" +
		"SolveContext/PlanContext discards the plan budget; functions on\n" +
		"that chain must accept and thread the caller's ctx.",
	Run:    run,
	Finish: finish,
}

// sinkFact marks a function that feeds its context into a budgeted
// operation: a seed sink (exported *Context function) or any function
// forwarding its ctx parameter to a known sink.
type sinkFact struct{}

func (*sinkFact) AFact() {}

func isCtxType(t types.Type) bool { return t.String() == "context.Context" }

// seedSink reports whether fn follows the repo's ctx-first sink
// convention: exported, named *Context, first parameter context.Context.
func seedSink(fn *types.Func) bool {
	if !fn.Exported() || !strings.HasSuffix(fn.Name(), "Context") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isCtxType(sig.Params().At(0).Type())
}

// backgroundCall returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), else "".
func backgroundCall(info *types.Info, call *ast.CallExpr) string {
	switch analysis.PkgFunc(info, call) {
	case "context.Background":
		return "Background"
	case "context.TODO":
		return "TODO"
	}
	return ""
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnDecl{obj, fd})
			}
		}
	}

	// Seed sinks, then close over ctx-forwarding functions. Imported
	// packages' facts already exist (dependency order); the fixpoint
	// handles same-package chains in any declaration order.
	for _, fn := range fns {
		if seedSink(fn.obj) {
			pass.ExportObjectFact(fn.obj, &sinkFact{})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			var have sinkFact
			if pass.ImportObjectFact(fn.obj, &have) {
				continue
			}
			params := ctxParams(pass.TypesInfo, fn.decl)
			if len(params) == 0 {
				continue
			}
			if forwardsToSink(pass, fn.decl, params) {
				pass.ExportObjectFact(fn.obj, &sinkFact{})
				changed = true
			}
		}
	}

	for _, fn := range fns {
		params := ctxParams(pass.TypesInfo, fn.decl)
		if len(params) > 0 {
			// The function already has a budget-carrying ctx; a fresh
			// Background/TODO anywhere in it severs the chain.
			ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := backgroundCall(pass.TypesInfo, call); name != "" {
					pass.Reportf(call.Pos(), "context.%s() in a function that already has a context parameter: thread %s instead so the plan budget is preserved", name, params[0].Name())
				}
				return true
			})
			continue
		}
		// Ctx-less function: flag Background/TODO handed to a sink.
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.StaticCallee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			var fact sinkFact
			if !pass.ImportObjectFact(callee, &fact) {
				return true
			}
			for _, arg := range call.Args {
				argCall, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				if name := backgroundCall(pass.TypesInfo, argCall); name != "" {
					pass.Reportf(argCall.Pos(), "context.%s() passed to %s from a function with no context parameter: accept a ctx from the caller so the plan budget is not dropped", name, callee.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// ctxParams returns the declared context.Context parameter objects of fd.
func ctxParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isCtxType(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// forwardsToSink reports whether fd passes one of its ctx parameters as
// an argument in a static call to a fact-carrying sink.
func forwardsToSink(pass *analysis.Pass, fd *ast.FuncDecl, params []*types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.StaticCallee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		var fact sinkFact
		if !pass.ImportObjectFact(callee, &fact) {
			return true
		}
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			use, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			for _, p := range params {
				if use == p {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// finish is the whole-program pass: any time.Sleep statically reachable
// from a seed sink blocks a budgeted path without consulting the
// context.
func finish(mp *analysis.ModulePass) error {
	var roots []*analysis.CallNode
	for _, n := range mp.Graph.Nodes() {
		if seedSink(n.Func) {
			roots = append(roots, n)
		}
	}
	reached := mp.Graph.Reachable(roots, false)
	for _, n := range mp.Graph.Nodes() {
		if _, ok := reached[n]; !ok {
			continue
		}
		if n.Pkg.Types.Name() == "main" || exemptClock(n.Pkg.Path) {
			continue
		}
		if strings.HasSuffix(mp.Fset.Position(n.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		info := n.Pkg.TypesInfo
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.PkgFunc(info, call) == "time.Sleep" {
				mp.Reportf(call.Pos(), "time.Sleep in %s, which is reachable from a context sink: wait on ctx.Done() or the injected clock so the plan budget is honored", n.Func.Name())
			}
			return true
		})
	}
	return nil
}

// exemptClock matches the injectable clock package, whose Real
// implementation legitimately sleeps on the wall clock.
func exemptClock(path string) bool {
	return path == "internal/clock" || strings.HasSuffix(path, "/internal/clock")
}
