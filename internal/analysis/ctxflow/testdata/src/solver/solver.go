// Fixture: the budgeted operation. SolveContext is a seed sink (exported,
// *Context suffix, ctx-first); the helper it reaches sleeps, which the
// whole-program pass flags — a budgeted path blocking without consulting
// the context.
package solver

import (
	"context"
	"time"
)

// SolveContext is the budgeted entry point.
func SolveContext(ctx context.Context, n int) int {
	return descend(n)
}

func descend(n int) int {
	if n <= 0 {
		return 0
	}
	time.Sleep(time.Millisecond) // want `time\.Sleep in descend, which is reachable from a context sink`
	return descend(n-1) + 1
}
