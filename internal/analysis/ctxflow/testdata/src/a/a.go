// Fixture: context.Background()/TODO() spliced into chains that reach a
// budgeted sink. The sink fact is imported across the package boundary
// (solver.SolveContext) and closed over the local forwarder (plan).
package a

import (
	"context"

	"solver"
)

// plan forwards its ctx to the solver, so it becomes a sink too.
func plan(ctx context.Context, n int) int {
	return solver.SolveContext(ctx, n)
}

func badDirect(n int) int {
	return solver.SolveContext(context.Background(), n) // want `context\.Background\(\) passed to SolveContext from a function with no context parameter`
}

func badViaForwarder(n int) int {
	return plan(context.TODO(), n) // want `context\.TODO\(\) passed to plan from a function with no context parameter`
}

func badAlreadyHasCtx(ctx context.Context, n int) int {
	return solver.SolveContext(context.Background(), n) // want `context\.Background\(\) in a function that already has a context parameter: thread ctx instead`
}

func goodThreaded(ctx context.Context, n int) int {
	return plan(ctx, n)
}

// goodIgnored is suppressed by a documented ignore directive on the line
// above the offending call.
func goodIgnored(n int) int {
	//flexlint:ignore ctxflow fixture-sanctioned ctx-less shorthand
	return solver.SolveContext(context.Background(), n)
}
