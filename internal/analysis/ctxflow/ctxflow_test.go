package ctxflow_test

import (
	"testing"

	"flex/internal/analysis/analysistest"
	"flex/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "a", "solver")
}
