// Fixture: exact float comparisons are flagged; epsilon comparisons,
// integer comparisons, and NaN self-tests are not.
package a

import "math"

// Watts mirrors power.Watts: a named float type must still be caught.
type Watts float64

const eps = 1e-9

func bad(a, b float64, w, limit Watts, xs []float64) bool {
	if a == b { // want `exact floating-point comparison \(==\)`
		return true
	}
	if a != 0 { // want `exact floating-point comparison \(!=\)`
		return true
	}
	if w == limit { // want `exact floating-point comparison \(==\)`
		return true
	}
	if xs[0] == xs[1] { // want `exact floating-point comparison \(==\)`
		return true
	}
	return float32(a) != float32(b) // want `exact floating-point comparison \(!=\)`
}

func good(a, b float64, w Watts, n, m int) bool {
	if math.Abs(a-b) < eps { // epsilon comparison: the fix floateq asks for
		return true
	}
	if a <= 0 || b >= 1 { // ordered comparisons are legitimate
		return true
	}
	if a != a { // NaN self-test is the one meaningful exact comparison
		return true
	}
	if n == m { // integers compare exactly
		return true
	}
	return w > 0
}
