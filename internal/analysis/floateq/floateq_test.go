package floateq_test

import (
	"testing"

	"flex/internal/analysis/analysistest"
	"flex/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floateq.Analyzer, "a")
}
