// Package floateq flags == and != between floating-point expressions.
//
// The simplex solver (internal/lp), the branch-and-bound MILP solver
// (internal/milp), the load-flow and trip-curve models (internal/power),
// and the feasibility analyses (internal/feasibility) all accumulate
// rounding error; exact comparison of float64 values in those packages is
// a correctness bug waiting to bite — a pivot that is "zero" only up to
// 1e-16 must be treated as zero, and two utilizations that differ in the
// last ulp must sort as equal. Compare against an epsilon (the packages'
// eps/intEps constants) or restructure the comparison (<= 0 instead of
// == 0) instead.
//
// Comparing a float expression against itself (NaN checks, x != x) is
// permitted, as that is the one exact float comparison with a meaning.
// flexlint scopes this analyzer to the numeric packages; _test.go files,
// which legitimately compare against exact expected constants, are always
// exempt.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flex/internal/analysis"
)

// Analyzer is the floateq analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag exact ==/!= comparisons of floating-point values\n\n" +
		"Exact float comparison is unreliable after arithmetic; use an\n" +
		"epsilon comparison or restructure the predicate.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo, bin.X) && !isFloat(pass.TypesInfo, bin.Y) {
				return true
			}
			if sameExpr(bin.X, bin.Y) {
				return true // x != x is the idiomatic NaN test
			}
			pass.Reportf(bin.OpPos, "exact floating-point comparison (%s): use an epsilon comparison instead", bin.Op)
			return true
		})
	}
	return nil, nil
}

// isFloat reports whether e's type (after following named types such as
// power.Watts) is a floating-point or complex kind. Untyped constants
// take their default type, so comparing a float variable with a literal
// still counts.
func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Float32, types.Float64, types.Complex64, types.Complex128,
		types.UntypedFloat, types.UntypedComplex:
		return true
	}
	return false
}

// sameExpr reports whether two expressions are syntactically identical
// identifiers or selector chains (x == x, a.b != a.b).
func sameExpr(x, y ast.Expr) bool {
	switch xv := x.(type) {
	case *ast.Ident:
		yv, ok := y.(*ast.Ident)
		return ok && xv.Name == yv.Name
	case *ast.SelectorExpr:
		yv, ok := y.(*ast.SelectorExpr)
		return ok && xv.Sel.Name == yv.Sel.Name && sameExpr(xv.X, yv.X)
	}
	return false
}
