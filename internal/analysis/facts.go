package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a unit of information one analyzer attaches to a types.Object
// (usually a *types.Func) so that other passes — in the same package or in
// a downstream importer — can consume it. The design mirrors
// golang.org/x/tools/go/analysis facts: a fact type is a pointer type
// owned by exactly one analyzer, and the marker method keeps arbitrary
// values out of the store.
//
// Because flexlint analyzes the whole module in one process over a shared
// FileSet and type-checker, facts need no serialized export/import step:
// the store keys directly on the canonical types.Object identity, which is
// stable across packages (an importer sees the very same *types.Func the
// defining package exported the fact on).
type Fact interface{ AFact() }

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

type factKey struct {
	analyzer *Analyzer
	obj      types.Object
	typ      reflect.Type
}

// factStore holds every fact exported during one Run, namespaced by
// (analyzer, object, fact type).
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore { return &factStore{m: make(map[factKey]Fact)} }

func factType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("analysis: fact %T must be a pointer type", f))
	}
	return t
}

func (s *factStore) export(a *Analyzer, obj types.Object, f Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact on nil object")
	}
	s.m[factKey{a, obj, factType(f)}] = f
}

// imp copies a stored fact into *f and reports whether one existed.
func (s *factStore) imp(a *Analyzer, obj types.Object, f Fact) bool {
	if obj == nil {
		return false
	}
	got, ok := s.m[factKey{a, obj, factType(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// all returns every fact of example's type exported by a, sorted by object
// position for deterministic iteration.
func (s *factStore) all(a *Analyzer, example Fact) []ObjectFact {
	t := factType(example)
	var out []ObjectFact
	for k, f := range s.m {
		if k.analyzer == a && k.typ == t {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object.Pos() != out[j].Object.Pos() {
			return out[i].Object.Pos() < out[j].Object.Pos()
		}
		return out[i].Object.Id() < out[j].Object.Id()
	})
	return out
}
