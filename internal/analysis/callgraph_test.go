package analysis_test

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"flex/internal/analysis"
)

// writeFiles lays out a module in a temp dir and chdirs into it.
func writeFiles(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chdir(t, dir)
}

func loadAll(t *testing.T) (*analysis.Loader, []*analysis.Package) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	return loader, pkgs
}

// lookupFunc resolves a package-level function or a method ("T.M") in pkg.
func lookupFunc(t *testing.T, pkgs []*analysis.Package, pkgPath, name string) *types.Func {
	t.Helper()
	for _, pkg := range pkgs {
		if pkg.Path != pkgPath {
			continue
		}
		scope := pkg.Types.Scope()
		if fn, ok := scope.Lookup(name).(*types.Func); ok {
			return fn
		}
		// "T.M" form: method M on named type T.
		for _, tn := range scope.Names() {
			named, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok {
				continue
			}
			nt, ok := named.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < nt.NumMethods(); i++ {
				m := nt.Method(i)
				if tn+"."+m.Name() == name {
					return m
				}
			}
		}
	}
	t.Fatalf("function %s not found in %s", name, pkgPath)
	return nil
}

// findEdge returns the first caller→callee edge, or nil.
func findEdge(g *analysis.CallGraph, caller, callee *types.Func) *analysis.CallEdge {
	cn := g.Node(caller)
	if cn == nil {
		return nil
	}
	for _, e := range cn.Out {
		if e.Callee.Func == callee {
			return e
		}
	}
	return nil
}

func TestCallGraphEdges(t *testing.T) {
	writeFiles(t, map[string]string{
		"go.mod": "module example.com/cg\n\ngo 1.22\n",
		"cg/cg.go": `package cg

type Ringer interface{ Ring() }

type Bell struct{ n int }

func (b *Bell) Ring() { helper() }

func helper() {}

func Direct() { helper() }

func Method(b *Bell) { b.Ring() }

func Dyn(r Ringer) { r.Ring() }

func Closure() {
	f := func() { helper() }
	f()
}

func Value() func() { return helper }

func MethodValue(b *Bell) func() { return b.Ring }
`,
	})
	_, pkgs := loadAll(t)
	g := analysis.BuildCallGraph(pkgs)

	const path = "example.com/cg/cg"
	helper := lookupFunc(t, pkgs, path, "helper")
	ring := lookupFunc(t, pkgs, path, "Bell.Ring")

	// Direct call: static edge with a call site.
	if e := findEdge(g, lookupFunc(t, pkgs, path, "Direct"), helper); e == nil || e.Dynamic || e.Site == nil {
		t.Fatalf("Direct→helper = %+v, want static edge with site", e)
	}
	// Concrete method call: static.
	if e := findEdge(g, lookupFunc(t, pkgs, path, "Method"), ring); e == nil || e.Dynamic {
		t.Fatalf("Method→Bell.Ring = %+v, want static edge", e)
	}
	// Interface dispatch: dynamic edge to the CHA-resolved implementation.
	if e := findEdge(g, lookupFunc(t, pkgs, path, "Dyn"), ring); e == nil || !e.Dynamic {
		t.Fatalf("Dyn→Bell.Ring = %+v, want dynamic edge", e)
	}
	// A call inside a closure is attributed to the enclosing declaration.
	if e := findEdge(g, lookupFunc(t, pkgs, path, "Closure"), helper); e == nil || e.Dynamic {
		t.Fatalf("Closure→helper = %+v, want static edge", e)
	}
	// A function used as a value: dynamic reference edge, no call site.
	if e := findEdge(g, lookupFunc(t, pkgs, path, "Value"), helper); e == nil || !e.Dynamic || e.Site != nil {
		t.Fatalf("Value→helper = %+v, want dynamic reference edge", e)
	}
	// A method value reference.
	if e := findEdge(g, lookupFunc(t, pkgs, path, "MethodValue"), ring); e == nil || !e.Dynamic || e.Site != nil {
		t.Fatalf("MethodValue→Bell.Ring = %+v, want dynamic reference edge", e)
	}
}

func TestCallGraphReachable(t *testing.T) {
	writeFiles(t, map[string]string{
		"go.mod": "module example.com/cg\n\ngo 1.22\n",
		"cg/cg.go": `package cg

type Ringer interface{ Ring() }

type Bell struct{}

func (b *Bell) Ring() { helper() }

func helper() { leaf() }

func leaf() {}

func Dyn(r Ringer) { r.Ring() }
`,
	})
	_, pkgs := loadAll(t)
	g := analysis.BuildCallGraph(pkgs)

	const path = "example.com/cg/cg"
	dyn := g.Node(lookupFunc(t, pkgs, path, "Dyn"))
	leaf := g.Node(lookupFunc(t, pkgs, path, "leaf"))
	ring := g.Node(lookupFunc(t, pkgs, path, "Bell.Ring"))

	static := g.Reachable([]*analysis.CallNode{dyn}, false)
	if len(static) != 1 {
		t.Fatalf("static reach from Dyn = %d nodes, want 1 (itself)", len(static))
	}
	dynamic := g.Reachable([]*analysis.CallNode{dyn}, true)
	if _, ok := dynamic[leaf]; !ok {
		t.Fatalf("dynamic reach from Dyn misses leaf; got %d nodes", len(dynamic))
	}
	// The first-reach edge chain walks back to the root.
	e := dynamic[leaf]
	if e == nil || e.Caller != g.Node(lookupFunc(t, pkgs, path, "helper")) {
		t.Fatalf("leaf reached via %+v, want helper", e)
	}
	if via := dynamic[ring]; via == nil || via.Caller != dyn || !via.Dynamic {
		t.Fatalf("Bell.Ring reached via %+v, want dynamic edge from Dyn", via)
	}
}
