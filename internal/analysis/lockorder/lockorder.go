// Package lockorder builds a cross-package mutex acquisition-order graph
// and reports cycles as potential deadlocks. Each mutex is identified by
// its class — the declaring package, type, and field
// ("flex/internal/telemetry.Subscription.mu") or package-level variable —
// so every instance of a type's lock shares one node. An edge A→B is
// recorded whenever B is acquired while A is held: directly in one
// function body, or by calling (through any chain of static calls, in
// any package) a function that acquires B. Two components that nest the
// same pair of lock classes in opposite orders deadlock the first time
// their goroutines interleave; a cycle in the class graph is exactly
// that situation.
//
// Per function, the analyzer exports two facts: the set of lock classes
// the function may (transitively) acquire, and the acquisition-order
// edges its body creates. The whole-program pass merges every edge and
// reports each strongly connected component of two or more classes.
//
// RLock and Lock on the same mutex share a class: an RLock held while
// the write side is wanted participates in the same deadlocks.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flex/internal/analysis"
	"flex/internal/analysis/lockflow"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "report mutex acquisition-order cycles across packages\n\n" +
		"Builds the module-wide lock-class graph (B acquired while A held,\n" +
		"directly or through calls) and flags cycles as potential deadlocks.",
	Run:    run,
	Finish: finish,
}

// Edge is one acquisition-order observation: To was acquired (directly
// or via a call) while From was held, at Pos.
type Edge struct {
	From, To string
	Pos      token.Pos
}

// locksFact is the set of lock classes a function may acquire,
// transitively through static calls.
type locksFact struct {
	Classes []string // sorted
}

func (*locksFact) AFact() {}

// edgesFact is the acquisition-order edges a function's body creates.
type edgesFact struct {
	Edges []Edge
}

func (*edgesFact) AFact() {}

func run(pass *analysis.Pass) (interface{}, error) {
	type callSite struct {
		callee *types.Func
		held   []string // lock classes held at the call
		pos    token.Pos
	}
	type fnInfo struct {
		obj      *types.Func
		acquired []string
		edges    []Edge
		calls    []callSite
	}
	var fns []*fnInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{obj: obj}
			lockflow.WalkFunc(pass.TypesInfo, fd, lockflow.Hooks{
				OnAcquire: func(lock lockflow.Lock, held []lockflow.Lock) {
					if lock.Class == "" {
						return
					}
					fi.acquired = append(fi.acquired, lock.Class)
					for _, h := range held {
						if h.Class != "" && h.Class != lock.Class {
							fi.edges = append(fi.edges, Edge{From: h.Class, To: lock.Class, Pos: lock.Pos})
						}
					}
				},
				OnCall: func(call *ast.CallExpr, held []lockflow.Lock) {
					callee := analysis.StaticCallee(pass.TypesInfo, call)
					if callee == nil {
						return
					}
					var classes []string
					for _, h := range held {
						if h.Class != "" {
							classes = append(classes, h.Class)
						}
					}
					fi.calls = append(fi.calls, callSite{callee: callee, held: classes, pos: call.Pos()})
				},
			})
			fns = append(fns, fi)
		}
	}

	// Transitive lock sets: a function acquires what it locks directly
	// plus whatever its static callees acquire. Imported packages' facts
	// already exist; the fixpoint resolves same-package call chains.
	calleeClasses := func(fi *fnInfo, callee *types.Func) []string {
		var fact locksFact
		if pass.ImportObjectFact(callee, &fact) {
			return fact.Classes
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			set := make(map[string]bool)
			for _, c := range fi.acquired {
				set[c] = true
			}
			for _, cs := range fi.calls {
				for _, c := range calleeClasses(fi, cs.callee) {
					set[c] = true
				}
			}
			if len(set) == 0 {
				continue
			}
			classes := make([]string, 0, len(set))
			for c := range set {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			var have locksFact
			if pass.ImportObjectFact(fi.obj, &have) && equal(have.Classes, classes) {
				continue
			}
			pass.ExportObjectFact(fi.obj, &locksFact{Classes: classes})
			changed = true
		}
	}

	// Edges: direct nesting plus calls made under a held lock into
	// functions that acquire.
	for _, fi := range fns {
		edges := fi.edges
		for _, cs := range fi.calls {
			if len(cs.held) == 0 {
				continue
			}
			for _, to := range calleeClasses(fi, cs.callee) {
				for _, from := range cs.held {
					if from != to {
						edges = append(edges, Edge{From: from, To: to, Pos: cs.pos})
					}
				}
			}
		}
		if len(edges) > 0 {
			pass.ExportObjectFact(fi.obj, &edgesFact{Edges: edges})
		}
	}
	return nil, nil
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// finish merges every function's edges into the class graph and reports
// each strongly connected component of two or more lock classes.
func finish(mp *analysis.ModulePass) error {
	type edgeKey struct{ from, to string }
	first := make(map[edgeKey]token.Pos)
	adj := make(map[string][]string)
	var nodes []string
	seen := make(map[string]bool)
	addNode := func(c string) {
		if !seen[c] {
			seen[c] = true
			nodes = append(nodes, c)
		}
	}
	for _, of := range mp.AllObjectFacts(&edgesFact{}) {
		for _, e := range of.Fact.(*edgesFact).Edges {
			addNode(e.From)
			addNode(e.To)
			k := edgeKey{e.From, e.To}
			if _, ok := first[k]; !ok {
				first[k] = e.Pos
				adj[e.From] = append(adj[e.From], e.To)
			}
		}
	}
	sort.Strings(nodes)
	for _, vs := range adj {
		sort.Strings(vs)
	}

	for _, scc := range tarjan(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, c := range scc {
			inSCC[c] = true
		}
		// Anchor the report on the lexically first intra-component edge.
		var at token.Pos
		var from, to string
		for _, f := range scc {
			for _, t := range adj[f] {
				if inSCC[t] && (from == "" || f < from || (f == from && t < to)) {
					from, to, at = f, t, first[edgeKey{f, t}]
				}
			}
		}
		mp.Report(analysis.Diagnostic{
			Pos: at,
			Message: "mutex acquisition-order cycle " + strings.Join(scc, " -> ") +
				": acquiring " + to + " while " + from + " is held here conflicts with the reverse nesting elsewhere; pick one global lock order",
		})
	}
	return nil
}

// tarjan computes strongly connected components; inputs are pre-sorted
// for determinism.
func tarjan(nodes []string, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return sccs
}
