package lockorder_test

import (
	"testing"

	"flex/internal/analysis/analysistest"
	"flex/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockorder.Analyzer, "x", "y", "z")
}
