// Fixture: nests Registry.Mu -> Device.Mu, through a cross-package call.
// Together with package y's reverse nesting this closes the cycle; the
// diagnostic is anchored in y (the lexically first intra-cycle edge).
package x

import "locks"

// Update acquires Registry.Mu, then calls locks.Bump, which acquires
// Device.Mu: edge locks.Registry.Mu -> locks.Device.Mu.
func Update(r *locks.Registry, d *locks.Device) {
	r.Mu.Lock()
	r.N++
	locks.Bump(d)
	r.Mu.Unlock()
}
