// Fixture: the shared lock classes. Registry and Device are nested in
// opposite orders by packages x and y (a cycle); Pool and Conn are nested
// consistently by package z (no cycle). Bump lets an importer create an
// acquisition-order edge through a cross-package call.
package locks

import "sync"

// Registry holds the fleet index.
type Registry struct {
	Mu sync.Mutex
	N  int
}

// Device is one managed device.
type Device struct {
	Mu sync.Mutex
	V  int
}

// Bump acquires Device.Mu, so callers holding another lock create an
// edge into locks.Device.Mu.
func Bump(d *Device) {
	d.Mu.Lock()
	d.V++
	d.Mu.Unlock()
}

// Pool and Conn are always nested Pool -> Conn; no cycle.
type Pool struct {
	Mu sync.Mutex
}

type Conn struct {
	Mu sync.Mutex
}
