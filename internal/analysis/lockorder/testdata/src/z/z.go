// Fixture: consistent nesting is clean. Both functions acquire Pool.Mu
// before Conn.Mu, so the Pool->Conn edge never gains a reverse and no
// cycle is reported.
package z

import "locks"

func Borrow(p *locks.Pool, c *locks.Conn) {
	p.Mu.Lock()
	c.Mu.Lock()
	c.Mu.Unlock()
	p.Mu.Unlock()
}

func Return(p *locks.Pool, c *locks.Conn) {
	p.Mu.Lock()
	c.Mu.Lock()
	c.Mu.Unlock()
	p.Mu.Unlock()
}
