// Fixture: nests Device.Mu -> Registry.Mu directly — the reverse of
// package x's order, closing the cycle.
package y

import "locks"

// Refresh acquires Device.Mu, then Registry.Mu while it is held.
func Refresh(r *locks.Registry, d *locks.Device) {
	d.Mu.Lock()
	r.Mu.Lock() // want `mutex acquisition-order cycle locks\.Device\.Mu -> locks\.Registry\.Mu: acquiring locks\.Registry\.Mu while locks\.Device\.Mu is held here conflicts with the reverse nesting elsewhere`
	r.N = d.V
	r.Mu.Unlock()
	d.Mu.Unlock()
}
