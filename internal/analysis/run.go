package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// Finding pairs a diagnostic with the package it was found in.
type Finding struct {
	Pkg *Package
	Diagnostic
}

// Position resolves the finding's location.
func (f Finding) Position(fset *token.FileSet) token.Position {
	return fset.Position(f.Pos)
}

// Scope decides whether an analyzer applies to a package; a nil Scope
// applies every analyzer everywhere. flexlint uses it to confine floateq
// to the numeric packages.
type Scope func(a *Analyzer, pkgPath string) bool

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, column, and analyzer name.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, scope Scope) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if scope != nil && !scope(a, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			p := pkg
			pass.Report = func(d Diagnostic) {
				if d.Category == "" {
					d.Category = a.Name
				}
				findings = append(findings, Finding{Pkg: p, Diagnostic: d})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].Pos), fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Category < findings[j].Category
	})
	return findings, nil
}

// Format renders one finding as "path:line:col: message [analyzer]", with
// the path made relative to baseDir when possible.
func Format(fset *token.FileSet, baseDir string, f Finding) string {
	pos := fset.Position(f.Pos)
	name := pos.Filename
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s [%s]", name, pos.Line, pos.Column, f.Message, f.Category)
}
