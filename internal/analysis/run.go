package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// Finding pairs a diagnostic with the package it was found in.
type Finding struct {
	Pkg *Package
	Diagnostic
}

// Position resolves the finding's location.
func (f Finding) Position(fset *token.FileSet) token.Position {
	return fset.Position(f.Pos)
}

// Scope decides whether an analyzer applies to a package; a nil Scope
// applies every analyzer everywhere. flexlint uses it to confine floateq
// to the numeric packages. Scope gates per-package Run passes only —
// Finish passes are whole-program by nature and always run.
type Scope func(a *Analyzer, pkgPath string) bool

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, column, and analyzer name.
//
// The driver is interprocedural: packages are visited in dependency
// order (imports before importers) so that facts an analyzer exports on
// a package's objects exist by the time its importers are analyzed; a
// module-wide call graph is built once and shared by every pass; and
// analyzers with a Finish hook get a final whole-program pass over the
// graph and the accumulated facts.
//
// //flexlint:ignore directives are honoured here, so every consumer of
// the framework (flexlint, analysistest) gets identical suppression
// semantics. Malformed directives become findings themselves.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, scope Scope) ([]Finding, error) {
	pkgs = dependencyOrder(pkgs)
	graph := BuildCallGraph(pkgs)
	facts := newFactStore()

	// Map file names back to packages so module-level findings can be
	// attributed.
	fileToPkg := make(map[string]*Package)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			fileToPkg[fset.Position(file.Pos()).Filename] = pkg
		}
	}

	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if scope != nil && !scope(a, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Graph:     graph,
				facts:     facts,
			}
			p, an := pkg, a
			pass.Report = func(d Diagnostic) {
				if d.Category == "" {
					d.Category = an.Name
				}
				findings = append(findings, Finding{Pkg: p, Diagnostic: d})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     pkgs,
			Graph:    graph,
			facts:    facts,
		}
		an := a
		mp.Report = func(d Diagnostic) {
			if d.Category == "" {
				d.Category = an.Name
			}
			pkg := fileToPkg[fset.Position(d.Pos).Filename]
			findings = append(findings, Finding{Pkg: pkg, Diagnostic: d})
		}
		if err := a.Finish(mp); err != nil {
			return nil, fmt.Errorf("analysis: %s finish: %w", a.Name, err)
		}
	}

	ignores, malformed := collectIgnores(fset, pkgs)
	kept := findings[:0]
	for _, f := range findings {
		if suppressed(fset, ignores, f.Pos, f.Category) {
			continue
		}
		kept = append(kept, f)
	}
	findings = append(kept, malformed...)

	sort.Slice(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].Pos), fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Category < findings[j].Category
	})
	return findings, nil
}

// dependencyOrder sorts pkgs so every package follows the packages it
// imports (restricted to pkgs themselves). Ties break on import path, so
// the order is deterministic.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	indegree := make(map[*Package]int, len(pkgs))
	importers := make(map[*Package][]*Package, len(pkgs))
	for _, p := range pkgs {
		indegree[p] += 0
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok && dep != p {
				importers[dep] = append(importers[dep], p)
				indegree[p]++
			}
		}
	}
	ready := make([]*Package, 0, len(pkgs))
	for _, p := range pkgs {
		if indegree[p] == 0 {
			ready = append(ready, p)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].Path < ready[j].Path })
	var order []*Package
	for len(ready) > 0 {
		p := ready[0]
		ready = ready[1:]
		order = append(order, p)
		var next []*Package
		for _, imp := range importers[p] {
			indegree[imp]--
			if indegree[imp] == 0 {
				next = append(next, imp)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Path < next[j].Path })
		ready = append(ready, next...)
	}
	// Import cycles cannot type-check, so every package is emitted; the
	// guard keeps the function total regardless.
	if len(order) != len(pkgs) {
		seen := make(map[*Package]bool, len(order))
		for _, p := range order {
			seen[p] = true
		}
		for _, p := range pkgs {
			if !seen[p] {
				order = append(order, p)
			}
		}
	}
	return order
}

// Format renders one finding as "path:line:col: message [analyzer]", with
// the path made relative to baseDir when possible.
func Format(fset *token.FileSet, baseDir string, f Finding) string {
	pos := fset.Position(f.Pos)
	name := pos.Filename
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s [%s]", name, pos.Line, pos.Column, f.Message, f.Category)
}
