// Fixture: a helper in another package. Push allocates and is reached
// from a //flex:hotpath root across the package boundary; Dump is an
// audited //flex:coldpath slow path the traversal stops at.
package lib

// Buf accumulates values.
type Buf struct {
	xs []int
}

// Push appends, growing the backing array.
func (b *Buf) Push(v int) {
	b.xs = append(b.xs, v) // want `hot path allocates: append may grow its backing array in Push \(reachable from //flex:hotpath Emit\)`
}

// Dump copies the values out. It allocates freely: the coldpath
// directive marks it as an audited slow path.
//
//flex:coldpath
func (b *Buf) Dump() []int {
	out := make([]int, len(b.xs))
	copy(out, b.xs)
	return out
}
