// Fixture: the stamped-telemetry hot paths. Stamp propagation over a
// caller-owned batch and the fixed-slot exemplar store (per-bucket mutex
// plus atomic counters, the shape of Histogram.ObserveExemplar) are
// allocation-free; growing an exemplar slice or building a stamp index
// on the hot path is flagged.
package stamp

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sample is the stamped telemetry sample: birth stamps ride along from
// measurement through publish and dequeue.
type Sample struct {
	Device      string
	Power       float64
	MeasuredAt  time.Time
	PublishedAt time.Time
	DequeuedAt  time.Time
}

// Exemplar joins an observation to its flight-recorder context.
type Exemplar struct {
	Value   float64
	Episode uint64
	Event   uint64
}

type slot struct {
	mu  sync.Mutex
	set bool
	ex  Exemplar
}

// Hist is a fixed-shape histogram: pre-sized buckets, one exemplar slot
// per bucket, nothing grows after construction.
type Hist struct {
	upper  [4]float64
	counts [5]atomic.Uint64
	slots  [5]slot
	all    []Exemplar
}

// StampPublished mirrors telemetry.StampPublished: fill in the publish
// stamp on every sample of a caller-owned batch that does not already
// carry one. Pure field writes — nothing escapes.
//
//flex:hotpath
func StampPublished(batch []Sample, at time.Time) {
	for i := range batch {
		if batch[i].PublishedAt.IsZero() {
			batch[i].PublishedAt = at
		}
	}
}

// Observe is the exemplar-joined observe path: bucket scan, atomic
// count, last-write-wins store into the pre-allocated slot through its
// own mutex.
//
//flex:hotpath
func (h *Hist) Observe(v float64, ex Exemplar) {
	i := h.bucket(v)
	h.counts[i].Add(1)
	h.attach(i, v, ex)
}

func (h *Hist) bucket(v float64) int {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	return i
}

func (h *Hist) attach(i int, v float64, ex Exemplar) {
	ex.Value = v
	s := &h.slots[i]
	s.mu.Lock()
	s.ex = ex
	s.set = true
	s.mu.Unlock()
}

// ObserveAll keeps every exemplar instead of last-write-wins; the
// growing slice is flagged through the helper.
//
//flex:hotpath
func (h *Hist) ObserveAll(v float64, ex Exemplar) {
	h.counts[h.bucket(v)].Add(1)
	ex.Value = v
	h.keep(ex)
}

func (h *Hist) keep(ex Exemplar) {
	h.all = append(h.all, ex) // want `hot path allocates: append may grow its backing array in keep \(reachable from //flex:hotpath ObserveAll\)`
}

// CopyStamped builds a filtered copy on the hot path instead of
// stamping in place.
//
//flex:hotpath
func CopyStamped(batch []Sample) []Sample {
	var out []Sample
	for _, s := range batch {
		if !s.PublishedAt.IsZero() {
			out = append(out, s) // want `hot path allocates: append may grow its backing array in CopyStamped \(//flex:hotpath\)`
		}
	}
	return out
}

// IndexStamps builds a per-device stamp index on the hot path; the map
// belongs on the cold side.
//
//flex:hotpath
func IndexStamps(batch []Sample) map[string]time.Time {
	idx := map[string]time.Time{} // want `hot path allocates: map literal in IndexStamps \(//flex:hotpath\)`
	for _, s := range batch {
		idx[s.Device] = s.PublishedAt
	}
	return idx
}

// DumpExemplars copies the slots out for serving; audited slow path.
//
//flex:coldpath
func (h *Hist) DumpExemplars() []Exemplar {
	out := make([]Exemplar, 0, len(h.slots))
	for i := range h.slots {
		s := &h.slots[i]
		s.mu.Lock()
		if s.set {
			out = append(out, s.ex)
		}
		s.mu.Unlock()
	}
	return out
}
