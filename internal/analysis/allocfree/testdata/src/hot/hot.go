// Fixture: //flex:hotpath roots must be allocation-free, transitively
// over static calls. Bad demonstrates every flagged construct; Clean
// shows the allowed ones (atomics, mutexes, plain struct literals, calls
// into //flex:coldpath slow paths).
package hot

import (
	"strconv"
	"sync"

	"lib"
)

// Sink is an injected consumer; calls through it are dynamic.
type Sink interface{ Write(v int) }

// Rec is the hot component.
type Rec struct {
	mu   sync.Mutex
	buf  lib.Buf
	vals [8]int
	n    int
	fn   func(int)
	sink Sink
}

// Point is a plain struct; its composite literal is stack-allocated.
type Point struct{ X, Y int }

// Emit reaches lib.Push, whose append is flagged in lib.
//
//flex:hotpath
func (r *Rec) Emit(v int) {
	r.mu.Lock()
	r.vals[r.n%len(r.vals)] = v
	r.n++
	r.mu.Unlock()
	r.buf.Push(v)
}

//flex:hotpath
func Bad(r *Rec, s string, v int) {
	_ = make([]int, 4)   // want `hot path allocates: make in Bad \(//flex:hotpath\)`
	_ = new(int)         // want `hot path allocates: new in Bad \(//flex:hotpath\)`
	_ = []int{v}         // want `hot path allocates: slice literal in Bad \(//flex:hotpath\)`
	_ = map[string]int{} // want `hot path allocates: map literal in Bad \(//flex:hotpath\)`
	_ = &Point{X: v}     // want `hot path allocates: address of composite literal in Bad \(//flex:hotpath\)`
	f := func(i int) {}  // want `hot path allocates: function literal \(closure\) in Bad \(//flex:hotpath\)`
	_ = f
	go spawned(v)       // want `hot path allocates: go statement \(new goroutine\) in Bad \(//flex:hotpath\)`
	_ = s + "!"         // want `hot path allocates: non-constant string concatenation in Bad \(//flex:hotpath\)`
	_ = []byte(s)       // want `hot path allocates: string conversion copies its data in Bad \(//flex:hotpath\)`
	_ = strconv.Itoa(v) // want `hot path allocates: call to strconv\.Itoa, which may allocate in Bad \(//flex:hotpath\)`
	r.fn(v)             // want `hot path allocates: dynamic call, not provably allocation-free in Bad \(//flex:hotpath\)`
	consume(v)          // want `hot path allocates: interface boxing of int in Bad \(//flex:hotpath\)`
	variadic(v, v)      // want `hot path allocates: variadic call builds a slice in Bad \(//flex:hotpath\)`
}

func spawned(v int) {}

func consume(x interface{}) {}

func variadic(xs ...int) {}

// Clean is a hot root with only allowed constructs.
//
//flex:hotpath
func (r *Rec) Clean(v int) {
	r.mu.Lock()
	r.n += v
	p := Point{X: v, Y: r.n}
	r.vals[0] = p.X
	r.mu.Unlock()
	_ = r.buf.Dump() // coldpath callee: the call is fine, its body unchecked
}

// Unmarked is not reachable from any root; it may allocate.
func Unmarked() []int {
	return append([]int(nil), 1, 2, 3)
}
