package allocfree_test

import (
	"testing"

	"flex/internal/analysis/allocfree"
	"flex/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), allocfree.Analyzer, "hot", "lib", "stamp")
}
