// Package allocfree proves that declared hot paths stay allocation-free.
// Flex's detect→plan→shed loop must fit inside the ~10-second battery
// window; a garbage-collection pause triggered by per-sample allocation
// on the telemetry or metrics path eats straight into it. The repo pins
// those paths with AllocsPerRun tests — this analyzer turns that runtime
// spot check into a static, whole-program proof.
//
// A function whose doc comment carries //flex:hotpath is a root. The
// analyzer walks every function statically reachable from a root (module
// call graph, static edges only) and reports any construct that
// allocates or cannot be proven not to:
//
//   - append, make, new
//   - slice and map composite literals, &T{...} literals
//   - function literals (closure allocation) and go statements
//   - non-constant string concatenation and string↔[]byte/[]rune
//     conversions
//   - interface boxing: a concrete non-pointer-shaped value passed where
//     an interface is expected
//   - calls with non-empty variadic argument lists (the ...T slice)
//   - calls into standard-library packages not on the allocation-free
//     allowlist (sync, sync/atomic, math, math/bits, time)
//   - dynamic calls (interface dispatch, function values), which the
//     static proof cannot follow
//
// //flex:coldpath on a callee stops the traversal: it marks an audited
// slow path (the flight recorder's optional JSON sink) that a hot
// function only reaches behind a condition the hot configuration never
// takes. Plain struct composite literals are allowed — they live on the
// stack when they do not escape, which the boxing and call rules already
// police.
package allocfree

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"flex/internal/analysis"
)

// Analyzer is the allocfree analyzer. It is whole-program only: all the
// work happens in Finish, over the module call graph.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "prove //flex:hotpath functions allocation-free\n\n" +
		"Walks the static call graph from every //flex:hotpath root and\n" +
		"reports allocating constructs; //flex:coldpath stops traversal at\n" +
		"audited slow paths.",
	Finish: finish,
}

// allowedPkgs are standard-library packages whose entry points used on
// the hot paths do not allocate.
var allowedPkgs = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"time":        true,
}

func finish(mp *analysis.ModulePass) error {
	var roots []*analysis.CallNode
	for _, n := range mp.Graph.Nodes() {
		if analysis.HasFlexDirective(n.Decl, "hotpath") {
			roots = append(roots, n)
		}
	}
	// BFS over static edges, stopping at //flex:coldpath callees. firstEdge
	// remembers how each node was reached so diagnostics can name the root.
	firstEdge := make(map[*analysis.CallNode]*analysis.CallEdge)
	queue := make([]*analysis.CallNode, 0, len(roots))
	for _, r := range roots {
		firstEdge[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if e.Dynamic {
				continue
			}
			if _, ok := firstEdge[e.Callee]; ok {
				continue
			}
			if analysis.HasFlexDirective(e.Callee.Decl, "coldpath") {
				continue
			}
			firstEdge[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	for _, n := range mp.Graph.Nodes() {
		if _, ok := firstEdge[n]; !ok {
			continue
		}
		root := n
		for firstEdge[root] != nil {
			root = firstEdge[root].Caller
		}
		check(mp, n, root)
	}
	return nil
}

// check reports every allocating construct in node's body.
func check(mp *analysis.ModulePass, node, root *analysis.CallNode) {
	info := node.Pkg.TypesInfo
	where := node.Func.Name()
	if root != node {
		where += " (reachable from //flex:hotpath " + root.Func.Name() + ")"
	} else {
		where += " (//flex:hotpath)"
	}
	report := func(pos token.Pos, what string) {
		mp.Reportf(pos, "hot path allocates: %s in %s", what, where)
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkCall(mp, info, v, report)
		case *ast.CompositeLit:
			switch info.TypeOf(v).Underlying().(type) {
			case *types.Slice:
				report(v.Pos(), "slice literal")
			case *types.Map:
				report(v.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					report(v.Pos(), "address of composite literal")
				}
			}
		case *ast.FuncLit:
			report(v.Pos(), "function literal (closure)")
			return false
		case *ast.GoStmt:
			report(v.Pos(), "go statement (new goroutine)")
		case *ast.BinaryExpr:
			if v.Op == token.ADD {
				if t, ok := info.TypeOf(v).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					if tv := info.Types[ast.Expr(v)]; tv.Value == nil {
						report(v.Pos(), "non-constant string concatenation")
					}
				}
			}
		}
		return true
	})
}

// checkCall classifies one call expression on a hot body.
func checkCall(mp *analysis.ModulePass, info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	// Conversion, not a call.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && stringBytesConversion(info, tv.Type, call.Args[0]) {
			report(call.Pos(), "string conversion copies its data")
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append":
				report(call.Pos(), "append may grow its backing array")
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			}
			return
		}
	}
	callee := analysis.StaticCallee(info, call)
	if callee == nil {
		report(call.Pos(), "dynamic call, not provably allocation-free")
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if ok {
		checkArgs(info, call, sig, report)
	}
	if pkg := callee.Pkg(); pkg != nil {
		if node := mp.Graph.Node(callee); node != nil {
			return // module function: the traversal checks its body (or coldpath stops it)
		}
		if !allowedPkgs[pkg.Path()] {
			report(call.Pos(), "call to "+pkg.Path()+"."+callee.Name()+", which may allocate")
		}
	}
}

// checkArgs reports interface boxing and variadic slice construction at a
// statically resolved call.
func checkArgs(info *types.Info, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string)) {
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		report(call.Pos(), "variadic call builds a slice")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos && params.Len() > 0:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case sig.Variadic() && params.Len() > 0:
			pt = params.At(params.Len() - 1).Type() // f(xs...): param is the slice itself
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if tv := info.Types[arg]; tv.Value != nil && tv.Value.Kind() == constant.Unknown {
			continue
		}
		if isUntypedNil(info, arg) || pointerShaped(at) {
			continue
		}
		report(arg.Pos(), "interface boxing of "+at.String())
	}
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// stringBytesConversion reports whether converting arg to target copies
// string/byte data ([]byte(s), string(b), []rune(s), string(r)).
func stringBytesConversion(info *types.Info, target types.Type, arg ast.Expr) bool {
	at := info.TypeOf(arg)
	if at == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(target) && isByteOrRuneSlice(at)) || (isByteOrRuneSlice(target) && isStr(at))
}
