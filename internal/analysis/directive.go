package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives recognised by the framework:
//
//	//flex:hotpath
//	    On a function declaration's doc comment. Marks the function as a
//	    latency-critical root: allocfree proves everything statically
//	    reachable from it allocation-free.
//
//	//flex:coldpath
//	    On a function declaration's doc comment. Marks an audited slow
//	    path: allocfree stops traversing at it (e.g. the flight recorder's
//	    optional JSON sink, which only runs when explicitly attached).
//
//	//flexlint:ignore <analyzer> <reason>
//	    On or immediately above an offending line. Suppresses that
//	    analyzer's diagnostics there. The reason is mandatory — a bare
//	    ignore is itself reported, so every suppression is documented.

// HasFlexDirective reports whether fd's doc comment carries a
// //flex:<name> directive. Directive comments must start exactly
// "//flex:"; trailing prose after the name is allowed.
func HasFlexDirective(fd *ast.FuncDecl, name string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//flex:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) > 0 && fields[0] == name {
			return true
		}
	}
	return false
}

const ignorePrefix = "//flexlint:ignore"

// ignoreDirective is one parsed //flexlint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
}

// collectIgnores walks every comment in pkgs, returning the well-formed
// suppressions indexed by file and line, plus a diagnostic Finding for
// each malformed directive (missing analyzer or missing reason).
//
// A directive suppresses matching diagnostics on its own line (trailing
// comment) and on the line directly below it (standalone comment above
// the offending statement).
func collectIgnores(fset *token.FileSet, pkgs []*Package) (map[string]map[int][]ignoreDirective, []Finding) {
	index := make(map[string]map[int][]ignoreDirective)
	var malformed []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Finding{Pkg: pkg, Diagnostic: Diagnostic{
							Pos:      c.Pos(),
							Message:  "flexlint:ignore requires an analyzer name and a reason, e.g. //flexlint:ignore ctxflow caller is a documented ctx-less wrapper",
							Category: "flexlint",
						}})
						continue
					}
					pos := fset.Position(c.Pos())
					byLine := index[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]ignoreDirective)
						index[pos.Filename] = byLine
					}
					d := ignoreDirective{analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
					byLine[pos.Line] = append(byLine[pos.Line], d)
				}
			}
		}
	}
	return index, malformed
}

// suppressed reports whether a diagnostic with the given category at pos
// is covered by an ignore directive.
func suppressed(fset *token.FileSet, index map[string]map[int][]ignoreDirective, pos token.Pos, category string) bool {
	p := fset.Position(pos)
	byLine := index[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range byLine[line] {
			if d.analyzer == category {
				return true
			}
		}
	}
	return false
}
