package shedcheck_test

import (
	"testing"

	"flex/internal/analysis/analysistest"
	"flex/internal/analysis/shedcheck"
)

func TestShedcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), shedcheck.Analyzer, "a", "obswrap")
}
