// Fixture: discarding an error from a shed-critical call (publish, ack,
// actuation, planning) is flagged; checking, propagating, or counting the
// error is not, and non-critical calls may discard freely.
package a

import "errors"

type Actuator struct{}

func (Actuator) Shutdown(rack string) error               { return errors.New("unreachable") }
func (Actuator) Throttle(rack string, capW float64) error { return errors.New("unreachable") }
func (Actuator) Restore(rack string) error                { return errors.New("unreachable") }

type Publisher struct{}

func (Publisher) Publish(topic string, v float64) error { return nil }
func (Publisher) Ack(seq uint64) error                  { return nil }

// FireAndForgetPublisher mirrors the in-process broker: no error result,
// so there is nothing to discard.
type FireAndForgetPublisher struct{}

func (FireAndForgetPublisher) Publish(topic string, v float64) {}

func Plan(target float64) ([]string, bool, error) { return nil, false, nil }

func bad(a Actuator, p Publisher) {
	a.Shutdown("rack-1")      // want `error from shed-critical call Shutdown discarded`
	a.Throttle("rack-2", 1e3) // want `error from shed-critical call Throttle discarded`
	a.Restore("rack-3")       // want `error from shed-critical call Restore discarded`
	p.Publish("power/ups", 1) // want `error from shed-critical call Publish discarded`
	p.Ack(7)                  // want `error from shed-critical call Ack discarded`
	_ = a.Shutdown("rack-4")  // want `error from shed-critical call Shutdown assigned to _`
	Plan(5e6)                 // want `error from shed-critical call Plan discarded`
}

func good(a Actuator, p Publisher, f FireAndForgetPublisher) error {
	if err := a.Shutdown("rack-1"); err != nil {
		return err
	}
	errs := 0
	if err := p.Publish("power/ups", 1); err != nil {
		errs++
	}
	f.Publish("power/ups", 1) // no error result: nothing discarded
	actions, _, err := Plan(5e6)
	if err != nil {
		return err
	}
	_ = actions
	_ = errs
	return nil
}
