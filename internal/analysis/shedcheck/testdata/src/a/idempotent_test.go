// Fixture: tests discard actuation errors deliberately (idempotency
// checks); _test.go files are exempt.
package a

func exerciseIdempotency(a Actuator) {
	_ = a.Shutdown("r1")
	a.Shutdown("r1")
	_ = a.Restore("r1")
}
