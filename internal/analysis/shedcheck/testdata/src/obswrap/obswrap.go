// Fixture: instrumented wrappers around shed-critical calls. Adding a
// metrics counter next to a Publish/Throttle/Shutdown call must not become
// an excuse to swallow its error — incrementing a failure counter alone
// still hides the failed actuation from the caller.
package obswrap

import "errors"

type Counter struct{ n uint64 }

func (c *Counter) Inc() { c.n++ }

type Metrics struct {
	Attempts *Counter
	Failures *Counter
}

type Actuator struct{}

func (Actuator) Shutdown(rack string) error               { return errors.New("unreachable") }
func (Actuator) Throttle(rack string, capW float64) error { return errors.New("unreachable") }

type Publisher struct{}

func (Publisher) Publish(topic string, v float64) error { return nil }

// InstrumentedActuator mirrors rackmgr.Manager: it wraps actuation with
// attempt/failure counters and must keep propagating the error.
type InstrumentedActuator struct {
	A Actuator
	M *Metrics
}

// Shutdown counts and propagates — the correct wrapper shape.
func (ia InstrumentedActuator) Shutdown(rack string) error {
	ia.M.Attempts.Inc()
	err := ia.A.Shutdown(rack)
	if err != nil {
		ia.M.Failures.Inc()
	}
	return err
}

// Throttle counts but swallows: the counter bump does not make the
// discarded error acceptable.
func (ia InstrumentedActuator) Throttle(rack string, capW float64) {
	ia.M.Attempts.Inc()
	ia.A.Throttle(rack, capW) // want `error from shed-critical call Throttle discarded`
}

func useWrappers(ia InstrumentedActuator, p Publisher, m *Metrics) {
	ia.Shutdown("rack-1") // want `error from shed-critical call Shutdown discarded`
	ia.Throttle("rack-2", 1e3)

	// Counting a publish failure is fine when the error itself is consumed
	// by the check…
	if err := p.Publish("power/ups", 1); err != nil {
		m.Failures.Inc()
	}
	// …but bumping a counter before discarding is not.
	m.Attempts.Inc()
	_ = p.Publish("power/ups", 2) // want `error from shed-critical call Publish assigned to _`
}

func propagate(ia InstrumentedActuator) error {
	if err := ia.Shutdown("rack-3"); err != nil {
		return err
	}
	return nil
}
