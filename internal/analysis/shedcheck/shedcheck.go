// Package shedcheck flags discarded error returns from the power-shedding
// call chain: telemetry publish/ack and controller plan-execution and
// actuation functions.
//
// Flex's safety story ends at an actuator: when a UPS is overloaded the
// controller must shed load within the overload-tolerance window, and the
// only evidence that a shutdown, throttle, or publish actually happened
// is the returned error. A call like m.Shutdown(rack) as a bare statement
// — or with its error assigned to _ — turns an actuation failure into a
// silent no-op: the controller believes power was shed, the UPS keeps
// overdrawing, and the breaker trip cascades (paper Figure 4). Errors
// from these functions must be checked, counted, or at minimum logged.
//
// The check fires when a call statement discards a final error result
// from a function whose name is in the shed-critical set (Publish, Ack,
// Throttle, Shutdown, Restore, Enforce, Execute, Apply, Shed, Plan).
// _test.go files are exempt: tests discard errors deliberately when
// exercising idempotency.
package shedcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flex/internal/analysis"
)

// Critical is the set of function/method names whose errors must never be
// discarded.
var Critical = map[string]bool{
	"Publish":  true,
	"Ack":      true,
	"Throttle": true,
	"Shutdown": true,
	"Restore":  true,
	"Enforce":  true,
	"Execute":  true,
	"Apply":    true,
	"Shed":     true,
	"Plan":     true,
}

// Analyzer is the shedcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "shedcheck",
	Doc: "flag discarded errors from shed-critical calls\n\n" +
		"Errors from publish/ack/actuation/planning functions signal a\n" +
		"failure to shed power; discarding one hides a safety violation.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					report(pass, call, "discarded")
				}
			case *ast.AssignStmt:
				if s.Tok != token.ASSIGN || len(s.Rhs) != 1 || !allBlank(s.Lhs) {
					return true
				}
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					report(pass, call, "assigned to _")
				}
			}
			return true
		})
	}
	return nil, nil
}

// report fires when call is a shed-critical call returning a final error.
func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	name, ok := calleeName(call)
	if !ok || !Critical[name] {
		return
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	if res.Len() == 0 {
		return
	}
	last := res.At(res.Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return
	}
	pass.Reportf(call.Pos(), "error from shed-critical call %s %s: a dropped error here is a silent failure to shed power", name, how)
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name, true
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	}
	return "", false
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		ident, ok := e.(*ast.Ident)
		if !ok || ident.Name != "_" {
			return false
		}
	}
	return true
}
