// Package lockflow is the shared held-lock walker behind locksend,
// eventcheck, and lockorder. It performs a lexical walk over each
// function body, tracking which sync.Mutex / sync.RWMutex locks are held
// at every point, and invokes analyzer-supplied hooks at the interesting
// events: lock acquisition, calls, channel sends and receives, and
// blocking selects.
//
// The tracking semantics are deliberately simple and shared verbatim by
// every client: a lock is held from a successful x.Lock()/x.RLock()
// until x.Unlock()/x.RUnlock() in the same statement sequence; a
// deferred unlock keeps the lock held to the end of the function;
// branches are walked with a copy of the held set so an unlock on an
// early-return path does not leak into the fallthrough path; goroutine
// bodies and non-invoked function literals start with an empty held set;
// an immediately-invoked function literal inherits the caller's locks.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lock is one held mutex.
type Lock struct {
	// Key is the lexical identity used for acquire/release matching and
	// in diagnostics: the receiver expression, e.g. "s.mu".
	Key string
	// Class is the global identity of the lock for cross-package
	// reasoning, e.g. "flex/internal/telemetry.Subscription.mu" for a
	// struct field or "flex/internal/x.mu" for a package-level mutex.
	// Empty when the lock has no stable identity (a local variable).
	// RLock and Lock on the same mutex share a Class.
	Class string
	// Pos is the acquisition site.
	Pos token.Pos
}

// Hooks are the analyzer callbacks. Any hook may be nil. Every hook
// receives the held set as of that point; the slice is shared — copy it
// to retain it.
type Hooks struct {
	// OnAcquire fires when a lock is taken, with the locks already held
	// at that moment (the new lock is not yet in held).
	OnAcquire func(lock Lock, held []Lock)
	// OnCall fires for every call expression that is not a lock
	// operation, an immediately-invoked literal, or a spawned goroutine.
	OnCall func(call *ast.CallExpr, held []Lock)
	// OnSend fires for every channel send statement.
	OnSend func(s *ast.SendStmt, held []Lock)
	// OnRecv fires for every <-ch receive expression.
	OnRecv func(e *ast.UnaryExpr, held []Lock)
	// OnBlockingSelect fires for every select with no default case
	// (a select with a default never blocks).
	OnBlockingSelect func(s *ast.SelectStmt, held []Lock)
}

// mutexRecvs are receiver types whose Lock/Unlock family manages a mutex.
var mutexRecvs = map[string]bool{
	"*sync.Mutex":   true,
	"*sync.RWMutex": true,
	"sync.Locker":   true,
}

// Walk runs the held-lock walk over every function declaration in files.
func Walk(info *types.Info, files []*ast.File, h Hooks) {
	for _, file := range files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				WalkFunc(info, fn, h)
			}
		}
	}
}

// WalkFunc runs the held-lock walk over one function declaration.
func WalkFunc(info *types.Info, fn *ast.FuncDecl, h Hooks) {
	w := &walker{info: info, hooks: h}
	w.walkStmts(fn.Body.List, nil)
}

type walker struct {
	info  *types.Info
	hooks Hooks
}

// walkStmts threads the held-lock set through a statement sequence and
// returns it as of the end.
func (w *walker) walkStmts(stmts []ast.Stmt, held []Lock) []Lock {
	for _, stmt := range stmts {
		held = w.walkStmt(stmt, held)
	}
	return held
}

func (w *walker) walkStmt(stmt ast.Stmt, held []Lock) []Lock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lock, kind := w.lockOp(call); kind == opLock {
				if w.hooks.OnAcquire != nil {
					w.hooks.OnAcquire(lock, held)
				}
				return append(copyOf(held), lock)
			} else if kind == opUnlock {
				return remove(held, lock.Key)
			}
		}
		w.checkExpr(s.X, held)
	case *ast.SendStmt:
		if w.hooks.OnSend != nil {
			w.hooks.OnSend(s, held)
		}
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the remaining walk,
		// which is exactly right; other deferred calls run at return and
		// are out of scope for this lexical analysis.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, nil)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.walkStmts(s.Body.List, copyOf(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyOf(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		body := copyOf(held)
		body = w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.walkStmts(s.Body.List, copyOf(held))
	case *ast.BlockStmt:
		held = w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		held = w.walkStmt(s.Stmt, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyOf(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyOf(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && w.hooks.OnBlockingSelect != nil {
			w.hooks.OnBlockingSelect(s, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyOf(held))
			}
		}
	}
	return held
}

// checkExpr fires hooks for events syntactically inside e. Function
// literals start a fresh (un-locked) context unless immediately invoked.
func (w *walker) checkExpr(e ast.Expr, held []Lock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(v.Body.List, nil)
			return false
		case *ast.CallExpr:
			if lit, ok := v.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs under the caller's locks.
				for _, arg := range v.Args {
					w.checkExpr(arg, held)
				}
				w.walkStmts(lit.Body.List, copyOf(held))
				return false
			}
			if w.hooks.OnCall != nil {
				w.hooks.OnCall(v, held)
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && w.hooks.OnRecv != nil {
				w.hooks.OnRecv(v, held)
			}
		}
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as taking or releasing a mutex.
func (w *walker) lockOp(call *ast.CallExpr) (Lock, lockOpKind) {
	recv, name, ok := methodRecv(w.info, call)
	if !ok || !mutexRecvs[recv] {
		return Lock{}, opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Lock{}, opNone
	}
	lock := Lock{Key: types.ExprString(sel.X), Class: lockClass(w.info, sel.X), Pos: call.Pos()}
	switch name {
	case "Lock", "RLock":
		return lock, opLock
	case "Unlock", "RUnlock":
		return lock, opUnlock
	}
	return Lock{}, opNone
}

// lockClass derives a cross-package identity for the mutex expression:
// "<pkg>.<Type>.<field>" for a struct field, "<pkg>.<var>" for a
// package-level mutex, "" for anything without a stable global identity.
func lockClass(info *types.Info, expr ast.Expr) string {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			field, ok := sel.Obj().(*types.Var)
			if !ok || field.Pkg() == nil {
				return ""
			}
			t := sel.Recv()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
			}
			return field.Pkg().Path() + "." + field.Name()
		}
		// Package-qualified package-level mutex (pkg.mu).
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil {
			if _, isPkg := info.Uses[identOf(x.X)].(*types.PkgName); isPkg {
				return obj.Pkg().Path() + "." + obj.Name()
			}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok && obj.Pkg() != nil {
			if obj.Pkg().Scope().Lookup(obj.Name()) == obj {
				return obj.Pkg().Path() + "." + obj.Name()
			}
		}
	}
	return ""
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// methodRecv mirrors analysis.MethodRecv without importing it (lockflow
// sits below the analyzer packages and keeps no framework dependency).
func methodRecv(info *types.Info, call *ast.CallExpr) (recv string, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, isSelection := info.Selections[sel]
	if !isSelection || (selection.Kind() != types.MethodVal && selection.Kind() != types.MethodExpr) {
		return "", "", false
	}
	fn, isFunc := selection.Obj().(*types.Func)
	if !isFunc {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	return sig.Recv().Type().String(), fn.Name(), true
}

func copyOf(held []Lock) []Lock {
	return append([]Lock(nil), held...)
}

func remove(held []Lock, key string) []Lock {
	out := make([]Lock, 0, len(held))
	for _, h := range held {
		if h.Key != key {
			out = append(out, h)
		}
	}
	return out
}
