package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flex/internal/analysis"
)

// writeModule lays out a small two-package module for loader tests.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/mod\n\ngo 1.22\n",
		"util/util.go": `package util

import "time"

func Stamp() time.Time { return time.Time{} }
`,
		"app/app.go": `package app

import "example.com/mod/util"

func Bad() { _ = util.Stamp() }
`,
		"app/app_test.go": `package app

func helperOnlyInTests() {}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(old) })
}

func TestLoaderLoadsModulePackagesWithTypes(t *testing.T) {
	dir := writeModule(t)
	chdir(t, dir)
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if got := loader.ModulePath(); got != "example.com/mod" {
		t.Fatalf("module path = %q", got)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Path != "example.com/mod/app" || pkgs[1].Path != "example.com/mod/util" {
		t.Fatalf("paths = %s, %s", pkgs[0].Path, pkgs[1].Path)
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.TypesInfo == nil || len(pkg.Files) == 0 {
			t.Fatalf("package %s missing type information", pkg.Path)
		}
	}
	// Test files are excluded by default.
	for _, f := range pkgs[0].Files {
		if strings.HasSuffix(loader.Fset.Position(f.Pos()).Filename, "_test.go") {
			t.Fatalf("loader included a test file without IncludeTests")
		}
	}
}

func TestLoaderIncludeTests(t *testing.T) {
	dir := writeModule(t)
	chdir(t, dir)
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = true
	pkg, err := loader.LoadImport("example.com/mod/app")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("got %d files, want 2 (source + test)", len(pkg.Files))
	}
}

func TestRunReportsSortedFindingsAndScope(t *testing.T) {
	dir := writeModule(t)
	chdir(t, dir)
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	funcFinder := &analysis.Analyzer{
		Name: "funcfinder",
		Doc:  "reports every function declaration",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					if fn, ok := decl.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "func %s", fn.Name.Name)
					}
				}
			}
			return nil, nil
		},
	}
	findings, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{funcFinder}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(findings))
	}
	if findings[0].Message != "func Bad" || findings[1].Message != "func Stamp" {
		t.Fatalf("messages = %q, %q", findings[0].Message, findings[1].Message)
	}
	out := analysis.Format(loader.Fset, dir, findings[0])
	if !strings.HasPrefix(out, filepath.Join("app", "app.go")+":") || !strings.Contains(out, "[funcfinder]") {
		t.Fatalf("formatted finding = %q", out)
	}

	// Scoping to util drops the app finding.
	scoped, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{funcFinder},
		func(a *analysis.Analyzer, pkgPath string) bool { return strings.HasSuffix(pkgPath, "/util") })
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped) != 1 || scoped[0].Message != "func Stamp" {
		t.Fatalf("scoped findings = %+v", scoped)
	}
}

func TestLoaderRejectsOutsideModule(t *testing.T) {
	dir := writeModule(t)
	chdir(t, dir)
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadImport("example.com/other/pkg"); err == nil {
		t.Fatal("expected error for a package outside the module")
	}
}
