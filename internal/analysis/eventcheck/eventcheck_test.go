package eventcheck_test

import (
	"testing"

	"flex/internal/analysis/analysistest"
	"flex/internal/analysis/eventcheck"
)

func TestEventcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), eventcheck.Analyzer, "a", "b", "stampobs")
}
