// Package recorder is a fixture stand-in for the real flight recorder:
// eventcheck matches on the import-path suffix, so this shadow package
// exercises it without importing the repo.
package recorder

type Event struct {
	Type    int
	Subject string
}

type Recorder struct{}

func New(capacity int) *Recorder { return &Recorder{} }

func (r *Recorder) Emit(e Event) uint64 { return 0 }

func (r *Recorder) NextEpisode() uint64 { return 0 }

func (r *Recorder) Seq() uint64 { return 0 }
