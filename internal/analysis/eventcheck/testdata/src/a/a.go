// Fixture: flight-recorder emission under a held mutex is flagged; the
// collect-under-lock / emit-after-unlock pattern, goroutine bodies, and
// emission before the lock are not.
package a

import (
	"sync"

	"flex/internal/obs/recorder"
)

type Manager struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	rec   *recorder.Recorder
	state int
}

func (m *Manager) badEmitUnderLock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state++
	m.rec.Emit(recorder.Event{Type: 1}) // want `flight-recorder Emit while mutex "m\.mu" is held`
}

func (m *Manager) badEmitUnderRLock() int {
	m.rw.RLock()
	m.rec.Emit(recorder.Event{Type: 2}) // want `flight-recorder Emit while mutex "m\.rw" is held`
	v := m.state
	m.rw.RUnlock()
	return v
}

func (m *Manager) badEpisodeUnderLock() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rec.NextEpisode() // want `flight-recorder NextEpisode while mutex "m\.mu" is held`
}

func (m *Manager) badEmitInBranch(overdraw bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if overdraw {
		m.rec.Emit(recorder.Event{Type: 3}) // want `flight-recorder Emit while mutex "m\.mu" is held`
	}
}

func (m *Manager) badEmitAssigned() {
	m.mu.Lock()
	seq := m.rec.Emit(recorder.Event{Type: 4}) // want `flight-recorder Emit while mutex "m\.mu" is held`
	m.state = int(seq)
	m.mu.Unlock()
}

func (m *Manager) goodEmitAfterUnlock() {
	m.mu.Lock()
	e := recorder.Event{Type: 5, Subject: "rack"}
	m.state++
	m.mu.Unlock()
	m.rec.Emit(e)
}

func (m *Manager) goodEmitBeforeLock() {
	m.rec.Emit(recorder.Event{Type: 6})
	m.mu.Lock()
	m.state++
	m.mu.Unlock()
}

func (m *Manager) goodEmitInGoroutine() {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		m.rec.Emit(recorder.Event{Type: 7})
	}()
}

func (m *Manager) goodTwoPhase() {
	m.mu.Lock()
	dirty := m.state > 0
	m.mu.Unlock()
	if dirty {
		m.rec.Emit(recorder.Event{Type: 8})
	}
	m.mu.Lock()
	m.state = 0
	m.mu.Unlock()
}
