// Fixture: exemplar attach on histogram observe. The exemplar slot is
// written under its own mutex, but the flight-recorder event that the
// exemplar joins to must be emitted outside it — stamping the event
// sequence first, then attaching, is the sanctioned order.
package stampobs

import (
	"sync"

	"flex/internal/obs/recorder"
)

type exemplar struct {
	value   float64
	episode uint64
	event   uint64
}

type slot struct {
	mu sync.Mutex
	ex exemplar
}

type Hist struct {
	slot slot
	rec  *recorder.Recorder
}

func (h *Hist) badEmitUnderSlotMutex(v float64) {
	h.slot.mu.Lock()
	defer h.slot.mu.Unlock()
	seq := h.rec.Emit(recorder.Event{Type: 1}) // want `flight-recorder Emit while mutex "h\.slot\.mu" is held`
	h.slot.ex = exemplar{value: v, event: seq}
}

func (h *Hist) badEpisodeUnderSlotMutex(v float64) {
	h.slot.mu.Lock()
	defer h.slot.mu.Unlock()
	h.slot.ex = exemplar{value: v, episode: h.rec.NextEpisode()} // want `flight-recorder NextEpisode while mutex "h\.slot\.mu" is held`
}

// goodEmitThenAttach is the real ObserveExemplar order: the recorder
// event exists before the slot mutex is taken, the exemplar only copies
// its identifiers.
func (h *Hist) goodEmitThenAttach(v float64, episode uint64) {
	seq := h.rec.Emit(recorder.Event{Type: 2, Subject: "stage"})
	h.slot.mu.Lock()
	h.slot.ex = exemplar{value: v, episode: episode, event: seq}
	h.slot.mu.Unlock()
}
