// Fixture: a helper package that emits flight-recorder events. Importers
// calling these under a held mutex are flagged interprocedurally through
// the exported emits fact.
package emit

import "flex/internal/obs/recorder"

// Notify emits directly.
func Notify(r *recorder.Recorder) {
	r.Emit(recorder.Event{Type: 9})
}

// NotifyAll reaches the recorder through Notify, so it carries the fact
// too, with the intermediate callee recorded.
func NotifyAll(r *recorder.Recorder) {
	Notify(r)
}
