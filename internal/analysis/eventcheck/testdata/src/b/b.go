// Fixture: interprocedural — calling an emitting helper from another
// package while a mutex is held is flagged just like a direct Emit.
package b

import (
	"sync"

	"emit"
	"flex/internal/obs/recorder"
)

type Gate struct {
	mu  sync.Mutex
	rec *recorder.Recorder
	n   int
}

func (g *Gate) badHelperUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	emit.Notify(g.rec) // want `call to Notify emits flight-recorder events \(via Emit\) while mutex "g\.mu" is held`
}

func (g *Gate) badChainUnderLock() {
	g.mu.Lock()
	emit.NotifyAll(g.rec) // want `call to NotifyAll emits flight-recorder events \(via emit\.Notify\) while mutex "g\.mu" is held`
	g.mu.Unlock()
}

func (g *Gate) goodHelperAfterUnlock() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	emit.Notify(g.rec)
}
