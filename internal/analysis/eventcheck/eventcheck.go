// Package eventcheck flags flight-recorder emission while a sync.Mutex
// or sync.RWMutex is held: any method call on obs/recorder.Recorder
// (Emit, NextEpisode, …) inside a critical section.
//
// Recorder methods take the recorder's internal lock and, with a sink
// attached, Emit serializes JSON and writes it under that lock. Calling
// them while holding a component mutex nests the two locks, stretches
// the component's critical section across serialization and I/O, and —
// because hot paths like the telemetry fan-out and the actuation path
// are themselves recorded — is the canonical recipe for lock-order
// inversion between a component and its recorder. Every instrumented
// path in the repo collects what it needs under its lock, unlocks, then
// emits; this analyzer keeps it that way.
//
// The held-lock tracking mirrors locksend's lexical walk: a lock is held
// from x.Lock()/x.RLock() to x.Unlock()/x.RUnlock() in the same
// statement sequence, a deferred unlock holds to the end of the
// function, branches get a copy of the held set, and goroutine bodies
// start clean.
package eventcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"flex/internal/analysis"
)

// Analyzer is the eventcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "eventcheck",
	Doc: "flag flight-recorder emission while a sync mutex is held\n\n" +
		"Recorder methods lock internally and may write to a sink; calling\n" +
		"them under a component mutex nests locks and drags serialization\n" +
		"and I/O into the critical section. Emit after unlocking.",
	Run: run,
}

// mutexRecvs are receiver types whose Lock/Unlock family manages a mutex.
var mutexRecvs = map[string]bool{
	"*sync.Mutex":   true,
	"*sync.RWMutex": true,
	"sync.Locker":   true,
}

// recorderSuffix identifies the flight-recorder type across fixture and
// real import paths.
const recorderSuffix = "internal/obs/recorder.Recorder"

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.walkStmts(fn.Body.List, nil)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// walkStmts threads the held-lock set through a statement sequence and
// returns it as of the end.
func (c *checker) walkStmts(stmts []ast.Stmt, held []string) []string {
	for _, stmt := range stmts {
		held = c.walkStmt(stmt, held)
	}
	return held
}

func (c *checker) walkStmt(stmt ast.Stmt, held []string) []string {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind := c.lockOp(call); kind == opLock {
				return append(copyOf(held), key)
			} else if kind == opUnlock {
				return remove(held, key)
			}
		}
		c.checkExpr(s.X, held)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, held)
		c.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the remaining walk;
		// a deferred Emit runs at return, possibly still under a deferred
		// unlock registered earlier, but ordering deferred calls is beyond
		// this lexical analysis.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, nil)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.walkStmts(s.Body.List, copyOf(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyOf(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		body := copyOf(held)
		body = c.walkStmts(s.Body.List, body)
		if s.Post != nil {
			c.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		c.checkExpr(s.X, held)
		c.walkStmts(s.Body.List, copyOf(held))
	case *ast.BlockStmt:
		held = c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		held = c.walkStmt(s.Stmt, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyOf(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyOf(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, copyOf(held))
			}
		}
	}
	return held
}

// checkExpr reports recorder method calls syntactically inside e.
// Function literals start a fresh (un-locked) context unless immediately
// invoked.
func (c *checker) checkExpr(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(v.Body.List, nil)
			return false
		case *ast.CallExpr:
			if lit, ok := v.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs under the caller's locks.
				for _, arg := range v.Args {
					c.checkExpr(arg, held)
				}
				c.walkStmts(lit.Body.List, copyOf(held))
				return false
			}
			if len(held) > 0 {
				if name := c.recorderCall(v); name != "" {
					c.pass.Reportf(v.Pos(), "flight-recorder %s while mutex %q is held; collect the event under the lock and emit after unlocking", name, held[0])
				}
			}
		}
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as taking or releasing a mutex and returns the
// lock's receiver expression ("s.mu") as its identity.
func (c *checker) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	recv, name, ok := analysis.MethodRecv(c.pass.TypesInfo, call)
	if !ok || !mutexRecvs[recv] {
		return "", opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	key := types.ExprString(sel.X)
	switch name {
	case "Lock", "RLock":
		return key, opLock
	case "Unlock", "RUnlock":
		return key, opUnlock
	}
	return "", opNone
}

// recorderCall returns a display name ("Emit") when the call is a method
// on the flight recorder (pointer or value receiver).
func (c *checker) recorderCall(call *ast.CallExpr) string {
	recv, name, ok := analysis.MethodRecv(c.pass.TypesInfo, call)
	if !ok {
		return ""
	}
	recv = strings.TrimPrefix(recv, "*")
	if !strings.HasSuffix(recv, recorderSuffix) {
		return ""
	}
	return name
}

func copyOf(held []string) []string {
	return append([]string(nil), held...)
}

func remove(held []string, key string) []string {
	out := make([]string, 0, len(held))
	for _, h := range held {
		if h != key {
			out = append(out, h)
		}
	}
	return out
}
