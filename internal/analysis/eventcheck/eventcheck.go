// Package eventcheck flags flight-recorder emission while a sync.Mutex
// or sync.RWMutex is held: any method call on obs/recorder.Recorder
// (Emit, NextEpisode, …) inside a critical section — directly, or
// through any chain of helpers, across package boundaries.
//
// Recorder methods take the recorder's internal lock and, with a sink
// attached, Emit serializes JSON and writes it under that lock. Calling
// them while holding a component mutex nests the two locks, stretches
// the component's critical section across serialization and I/O, and —
// because hot paths like the telemetry fan-out and the actuation path
// are themselves recorded — is the canonical recipe for lock-order
// inversion between a component and its recorder. Every instrumented
// path in the repo collects what it needs under its lock, unlocks, then
// emits; this analyzer keeps it that way.
//
// Interprocedurally, the analyzer exports an emits fact on every
// function from which a recorder method call is statically reachable
// (the defining package publishes it; importers consume it), so a
// helper like logDecision() that emits is caught at a locked call site
// in another package just like a direct r.Emit would be.
//
// The held-lock tracking is the shared lexical walk in
// flex/internal/analysis/lockflow (see that package for the exact
// semantics).
package eventcheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"flex/internal/analysis"
	"flex/internal/analysis/lockflow"
)

// Analyzer is the eventcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "eventcheck",
	Doc: "flag flight-recorder emission while a sync mutex is held\n\n" +
		"Recorder methods lock internally and may write to a sink; calling\n" +
		"them under a component mutex nests locks and drags serialization\n" +
		"and I/O into the critical section. Emit after unlocking — directly\n" +
		"and through helper functions in any package.",
	Run: run,
}

// recorderSuffix identifies the flight-recorder type across fixture and
// real import paths.
const recorderSuffix = "internal/obs/recorder.Recorder"

// emitsFact marks a function from which a flight-recorder method call is
// statically reachable.
type emitsFact struct {
	// Via names the recorder method ("Emit") or the intermediate callee
	// ("telemetry.logDecision") the emission flows through.
	Via string
}

func (*emitsFact) AFact() {}

func run(pass *analysis.Pass) (interface{}, error) {
	exportEmitters(pass)

	lockflow.Walk(pass.TypesInfo, pass.Files, lockflow.Hooks{
		OnCall: func(call *ast.CallExpr, held []lockflow.Lock) {
			if len(held) == 0 {
				return
			}
			if name := recorderCall(pass.TypesInfo, call); name != "" {
				pass.Reportf(call.Pos(), "flight-recorder %s while mutex %q is held; collect the event under the lock and emit after unlocking", name, held[0].Key)
				return
			}
			callee := analysis.StaticCallee(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			var fact emitsFact
			if pass.ImportObjectFact(callee, &fact) {
				pass.Reportf(call.Pos(), "call to %s emits flight-recorder events (via %s) while mutex %q is held; emit after unlocking", callee.Name(), fact.Via, held[0].Key)
			}
		},
	})
	return nil, nil
}

// exportEmitters publishes an emitsFact for every function in the package
// from which a recorder method call is statically reachable. Facts from
// imported packages already exist (the driver runs packages in dependency
// order); a fixpoint loop handles helper chains within this package
// regardless of declaration order.
func exportEmitters(pass *analysis.Pass) {
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnDecl{obj, fd})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			var have emitsFact
			if pass.ImportObjectFact(fn.obj, &have) {
				continue
			}
			via := ""
			ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
				if via != "" {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := recorderCall(pass.TypesInfo, call); name != "" {
					via = name
					return false
				}
				if callee := analysis.StaticCallee(pass.TypesInfo, call); callee != nil {
					var fact emitsFact
					if pass.ImportObjectFact(callee, &fact) {
						via = calleeLabel(callee)
						return false
					}
				}
				return true
			})
			if via != "" {
				pass.ExportObjectFact(fn.obj, &emitsFact{Via: via})
				changed = true
			}
		}
	}
}

// calleeLabel renders a short "pkg.Func" label for diagnostics.
func calleeLabel(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	path := fn.Pkg().Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return fmt.Sprintf("%s.%s", path, fn.Name())
}

// recorderCall returns a display name ("Emit") when the call is a method
// on the flight recorder (pointer or value receiver).
func recorderCall(info *types.Info, call *ast.CallExpr) string {
	recv, name, ok := analysis.MethodRecv(info, call)
	if !ok {
		return ""
	}
	recv = strings.TrimPrefix(recv, "*")
	if !strings.HasSuffix(recv, recorderSuffix) {
		return ""
	}
	return name
}
