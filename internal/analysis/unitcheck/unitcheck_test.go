package unitcheck_test

import (
	"testing"

	"flex/internal/analysis/analysistest"
	"flex/internal/analysis/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), unitcheck.Analyzer, "a")
}
