// Fixture: arithmetic mixing conflicting power-unit suffixes is flagged;
// explicit conversions, same-unit arithmetic, and multiplicative
// combinations are not.
package a

type Config struct {
	BudgetMW  float64
	PerRackKW float64
}

func bad(loadKW, totalMW, drawWatts, energyKWh float64, cfg Config) float64 {
	sum := loadKW + totalMW // want `"\+" mixes units kW and MW`
	if loadKW > drawWatts { // want `">" mixes units kW and W`
		sum++
	}
	if drawWatts == totalMW { // want `"==" mixes units W and MW`
		sum++
	}
	if loadKW != energyKWh { // want `"!=" mixes units kW and kWh`
		sum++
	}
	sum -= cfg.BudgetMW - cfg.PerRackKW // want `"-" mixes units MW and kW`
	rackKW := loadKW
	rackKW -= totalMW   // want `"-=" mixes units kW and MW`
	rackKW += drawWatts // want `"\+=" mixes units kW and W`
	return sum + rackKW
}

func good(loadKW, otherKW, totalMW, drawWatts, hours, price float64) float64 {
	sum := loadKW + otherKW        // same unit
	sum += totalMW*1000 - loadKW   // explicit conversion silences the check
	sum += loadKW - drawWatts/1000 // explicit conversion on either side
	energy := loadKW * hours       // multiplication combines units legitimately
	cost := energy * price         // no unit suffix on either side
	ratio := drawWatts / drawWatts // division never flagged
	watts := loadKW                // renaming through a variable is out of scope
	if watts > totalMW {
		sum++
	}
	return sum + cost + ratio
}
