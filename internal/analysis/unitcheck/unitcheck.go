// Package unitcheck flags arithmetic that mixes identifiers carrying
// conflicting power-unit suffixes without an explicit conversion.
//
// All power quantities in this repository are expressed in watts
// (power.Watts), but code at the boundaries — trace ingestion, report
// rendering, config parsing — names values after the unit they carry:
// powerKW, budgetMW, energyKWh, perRackWatts. Adding or comparing a *KW
// identifier directly to a *MW or *Watts one is the classic
// kilowatts-vs-watts bug: the load-flow result is silently off by three
// orders of magnitude and every downstream safety decision inherits the
// corruption.
//
// The check fires on additive and comparison operators (+, -, <, <=, >,
// >=, ==, !=, +=, -=) whose two operands are bare identifiers (or
// selector chains) with conflicting unit suffixes. Wrapping either side
// in any arithmetic — wattsTotal/1000, kwLoad*1000 — counts as an
// explicit conversion and silences the check, as does mixing via an
// intermediate variable. Multiplication and division are never flagged:
// they legitimately combine different units (power × price, energy ÷
// time).
package unitcheck

import (
	"go/ast"
	"go/token"
	"strings"

	"flex/internal/analysis"
)

// Analyzer is the unitcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "unitcheck",
	Doc: "flag arithmetic mixing conflicting power-unit suffixes\n\n" +
		"Identifiers suffixed KW/MW/Watts/KWh must not be added or compared\n" +
		"directly to identifiers of a different unit; convert explicitly.",
	Run: run,
}

// unitSuffixes maps recognized identifier suffixes to a canonical unit,
// longest-suffix-first at match time so KWh does not read as W-with-junk.
var unitSuffixes = []struct{ suffix, unit string }{
	{"KWh", "kWh"}, {"kWh", "kWh"}, {"Kwh", "kWh"},
	{"MWh", "MWh"}, {"mWh", "MWh"},
	{"GWh", "GWh"},
	{"Watts", "W"},
	{"KW", "kW"}, {"kW", "kW"}, {"Kw", "kW"},
	{"MW", "MW"},
	{"GW", "GW"},
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch expr := n.(type) {
			case *ast.BinaryExpr:
				if additiveOrComparison(expr.Op) {
					check(pass, expr.OpPos, expr.Op.String(), expr.X, expr.Y)
				}
			case *ast.AssignStmt:
				if (expr.Tok == token.ADD_ASSIGN || expr.Tok == token.SUB_ASSIGN) && len(expr.Lhs) == 1 && len(expr.Rhs) == 1 {
					check(pass, expr.TokPos, expr.Tok.String(), expr.Lhs[0], expr.Rhs[0])
				}
			}
			return true
		})
	}
	return nil, nil
}

func additiveOrComparison(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func check(pass *analysis.Pass, pos token.Pos, op string, x, y ast.Expr) {
	ux, okx := unitOf(x)
	uy, oky := unitOf(y)
	if !okx || !oky || ux == uy {
		return
	}
	pass.Reportf(pos, "%q mixes units %s and %s without an explicit conversion", op, ux, uy)
}

// unitOf extracts the unit a bare identifier or selector carries from its
// name's suffix. Compound expressions return ok=false — any arithmetic
// around an operand is taken as a deliberate conversion.
func unitOf(e ast.Expr) (string, bool) {
	var name string
	switch v := e.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	default:
		return "", false
	}
	for _, s := range unitSuffixes {
		if name == s.suffix {
			return s.unit, true
		}
		if rest, ok := strings.CutSuffix(name, s.suffix); ok {
			// The character before the suffix must end a word (lowercase
			// letter, digit, or underscore) so that e.g. "DrawKW" matches
			// but an all-caps acronym like "HW" does not misparse.
			last := rest[len(rest)-1]
			if last == '_' || (last >= 'a' && last <= 'z') || (last >= '0' && last <= '9') {
				return s.unit, true
			}
		}
	}
	return "", false
}
