// Package clockcheck forbids direct use of the wall clock. Every
// time-dependent Flex component — the simulator, the telemetry pipeline,
// Flex-Online controllers, the rackmgr watchdog — must take its time from
// an injected clock.Clock so that tests and the simulator can replay the
// UPS overload-tolerance window deterministically. A stray time.Now or
// time.Sleep silently couples a component to wall time and breaks that
// replay; internal/telemetry/transport.go's reconnect throttle was exactly
// such a regression.
//
// The check exempts the clock package itself (clock.Real is the one place
// allowed to touch the wall clock) and _test.go files, where wall-clock
// deadlines around blocking operations are legitimate.
package clockcheck

import (
	"go/ast"
	"strings"

	"flex/internal/analysis"
)

// forbidden lists the time package entry points that read or wait on the
// wall clock. Pure constructors like time.Date or time.Unix are fine.
var forbidden = map[string]bool{
	"time.Now":       true,
	"time.Sleep":     true,
	"time.After":     true,
	"time.AfterFunc": true,
	"time.Tick":      true,
	"time.NewTimer":  true,
	"time.NewTicker": true,
	"time.Since":     true,
	"time.Until":     true,
}

// Analyzer is the clockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc: "forbid direct wall-clock use outside internal/clock\n\n" +
		"Flex components must use the injected clock.Clock; direct time.Now/\n" +
		"time.Sleep/time.After calls break deterministic simulation and the\n" +
		"controller's shed-deadline tests.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if exemptPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.PkgFunc(pass.TypesInfo, call)
			if forbidden[fn] {
				pass.Reportf(call.Pos(), "direct %s call: use the injected clock.Clock so time is deterministic in simulation and tests", fn)
			}
			return true
		})
	}
	return nil, nil
}

// exemptPackage reports whether pkg is the injectable clock itself.
func exemptPackage(path string) bool {
	return path == "internal/clock" || strings.HasSuffix(path, "/internal/clock")
}
