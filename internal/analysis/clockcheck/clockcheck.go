// Package clockcheck forbids direct use of the wall clock. Every
// time-dependent Flex component — the simulator, the telemetry pipeline,
// Flex-Online controllers, the rackmgr watchdog — must take its time from
// an injected clock.Clock so that tests and the simulator can replay the
// UPS overload-tolerance window deterministically. A stray time.Now or
// time.Sleep silently couples a component to wall time and breaks that
// replay; internal/telemetry/transport.go's reconnect throttle was exactly
// such a regression.
//
// The check exempts the clock package itself (clock.Real is the one place
// allowed to touch the wall clock) and _test.go files, where wall-clock
// deadlines around blocking operations are legitimate.
//
// Interprocedurally, the clock package's functions that touch the wall
// clock carry an exported fact, and any *static* call to such a function
// from outside the exemption — clock.Real{}.Now() on a concrete value,
// or a helper that wraps it — is flagged at the call site. Dynamic calls
// through the clock.Clock interface are deliberately not flagged: interface
// injection is the sanctioned pattern, and which implementation runs is a
// wiring decision, not a wall-clock leak.
package clockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"flex/internal/analysis"
)

// forbidden lists the time package entry points that read or wait on the
// wall clock. Pure constructors like time.Date or time.Unix are fine.
var forbidden = map[string]bool{
	"time.Now":       true,
	"time.Sleep":     true,
	"time.After":     true,
	"time.AfterFunc": true,
	"time.Tick":      true,
	"time.NewTimer":  true,
	"time.NewTicker": true,
	"time.Since":     true,
	"time.Until":     true,
}

// Analyzer is the clockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc: "forbid direct wall-clock use outside internal/clock\n\n" +
		"Flex components must use the injected clock.Clock; direct time.Now/\n" +
		"time.Sleep/time.After calls break deterministic simulation and the\n" +
		"controller's shed-deadline tests.",
	Run: run,
}

// wallClockFact marks an exempt-package function that reads or waits on
// the wall clock; static calls to it from outside the exemption are
// flagged at the call site.
type wallClockFact struct {
	// Via is the time entry point the function touches, e.g. "time.Now".
	Via string
}

func (*wallClockFact) AFact() {}

func run(pass *analysis.Pass) (interface{}, error) {
	if exemptPackage(pass.Pkg.Path()) {
		exportWallClockFacts(pass)
		return nil, nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.PkgFunc(pass.TypesInfo, call)
			if forbidden[fn] {
				pass.Reportf(call.Pos(), "direct %s call: use the injected clock.Clock so time is deterministic in simulation and tests", fn)
				return true
			}
			if callee := analysis.StaticCallee(pass.TypesInfo, call); callee != nil {
				var fact wallClockFact
				if pass.ImportObjectFact(callee, &fact) {
					pass.Reportf(call.Pos(), "call to %s reaches the wall clock (%s): inject it as a clock.Clock so time is deterministic in simulation and tests", callee.Name(), fact.Via)
				}
			}
			return true
		})
	}
	return nil, nil
}

// exportWallClockFacts publishes a wallClockFact for every function in
// the exempt clock package whose body touches a forbidden time entry
// point. The driver analyzes the clock package before its importers, so
// the facts exist when call sites elsewhere are checked.
func exportWallClockFacts(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			via := ""
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if via != "" {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := analysis.PkgFunc(pass.TypesInfo, call); forbidden[fn] {
						via = fn
						return false
					}
				}
				return true
			})
			if via != "" {
				pass.ExportObjectFact(obj, &wallClockFact{Via: via})
			}
		}
	}
}

// exemptPackage reports whether pkg is the injectable clock itself.
func exemptPackage(path string) bool {
	return path == "internal/clock" || strings.HasSuffix(path, "/internal/clock")
}
