package clockcheck_test

import (
	"testing"

	"flex/internal/analysis/analysistest"
	"flex/internal/analysis/clockcheck"
)

func TestClockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), clockcheck.Analyzer,
		"a", "b", "transport", "flex/internal/clock")
}
