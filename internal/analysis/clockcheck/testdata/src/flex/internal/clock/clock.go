// Fixture: the injectable clock package itself is the one place allowed
// to touch the wall clock; nothing here is flagged.
package clock

import "time"

type Real struct{}

func (Real) Now() time.Time                         { return time.Now() }
func (Real) Sleep(d time.Duration)                  { time.Sleep(d) }
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }
