// Fixture: direct wall-clock use in an ordinary package must be flagged.
package a

import "time"

type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
}

func bad() {
	now := time.Now() // want `direct time\.Now call`
	_ = now
	time.Sleep(time.Second)       // want `direct time\.Sleep call`
	<-time.After(time.Second)     // want `direct time\.After call`
	t := time.NewTimer(time.Hour) // want `direct time\.NewTimer call`
	t.Stop()
	k := time.NewTicker(time.Hour) // want `direct time\.NewTicker call`
	k.Stop()
	_ = time.Since(time.Time{}) // want `direct time\.Since call`
	_ = time.Until(time.Time{}) // want `direct time\.Until call`
}

func good(clk Clock) {
	now := clk.Now()
	_ = now
	clk.Sleep(time.Second)
	<-clk.After(time.Second)
	// Pure time constructors and arithmetic are fine.
	_ = time.Date(2021, time.June, 14, 0, 0, 0, 0, time.UTC)
	_ = 5 * time.Second
	_ = time.Unix(0, 0)
}
