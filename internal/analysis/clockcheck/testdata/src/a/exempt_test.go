// Fixture: _test.go files may use the wall clock for deadlines around
// genuinely blocking operations; nothing here is flagged.
package a

import "time"

func pollUntil(deadline time.Duration, cond func() bool) bool {
	limit := time.Now().Add(deadline)
	for time.Now().Before(limit) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}
