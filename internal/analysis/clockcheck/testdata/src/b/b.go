// Fixture: interprocedural — static calls to clock-package functions
// that touch the wall clock are flagged at the call site via the
// exported fact; dynamic calls through the injected interface are the
// sanctioned pattern and stay clean.
package b

import (
	"time"

	"flex/internal/clock"
)

type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

func badConcreteNow() time.Time {
	var r clock.Real
	return r.Now() // want `call to Now reaches the wall clock \(time\.Now\): inject it as a clock\.Clock`
}

func badConcreteSleep() {
	clock.Real{}.Sleep(time.Millisecond) // want `call to Sleep reaches the wall clock \(time\.Sleep\)`
}

func goodInjected(c Clock) time.Time {
	c.Sleep(time.Millisecond)
	return c.Now()
}
