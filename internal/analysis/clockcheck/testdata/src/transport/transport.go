// Fixture reproducing the pre-fix internal/telemetry/transport.go
// pattern: a reconnect throttle reading the wall clock directly instead
// of the injected clock — the regression clockcheck exists to catch.
package transport

import (
	"net"
	"sync"
	"time"
)

type RemotePublisher struct {
	addr string

	mu            sync.Mutex
	conn          net.Conn
	lastRetry     time.Time
	RetryInterval time.Duration
}

func (p *RemotePublisher) reconnectLocked() bool {
	now := time.Now() // want `direct time\.Now call`
	if now.Sub(p.lastRetry) < p.RetryInterval {
		return false
	}
	p.lastRetry = now
	conn, err := net.DialTimeout("tcp", p.addr, time.Second)
	if err != nil {
		return false
	}
	p.conn = conn
	return true
}
