package analysis_test

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"flex/internal/analysis"
)

// stampFact marks a function the test analyzer found interesting.
type stampFact struct{ Label string }

func (*stampFact) AFact() {}

// TestFactsFlowAcrossPackages exports a fact on a function in the
// defining package and consumes it at a call site in an importer, then
// reads the accumulated store back in the Finish pass.
func TestFactsFlowAcrossPackages(t *testing.T) {
	writeFiles(t, map[string]string{
		"go.mod": "module example.com/facts\n\ngo 1.22\n",
		"util/util.go": `package util

func Stamp() int { return 1 }

func Plain() int { return 2 }
`,
		"app/app.go": `package app

import "example.com/facts/util"

func Use() int { return util.Stamp() + util.Plain() }
`,
	})
	loader, pkgs := loadAll(t)

	var finishFacts []analysis.ObjectFact
	marker := &analysis.Analyzer{
		Name: "marker",
		Doc:  "test analyzer: fact export/import across packages",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			if pass.Pkg.Name() == "util" {
				fn, ok := pass.Pkg.Scope().Lookup("Stamp").(*types.Func)
				if !ok {
					t.Fatal("util.Stamp not found")
				}
				pass.ExportObjectFact(fn, &stampFact{Label: "wall"})
				return nil, nil
			}
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := analysis.StaticCallee(pass.TypesInfo, call)
					if callee == nil {
						return true
					}
					var fact stampFact
					if pass.ImportObjectFact(callee, &fact) {
						pass.Reportf(call.Pos(), "call to fact carrier %s (%s)", callee.Name(), fact.Label)
					}
					return true
				})
			}
			return nil, nil
		},
		Finish: func(mp *analysis.ModulePass) error {
			finishFacts = mp.AllObjectFacts(&stampFact{})
			return nil
		},
	}
	findings, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{marker}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	if want := "call to fact carrier Stamp (wall)"; findings[0].Message != want {
		t.Fatalf("message = %q, want %q", findings[0].Message, want)
	}
	if !strings.HasSuffix(findings[0].Pkg.Path, "/app") {
		t.Fatalf("finding attributed to %s, want the importer", findings[0].Pkg.Path)
	}
	if len(finishFacts) != 1 || finishFacts[0].Object.Name() != "Stamp" {
		t.Fatalf("AllObjectFacts = %+v, want the single Stamp fact", finishFacts)
	}
	if got := finishFacts[0].Fact.(*stampFact).Label; got != "wall" {
		t.Fatalf("fact label = %q, want wall", got)
	}
}

// TestIgnoreDirectives checks suppression on the same line and the line
// above, analyzer-name matching, and the malformed-directive diagnostic.
func TestIgnoreDirectives(t *testing.T) {
	writeFiles(t, map[string]string{
		"go.mod": "module example.com/ig\n\ngo 1.22\n",
		"p/p.go": `package p

func SameLine() {} //flexlint:ignore noisy documented trailing suppression

//flexlint:ignore noisy documented suppression above the line
func LineAbove() {}

func Reported() {}

//flexlint:ignore noisy
func BareIgnore() {}

//flexlint:ignore other reason naming a different analyzer
func WrongAnalyzer() {}
`,
	})
	loader, pkgs := loadAll(t)
	noisy := &analysis.Analyzer{
		Name: "noisy",
		Doc:  "test analyzer: reports every function declaration",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					if fn, ok := decl.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "func %s", fn.Name.Name)
					}
				}
			}
			return nil, nil
		},
	}
	findings, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{noisy}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Category+": "+f.Message)
	}
	want := []string{
		"noisy: func Reported",
		"flexlint: flexlint:ignore requires an analyzer name and a reason, e.g. //flexlint:ignore ctxflow caller is a documented ctx-less wrapper",
		"noisy: func BareIgnore",
		"noisy: func WrongAnalyzer",
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
