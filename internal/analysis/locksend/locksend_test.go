package locksend_test

import (
	"testing"

	"flex/internal/analysis/analysistest"
	"flex/internal/analysis/locksend"
)

func TestLocksend(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), locksend.Analyzer, "a")
}
