// Fixture: blocking operations under a held mutex are flagged; the
// drop-oldest non-blocking select, sends outside the critical section,
// and goroutine bodies are not.
package a

import (
	"sync"
	"time"
)

type Clock interface {
	Sleep(d time.Duration)
}

type Broker struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	subs []chan int
}

func (b *Broker) badSend(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		ch <- v // want `channel send while mutex "b\.mu" is held`
	}
}

func (b *Broker) badSendUnderRLock(v int) {
	b.rw.RLock()
	b.subs[0] <- v // want `channel send while mutex "b\.rw" is held`
	b.rw.RUnlock()
}

func (b *Broker) badBlockingSelect(v int, done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `blocking select while mutex "b\.mu" is held`
	case b.subs[0] <- v:
	case <-done:
	}
}

func (b *Broker) badReceive() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.subs[0] // want `channel receive while mutex "b\.mu" is held`
}

func (b *Broker) badSleep(clk Clock, wg *sync.WaitGroup) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep may block while mutex "b\.mu" is held`
	clk.Sleep(time.Millisecond)  // want `call to \(a\.Clock\)\.Sleep may block while mutex "b\.mu" is held`
	wg.Wait()                    // want `call to \(\*sync\.WaitGroup\)\.Wait may block while mutex "b\.mu" is held`
	b.mu.Unlock()
}

func (b *Broker) goodNonBlockingFanout(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.subs {
		select { // drop-oldest: a select with default never blocks
		case ch <- v:
		default:
			select {
			case <-ch:
			default:
			}
		}
	}
}

func (b *Broker) goodSendOutsideLock(v int) {
	b.mu.Lock()
	subs := make([]chan int, len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	for _, ch := range subs {
		ch <- v // lock released: fine
	}
}

func (b *Broker) goodEarlyUnlockBranch(v int, closed bool) {
	b.mu.Lock()
	if closed {
		b.mu.Unlock()
		b.subs[0] <- v // unlocked on this path: fine
		return
	}
	b.mu.Unlock()
}

func (b *Broker) goodGoroutineDoesNotInherit(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.subs[0] <- v // runs on its own goroutine without the lock
	}()
}

func (b *Broker) badIIFE(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	func() {
		b.subs[0] <- v // want `channel send while mutex "b\.mu" is held`
	}()
}
