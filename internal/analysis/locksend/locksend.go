// Package locksend flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends, channel receives,
// selects with no default case, and calls to known-blocking functions
// (time.Sleep, clock.Clock.Sleep, sync.WaitGroup.Wait).
//
// The telemetry pub/sub fan-out, the poller, and the rackmgr watchdog all
// take a mutex on their hot paths while the goroutines they feed take the
// same locks from the other side; a blocking send under the lock is the
// canonical recipe for the whole pipeline deadlocking the moment one
// subscriber stalls. The drop-oldest pattern those paths use — a select
// with a default case — never blocks and is not flagged.
//
// The held-lock tracking is the shared lexical walk in
// flex/internal/analysis/lockflow: a lock is held from a successful
// x.Lock()/x.RLock() until x.Unlock()/x.RUnlock() in the same statement
// sequence; a deferred unlock keeps the lock held to the end of the
// function; branches are walked with a copy of the held set; goroutine
// bodies and non-invoked function literals start with an empty held set.
package locksend

import (
	"go/ast"
	"go/types"

	"flex/internal/analysis"
	"flex/internal/analysis/lockflow"
)

// Analyzer is the locksend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc: "flag blocking operations while a sync mutex is held\n\n" +
		"Channel sends/receives, default-less selects, and blocking calls\n" +
		"under a held mutex deadlock the telemetry and watchdog paths.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	lockflow.Walk(pass.TypesInfo, pass.Files, lockflow.Hooks{
		OnSend: func(s *ast.SendStmt, held []lockflow.Lock) {
			if len(held) > 0 {
				pass.Reportf(s.Arrow, "channel send while mutex %q is held; use a buffered non-blocking send or move the send outside the critical section", held[0].Key)
			}
		},
		OnRecv: func(e *ast.UnaryExpr, held []lockflow.Lock) {
			if len(held) > 0 {
				pass.Reportf(e.OpPos, "channel receive while mutex %q is held", held[0].Key)
			}
		},
		OnBlockingSelect: func(s *ast.SelectStmt, held []lockflow.Lock) {
			if len(held) > 0 {
				pass.Reportf(s.Select, "blocking select while mutex %q is held; add a default case or move it outside the critical section", held[0].Key)
			}
		},
		OnCall: func(call *ast.CallExpr, held []lockflow.Lock) {
			if len(held) == 0 {
				return
			}
			if name := blockingCall(pass.TypesInfo, call); name != "" {
				pass.Reportf(call.Pos(), "call to %s may block while mutex %q is held", name, held[0].Key)
			}
		},
	})
	return nil, nil
}

// blockingCall returns a display name when the call is known to block:
// time.Sleep, any Sleep(time.Duration) method (the injected clocks), or
// sync.WaitGroup.Wait.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	if analysis.PkgFunc(info, call) == "time.Sleep" {
		return "time.Sleep"
	}
	recv, name, ok := analysis.MethodRecv(info, call)
	if !ok {
		return ""
	}
	if name == "Wait" && recv == "*sync.WaitGroup" {
		return "(*sync.WaitGroup).Wait"
	}
	if name == "Sleep" {
		if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok &&
			sig.Params().Len() == 1 && sig.Params().At(0).Type().String() == "time.Duration" {
			return "(" + recv + ").Sleep"
		}
	}
	return ""
}
