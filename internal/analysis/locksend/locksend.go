// Package locksend flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends, channel receives,
// selects with no default case, and calls to known-blocking functions
// (time.Sleep, clock.Clock.Sleep, sync.WaitGroup.Wait).
//
// The telemetry pub/sub fan-out, the poller, and the rackmgr watchdog all
// take a mutex on their hot paths while the goroutines they feed take the
// same locks from the other side; a blocking send under the lock is the
// canonical recipe for the whole pipeline deadlocking the moment one
// subscriber stalls. The drop-oldest pattern those paths use — a select
// with a default case — never blocks and is not flagged.
//
// The analysis is an intentionally simple lexical walk over each function
// body: a lock is considered held from a successful x.Lock()/x.RLock()
// until x.Unlock()/x.RUnlock() in the same statement sequence; a deferred
// unlock keeps the lock held to the end of the function; branches are
// walked with a copy of the held set. goroutine bodies and non-invoked
// function literals start with an empty held set.
package locksend

import (
	"go/ast"
	"go/token"
	"go/types"

	"flex/internal/analysis"
)

// Analyzer is the locksend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc: "flag blocking operations while a sync mutex is held\n\n" +
		"Channel sends/receives, default-less selects, and blocking calls\n" +
		"under a held mutex deadlock the telemetry and watchdog paths.",
	Run: run,
}

// mutexRecvs are receiver types whose Lock/Unlock family manages a mutex.
var mutexRecvs = map[string]bool{
	"*sync.Mutex":   true,
	"*sync.RWMutex": true,
	"sync.Locker":   true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.walkStmts(fn.Body.List, nil)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// walkStmts processes a statement sequence, threading the held-lock set
// through it, and returns the set as of the end of the sequence. Branch
// bodies receive copies so that an unlock on an early-return path does
// not leak into the fallthrough path.
func (c *checker) walkStmts(stmts []ast.Stmt, held []string) []string {
	for _, stmt := range stmts {
		held = c.walkStmt(stmt, held)
	}
	return held
}

func (c *checker) walkStmt(stmt ast.Stmt, held []string) []string {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind := c.lockOp(call); kind == opLock {
				return append(copyOf(held), key)
			} else if kind == opUnlock {
				return remove(held, key)
			}
		}
		c.checkExpr(s.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			c.pass.Reportf(s.Arrow, "channel send while mutex %q is held; use a buffered non-blocking send or move the send outside the critical section", held[0])
		}
		c.checkExpr(s.Chan, held)
		c.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the remaining walk,
		// which is exactly right; other deferred calls run at return and
		// are out of scope for this lexical analysis.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, nil)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.walkStmts(s.Body.List, copyOf(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyOf(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		body := copyOf(held)
		body = c.walkStmts(s.Body.List, body)
		if s.Post != nil {
			c.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		c.checkExpr(s.X, held)
		c.walkStmts(s.Body.List, copyOf(held))
	case *ast.BlockStmt:
		held = c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		held = c.walkStmt(s.Stmt, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyOf(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyOf(held))
			}
		}
	case *ast.SelectStmt:
		c.walkSelect(s, held)
	}
	return held
}

// walkSelect handles the one non-blocking construct: a select with a
// default case never blocks on its communications, so only its case
// bodies are checked. A default-less select under a lock blocks.
func (c *checker) walkSelect(s *ast.SelectStmt, held []string) {
	hasDefault := false
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && len(held) > 0 {
		c.pass.Reportf(s.Select, "blocking select while mutex %q is held; add a default case or move it outside the critical section", held[0])
	}
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		c.walkStmts(cc.Body, copyOf(held))
	}
}

// checkExpr reports blocking operations syntactically inside e. Function
// literals start a fresh (un-locked) context unless immediately invoked.
func (c *checker) checkExpr(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(v.Body.List, nil)
			return false
		case *ast.CallExpr:
			if lit, ok := v.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs under the caller's locks.
				for _, arg := range v.Args {
					c.checkExpr(arg, held)
				}
				c.walkStmts(lit.Body.List, copyOf(held))
				return false
			}
			if len(held) > 0 {
				if name := c.blockingCall(v); name != "" {
					c.pass.Reportf(v.Pos(), "call to %s may block while mutex %q is held", name, held[0])
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && len(held) > 0 {
				c.pass.Reportf(v.OpPos, "channel receive while mutex %q is held", held[0])
			}
		}
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as taking or releasing a mutex and returns the
// lock's receiver expression ("s.mu") as its identity.
func (c *checker) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	recv, name, ok := analysis.MethodRecv(c.pass.TypesInfo, call)
	if !ok || !mutexRecvs[recv] {
		return "", opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	key := types.ExprString(sel.X)
	switch name {
	case "Lock", "RLock":
		return key, opLock
	case "Unlock", "RUnlock":
		return key, opUnlock
	}
	return "", opNone
}

// blockingCall returns a display name when the call is known to block:
// time.Sleep, any Sleep(time.Duration) method (the injected clocks), or
// sync.WaitGroup.Wait.
func (c *checker) blockingCall(call *ast.CallExpr) string {
	if analysis.PkgFunc(c.pass.TypesInfo, call) == "time.Sleep" {
		return "time.Sleep"
	}
	recv, name, ok := analysis.MethodRecv(c.pass.TypesInfo, call)
	if !ok {
		return ""
	}
	if name == "Wait" && recv == "*sync.WaitGroup" {
		return "(*sync.WaitGroup).Wait"
	}
	if name == "Sleep" {
		if sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok &&
			sig.Params().Len() == 1 && sig.Params().At(0).Type().String() == "time.Duration" {
			return "(" + recv + ").Sleep"
		}
	}
	return ""
}

func copyOf(held []string) []string {
	return append([]string(nil), held...)
}

func remove(held []string, key string) []string {
	out := make([]string, 0, len(held))
	for _, h := range held {
		if h != key {
			out = append(out, h)
		}
	}
	return out
}
