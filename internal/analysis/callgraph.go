package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is a module-wide static call graph over the loaded packages.
// Nodes are the module's declared functions and methods; edges are calls
// between them. Three edge flavours exist:
//
//   - static: a direct call to a package-level function or to a method
//     whose receiver type is concrete. These are sound for "what does this
//     function execute" reasoning.
//   - dynamic dispatch: a call through an interface method, resolved by
//     class-hierarchy analysis to every module type whose method set
//     implements the interface. Over-approximate by construction.
//   - reference: a declared function or method used as a value (passed,
//     assigned, returned). The enclosing function may cause it to run but
//     the call site is elsewhere; recorded as a dynamic edge.
//
// Function literals are attributed to their enclosing declared function:
// calls inside a closure appear as edges from the declaration that created
// it. That is the useful over-approximation for reachability analyses —
// the closure cannot run unless its creator (or someone the creator handed
// it to) runs it.
//
// Only module-internal callees get nodes; calls into the standard library
// are leaves that analyzers inspect at the call site.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
}

// CallNode is one declared function or method.
type CallNode struct {
	// Func is the canonical type-checker object.
	Func *types.Func
	// Decl is the declaration syntax (always non-nil: only functions with
	// bodies in the analyzed packages get nodes).
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Out and In are the outgoing and incoming edges.
	Out, In []*CallEdge
}

// CallEdge is one caller→callee relationship.
type CallEdge struct {
	Caller, Callee *CallNode
	// Site is the call expression, or nil for a reference edge.
	Site *ast.CallExpr
	// Dynamic marks interface-dispatch and reference edges; static calls
	// have it false.
	Dynamic bool
}

// Node returns the graph node for fn, or nil when fn is not a declared
// module function.
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// Nodes returns every node sorted by declaration position (deterministic).
func (g *CallGraph) Nodes() []*CallNode {
	out := make([]*CallNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func.Pos() < out[j].Func.Pos() })
	return out
}

// Reachable walks the graph from roots following static edges — and
// dynamic ones when includeDynamic is set — returning, for every reached
// node, the edge it was first reached through (nil for the roots
// themselves). The edge chain reconstructs a call path back to a root.
func (g *CallGraph) Reachable(roots []*CallNode, includeDynamic bool) map[*CallNode]*CallEdge {
	seen := make(map[*CallNode]*CallEdge)
	queue := make([]*CallNode, 0, len(roots))
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := seen[r]; !ok {
			seen[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if e.Dynamic && !includeDynamic {
				continue
			}
			if _, ok := seen[e.Callee]; ok {
				continue
			}
			seen[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return seen
}

// StaticCallee resolves a call expression to the declared function or
// concrete method it invokes, or nil when the call is dynamic (interface
// dispatch, function value), a conversion, or a builtin. It is the
// resolution every interprocedural analyzer shares.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if isInterfaceMethod(fn) {
				return nil // dynamic dispatch
			}
			return fn
		}
		// Qualified package-level function (pkg.F).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if _, isPkg := info.Uses[identOf(fun.X)].(*types.PkgName); isPkg {
				return fn
			}
		}
	}
	return nil
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// BuildCallGraph constructs the module call graph over pkgs.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CallNode)}

	// Pass 1: one node per declared function with a body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &CallNode{Func: fn, Decl: fd, Pkg: pkg}
			}
		}
	}

	// Index of concrete named module types, for CHA resolution of
	// interface calls.
	var concrete []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
	}

	// implementers resolves an interface-method call to the concrete
	// module methods that could satisfy it.
	implementers := func(iface *types.Interface, name string) []*types.Func {
		var out []*types.Func
		for _, t := range concrete {
			impl := types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
			if !impl {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, name)
			if m, ok := obj.(*types.Func); ok && g.nodes[m] != nil {
				out = append(out, m)
			}
		}
		return out
	}

	addEdge := func(caller *CallNode, callee *types.Func, site *ast.CallExpr, dynamic bool) {
		cn := g.nodes[callee]
		if cn == nil {
			return
		}
		e := &CallEdge{Caller: caller, Callee: cn, Site: site, Dynamic: dynamic}
		caller.Out = append(caller.Out, e)
		cn.In = append(cn.In, e)
	}

	// Pass 2: edges. Calls and references anywhere inside a declaration
	// (including nested function literals) are attributed to it.
	for _, pkg := range pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := g.nodes[info.Defs[fd.Name].(*types.Func)]

				// Collect the expressions occupying call position so that
				// uses elsewhere are recognized as function references.
				inCallPos := make(map[ast.Expr]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						inCallPos[ast.Unparen(call.Fun)] = true
					}
					return true
				})

				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch v := n.(type) {
					case *ast.CallExpr:
						if callee := StaticCallee(info, v); callee != nil {
							addEdge(caller, callee, v, false)
							return true
						}
						// Interface dispatch: CHA over module types.
						if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
							if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
								if fn, ok := selection.Obj().(*types.Func); ok && isInterfaceMethod(fn) {
									iface, _ := fn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
									if iface != nil {
										for _, impl := range implementers(iface, fn.Name()) {
											addEdge(caller, impl, v, true)
										}
									}
								}
							}
						}
					case *ast.Ident:
						// A declared function used as a value.
						if fn, ok := info.Uses[v].(*types.Func); ok && !inCallPos[ast.Expr(v)] {
							addEdge(caller, fn, nil, true)
						}
					case *ast.SelectorExpr:
						// pkg.F or x.M used as a value (method value).
						if inCallPos[ast.Expr(v)] {
							return true
						}
						if selection, ok := info.Selections[v]; ok {
							if fn, ok := selection.Obj().(*types.Func); ok && !isInterfaceMethod(fn) {
								addEdge(caller, fn, nil, true)
							}
							return true
						}
						if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
							if _, isPkg := info.Uses[identOf(v.X)].(*types.PkgName); isPkg {
								addEdge(caller, fn, nil, true)
							}
						}
					}
					return true
				})
			}
		}
	}
	return g
}
