package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path (e.g. "flex/internal/power").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed syntax trees, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo holds full type information for Files.
	TypesInfo *types.Info
}

// Loader parses and type-checks packages from source with no external
// tooling: packages inside the module are loaded from their directories,
// and everything else (the standard library) is type-checked from GOROOT
// source via go/importer's "source" compiler, which works offline.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// IncludeTests makes the loader parse _test.go files too. flexlint
	// leaves it off — the analyzers' invariants deliberately do not apply
	// to tests — while analysistest turns it on for fixtures.
	IncludeTests bool

	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	extraDirs  map[string]string
	loading    map[string]bool
}

// The source importer consults build.Default; cgo resolution would shell
// out to the cgo tool for packages like net, so disable it once globally.
var disableCgo sync.Once

// NewLoader creates a loader rooted at the Go module containing dir (the
// nearest parent with a go.mod). dir may be "" for a loader that only
// serves registered fixture directories and the standard library.
func NewLoader(dir string) (*Loader, error) {
	disableCgo.Do(func() { build.Default.CgoEnabled = false })
	l := &Loader{
		Fset:      token.NewFileSet(),
		pkgs:      make(map[string]*Package),
		extraDirs: make(map[string]string),
		loading:   make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	if dir == "" {
		return l, nil
	}
	moduleDir, modulePath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l.moduleDir, l.modulePath = moduleDir, modulePath
	return l, nil
}

// ModulePath returns the module path from go.mod ("" for a fixture-only
// loader).
func (l *Loader) ModulePath() string { return l.modulePath }

// RegisterDir maps an import path onto a source directory outside the
// module — analysistest uses it to serve testdata fixture packages.
func (l *Loader) RegisterDir(importPath, dir string) {
	l.extraDirs[importPath] = dir
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (moduleDir, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

// LoadPatterns loads the packages matching the given patterns. A pattern
// is a directory relative to the current working directory ("./cmd/flexsim"),
// optionally with a "/..." suffix meaning the whole subtree ("./...").
// Results are sorted by import path.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if l.moduleDir == "" {
		return nil, fmt.Errorf("analysis: loader has no module root; use LoadImport for fixtures")
	}
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "" || root == "."+string(filepath.Separator) {
			root = "."
		}
		abs, err := filepath.Abs(root)
		if err != nil {
			return nil, err
		}
		if !recursive {
			dirs[abs] = true
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, dir := range sortedKeys(dirs) {
		importPath, err := l.dirImportPath(dir)
		if err != nil {
			return nil, err
		}
		if ok, err := hasGoFiles(dir, l.IncludeTests); err != nil {
			return nil, err
		} else if !ok {
			continue
		}
		pkg, err := l.LoadImport(importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func (l *Loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleDir)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

func hasGoFiles(dir string, includeTests bool) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true, nil
	}
	return false, nil
}

// LoadImport loads (or returns the cached) package for an import path.
// Module-internal and registered fixture paths are parsed and type-checked
// from source; everything else resolves through the standard library
// importer.
func (l *Loader) LoadImport(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, err := l.sourceDir(path)
	if err != nil {
		return nil, err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, TypesInfo: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// sourceDir maps an import path to the directory it loads from, or errors
// when the path is not module-internal or registered (those fall through
// to the stdlib importer in loaderImporter, not here).
func (l *Loader) sourceDir(path string) (string, error) {
	if dir, ok := l.extraDirs[path]; ok {
		return dir, nil
	}
	if l.modulePath != "" && path == l.modulePath {
		return l.moduleDir, nil
	}
	if l.modulePath != "" {
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), nil
		}
	}
	return "", fmt.Errorf("analysis: %s is not a module-internal or registered package", path)
}

func (l *Loader) isLocal(path string) bool {
	_, err := l.sourceDir(path)
	return err == nil
}

// parseDir parses the package's Go files in file-name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts Loader to types.Importer: local packages load from
// source, the rest from the shared stdlib source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(im)
	if l.isLocal(path) {
		pkg, err := l.LoadImport(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
