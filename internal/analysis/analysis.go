// Package analysis is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis surface that flexlint's analyzers
// need. The repository deliberately has zero external dependencies, so the
// framework — Analyzer, Pass, Diagnostic, a module-aware source loader,
// and a diagnostic runner — lives here instead of importing x/tools.
//
// The API mirrors x/tools closely enough that an analyzer written against
// this package ports to the upstream framework (and back) mechanically:
// an Analyzer has a Name, a Doc string, and a Run function that receives a
// Pass holding the parsed files and full type information for one package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the flexlint
	// command line. By convention it is a single lowercase word.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report / pass.Reportf; the returned value is unused by
	// flexlint but kept for x/tools API parity.
	Run func(*Pass) (interface{}, error)
}

// Pass is the interface between one analyzer and one package being
// analyzed. The driver constructs a fresh Pass per (analyzer, package).
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver sets it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Category: p.Analyzer.Name})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message describes the problem and, where possible, the fix.
	Message string
	// Category is the reporting analyzer's name.
	Category string
}

// PkgFunc resolves a called expression to the fully qualified name of a
// package-level function, e.g. "time.Now" — or "" when the call is not a
// direct package-level call. It is the helper clockcheck and locksend use
// to match calls like time.Sleep regardless of import aliasing.
func PkgFunc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path() + "." + sel.Sel.Name
}

// MethodRecv resolves a called expression to the method's receiver type
// string and method name, e.g. ("*sync.Mutex", "Lock"). The receiver
// string uses types.Type.String() of the method's declared receiver, so
// promoted methods of embedded fields resolve to the embedded type. ok is
// false when the call is not a method call.
func MethodRecv(info *types.Info, call *ast.CallExpr) (recv string, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, isSelection := info.Selections[sel]
	if !isSelection || (selection.Kind() != types.MethodVal && selection.Kind() != types.MethodExpr) {
		return "", "", false
	}
	fn, isFunc := selection.Obj().(*types.Func)
	if !isFunc {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	return sig.Recv().Type().String(), fn.Name(), true
}
