// Package analysis is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis surface that flexlint's analyzers
// need. The repository deliberately has zero external dependencies, so the
// framework — Analyzer, Pass, Diagnostic, a module-aware source loader,
// and a diagnostic runner — lives here instead of importing x/tools.
//
// The API mirrors x/tools closely enough that an analyzer written against
// this package ports to the upstream framework (and back) mechanically:
// an Analyzer has a Name, a Doc string, and a Run function that receives a
// Pass holding the parsed files and full type information for one package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the flexlint
	// command line. By convention it is a single lowercase word.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report / pass.Reportf; the returned value is unused by
	// flexlint but kept for x/tools API parity. The driver visits packages
	// in dependency order, so facts exported by an imported package are
	// visible when its importers run. Run may be nil for a whole-program
	// analyzer that only implements Finish.
	Run func(*Pass) (interface{}, error)
	// Finish, when non-nil, runs once after every package's Run pass has
	// completed. It sees the module-wide call graph and every exported
	// fact, so it is where whole-program properties (reachability from
	// hot-path roots, lock-order cycles) are checked.
	Finish func(*ModulePass) error
}

// Pass is the interface between one analyzer and one package being
// analyzed. The driver constructs a fresh Pass per (analyzer, package).
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Graph is the module-wide call graph over every package in this run.
	// Nil when the driver was not asked to build one (it always is under
	// Run; direct Pass construction in tests may leave it unset).
	Graph *CallGraph
	// Report delivers one diagnostic. The driver sets it.
	Report func(Diagnostic)

	facts *factStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Category: p.Analyzer.Name})
}

// ExportObjectFact attaches a fact to obj for consumption by this
// analyzer's later passes — in importing packages' Run passes or in
// Finish. The fact type must be a pointer owned by this analyzer.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		panic("analysis: pass has no fact store (constructed outside Run)")
	}
	p.facts.export(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact of fact's type previously exported on
// obj into *fact, reporting whether one exists. Because the whole module
// shares one type-checker, obj is the identical object the exporter saw,
// whichever package it was declared in.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.imp(p.Analyzer, obj, fact)
}

// AllObjectFacts returns every fact of example's type this analyzer has
// exported so far, in deterministic order.
func (p *Pass) AllObjectFacts(example Fact) []ObjectFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.all(p.Analyzer, example)
}

// ModulePass is the whole-program counterpart of Pass, handed to
// Analyzer.Finish after every package has been visited.
type ModulePass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Pkgs are every package in the run, in dependency order.
	Pkgs []*Package
	// Graph is the module-wide call graph.
	Graph *CallGraph
	// Report delivers one diagnostic. The driver sets it and attributes
	// the finding to the package owning the diagnostic's file.
	Report func(Diagnostic)

	facts *factStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Category: p.Analyzer.Name})
}

// ImportObjectFact copies the fact of fact's type exported on obj during
// the per-package passes into *fact, reporting whether one exists.
func (p *ModulePass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.imp(p.Analyzer, obj, fact)
}

// AllObjectFacts returns every fact of example's type this analyzer
// exported, in deterministic order.
func (p *ModulePass) AllObjectFacts(example Fact) []ObjectFact {
	return p.facts.all(p.Analyzer, example)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message describes the problem and, where possible, the fix.
	Message string
	// Category is the reporting analyzer's name.
	Category string
}

// PkgFunc resolves a called expression to the fully qualified name of a
// package-level function, e.g. "time.Now" — or "" when the call is not a
// direct package-level call. It is the helper clockcheck and locksend use
// to match calls like time.Sleep regardless of import aliasing.
func PkgFunc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path() + "." + sel.Sel.Name
}

// MethodRecv resolves a called expression to the method's receiver type
// string and method name, e.g. ("*sync.Mutex", "Lock"). The receiver
// string uses types.Type.String() of the method's declared receiver, so
// promoted methods of embedded fields resolve to the embedded type. ok is
// false when the call is not a method call.
func MethodRecv(info *types.Info, call *ast.CallExpr) (recv string, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, isSelection := info.Selections[sel]
	if !isSelection || (selection.Kind() != types.MethodVal && selection.Kind() != types.MethodExpr) {
		return "", "", false
	}
	fn, isFunc := selection.Obj().(*types.Func)
	if !isFunc {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	return sig.Recv().Type().String(), fn.Name(), true
}
