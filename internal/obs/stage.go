package obs

import "time"

// Stage identifies one segment of the detect→shed critical path — the
// latency-attribution taxonomy (DESIGN.md "Latency attribution"). The
// stages tile the full meter-to-actuation timeline, so per-episode stage
// durations sum to the end-to-end shed latency by construction:
//
//	sample  MeasuredAt  → PublishedAt   meter read, consensus, batching
//	queue   PublishedAt → DequeuedAt    broker buffer + shard ingest queue
//	view    DequeuedAt  → step start    view merge until the controller looks
//	detect  step start  → detect        snapshot, worst-UPS scan, episode open
//	plan    detect      → plan end      Algorithm 1 under the plan budget
//	act     plan end    → act end       rackmgr dispatch + ack
type Stage int

// Critical-path stages, in timeline order.
const (
	StageSample Stage = iota
	StageQueue
	StageView
	StageDetect
	StagePlan
	StageAct
	NumStages // number of stages; not itself a stage
)

var stageNames = [NumStages]string{"sample", "queue", "view", "detect", "plan", "act"}

// String returns the stage's label value ("sample", "queue", ...).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every stage in timeline order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageMetrics is the pre-bound per-stage latency histogram family
// (flex_stage_latency_seconds{stage=...}). Children are bound at
// construction, so hot-path observation is an array index plus a
// histogram update — no map lookups, no allocation. A nil *StageMetrics
// is a valid no-op receiver, matching the registry-optional convention
// used throughout the controller.
type StageMetrics struct {
	hist [NumStages]*Histogram
}

// NewStageMetrics registers the stage latency family on r and pre-binds
// one child per stage.
func NewStageMetrics(r *Registry) *StageMetrics {
	if r == nil {
		return nil
	}
	vec := r.HistogramVec("flex_stage_latency_seconds",
		"Critical-path latency by stage (sample|queue|view|detect|plan|act); stage sums reconcile with detect-to-shed latency.",
		LatencyBuckets(), "stage")
	sm := &StageMetrics{}
	for st := Stage(0); st < NumStages; st++ {
		sm.hist[st] = vec.With(st.String())
	}
	return sm
}

// Observe records one stage duration. Nil-safe no-op.
//
//flex:hotpath
func (sm *StageMetrics) Observe(st Stage, d time.Duration) {
	if sm == nil || st < 0 || st >= NumStages {
		return
	}
	sm.hist[st].ObserveDuration(d)
}

// ObserveExemplar records one stage duration and attaches ex to its
// bucket, joining the observation to its episode/trace/recorder context.
// Nil-safe no-op.
//
//flex:hotpath
func (sm *StageMetrics) ObserveExemplar(st Stage, d time.Duration, ex Exemplar) {
	if sm == nil || st < 0 || st >= NumStages {
		return
	}
	sm.hist[st].ObserveExemplar(d.Seconds(), ex)
}

// Histogram returns the stage's pre-bound histogram (nil when sm is nil
// or st is out of range) — the cold-path handle for summaries and
// exemplar export.
func (sm *StageMetrics) Histogram(st Stage) *Histogram {
	if sm == nil || st < 0 || st >= NumStages {
		return nil
	}
	return sm.hist[st]
}
