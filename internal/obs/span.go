package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one named stage of a trace, with caller-supplied start and end
// times. obs never reads the wall clock: every timestamp comes from the
// component's injected clock.Clock, so virtual-clock tests can assert
// exact stage latencies.
type Span struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Duration is the span length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Trace is one recorded pipeline execution (e.g. a controller step's
// detect→plan→act). Build it from a single goroutine — Span and SetNote
// are not synchronized — then Finish commits it to the tracer's ring
// buffer and it must not be mutated further.
type Trace struct {
	Seq   uint64    `json:"seq"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Spans []Span    `json:"spans"`
	// Note carries a short free-form annotation ("overdraw enforced=3").
	Note string `json:"note,omitempty"`
	// Episode is the flight-recorder episode ID of the overdraw episode
	// this trace belongs to (0 when none) — the join key between /traces
	// entries and /events streams (query the latter with ?episode=<id>).
	Episode uint64 `json:"episode,omitempty"`
	// Root is the flight-recorder sequence of the event that rooted this
	// trace (for controller steps, the detect event; 0 when unrecorded) —
	// resolve it with /events?since=<Root> to land on the causal chain.
	Root uint64 `json:"root,omitempty"`

	tracer *Tracer
}

// SetEpisode tags the trace with a flight-recorder episode ID.
func (t *Trace) SetEpisode(id uint64) { t.Episode = id }

// SetRoot records the flight-recorder sequence of the trace's rooting
// event (the detect event for controller steps).
func (t *Trace) SetRoot(seq uint64) { t.Root = seq }

// Span appends a completed stage.
func (t *Trace) Span(name string, start, end time.Time) {
	t.Spans = append(t.Spans, Span{Name: name, Start: start, End: end})
}

// SetNote attaches an annotation to the trace.
func (t *Trace) SetNote(note string) { t.Note = note }

// Finish stamps the end time and commits the trace to its tracer's ring
// buffer, evicting the oldest entry when full.
func (t *Trace) Finish(at time.Time) {
	t.End = at
	tr := t.tracer
	if tr == nil {
		return
	}
	t.tracer = nil
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.ring) < tr.capacity {
		tr.ring = append(tr.ring, t)
		return
	}
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % tr.capacity
}

// Duration is the whole-trace length.
func (t *Trace) Duration() time.Duration { return t.End.Sub(t.Start) }

// Tracer keeps a fixed-size ring buffer of recently finished traces for
// the /traces introspection endpoint. All methods are safe for concurrent
// use; individual traces are built single-goroutine (see Trace).
type Tracer struct {
	capacity int

	mu   sync.Mutex
	ring []*Trace
	next int
	seq  uint64
}

// NewTracer returns a tracer retaining the last capacity finished traces
// (default 256 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{capacity: capacity}
}

// Start begins a trace at the caller-supplied time.
func (tr *Tracer) Start(name string, at time.Time) *Trace {
	tr.mu.Lock()
	tr.seq++
	seq := tr.seq
	tr.mu.Unlock()
	return &Trace{Seq: seq, Name: name, Start: at, tracer: tr}
}

// Started reports how many traces have been started.
func (tr *Tracer) Started() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.seq
}

// Recent returns copies of the retained traces, newest first.
func (tr *Tracer) Recent() []Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Trace, 0, len(tr.ring))
	for i := len(tr.ring) - 1; i >= 0; i-- {
		t := tr.ring[(tr.next+i)%len(tr.ring)]
		c := *t
		c.Spans = append([]Span(nil), t.Spans...)
		out = append(out, c)
	}
	return out
}

// traceJSON is the /traces wire format: durations are folded in so the
// output is readable without computing time differences by hand.
type traceJSON struct {
	Seq             uint64     `json:"seq"`
	Name            string     `json:"name"`
	Start           time.Time  `json:"start"`
	DurationSeconds float64    `json:"duration_seconds"`
	Note            string     `json:"note,omitempty"`
	Episode         uint64     `json:"episode,omitempty"`
	Root            uint64     `json:"root,omitempty"`
	Spans           []spanJSON `json:"spans"`
}

type spanJSON struct {
	Name            string  `json:"name"`
	OffsetSeconds   float64 `json:"offset_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// TraceFilter selects traces for the /traces surface. Zero values are
// wildcards, mirroring recorder.Filter: watch loops poll incrementally
// with since=<seq> or from=<time> instead of refetching the full ring.
type TraceFilter struct {
	// MinSeq keeps traces with Seq >= MinSeq.
	MinSeq uint64
	// From keeps traces whose Start is at or after From.
	From time.Time
	// Episode keeps traces of one overdraw episode.
	Episode uint64
	// Limit keeps only the newest Limit traces after filtering (0 = all).
	Limit int
}

func (f *TraceFilter) match(t *Trace) bool {
	if f.MinSeq != 0 && t.Seq < f.MinSeq {
		return false
	}
	if !f.From.IsZero() && t.Start.Before(f.From) {
		return false
	}
	if f.Episode != 0 && t.Episode != f.Episode {
		return false
	}
	return true
}

// RecentFiltered returns copies of the retained traces matching f,
// newest first.
func (tr *Tracer) RecentFiltered(f TraceFilter) []Trace {
	all := tr.Recent()
	out := make([]Trace, 0, len(all))
	for i := range all {
		if f.match(&all[i]) {
			out = append(out, all[i])
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit] // newest first: keep the head
	}
	return out
}

// WriteJSON renders the retained traces (newest first) as a JSON array.
func (tr *Tracer) WriteJSON(w io.Writer) error {
	return tr.WriteJSONFiltered(w, TraceFilter{})
}

// WriteJSONFiltered renders the traces matching f (newest first).
func (tr *Tracer) WriteJSONFiltered(w io.Writer, f TraceFilter) error {
	recent := tr.RecentFiltered(f)
	out := make([]traceJSON, len(recent))
	for i, t := range recent {
		tj := traceJSON{
			Seq:             t.Seq,
			Name:            t.Name,
			Start:           t.Start,
			DurationSeconds: t.Duration().Seconds(),
			Note:            t.Note,
			Episode:         t.Episode,
			Root:            t.Root,
			Spans:           make([]spanJSON, len(t.Spans)),
		}
		for j, s := range t.Spans {
			tj.Spans[j] = spanJSON{
				Name:            s.Name,
				OffsetSeconds:   s.Start.Sub(t.Start).Seconds(),
				DurationSeconds: s.Duration().Seconds(),
			}
		}
		out[i] = tj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
