package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// Agg selects how a query step aggregates the underlying data.
type Agg int

// Aggregations. AggAvg is the default.
const (
	AggAvg Agg = iota
	AggMin
	AggMax
	AggSum
	AggCount
	AggLast
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggLast:
		return "last"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// ParseAgg resolves an aggregation name.
func ParseAgg(s string) (Agg, error) {
	switch s {
	case "", "avg":
		return AggAvg, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "sum":
		return AggSum, nil
	case "count":
		return AggCount, nil
	case "last":
		return AggLast, nil
	}
	return AggAvg, fmt.Errorf("tsdb: unknown agg %q", s)
}

// QueryRange selects data for Series.Query: the half-open window
// [From, To] re-bucketed into Step-wide intervals.
type QueryRange struct {
	From, To time.Time
	Step     time.Duration
	Agg      Agg
}

// Query evaluates r against the series, choosing the finest source tier
// whose width does not exceed the step: raw points for sub-10s steps,
// the 10s rollup for steps in [10s, 1m), and the 1m rollup beyond. Each
// returned point carries the start of its step interval; intervals
// without data are omitted (no NaN filling).
func (s *Series) Query(r QueryRange) []Point {
	if r.Step <= 0 {
		r.Step = Tier10s
	}
	if !r.To.After(r.From) {
		return nil
	}
	if r.Step < Tier10s {
		return rebucketPoints(s.Raw(), r)
	}
	width := Tier10s
	if r.Step >= Tier1m {
		width = Tier1m
	}
	return rebucketBuckets(s.Buckets(width), r)
}

// rebucketPoints folds raw points into step intervals.
func rebucketPoints(pts []Point, r QueryRange) []Point {
	step := int64(r.Step)
	from, to := r.From.UnixNano(), r.To.UnixNano()
	var out []Point
	var cur bucket
	cur.start = startUnset
	flush := func() {
		if cur.start != startUnset && cur.count > 0 {
			out = append(out, Point{Time: time.Unix(0, cur.start), Value: aggValue(cur, r.Agg)})
		}
	}
	var lastV float64
	for _, p := range pts {
		tn := p.Time.UnixNano()
		if tn < from || tn > to {
			continue
		}
		start := tn - mod(tn, step)
		if start != cur.start {
			flush()
			cur = bucket{start: start, min: p.Value, max: p.Value, sum: p.Value, count: 1}
			lastV = p.Value
			continue
		}
		if p.Value < cur.min {
			cur.min = p.Value
		}
		if p.Value > cur.max {
			cur.max = p.Value
		}
		cur.sum += p.Value
		cur.count++
		lastV = p.Value
		if r.Agg == AggLast {
			cur.sum = lastV * float64(cur.count) // keep aggValue simple
		}
	}
	flush()
	return out
}

// rebucketBuckets folds rollup buckets into (coarser or equal) step
// intervals.
func rebucketBuckets(bks []Bucket, r QueryRange) []Point {
	step := int64(r.Step)
	from, to := r.From.UnixNano(), r.To.UnixNano()
	var out []Point
	var cur bucket
	cur.start = startUnset
	flush := func() {
		if cur.start != startUnset && cur.count > 0 {
			out = append(out, Point{Time: time.Unix(0, cur.start), Value: aggValue(cur, r.Agg)})
		}
	}
	for _, b := range bks {
		tn := b.Start.UnixNano()
		if tn < from || tn > to || b.Count == 0 {
			continue
		}
		start := tn - mod(tn, step)
		if start != cur.start {
			flush()
			cur = bucket{start: start, min: b.Min, max: b.Max, sum: b.Sum, count: b.Count}
			continue
		}
		if b.Min < cur.min {
			cur.min = b.Min
		}
		if b.Max > cur.max {
			cur.max = b.Max
		}
		cur.sum += b.Sum
		cur.count += b.Count
	}
	flush()
	return out
}

func aggValue(b bucket, a Agg) float64 {
	switch a {
	case AggMin:
		return b.min
	case AggMax:
		return b.max
	case AggSum:
		return b.sum
	case AggCount:
		return float64(b.count)
	default: // AggAvg, AggLast (last is exact for raw, avg-approximated for rollups)
		if b.count == 0 {
			return 0
		}
		return b.sum / float64(b.count)
	}
}

// WindowAvg returns the mean of the series over [from, to] and the
// number of contributing observations, preferring raw points and falling
// back to the 10s rollup when the raw ring no longer covers the window's
// start. The SLO burn-rate engine evaluates its windows through this.
func (s *Series) WindowAvg(from, to time.Time) (avg float64, count uint64) {
	raw := s.Raw()
	if len(raw) > 0 && !raw[0].Time.After(from) {
		var sum float64
		for _, p := range raw {
			if p.Time.Before(from) || p.Time.After(to) {
				continue
			}
			sum += p.Value
			count++
		}
		if count > 0 {
			return sum / float64(count), count
		}
		return 0, 0
	}
	var sum float64
	for _, b := range s.Buckets(Tier10s) {
		if b.Start.Before(from) || b.Start.After(to) || b.Count == 0 {
			continue
		}
		sum += b.Sum
		count += b.Count
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}

// Quantile estimates the q-quantile (0..1) of the series over [from, to].
// When the raw ring still covers the window it is exact (nearest-rank
// over the sorted raw values); otherwise it interpolates over the 10s
// rollup, spreading each bucket's count uniformly across [min, max] —
// including the open, partially-filled bucket. Returns ok=false when the
// window holds no data.
func (s *Series) Quantile(from, to time.Time, q float64) (v float64, ok bool) {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	raw := s.Raw()
	if len(raw) > 0 && !raw[0].Time.After(from) {
		vals := make([]float64, 0, len(raw))
		for _, p := range raw {
			if p.Time.Before(from) || p.Time.After(to) {
				continue
			}
			vals = append(vals, p.Value)
		}
		if len(vals) == 0 {
			return 0, false
		}
		sort.Float64s(vals)
		rank := q * float64(len(vals)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		frac := rank - float64(lo)
		return vals[lo] + frac*(vals[hi]-vals[lo]), true
	}
	var bks []Bucket
	for _, b := range s.Buckets(Tier10s) {
		if b.Start.Before(from) || b.Start.After(to) || b.Count == 0 {
			continue
		}
		bks = append(bks, b)
	}
	if len(bks) == 0 {
		return 0, false
	}
	// Each bucket contributes Count observations spread uniformly on
	// [Min, Max]; walk the buckets in value order and interpolate within
	// the one containing the target rank.
	sort.Slice(bks, func(i, j int) bool { return bks[i].Min < bks[j].Min })
	var total uint64
	for _, b := range bks {
		total += b.Count
	}
	rank := q * float64(total)
	var cum float64
	for _, b := range bks {
		next := cum + float64(b.Count)
		if next >= rank {
			if b.Count == 0 || b.Max <= b.Min {
				return b.Min, true
			}
			frac := (rank - cum) / float64(b.Count)
			return b.Min + frac*(b.Max-b.Min), true
		}
		cum = next
	}
	return bks[len(bks)-1].Max, true
}

// Handler serves the /query endpoint:
//
//	/query                                  list series names
//	/query?series=K&from=T&to=T&step=D&agg=A  evaluate one series
//
// from/to accept RFC3339 or integer unix seconds; step accepts a Go
// duration (default 10s); agg one of avg|min|max|sum|count|last. Omitted
// to defaults to the series' newest timestamp; omitted from defaults to
// to−5m. The handler never reads the wall clock, so responses are
// deterministic under the virtual clock.
func (st *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		q := r.URL.Query()
		name := q.Get("series")
		if name == "" {
			writeJSON(w, map[string]interface{}{"series": st.Names()})
			return
		}
		s, ok := st.Lookup(name)
		if !ok {
			http.Error(w, "unknown series "+strconv.Quote(name), http.StatusNotFound)
			return
		}
		var qr QueryRange
		var err error
		if qr.Agg, err = ParseAgg(q.Get("agg")); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		qr.Step = Tier10s
		if v := q.Get("step"); v != "" {
			if qr.Step, err = time.ParseDuration(v); err != nil || qr.Step <= 0 {
				http.Error(w, "bad step parameter: "+strconv.Quote(v), http.StatusBadRequest)
				return
			}
		}
		last, _ := s.Last()
		qr.To = last.Time
		if v := q.Get("to"); v != "" {
			if qr.To, err = parseTime(v); err != nil {
				http.Error(w, "bad to parameter: "+strconv.Quote(v), http.StatusBadRequest)
				return
			}
		}
		qr.From = qr.To.Add(-5 * time.Minute)
		if v := q.Get("from"); v != "" {
			if qr.From, err = parseTime(v); err != nil {
				http.Error(w, "bad from parameter: "+strconv.Quote(v), http.StatusBadRequest)
				return
			}
		}
		pts := s.Query(qr)
		writeJSON(w, map[string]interface{}{
			"series": name,
			"from":   qr.From,
			"to":     qr.To,
			"step":   qr.Step.String(),
			"agg":    qr.Agg.String(),
			"points": pts,
		})
	})
}

// parseTime accepts RFC3339 or integer unix seconds.
func parseTime(s string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(sec, 0).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("tsdb: unparseable time %q", s)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
