// Package tsdb is an embedded time-series store for the Flex control
// plane: fixed-capacity rings of raw samples per series, tiered
// downsampling into 10s and 1m rollups of min/max/sum/count, and a small
// query surface (/query) for dashboards and the SLO burn-rate engine.
//
// The design mirrors the obs registry's discipline:
//
//   - Append is allocation-free (//flex:hotpath): every ring and rollup
//     buffer is sized at series creation, and folding a sample into the
//     open rollup bucket of each tier touches only plain struct fields
//     under one short mutex hold.
//   - Time never comes from the wall clock. Samples carry caller-supplied
//     timestamps from the injected clock.Clock, so virtual-clock runs
//     produce deterministic, replayable series.
//   - Series are keyed with the expvar convention the registry's
//     /debug/vars surface already uses — `name;label=value;label2=value2`
//     — so a scraped registry metric and its stored series share a name.
//
// Retention is capacity-based, not time-based: the raw ring holds the
// last RawCapacity points, each rollup tier the last TierCapacity
// buckets. With the defaults (1024 raw, 720×10s, 1440×1m) a 500ms
// sampler keeps ~8.5 minutes raw, 2 hours at 10s, and a day at 1m.
package tsdb

import (
	"sort"
	"sync"
	"time"
)

// Rollup tier widths. Tier 0 folds raw samples into 10-second buckets —
// matching the paper's 10s battery budget so "did the budget window look
// healthy" is answerable from one bucket — and tier 1 into 1-minute
// buckets for long-horizon views.
const (
	Tier10s = 10 * time.Second
	Tier1m  = time.Minute

	numTiers = 2
)

// Defaults used when Options fields are zero.
const (
	DefaultRawCapacity  = 1024
	DefaultTier10sCount = 720  // 2h at 10s
	DefaultTier1mCount  = 1440 // 24h at 1m
)

// Point is one raw observation.
type Point struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// Bucket is one sealed (or in-progress) rollup interval
// [Start, Start+width).
type Bucket struct {
	Start time.Time `json:"start"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Sum   float64   `json:"sum"`
	Count uint64    `json:"count"`
}

// Avg returns the bucket mean (0 when empty).
func (b Bucket) Avg() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// bucket is the internal fixed-size rollup cell. Times are int64
// UnixNanos so the hot path compares and assigns machine words only.
type bucket struct {
	start int64 // UnixNano of the interval start; startUnset when empty
	min   float64
	max   float64
	sum   float64
	count uint64
}

const startUnset = int64(-1 << 62)

// tier is one downsampling level: a ring of sealed buckets plus the open
// bucket samples are folding into.
type tier struct {
	width int64 // interval width in nanoseconds
	ring  []bucket
	n     int // live sealed buckets
	next  int // ring slot the next sealed bucket lands in
	cur   bucket
}

// Options sizes a store's series. The zero value selects the defaults.
type Options struct {
	// RawCapacity is the number of raw points each series retains.
	RawCapacity int
	// TierCapacity is the number of rollup buckets retained per tier,
	// indexed [10s, 1m]. Zero entries select the defaults.
	TierCapacity [numTiers]int
}

func (o Options) withDefaults() Options {
	if o.RawCapacity <= 0 {
		o.RawCapacity = DefaultRawCapacity
	}
	if o.TierCapacity[0] <= 0 {
		o.TierCapacity[0] = DefaultTier10sCount
	}
	if o.TierCapacity[1] <= 0 {
		o.TierCapacity[1] = DefaultTier1mCount
	}
	return o
}

// Series is one named time series: a raw ring plus the rollup tiers.
// Append is safe for concurrent use; a Series is normally obtained once
// at wiring time via Store.Series and retained, like a registry metric.
type Series struct {
	name string

	mu   sync.Mutex
	raw  []Point
	n    int // live raw points
	next int // ring slot the next point lands in
	last int64
	tier [numTiers]tier
}

func newSeries(name string, o Options) *Series {
	s := &Series{name: name, raw: make([]Point, o.RawCapacity)}
	widths := [numTiers]time.Duration{Tier10s, Tier1m}
	for i := range s.tier {
		s.tier[i] = tier{
			width: int64(widths[i]),
			ring:  make([]bucket, o.TierCapacity[i]),
			cur:   bucket{start: startUnset},
		}
	}
	return s
}

// Name returns the series key (`name;label=value` form).
func (s *Series) Name() string { return s.name }

// Append records v at t. Out-of-order points (t before the newest point)
// are accepted into the raw ring but fold into rollups only when they
// still land in the open bucket; a point behind the open bucket of a
// tier is counted in that tier's open bucket rather than re-opening a
// sealed one — monotone feeds (the sampler) never hit this.
//
// The hot path allocates nothing: ring slots are pre-sized, bucket
// sealing copies fixed-size structs, and time arithmetic is on int64
// UnixNanos.
//
//flex:hotpath
func (s *Series) Append(t time.Time, v float64) {
	tn := t.UnixNano()
	s.mu.Lock()
	s.raw[s.next] = Point{Time: t, Value: v}
	s.next++
	if s.next == len(s.raw) {
		s.next = 0
	}
	if s.n < len(s.raw) {
		s.n++
	}
	s.last = tn
	for i := range s.tier {
		s.tier[i].fold(tn, v)
	}
	s.mu.Unlock()
}

// fold accumulates v into the tier's open bucket, sealing completed
// buckets as time crosses interval boundaries.
func (ti *tier) fold(tn int64, v float64) {
	start := tn - mod(tn, ti.width)
	if ti.cur.start == startUnset {
		ti.cur = bucket{start: start, min: v, max: v, sum: v, count: 1}
		return
	}
	if start > ti.cur.start {
		// The sample belongs to a later interval: seal the open bucket
		// into the ring and start fresh. Gaps (idle intervals) produce no
		// empty buckets — absence of a bucket means absence of data.
		ti.ring[ti.next] = ti.cur
		ti.next++
		if ti.next == len(ti.ring) {
			ti.next = 0
		}
		if ti.n < len(ti.ring) {
			ti.n++
		}
		ti.cur = bucket{start: start, min: v, max: v, sum: v, count: 1}
		return
	}
	// In (or behind) the open interval: accumulate.
	if v < ti.cur.min {
		ti.cur.min = v
	}
	if v > ti.cur.max {
		ti.cur.max = v
	}
	ti.cur.sum += v
	ti.cur.count++
}

// mod is Euclidean remainder, so pre-epoch timestamps still align buckets
// on [k·width, (k+1)·width) boundaries.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// Raw returns a copy of the retained raw points in append order.
func (s *Series) Raw() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.raw)
	}
	for i := 0; i < s.n; i++ {
		out[i] = s.raw[(start+i)%len(s.raw)]
	}
	return out
}

// Buckets returns a copy of the retained rollup buckets for the tier of
// the given width (Tier10s or Tier1m), oldest first, including the open
// partially-filled bucket as the final entry. Unknown widths return nil.
func (s *Series) Buckets(width time.Duration) []Bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.tier {
		if s.tier[i].width == int64(width) {
			return s.tier[i].snapshot()
		}
	}
	return nil
}

func (ti *tier) snapshot() []Bucket {
	open := 0
	if ti.cur.start != startUnset {
		open = 1
	}
	out := make([]Bucket, 0, ti.n+open)
	start := ti.next - ti.n
	if start < 0 {
		start += len(ti.ring)
	}
	for i := 0; i < ti.n; i++ {
		out = append(out, ti.ring[(start+i)%len(ti.ring)].export())
	}
	if open == 1 {
		out = append(out, ti.cur.export())
	}
	return out
}

func (b bucket) export() Bucket {
	return Bucket{
		Start: time.Unix(0, b.start),
		Min:   b.min,
		Max:   b.max,
		Sum:   b.sum,
		Count: b.count,
	}
}

// Last returns the newest appended point and ok=false when empty.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Point{}, false
	}
	i := s.next - 1
	if i < 0 {
		i += len(s.raw)
	}
	return s.raw[i], true
}

// Store holds the named series. Series creation is a cold-path
// get-or-create (like registry metric registration); hot paths retain the
// returned *Series.
type Store struct {
	opts Options

	mu     sync.Mutex
	series []*Series
	byName map[string]*Series
}

// NewStore returns an empty store sized by o (zero value = defaults).
func NewStore(o Options) *Store {
	return &Store{opts: o.withDefaults(), byName: make(map[string]*Series)}
}

// Series returns the series with the given key, creating it on first
// use. Keys follow the expvar convention: `name;label=value`, labels in
// a fixed order chosen by the caller.
func (st *Store) Series(name string) *Series {
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok := st.byName[name]; ok {
		return s
	}
	s := newSeries(name, st.opts)
	st.series = append(st.series, s)
	st.byName[name] = s
	return s
}

// Lookup returns the series if it exists, without creating it.
func (st *Store) Lookup(name string) (*Series, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.byName[name]
	return s, ok
}

// Names returns the registered series keys, sorted.
func (st *Store) Names() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.series))
	for _, s := range st.series {
		out = append(out, s.name)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered series.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.series)
}

// SeriesKey renders the canonical `name;label=value` series key for a
// metric name and ordered label pairs. Cold path (wiring time).
func SeriesKey(name string, labels ...[2]string) string {
	key := name
	for _, l := range labels {
		key += ";" + l[0] + "=" + l[1]
	}
	return key
}
