package tsdb

import (
	"testing"
	"time"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func TestAppendAndRaw(t *testing.T) {
	st := NewStore(Options{RawCapacity: 8})
	s := st.Series("x")
	for i := 0; i < 5; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	raw := s.Raw()
	if len(raw) != 5 {
		t.Fatalf("len(raw) = %d, want 5", len(raw))
	}
	for i, p := range raw {
		if p.Value != float64(i) || !p.Time.Equal(t0.Add(time.Duration(i)*time.Second)) {
			t.Fatalf("raw[%d] = %+v", i, p)
		}
	}
	if last, ok := s.Last(); !ok || last.Value != 4 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

func TestRawRingWraparound(t *testing.T) {
	st := NewStore(Options{RawCapacity: 4})
	s := st.Series("x")
	for i := 0; i < 10; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	raw := s.Raw()
	if len(raw) != 4 {
		t.Fatalf("len(raw) = %d, want 4", len(raw))
	}
	for i, p := range raw {
		if want := float64(6 + i); p.Value != want {
			t.Fatalf("raw[%d].Value = %v, want %v", i, p.Value, want)
		}
	}
}

func TestRollupMinMaxSumCount(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("x")
	// 10 samples inside one 10s bucket, then one in the next.
	for i := 0; i < 10; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Second), float64(i+1))
	}
	s.Append(t0.Add(10*time.Second), 100)
	bks := s.Buckets(Tier10s)
	if len(bks) != 2 {
		t.Fatalf("len(buckets) = %d, want 2 (sealed + open)", len(bks))
	}
	b := bks[0]
	if b.Min != 1 || b.Max != 10 || b.Sum != 55 || b.Count != 10 {
		t.Fatalf("sealed bucket = %+v", b)
	}
	if !b.Start.Equal(t0) {
		t.Fatalf("bucket start = %v, want %v", b.Start, t0)
	}
	if got := b.Avg(); got != 5.5 {
		t.Fatalf("Avg = %v, want 5.5", got)
	}
	open := bks[1]
	if open.Count != 1 || open.Min != 100 || !open.Start.Equal(t0.Add(10*time.Second)) {
		t.Fatalf("open bucket = %+v", open)
	}
}

// TestRawWraparoundAcrossRollupBoundary is the satellite edge case: the
// raw ring is smaller than one rollup interval's worth of samples, so it
// wraps (losing raw points) while the rollup keeps folding — the sealed
// bucket must still account for every appended sample.
func TestRawWraparoundAcrossRollupBoundary(t *testing.T) {
	st := NewStore(Options{RawCapacity: 3})
	s := st.Series("x")
	// 20 samples at 1Hz: two full 10s buckets; the raw ring holds 3.
	for i := 0; i < 20; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	if n := len(s.Raw()); n != 3 {
		t.Fatalf("raw retained %d, want 3", n)
	}
	bks := s.Buckets(Tier10s)
	if len(bks) != 2 {
		t.Fatalf("len(buckets) = %d, want 2", len(bks))
	}
	if bks[0].Count != 10 || bks[0].Min != 0 || bks[0].Max != 9 || bks[0].Sum != 45 {
		t.Fatalf("first bucket = %+v, want full 10 samples despite raw wrap", bks[0])
	}
	if bks[1].Count != 10 || bks[1].Min != 10 || bks[1].Max != 19 {
		t.Fatalf("second (open) bucket = %+v", bks[1])
	}
}

// TestTickExactlyOnTierEdge is the satellite edge case: a virtual-clock
// tick landing exactly on a 10s/1m boundary must open the next bucket,
// not extend the previous one ([start, start+width) intervals).
func TestTickExactlyOnTierEdge(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("x")
	s.Append(t0, 1)                                     // bucket [0,10s)
	s.Append(t0.Add(10*time.Second-time.Nanosecond), 2) // still [0,10s)
	s.Append(t0.Add(10*time.Second), 3)                 // exactly on the edge → [10s,20s)
	bks := s.Buckets(Tier10s)
	if len(bks) != 2 {
		t.Fatalf("len(buckets) = %d, want 2", len(bks))
	}
	if bks[0].Count != 2 || bks[0].Max != 2 {
		t.Fatalf("first bucket = %+v, want the two pre-edge samples", bks[0])
	}
	if bks[1].Count != 1 || bks[1].Min != 3 || !bks[1].Start.Equal(t0.Add(10*time.Second)) {
		t.Fatalf("edge bucket = %+v", bks[1])
	}

	// Same for the 1m tier: 60s lands in the second bucket.
	s2 := st.Series("y")
	s2.Append(t0.Add(59*time.Second), 1)
	s2.Append(t0.Add(60*time.Second), 2)
	m := s2.Buckets(Tier1m)
	if len(m) != 2 || m[0].Count != 1 || m[1].Count != 1 {
		t.Fatalf("1m buckets = %+v", m)
	}
}

func TestRollupRingEviction(t *testing.T) {
	st := NewStore(Options{RawCapacity: 4, TierCapacity: [2]int{3, 2}})
	s := st.Series("x")
	// 6 sealed 10s buckets (plus one open): tier ring keeps the last 3.
	for i := 0; i < 61; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	bks := s.Buckets(Tier10s)
	if len(bks) != 4 { // 3 sealed + open
		t.Fatalf("len(buckets) = %d, want 4", len(bks))
	}
	if !bks[0].Start.Equal(t0.Add(30 * time.Second)) {
		t.Fatalf("oldest retained bucket starts %v, want 30s", bks[0].Start)
	}
}

func TestGapsProduceNoEmptyBuckets(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("x")
	s.Append(t0, 1)
	s.Append(t0.Add(45*time.Second), 2) // 3 intervals skipped
	bks := s.Buckets(Tier10s)
	if len(bks) != 2 {
		t.Fatalf("len(buckets) = %d, want 2 (gap buckets omitted)", len(bks))
	}
	if !bks[1].Start.Equal(t0.Add(40 * time.Second)) {
		t.Fatalf("second bucket starts %v, want 40s", bks[1].Start)
	}
}

func TestStoreGetOrCreate(t *testing.T) {
	st := NewStore(Options{})
	a := st.Series("a")
	if st.Series("a") != a {
		t.Fatal("Series is not get-or-create")
	}
	if _, ok := st.Lookup("b"); ok {
		t.Fatal("Lookup created a series")
	}
	st.Series("b")
	names := st.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestSeriesKey(t *testing.T) {
	got := SeriesKey("flex_safety_ups_headroom_watts", [2]string{"ups", "UPS-1"})
	want := "flex_safety_ups_headroom_watts;ups=UPS-1"
	if got != want {
		t.Fatalf("SeriesKey = %q, want %q", got, want)
	}
	if got := SeriesKey("plain"); got != "plain" {
		t.Fatalf("SeriesKey = %q", got)
	}
}

// TestAppendAllocationFree is the acceptance criterion: sample ingest is
// allocation-free on the hot path (AllocsPerRun = 0), matching the
// //flex:hotpath contract flexlint enforces statically.
func TestAppendAllocationFree(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("x")
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		i++
		s.Append(t0.Add(time.Duration(i)*137*time.Millisecond), float64(i))
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %v per op, want 0", allocs)
	}
}

func TestAppendOutOfOrderWithinOpenBucket(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("x")
	s.Append(t0.Add(5*time.Second), 5)
	s.Append(t0.Add(3*time.Second), 3) // behind, same open bucket
	bks := s.Buckets(Tier10s)
	if len(bks) != 1 || bks[0].Count != 2 || bks[0].Min != 3 || bks[0].Max != 5 {
		t.Fatalf("buckets = %+v", bks)
	}
}
