package tsdb

import (
	"testing"
	"time"

	"flex/internal/obs"
)

// BenchmarkAppend is the BENCH_obs.json ingest figure: one hot-path
// sample append, including amortized rollup folding. Must report 0
// allocs/op (the //flex:hotpath contract).
func BenchmarkAppend(b *testing.B) {
	st := NewStore(Options{})
	s := st.Series("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(t0.Add(time.Duration(i)*500*time.Millisecond), float64(i))
	}
}

// BenchmarkAppendRollupSeal forces a bucket seal on every append (each
// sample lands in a fresh 10s and 1m interval) — the worst-case fold.
func BenchmarkAppendRollupSeal(b *testing.B) {
	st := NewStore(Options{})
	s := st.Series("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(t0.Add(time.Duration(i)*Tier1m), float64(i))
	}
}

// BenchmarkQueryRaw re-buckets one minute of 500ms raw samples.
func BenchmarkQueryRaw(b *testing.B) {
	st := NewStore(Options{})
	s := st.Series("bench")
	for i := 0; i < 120; i++ {
		s.Append(t0.Add(time.Duration(i)*500*time.Millisecond), float64(i))
	}
	r := QueryRange{From: t0, To: t0.Add(time.Minute), Step: 5 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Query(r); len(pts) == 0 {
			b.Fatal("empty query")
		}
	}
}

// BenchmarkQueryRollup answers an hour-scale query from the 1m tier.
func BenchmarkQueryRollup(b *testing.B) {
	st := NewStore(Options{RawCapacity: 64})
	s := st.Series("bench")
	for i := 0; i < 3600; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	r := QueryRange{From: t0, To: t0.Add(time.Hour), Step: Tier1m, Agg: AggMax}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Query(r); len(pts) == 0 {
			b.Fatal("empty query")
		}
	}
}

// BenchmarkWindowAvg is the burn-rate evaluation primitive: every SLO
// objective calls it twice per audit tick.
func BenchmarkWindowAvg(b *testing.B) {
	st := NewStore(Options{})
	s := st.Series("bench")
	for i := 0; i < 600; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Second), float64(i%2))
	}
	from, to := t0.Add(9*time.Minute), t0.Add(10*time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, n := s.WindowAvg(from, to); n == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkSamplerTick scrapes a realistically sized registry (64
// gauges) into the store — the per-tick sampling cost.
func BenchmarkSamplerTick(b *testing.B) {
	reg := obs.NewRegistry()
	names := make([]*obs.Gauge, 64)
	for i := range names {
		names[i] = reg.Gauge("flex_bench_gauge_"+string(rune('a'+i%26))+string(rune('a'+i/26)), "")
		names[i].Set(float64(i))
	}
	st := NewStore(Options{})
	smp := &Sampler{Registry: reg, Store: st}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.Tick(t0.Add(time.Duration(i) * 500 * time.Millisecond))
	}
}
