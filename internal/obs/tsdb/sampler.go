package tsdb

import (
	"context"
	"strings"
	"time"

	"flex/internal/clock"
	"flex/internal/obs"
)

// DefaultSampleInterval is the sampler cadence when Interval is zero:
// 500ms, twice the controller interval, so the monitoring loop runs at a
// faster timescale than the control loop it audits.
const DefaultSampleInterval = 500 * time.Millisecond

// Sampler scrapes an obs.Registry into a Store on a fixed cadence:
// counters and gauges become one series each (counters as their raw
// monotonic value — rate is a query-time concern), histograms become
// `<name>_count` and `<name>_sum` series. Series keys follow the
// expvar convention (`name;label=value`), so /debug/vars keys and
// /query keys coincide.
//
// Tick is the synchronous core — the emulator drives it on the virtual
// clock inside its tick loop — and Run wraps it in a clock.After loop
// for wall-clock daemons.
type Sampler struct {
	Registry *obs.Registry
	Store    *Store
	// Clock paces Run. Tick callers supply timestamps directly.
	Clock clock.Clock
	// Interval is the scrape cadence for Run (DefaultSampleInterval when
	// zero).
	Interval time.Duration
	// Filter, when non-nil, keeps only metrics it returns true for —
	// e.g. restricting storage to flex_* series.
	Filter func(name string) bool

	ticks uint64
}

// Tick scrapes the registry once, stamping every stored point with now.
// The scrape path allocates (snapshots, key strings) — it is a cold
// path by design; only Series.Append underneath is allocation-free.
func (s *Sampler) Tick(now time.Time) {
	if s.Registry == nil || s.Store == nil {
		return
	}
	s.ticks++
	for _, snap := range s.Registry.Snapshots() {
		if s.Filter != nil && !s.Filter(snap.Name) {
			continue
		}
		key := snapshotKey(snap)
		switch snap.Kind {
		case obs.KindHistogram:
			s.Store.Series(key+"_count").Append(now, float64(snap.Count))
			s.Store.Series(key+"_sum").Append(now, snap.Sum)
		default:
			s.Store.Series(key).Append(now, snap.Value)
		}
	}
}

// Ticks reports how many scrapes have run.
func (s *Sampler) Ticks() uint64 { return s.ticks }

// Run scrapes on the configured cadence until ctx is done. It paces on
// the injected clock; with a virtual clock prefer driving Tick directly
// for determinism.
func (s *Sampler) Run(ctx context.Context) {
	interval := s.Interval
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	clk := s.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-clk.After(interval):
			s.Tick(now)
		}
	}
}

// snapshotKey renders the expvar-style series key for a snapshot.
func snapshotKey(s obs.Snapshot) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	for _, l := range s.Labels {
		b.WriteByte(';')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}
