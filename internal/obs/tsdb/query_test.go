package tsdb

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"flex/internal/obs"
)

func fill(s *Series, n int, step time.Duration, f func(i int) float64) {
	for i := 0; i < n; i++ {
		s.Append(t0.Add(time.Duration(i)*step), f(i))
	}
}

func TestQueryRawStep(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("x")
	fill(s, 10, time.Second, func(i int) float64 { return float64(i) })
	pts := s.Query(QueryRange{From: t0, To: t0.Add(10 * time.Second), Step: 2 * time.Second})
	if len(pts) != 5 {
		t.Fatalf("len(pts) = %d, want 5", len(pts))
	}
	// Each 2s step averages two consecutive values.
	if pts[0].Value != 0.5 || pts[4].Value != 8.5 {
		t.Fatalf("pts = %+v", pts)
	}
}

func TestQueryRollupSteps(t *testing.T) {
	st := NewStore(Options{RawCapacity: 8}) // force rollup reads
	s := st.Series("x")
	fill(s, 180, time.Second, func(i int) float64 { return float64(i) })
	// 10s step → 10s tier.
	pts := s.Query(QueryRange{From: t0, To: t0.Add(3 * time.Minute), Step: Tier10s, Agg: AggMax})
	if len(pts) != 18 {
		t.Fatalf("10s step: len = %d, want 18", len(pts))
	}
	if pts[0].Value != 9 || pts[17].Value != 179 {
		t.Fatalf("10s maxes = %v ... %v", pts[0].Value, pts[17].Value)
	}
	// 1m step → 1m tier.
	pts = s.Query(QueryRange{From: t0, To: t0.Add(3 * time.Minute), Step: Tier1m, Agg: AggCount})
	if len(pts) != 3 {
		t.Fatalf("1m step: len = %d, want 3", len(pts))
	}
	for i, p := range pts {
		if p.Value != 60 {
			t.Fatalf("pts[%d].Value = %v, want 60", i, p.Value)
		}
	}
	// 30s step re-buckets the 10s tier 3:1.
	pts = s.Query(QueryRange{From: t0, To: t0.Add(3 * time.Minute), Step: 30 * time.Second, Agg: AggSum})
	if len(pts) != 6 {
		t.Fatalf("30s step: len = %d, want 6", len(pts))
	}
	if pts[0].Value != 435 { // sum 0..29
		t.Fatalf("pts[0].Value = %v, want 435", pts[0].Value)
	}
}

func TestQueryAggregations(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("x")
	fill(s, 4, time.Second, func(i int) float64 { return float64(i + 1) }) // 1..4
	r := QueryRange{From: t0, To: t0.Add(10 * time.Second), Step: Tier10s}
	for _, tc := range []struct {
		agg  Agg
		want float64
	}{
		{AggAvg, 2.5}, {AggMin, 1}, {AggMax, 4}, {AggSum, 10}, {AggCount, 4},
	} {
		r.Agg = tc.agg
		pts := s.Query(r)
		if len(pts) != 1 || pts[0].Value != tc.want {
			t.Fatalf("agg %v: pts = %+v, want [%v]", tc.agg, pts, tc.want)
		}
	}
}

func TestWindowAvgRawAndRollupFallback(t *testing.T) {
	st := NewStore(Options{RawCapacity: 4})
	s := st.Series("x")
	fill(s, 60, time.Second, func(i int) float64 { return 2 })
	// Window starts before the raw ring's oldest point → rollup path.
	avg, n := s.WindowAvg(t0, t0.Add(time.Minute))
	if avg != 2 || n == 0 {
		t.Fatalf("WindowAvg = %v over %d, want 2 over >0", avg, n)
	}
	// Window fully inside raw retention → exact raw path.
	avg, n = s.WindowAvg(t0.Add(57*time.Second), t0.Add(59*time.Second))
	if avg != 2 || n != 3 {
		t.Fatalf("raw WindowAvg = %v over %d, want 2 over 3", avg, n)
	}
}

func TestQuantileRawExact(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("x")
	fill(s, 101, time.Second, func(i int) float64 { return float64(i) }) // 0..100
	v, ok := s.Quantile(t0, t0.Add(2*time.Minute), 0.95)
	if !ok || v != 95 {
		t.Fatalf("Quantile(0.95) = %v, %v; want 95", v, ok)
	}
	if v, _ := s.Quantile(t0, t0.Add(2*time.Minute), 0); v != 0 {
		t.Fatalf("Quantile(0) = %v", v)
	}
	if v, _ := s.Quantile(t0, t0.Add(2*time.Minute), 1); v != 100 {
		t.Fatalf("Quantile(1) = %v", v)
	}
}

// TestQuantileOverPartialRollups is the satellite edge case: once raw
// retention is exceeded, quantiles interpolate over the 10s buckets —
// including the open, partially-filled one — and stay within the
// observed value range.
func TestQuantileOverPartialRollups(t *testing.T) {
	st := NewStore(Options{RawCapacity: 4})
	s := st.Series("x")
	// 25 samples at 1Hz, values 0..24: two sealed buckets (0..9, 10..19)
	// and an open one (20..24). Raw ring holds only the last 4.
	fill(s, 25, time.Second, func(i int) float64 { return float64(i) })
	v, ok := s.Quantile(t0, t0.Add(time.Minute), 0.5)
	if !ok {
		t.Fatal("no data")
	}
	if v < 10 || v > 15 {
		t.Fatalf("median over rollups = %v, want ≈12.5 (within [10,15])", v)
	}
	// The open bucket's range must be reachable: the max quantile lands
	// at its Max even though it is partially filled.
	v, ok = s.Quantile(t0, t0.Add(time.Minute), 1)
	if !ok || math.Abs(v-24) > 1e-9 {
		t.Fatalf("q=1 over rollups = %v, want 24", v)
	}
	// Empty window.
	if _, ok := s.Quantile(t0.Add(-time.Hour), t0.Add(-time.Minute), 0.5); ok {
		t.Fatal("Quantile reported data for an empty window")
	}
}

func TestQueryHandler(t *testing.T) {
	st := NewStore(Options{})
	s := st.Series("flex_safety_budget_burn_ratio")
	fill(s, 30, time.Second, func(i int) float64 { return float64(i) })
	h := st.Handler()

	// Series listing.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/query", nil))
	var listing struct {
		Series []string `json:"series"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing: %v", err)
	}
	if len(listing.Series) != 1 || listing.Series[0] != "flex_safety_budget_burn_ratio" {
		t.Fatalf("listing = %+v", listing)
	}

	// Range query with explicit window.
	rr = httptest.NewRecorder()
	req := httptest.NewRequest("GET",
		"/query?series=flex_safety_budget_burn_ratio&from="+t0.Format(time.RFC3339)+
			"&to="+t0.Add(30*time.Second).Format(time.RFC3339)+"&step=10s&agg=max", nil)
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.String())
	}
	var resp struct {
		Series string  `json:"series"`
		Step   string  `json:"step"`
		Agg    string  `json:"agg"`
		Points []Point `json:"points"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Agg != "max" || resp.Step != "10s" || len(resp.Points) != 3 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Points[2].Value != 29 {
		t.Fatalf("points[2] = %+v", resp.Points[2])
	}

	// Unknown series → 404; bad params → 400.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/query?series=nope", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown series status = %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/query?series=flex_safety_budget_burn_ratio&step=bogus", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad step status = %d", rr.Code)
	}
}

func TestSamplerScrape(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("flex_demo_gauge", "")
	c := reg.CounterVec("flex_demo_total", "", "kind").With("a")
	h := reg.Histogram("flex_demo_latency_seconds", "", nil)
	st := NewStore(Options{})
	smp := &Sampler{Registry: reg, Store: st}

	g.Set(42)
	c.Inc()
	h.Observe(0.5)
	smp.Tick(t0)
	g.Set(43)
	smp.Tick(t0.Add(time.Second))

	if smp.Ticks() != 2 {
		t.Fatalf("Ticks = %d", smp.Ticks())
	}
	s, ok := st.Lookup("flex_demo_gauge")
	if !ok {
		t.Fatalf("gauge series missing; have %v", st.Names())
	}
	raw := s.Raw()
	if len(raw) != 2 || raw[0].Value != 42 || raw[1].Value != 43 {
		t.Fatalf("gauge raw = %+v", raw)
	}
	if _, ok := st.Lookup("flex_demo_total;kind=a"); !ok {
		t.Fatalf("labeled counter series missing; have %v", st.Names())
	}
	if _, ok := st.Lookup("flex_demo_latency_seconds_count"); !ok {
		t.Fatal("histogram count series missing")
	}
	if s, _ := st.Lookup("flex_demo_latency_seconds_sum"); s == nil {
		t.Fatal("histogram sum series missing")
	} else if last, _ := s.Last(); last.Value != 0.5 {
		t.Fatalf("histogram sum = %v", last.Value)
	}
}

func TestSamplerFilter(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("flex_keep", "").Set(1)
	reg.Gauge("drop_me", "").Set(1)
	st := NewStore(Options{})
	smp := &Sampler{Registry: reg, Store: st, Filter: func(name string) bool {
		return name == "flex_keep"
	}}
	smp.Tick(t0)
	if _, ok := st.Lookup("flex_keep"); !ok {
		t.Fatal("filtered-in series missing")
	}
	if _, ok := st.Lookup("drop_me"); ok {
		t.Fatal("filtered-out series present")
	}
}
