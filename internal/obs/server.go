package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"time"

	"flex/internal/obs/recorder"
)

// ServerConfig wires the introspection handler.
type ServerConfig struct {
	Registry *Registry
	// Tracer is optional; without it /traces serves an empty list.
	Tracer *Tracer
	// Events is optional; without it /events serves an empty list. Join
	// /traces entries to /events streams on the shared episode ID.
	Events *recorder.Recorder
	// Query, SLO and Health are optional plain handlers mounted at
	// /query, /slo and /healthz. They are http.Handler (not concrete
	// types) because their providers — tsdb.Store.Handler,
	// slo.Auditor.SLOHandler / HealthHandler — live in packages that
	// import obs; holding them concretely here would cycle.
	Query  http.Handler
	SLO    http.Handler
	Health http.Handler
	// Fleet is optional, mounted at /fleet: the fleet aggregator's latest
	// snapshot (fleet.Fleet.Handler). Same http.Handler indirection as
	// Query/SLO/Health — the fleet package imports obs.
	Fleet http.Handler
	// FleetTraces is optional, mounted at /fleet/traces: stitched
	// per-episode stage waterfalls (fleet.Fleet.TracesHandler).
	FleetTraces http.Handler
}

// NewHandler returns the live introspection surface:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar-style JSON (cmdline, memstats, metrics)
//	/debug/pprof/  the standard runtime profiles
//	/traces        recent detect→plan→act traces as JSON; filters:
//	               since (min seq), from (RFC3339 or unix seconds),
//	               episode, limit
//	/events        flight-recorder events as JSON; filters: episode, type,
//	               actor, subject, min_seq, max_seq, since (alias for
//	               min_seq+1, for "everything after what I saw"), from/to
//	               (RFC3339 or unix seconds), causes, limit.
//	               ?episode=N defaults to causes=1, returning the episode's
//	               full causal chain (triggering samples included).
//	/query         tsdb series queries (when ServerConfig.Query is wired)
//	/slo           SLO burn rates and probe state (when SLO is wired)
//	/healthz       ready/degraded/unsafe verdict (when Health is wired)
//	/fleet         fleet aggregator snapshot (when Fleet is wired);
//	               ?room=NAME narrows to one room's status
//	/fleet/traces  stitched per-episode stage waterfalls (when FleetTraces
//	               is wired); ?episode=N narrows to one episode,
//	               ?limit=K keeps the newest K episodes
//
// Mount it behind an opt-in -listen flag; the handler itself performs no
// authentication.
func NewHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		index := "flex obs endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n  /traces\n  /events\n"
		if cfg.Query != nil {
			index += "  /query\n"
		}
		if cfg.SLO != nil {
			index += "  /slo\n"
		}
		if cfg.Health != nil {
			index += "  /healthz\n"
		}
		if cfg.Fleet != nil {
			index += "  /fleet\n"
		}
		if cfg.FleetTraces != nil {
			index += "  /fleet/traces\n"
		}
		_, _ = w.Write([]byte(index))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if cfg.Events == nil {
			_, _ = w.Write([]byte("[]\n"))
			return
		}
		f, err := eventFilter(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		events := cfg.Events.Query(f)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is note it for the scraper.
			_, _ = w.Write([]byte("\n# export error: " + err.Error() + "\n"))
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeExpvar(w, cfg.Registry)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if cfg.Tracer == nil {
			_, _ = w.Write([]byte("[]\n"))
			return
		}
		f, err := traceFilter(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := cfg.Tracer.WriteJSONFiltered(w, f); err != nil {
			_, _ = w.Write([]byte("\n"))
		}
	})
	if cfg.Query != nil {
		mux.Handle("/query", cfg.Query)
	}
	if cfg.SLO != nil {
		mux.Handle("/slo", cfg.SLO)
	}
	if cfg.Health != nil {
		mux.Handle("/healthz", cfg.Health)
	}
	if cfg.Fleet != nil {
		mux.Handle("/fleet", cfg.Fleet)
	}
	if cfg.FleetTraces != nil {
		mux.Handle("/fleet/traces", cfg.FleetTraces)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer binds addr (":0" picks a free port) and serves the
// introspection handler in a background goroutine. It returns the bound
// address and a stop function that closes the listener and any in-flight
// connections. The commands mount this behind their -listen flags.
func StartServer(addr string, cfg ServerConfig) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(cfg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// eventFilter parses /events query parameters into a recorder.Filter.
func eventFilter(r *http.Request) (recorder.Filter, error) {
	var f recorder.Filter
	q := r.URL.Query()
	parseUint := func(key string, dst *uint64) error {
		s := q.Get(key)
		if s == "" {
			return nil
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return &badParamError{key, s}
		}
		*dst = v
		return nil
	}
	if err := parseUint("episode", &f.Episode); err != nil {
		return f, err
	}
	if err := parseUint("min_seq", &f.MinSeq); err != nil {
		return f, err
	}
	if err := parseUint("max_seq", &f.MaxSeq); err != nil {
		return f, err
	}
	// since=<seq> means "everything after the last seq I saw" — the
	// incremental-poll idiom; it translates to MinSeq = since+1.
	var since uint64
	if err := parseUint("since", &since); err != nil {
		return f, err
	}
	if since != 0 {
		f.MinSeq = since + 1
	}
	if s := q.Get("from"); s != "" {
		t, err := parseQueryTime(s)
		if err != nil {
			return f, &badParamError{"from", s}
		}
		f.From = t
	}
	if s := q.Get("to"); s != "" {
		t, err := parseQueryTime(s)
		if err != nil {
			return f, &badParamError{"to", s}
		}
		f.To = t
	}
	if s := q.Get("type"); s != "" {
		typ, err := recorder.ParseType(s)
		if err != nil {
			return f, &badParamError{"type", s}
		}
		f.Type = typ
	}
	f.Actor = q.Get("actor")
	f.Subject = q.Get("subject")
	// Episode queries serve the causal chain by default; ?causes=0 opts
	// out, ?causes=1 opts in for any query.
	f.WithCauses = f.Episode != 0
	if s := q.Get("causes"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return f, &badParamError{"causes", s}
		}
		f.WithCauses = v
	}
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return f, &badParamError{"limit", s}
		}
		f.Limit = v
	}
	return f, nil
}

// traceFilter parses /traces query parameters into a TraceFilter.
func traceFilter(r *http.Request) (TraceFilter, error) {
	var f TraceFilter
	q := r.URL.Query()
	if s := q.Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return f, &badParamError{"since", s}
		}
		f.MinSeq = v + 1
	}
	if s := q.Get("from"); s != "" {
		t, err := parseQueryTime(s)
		if err != nil {
			return f, &badParamError{"from", s}
		}
		f.From = t
	}
	if s := q.Get("episode"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return f, &badParamError{"episode", s}
		}
		f.Episode = v
	}
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return f, &badParamError{"limit", s}
		}
		f.Limit = v
	}
	return f, nil
}

// parseQueryTime accepts RFC3339 or integer unix seconds, matching the
// tsdb /query time syntax.
func parseQueryTime(s string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(sec, 0).UTC(), nil
	}
	return time.Time{}, &badParamError{"time", s}
}

type badParamError struct{ key, val string }

func (e *badParamError) Error() string {
	return "bad " + e.key + " parameter: " + strconv.Quote(e.val)
}

// WriteExpvar renders the registry in expvar's JSON shape — flat keys,
// plus the conventional cmdline and memstats entries — so existing expvar
// tooling can consume it. Histograms appear as {count, sum, p50, p95, p99}.
func writeExpvar(w http.ResponseWriter, r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	vars := map[string]interface{}{
		"cmdline": os.Args,
		"memstats": map[string]interface{}{
			"Alloc":      ms.Alloc,
			"TotalAlloc": ms.TotalAlloc,
			"Sys":        ms.Sys,
			"HeapAlloc":  ms.HeapAlloc,
			"HeapInuse":  ms.HeapInuse,
			"NumGC":      ms.NumGC,
			"PauseTotal": ms.PauseTotalNs,
		},
		"goroutines": runtime.NumGoroutine(),
	}
	for _, s := range r.Snapshots() {
		key := s.Name
		for _, l := range s.Labels {
			key += ";" + l.Name + "=" + l.Value
		}
		switch s.Kind {
		case KindHistogram:
			vars[key] = map[string]interface{}{
				"count": s.Count,
				"sum":   s.Sum,
				"p50":   s.Quantile(0.50),
				"p95":   s.Quantile(0.95),
				"p99":   s.Quantile(0.99),
			}
		default:
			vars[key] = s.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(vars)
}
