// Package recorder is Flex's flight recorder: a bounded, append-only log
// of every causally-significant event on the shed-decision path —
// telemetry publication/arrival/drop, consensus verdicts, estimator bound
// updates, overdraw detection, plan start/commit/abort with the chosen
// actions and their impact scores, and every rack-manager dispatch, ack,
// failure and watchdog alert.
//
// The paper's safety argument (§V–VI) is reconstructed per episode: which
// UPS tripped, which samples the controller saw, which racks it shed and
// how far into the trip curve it got. Counters answer "how much"; the
// recorder answers "what happened and why" for any single episode, and
// feeds cmd/flexreplay, which re-drives controller.PlanContext from the
// recorded inputs and diffs the decisions.
//
// Events form causal chains through parent sequence numbers:
//
//	SamplePublish → SampleArrive → OverdrawDetect → PlanStart →
//	ActionPlanned → ActionDispatch → ActionAck/ActionFail
//
// Emission is lock-cheap (one short mutex hold, no allocation) so it can
// sit on the telemetry hot path, mirroring the obs registry's zero-alloc
// discipline. Timestamps are always caller-supplied from an injected
// clock.Clock — the recorder never reads the wall clock, so virtual-clock
// recordings replay bit-identically.
package recorder

import (
	"fmt"
	"time"
)

// Type classifies an event. The zero value TypeUnknown never appears in a
// recorded stream; filters use it as a wildcard.
type Type uint8

// Event taxonomy. See DESIGN.md "Flight recorder" for the field semantics
// of each type.
const (
	TypeUnknown Type = iota
	// TypeMeta carries the episode log header (replay.Header JSON in
	// Detail) — always the first event of a recorded run.
	TypeMeta
	// TypeSamplePublish: a poller published a sample. Subject=device,
	// Actor=poller, Value=watts, Aux=1 when valid.
	TypeSamplePublish
	// TypeSampleArrive: a view (LatestPower) accepted a sample.
	// Subject=device, Actor=view role, Value=watts, Cause=publish event.
	TypeSampleArrive
	// TypeSampleDrop: a broker dropped samples from a lagging subscriber
	// buffer. Subject=device, Actor=broker, Aux=count, Cause=publish
	// event.
	TypeSampleDrop
	// TypeConsensusVerdict: a logical meter reached median consensus.
	// Subject=device, Value=median watts, Aux=readable meter count.
	TypeConsensusVerdict
	// TypeConsensusDisagree: physical meters disagreed beyond the
	// threshold and the median masked it. Subject=device, Value=relative
	// spread, Cause=verdict event.
	TypeConsensusDisagree
	// TypeConsensusQuorumLoss: fewer than quorum meters were readable.
	// Subject=device, Aux=readable meter count.
	TypeConsensusQuorumLoss
	// TypeEstimatorBound: the EWMA estimator updated a device's
	// conservative lower bound. Subject=device, Value=mean−dev (clamped),
	// Score=mean, Cause=the sample's publish event.
	TypeEstimatorBound
	// TypeUPSFail / TypeUPSRecover: the experiment harness failed or
	// recovered a UPS. Subject=UPS name.
	TypeUPSFail
	TypeUPSRecover
	// TypeOverdrawDetect: a controller observed UPS power above
	// capacity−buffer. Subject=UPS name, Actor=controller, Value=measured
	// watts, Score=capacity watts, Cause=the sample-arrive event it read.
	TypeOverdrawDetect
	// TypeStaleSkip: a controller deferred re-planning because the
	// snapshot predates its last enforcement. Actor=controller,
	// Cause=detect event.
	TypeStaleSkip
	// TypePlanStart: Algorithm 1 began. Actor=controller, Cause=detect
	// event, Aux=len(acted) at plan time.
	TypePlanStart
	// TypeActionPlanned: one chosen corrective action. Subject=rack,
	// Actor=controller, Value=recovered watts, Score=impact,
	// Aux=ActionKind, Detail=workload, Cause=plan-start event.
	TypeActionPlanned
	// TypePlanCommit: the plan completed. Aux=action count,
	// Value=total recovered watts, Detail="insufficient" when shaveable
	// power ran out, Cause=plan-start event.
	TypePlanCommit
	// TypePlanAbort: the planning budget (or caller ctx) expired mid-plan
	// and the partial prefix was kept. Aux=actions kept, Cause=plan-start
	// event.
	TypePlanAbort
	// TypePlanError: planning failed outright. Detail=error,
	// Cause=plan-start event.
	TypePlanError
	// TypeEpisodeClose: the overdraw cleared. Actor=controller,
	// Value=shed latency in seconds.
	TypeEpisodeClose
	// TypeActionDispatch: an actuation command left for the rack manager.
	// Subject=rack, Actor=issuing controller, Detail=kind
	// ("throttle"/"shutdown"/"restore"), Value=cap watts,
	// Cause=action-planned event.
	TypeActionDispatch
	// TypeActionAck: the rack manager applied the command. Aux=1 when the
	// state actually changed (0 for an idempotent no-op),
	// Cause=dispatch event.
	TypeActionAck
	// TypeActionFail: the rack manager refused the command.
	// Detail=error, Cause=dispatch event.
	TypeActionFail
	// TypeWatchdogAlert: the §VI background verification service found a
	// broken actuation path. Subject=rack, Detail=reason.
	TypeWatchdogAlert
	// TypeSLOBreach: a safety SLO's burn rate crossed its alerting
	// threshold. Subject=objective name, Actor="slo", Value=burn rate,
	// Score=threshold, Episode=the open overdraw episode when the
	// objective is episode-scoped (shed-budget), Detail=reason.
	TypeSLOBreach
	// TypeSLORecover: the objective's burn rate fell back under the
	// threshold. Subject=objective name, Actor="slo", Value=burn rate,
	// Cause=the matching slo-breach event, Episode mirrors the breach.
	TypeSLORecover
	// TypeProbeFail: the continuous what-if probe found a UPS whose
	// hypothetical failure has no feasible shed plan inside the budget.
	// Subject=UPS name, Actor="slo", Value=uncovered watts,
	// Detail=reason ("insufficient" or the planner error).
	TypeProbeFail

	numTypes // sentinel; keep last
)

var typeNames = [numTypes]string{
	TypeUnknown:             "unknown",
	TypeMeta:                "meta",
	TypeSamplePublish:       "sample-publish",
	TypeSampleArrive:        "sample-arrive",
	TypeSampleDrop:          "sample-drop",
	TypeConsensusVerdict:    "consensus-verdict",
	TypeConsensusDisagree:   "consensus-disagree",
	TypeConsensusQuorumLoss: "consensus-quorum-loss",
	TypeEstimatorBound:      "estimator-bound",
	TypeUPSFail:             "ups-fail",
	TypeUPSRecover:          "ups-recover",
	TypeOverdrawDetect:      "overdraw-detect",
	TypeStaleSkip:           "stale-skip",
	TypePlanStart:           "plan-start",
	TypeActionPlanned:       "action-planned",
	TypePlanCommit:          "plan-commit",
	TypePlanAbort:           "plan-abort",
	TypePlanError:           "plan-error",
	TypeEpisodeClose:        "episode-close",
	TypeActionDispatch:      "action-dispatch",
	TypeActionAck:           "action-ack",
	TypeActionFail:          "action-fail",
	TypeWatchdogAlert:       "watchdog-alert",
	TypeSLOBreach:           "slo-breach",
	TypeSLORecover:          "slo-recover",
	TypeProbeFail:           "probe-fail",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if t < numTypes {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType resolves a taxonomy name ("plan-start") back to its Type.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return Type(t), nil
		}
	}
	return TypeUnknown, fmt.Errorf("recorder: unknown event type %q", s)
}

// MarshalJSON renders the type as its taxonomy name, so JSONL logs and
// /events responses are self-describing.
func (t Type) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts the taxonomy name.
func (t *Type) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("recorder: malformed event type %s", b)
	}
	v, err := ParseType(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// Event is one recorded occurrence. The struct is a fixed-size value —
// copying it into the ring allocates nothing — and its generic fields
// (Value, Score, Aux, Detail) are interpreted per Type as documented on
// the type constants.
type Event struct {
	// Seq is the recorder-assigned monotonic sequence number (1-based).
	// Ring order and JSONL order are both Seq order.
	Seq uint64 `json:"seq"`
	// Cause is the Seq of the parent event (0 for chain roots), forming
	// the sample → detection → plan → action causal chains.
	Cause uint64 `json:"cause,omitempty"`
	// Episode groups the events of one overdraw episode (0 when the
	// event is not episode-scoped, e.g. routine telemetry).
	Episode uint64 `json:"episode,omitempty"`
	// Time is the caller-supplied clock.Clock timestamp.
	Time time.Time `json:"time"`
	Type Type      `json:"type"`
	// Actor is the emitting component instance (controller name, poller
	// name, view role, "emu", "watchdog").
	Actor string `json:"actor,omitempty"`
	// Subject is the device the event is about (UPS name or rack ID).
	Subject string  `json:"subject,omitempty"`
	Value   float64 `json:"value,omitempty"`
	Score   float64 `json:"score,omitempty"`
	Aux     int64   `json:"aux,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}
