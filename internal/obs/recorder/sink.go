package recorder

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sink persists events as length-prefixed JSONL: each record is the
// decimal byte length of the JSON document, a space, the document, and a
// newline:
//
//	123 {"seq":1,"type":"meta",...}\n
//
// The prefix makes truncation detectable (a partial tail record fails the
// length check instead of silently parsing as a shorter log) while the
// payload stays grep-able JSONL. Writes are buffered; call Close (or
// Recorder.DetachSink) to flush.
//
// A Sink is not safe for concurrent use on its own — the Recorder
// serializes writes under its emission lock, which also keeps the file in
// sequence order.
type Sink struct {
	w   *bufio.Writer
	c   io.Closer // non-nil when the sink owns the underlying writer
	err error
	n   int // records written
}

// NewSink wraps w. If w is also an io.Closer, Close closes it.
func NewSink(w io.Writer) *Sink {
	s := &Sink{w: bufio.NewWriterSize(w, 64<<10)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// write appends one record. After the first error every write is a no-op
// returning that error.
//
//flex:coldpath
func (s *Sink) write(e Event) error {
	if s.err != nil {
		return s.err
	}
	b, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return err
	}
	var lenBuf [20]byte
	if _, err := s.w.Write(strconv.AppendInt(lenBuf[:0], int64(len(b)), 10)); err != nil {
		s.err = err
		return err
	}
	if err := s.w.WriteByte(' '); err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
		return err
	}
	s.n++
	return nil
}

// Err returns the first write error, if any.
func (s *Sink) Err() error { return s.err }

// Records reports how many events have been written.
func (s *Sink) Records() int { return s.n }

// Close flushes buffered records and closes the underlying writer when
// the sink owns it. It returns the first error seen (write, flush, or
// close).
func (s *Sink) Close() error {
	flushErr := s.w.Flush()
	if s.err == nil {
		s.err = flushErr
	}
	if s.c != nil {
		closeErr := s.c.Close()
		if s.err == nil {
			s.err = closeErr
		}
	}
	return s.err
}

// ReadEvents parses a length-prefixed JSONL event log produced by Sink.
// It fails on malformed prefixes, length mismatches, and non-monotonic
// sequence numbers — a truncated or corrupted log should be rejected, not
// silently replayed short. A partial final record (crash mid-write) is
// reported as an error carrying the events decoded so far.
func ReadEvents(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var out []Event
	var lastSeq uint64
	for rec := 1; ; rec++ {
		prefix, err := br.ReadString(' ')
		if err == io.EOF && prefix == "" {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("recorder: record %d: truncated length prefix: %w", rec, err)
		}
		n, err := strconv.Atoi(prefix[:len(prefix)-1])
		if err != nil || n <= 0 {
			return out, fmt.Errorf("recorder: record %d: malformed length prefix %q", rec, prefix)
		}
		buf := make([]byte, n+1)
		if _, err := io.ReadFull(br, buf); err != nil {
			return out, fmt.Errorf("recorder: record %d: truncated body (want %d bytes): %w", rec, n, err)
		}
		if buf[n] != '\n' {
			return out, fmt.Errorf("recorder: record %d: length prefix does not land on a record boundary", rec)
		}
		var e Event
		if err := json.Unmarshal(buf[:n], &e); err != nil {
			return out, fmt.Errorf("recorder: record %d: %w", rec, err)
		}
		if e.Seq <= lastSeq {
			return out, fmt.Errorf("recorder: record %d: sequence %d not after %d", rec, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		out = append(out, e)
	}
}
