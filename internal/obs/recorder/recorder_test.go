package recorder

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func TestEmitAssignsMonotonicSeq(t *testing.T) {
	r := New(16)
	for i := 1; i <= 5; i++ {
		if got := r.Emit(Event{Type: TypeSamplePublish, Time: t0}); got != uint64(i) {
			t.Fatalf("Emit #%d returned seq %d", i, got)
		}
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("Snapshot returned %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if seq := r.Emit(Event{Type: TypeMeta}); seq != 0 {
		t.Fatalf("nil Emit returned %d", seq)
	}
	if ep := r.NextEpisode(); ep != 0 {
		t.Fatalf("nil NextEpisode returned %d", ep)
	}
}

// Backpressure: under a burst larger than the ring, the oldest events are
// overwritten, the retained window stays contiguous and ends at the
// newest event, and Overwritten counts the evictions.
func TestRingOverwriteUnderBurst(t *testing.T) {
	const capacity, burst = 64, 1000
	r := New(capacity)
	for i := 0; i < burst; i++ {
		r.Emit(Event{Type: TypeSampleArrive, Time: t0.Add(time.Duration(i) * time.Millisecond)})
	}
	evs := r.Snapshot()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	for i, e := range evs {
		want := uint64(burst - capacity + i + 1)
		if e.Seq != want {
			t.Fatalf("retained[%d].Seq = %d, want %d (window must be the newest contiguous range)", i, e.Seq, want)
		}
	}
	if got := r.Overwritten(); got != burst-capacity {
		t.Fatalf("Overwritten = %d, want %d", got, burst-capacity)
	}
	if got := r.Emitted(); got != burst {
		t.Fatalf("Emitted = %d, want %d", got, burst)
	}
}

func TestConcurrentBurstKeepsSeqContiguous(t *testing.T) {
	const goroutines, each = 8, 500
	r := New(256)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Emit(Event{Type: TypeSamplePublish, Time: t0})
			}
		}()
	}
	wg.Wait()
	if got := r.Seq(); got != goroutines*each {
		t.Fatalf("Seq = %d, want %d", got, goroutines*each)
	}
	evs := r.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring not contiguous: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// The emission hot path must not allocate: the recorder sits on the
// telemetry publish/arrive path, mirroring the obs registry discipline.
func TestEmitZeroAllocs(t *testing.T) {
	r := New(1024)
	e := Event{
		Type:    TypeSampleArrive,
		Time:    t0,
		Actor:   "ups-view",
		Subject: "UPS-1",
		Value:   1.2e6,
		Cause:   7,
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(e)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f times per call, want 0", allocs)
	}
}

func TestNextEpisode(t *testing.T) {
	r := New(8)
	if a, b := r.NextEpisode(), r.NextEpisode(); a != 1 || b != 2 {
		t.Fatalf("NextEpisode = %d, %d; want 1, 2", a, b)
	}
	if got := r.Episodes(); got != 2 {
		t.Fatalf("Episodes = %d, want 2", got)
	}
}

func TestQueryFilters(t *testing.T) {
	r := New(64)
	pub := r.Emit(Event{Type: TypeSamplePublish, Time: t0, Actor: "poller-1", Subject: "UPS-2", Value: 9.9e5})
	arr := r.Emit(Event{Type: TypeSampleArrive, Time: t0, Actor: "ups-view", Subject: "UPS-2", Cause: pub})
	det := r.Emit(Event{Type: TypeOverdrawDetect, Time: t0, Actor: "ctl-1", Subject: "UPS-2", Cause: arr, Episode: 1})
	plan := r.Emit(Event{Type: TypePlanStart, Time: t0, Actor: "ctl-1", Cause: det, Episode: 1})
	act := r.Emit(Event{Type: TypeActionPlanned, Time: t0, Actor: "ctl-1", Subject: "rack-3", Cause: plan, Episode: 1})
	r.Emit(Event{Type: TypeSamplePublish, Time: t0, Actor: "poller-1", Subject: "UPS-3"})

	if got := r.Query(Filter{Type: TypeSamplePublish}); len(got) != 2 {
		t.Fatalf("type filter returned %d events, want 2", len(got))
	}
	if got := r.Query(Filter{Subject: "UPS-2"}); len(got) != 3 {
		t.Fatalf("subject filter returned %d events, want 3", len(got))
	}
	if got := r.Query(Filter{Actor: "ctl-1"}); len(got) != 3 {
		t.Fatalf("actor filter returned %d events, want 3", len(got))
	}
	if got := r.Query(Filter{MinSeq: det, MaxSeq: plan}); len(got) != 2 {
		t.Fatalf("seq range returned %d events, want 2", len(got))
	}
	if got := r.Query(Filter{Episode: 1, Limit: 2}); len(got) != 2 || got[1].Seq != act {
		t.Fatalf("limit filter returned %v", got)
	}
}

// An episode query with WithCauses must return the full causal chain —
// including the triggering telemetry sample events, which carry no
// episode ID themselves.
func TestQueryEpisodeCausalClosure(t *testing.T) {
	r := New(64)
	pub := r.Emit(Event{Type: TypeSamplePublish, Time: t0, Subject: "UPS-1"})
	arr := r.Emit(Event{Type: TypeSampleArrive, Time: t0, Subject: "UPS-1", Cause: pub})
	r.Emit(Event{Type: TypeSampleArrive, Time: t0, Subject: "UPS-9"}) // unrelated
	det := r.Emit(Event{Type: TypeOverdrawDetect, Time: t0, Subject: "UPS-1", Cause: arr, Episode: 3})
	plan := r.Emit(Event{Type: TypePlanStart, Time: t0, Cause: det, Episode: 3})
	planned := r.Emit(Event{Type: TypeActionPlanned, Time: t0, Subject: "rack-1", Cause: plan, Episode: 3})
	disp := r.Emit(Event{Type: TypeActionDispatch, Time: t0, Subject: "rack-1", Cause: planned, Episode: 3})
	ack := r.Emit(Event{Type: TypeActionAck, Time: t0, Subject: "rack-1", Cause: disp, Episode: 3})

	got := r.Query(Filter{Episode: 3, WithCauses: true})
	want := []uint64{pub, arr, det, plan, planned, disp, ack}
	if len(got) != len(want) {
		t.Fatalf("closure returned %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, e := range got {
		if e.Seq != want[i] {
			t.Fatalf("closure[%d].Seq = %d, want %d", i, e.Seq, want[i])
		}
	}
}

type failingWriter struct {
	limit int // bytes accepted before failing
	wrote int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.wrote+len(p) > f.limit {
		return 0, errors.New("disk full")
	}
	f.wrote += len(p)
	return len(p), nil
}

// A sink write error must detach the sink and surface via SinkErr while
// the ring keeps recording.
func TestSinkErrorDetachesAndRingSurvives(t *testing.T) {
	fw := &failingWriter{limit: 200}
	r := New(32)
	s := &Sink{w: newTinyBufWriter(fw)}
	r.AttachSink(s)
	for i := 0; i < 100; i++ {
		r.Emit(Event{Type: TypeSamplePublish, Time: t0, Subject: "UPS-1", Value: float64(i)})
	}
	if r.SinkErr() == nil {
		t.Fatal("SinkErr = nil after writer failure")
	}
	if !strings.Contains(r.SinkErr().Error(), "disk full") {
		t.Fatalf("SinkErr = %v", r.SinkErr())
	}
	if got := r.Seq(); got != 100 {
		t.Fatalf("ring stopped recording after sink failure: seq %d", got)
	}
}

func TestDetachSinkFlushes(t *testing.T) {
	var buf bytes.Buffer
	r := New(32)
	r.AttachSink(NewSink(&buf))
	r.Emit(Event{Type: TypeMeta, Time: t0, Detail: "header"})
	r.Emit(Event{Type: TypeUPSFail, Time: t0, Subject: "UPS-0"})
	if err := r.DetachSink(); err != nil {
		t.Fatalf("DetachSink: %v", err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(evs) != 2 || evs[0].Type != TypeMeta || evs[1].Subject != "UPS-0" {
		t.Fatalf("round trip mismatch: %+v", evs)
	}
}
