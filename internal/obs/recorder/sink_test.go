package recorder

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

// newTinyBufWriter gives the sink an almost unbuffered writer so write
// errors surface immediately instead of hiding in the 64KB buffer.
func newTinyBufWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, 16) }

func TestSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	in := []Event{
		{Seq: 1, Type: TypeMeta, Time: t0, Detail: `{"room":"emulation"}`},
		{Seq: 2, Type: TypeSamplePublish, Time: t0.Add(time.Second), Actor: "poller-1", Subject: "UPS-1", Value: 1.19999e6, Aux: 1},
		{Seq: 3, Type: TypeActionPlanned, Time: t0.Add(2 * time.Second), Actor: "ctl-1", Subject: "rack-07", Cause: 2, Episode: 1, Value: 8000, Score: 0.25, Detail: "batch"},
	}
	for _, e := range in {
		if err := s.write(e); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestReadEventsRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	for i := 1; i <= 3; i++ {
		if err := s.write(Event{Seq: uint64(i), Type: TypeSampleArrive, Time: t0}); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full := buf.Bytes()
	// Chop mid-record: a crash during the final write.
	evs, err := ReadEvents(bytes.NewReader(full[:len(full)-10]))
	if err == nil {
		t.Fatal("truncated log parsed without error")
	}
	if len(evs) != 2 {
		t.Fatalf("truncated log yielded %d whole events, want 2", len(evs))
	}
}

func TestReadEventsRejectsMalformedPrefix(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("nope {\"seq\":1}\n")); err == nil {
		t.Fatal("malformed prefix parsed without error")
	}
}

func TestReadEventsRejectsNonMonotonicSeq(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	_ = s.write(Event{Seq: 5, Type: TypeSampleArrive, Time: t0})
	_ = s.write(Event{Seq: 4, Type: TypeSampleArrive, Time: t0})
	_ = s.Close()
	if _, err := ReadEvents(&buf); err == nil {
		t.Fatal("non-monotonic log parsed without error")
	}
}

func TestTypeJSONNames(t *testing.T) {
	for ty := TypeMeta; ty < numTypes; ty++ {
		b, err := ty.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", ty, err)
		}
		var back Type
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != ty {
			t.Fatalf("round trip %v → %s → %v", ty, b, back)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Fatal("ParseType accepted a bogus name")
	}
}
