package recorder

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the ring size used when New is given capacity <= 0.
const DefaultCapacity = 8192

// Recorder is the flight recorder: a fixed-capacity ring of events that
// is always on, plus an optional JSONL sink for persistence. Emit is safe
// for concurrent use and allocation-free when no sink is attached; query
// paths (Snapshot, Query) allocate freely.
//
// The ring is bounded: under burst load the oldest events are overwritten
// (Overwritten counts them). Attach a sink before the run when the full
// log matters — replay needs every event, the live /events surface only
// the recent window.
type Recorder struct {
	mu   sync.Mutex
	ring []Event
	// n is the number of live events in the ring; next is the slot the
	// next event lands in once the ring has wrapped.
	n, next int
	seq     uint64
	sink    *Sink
	sinkErr error

	episodes    atomic.Uint64
	overwritten atomic.Uint64
	emitted     atomic.Uint64
}

// New returns a recorder retaining the last capacity events
// (DefaultCapacity when capacity <= 0). The ring is allocated up front so
// the emission path never grows it.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// Emit assigns the event its sequence number, appends it to the ring
// (overwriting the oldest event when full) and forwards it to the sink if
// one is attached. It returns the assigned sequence number so callers can
// thread it as the Cause of downstream events. Emit on a nil recorder
// returns 0, so call sites need no nil guards beyond `rec != nil` when
// they want to skip building the event at all.
//
//flex:hotpath
func (r *Recorder) Emit(e Event) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	r.ring[r.next] = e
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	} else {
		r.overwritten.Add(1)
	}
	sink := r.sink
	if sink != nil {
		// Writing under r.mu keeps the file in Seq order across
		// concurrent emitters; the sink write is buffered memory I/O
		// (bufio), not a syscall per event.
		if err := sink.write(e); err != nil {
			// First failure wins; the ring keeps recording.
			r.sink = nil
			r.sinkErr = err
		}
	}
	r.mu.Unlock()
	r.emitted.Add(1)
	return e.Seq
}

// NextEpisode allocates a fresh episode ID (1-based). Controllers call it
// when they open an overdraw episode; IDs are unique per recorder, so
// multi-primary controllers sharing a recorder never collide.
func (r *Recorder) NextEpisode() uint64 {
	if r == nil {
		return 0
	}
	return r.episodes.Add(1)
}

// AttachSink directs every subsequent event to s as length-prefixed
// JSONL. Attach before emission begins when the full log matters — events
// emitted earlier are only in the ring. A write error detaches the sink
// (the error is available via SinkErr); the ring keeps recording.
func (r *Recorder) AttachSink(s *Sink) {
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// DetachSink flushes and detaches the current sink, returning its first
// error (write or flush), if any.
func (r *Recorder) DetachSink() error {
	r.mu.Lock()
	s := r.sink
	r.sink = nil
	r.mu.Unlock()
	if s == nil {
		return nil
	}
	return s.Close()
}

// SinkErr returns the first error the attached sink hit, or nil. A
// non-nil value means the JSONL log is truncated (the ring is not).
func (r *Recorder) SinkErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sinkErr != nil {
		return r.sinkErr
	}
	if r.sink == nil {
		return nil
	}
	return r.sink.Err()
}

// Seq returns the last assigned sequence number.
func (r *Recorder) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Emitted reports the total number of events emitted.
func (r *Recorder) Emitted() uint64 { return r.emitted.Load() }

// Overwritten reports how many events the ring has evicted — the
// backpressure signal that the window was too small for the burst.
func (r *Recorder) Overwritten() uint64 { return r.overwritten.Load() }

// Episodes reports how many episode IDs have been allocated.
func (r *Recorder) Episodes() uint64 { return r.episodes.Load() }

// Filter selects events for Query. Zero values are wildcards.
type Filter struct {
	// Episode keeps events of one overdraw episode.
	Episode uint64
	// Type keeps one event type.
	Type Type
	// Actor / Subject keep events by emitting component / device (exact
	// match; Subject covers "by UPS" and "by rack" queries).
	Actor, Subject string
	// MinSeq/MaxSeq bound the sequence range (inclusive; 0 = open).
	MinSeq, MaxSeq uint64
	// From/To bound the event timestamps (inclusive; zero = open). The
	// incremental /events poll uses since=<seq> (MinSeq) or from=<time>
	// so watch loops refetch only the new tail instead of the full ring.
	From, To time.Time
	// WithCauses additionally includes the transitive causal ancestors of
	// every match — still retained in the window being queried — so an
	// episode query returns the full chain from the triggering telemetry
	// sample to the final action ack, even though samples carry no
	// episode ID.
	WithCauses bool
	// Limit keeps only the newest Limit events after filtering (0 = all).
	Limit int
}

func (f *Filter) match(e *Event) bool {
	if f.Episode != 0 && e.Episode != f.Episode {
		return false
	}
	if f.Type != TypeUnknown && e.Type != f.Type {
		return false
	}
	if f.Actor != "" && e.Actor != f.Actor {
		return false
	}
	if f.Subject != "" && e.Subject != f.Subject {
		return false
	}
	if f.MinSeq != 0 && e.Seq < f.MinSeq {
		return false
	}
	if f.MaxSeq != 0 && e.Seq > f.MaxSeq {
		return false
	}
	if !f.From.IsZero() && e.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && e.Time.After(f.To) {
		return false
	}
	return true
}

// Snapshot returns a copy of the retained events in sequence order.
func (r *Recorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(start+i)%len(r.ring)]
	}
	return out
}

// Query returns the retained events matching f, in sequence order.
func (r *Recorder) Query(f Filter) []Event {
	return ApplyFilter(r.Snapshot(), f)
}

// ApplyFilter filters a sequence-ordered event slice (the ring snapshot
// or a loaded JSONL log) with the same semantics as Recorder.Query.
func ApplyFilter(events []Event, f Filter) []Event {
	keep := make([]bool, len(events))
	any := false
	for i := range events {
		if f.match(&events[i]) {
			keep[i] = true
			any = true
		}
	}
	if any && f.WithCauses {
		// Events are in Seq order and causes always precede effects, so a
		// single reverse sweep closes the ancestor set.
		bySeq := make(map[uint64]int, len(events))
		for i := range events {
			bySeq[events[i].Seq] = i
		}
		for i := len(events) - 1; i >= 0; i-- {
			if !keep[i] || events[i].Cause == 0 {
				continue
			}
			if j, ok := bySeq[events[i].Cause]; ok {
				keep[j] = true
			}
		}
	}
	out := make([]Event, 0, len(events))
	for i := range events {
		if keep[i] {
			out = append(out, events[i])
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}
