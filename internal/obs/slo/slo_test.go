package slo_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/controller"
	"flex/internal/impact"
	"flex/internal/obs/recorder"
	"flex/internal/obs/slo"
	"flex/internal/obs/tsdb"
	"flex/internal/power"
	"flex/internal/rackmgr"
	"flex/internal/telemetry"
	"flex/internal/workload"
)

// harness wires a 4N/3 test room, telemetry views, one controller
// primary, and a bound auditor on a virtual clock.
type harness struct {
	topo     *power.Topology
	racks    []controller.ManagedRack
	upsView  *telemetry.LatestPower
	rackView *telemetry.LatestPower
	mgr      *rackmgr.Manager
	clk      *clock.Virtual
	now      time.Time
	rec      *recorder.Recorder
	ctl      *controller.Controller
	aud      *slo.Auditor
}

// testRacks places one rack of each category on every pair: SR 10kW,
// capable 10kW (flex 8kW), non-capable 10kW — the controller-test room.
func testRacks(topo *power.Topology) []controller.ManagedRack {
	var racks []controller.ManagedRack
	for _, p := range topo.Pairs {
		racks = append(racks,
			controller.ManagedRack{ID: fmt.Sprintf("sr-%d", p.ID), Workload: "websearch",
				Category: workload.SoftwareRedundant, Pair: p.ID,
				Allocated: 10 * power.KW, FlexPower: 0},
			controller.ManagedRack{ID: fmt.Sprintf("cap-%d", p.ID), Workload: "vmservice",
				Category: workload.NonRedundantCapable, Pair: p.ID,
				Allocated: 10 * power.KW, FlexPower: 8 * power.KW},
			controller.ManagedRack{ID: fmt.Sprintf("nc-%d", p.ID), Workload: "gpucluster",
				Category: workload.NonRedundantNonCapable, Pair: p.ID,
				Allocated: 10 * power.KW, FlexPower: 10 * power.KW},
		)
	}
	return racks
}

func newHarness(t *testing.T, cfg slo.Config) *harness {
	t.Helper()
	topo, err := power.NewRoom(power.RoomConfig{
		Design:              power.Redundancy{X: 4, Y: 3},
		UPSCapacity:         100 * power.KW,
		PairsPerCombination: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	racks := testRacks(topo)
	ids := make([]string, len(racks))
	for i, r := range racks {
		ids[i] = r.ID
	}
	clk := clock.NewVirtual(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	h := &harness{
		topo:     topo,
		racks:    racks,
		upsView:  telemetry.NewLatestPower(),
		rackView: telemetry.NewLatestPower(),
		mgr:      rackmgr.NewManager(clk, ids),
		clk:      clk,
		now:      clk.Now(),
		rec:      recorder.New(0),
	}
	h.ctl = controller.New(controller.Config{
		Name:     "ctl-1",
		Clock:    clk,
		Topo:     topo,
		Racks:    racks,
		UPSView:  h.upsView,
		RackView: h.rackView,
		Actuator: h.mgr,
		Scenario: impact.Realistic1(),
		Buffer:   power.KW,
		Recorder: h.rec,
	})
	if cfg.Store == nil {
		cfg.Store = tsdb.NewStore(tsdb.Options{})
	}
	if cfg.Recorder == nil {
		cfg.Recorder = h.rec
	}
	h.aud = slo.NewAuditor(cfg)
	h.aud.Bind(slo.Bindings{
		Clock:            clk,
		Topo:             topo,
		Racks:            racks,
		UPSView:          h.upsView,
		RackView:         h.rackView,
		Controllers:      []*controller.Controller{h.ctl},
		Scenario:         impact.Realistic1(),
		Buffer:           power.KW,
		AllocatablePower: 300 * power.KW,
	})
	return h
}

// feed advances the virtual clock one second and publishes UPS and rack
// power into the views, racks reporting per their manager state.
func (h *harness) feed(ups []power.Watts) {
	h.clk.Advance(time.Second)
	h.now = h.clk.Now()
	for u, w := range ups {
		h.upsView.Update(telemetry.Sample{
			Device: h.topo.UPSes[u].Name, Power: w, Valid: true, MeasuredAt: h.now,
		})
	}
	for _, r := range h.racks {
		st, cap, _ := h.mgr.State(r.ID)
		p := r.Allocated
		switch st {
		case rackmgr.Off:
			p = 0
		case rackmgr.Throttled:
			p = cap
		}
		h.rackView.Update(telemetry.Sample{
			Device: r.ID, Power: p, Valid: true, MeasuredAt: h.now,
		})
	}
}

var (
	normalPower   = []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW}
	overdrawPower = []power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW}
)

func TestUnboundAuditorDegraded(t *testing.T) {
	a := slo.NewAuditor(slo.Config{Store: tsdb.NewStore(tsdb.Options{})})
	a.Tick(context.Background(), time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	h := a.Health()
	if h.State != slo.StateDegraded {
		t.Fatalf("unbound health = %v, want degraded", h.State)
	}
	if len(h.Reasons) == 0 {
		t.Fatal("unbound health has no reason")
	}
	if a.Bound() {
		t.Fatal("Bound() = true before Bind")
	}
}

// TestSteadyStateReady drives a healthy room: every objective inside
// budget, the probe round clean, and the derived safety series present
// with the expected values.
func TestSteadyStateReady(t *testing.T) {
	h := newHarness(t, slo.Config{})
	ctx := context.Background()
	h.feed(normalPower)
	h.ctl.StepContext(ctx)
	h.aud.Tick(ctx, h.now)

	if got := h.aud.Health(); got.State != slo.StateReady {
		t.Fatalf("health = %v (%v), want ready", got.State, got.Reasons)
	}
	st := h.aud.Status()
	if st.EpisodeOpen || st.BudgetBurn != 0 {
		t.Fatalf("steady state reports episode: %+v", st)
	}
	if st.Probe.Rounds != 1 || st.Probe.Failures != 0 || st.Probe.CleanRounds != 1 {
		t.Fatalf("probe = %+v, want one clean round", st.Probe)
	}
	if len(st.Objectives) != 5 {
		t.Fatalf("objectives = %d, want 5", len(st.Objectives))
	}
	for _, o := range st.Objectives {
		if o.Bad || o.Breached {
			t.Fatalf("objective %s bad/breached at steady state: %+v", o.Name, o)
		}
	}

	// Derived series: headroom = capacity − measured power.
	store := h.aud.Store()
	hs, ok := store.Lookup(tsdb.SeriesKey(slo.SeriesUPSHeadroom, [2]string{"ups", h.topo.UPSes[0].Name}))
	if !ok {
		t.Fatalf("headroom series missing; have %v", store.Names())
	}
	if last, _ := hs.Last(); last.Value != float64(50*power.KW) {
		t.Fatalf("headroom = %v, want 50kW", last.Value)
	}
	// Stranded power (Eq. 5): allocatable 300kW − allocated 180kW.
	ss, ok := store.Lookup(slo.SeriesStrandedPower)
	if !ok {
		t.Fatal("stranded series missing")
	}
	if last, _ := ss.Last(); last.Value != float64(120*power.KW) {
		t.Fatalf("stranded = %v, want 120kW", last.Value)
	}
	if _, ok := store.Lookup(slo.SeriesBudgetBurn); !ok {
		t.Fatal("budget-burn series missing")
	}
	if _, ok := store.Lookup(slo.SeriesProbeFeasible); !ok {
		t.Fatal("probe-feasibility series missing")
	}
}

// TestFreshnessBreachAndRecover stalls telemetry until the ups-freshness
// objective burns its budget, then feeds fresh samples until the burn
// drains: the breach and recover events must pair up causally.
func TestFreshnessBreachAndRecover(t *testing.T) {
	h := newHarness(t, slo.Config{ProbeEvery: -1})
	ctx := context.Background()
	h.feed(normalPower)
	h.aud.Tick(ctx, h.now)

	// Stall: advance 5s without new samples. Readings age past the 1s
	// default threshold; the fast-window burn trips immediately.
	h.clk.Advance(5 * time.Second)
	h.now = h.clk.Now()
	h.aud.Tick(ctx, h.now)

	st := h.aud.Status()
	var fresh *slo.Objective
	for i := range st.Objectives {
		if st.Objectives[i].Name == slo.ObjUPSFresh {
			fresh = &st.Objectives[i]
		}
	}
	if fresh == nil || !fresh.Bad || !fresh.Breached {
		t.Fatalf("ups-freshness after stall = %+v, want bad+breached", fresh)
	}
	breaches := h.rec.Query(recorder.Filter{Type: recorder.TypeSLOBreach, Subject: slo.ObjUPSFresh})
	if len(breaches) != 1 {
		t.Fatalf("breach events = %d, want 1", len(breaches))
	}
	if fresh.BreachSeq != breaches[0].Seq {
		t.Fatalf("objective.BreachSeq = %d, event seq = %d", fresh.BreachSeq, breaches[0].Seq)
	}
	if h.aud.Health().State != slo.StateDegraded {
		t.Fatalf("health during breach = %v, want degraded", h.aud.Health().State)
	}

	// Recover: fresh telemetry every second until the bad samples age out
	// of the fast window.
	for i := 0; i < 90; i++ {
		h.feed(normalPower)
		h.aud.Tick(ctx, h.now)
	}
	recovers := h.rec.Query(recorder.Filter{Type: recorder.TypeSLORecover, Subject: slo.ObjUPSFresh})
	if len(recovers) != 1 {
		t.Fatalf("recover events = %d, want 1", len(recovers))
	}
	if recovers[0].Cause != breaches[0].Seq {
		t.Fatalf("recover.Cause = %d, want breach seq %d", recovers[0].Cause, breaches[0].Seq)
	}
	if got := h.aud.Health(); got.State != slo.StateReady {
		t.Fatalf("health after recovery = %v (%v), want ready", got.State, got.Reasons)
	}
}

// TestShedBudgetEpisode fails a UPS and checks the acceptance criterion:
// /slo reports budget burn for the open episode, /healthz flips
// ready→degraded and back, and the slo-breach / slo-recover events carry
// the episode ID with recover causally citing its breach.
func TestShedBudgetEpisode(t *testing.T) {
	h := newHarness(t, slo.Config{})
	ctx := context.Background()

	// Steady state first (also consumes the first due probe).
	h.feed(normalPower)
	h.ctl.StepContext(ctx)
	h.aud.Tick(ctx, h.now)
	if h.aud.Health().State != slo.StateReady {
		t.Fatal("not ready before failure")
	}

	// UPS 0 fails; survivors overdraw. The episode opens at detection.
	h.feed(overdrawPower)
	out := h.ctl.StepContext(ctx)
	if !out.Overdraw {
		t.Fatal("overdraw not detected")
	}
	h.aud.Tick(ctx, h.now)
	probeRoundsAtFailure := h.aud.Status().Probe.Rounds

	// One more overdrawn second: burn becomes measurable.
	h.feed(overdrawPower)
	h.ctl.StepContext(ctx)
	h.aud.Tick(ctx, h.now)

	st := h.aud.Status()
	if !st.EpisodeOpen || st.EpisodeID == 0 {
		t.Fatalf("episode not reported: %+v", st)
	}
	if st.BudgetBurn <= 0 || st.BudgetBurn >= 1 {
		t.Fatalf("budget burn = %v, want in (0,1) one second into the episode", st.BudgetBurn)
	}
	if h.aud.Health().State != slo.StateDegraded {
		t.Fatalf("health during episode = %v, want degraded", h.aud.Health().State)
	}
	// Probing is suppressed while a real failure is in progress: modeling
	// a second failure on top is outside the paper's design envelope.
	if st.Probe.Rounds != probeRoundsAtFailure {
		t.Fatalf("probe ran during an open episode: %+v", st.Probe)
	}
	breaches := h.rec.Query(recorder.Filter{Type: recorder.TypeSLOBreach, Subject: slo.ObjShedBudget})
	if len(breaches) != 1 {
		t.Fatalf("shed-budget breach events = %d, want 1", len(breaches))
	}
	if breaches[0].Episode != st.EpisodeID {
		t.Fatalf("breach.Episode = %d, want open episode %d", breaches[0].Episode, st.EpisodeID)
	}

	// Recovery: power returns below capacity, the episode closes, and the
	// breach drains out of the fast window.
	for i := 0; i < 90; i++ {
		h.feed(normalPower)
		h.ctl.StepContext(ctx)
		h.aud.Tick(ctx, h.now)
	}
	if got := h.aud.Health(); got.State != slo.StateReady {
		t.Fatalf("health after recovery = %v (%v), want ready", got.State, got.Reasons)
	}
	recovers := h.rec.Query(recorder.Filter{Type: recorder.TypeSLORecover, Subject: slo.ObjShedBudget})
	if len(recovers) != 1 {
		t.Fatalf("shed-budget recover events = %d, want 1", len(recovers))
	}
	if recovers[0].Cause != breaches[0].Seq {
		t.Fatalf("recover.Cause = %d, want breach seq %d", recovers[0].Cause, breaches[0].Seq)
	}
	if recovers[0].Episode != breaches[0].Episode {
		t.Fatalf("recover.Episode = %d, breach.Episode = %d", recovers[0].Episode, breaches[0].Episode)
	}

	// The health transition history shows the full flip.
	trs := h.aud.Transitions()
	var saw []string
	for _, tr := range trs {
		saw = append(saw, tr.From.String()+"→"+tr.To.String())
	}
	want := map[string]bool{"ready→degraded": false, "degraded→ready": false}
	for _, s := range saw {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for k, ok := range want {
		if !ok {
			t.Fatalf("transition %s missing; saw %v", k, saw)
		}
	}
}

// TestBudgetExhaustedUnsafe keeps an overdraw episode open past the full
// 10s detect→act budget: /healthz must go unsafe (503).
func TestBudgetExhaustedUnsafe(t *testing.T) {
	h := newHarness(t, slo.Config{ProbeEvery: -1})
	ctx := context.Background()
	h.feed(overdrawPower)
	h.ctl.StepContext(ctx)
	// Keep the overdraw standing for 12 virtual seconds.
	for i := 0; i < 12; i++ {
		h.feed(overdrawPower)
		h.ctl.StepContext(ctx)
		h.aud.Tick(ctx, h.now)
	}
	st := h.aud.Status()
	if st.BudgetBurn < 1 {
		t.Fatalf("budget burn = %v, want >= 1 after 12s", st.BudgetBurn)
	}
	if st.Health.State != slo.StateUnsafe {
		t.Fatalf("health = %v (%v), want unsafe", st.Health.State, st.Health.Reasons)
	}
	rr := httptest.NewRecorder()
	h.aud.HealthHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status = %d, want 503", rr.Code)
	}
}

// TestProbeInfeasibleUnsafe builds a room whose load survives normal
// operation but has no shaveable power to cover a failover: the what-if
// probe must flag every UPS infeasible and flip /healthz unsafe even
// though nothing has failed yet.
func TestProbeInfeasibleUnsafe(t *testing.T) {
	topo, err := power.NewRoom(power.RoomConfig{
		Design:              power.Redundancy{X: 4, Y: 3},
		UPSCapacity:         100 * power.KW,
		PairsPerCombination: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One untouchable 60kW rack per pair: normal per-UPS load 90kW fits
	// under capacity−buffer; any failover pushes survivors to 120kW with
	// nothing the planner may act on.
	var racks []controller.ManagedRack
	for _, p := range topo.Pairs {
		racks = append(racks, controller.ManagedRack{
			ID: fmt.Sprintf("nc-%d", p.ID), Workload: "gpucluster",
			Category: workload.NonRedundantNonCapable, Pair: p.ID,
			Allocated: 60 * power.KW, FlexPower: 60 * power.KW,
		})
	}
	clk := clock.NewVirtual(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	upsView, rackView := telemetry.NewLatestPower(), telemetry.NewLatestPower()
	rec := recorder.New(0)
	aud := slo.NewAuditor(slo.Config{Store: tsdb.NewStore(tsdb.Options{}), Recorder: rec})
	aud.Bind(slo.Bindings{
		Clock: clk, Topo: topo, Racks: racks,
		UPSView: upsView, RackView: rackView,
		Scenario: impact.Realistic1(), Buffer: power.KW,
		AllocatablePower: 360 * power.KW,
	})
	clk.Advance(time.Second)
	now := clk.Now()
	for u := range topo.UPSes {
		upsView.Update(telemetry.Sample{
			Device: topo.UPSes[u].Name, Power: 90 * power.KW, Valid: true, MeasuredAt: now,
		})
	}
	for _, r := range racks {
		rackView.Update(telemetry.Sample{Device: r.ID, Power: r.Allocated, Valid: true, MeasuredAt: now})
	}
	aud.Tick(context.Background(), now)

	st := aud.Status()
	if st.Probe.Rounds != 1 || st.Probe.Failures != 1 {
		t.Fatalf("probe = %+v, want one failed round", st.Probe)
	}
	if len(st.Probe.Infeasible) != len(topo.UPSes) {
		t.Fatalf("infeasible = %v, want all %d UPSes", st.Probe.Infeasible, len(topo.UPSes))
	}
	if st.Health.State != slo.StateUnsafe {
		t.Fatalf("health = %v (%v), want unsafe", st.Health.State, st.Health.Reasons)
	}
	fails := rec.Query(recorder.Filter{Type: recorder.TypeProbeFail})
	if len(fails) != len(topo.UPSes) {
		t.Fatalf("probe-fail events = %d, want %d", len(fails), len(topo.UPSes))
	}
	if fails[0].Value <= 0 || fails[0].Detail == "" {
		t.Fatalf("probe-fail event lacks uncovered watts or detail: %+v", fails[0])
	}
	// Feasibility series records the failure.
	if s, ok := aud.Store().Lookup(slo.SeriesProbeFeasible); !ok {
		t.Fatal("probe-feasibility series missing")
	} else if last, _ := s.Last(); last.Value != 0 {
		t.Fatalf("probe feasible = %v, want 0", last.Value)
	}
}

// TestHandlers exercises the /slo and /healthz JSON surfaces at steady
// state.
func TestHandlers(t *testing.T) {
	h := newHarness(t, slo.Config{})
	ctx := context.Background()
	h.feed(normalPower)
	h.ctl.StepContext(ctx)
	h.aud.Tick(ctx, h.now)

	rr := httptest.NewRecorder()
	h.aud.SLOHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/slo status = %d", rr.Code)
	}
	var st slo.Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("/slo decode: %v", err)
	}
	if len(st.Objectives) != 5 || st.Ticks != 1 {
		t.Fatalf("/slo = %+v", st)
	}

	rr = httptest.NewRecorder()
	h.aud.HealthHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", rr.Code)
	}
	var hv slo.Health
	if err := json.Unmarshal(rr.Body.Bytes(), &hv); err != nil {
		t.Fatalf("/healthz decode: %v", err)
	}
	if hv.State != slo.StateReady {
		t.Fatalf("/healthz state = %v", hv.State)
	}

	rr = httptest.NewRecorder()
	h.aud.HealthHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz?transitions=1", nil))
	var withTr struct {
		State       slo.State        `json:"state"`
		Transitions []slo.Transition `json:"transitions"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &withTr); err != nil {
		t.Fatalf("/healthz?transitions=1 decode: %v", err)
	}
	if len(withTr.Transitions) == 0 {
		t.Fatal("transition history empty (Bind records degraded→ready)")
	}
}

// BenchmarkProbe measures one what-if probe round (a full feasibility
// pass per UPS) — the BENCH_obs.json probe-latency figure.
func BenchmarkProbe(b *testing.B) {
	topo, err := power.NewRoom(power.RoomConfig{
		Design:              power.Redundancy{X: 4, Y: 3},
		UPSCapacity:         100 * power.KW,
		PairsPerCombination: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	racks := testRacks(topo)
	// Load the room so every simulated failover needs real planning.
	for i := range racks {
		racks[i].Allocated = 30 * power.KW
		if racks[i].FlexPower > 0 {
			racks[i].FlexPower = 25 * power.KW
		}
	}
	clk := clock.NewVirtual(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	upsView, rackView := telemetry.NewLatestPower(), telemetry.NewLatestPower()
	aud := slo.NewAuditor(slo.Config{
		Store:      tsdb.NewStore(tsdb.Options{}),
		ProbeEvery: time.Nanosecond, // due every tick
	})
	aud.Bind(slo.Bindings{
		Clock: clk, Topo: topo, Racks: racks,
		UPSView: upsView, RackView: rackView,
		Scenario: impact.Realistic1(), Buffer: power.KW,
		AllocatablePower: 400 * power.KW,
	})
	now := clk.Now()
	for u := range topo.UPSes {
		upsView.Update(telemetry.Sample{
			Device: topo.UPSes[u].Name, Power: 85 * power.KW, Valid: true, MeasuredAt: now,
		})
	}
	for _, r := range racks {
		rackView.Update(telemetry.Sample{Device: r.ID, Power: r.Allocated, Valid: true, MeasuredAt: now})
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(time.Second)
		aud.Tick(ctx, clk.Now())
	}
	if aud.Status().Probe.Rounds == 0 {
		b.Fatal("probe never ran")
	}
}

// BenchmarkAuditTick measures a probe-free audit tick: derived-series
// appends plus objective evaluation.
func BenchmarkAuditTick(b *testing.B) {
	topo, err := power.NewRoom(power.RoomConfig{
		Design:              power.Redundancy{X: 4, Y: 3},
		UPSCapacity:         100 * power.KW,
		PairsPerCombination: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	racks := testRacks(topo)
	clk := clock.NewVirtual(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	upsView, rackView := telemetry.NewLatestPower(), telemetry.NewLatestPower()
	aud := slo.NewAuditor(slo.Config{Store: tsdb.NewStore(tsdb.Options{}), ProbeEvery: -1})
	aud.Bind(slo.Bindings{
		Clock: clk, Topo: topo, Racks: racks,
		UPSView: upsView, RackView: rackView,
		Scenario: impact.Realistic1(), Buffer: power.KW,
		AllocatablePower: 300 * power.KW,
	})
	now := clk.Now()
	for u := range topo.UPSes {
		upsView.Update(telemetry.Sample{
			Device: topo.UPSes[u].Name, Power: 50 * power.KW, Valid: true, MeasuredAt: now,
		})
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(100 * time.Millisecond)
		aud.Tick(ctx, clk.Now())
	}
}
