package slo

import (
	"context"
	"time"

	"flex/internal/controller"
	"flex/internal/obs/recorder"
	"flex/internal/power"
)

// probeResult is one what-if round across every UPS.
type probeResult struct {
	infeasible []string
	events     []recorder.Event
	elapsed    time.Duration
}

// probeLocked answers "if UPS u failed right now, does a shed plan exist
// inside the planning budget?" for every UPS, against the live rack
// telemetry. Called with a.mu held; it emits nothing itself — probe-fail
// events are returned for emission after the mutex is released
// (eventcheck). The planning passes run under ctx bounded per-UPS by
// ProbeBudget, exactly the budget the live controller would plan under,
// so a feasible probe plan implies the real controller could produce one
// in time.
func (a *Auditor) probeLocked(ctx context.Context, now time.Time, upsPower []power.Watts) probeResult {
	b := a.b
	var res probeResult
	var start time.Time
	if b.Clock != nil {
		start = b.Clock.Now()
	}

	// Live rack powers; racks without a reading plan at allocated power
	// (the planner's own conservative convention).
	rackPower := b.RackView.Snapshot()
	pairLoad := power.NewPairLoad(b.Topo)
	for _, r := range b.Racks {
		p, ok := rackPower[r.ID]
		if !ok {
			p = r.Allocated
		}
		pairLoad[r.Pair] += p
	}

	for u := range b.Topo.UPSes {
		name := b.Topo.UPSes[u].Name
		failover := b.Topo.FailoverLoads(pairLoad, power.UPSID(u))
		// Power the plan must recover to bring every survivor under
		// capacity−buffer.
		var excess power.Watts
		for v := range b.Topo.UPSes {
			if v == u {
				continue
			}
			if over := failover[v] - (b.Topo.UPSes[v].Capacity - b.Buffer); over > 0 {
				excess += over
			}
		}
		if excess <= 0 {
			continue // this failure needs no shedding at current load
		}
		planCtx, cancel := context.WithTimeout(ctx, a.cfg.ProbeBudget)
		actions, insufficient, err := controller.PlanContext(planCtx, controller.PlanInput{
			Topo:      b.Topo,
			Racks:     b.Racks,
			UPSPower:  failover,
			RackPower: rackPower,
			Inactive:  map[power.UPSID]bool{power.UPSID(u): true},
			Scenario:  b.Scenario,
			Buffer:    b.Buffer,
		})
		cancel()
		if err == nil && !insufficient {
			continue
		}
		var recovered power.Watts
		for _, act := range actions {
			recovered += act.Recovered
		}
		uncovered := excess - recovered
		if uncovered < 0 {
			uncovered = 0
		}
		detail := "insufficient shaveable power"
		if err != nil {
			detail = err.Error()
		}
		res.infeasible = append(res.infeasible, name)
		res.events = append(res.events, recorder.Event{
			Type:    recorder.TypeProbeFail,
			Time:    now,
			Actor:   "slo",
			Subject: name,
			Value:   float64(uncovered),
			Aux:     int64(len(actions)),
			Detail:  detail,
		})
	}
	if b.Clock != nil {
		res.elapsed = b.Clock.Now().Sub(start)
	}
	return res
}
