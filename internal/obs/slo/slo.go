// Package slo is Flex's continuous safety auditor: it turns the paper's
// operating invariants into burn-rate SLOs evaluated against live
// telemetry, so "would this room survive a UPS failure right now?" is a
// monitored quantity with alerting semantics, not a post-hoc replay
// question.
//
// Each audit tick derives the safety quantities the invariants are
// stated over — per-UPS headroom under the committed plan, room stranded
// power (paper Eq. 5), the EWMA estimator's conservatism margin, and the
// shed-latency budget burn of any open overdraw episode — stores them as
// tsdb series, and evaluates four objectives:
//
//	shed-budget        open overdraw episodes must clear inside the 10s
//	                   detect→act budget (power.FlexLatencyBudget)
//	ups-freshness      the stalest UPS reading stays under the freshness
//	                   threshold (paper §IV-D: ≤1.5s UPS telemetry)
//	rack-freshness     likewise for rack readings (≤2s cadence)
//	probe-feasibility  the continuous what-if probe: for every active
//	                   UPS u, re-run Algorithm 1 against live telemetry
//	                   assuming u just failed — a feasible shed plan must
//	                   exist inside the planning budget
//	stage-budget       every critical-path stage's p99 latency stays
//	                   inside its carve of the 10s budget (StageBudgets);
//	                   requires Bindings.Stages
//
// Breaches and recoveries are emitted as flight-recorder events
// (slo-breach / slo-recover / probe-fail) carrying the open episode ID,
// so /events joins an SLO breach to the exact overdraw episode that
// burned the budget. The package serves /slo and /healthz
// (ready/degraded/unsafe with reasons) next to tsdb's /query on the obs
// HTTP surface.
//
// The auditor runs at a faster timescale than the control loop it
// audits (the VPP multi-timescale argument): Tick is the synchronous
// core the emulator drives on the virtual clock every emulation tick,
// and Run wraps it for wall-clock daemons. Everything is clock-injected
// and the whole package is a cold path — only the tsdb appends
// underneath are allocation-free.
package slo

import (
	"context"
	"sort"
	"sync"
	"time"

	"flex/internal/clock"
	"flex/internal/controller"
	"flex/internal/impact"
	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/obs/tsdb"
	"flex/internal/power"
	"flex/internal/telemetry"
)

// Derived-series names. Labeled series use the expvar/tsdb key
// convention `name;label=value`.
const (
	SeriesUPSHeadroom    = "flex_safety_ups_headroom_watts"     // ;ups=<name>
	SeriesStrandedPower  = "flex_safety_stranded_power_watts"   //
	SeriesEstimatorSlack = "flex_safety_estimator_margin_watts" //
	SeriesBudgetBurn     = "flex_safety_budget_burn_ratio"      //
	SeriesTelemetryAge   = "flex_safety_telemetry_age_seconds"  // ;view=ups|rack
	SeriesObjectiveBad   = "flex_slo_bad"                       // ;objective=<name>
	SeriesProbeFeasible  = "flex_probe_feasible"                //
	SeriesProbeLatency   = "flex_probe_latency_seconds"         //
)

// Objective names.
const (
	ObjShedBudget  = "shed-budget"
	ObjUPSFresh    = "ups-freshness"
	ObjRackFresh   = "rack-freshness"
	ObjProbe       = "probe-feasibility"
	ObjStageBudget = "stage-budget"
)

// StageBudgets carves the 10s detect→act budget (power.FlexLatencyBudget)
// into per-stage sub-budgets — the latency SLO each critical-path stage
// is held to. The carve reflects where a healthy deployment spends the
// window: most of it on telemetry cadence (sample), the rest split across
// ingest, view merge, and the controller's detect/plan/act compute. The
// entries sum exactly to the full budget, so "every stage within its
// sub-budget" implies "the end-to-end path within the window".
func StageBudgets() [obs.NumStages]time.Duration {
	var b [obs.NumStages]time.Duration
	b[obs.StageSample] = 3 * time.Second
	b[obs.StageQueue] = 1500 * time.Millisecond
	b[obs.StageView] = 1500 * time.Millisecond
	b[obs.StageDetect] = time.Second
	b[obs.StagePlan] = 2 * time.Second
	b[obs.StageAct] = time.Second
	return b
}

// Defaults.
const (
	// DefaultFreshness is the telemetry-freshness threshold: the paper
	// targets sub-second sample propagation, but readings refresh at the
	// poll cadence, so deployments with slower pollers must raise the
	// per-view thresholds above their cadence to avoid constant burn.
	DefaultFreshness = time.Second
	// DefaultFastWindow / DefaultSlowWindow are the burn-rate windows.
	DefaultFastWindow = time.Minute
	DefaultSlowWindow = 5 * time.Minute
	// DefaultTarget is the objective availability target: 99% of audit
	// ticks healthy, i.e. a 1% error budget.
	DefaultTarget = 0.99
	// DefaultBreachBurn is the burn-rate multiple that trips a breach:
	// burning the error budget at 1× means the budget exactly runs out
	// over the window.
	DefaultBreachBurn = 1.0
	// DefaultProbeEvery is the what-if probe cadence. Probing is a full
	// Algorithm 1 pass per active UPS, so it runs sparser than the audit
	// tick.
	DefaultProbeEvery = 5 * time.Second
)

// Config sizes an Auditor. Store is required; everything else defaults.
type Config struct {
	Store    *tsdb.Store
	Recorder *recorder.Recorder // optional: breach/recover/probe-fail events
	// UPSFreshness / RackFreshness override DefaultFreshness per view.
	UPSFreshness, RackFreshness time.Duration
	// FastWindow / SlowWindow are the burn-rate evaluation windows.
	FastWindow, SlowWindow time.Duration
	// Target is the per-objective availability target in (0, 1).
	Target float64
	// BreachBurn is the fast-window burn-rate multiple that trips a
	// breach.
	BreachBurn float64
	// ProbeEvery is the what-if probe cadence (0 = DefaultProbeEvery,
	// negative = disable probing).
	ProbeEvery time.Duration
	// ProbeBudget bounds one probe planning pass per UPS (default
	// power.FlexLatencyBudget/2 — the same budget the live controller
	// plans under, so probe feasibility implies live feasibility).
	ProbeBudget time.Duration
	// Interval paces Run (default tsdb.DefaultSampleInterval).
	Interval time.Duration
}

// Bindings attaches the auditor to a running control plane. All fields
// are required except Estimator and Controllers (without controllers the
// shed-budget objective idles; without the estimator the margin series
// is omitted).
type Bindings struct {
	Clock clock.Clock
	Topo  *power.Topology
	Racks []controller.ManagedRack
	// UPSView / RackView are the same telemetry views the controllers
	// read.
	UPSView, RackView *telemetry.LatestPower
	// Estimator, when non-nil, feeds the conservatism-margin series.
	Estimator *telemetry.EWMAEstimator
	// Controllers are the room's Flex-Online primaries; the auditor
	// reads their open-episode state and committed plans.
	Controllers []*controller.Controller
	// Scenario and Buffer mirror the controllers' planning inputs; the
	// probe plans with them.
	Scenario impact.Scenario
	Buffer   power.Watts
	// AllocatablePower is the room's allocatable power (Eq. 5's minuend).
	AllocatablePower power.Watts
	// Stages, when non-nil, are the per-stage critical-path latency
	// histograms the controllers feed (controller.Config.Stages); the
	// stage-budget objective audits their p99s against StageBudgets and
	// Status.Stages exports the breakdown.
	Stages *obs.StageMetrics
}

// objective tracks one SLO's bad-indicator series and breach state.
type objective struct {
	name   string
	series *tsdb.Series
	// immediate objectives breach on the raw indicator (edge-triggered)
	// instead of the windowed burn rate.
	immediate bool

	bad       bool
	fastBurn  float64
	slowBurn  float64
	breached  bool
	breachSeq uint64 // recorder seq of the open breach event
	episode   uint64 // episode attributed to the open breach
}

// Auditor is the continuous safety auditor. Construct with NewAuditor,
// attach to a control plane with Bind, then drive Tick (virtual clock)
// or Run (wall clock). All methods are safe for concurrent use.
type Auditor struct {
	cfg Config

	mu    sync.Mutex
	b     Bindings
	bound bool

	objectives []*objective
	byName     map[string]*objective

	// pre-created derived series (cold-path get-or-create at Bind time).
	stranded   *tsdb.Series
	margin     *tsdb.Series
	budgetBurn *tsdb.Series
	upsAge     *tsdb.Series
	rackAge    *tsdb.Series
	headroom   []*tsdb.Series // per UPS, topo order
	probeFeas  *tsdb.Series
	probeLat   *tsdb.Series

	// rack → pair mapping for committed-plan headroom attribution.
	rackPair map[string]power.PDUPairID

	lastEpisode uint64 // newest episode ID observed open
	budgetRatio float64

	lastProbe    time.Time
	probeRounds  uint64
	probeFails   uint64
	cleanRounds  uint64 // consecutive probe-fail-free rounds
	lastInfeas   []string
	lastProbeDur time.Duration

	health      State
	healthSince time.Time
	reasons     []string
	transitions []Transition

	ticks uint64
}

// NewAuditor constructs an auditor over st. Panics when cfg.Store is nil
// (a programming error, like registering on a nil registry).
func NewAuditor(cfg Config) *Auditor {
	if cfg.Store == nil {
		panic("slo: NewAuditor requires a Store")
	}
	if cfg.UPSFreshness <= 0 {
		cfg.UPSFreshness = DefaultFreshness
	}
	if cfg.RackFreshness <= 0 {
		cfg.RackFreshness = DefaultFreshness
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = DefaultFastWindow
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = DefaultSlowWindow
	}
	if cfg.Target <= 0 || cfg.Target >= 1 {
		cfg.Target = DefaultTarget
	}
	if cfg.BreachBurn <= 0 {
		cfg.BreachBurn = DefaultBreachBurn
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = DefaultProbeEvery
	}
	if cfg.ProbeBudget <= 0 {
		cfg.ProbeBudget = power.FlexLatencyBudget / 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = tsdb.DefaultSampleInterval
	}
	a := &Auditor{
		cfg:        cfg,
		byName:     make(map[string]*objective),
		health:     StateDegraded,
		reasons:    []string{"auditor not bound to a control plane"},
		stranded:   cfg.Store.Series(SeriesStrandedPower),
		margin:     cfg.Store.Series(SeriesEstimatorSlack),
		budgetBurn: cfg.Store.Series(SeriesBudgetBurn),
		upsAge:     cfg.Store.Series(tsdb.SeriesKey(SeriesTelemetryAge, [2]string{"view", "ups"})),
		rackAge:    cfg.Store.Series(tsdb.SeriesKey(SeriesTelemetryAge, [2]string{"view", "rack"})),
		probeFeas:  cfg.Store.Series(SeriesProbeFeasible),
		probeLat:   cfg.Store.Series(SeriesProbeLatency),
	}
	for _, o := range []struct {
		name      string
		immediate bool
	}{
		{ObjShedBudget, false},
		{ObjUPSFresh, false},
		{ObjRackFresh, false},
		{ObjProbe, true},
		{ObjStageBudget, false},
	} {
		ob := &objective{
			name:      o.name,
			immediate: o.immediate,
			series:    cfg.Store.Series(tsdb.SeriesKey(SeriesObjectiveBad, [2]string{"objective", o.name})),
		}
		a.objectives = append(a.objectives, ob)
		a.byName[o.name] = ob
	}
	return a
}

// Bind attaches the auditor to a control plane. Call once at wiring
// time, before ticking begins.
func (a *Auditor) Bind(b Bindings) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b = b
	a.bound = true
	a.rackPair = make(map[string]power.PDUPairID, len(b.Racks))
	for _, r := range b.Racks {
		a.rackPair[r.ID] = r.Pair
	}
	a.headroom = a.headroom[:0]
	for _, u := range b.Topo.UPSes {
		a.headroom = append(a.headroom, a.cfg.Store.Series(
			tsdb.SeriesKey(SeriesUPSHeadroom, [2]string{"ups", u.Name})))
	}
	var now time.Time
	if b.Clock != nil {
		now = b.Clock.Now()
	}
	a.setHealthLocked(now, StateReady, nil)
}

// Store returns the tsdb store the auditor writes its derived series
// to, so callers can share it with a registry sampler and the /query
// handler.
func (a *Auditor) Store() *tsdb.Store { return a.cfg.Store }

// Bound reports whether Bind has been called.
func (a *Auditor) Bound() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bound
}

// Ticks reports how many audit ticks have run.
func (a *Auditor) Ticks() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ticks
}

// Tick runs one audit round at time now: derive and store the safety
// series, evaluate every objective's burn rate, run the what-if probe
// when due, emit breach/recover/probe-fail events, and update /healthz.
// ctx bounds the probe's planning passes.
//
// Tick is synchronous and deterministic under a virtual clock: the
// emulator calls it once per emulation tick after pumping telemetry and
// stepping the controllers.
func (a *Auditor) Tick(ctx context.Context, now time.Time) {
	a.mu.Lock()
	if !a.bound {
		a.setHealthLocked(now, StateDegraded, []string{"auditor not bound to a control plane"})
		a.mu.Unlock()
		return
	}
	a.ticks++
	b := a.b

	// ---- derived safety series -------------------------------------
	upsPower := make([]power.Watts, len(b.Topo.UPSes))
	var upsSeen int
	for u := range b.Topo.UPSes {
		if v, _, ok := b.UPSView.Get(b.Topo.UPSes[u].Name); ok {
			upsPower[u] = v
			upsSeen++
		} else {
			// Missing reading: assume full capacity (the controller's
			// conservative convention) so derived headroom reads zero,
			// not full.
			upsPower[u] = b.Topo.UPSes[u].Capacity
		}
	}
	pending := a.pendingRecoveryLocked()
	for u := range b.Topo.UPSes {
		head := b.Topo.UPSes[u].Capacity - upsPower[u] + pending[u]
		a.headroom[u].Append(now, float64(head))
	}

	var allocated power.Watts
	for _, r := range b.Racks {
		allocated += r.Allocated
	}
	strand := b.AllocatablePower - allocated
	if strand < 0 {
		strand = 0
	}
	a.stranded.Append(now, float64(strand))

	if b.Estimator != nil {
		a.margin.Append(now, float64(b.Estimator.DeviationTotal()))
	}

	// Shed-budget burn: the fraction of the 10s detect→act budget the
	// oldest open overdraw episode has consumed.
	var burn float64
	var openEpisode uint64
	episodeOpen := false
	for _, c := range b.Controllers {
		if id, since, open := c.OpenEpisode(); open {
			episodeOpen = true
			if r := float64(now.Sub(since)) / float64(power.FlexLatencyBudget); r > burn {
				burn = r
			}
			if id > openEpisode {
				openEpisode = id
			}
		}
	}
	if openEpisode != 0 {
		a.lastEpisode = openEpisode
	}
	a.budgetRatio = burn
	a.budgetBurn.Append(now, burn)

	upsOld, upsOK := b.UPSView.Oldest(now)
	rackOld, rackOK := b.RackView.Oldest(now)
	if upsOK {
		a.upsAge.Append(now, upsOld.Seconds())
	}
	if rackOK {
		a.rackAge.Append(now, rackOld.Seconds())
	}

	// ---- what-if probe ---------------------------------------------
	var events []recorder.Event
	probeDue := a.cfg.ProbeEvery > 0 &&
		(a.lastProbe.IsZero() || !now.Before(a.lastProbe.Add(a.cfg.ProbeEvery)))
	if probeDue {
		a.lastProbe = now
		inactive := controller.InferInactiveUPSes(b.Topo, upsPower, controller.DefaultInactiveThreshold)
		if episodeOpen || len(inactive) > 0 || upsSeen == 0 {
			// A real failure (or no telemetry yet) is in progress:
			// probing would model a double failure the paper's design
			// explicitly does not cover. Skip without touching the
			// feasibility series — absence of data, not feasibility.
		} else {
			res := a.probeLocked(ctx, now, upsPower)
			a.probeRounds++
			a.lastProbeDur = res.elapsed
			a.lastInfeas = res.infeasible
			a.probeLat.Append(now, res.elapsed.Seconds())
			if len(res.infeasible) == 0 {
				a.cleanRounds++
				a.probeFeas.Append(now, 1)
			} else {
				a.cleanRounds = 0
				a.probeFails++
				a.probeFeas.Append(now, 0)
				events = append(events, res.events...)
			}
			a.byName[ObjProbe].bad = len(res.infeasible) > 0
		}
	}

	// ---- objective evaluation --------------------------------------
	a.byName[ObjShedBudget].bad = episodeOpen
	a.byName[ObjUPSFresh].bad = upsOK && upsOld > a.cfg.UPSFreshness
	a.byName[ObjRackFresh].bad = rackOK && rackOld > a.cfg.RackFreshness
	stageBad := false
	if b.Stages != nil {
		budgets := StageBudgets()
		for _, stg := range obs.Stages() {
			sum := b.Stages.Histogram(stg).Summary()
			if sum.Count > 0 && sum.Quantile(0.99) > budgets[stg].Seconds() {
				stageBad = true
				break
			}
		}
	}
	a.byName[ObjStageBudget].bad = stageBad

	budgetRate := 1 - a.cfg.Target
	for _, o := range a.objectives {
		v := 0.0
		if o.bad {
			v = 1
		}
		o.series.Append(now, v)
		fastAvg, _ := o.series.WindowAvg(now.Add(-a.cfg.FastWindow), now)
		slowAvg, _ := o.series.WindowAvg(now.Add(-a.cfg.SlowWindow), now)
		o.fastBurn = fastAvg / budgetRate
		o.slowBurn = slowAvg / budgetRate
		tripped := o.fastBurn >= a.cfg.BreachBurn
		if o.immediate {
			tripped = o.bad
		}
		if tripped && !o.breached {
			o.breached = true
			o.episode = 0
			if o.name == ObjShedBudget {
				o.episode = a.lastEpisode
			}
			ev := recorder.Event{
				Type:    recorder.TypeSLOBreach,
				Time:    now,
				Actor:   "slo",
				Subject: o.name,
				Value:   o.fastBurn,
				Score:   a.cfg.BreachBurn,
				Episode: o.episode,
				Detail:  "fast-window burn over threshold",
			}
			if o.immediate {
				ev.Value = 1
				ev.Detail = "objective failing"
			}
			// The assigned seq is filled in after emission (below);
			// remember the index so recover events can cite it.
			events = append(events, ev)
		} else if !tripped && o.breached {
			o.breached = false
			events = append(events, recorder.Event{
				Type:    recorder.TypeSLORecover,
				Time:    now,
				Actor:   "slo",
				Subject: o.name,
				Value:   o.fastBurn,
				Score:   a.cfg.BreachBurn,
				Episode: o.episode,
				Cause:   o.breachSeq,
			})
			o.breachSeq = 0
			o.episode = 0
		}
	}

	// ---- health ----------------------------------------------------
	state, reasons := a.evalHealthLocked(episodeOpen)
	a.setHealthLocked(now, state, reasons)
	rec := a.cfg.Recorder
	a.mu.Unlock()

	// Emit outside the mutex (eventcheck), then bind breach seqs back so
	// the matching recover can cite its breach as Cause.
	if rec == nil {
		return
	}
	for i := range events {
		seq := rec.Emit(events[i])
		if events[i].Type == recorder.TypeSLOBreach {
			a.mu.Lock()
			if o, ok := a.byName[events[i].Subject]; ok && o.breached && o.breachSeq == 0 {
				o.breachSeq = seq
			}
			a.mu.Unlock()
		}
	}
}

// pendingRecoveryLocked computes, per UPS, the committed-but-not-yet-
// measured recovery: actions the controllers enforced after the UPS
// view's reading was taken, whose recovered watts the telemetry cannot
// reflect yet. Half of each action's recovery attributes to each UPS of
// the rack's pair (Eq. 2's split), matching applyRecovery in the
// planner. Deduped by rack across multi-primary controllers (actions
// are idempotent; counting a rack twice would overstate headroom).
func (a *Auditor) pendingRecoveryLocked() []power.Watts {
	b := a.b
	out := make([]power.Watts, len(b.Topo.UPSes))
	seen := make(map[string]bool)
	for _, c := range b.Controllers {
		actions, lastEnforce := c.CommittedActions()
		if lastEnforce.IsZero() {
			continue
		}
		for _, act := range actions {
			if seen[act.Rack] {
				continue
			}
			seen[act.Rack] = true
			pair, ok := a.rackPair[act.Rack]
			if !ok {
				continue
			}
			p := b.Topo.Pairs[pair]
			for _, uid := range p.UPSes {
				// Only credit the recovery while the view's reading
				// predates the enforcement; once a newer sample lands,
				// the measurement itself reflects the shed power.
				if _, at, ok := b.UPSView.Get(b.Topo.UPSes[uid].Name); ok && at.After(lastEnforce) {
					continue
				}
				out[uid] += act.Recovered / 2
			}
		}
	}
	return out
}

// Objective is the exported snapshot of one SLO for /slo.
type Objective struct {
	Name     string  `json:"name"`
	Target   float64 `json:"target"`
	Bad      bool    `json:"bad"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Breached bool    `json:"breached"`
	// BreachSeq is the flight-recorder seq of the open breach event.
	BreachSeq uint64 `json:"breach_seq,omitempty"`
	// Episode is the overdraw episode attributed to the open breach.
	Episode uint64 `json:"episode,omitempty"`
}

// Status is the exported /slo snapshot.
type Status struct {
	Objectives []Objective `json:"objectives"`
	// EpisodeOpen / EpisodeID / BudgetBurn describe the open overdraw
	// episode: BudgetBurn is the fraction of the 10s detect→act budget
	// consumed so far.
	EpisodeOpen bool    `json:"episode_open"`
	EpisodeID   uint64  `json:"episode_id,omitempty"`
	BudgetBurn  float64 `json:"budget_burn"`
	Probe       Probe   `json:"probe"`
	Health      Health  `json:"health"`
	Ticks       uint64  `json:"ticks"`
	// Stages is the critical-path latency breakdown against StageBudgets
	// (empty without Bindings.Stages), in timeline order.
	Stages []StageStatus `json:"stages,omitempty"`
}

// StageStatus is one critical-path stage's latency digest against its
// sub-budget, with the exemplar join of its slowest populated bucket.
type StageStatus struct {
	Name          string  `json:"name"`
	Count         uint64  `json:"count"`
	P50           float64 `json:"p50_seconds"`
	P99           float64 `json:"p99_seconds"`
	BudgetSeconds float64 `json:"budget_seconds"`
	OverBudget    bool    `json:"over_budget,omitempty"`
	// Episode / Event join the stage's slowest exemplar back to the
	// flight recorder (/events?episode=, /events?since=Event-1).
	Episode uint64 `json:"episode,omitempty"`
	Event   uint64 `json:"event,omitempty"`
}

// Probe is the exported what-if probe state.
type Probe struct {
	Rounds      uint64   `json:"rounds"`
	Failures    uint64   `json:"failures"`
	CleanRounds uint64   `json:"clean_rounds"`
	Infeasible  []string `json:"infeasible,omitempty"`
	// LastLatencySeconds is the wall (clock-injected) duration of the
	// last probe round across all UPSes.
	LastLatencySeconds float64 `json:"last_latency_seconds"`
}

// Status snapshots the auditor for /slo.
func (a *Auditor) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Status{
		BudgetBurn: a.budgetRatio,
		Probe: Probe{
			Rounds:             a.probeRounds,
			Failures:           a.probeFails,
			CleanRounds:        a.cleanRounds,
			Infeasible:         append([]string(nil), a.lastInfeas...),
			LastLatencySeconds: a.lastProbeDur.Seconds(),
		},
		Health: a.healthLocked(),
		Ticks:  a.ticks,
	}
	for _, o := range a.objectives {
		st.Objectives = append(st.Objectives, Objective{
			Name:      o.name,
			Target:    a.cfg.Target,
			Bad:       o.bad,
			FastBurn:  o.fastBurn,
			SlowBurn:  o.slowBurn,
			Breached:  o.breached,
			BreachSeq: o.breachSeq,
			Episode:   o.episode,
		})
	}
	sort.Slice(st.Objectives, func(i, j int) bool { return st.Objectives[i].Name < st.Objectives[j].Name })
	if a.bound && a.b.Stages != nil {
		budgets := StageBudgets()
		for _, stg := range obs.Stages() {
			h := a.b.Stages.Histogram(stg)
			sum := h.Summary()
			ss := StageStatus{
				Name:          stg.String(),
				Count:         sum.Count,
				P50:           sum.Quantile(0.50),
				P99:           sum.Quantile(0.99),
				BudgetSeconds: budgets[stg].Seconds(),
			}
			ss.OverBudget = sum.Count > 0 && ss.P99 > ss.BudgetSeconds
			if exs := h.Exemplars(); len(exs) > 0 {
				worst := exs[0]
				for _, e := range exs[1:] {
					if e.Value > worst.Value {
						worst = e
					}
				}
				ss.Episode, ss.Event = worst.Episode, worst.Seq
			}
			st.Stages = append(st.Stages, ss)
		}
	}
	if sb, ok := a.byName[ObjShedBudget]; ok {
		st.EpisodeOpen = sb.bad
		if sb.bad {
			st.EpisodeID = a.lastEpisode
		}
	}
	return st
}

// Run drives Tick on the configured cadence until ctx is done, pacing on
// the bound clock (bind before Run). With a virtual clock prefer calling
// Tick directly for determinism.
func (a *Auditor) Run(ctx context.Context) {
	a.mu.Lock()
	clk := a.b.Clock
	a.mu.Unlock()
	if clk == nil {
		clk = clock.Real{}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-clk.After(a.cfg.Interval):
			a.Tick(ctx, now)
		}
	}
}
