package slo

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// State is the /healthz verdict.
type State int

// Health states, ordered by severity.
const (
	// StateReady: every objective inside budget, last probe round clean.
	StateReady State = iota
	// StateDegraded: an objective is breached or an overdraw episode is
	// open — the room is reacting, still inside the safety envelope.
	StateDegraded
	// StateUnsafe: the invariant itself is at risk — an open episode has
	// consumed the full 10s budget, or the probe found a UPS whose
	// failure has no feasible shed plan.
	StateUnsafe
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateDegraded:
		return "degraded"
	case StateUnsafe:
		return "unsafe"
	default:
		return "unknown"
	}
}

// Worst returns the more severe of two states — the fold the fleet
// aggregator uses to lift per-shard verdicts into a fleet verdict.
func Worst(a, b State) State {
	if b > a {
		return b
	}
	return a
}

// MarshalJSON renders the state name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the state name, so watch clients can decode
// /healthz responses back into a State.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "ready":
		*s = StateReady
	case "degraded":
		*s = StateDegraded
	case "unsafe":
		*s = StateUnsafe
	default:
		return errors.New("slo: unknown health state " + strconv.Quote(name))
	}
	return nil
}

// Health is the exported /healthz snapshot.
type Health struct {
	State State `json:"state"`
	// Reasons explain any non-ready state, most severe first.
	Reasons []string `json:"reasons,omitempty"`
	// Since is when the current state was entered.
	Since time.Time `json:"since"`
}

// Transition is one recorded health-state change.
type Transition struct {
	Time    time.Time `json:"time"`
	From    State     `json:"from"`
	To      State     `json:"to"`
	Reasons []string  `json:"reasons,omitempty"`
}

// maxTransitions bounds the retained transition history.
const maxTransitions = 256

// evalHealthLocked derives the current state and reasons from the
// objective and probe state. Caller holds a.mu.
func (a *Auditor) evalHealthLocked(episodeOpen bool) (State, []string) {
	state := StateReady
	var reasons []string
	raise := func(s State, reason string) {
		if s > state {
			state = s
		}
		reasons = append(reasons, reason)
	}
	if a.budgetRatio >= 1 {
		raise(StateUnsafe, "open overdraw episode has exhausted the 10s shed budget")
	}
	if len(a.lastInfeas) > 0 {
		msg := "what-if probe found no feasible shed plan for "
		for i, n := range a.lastInfeas {
			if i > 0 {
				msg += ", "
			}
			msg += n
		}
		raise(StateUnsafe, msg)
	}
	if episodeOpen && a.budgetRatio < 1 {
		raise(StateDegraded, "overdraw episode open (budget burn "+pct(a.budgetRatio)+")")
	}
	for _, o := range a.objectives {
		if o.breached {
			raise(StateDegraded, "objective "+o.name+" breached (fast burn "+pct(o.fastBurn)+")")
		}
	}
	return state, reasons
}

func pct(v float64) string {
	// One decimal, no fmt on this path for symmetry with formatWatts.
	i := int64(v*1000 + 0.5)
	whole, frac := i/10, i%10
	if frac < 0 {
		frac = -frac
	}
	return itoa(whole) + "." + itoa(frac) + "%"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// setHealthLocked installs the state, recording a transition when it
// changed. Caller holds a.mu.
func (a *Auditor) setHealthLocked(now time.Time, s State, reasons []string) {
	if s == a.health {
		a.reasons = reasons
		return
	}
	a.transitions = append(a.transitions, Transition{
		Time:    now,
		From:    a.health,
		To:      s,
		Reasons: reasons,
	})
	if len(a.transitions) > maxTransitions {
		a.transitions = a.transitions[len(a.transitions)-maxTransitions:]
	}
	a.health = s
	a.healthSince = now
	a.reasons = reasons
}

func (a *Auditor) healthLocked() Health {
	return Health{
		State:   a.health,
		Reasons: append([]string(nil), a.reasons...),
		Since:   a.healthSince,
	}
}

// Health snapshots the current /healthz verdict.
func (a *Auditor) Health() Health {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.healthLocked()
}

// Transitions returns the retained health-state transition history in
// order. The slo-smoke gate asserts the healthy→degraded→healthy flip of
// a UPS-failure episode on this.
func (a *Auditor) Transitions() []Transition {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Transition(nil), a.transitions...)
}

// SLOHandler serves the /slo JSON snapshot.
func (a *Auditor) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Status())
	})
}

// HealthHandler serves /healthz: 200 for ready and degraded (the room is
// still inside the safety envelope — load balancers must not eject a
// room for reacting to a failure), 503 for unsafe, with the JSON verdict
// either way. ?transitions=1 appends the transition history.
func (a *Auditor) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		h := a.Health()
		if h.State == StateUnsafe {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if r.URL.Query().Get("transitions") != "" {
			_ = json.NewEncoder(w).Encode(struct {
				Health
				Transitions []Transition `json:"transitions"`
			}{h, a.Transitions()})
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
}
