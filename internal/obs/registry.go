// Package obs is the observability layer for the Flex control software
// itself: metrics about the detect→plan→act pipeline, the telemetry
// fan-in, the actuation path, and the offline solvers — as opposed to
// internal/telemetry, which models the datacenter's power meters.
//
// The package is stdlib-only and dependency-injected: components receive a
// *Registry (and optionally a *Tracer) at construction and update
// pre-bound metrics on their hot paths with zero per-observation
// allocations. Time never comes from the wall clock here — spans record
// caller-supplied timestamps from the injected clock.Clock, so virtual-
// clock tests can assert exact latencies and clockcheck stays clean.
//
// Metrics export as Prometheus text format (WritePrometheus, served at
// /metrics by Handler) and as expvar-style JSON (/debug/vars).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the metric type.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer (Prometheus TYPE names).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
// The zero value is usable, but counters are normally created through a
// Registry so they export.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//flex:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//flex:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//flex:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, via compare-and-swap).
//
//flex:hotpath
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are chosen at
// construction; Observe performs a linear scan over them and two atomic
// updates — no allocation, no locking. Concurrent Observe calls are safe;
// a concurrent export may see sum and counts from slightly different
// instants, which is the standard Prometheus trade-off.
type Histogram struct {
	upper   []float64       // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64 // len(upper)+1; last bucket is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds one last-write-wins exemplar slot per bucket,
	// pre-allocated at construction so ObserveExemplar stays
	// allocation-free on the hot path.
	exemplars []exemplarSlot
}

// Exemplar joins one histogram observation back to its flight-recorder
// context: the episode it belonged to, the span trace that timed it, and
// the recorder sequence of the event that rooted it. All fields are
// fixed-size, so attaching an exemplar allocates nothing. A slow bucket
// is then one click from its event chain: /events?episode=<Episode> or
// /traces?episode=<Episode> resolves it.
type Exemplar struct {
	// Value is the observed value the exemplar annotates (seconds for
	// latency histograms).
	Value float64
	// Episode is the flight-recorder episode id (0 when unrecorded).
	Episode uint64
	// Trace is the span-tracer sequence of the trace that measured the
	// observation (0 when untraced).
	Trace uint64
	// Seq is the recorder sequence of the rooting event — for stage
	// latencies, the detect event (0 when unrecorded).
	Seq uint64
	// At is the caller-supplied observation time (injected clock).
	At time.Time
}

// exemplarSlot is one per-bucket last-write-wins exemplar cell.
type exemplarSlot struct {
	mu  sync.Mutex
	set bool
	ex  Exemplar
}

// Observe records v.
//
//flex:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds (the Prometheus base unit).
//
//flex:hotpath
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records v and attaches ex to v's bucket (last write
// wins per bucket). ex.Value is overwritten with v so the exemplar
// always describes the observation it rode in on. The slot is
// pre-allocated and fixed-size, so the call allocates nothing — it sits
// on the controller step hot path.
//
//flex:hotpath
func (h *Histogram) ObserveExemplar(v float64, ex Exemplar) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	ex.Value = v
	slot := &h.exemplars[i]
	slot.mu.Lock()
	slot.ex = ex
	slot.set = true
	slot.mu.Unlock()
}

// Exemplars returns the currently held exemplars in bucket order (cold
// path; export and debugging).
func (h *Histogram) Exemplars() []Exemplar {
	var out []Exemplar
	for i := range h.exemplars {
		slot := &h.exemplars[i]
		slot.mu.Lock()
		if slot.set {
			out = append(out, slot.ex)
		}
		slot.mu.Unlock()
	}
	return out
}

// Summary returns a point-in-time histogram Snapshot (Count, Sum,
// Buckets) without going through a Registry — the quantile math on
// Snapshot then applies to any live histogram handle.
func (h *Histogram) Summary() Snapshot {
	return Snapshot{Kind: KindHistogram, Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each (the
// +Inf bucket is the final entry with math.Inf(1)).
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.upper)+1)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.upper) {
			le = h.upper[i]
		}
		out[i] = Bucket{Le: le, Count: cum}
	}
	return out
}

// Bucket is one cumulative histogram bucket: observations <= Le.
type Bucket struct {
	Le    float64
	Count uint64
}

// LatencyBuckets returns histogram bounds (seconds) sized for the
// Flex-Online latency budget: sub-second resolution below the controller
// interval, and an exact boundary at the 10-second UPS overload tolerance
// so "inside the budget" is answerable from bucket counts alone.
func LatencyBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 3, 5, 7.5, 10, 15, 30, 60}
}

// metric is one registered entry.
type metric struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names for vecs; nil for plain metrics

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	buckets []float64 // histogram construction bounds (for get-or-create checks)

	mu       sync.Mutex
	children []*child // vec children in registration order
	byKey    map[string]*child
}

// child is one pre-bound labelled metric of a vec.
type child struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds metrics for export. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use, but metric
// creation is intended for wiring time — hot paths hold only the returned
// *Counter/*Gauge/*Histogram.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register is the common get-or-create path. Registering the same name
// twice with the same kind and labels returns the existing metric
// (idempotent wiring); a mismatch panics — that is a programming error,
// like prometheus.MustRegister.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *metric {
	if !ValidMetricName(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !ValidLabelName(l) {
			panic("obs: invalid label name " + l + " on metric " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind || !equalStrings(m.labels, labels) || !equalFloats(m.buckets, buckets) {
			panic("obs: metric " + name + " re-registered with a different shape")
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels, buckets: buckets}
	if len(labels) == 0 {
		switch kind {
		case KindCounter:
			m.counter = &Counter{}
		case KindGauge:
			m.gauge = &Gauge{}
		case KindHistogram:
			m.hist = newHistogram(buckets)
		}
	} else {
		m.byKey = make(map[string]*child)
	}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets()
	}
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{
		upper:     upper,
		counts:    make([]atomic.Uint64, len(upper)+1),
		exemplars: make([]exemplarSlot, len(upper)+1),
	}
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).counter
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).gauge
}

// Histogram registers (or returns) a histogram with the given bucket
// upper bounds (nil selects LatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, buckets).hist
}

// CounterVec is a counter family with labels. Children are pre-bound with
// With at wiring time; the returned *Counter is then allocation-free on
// the hot path.
type CounterVec struct{ m *metric }

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec " + name + " needs at least one label")
	}
	return &CounterVec{m: r.register(name, help, KindCounter, labels, nil)}
}

// With returns the child counter for the given label values, creating it
// on first use. Call at wiring time, not per observation.
func (v *CounterVec) With(values ...string) *Counter {
	return v.m.child(values).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ m *metric }

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec " + name + " needs at least one label")
	}
	return &GaugeVec{m: r.register(name, help, KindGauge, labels, nil)}
}

// With returns the child gauge for the given label values, creating it on
// first use. Call at wiring time, not per observation.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.m.child(values).gauge
}

// HistogramVec is a histogram family with labels. Children share the
// family's bucket bounds and are pre-bound with With at wiring time; the
// returned *Histogram is then allocation-free on the hot path.
type HistogramVec struct{ m *metric }

// HistogramVec registers (or returns) a labelled histogram family with
// the given bucket upper bounds (nil selects LatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec " + name + " needs at least one label")
	}
	return &HistogramVec{m: r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the child histogram for the given label values, creating
// it on first use. Call at wiring time, not per observation.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.m.child(values).hist
}

// child returns the pre-bound child for values, creating it if needed.
func (m *metric) child(values []string) *child {
	if len(values) != len(m.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", m.name, len(m.labels), len(values)))
	}
	key := labelKey(values)
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.byKey[key]; ok {
		return c
	}
	c := &child{values: append([]string(nil), values...)}
	switch m.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(m.buckets)
	}
	m.children = append(m.children, c)
	m.byKey[key] = c
	return c
}

// labelKey joins label values unambiguously (values may contain commas).
func labelKey(values []string) string {
	key := ""
	for _, v := range values {
		key += fmt.Sprintf("%d:%s,", len(v), v)
	}
	return key
}

// Snapshot is a point-in-time copy of one metric (or one vec child) for
// reporting.
type Snapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	// Value is the counter count or gauge value.
	Value float64
	// Count, Sum, Buckets are set for histograms.
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// Quantile estimates the q-quantile (0..1) of a histogram snapshot by
// linear interpolation within its buckets; the open-ended +Inf bucket
// reports its lower bound. Returns 0 for empty histograms.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Kind != KindHistogram || s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	lower, lowerCount := 0.0, uint64(0)
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.Le, 1) {
				return lower
			}
			span := float64(b.Count - lowerCount)
			width := b.Le - lower
			if span <= 0 || width <= 0 {
				// Empty or zero-width interval (duplicate bounds, or a
				// first bucket below the 0 origin): interpolating would
				// divide by zero or extrapolate outside the bucket, so
				// report its upper bound — the tightest honest answer.
				return b.Le
			}
			frac := (rank - float64(lowerCount)) / span
			if frac < 0 {
				frac = 0
			}
			return lower + frac*width
		}
		lower, lowerCount = b.Le, b.Count
	}
	return lower
}

// Snapshots copies every metric (vec children expanded) in registration
// order, children in creation order.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	var out []Snapshot
	for _, m := range metrics {
		if len(m.labels) == 0 {
			out = append(out, m.snapshotOne(nil, m.counter, m.gauge, m.hist))
			continue
		}
		m.mu.Lock()
		children := append([]*child(nil), m.children...)
		m.mu.Unlock()
		for _, c := range children {
			out = append(out, m.snapshotOne(c.values, c.counter, c.gauge, c.hist))
		}
	}
	return out
}

func (m *metric) snapshotOne(values []string, c *Counter, g *Gauge, h *Histogram) Snapshot {
	s := Snapshot{Name: m.name, Help: m.help, Kind: m.kind}
	for i, v := range values {
		s.Labels = append(s.Labels, Label{Name: m.labels[i], Value: v})
	}
	switch m.kind {
	case KindCounter:
		s.Value = float64(c.Value())
	case KindGauge:
		s.Value = g.Value()
	case KindHistogram:
		s.Count = h.Count()
		s.Sum = h.Sum()
		s.Buckets = h.Buckets()
	}
	return s
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}
