package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flex_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("flex_test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Get-or-create: same name and kind returns the same instance.
	if r.Counter("flex_test_total", "a counter") != c {
		t.Fatal("re-registering a counter returned a different instance")
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("flex_test_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("flex_test_total", "")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid name")
		}
	}()
	r.Counter("flex test total", "")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flex_test_latency_seconds", "", []float64{1, 2, 5, 10})
	for _, v := range []float64{0.5, 1.5, 1.7, 4, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-116.7) > 1e-9 {
		t.Fatalf("sum = %v, want 116.7", h.Sum())
	}
	b := h.Buckets()
	wantCum := []uint64{1, 3, 4, 5, 6}
	for i, want := range wantCum {
		if b[i].Count != want {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b[i].Le, b[i].Count, want)
		}
	}
	if !math.IsInf(b[len(b)-1].Le, 1) {
		t.Fatalf("final bucket le = %v, want +Inf", b[len(b)-1].Le)
	}
	snap := r.Snapshots()[0]
	// p50 of 6 observations: rank 3 lands at the le=2 boundary.
	if got := snap.Quantile(0.5); got < 1 || got > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", got)
	}
	// Everything at or under 10 except the 100: p-five-sixths ≈ bucket 10.
	if got := snap.Quantile(1.0); got < 10 {
		t.Fatalf("p100 = %v, want >= 10 (lower bound of +Inf bucket)", got)
	}
}

// TestQuantileDegenerateBuckets is the regression test for interpolation
// over degenerate layouts: zero-width buckets (duplicate bounds) and
// first buckets below the 0 interpolation origin must report the
// bucket's upper bound, never NaN or an extrapolated value outside it.
func TestQuantileDegenerateBuckets(t *testing.T) {
	// All mass in a zero-width bucket.
	snap := Snapshot{
		Kind:  KindHistogram,
		Count: 4,
		Buckets: []Bucket{
			{Le: 1, Count: 0},
			{Le: 1, Count: 4},
			{Le: math.Inf(1), Count: 4},
		},
	}
	for _, q := range []float64{0, 0.5, 0.99} {
		got := snap.Quantile(q)
		if math.IsNaN(got) || got != 1 {
			t.Fatalf("q=%v over zero-width bucket = %v, want 1", q, got)
		}
	}

	// First bucket bound below 0: interpolating against the 0.0 initial
	// lower bound would walk upward out of the bucket.
	snap = Snapshot{
		Kind:  KindHistogram,
		Count: 2,
		Buckets: []Bucket{
			{Le: -5, Count: 2},
			{Le: math.Inf(1), Count: 2},
		},
	}
	if got := snap.Quantile(0.5); math.IsNaN(got) || got != -5 {
		t.Fatalf("q=0.5 over negative first bucket = %v, want -5", got)
	}
}

func TestVecChildrenAreBoundOnce(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("flex_test_actions_total", "by kind", "kind")
	a := v.With("shutdown")
	b := v.With("throttle")
	if v.With("shutdown") != a {
		t.Fatal("With returned a new child for the same label values")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Labels[0] != (Label{Name: "kind", Value: "shutdown"}) || snaps[0].Value != 2 {
		t.Fatalf("unexpected first child snapshot: %+v", snaps[0])
	}
	g := r.GaugeVec("flex_test_ups_watts_by_name", "by ups", "ups")
	g.With("UPS-1").Set(1.2e6)
	if got := g.With("UPS-1").Value(); math.Abs(got-1.2e6) > 1 {
		t.Fatalf("gauge child = %v", got)
	}
}

// TestHotPathZeroAllocations is the ISSUE acceptance check: every metric
// update a controller step performs must allocate nothing.
func TestHotPathZeroAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flex_test_total", "")
	g := r.Gauge("flex_test_gauge", "")
	h := r.Histogram("flex_test_hist", "", LatencyBuckets())
	child := r.CounterVec("flex_test_vec_total", "", "kind").With("shutdown")
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(2.5) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(3 * time.Second) }},
		{"CounterVec child Inc", func() { child.Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run, want 0", tc.name, allocs)
		}
	}
}

func TestWritePrometheusIsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("flex_steps_total", "controller steps").Add(7)
	r.Gauge("flex_budget_seconds", "latency budget").Set(10)
	h := r.Histogram("flex_shed_latency_seconds", "detect to enforce", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(3)
	v := r.CounterVec("flex_actions_total", "by kind", "kind")
	v.With("shutdown").Inc()
	v.With("throttle").Add(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE flex_steps_total counter",
		"flex_steps_total 7",
		"flex_budget_seconds 10",
		`flex_actions_total{kind="shutdown"} 1`,
		`flex_shed_latency_seconds_bucket{le="+Inf"} 2`,
		"flex_shed_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("output does not parse as Prometheus text format: %v\n%s", err, out)
	}
}

func TestValidatePrometheusRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad name":        "9metric 1\n",
		"no value":        "metric\n",
		"bad value":       "metric abc\n",
		"bad comment":     "# NOPE metric counter\n",
		"unknown type":    "# TYPE metric zigzag\n",
		"no inf bucket":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"unquoted labels": "m{k=v} 1\n",
		"empty":           "",
	}
	for name, in := range cases {
		if err := ValidatePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		}
	}
}
