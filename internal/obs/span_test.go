package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"flex/internal/clock"
)

// TestTracerVirtualClockExactLatencies drives spans from a virtual clock
// and asserts the recorded durations are exact — the property clockcheck
// protects: obs never reads wall time itself.
func TestTracerVirtualClockExactLatencies(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := NewTracer(8)

	start := clk.Now()
	trace := tr.Start("controller/step", start)
	clk.Advance(150 * time.Millisecond)
	detectEnd := clk.Now()
	trace.Span("detect", start, detectEnd)
	clk.Advance(40 * time.Millisecond)
	planEnd := clk.Now()
	trace.Span("plan", detectEnd, planEnd)
	clk.Advance(2 * time.Second)
	actEnd := clk.Now()
	trace.Span("act", planEnd, actEnd)
	trace.SetNote("enforced=3")
	trace.Finish(actEnd)

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("got %d traces, want 1", len(recent))
	}
	got := recent[0]
	if got.Duration() != 2190*time.Millisecond {
		t.Fatalf("trace duration = %v, want 2.19s", got.Duration())
	}
	wantSpans := map[string]time.Duration{
		"detect": 150 * time.Millisecond,
		"plan":   40 * time.Millisecond,
		"act":    2 * time.Second,
	}
	for _, s := range got.Spans {
		if want := wantSpans[s.Name]; s.Duration() != want {
			t.Errorf("span %s duration = %v, want %v", s.Name, s.Duration(), want)
		}
	}
	if got.Note != "enforced=3" {
		t.Errorf("note = %q", got.Note)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		trace := tr.Start("step", clk.Now())
		clk.Advance(time.Second)
		trace.Finish(clk.Now())
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	// Newest first: seq 5, 4, 3.
	for i, wantSeq := range []uint64{5, 4, 3} {
		if recent[i].Seq != wantSeq {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, recent[i].Seq, wantSeq)
		}
	}
	if got := tr.Started(); got != 5 {
		t.Fatalf("Started = %d, want 5", got)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(100, 0))
	tr := NewTracer(4)
	trace := tr.Start("controller/step", clk.Now())
	stageStart := clk.Now()
	clk.Advance(500 * time.Millisecond)
	trace.Span("detect", stageStart, clk.Now())
	trace.Finish(clk.Now())

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Name            string  `json:"name"`
		DurationSeconds float64 `json:"duration_seconds"`
		Spans           []struct {
			Name            string  `json:"name"`
			DurationSeconds float64 `json:"duration_seconds"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 || decoded[0].Name != "controller/step" {
		t.Fatalf("unexpected traces: %+v", decoded)
	}
	if len(decoded[0].Spans) != 1 || decoded[0].Spans[0].DurationSeconds != 0.5 {
		t.Fatalf("unexpected spans: %+v", decoded[0].Spans)
	}
}
