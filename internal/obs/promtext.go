package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshots()
	sort.SliceStable(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, s := range snaps {
		if s.Name != lastName {
			if s.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
			lastName = s.Name
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", s.Name, formatLabels(s.Labels), formatValue(s.Value))
		case KindHistogram:
			for _, b := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(b.Le, 1) {
					le = formatValue(b.Le)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", s.Name,
					formatLabels(append(append([]Label(nil), s.Labels...), Label{Name: "le", Value: le})), b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", s.Name, formatLabels(s.Labels), formatValue(s.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", s.Name, formatLabels(s.Labels), s.Count)
		}
	}
	return bw.Flush()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// ValidMetricName reports whether name matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ValidLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func ValidLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ValidatePrometheus parses r as Prometheus text exposition format and
// returns an error describing the first violation: malformed comment,
// unknown TYPE, invalid metric/label name, unparsable value, a sample for
// a TYPE-declared histogram missing its +Inf bucket, or a non-cumulative
// bucket sequence. Tests use it to assert that /metrics output is
// scrape-able without pulling in a Prometheus dependency.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	types := map[string]string{}
	type histState struct {
		sawInf  bool
		lastCum uint64
		lastLe  float64
	}
	hists := map[string]*histState{}
	sawSample := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !ValidMetricName(fields[2]) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE missing type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
				if fields[3] == "histogram" {
					hists[fields[2]] = &histState{lastLe: math.Inf(-1)}
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		sawSample = true
		base, isBucket := strings.CutSuffix(name, "_bucket")
		if hs, ok := hists[base]; ok && isBucket {
			leStr, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, name)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %v", lineNo, leStr, err)
				}
			} else {
				hs.sawInf = true
			}
			cum := uint64(value)
			if le < hs.lastLe {
				// A new series (different labels) restarts the sequence.
				hs.lastCum = 0
			}
			if cum < hs.lastCum {
				return fmt.Errorf("line %d: non-cumulative histogram bucket %s le=%s", lineNo, base, leStr)
			}
			hs.lastCum, hs.lastLe = cum, le
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, hs := range hists {
		if !hs.sawInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", name)
		}
	}
	if !sawSample {
		return fmt.Errorf("no samples found")
	}
	return nil
}

// parseSample parses `name{l1="v1",...} value [timestamp]`.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !ValidLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if len(rest) == 0 {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				if c == '\\' && len(rest) >= 2 {
					switch rest[1] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[1])
					}
					rest = rest[2:]
					continue
				}
				rest = rest[1:]
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			labels[lname] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
		}
	} else {
		if space < 0 {
			return "", nil, 0, fmt.Errorf("sample without value in %q", line)
		}
		name = rest[:space]
		rest = rest[space:]
	}
	if !ValidMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp] in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q: %v", fields[1], err)
		}
	}
	return name, labels, value, nil
}
