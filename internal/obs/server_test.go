package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/obs/recorder"
)

func testHandler(t *testing.T) http.Handler {
	t.Helper()
	r := NewRegistry()
	r.Counter("flex_test_steps_total", "steps").Add(3)
	h := r.Histogram("flex_test_shed_latency_seconds", "latency", []float64{1, 10})
	h.Observe(2)
	clk := clock.NewVirtual(time.Unix(0, 0))
	tr := NewTracer(4)
	trace := tr.Start("step", clk.Now())
	clk.Advance(time.Second)
	trace.Finish(clk.Now())
	return NewHandler(ServerConfig{Registry: r, Tracer: tr})
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "flex_test_steps_total 3") {
		t.Fatalf("missing counter:\n%s", body)
	}
	if err := ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
}

func TestHandlerDebugVars(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var vars map[string]interface{}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"cmdline", "memstats", "flex_test_steps_total"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("missing %q in /debug/vars", key)
		}
	}
}

func TestHandlerTraces(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/traces")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var traces []map[string]interface{}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0]["name"] != "step" {
		t.Fatalf("unexpected traces: %v", traces)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d, body %.80q", code, body)
	}
}

func TestHandlerNotFound(t *testing.T) {
	h := testHandler(t)
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
}

// filterHandler builds a handler whose recorder holds five events (1s
// apart, starting at unix 1000) and whose tracer holds three traces, one
// tagged with episode 7 — the fixture for the /events and /traces filter
// tests.
func filterHandler(t *testing.T) http.Handler {
	t.Helper()
	rec := recorder.New(16)
	base := time.Unix(1000, 0).UTC()
	types := []recorder.Type{
		recorder.TypeUPSFail,
		recorder.TypeOverdrawDetect,
		recorder.TypePlanStart,
		recorder.TypePlanCommit,
		recorder.TypeEpisodeClose,
	}
	for i, typ := range types {
		rec.Emit(recorder.Event{
			Time:    base.Add(time.Duration(i) * time.Second),
			Type:    typ,
			Actor:   "ctl-1",
			Subject: "ups-1",
		})
	}
	clk := clock.NewVirtual(base)
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		trace := tr.Start("plan", clk.Now())
		if i == 1 {
			trace.SetEpisode(7)
		}
		clk.Advance(time.Second)
		trace.Finish(clk.Now())
	}
	return NewHandler(ServerConfig{Registry: NewRegistry(), Tracer: tr, Events: rec})
}

// getTraces decodes a /traces response into generic maps (the trace JSON
// shape is asserted field-by-field where it matters).
func getTraces(t *testing.T, h http.Handler, path string) []map[string]interface{} {
	t.Helper()
	code, body := get(t, h, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, code, body)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, body)
	}
	return out
}

func TestHandlerEventsSince(t *testing.T) {
	h := filterHandler(t)
	// since=3 is the incremental-poll idiom: strictly after seq 3.
	events := getEvents(t, h, "/events?since=3")
	if len(events) != 2 {
		t.Fatalf("since=3 returned %d events, want 2: %v", len(events), events)
	}
	if events[0].Seq != 4 {
		t.Errorf("first event seq = %d, want 4", events[0].Seq)
	}
	// since=5 (the latest seq) must return the empty tail.
	if events := getEvents(t, h, "/events?since=5"); len(events) != 0 {
		t.Errorf("since=<latest> returned %d events, want 0", len(events))
	}
}

func TestHandlerEventsFromTo(t *testing.T) {
	h := filterHandler(t)
	// Events sit at unix 1000..1004; from=1002 keeps the last three, and
	// stacking to=1003 narrows to two. Both unix-seconds and RFC3339 forms
	// must parse.
	if events := getEvents(t, h, "/events?from=1002"); len(events) != 3 {
		t.Fatalf("from=1002 returned %d events, want 3: %v", len(events), events)
	}
	events := getEvents(t, h, "/events?from=1002&to=1003")
	if len(events) != 2 {
		t.Fatalf("from&to returned %d events, want 2: %v", len(events), events)
	}
	rfc := time.Unix(1002, 0).UTC().Format(time.RFC3339)
	if events := getEvents(t, h, "/events?from="+url.QueryEscape(rfc)); len(events) != 3 {
		t.Fatalf("RFC3339 from returned %d events, want 3", len(events))
	}
	if code, _ := get(t, h, "/events?from=not-a-time"); code != http.StatusBadRequest {
		t.Errorf("bad from parameter: status %d, want 400", code)
	}
}

func TestHandlerTracesFilters(t *testing.T) {
	h := filterHandler(t)
	if traces := getTraces(t, h, "/traces"); len(traces) != 3 {
		t.Fatalf("unfiltered /traces returned %d, want 3", len(traces))
	}
	// since=<seq> — strictly after.
	traces := getTraces(t, h, "/traces?since=1")
	if len(traces) != 2 {
		t.Fatalf("since=1 returned %d traces, want 2: %v", len(traces), traces)
	}
	// from=<time> — traces start at unix 1000, 1001, 1002.
	if traces := getTraces(t, h, "/traces?from=1001"); len(traces) != 2 {
		t.Fatalf("from=1001 returned %d traces, want 2", len(traces))
	}
	// episode filter keeps only the tagged trace.
	traces = getTraces(t, h, "/traces?episode=7")
	if len(traces) != 1 || traces[0]["episode"].(float64) != 7 {
		t.Fatalf("episode=7 returned %v", traces)
	}
	if traces := getTraces(t, h, "/traces?limit=1"); len(traces) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(traces))
	}
	if code, _ := get(t, h, "/traces?since=x"); code != http.StatusBadRequest {
		t.Errorf("bad since parameter: status %d, want 400", code)
	}
}

// TestHandlerOptionalMounts checks that /query, /slo and /healthz are 404
// until wired, and routed verbatim once wired.
func TestHandlerOptionalMounts(t *testing.T) {
	bare := testHandler(t)
	for _, path := range []string{"/query", "/slo", "/healthz"} {
		if code, _ := get(t, bare, path); code != http.StatusNotFound {
			t.Errorf("unwired %s: status %d, want 404", path, code)
		}
	}
	stub := func(name string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte(name))
		})
	}
	wired := NewHandler(ServerConfig{
		Registry: NewRegistry(),
		Query:    stub("query"),
		SLO:      stub("slo"),
		Health:   stub("health"),
	})
	for path, want := range map[string]string{"/query": "query", "/slo": "slo", "/healthz": "health"} {
		code, body := get(t, wired, path)
		if code != http.StatusOK || body != want {
			t.Errorf("%s: status %d body %q, want 200 %q", path, code, body, want)
		}
	}
	// The index advertises the wired endpoints.
	_, index := get(t, wired, "/")
	for _, want := range []string{"/query", "/slo", "/healthz"} {
		if !strings.Contains(index, want) {
			t.Errorf("index missing %s:\n%s", want, index)
		}
	}
}
