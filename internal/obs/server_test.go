package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flex/internal/clock"
)

func testHandler(t *testing.T) http.Handler {
	t.Helper()
	r := NewRegistry()
	r.Counter("flex_test_steps_total", "steps").Add(3)
	h := r.Histogram("flex_test_shed_latency_seconds", "latency", []float64{1, 10})
	h.Observe(2)
	clk := clock.NewVirtual(time.Unix(0, 0))
	tr := NewTracer(4)
	trace := tr.Start("step", clk.Now())
	clk.Advance(time.Second)
	trace.Finish(clk.Now())
	return NewHandler(ServerConfig{Registry: r, Tracer: tr})
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "flex_test_steps_total 3") {
		t.Fatalf("missing counter:\n%s", body)
	}
	if err := ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
}

func TestHandlerDebugVars(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var vars map[string]interface{}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"cmdline", "memstats", "flex_test_steps_total"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("missing %q in /debug/vars", key)
		}
	}
}

func TestHandlerTraces(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/traces")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var traces []map[string]interface{}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0]["name"] != "step" {
		t.Fatalf("unexpected traces: %v", traces)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d, body %.80q", code, body)
	}
}

func TestHandlerNotFound(t *testing.T) {
	h := testHandler(t)
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
}
