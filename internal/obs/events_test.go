package obs

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"flex/internal/obs/recorder"
)

// eventsHandler builds a handler over a recorder holding one recorded
// episode: sample-arrive (episode 0) → detect → plan → planned action →
// dispatch → ack, all chained by Cause, plus an unrelated stray event.
func eventsHandler() (http.Handler, *recorder.Recorder) {
	rec := recorder.New(0)
	t0 := time.Unix(0, 0).UTC()
	arrive := rec.Emit(recorder.Event{Type: recorder.TypeSampleArrive, Time: t0, Actor: "ups-view", Subject: "ups-2", Value: 107e3})
	ep := rec.NextEpisode()
	detect := rec.Emit(recorder.Event{Type: recorder.TypeOverdrawDetect, Time: t0, Actor: "ctl-1", Subject: "ups-2", Value: 107e3, Cause: arrive, Episode: ep})
	plan := rec.Emit(recorder.Event{Type: recorder.TypePlanStart, Time: t0, Actor: "ctl-1", Cause: detect, Episode: ep})
	planned := rec.Emit(recorder.Event{Type: recorder.TypeActionPlanned, Time: t0, Actor: "ctl-1", Subject: "rack-9", Cause: plan, Episode: ep})
	rec.Emit(recorder.Event{Type: recorder.TypePlanCommit, Time: t0, Actor: "ctl-1", Cause: plan, Episode: ep, Aux: 1})
	dispatch := rec.Emit(recorder.Event{Type: recorder.TypeActionDispatch, Time: t0, Actor: "ctl-1", Subject: "rack-9", Detail: "shutdown", Cause: planned, Episode: ep})
	rec.Emit(recorder.Event{Type: recorder.TypeActionAck, Time: t0, Actor: "ctl-1", Subject: "rack-9", Detail: "shutdown", Cause: dispatch, Episode: ep, Aux: 1})
	rec.Emit(recorder.Event{Type: recorder.TypeSampleArrive, Time: t0, Actor: "rack-view", Subject: "rack-1", Value: 5e3})
	return NewHandler(ServerConfig{Registry: NewRegistry(), Events: rec}), rec
}

func getEvents(t *testing.T, h http.Handler, path string) []recorder.Event {
	t.Helper()
	code, body := get(t, h, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, code, body)
	}
	var events []recorder.Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, body)
	}
	return events
}

func TestHandlerEventsAll(t *testing.T) {
	h, _ := eventsHandler()
	events := getEvents(t, h, "/events")
	if len(events) != 8 {
		t.Fatalf("got %d events, want 8", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events not seq-ordered at %d", i)
		}
	}
}

// TestHandlerEventsEpisodeChain is the acceptance check for the query
// surface: /events?episode=N returns the full causal chain from the
// triggering sample to the final action ack, even though the sample
// itself carries no episode tag.
func TestHandlerEventsEpisodeChain(t *testing.T) {
	h, _ := eventsHandler()
	events := getEvents(t, h, "/events?episode=1")
	want := []recorder.Type{
		recorder.TypeSampleArrive,
		recorder.TypeOverdrawDetect,
		recorder.TypePlanStart,
		recorder.TypeActionPlanned,
		recorder.TypePlanCommit,
		recorder.TypeActionDispatch,
		recorder.TypeActionAck,
	}
	if len(events) != len(want) {
		t.Fatalf("chain has %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, e := range events {
		if e.Type != want[i] {
			t.Fatalf("chain[%d] = %v, want %v", i, e.Type, want[i])
		}
	}
	if events[0].Subject != "ups-2" {
		t.Fatalf("chain root subject %q, want the triggering UPS sample", events[0].Subject)
	}

	// Opting out of the closure drops the untagged triggering sample.
	if got := getEvents(t, h, "/events?episode=1&causes=0"); len(got) != len(want)-1 {
		t.Fatalf("causes=0 returned %d events, want %d", len(got), len(want)-1)
	}
}

func TestHandlerEventsFilters(t *testing.T) {
	h, _ := eventsHandler()
	if got := getEvents(t, h, "/events?type=sample-arrive"); len(got) != 2 {
		t.Fatalf("type filter: %d events, want 2", len(got))
	}
	if got := getEvents(t, h, "/events?subject=rack-9"); len(got) != 3 {
		t.Fatalf("subject filter: %d events, want 3", len(got))
	}
	if got := getEvents(t, h, "/events?actor=ups-view"); len(got) != 1 {
		t.Fatalf("actor filter: %d events, want 1", len(got))
	}
	if got := getEvents(t, h, "/events?min_seq=3&max_seq=5"); len(got) != 3 {
		t.Fatalf("seq range: %d events, want 3", len(got))
	}
	if got := getEvents(t, h, "/events?limit=2"); len(got) != 2 || got[1].Seq != 8 {
		t.Fatalf("limit keeps newest: %+v", got)
	}
}

func TestHandlerEventsBadParams(t *testing.T) {
	h, _ := eventsHandler()
	for _, path := range []string{
		"/events?episode=x",
		"/events?type=nope",
		"/events?causes=maybe",
		"/events?limit=-1",
		"/events?min_seq=1.5",
	} {
		if code, _ := get(t, h, path); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, code)
		}
	}
}

func TestHandlerEventsAbsent(t *testing.T) {
	h := NewHandler(ServerConfig{Registry: NewRegistry()})
	code, body := get(t, h, "/events")
	if code != http.StatusOK || body != "[]\n" {
		t.Fatalf("no-recorder /events: %d %q", code, body)
	}
}
