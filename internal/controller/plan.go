// Package controller implements Flex-Online (paper §IV-D): highly
// available controllers that watch the UPS power telemetry for overdraw
// and, when it appears, select and enforce the minimum-impact set of
// corrective actions — shutting down software-redundant racks and
// throttling non-redundant cap-able racks to their flex power — to bring
// every UPS back below its rated capacity within the overload tolerance
// window. The selection policy is the paper's Algorithm 1, driven by
// per-workload impact functions.
package controller

import (
	"context"
	"fmt"
	"sort"

	"flex/internal/impact"
	"flex/internal/power"
	"flex/internal/workload"
)

// ActionKind is the corrective action type (Algorithm 1 line 8).
type ActionKind int

// Action kinds.
const (
	// Shutdown powers off a software-redundant rack.
	Shutdown ActionKind = iota
	// Throttle caps a non-redundant cap-able rack at its flex power.
	Throttle
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	if k == Shutdown {
		return "shutdown"
	}
	return "throttle"
}

// ManagedRack is one rack under Flex-Online control.
type ManagedRack struct {
	ID       string
	Workload string
	Category workload.Category
	// Pair is the PDU-pair feeding the rack.
	Pair power.PDUPairID
	// Allocated is the rack's provisioned power.
	Allocated power.Watts
	// FlexPower is the lowest permissible cap for cap-able racks (0 for
	// software-redundant, Allocated for non-cap-able).
	FlexPower power.Watts
	// Priority orders PickRack within a workload: lower values are acted
	// on first ("returns a rack... either randomly or as prioritized by
	// the workload", §IV-D). Racks with equal priority order by ID.
	Priority int
}

// PlannedAction is one corrective action chosen by Algorithm 1.
type PlannedAction struct {
	Rack      string
	Workload  string
	Kind      ActionKind
	Recovered power.Watts // estimated power recovered (R_r)
	Impact    float64     // workload impact after this action (I_w)
	CapTarget power.Watts // throttle target (flex power); 0 for shutdown
}

// PlanInput is the snapshot Algorithm 1 works from.
type PlanInput struct {
	Topo  *power.Topology
	Racks []ManagedRack
	// UPSPower is the latest measured power per UPS (line 2).
	UPSPower []power.Watts
	// RackPower is the latest measured power per rack ID (line 3); racks
	// without a reading are estimated at their allocated power (the safe,
	// conservative assumption).
	RackPower map[string]power.Watts
	// Inactive marks UPSes currently out of service: their pairs' loads
	// rest entirely on the partner UPS. Use InferInactiveUPSes when the
	// set is unknown.
	Inactive map[power.UPSID]bool
	// Scenario supplies the impact functions.
	Scenario impact.Scenario
	// Buffer is the safety margin below each UPS limit that the plan must
	// reach (line 4's buffer, §IV-D: "to account for mis-estimation").
	Buffer power.Watts
	// Acted lists racks already acted on (for multi-round planning);
	// they are not candidates again.
	Acted map[string]bool
}

// Plan runs Algorithm 1 without a cancellation point. It is shorthand for
// PlanContext(context.Background(), in); callers on the live control path
// should prefer PlanContext so a planning pass cannot eat into the
// 10-second shed budget.
func Plan(in PlanInput) (actions []PlannedAction, insufficient bool, err error) {
	//flexlint:ignore ctxflow deprecated ctx-less shorthand; live callers use PlanContext
	return PlanContext(context.Background(), in)
}

// PlanContext is the paper's Algorithm 1: repeatedly pick, across
// workloads, the candidate rack whose action has the least workload impact
// (ties: most recovered power, then rack ID) until the estimated power of
// every UPS is below its limit minus the buffer. It returns the chosen
// actions and whether the target was reached (insufficient=false) — when
// every shaveable rack is exhausted and some UPS is still over,
// insufficient is true and the actions still help but cannot guarantee
// safety.
//
// ctx is checked once per greedy iteration. When it expires mid-plan the
// actions chosen so far are returned together with insufficient=true and
// context.Cause(ctx): a truncated plan still sheds real power, so callers
// should enforce it rather than discard it (shedding less than needed
// beats shedding nothing inside the overload tolerance window).
func PlanContext(ctx context.Context, in PlanInput) (actions []PlannedAction, insufficient bool, err error) {
	topo := in.Topo
	if len(in.UPSPower) != len(topo.UPSes) {
		return nil, false, fmt.Errorf("controller: UPS snapshot has %d entries for %d UPSes", len(in.UPSPower), len(topo.UPSes))
	}
	est := append([]power.Watts(nil), in.UPSPower...)

	// Per-workload bookkeeping for impact fractions and PickRack order.
	type wl struct {
		name     string
		category workload.Category
		fn       impact.Function
		total    int
		affected int
		queue    []*ManagedRack // not yet acted, in priority order
	}
	byName := map[string]*wl{}
	var order []string
	racks := make([]ManagedRack, len(in.Racks))
	copy(racks, in.Racks)
	sort.SliceStable(racks, func(i, j int) bool {
		if racks[i].Priority != racks[j].Priority {
			return racks[i].Priority < racks[j].Priority
		}
		return racks[i].ID < racks[j].ID
	})
	for i := range racks {
		r := &racks[i]
		w, ok := byName[r.Workload]
		if !ok {
			w = &wl{
				name:     r.Workload,
				category: r.Category,
				fn:       in.Scenario.For(r.Workload, r.Category),
			}
			byName[r.Workload] = w
			order = append(order, r.Workload)
		}
		w.total++
		if in.Acted[r.ID] {
			w.affected++
			continue
		}
		if r.Category.Shaveable() {
			w.queue = append(w.queue, r)
		}
	}
	sort.Strings(order)

	rackPower := func(r *ManagedRack) power.Watts {
		if p, ok := in.RackPower[r.ID]; ok {
			return p
		}
		return r.Allocated // conservative: assume full draw
	}

	overLimit := func() bool {
		for u := range topo.UPSes {
			if in.Inactive[power.UPSID(u)] {
				continue
			}
			if est[u] > topo.UPSes[u].Capacity-in.Buffer {
				return true
			}
		}
		return false
	}

	for overLimit() {
		if ctx.Err() != nil {
			return actions, true, context.Cause(ctx)
		}
		// Build the candidate set C (lines 5–12): one rack per workload.
		type candidate struct {
			w   *wl
			r   *ManagedRack
			act PlannedAction
		}
		var cands []candidate
		for _, name := range order {
			w := byName[name]
			if len(w.queue) == 0 {
				continue
			}
			r := w.queue[0]
			p := rackPower(r)
			var act PlannedAction
			switch w.category {
			case workload.SoftwareRedundant:
				act = PlannedAction{Rack: r.ID, Workload: name, Kind: Shutdown, Recovered: p}
			case workload.NonRedundantCapable:
				rec := p - r.FlexPower
				if rec < 0 {
					rec = 0
				}
				act = PlannedAction{Rack: r.ID, Workload: name, Kind: Throttle, Recovered: rec, CapTarget: r.FlexPower}
			default:
				continue
			}
			frac := float64(w.affected+1) / float64(w.total)
			act.Impact = w.fn.At(frac)
			cands = append(cands, candidate{w: w, r: r, act: act})
		}
		if len(cands) == 0 {
			return actions, true, nil // exhausted all shaveable racks
		}
		// Select argmin impact (line 13); ties: max recovered, then ID.
		best := 0
		for i := 1; i < len(cands); i++ {
			a, b := cands[i].act, cands[best].act
			switch {
			case a.Impact < b.Impact-1e-12:
				best = i
			case a.Impact <= b.Impact+1e-12 && a.Recovered > b.Recovered:
				best = i
			case a.Impact <= b.Impact+1e-12 && a.Recovered == b.Recovered && a.Rack < b.Rack:
				best = i
			}
		}
		chosen := cands[best]
		actions = append(actions, chosen.act)
		chosen.w.affected++
		chosen.w.queue = chosen.w.queue[1:]
		// Update the UPS estimates with the rack's share (line 15).
		applyRecovery(topo, est, in.Inactive, chosen.r.Pair, chosen.act.Recovered)
	}
	return actions, false, nil
}

// applyRecovery subtracts a rack's recovered power from the UPS estimates
// according to the live topology: normally half to each upstream UPS of
// its pair; when one of them is inactive, everything rests on the other.
func applyRecovery(topo *power.Topology, est []power.Watts, inactive map[power.UPSID]bool, pair power.PDUPairID, rec power.Watts) {
	p := topo.Pairs[pair]
	a, b := p.UPSes[0], p.UPSes[1]
	switch {
	case inactive[a] && inactive[b]:
		// Pair is dark; nothing to subtract.
	case inactive[a]:
		est[b] -= rec
	case inactive[b]:
		est[a] -= rec
	default:
		est[a] -= rec / 2
		est[b] -= rec / 2
	}
}

// InferInactiveUPSes infers which UPSes are out of service from the power
// snapshot alone: a UPS whose measured output is below threshold (as a
// fraction of capacity) while the room is loaded is treated as inactive.
// This matches the paper's design — the controllers monitor only power,
// not failure events (§IV-D).
func InferInactiveUPSes(topo *power.Topology, upsPower []power.Watts, threshold float64) map[power.UPSID]bool {
	out := make(map[power.UPSID]bool)
	var total power.Watts
	for _, w := range upsPower {
		total += w
	}
	if total <= 0 {
		return out // unloaded room: nothing to infer
	}
	for u, w := range upsPower {
		if u < len(topo.UPSes) && float64(w) < threshold*float64(topo.UPSes[u].Capacity) {
			out[power.UPSID(u)] = true
		}
	}
	return out
}
