package controller

import (
	"testing"
	"time"

	"flex/internal/obs"
	"flex/internal/power"
)

// overdrawFeed is the standard failure snapshot used by the metrics tests:
// UPS 0 dead, survivors above limit−buffer.
func overdrawFeed(h *harness) {
	h.feed([]power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW})
}

func clearFeed(h *harness) {
	h.feed([]power.Watts{60 * power.KW, 70 * power.KW, 70 * power.KW, 70 * power.KW})
}

func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshots() {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}

// TestStepOutcomePlannedSemantics pins down the documented Planned
// contract: nil without overdraw, non-nil on a fresh-telemetry overdraw,
// and nil again on an overdraw round that defers on stale telemetry.
func TestStepOutcomePlannedSemantics(t *testing.T) {
	h := newHarness(t)
	reg := obs.NewRegistry()
	c := h.controller("ctl-1")
	c.cfg.Metrics = NewMetrics(reg)

	// Case 1: no overdraw → Planned nil.
	h.feed([]power.Watts{80 * power.KW, 80 * power.KW, 80 * power.KW, 80 * power.KW})
	out := c.Step()
	if out.Overdraw || out.Planned != nil {
		t.Fatalf("no-overdraw round: %+v, want Overdraw=false Planned=nil", out)
	}

	// Case 2: overdraw on fresh telemetry → Planned non-nil and enforced.
	overdrawFeed(h)
	h.clk.Advance(2 * time.Second) // measurement is now older than "now"…
	out = c.Step()                 // …but nothing was enforced yet, so it is not stale
	if !out.Overdraw || len(out.Planned) == 0 {
		t.Fatalf("overdraw round: %+v, want Overdraw=true and planned actions", out)
	}
	if out.Enforced != len(out.Planned) {
		t.Fatalf("enforced %d of %d planned", out.Enforced, len(out.Planned))
	}

	// Case 3: overdraw persists but the snapshot predates the enforcement
	// → the round defers: Overdraw=true with Planned nil.
	out = c.Step()
	if !out.Overdraw || out.Planned != nil {
		t.Fatalf("stale round: %+v, want Overdraw=true Planned=nil", out)
	}
	if got := counterValue(t, reg, "flex_controller_stale_skips_total"); got != 1 {
		t.Errorf("stale skips = %v, want 1", got)
	}
}

// TestControllerShedLatencyExactUnderVirtualClock drives one overdraw
// episode with explicit clock advances and asserts the histograms saw the
// exact durations the virtual clock dictates.
func TestControllerShedLatencyExactUnderVirtualClock(t *testing.T) {
	h := newHarness(t)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(8)
	c := h.controller("ctl-1")
	c.cfg.Metrics = NewMetrics(reg)
	c.cfg.Tracer = tracer

	// Detection and first enforcement happen in the same round: with no
	// actuation latency modeled the first-action latency is exactly 0.
	overdrawFeed(h)
	h.clk.Advance(2 * time.Second)
	out := c.Step()
	if out.Enforced == 0 {
		t.Fatal("setup: nothing enforced")
	}

	// 3 virtual seconds later the overdraw clears: the episode closes and
	// shed latency = lastEnforceAt − overdrawSince = 0 (both in round one).
	h.clk.Advance(3 * time.Second)
	clearFeed(h)
	out = c.Step()
	if out.Overdraw {
		t.Fatal("overdraw should have cleared")
	}

	var shed, first obs.Snapshot
	for _, s := range reg.Snapshots() {
		switch s.Name {
		case "flex_controller_shed_latency_seconds":
			shed = s
		case "flex_controller_first_action_latency_seconds":
			first = s
		}
	}
	if shed.Count != 1 || first.Count != 1 {
		t.Fatalf("histogram counts: shed=%d first=%d, want 1 and 1", shed.Count, first.Count)
	}
	if shed.Sum != 0 || first.Sum != 0 {
		t.Errorf("latency sums: shed=%v first=%v, want exactly 0 (same virtual instant)", shed.Sum, first.Sum)
	}
	if got := counterValue(t, reg, "flex_controller_overdraw_episodes_total"); got != 1 {
		t.Errorf("episodes = %v, want 1", got)
	}

	// The overdraw round produced a trace with all three pipeline stages.
	traces := tracer.Recent()
	if len(traces) == 0 {
		t.Fatal("no traces recorded")
	}
	stages := map[string]bool{}
	for _, sp := range traces[len(traces)-1].Spans {
		stages[sp.Name] = true
	}
	for _, want := range []string{"detect", "plan", "act"} {
		if !stages[want] {
			t.Errorf("trace missing %q span; got %v", want, traces[len(traces)-1].Spans)
		}
	}
}

// TestRecordStepZeroAllocations keeps the per-round metrics update off the
// allocator: the control loop must not pay for its own instrumentation.
func TestRecordStepZeroAllocations(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	out := &StepOutcome{
		Overdraw: true,
		Planned: []PlannedAction{
			{Rack: "r1", Kind: Shutdown},
			{Rack: "r2", Kind: Throttle},
		},
		Enforced:      2,
		EnforceErrors: 1,
		Insufficient:  true,
		Restored:      3,
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.recordStep(out)
		m.incEpisode()
		m.incStaleSkip()
		m.incPlanError()
		m.observeFirstAction(time.Second)
		m.observeShed(9 * time.Second)
	})
	if allocs != 0 {
		t.Fatalf("metrics hot path allocates %.1f times per step, want 0", allocs)
	}
}
