package controller

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"flex/internal/impact"
	"flex/internal/obs"
	"flex/internal/power"
)

// errAfterCtx wraps a context and starts reporting an error after Err has
// been polled n times — a deterministic stand-in for a budget expiring in
// the middle of a planning pass.
type errAfterCtx struct {
	context.Context
	mu    sync.Mutex
	left  int
	cause error
}

func (c *errAfterCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left > 0 {
		c.left--
		return nil
	}
	return c.cause
}

func TestPlanContextExpiryReturnsPartialPlan(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	ups := []power.Watts{0, 120 * power.KW, 120 * power.KW, 120 * power.KW}
	inactive := map[power.UPSID]bool{0: true}
	in := PlanInput{
		Topo:      topo,
		Racks:     racks,
		UPSPower:  ups,
		RackPower: rackPowers(racks),
		Inactive:  inactive,
		Scenario:  impact.Default(),
		Buffer:    power.KW,
	}
	full, _, err := PlanContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Fatalf("fixture too easy: full plan has %d actions", len(full))
	}

	cause := errors.New("plan budget spent")
	ctx := &errAfterCtx{Context: context.Background(), left: 2, cause: cause}
	partial, insufficient, err := PlanContext(ctx, in)
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want %v", err, cause)
	}
	if !insufficient {
		t.Fatal("a truncated plan must report insufficient")
	}
	if len(partial) == 0 || len(partial) >= len(full) {
		t.Fatalf("partial plan has %d actions, full has %d; want a proper nonempty prefix", len(partial), len(full))
	}
	// The truncated plan must be a prefix of the full greedy order: the
	// ctx check cannot change what Algorithm 1 picks, only when it stops.
	for i, a := range partial {
		if a != full[i] {
			t.Fatalf("partial[%d] = %+v, full[%d] = %+v", i, a, i, full[i])
		}
	}
}

func TestPlanContextCanceledUpfront(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("stop planning")
	cancel(cause)
	actions, insufficient, err := PlanContext(ctx, PlanInput{
		Topo:      topo,
		Racks:     racks,
		UPSPower:  []power.Watts{0, 120 * power.KW, 120 * power.KW, 120 * power.KW},
		RackPower: rackPowers(racks),
		Inactive:  map[power.UPSID]bool{0: true},
		Scenario:  impact.Default(),
		Buffer:    power.KW,
	})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want %v", err, cause)
	}
	if len(actions) != 0 || !insufficient {
		t.Fatalf("got %d actions, insufficient=%v", len(actions), insufficient)
	}
}

func TestNewDefaultsPlanBudget(t *testing.T) {
	topo := testRoom(t)
	c := New(Config{Topo: topo})
	if want := power.FlexLatencyBudget / 2; c.cfg.PlanBudget != want {
		t.Fatalf("PlanBudget = %v, want %v", c.cfg.PlanBudget, want)
	}
	c = New(Config{Topo: topo, PlanBudget: time.Second})
	if c.cfg.PlanBudget != time.Second {
		t.Fatalf("PlanBudget = %v, want 1s", c.cfg.PlanBudget)
	}
}

// TestStepContextAbortRecordsPartialPlan: a step whose ctx dies during
// planning keeps the (possibly empty) truncated plan, marks the outcome,
// and bumps the plan-abort counter rather than the plan-error one.
func TestStepContextAbortRecordsPartialPlan(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-abort")
	m := NewMetrics(obs.NewRegistry())
	c.cfg.Metrics = m

	h.feed([]power.Watts{0, 120 * power.KW, 120 * power.KW, 120 * power.KW})
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("shutting down"))
	out := c.StepContext(ctx)
	if !out.Overdraw {
		t.Fatal("overdraw not detected")
	}
	if !out.PlanAborted {
		t.Fatal("PlanAborted not set")
	}
	if got := m.PlanAborts.Value(); got != 1 {
		t.Fatalf("PlanAborts = %d, want 1", got)
	}
	if got := m.PlanErrors.Value(); got != 0 {
		t.Fatalf("PlanErrors = %d, want 0", got)
	}
	if out.Enforced != len(out.Planned) {
		t.Fatalf("enforced %d of %d planned", out.Enforced, len(out.Planned))
	}
}
