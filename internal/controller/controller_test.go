package controller

import (
	"context"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/impact"
	"flex/internal/power"
	"flex/internal/rackmgr"
	"flex/internal/telemetry"
)

// harness wires views and an actuator for a test room.
type harness struct {
	topo     *power.Topology
	racks    []ManagedRack
	upsView  *telemetry.LatestPower
	rackView *telemetry.LatestPower
	mgr      *rackmgr.Manager
	clk      *clock.Virtual
	now      time.Time
}

func newHarness(t *testing.T) *harness {
	topo := testRoom(t)
	racks := testRacks(topo)
	ids := make([]string, len(racks))
	for i, r := range racks {
		ids[i] = r.ID
	}
	clk := clock.NewVirtual(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	return &harness{
		topo:     topo,
		racks:    racks,
		upsView:  telemetry.NewLatestPower(),
		rackView: telemetry.NewLatestPower(),
		mgr:      rackmgr.NewManager(clk, ids),
		clk:      clk,
		now:      clk.Now(),
	}
}

// feed publishes UPS and rack power into the views.
func (h *harness) feed(ups []power.Watts) {
	h.now = h.now.Add(time.Second)
	for u, w := range ups {
		h.upsView.Update(telemetry.Sample{
			Device: h.topo.UPSes[u].Name, Power: w, Valid: true, MeasuredAt: h.now,
		})
	}
	for _, r := range h.racks {
		st, cap, _ := h.mgr.State(r.ID)
		p := r.Allocated
		switch st {
		case rackmgr.Off:
			p = 0
		case rackmgr.Throttled:
			p = cap
		}
		h.rackView.Update(telemetry.Sample{
			Device: r.ID, Power: p, Valid: true, MeasuredAt: h.now,
		})
	}
}

func (h *harness) controller(name string) *Controller {
	return New(Config{
		Name:     name,
		Clock:    h.clk,
		Topo:     h.topo,
		Racks:    h.racks,
		UPSView:  h.upsView,
		RackView: h.rackView,
		Actuator: h.mgr,
		Scenario: impact.Realistic1(),
		Buffer:   power.KW,
	})
}

func TestControllerEnforcesOnOverdraw(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-1")

	// Normal operation: no actions.
	h.feed([]power.Watts{80 * power.KW, 80 * power.KW, 80 * power.KW, 80 * power.KW})
	out := c.Step()
	if out.Overdraw || out.Enforced != 0 {
		t.Fatalf("normal operation acted: %+v", out)
	}

	// UPS 0 fails; survivors overdraw.
	h.feed([]power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW})
	out = c.Step()
	if !out.Overdraw {
		t.Fatal("overdraw not detected")
	}
	if out.Enforced == 0 || out.Enforced != len(out.Planned) {
		t.Fatalf("enforced %d of %d planned", out.Enforced, len(out.Planned))
	}
	if out.Insufficient {
		t.Fatal("plan should be sufficient")
	}
	// The acted racks really changed state.
	for _, a := range out.Planned {
		st, _, err := h.mgr.State(a.Rack)
		if err != nil {
			t.Fatal(err)
		}
		switch a.Kind {
		case Shutdown:
			if st != rackmgr.Off {
				t.Fatalf("rack %s = %v, want Off", a.Rack, st)
			}
		case Throttle:
			if st != rackmgr.Throttled {
				t.Fatalf("rack %s = %v, want Throttled", a.Rack, st)
			}
		}
	}
	if len(c.ActedRacks()) != out.Enforced {
		t.Fatalf("acted bookkeeping: %d vs %d", len(c.ActedRacks()), out.Enforced)
	}
}

func TestControllerRestoresAfterRecovery(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-1")
	h.feed([]power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW})
	out := c.Step()
	if out.Enforced == 0 {
		t.Fatal("setup: no enforcement")
	}
	// UPS restored; loads drop (shaved power removed from measurement).
	h.feed([]power.Watts{60 * power.KW, 70 * power.KW, 70 * power.KW, 70 * power.KW})
	out = c.Step()
	if out.Restored == 0 {
		t.Fatalf("no restore after recovery: %+v", out)
	}
	if len(c.ActedRacks()) != 0 {
		t.Fatalf("acted racks remain: %v", c.ActedRacks())
	}
	for _, r := range h.racks {
		st, _, _ := h.mgr.State(r.ID)
		if st != rackmgr.On {
			t.Fatalf("rack %s = %v after recovery, want On", r.ID, st)
		}
	}
}

func TestControllerDoesNotRestoreWithoutHeadroom(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-1")
	h.feed([]power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW})
	if out := c.Step(); out.Enforced == 0 {
		t.Fatal("setup: no enforcement")
	}
	// UPS back, but loads so high that restoring would re-overdraw.
	h.feed([]power.Watts{97 * power.KW, 97 * power.KW, 97 * power.KW, 97 * power.KW})
	out := c.Step()
	if out.Restored != 0 {
		t.Fatalf("restored without headroom: %+v", out)
	}
}

func TestControllerTreatsMissingUPSDataAsFull(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-1")
	// Feed only rack data; UPS view empty → assume capacity → overdraw.
	h.feed(nil)
	out := c.Step()
	if !out.Overdraw {
		t.Fatal("missing UPS telemetry must be treated as worst case")
	}
}

func TestMultiPrimaryControllersConverge(t *testing.T) {
	h := newHarness(t)
	c1 := h.controller("ctl-1")
	c2 := h.controller("ctl-2")
	h.feed([]power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW})
	out1 := c1.Step()
	out2 := c2.Step() // same snapshot: same (idempotent) actions
	if out1.Enforced == 0 || out2.Enforced == 0 {
		t.Fatal("both primaries should act")
	}
	// The union of state changes is consistent: every acted rack is
	// Off or Throttled, and duplicate actions did not error.
	if out1.EnforceErrors != 0 || out2.EnforceErrors != 0 {
		t.Fatalf("enforce errors: %d, %d", out1.EnforceErrors, out2.EnforceErrors)
	}
	// Both saw the same snapshot, so the plans agree (deterministic).
	if len(out1.Planned) != len(out2.Planned) {
		t.Fatalf("plans diverged: %d vs %d", len(out1.Planned), len(out2.Planned))
	}
	for i := range out1.Planned {
		if out1.Planned[i].Rack != out2.Planned[i].Rack {
			t.Fatalf("plan %d differs: %s vs %s", i, out1.Planned[i].Rack, out2.Planned[i].Rack)
		}
	}
}

func TestControllerEnforceErrorsSurface(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-1")
	// Break every rack's management path.
	for _, r := range h.racks {
		_ = h.mgr.SetReachable(r.ID, false)
	}
	h.feed([]power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW})
	out := c.Step()
	if out.EnforceErrors == 0 || out.Enforced != 0 {
		t.Fatalf("expected enforcement failures: %+v", out)
	}
	if len(c.ActedRacks()) != 0 {
		t.Fatal("failed actions must not be recorded as acted")
	}
}

func TestControllerRunLoop(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-1")
	h.feed([]power.Watts{80 * power.KW, 80 * power.KW, 80 * power.KW, 80 * power.KW})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for c.Steps() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Steps() == 0 {
		t.Fatal("run loop never stepped")
	}
	n := c.Steps()
	h.clk.Advance(time.Second)
	for c.Steps() == n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Steps() == n {
		t.Fatal("run loop did not continue")
	}
}

func TestControllerPartialRestore(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-1")
	// Big failover: lots of racks acted.
	h.feed([]power.Watts{0, 115 * power.KW, 115 * power.KW, 115 * power.KW})
	out := c.Step()
	if out.Enforced < 3 {
		t.Fatalf("setup: only %d actions", out.Enforced)
	}
	acted := len(c.ActedRacks())
	// UPS back but load still highish: only some racks fit back under
	// limit−buffer. Headroom = 4×(99kW−92kW) = 28kW total.
	h.feed([]power.Watts{92 * power.KW, 92 * power.KW, 92 * power.KW, 92 * power.KW})
	out = c.Step()
	if out.Restored == 0 {
		t.Fatalf("no partial restore: %+v", out)
	}
	if out.Restored >= acted {
		t.Fatalf("restored all %d racks despite limited headroom", acted)
	}
	// Full recovery: the rest comes back.
	h.feed([]power.Watts{60 * power.KW, 60 * power.KW, 60 * power.KW, 60 * power.KW})
	out = c.Step()
	if len(c.ActedRacks()) != 0 {
		t.Fatalf("racks still acted after full recovery: %v", c.ActedRacks())
	}
}

func TestControllerRestoresThrottledBeforeShutdown(t *testing.T) {
	h := newHarness(t)
	c := h.controller("ctl-1")
	h.feed([]power.Watts{0, 112 * power.KW, 112 * power.KW, 112 * power.KW})
	out := c.Step()
	var hasShut, hasThrottle bool
	for _, a := range out.Planned {
		if a.Kind == Shutdown {
			hasShut = true
		} else {
			hasThrottle = true
		}
	}
	if !hasShut || !hasThrottle {
		t.Skipf("need both kinds for this test, got planned=%v", out.Planned)
	}
	shutPlanned := 0
	for _, a := range out.Planned {
		if a.Kind == Shutdown {
			shutPlanned++
		}
	}
	// Tiny headroom: throttled racks must be restored before any shut
	// rack comes back (lifting a cap is cheaper than a restart).
	h.feed([]power.Watts{95 * power.KW, 95 * power.KW, 95 * power.KW, 95 * power.KW})
	out = c.Step()
	if out.Restored == 0 {
		t.Skip("no headroom for any restore at this load")
	}
	remainingThrottles, remainingShut := 0, 0
	for _, id := range c.ActedRacks() {
		st, _, _ := h.mgr.State(id)
		switch st {
		case rackmgr.Throttled:
			remainingThrottles++
		case rackmgr.Off:
			remainingShut++
		}
	}
	if remainingThrottles > 0 && remainingShut < shutPlanned {
		t.Fatalf("a shut rack was restored while %d throttled racks remain", remainingThrottles)
	}
}

func TestControllerUsesEstimatorWhenConfigured(t *testing.T) {
	h := newHarness(t)
	est := telemetry.NewEWMAEstimator(0.5)
	c := New(Config{
		Name: "ctl-est", Clock: h.clk, Topo: h.topo, Racks: h.racks,
		UPSView: h.upsView, RackView: h.rackView,
		RackEstimator: est,
		Actuator:      h.mgr, Scenario: impact.Realistic1(), Buffer: power.KW,
	})
	// Feed the estimator a noisy history per rack; the raw view stays
	// empty, proving the plan used the estimator (missing raw data would
	// otherwise fall back to allocated power — same actions but different
	// recovered estimates).
	base := h.clk.Now()
	for i := 0; i < 5; i++ {
		for _, r := range h.racks {
			noise := power.Watts(0)
			if i%2 == 0 {
				noise = 2 * power.KW
			}
			est.Update(telemetry.Sample{
				Device: r.ID, Power: 9*power.KW + noise, Valid: true,
				MeasuredAt: base.Add(time.Duration(i) * time.Second),
			})
		}
	}
	h.now = base.Add(10 * time.Second)
	for u, w := range []power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW} {
		h.upsView.Update(telemetry.Sample{
			Device: h.topo.UPSes[u].Name, Power: w, Valid: true, MeasuredAt: h.now,
		})
	}
	out := c.Step()
	if !out.Overdraw || out.Enforced == 0 {
		t.Fatalf("estimator-backed controller did not act: %+v", out)
	}
	// Recovered estimates must come from the conservative lower bound:
	// below the EWMA mean (≈10kW) for every shutdown.
	for _, a := range out.Planned {
		if a.Kind == Shutdown && a.Recovered >= 10*power.KW {
			t.Fatalf("recovered %v not conservative (mean ≈10kW)", a.Recovered)
		}
	}
}
