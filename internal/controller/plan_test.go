package controller

import (
	"fmt"
	"testing"

	"flex/internal/impact"
	"flex/internal/power"
	"flex/internal/workload"
)

// testRoom builds a small 4N/3 room: 4 × 100kW UPSes, 6 PDU-pairs.
func testRoom(t *testing.T) *power.Topology {
	t.Helper()
	topo, err := power.NewRoom(power.RoomConfig{
		Design:              power.Redundancy{X: 4, Y: 3},
		UPSCapacity:         100 * power.KW,
		PairsPerCombination: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// testRacks places one rack of each category on every pair: SR 10kW,
// capable 10kW (flex 8kW), non-capable 10kW.
func testRacks(topo *power.Topology) []ManagedRack {
	var racks []ManagedRack
	for _, p := range topo.Pairs {
		racks = append(racks,
			ManagedRack{ID: fmt.Sprintf("sr-%d", p.ID), Workload: "websearch",
				Category: workload.SoftwareRedundant, Pair: p.ID,
				Allocated: 10 * power.KW, FlexPower: 0},
			ManagedRack{ID: fmt.Sprintf("cap-%d", p.ID), Workload: "vmservice",
				Category: workload.NonRedundantCapable, Pair: p.ID,
				Allocated: 10 * power.KW, FlexPower: 8 * power.KW},
			ManagedRack{ID: fmt.Sprintf("nc-%d", p.ID), Workload: "gpucluster",
				Category: workload.NonRedundantNonCapable, Pair: p.ID,
				Allocated: 10 * power.KW, FlexPower: 10 * power.KW},
		)
	}
	return racks
}

// rackPowers returns a full-draw snapshot.
func rackPowers(racks []ManagedRack) map[string]power.Watts {
	m := make(map[string]power.Watts, len(racks))
	for _, r := range racks {
		m[r.ID] = r.Allocated
	}
	return m
}

func TestPlanNoOverdrawNoActions(t *testing.T) {
	topo := testRoom(t)
	actions, insufficient, err := Plan(PlanInput{
		Topo:     topo,
		Racks:    testRacks(topo),
		UPSPower: []power.Watts{50 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW},
		Scenario: impact.Default(),
	})
	if err != nil || insufficient {
		t.Fatalf("err=%v insufficient=%v", err, insufficient)
	}
	if len(actions) != 0 {
		t.Fatalf("actions = %v, want none", actions)
	}
}

func TestPlanBringsEstimateBelowLimit(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	// UPS 0 failed: its load transferred; survivors at 120kW (over 100kW).
	ups := []power.Watts{0, 120 * power.KW, 120 * power.KW, 120 * power.KW}
	inactive := map[power.UPSID]bool{0: true}
	actions, insufficient, err := Plan(PlanInput{
		Topo:      topo,
		Racks:     racks,
		UPSPower:  ups,
		RackPower: rackPowers(racks),
		Inactive:  inactive,
		Scenario:  impact.Default(),
		Buffer:    power.KW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if insufficient {
		t.Fatal("plan reported insufficient despite ample shaveable power")
	}
	if len(actions) == 0 {
		t.Fatal("no actions for a 20% overdraw")
	}
	// Replay the estimate update and verify all active UPSes end below
	// limit − buffer.
	est := append([]power.Watts(nil), ups...)
	for _, a := range actions {
		var pair power.PDUPairID
		for _, r := range racks {
			if r.ID == a.Rack {
				pair = r.Pair
			}
		}
		applyRecovery(topo, est, inactive, pair, a.Recovered)
	}
	for u := 1; u < 4; u++ {
		if est[u] > 100*power.KW-power.KW {
			t.Fatalf("UPS %d estimate %v still above limit", u, est[u])
		}
	}
}

func TestPlanDefaultThrottlesBeforeShutdown(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	ups := []power.Watts{0, 110 * power.KW, 110 * power.KW, 110 * power.KW}
	actions, _, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups,
		RackPower: rackPowers(racks),
		Inactive:  map[power.UPSID]bool{0: true},
		Scenario:  impact.Default(),
		Buffer:    power.KW,
	})
	if err != nil {
		t.Fatal(err)
	}
	seenShutdown := false
	for _, a := range actions {
		if a.Kind == Shutdown {
			seenShutdown = true
		}
		if a.Kind == Throttle && seenShutdown {
			t.Fatalf("throttle after shutdown under Default scenario: %v", actions)
		}
	}
}

func TestPlanExtreme1ShutsDownFirst(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	ups := []power.Watts{0, 110 * power.KW, 110 * power.KW, 110 * power.KW}
	actions, _, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups,
		RackPower: rackPowers(racks),
		Inactive:  map[power.UPSID]bool{0: true},
		Scenario:  impact.Extreme1(),
		Buffer:    power.KW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 {
		t.Fatal("no actions")
	}
	for _, a := range actions {
		if a.Kind != Shutdown {
			t.Fatalf("Extreme-1 should only shut down (SR capacity permitting): %v", actions)
		}
	}
}

func TestPlanExtreme2ThrottlesAllBeforeShutdown(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	// Big overdraw so that throttling alone cannot cover it.
	ups := []power.Watts{0, 133 * power.KW, 133 * power.KW, 133 * power.KW}
	actions, _, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups,
		RackPower: rackPowers(racks),
		Inactive:  map[power.UPSID]bool{0: true},
		Scenario:  impact.Extreme2(),
		Buffer:    power.KW,
	})
	if err != nil {
		t.Fatal(err)
	}
	throttles, shutdowns := 0, 0
	throttlesDone := false
	for _, a := range actions {
		switch a.Kind {
		case Throttle:
			throttles++
			if throttlesDone {
				t.Fatalf("throttle after first shutdown under Extreme-2: %v", actions)
			}
		case Shutdown:
			shutdowns++
			throttlesDone = true
		}
	}
	if throttles != 6 {
		t.Fatalf("Extreme-2 should throttle all 6 cap-able racks first, got %d", throttles)
	}
	if shutdowns == 0 {
		t.Fatal("Extreme-2 with 33% overdraw must eventually shut down SR racks")
	}
}

func TestPlanInsufficientWhenShaveableExhausted(t *testing.T) {
	topo := testRoom(t)
	// Only non-cap-able racks: nothing can be shaved.
	var racks []ManagedRack
	for _, p := range topo.Pairs {
		racks = append(racks, ManagedRack{
			ID: fmt.Sprintf("nc-%d", p.ID), Workload: "gpucluster",
			Category: workload.NonRedundantNonCapable, Pair: p.ID,
			Allocated: 10 * power.KW, FlexPower: 10 * power.KW,
		})
	}
	ups := []power.Watts{0, 120 * power.KW, 120 * power.KW, 120 * power.KW}
	actions, insufficient, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups,
		RackPower: rackPowers(racks),
		Inactive:  map[power.UPSID]bool{0: true},
		Scenario:  impact.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !insufficient {
		t.Fatal("expected insufficient")
	}
	if len(actions) != 0 {
		t.Fatalf("no shaveable racks, yet actions = %v", actions)
	}
}

func TestPlanSkipsActedRacks(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	ups := []power.Watts{0, 105 * power.KW, 105 * power.KW, 105 * power.KW}
	acted := map[string]bool{}
	first, _, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups, RackPower: rackPowers(racks),
		Inactive: map[power.UPSID]bool{0: true},
		Scenario: impact.Default(), Buffer: power.KW,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range first {
		acted[a.Rack] = true
	}
	second, _, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups, RackPower: rackPowers(racks),
		Inactive: map[power.UPSID]bool{0: true},
		Scenario: impact.Default(), Buffer: power.KW,
		Acted: acted,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range second {
		if acted[a.Rack] {
			t.Fatalf("rack %s selected twice", a.Rack)
		}
	}
}

func TestPlanUsesAllocatedPowerWithoutSnapshot(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	ups := []power.Watts{0, 105 * power.KW, 105 * power.KW, 105 * power.KW}
	// No RackPower at all: estimates fall back to allocated power.
	actions, insufficient, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups,
		Inactive: map[power.UPSID]bool{0: true},
		Scenario: impact.Default(), Buffer: power.KW,
	})
	if err != nil || insufficient {
		t.Fatalf("err=%v insufficient=%v", err, insufficient)
	}
	if len(actions) == 0 {
		t.Fatal("expected actions")
	}
}

func TestPlanPriorityOrdersPickRack(t *testing.T) {
	topo := testRoom(t)
	racks := []ManagedRack{
		{ID: "cap-low", Workload: "vmservice", Category: workload.NonRedundantCapable,
			Pair: 0, Allocated: 50 * power.KW, FlexPower: 40 * power.KW, Priority: 2},
		{ID: "cap-high", Workload: "vmservice", Category: workload.NonRedundantCapable,
			Pair: 0, Allocated: 50 * power.KW, FlexPower: 40 * power.KW, Priority: 1},
	}
	ups := []power.Watts{102 * power.KW, 90 * power.KW, 50 * power.KW, 50 * power.KW}
	actions, _, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups, RackPower: rackPowers(racks),
		Scenario: impact.Default(), Buffer: power.KW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 || actions[0].Rack != "cap-high" {
		t.Fatalf("actions = %v, want cap-high first (priority 1)", actions)
	}
}

func TestPlanValidatesSnapshotLength(t *testing.T) {
	topo := testRoom(t)
	if _, _, err := Plan(PlanInput{Topo: topo, UPSPower: []power.Watts{1, 2}}); err == nil {
		t.Fatal("expected error for short snapshot")
	}
}

func TestActionKindString(t *testing.T) {
	if Shutdown.String() != "shutdown" || Throttle.String() != "throttle" {
		t.Error("kind strings")
	}
}

func TestInferInactiveUPSes(t *testing.T) {
	topo := testRoom(t)
	ups := []power.Watts{1 * power.KW, 120 * power.KW, 120 * power.KW, 120 * power.KW}
	inactive := InferInactiveUPSes(topo, ups, 0.02)
	if len(inactive) != 1 || !inactive[0] {
		t.Fatalf("inactive = %v, want {0}", inactive)
	}
	// Unloaded room: no inference.
	if got := InferInactiveUPSes(topo, []power.Watts{0, 0, 0, 0}, 0.02); len(got) != 0 {
		t.Fatalf("unloaded room inferred %v", got)
	}
}

func TestPlanDoubleFailure(t *testing.T) {
	// Eq. 4 guarantees single-failure safety only, but Algorithm 1 itself
	// is failure-count-agnostic: with two UPSes inactive it must still
	// shave toward the two survivors' limits (possibly reporting
	// insufficient if shaveable power runs out).
	topo := testRoom(t)
	racks := testRacks(topo)
	// Two failures: survivors carry double loads.
	ups := []power.Watts{0, 0, 130 * power.KW, 130 * power.KW}
	inactive := map[power.UPSID]bool{0: true, 1: true}
	actions, insufficient, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups,
		RackPower: rackPowers(racks),
		Inactive:  inactive,
		Scenario:  impact.Extreme1(), // shutdowns recover the most
		Buffer:    power.KW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 {
		t.Fatal("no actions for a double failure")
	}
	// Replay and confirm the survivors' estimates improved; pairs whose
	// both UPSes are dark contribute nothing.
	est := append([]power.Watts(nil), ups...)
	for _, a := range actions {
		for _, r := range racks {
			if r.ID == a.Rack {
				applyRecovery(topo, est, inactive, r.Pair, a.Recovered)
			}
		}
	}
	if est[2] >= ups[2] && est[3] >= ups[3] {
		t.Fatal("double-failure plan recovered nothing on the survivors")
	}
	_ = insufficient // either outcome is acceptable at this overload
}

func TestPlanIgnoresOverloadOnInactiveUPS(t *testing.T) {
	topo := testRoom(t)
	racks := testRacks(topo)
	// The inactive UPS reports a garbage high value; it must not trigger
	// actions because only active UPSes' limits matter.
	ups := []power.Watts{999 * power.KW, 50 * power.KW, 50 * power.KW, 50 * power.KW}
	actions, insufficient, err := Plan(PlanInput{
		Topo: topo, Racks: racks, UPSPower: ups,
		RackPower: rackPowers(racks),
		Inactive:  map[power.UPSID]bool{0: true},
		Scenario:  impact.Default(),
	})
	if err != nil || insufficient {
		t.Fatalf("err=%v insufficient=%v", err, insufficient)
	}
	if len(actions) != 0 {
		t.Fatalf("actions for an inactive UPS's reading: %v", actions)
	}
}
