package controller

import (
	"time"

	"flex/internal/obs"
	"flex/internal/power"
)

// Metrics instruments Flex-Online's control loop: one instance is shared
// by every controller primary of a room (counters aggregate across them).
// All children are pre-bound at construction, so recording a StepOutcome
// allocates nothing — the control loop must stay measurable without
// perturbing the latency it measures. A nil *Metrics disables
// instrumentation.
type Metrics struct {
	// Steps counts evaluation rounds.
	Steps *obs.Counter
	// OverdrawSteps counts rounds that saw some UPS above limit−buffer.
	OverdrawSteps *obs.Counter
	// OverdrawEpisodes counts distinct overdraw episodes (first detection
	// after a clear round).
	OverdrawEpisodes *obs.Counter
	// StaleSkips counts rounds that deferred re-planning because the
	// telemetry snapshot predated the last enforcement.
	StaleSkips *obs.Counter
	// PlanErrors counts Plan invocations that failed outright.
	PlanErrors *obs.Counter
	// PlanAborts counts planning passes cut short by Config.PlanBudget or
	// the step's context; their truncated plans were still enforced.
	PlanAborts *obs.Counter
	// PlannedShutdowns/PlannedThrottles count planned actions by kind.
	PlannedShutdowns *obs.Counter
	PlannedThrottles *obs.Counter
	// Enforced and EnforceErrors count actuation outcomes.
	Enforced      *obs.Counter
	EnforceErrors *obs.Counter
	// InsufficientSteps counts rounds where Algorithm 1 ran out of
	// shaveable racks before reaching safety.
	InsufficientSteps *obs.Counter
	// Restored counts racks restored during recovery.
	Restored *obs.Counter
	// FirstActionLatency is detection → first successful enforcement of an
	// overdraw episode, in seconds.
	FirstActionLatency *obs.Histogram
	// ShedLatency is detection → last enforcement of an episode, observed
	// when the overdraw clears; it must sit inside the 10-second UPS
	// overload tolerance budget (paper Fig. 6).
	ShedLatency *obs.Histogram
	// LatencyBudget exports the budget itself so dashboards can draw the
	// line without hardcoding it.
	LatencyBudget *obs.Gauge
}

// NewMetrics registers the controller metrics on r (idempotent).
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{
		Steps:            r.Counter("flex_controller_steps_total", "controller evaluation rounds"),
		OverdrawSteps:    r.Counter("flex_controller_overdraw_steps_total", "rounds with a UPS above limit minus buffer"),
		OverdrawEpisodes: r.Counter("flex_controller_overdraw_episodes_total", "distinct overdraw episodes detected"),
		StaleSkips:       r.Counter("flex_controller_stale_skips_total", "rounds deferred on stale telemetry"),
		PlanErrors:       r.Counter("flex_controller_plan_errors_total", "Algorithm 1 invocations that failed"),
		PlanAborts:       r.Counter("flex_controller_plan_aborts_total", "planning passes cut short by the plan budget"),
		PlannedShutdowns: r.CounterVec("flex_controller_planned_actions_total", "planned corrective actions by kind", "kind").With("shutdown"),
		PlannedThrottles: r.CounterVec("flex_controller_planned_actions_total", "planned corrective actions by kind", "kind").With("throttle"),
		Enforced:         r.Counter("flex_controller_enforced_total", "successfully enforced corrective actions"),
		EnforceErrors:    r.Counter("flex_controller_enforce_errors_total", "actuation failures"),
		InsufficientSteps: r.Counter("flex_controller_insufficient_steps_total",
			"rounds where shaveable power ran out before safety"),
		Restored: r.Counter("flex_controller_restored_total", "racks restored during recovery"),
		FirstActionLatency: r.Histogram("flex_controller_first_action_latency_seconds",
			"overdraw detection to first successful enforcement", obs.LatencyBuckets()),
		ShedLatency: r.Histogram("flex_controller_shed_latency_seconds",
			"overdraw detection to last enforcement of the episode", obs.LatencyBuckets()),
		LatencyBudget: r.Gauge("flex_controller_latency_budget_seconds",
			"the UPS overload tolerance budget corrective action must fit in"),
	}
	m.LatencyBudget.Set(power.FlexLatencyBudget.Seconds())
	return m
}

// recordStep folds one StepOutcome into the counters. It is the
// controller's hot-path metrics update and must not allocate (asserted by
// TestRecordStepZeroAllocations).
//
//flex:hotpath
func (m *Metrics) recordStep(out *StepOutcome) {
	if m == nil {
		return
	}
	m.Steps.Inc()
	if out.Overdraw {
		m.OverdrawSteps.Inc()
	}
	for i := range out.Planned {
		if out.Planned[i].Kind == Shutdown {
			m.PlannedShutdowns.Inc()
		} else {
			m.PlannedThrottles.Inc()
		}
	}
	if out.Enforced > 0 {
		m.Enforced.Add(uint64(out.Enforced))
	}
	if out.EnforceErrors > 0 {
		m.EnforceErrors.Add(uint64(out.EnforceErrors))
	}
	if out.Insufficient {
		m.InsufficientSteps.Inc()
	}
	if out.Restored > 0 {
		m.Restored.Add(uint64(out.Restored))
	}
}

// The helpers below are nil-safe so Step can record mid-round events
// without sprinkling nil checks through the control flow.

//flex:hotpath
func (m *Metrics) incEpisode() {
	if m != nil {
		m.OverdrawEpisodes.Inc()
	}
}

//flex:hotpath
func (m *Metrics) incStaleSkip() {
	if m != nil {
		m.StaleSkips.Inc()
	}
}

//flex:hotpath
func (m *Metrics) incPlanError() {
	if m != nil {
		m.PlanErrors.Inc()
	}
}

//flex:hotpath
func (m *Metrics) incPlanAbort() {
	if m != nil {
		m.PlanAborts.Inc()
	}
}

//flex:hotpath
func (m *Metrics) observeFirstAction(d time.Duration) {
	if m != nil {
		m.FirstActionLatency.ObserveDuration(d)
	}
}

//flex:hotpath
func (m *Metrics) observeShed(d time.Duration) {
	if m != nil {
		m.ShedLatency.ObserveDuration(d)
	}
}
