package controller

import (
	"context"
	"sort"
	"sync"
	"time"

	"flex/internal/clock"
	"flex/internal/impact"
	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/power"
	"flex/internal/rackmgr"
	"flex/internal/telemetry"
)

// Config assembles one Flex-Online controller instance. Flex runs several
// instances in a multi-primary configuration on separate fault domains;
// because actions are idempotent, the instances need no coordination
// (paper §IV-D).
type Config struct {
	Name  string
	Clock clock.Clock
	Topo  *power.Topology
	Racks []ManagedRack
	// UPSView/RackView are the telemetry snapshots the controller reads
	// (fed by telemetry.Pipeline.SubscribeAll).
	UPSView  *telemetry.LatestPower
	RackView *telemetry.LatestPower
	// RackEstimator, when non-nil, supplies the rack power estimates for
	// planning instead of the raw RackView snapshot (paper §IV-D: "an
	// estimate based on time series models can be used"). The controller
	// uses a conservative lower bound (mean − deviation) so recovered
	// power is never overestimated.
	RackEstimator *telemetry.EWMAEstimator
	// Actuator enforces actions.
	Actuator *rackmgr.Manager
	// Scenario supplies impact functions.
	Scenario impact.Scenario
	// Buffer is the safety margin below UPS capacity (default 1% of the
	// smallest UPS capacity).
	Buffer power.Watts
	// Interval is the evaluation period (default 500ms — the controller
	// must fit detection plus action well inside the 10s budget).
	Interval time.Duration
	// PlanBudget bounds one Algorithm 1 planning pass (default half of
	// power.FlexLatencyBudget, leaving the other half for actuation). A
	// pass that exceeds it is aborted and its partial plan enforced — a
	// truncated plan still sheds real power inside the tolerance window.
	PlanBudget time.Duration
	// InactiveThreshold is the capacity fraction below which a UPS is
	// considered out of service (default 0.02).
	InactiveThreshold float64
	// Metrics, when non-nil, records step outcomes and the shed-latency
	// histograms. Multi-primary instances of one room may share an
	// instance; the counters aggregate.
	Metrics *Metrics
	// Tracer, when non-nil, records a detect→plan→act trace for every
	// round that observes an overdraw. When the triggering UPS sample
	// carries ingest stamps, the trace opens at the sample's MeasuredAt
	// with sample/queue/view spans ahead of detect — the full
	// meter-to-actuation waterfall.
	Tracer *obs.Tracer
	// Stages, when non-nil, receives per-stage critical-path latencies
	// (sample/queue/view/detect/plan/act) for every completed overdraw
	// round, each observation carrying an exemplar joining it to the
	// episode, trace, and detect event. Fleet controllers share one
	// instance per fleet so the histograms aggregate.
	Stages *obs.StageMetrics
	// Recorder, when non-nil, logs the causal event chain of every
	// overdraw round — detect (caused by the UPS sample-arrive event it
	// read), plan start/commit/abort, each planned action, and the
	// actuations they dispatch — under a per-episode ID allocated from
	// the recorder. Traces started by Tracer carry the same episode ID,
	// so /traces and /events are joinable.
	Recorder *recorder.Recorder
}

// StepOutcome describes one evaluation round.
type StepOutcome struct {
	// Overdraw is true when some UPS exceeded limit−buffer.
	Overdraw bool
	// Planned actions this round. Nil when there was no overdraw — and
	// also on overdraw rounds that defer on stale telemetry or whose Plan
	// call fails, so Overdraw && Planned == nil does occur.
	Planned []PlannedAction
	// Enforced counts successfully enforced actions.
	Enforced int
	// EnforceErrors counts actuation failures.
	EnforceErrors int
	// Insufficient is true when shaveable power ran out before safety.
	Insufficient bool
	// PlanAborted is true when the planning pass hit Config.PlanBudget (or
	// the step's ctx) and the enforced plan is the truncated prefix.
	PlanAborted bool
	// Restored counts racks restored during recovery.
	Restored int
}

// Controller is one Flex-Online primary.
type Controller struct {
	cfg Config

	mu            sync.Mutex
	acted         map[string]PlannedAction // rack → action we enforced
	steps         int
	lastEnforceAt time.Time
	// overdrawSince is when the current overdraw episode was first seen
	// (zero when no episode is open); episodeActed records whether this
	// instance enforced anything during it. Together they drive the
	// first-action and shed-latency histograms.
	overdrawSince time.Time
	episodeActed  bool
	// episode is the flight-recorder episode ID of the open overdraw
	// episode (0 when none is open or no recorder is wired).
	episode uint64
}

// DefaultInactiveThreshold is the capacity fraction below which a UPS is
// considered out of service when Config.InactiveThreshold is zero.
const DefaultInactiveThreshold = 0.02

// DefaultBuffer is the safety margin used when Config.Buffer is zero: 1%
// of the smallest UPS capacity. Exported so episode-log headers and
// replay reconstruct the same margin the controller ran with.
func DefaultBuffer(topo *power.Topology) power.Watts {
	min := topo.UPSes[0].Capacity
	for _, u := range topo.UPSes {
		if u.Capacity < min {
			min = u.Capacity
		}
	}
	return power.Watts(0.01 * float64(min))
}

// New creates a controller.
func New(cfg Config) *Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.InactiveThreshold == 0 {
		cfg.InactiveThreshold = DefaultInactiveThreshold
	}
	if cfg.PlanBudget <= 0 {
		cfg.PlanBudget = power.FlexLatencyBudget / 2
	}
	if cfg.Buffer == 0 {
		cfg.Buffer = DefaultBuffer(cfg.Topo)
	}
	return &Controller{cfg: cfg, acted: make(map[string]PlannedAction)}
}

// snapshotUPS builds the UPS power vector from the view; UPSes without a
// reading are assumed at full capacity (the safe direction: missing data
// must trigger shaving, not mask an overload — §IV-C notes unreliable
// telemetry leads to conservative action). It also returns the newest
// measurement time, which gates re-enforcement, and the flight-recorder
// sample-arrive sequence per UPS (0 when unrecorded), which roots the
// detect event's causal chain.
func (c *Controller) snapshotUPS() ([]power.Watts, time.Time, []uint64) {
	out := make([]power.Watts, len(c.cfg.Topo.UPSes))
	events := make([]uint64, len(c.cfg.Topo.UPSes))
	var newest time.Time
	for u := range c.cfg.Topo.UPSes {
		if v, at, ev, ok := c.cfg.UPSView.GetEvent(c.cfg.Topo.UPSes[u].Name); ok {
			out[u] = v
			events[u] = ev
			if at.After(newest) {
				newest = at
			}
		} else {
			out[u] = c.cfg.Topo.UPSes[u].Capacity
		}
	}
	return out, newest, events
}

// Step runs one evaluation round with no external cancellation point:
// StepContext(context.Background()). The planning budget still applies.
func (c *Controller) Step() StepOutcome {
	//flexlint:ignore ctxflow deprecated ctx-less shorthand; live callers use StepContext
	return c.StepContext(context.Background())
}

// StepContext runs one evaluation round: read snapshots, detect overdraw,
// plan and enforce corrective actions; or, when the failed supply has
// returned and headroom allows, restore previously acted racks. Planning
// runs under ctx bounded by Config.PlanBudget; an aborted pass enforces
// whatever partial plan it produced.
func (c *Controller) StepContext(ctx context.Context) (out StepOutcome) {
	defer func() { c.cfg.Metrics.recordStep(&out) }()

	var stepStart time.Time
	if c.cfg.Tracer != nil || c.cfg.Stages != nil {
		stepStart = c.cfg.Clock.Now()
	}

	c.mu.Lock()
	c.steps++
	acted := make(map[string]bool, len(c.acted))
	for id := range c.acted {
		acted[id] = true
	}
	c.mu.Unlock()

	ups, measuredAt, upsEvents := c.snapshotUPS()
	inactive := InferInactiveUPSes(c.cfg.Topo, ups, c.cfg.InactiveThreshold)
	var rackPower map[string]power.Watts
	if c.cfg.RackEstimator != nil {
		rackPower = c.cfg.RackEstimator.BoundSnapshot(-1)
	} else {
		rackPower = c.cfg.RackView.Snapshot()
	}

	over := false
	worst := -1
	var worstExcess power.Watts
	for u := range c.cfg.Topo.UPSes {
		if inactive[power.UPSID(u)] {
			continue
		}
		if excess := ups[u] - (c.cfg.Topo.UPSes[u].Capacity - c.cfg.Buffer); excess > 0 {
			over = true
			if worst < 0 || excess > worstExcess {
				worst, worstExcess = u, excess
			}
		}
	}

	rec := c.cfg.Recorder
	if over {
		out.Overdraw = true
		now := c.cfg.Clock.Now()
		c.mu.Lock()
		newEpisode := c.overdrawSince.IsZero()
		if newEpisode {
			c.overdrawSince = now
			c.episodeActed = false
		}
		episode := c.episode
		c.mu.Unlock()
		if newEpisode {
			c.cfg.Metrics.incEpisode()
			episode = rec.NextEpisode() // 0 when unrecorded
			c.mu.Lock()
			c.episode = episode
			c.mu.Unlock()
		}
		var detectSeq uint64
		if rec != nil {
			detectSeq = rec.Emit(recorder.Event{
				Type:    recorder.TypeOverdrawDetect,
				Time:    now,
				Actor:   c.cfg.Name,
				Subject: c.cfg.Topo.UPSes[worst].Name,
				Value:   float64(ups[worst]),
				Score:   float64(c.cfg.Topo.UPSes[worst].Capacity),
				Cause:   upsEvents[worst],
				Episode: episode,
			})
		}
		// The ingest stamps of the sample that triggered detection open
		// the waterfall: how old the reading already was when this round
		// looked at it, split into sample/queue/view stages.
		stamps, _ := c.cfg.UPSView.GetStamps(c.cfg.Topo.UPSes[worst].Name)
		var tr *obs.Trace
		if c.cfg.Tracer != nil {
			traceStart := stepStart
			if !stamps.MeasuredAt.IsZero() {
				traceStart = stamps.MeasuredAt
			}
			tr = c.cfg.Tracer.Start("flex-online/"+c.cfg.Name, traceStart)
			tr.SetEpisode(episode)
			tr.SetRoot(detectSeq)
			if !stamps.MeasuredAt.IsZero() && !stamps.PublishedAt.IsZero() {
				tr.Span("sample", stamps.MeasuredAt, stamps.PublishedAt)
			}
			if !stamps.PublishedAt.IsZero() && !stamps.DequeuedAt.IsZero() {
				tr.Span("queue", stamps.PublishedAt, stamps.DequeuedAt)
			}
			if !stamps.DequeuedAt.IsZero() && !stamps.DequeuedAt.After(stepStart) {
				tr.Span("view", stamps.DequeuedAt, stepStart)
			}
			tr.Span("detect", stepStart, now)
		}
		// Do not pile further actions onto a snapshot that predates our
		// last enforcement: the measurements do not yet reflect the power
		// already shed, and re-planning on them overcorrects far beyond
		// the paper's benign idempotent-duplicate case. Wait for fresh
		// telemetry (≤1.5s, §IV-D) instead — still well inside the
		// 10-second budget.
		c.mu.Lock()
		stale := len(c.acted) > 0 && !measuredAt.After(c.lastEnforceAt)
		c.mu.Unlock()
		if stale {
			c.cfg.Metrics.incStaleSkip()
			if rec != nil {
				rec.Emit(recorder.Event{
					Type:    recorder.TypeStaleSkip,
					Time:    now,
					Actor:   c.cfg.Name,
					Cause:   detectSeq,
					Episode: episode,
				})
			}
			if tr != nil {
				tr.SetNote("stale-skip")
				tr.Finish(now)
			}
			return out
		}
		var planSeq uint64
		if rec != nil {
			planSeq = rec.Emit(recorder.Event{
				Type:    recorder.TypePlanStart,
				Time:    now,
				Actor:   c.cfg.Name,
				Cause:   detectSeq,
				Episode: episode,
				Aux:     int64(len(acted)),
			})
		}
		planCtx, cancelPlan := context.WithTimeout(ctx, c.cfg.PlanBudget)
		actions, insufficient, err := PlanContext(planCtx, PlanInput{
			Topo:      c.cfg.Topo,
			Racks:     c.cfg.Racks,
			UPSPower:  ups,
			RackPower: rackPower,
			Inactive:  inactive,
			Scenario:  c.cfg.Scenario,
			Buffer:    c.cfg.Buffer,
			Acted:     acted,
		})
		aborted := err != nil && planCtx.Err() != nil
		cancelPlan()
		var planEnd time.Time
		if tr != nil || rec != nil || c.cfg.Stages != nil {
			planEnd = c.cfg.Clock.Now()
		}
		if tr != nil {
			tr.Span("plan", now, planEnd)
		}
		if aborted {
			// Budget (or the caller's ctx) expired mid-plan: keep the
			// partial plan — enforcing what Algorithm 1 got to beats
			// enforcing nothing inside the tolerance window.
			c.cfg.Metrics.incPlanAbort()
			out.PlanAborted = true
			if tr != nil {
				tr.SetNote("plan-abort")
			}
		} else if err != nil {
			c.cfg.Metrics.incPlanError()
			if rec != nil {
				rec.Emit(recorder.Event{
					Type:    recorder.TypePlanError,
					Time:    planEnd,
					Actor:   c.cfg.Name,
					Cause:   planSeq,
					Episode: episode,
					Detail:  err.Error(),
				})
			}
			if tr != nil {
				tr.SetNote("plan-error")
				tr.Finish(planEnd)
			}
			return out
		}
		out.Planned = actions
		out.Insufficient = insufficient
		var plannedSeqs []uint64
		if rec != nil {
			plannedSeqs = make([]uint64, len(actions))
			var total float64
			for i, a := range actions {
				total += float64(a.Recovered)
				plannedSeqs[i] = rec.Emit(recorder.Event{
					Type:    recorder.TypeActionPlanned,
					Time:    planEnd,
					Actor:   c.cfg.Name,
					Subject: a.Rack,
					Value:   float64(a.Recovered),
					Score:   a.Impact,
					Aux:     int64(a.Kind),
					Detail:  a.Workload,
					Cause:   planSeq,
					Episode: episode,
				})
			}
			commit := recorder.Event{
				Type:    recorder.TypePlanCommit,
				Time:    planEnd,
				Actor:   c.cfg.Name,
				Cause:   planSeq,
				Episode: episode,
				Aux:     int64(len(actions)),
				Value:   total,
			}
			if aborted {
				commit.Type = recorder.TypePlanAbort
			} else if insufficient {
				commit.Detail = "insufficient"
			}
			rec.Emit(commit)
		}
		for i, a := range actions {
			var err error
			op := rackmgr.Op{Actor: c.cfg.Name, Episode: episode}
			if plannedSeqs != nil {
				op.Cause = plannedSeqs[i]
			}
			switch a.Kind {
			case Shutdown:
				err = c.cfg.Actuator.ShutdownOp(a.Rack, op)
			case Throttle:
				err = c.cfg.Actuator.ThrottleOp(a.Rack, a.CapTarget, op)
			}
			if err != nil {
				out.EnforceErrors++
				continue
			}
			out.Enforced++
			enforcedAt := c.cfg.Clock.Now()
			c.mu.Lock()
			c.acted[a.Rack] = a
			c.lastEnforceAt = enforcedAt
			first := !c.episodeActed
			c.episodeActed = true
			since := c.overdrawSince
			c.mu.Unlock()
			if first {
				c.cfg.Metrics.observeFirstAction(enforcedAt.Sub(since))
			}
		}
		if tr != nil || c.cfg.Stages != nil {
			actEnd := c.cfg.Clock.Now()
			if tr != nil {
				tr.Span("act", planEnd, actEnd)
				if out.Insufficient {
					tr.SetNote("insufficient")
				}
				tr.Finish(actEnd)
			}
			ex := obs.Exemplar{Episode: episode, Seq: detectSeq, At: actEnd}
			if tr != nil {
				ex.Trace = tr.Seq
			}
			c.observeStages(stamps, stepStart, now, planEnd, actEnd, ex)
		}
		return out
	}

	// No overdraw: close any open episode and record how long detection to
	// the final enforcement took — the latency that must fit the 10s UPS
	// overload tolerance.
	c.mu.Lock()
	since := c.overdrawSince
	episodeActed := c.episodeActed
	last := c.lastEnforceAt
	episode := c.episode
	c.overdrawSince = time.Time{}
	c.episodeActed = false
	c.episode = 0
	c.mu.Unlock()
	shed := !since.IsZero() && episodeActed && !last.Before(since)
	if shed {
		c.cfg.Metrics.observeShed(last.Sub(since))
	}
	if rec != nil && !since.IsZero() {
		e := recorder.Event{
			Type:    recorder.TypeEpisodeClose,
			Time:    c.cfg.Clock.Now(),
			Actor:   c.cfg.Name,
			Episode: episode,
		}
		if shed {
			e.Value = last.Sub(since).Seconds()
		}
		rec.Emit(e)
	}

	// Recovery: when no UPS is inactive, restore as many acted racks as
	// the measured headroom safely allows — all of them after the failed
	// supply returns and load normalizes (paper Figure 13, stages F–G),
	// or a partial subset when the power draw merely "falls
	// significantly" during a long maintenance window (§IV-D: "some power
	// caps may be lifted or servers restored to reduce the impact").
	c.mu.Lock()
	n := len(c.acted)
	c.mu.Unlock()
	if n == 0 || len(inactive) > 0 {
		return out
	}
	c.mu.Lock()
	restoreSet := make([]PlannedAction, 0, len(c.acted))
	for _, a := range c.acted {
		restoreSet = append(restoreSet, a)
	}
	c.mu.Unlock()
	// Restore cheapest-impact actions first: throttled racks before shut
	// down ones (lifting a cap is instantaneous and risk-free; a restart
	// adds inrush and boot time), then by recovered power ascending so
	// marginal headroom frees the most racks.
	sort.Slice(restoreSet, func(i, j int) bool {
		if (restoreSet[i].Kind == Throttle) != (restoreSet[j].Kind == Throttle) {
			return restoreSet[i].Kind == Throttle
		}
		if restoreSet[i].Recovered != restoreSet[j].Recovered {
			return restoreSet[i].Recovered < restoreSet[j].Recovered
		}
		return restoreSet[i].Rack < restoreSet[j].Rack
	})
	proj := append([]power.Watts(nil), ups...)
	for _, a := range restoreSet {
		rk := c.rackByID(a.Rack)
		if rk == nil {
			continue
		}
		// Would returning this rack's power keep every UPS safe?
		cand := append([]power.Watts(nil), proj...)
		applyRecovery(c.cfg.Topo, cand, nil, rk.Pair, -a.Recovered)
		safe := true
		for u := range c.cfg.Topo.UPSes {
			if cand[u] > c.cfg.Topo.UPSes[u].Capacity-c.cfg.Buffer {
				safe = false
				break
			}
		}
		if !safe {
			continue
		}
		if err := c.cfg.Actuator.RestoreOp(a.Rack, rackmgr.Op{Actor: c.cfg.Name}); err != nil {
			out.EnforceErrors++
			continue
		}
		proj = cand
		out.Restored++
		c.mu.Lock()
		delete(c.acted, a.Rack)
		c.mu.Unlock()
	}
	return out
}

// observeStages folds one completed overdraw round into the per-stage
// latency histograms (Config.Stages). Stamp-derived stages are skipped
// when the triggering sample predates stamping; compute stages are
// always observed. Durations are clamped at zero — async ingest can
// install a sample mid-step, making the view stage marginally negative.
func (c *Controller) observeStages(st telemetry.Stamps, stepStart, detect, planEnd, actEnd time.Time, ex obs.Exemplar) {
	sm := c.cfg.Stages
	if sm == nil {
		return
	}
	if !st.MeasuredAt.IsZero() && !st.PublishedAt.IsZero() {
		sm.ObserveExemplar(obs.StageSample, nonNeg(st.PublishedAt.Sub(st.MeasuredAt)), ex)
	}
	if !st.PublishedAt.IsZero() && !st.DequeuedAt.IsZero() {
		sm.ObserveExemplar(obs.StageQueue, nonNeg(st.DequeuedAt.Sub(st.PublishedAt)), ex)
	}
	if !st.DequeuedAt.IsZero() {
		sm.ObserveExemplar(obs.StageView, nonNeg(stepStart.Sub(st.DequeuedAt)), ex)
	}
	sm.ObserveExemplar(obs.StageDetect, nonNeg(detect.Sub(stepStart)), ex)
	sm.ObserveExemplar(obs.StagePlan, nonNeg(planEnd.Sub(detect)), ex)
	sm.ObserveExemplar(obs.StageAct, nonNeg(actEnd.Sub(planEnd)), ex)
}

func nonNeg(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

func (c *Controller) rackByID(id string) *ManagedRack {
	for i := range c.cfg.Racks {
		if c.cfg.Racks[i].ID == id {
			return &c.cfg.Racks[i]
		}
	}
	return nil
}

// Run evaluates repeatedly until ctx is cancelled. Each round runs as
// StepContext(ctx), so cancellation also aborts an in-flight planning
// pass.
func (c *Controller) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		c.StepContext(ctx)
		select {
		case <-ctx.Done():
			return
		case <-c.cfg.Clock.After(c.cfg.Interval):
		}
	}
}

// OpenEpisode reports the controller's open overdraw episode: the
// flight-recorder episode ID (0 when unrecorded), when the overdraw was
// first observed, and whether an episode is open at all. The SLO
// auditor reads this to attribute shed-budget burn to the episode its
// breach events must join.
func (c *Controller) OpenEpisode() (id uint64, since time.Time, open bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.episode, c.overdrawSince, !c.overdrawSince.IsZero()
}

// CommittedActions returns a copy of the actions this controller has
// enforced and not yet restored, plus the time of the last enforcement.
// The auditor uses the recovered watts to compute per-UPS headroom under
// the committed plan while telemetry still predates the enforcement.
func (c *Controller) CommittedActions() ([]PlannedAction, time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PlannedAction, 0, len(c.acted))
	for _, a := range c.acted {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rack < out[j].Rack })
	return out, c.lastEnforceAt
}

// ActedRacks returns the racks this controller has acted on and not yet
// restored.
func (c *Controller) ActedRacks() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.acted))
	for id := range c.acted {
		out = append(out, id)
	}
	return out
}

// Steps reports how many evaluation rounds have run.
func (c *Controller) Steps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}
