package controller

import (
	"testing"

	"flex/internal/impact"
	"flex/internal/obs/recorder"
	"flex/internal/power"
)

// findEvent returns the first event matching pred, or nil.
func findEvent(events []recorder.Event, pred func(*recorder.Event) bool) *recorder.Event {
	for i := range events {
		if pred(&events[i]) {
			return &events[i]
		}
	}
	return nil
}

// TestRecorderCausalChain drives one overdraw through a recorded
// controller and walks the full Cause chain: triggering UPS sample →
// overdraw detection → plan start → planned action → dispatch → ack.
func TestRecorderCausalChain(t *testing.T) {
	h := newHarness(t)
	rec := recorder.New(0)
	h.upsView.SetRecorder(rec, "ups-view")
	h.rackView.SetRecorder(rec, "rack-view")
	h.mgr.Recorder = rec
	c := New(Config{
		Name:     "ctl-1",
		Clock:    h.clk,
		Topo:     h.topo,
		Racks:    h.racks,
		UPSView:  h.upsView,
		RackView: h.rackView,
		Actuator: h.mgr,
		Scenario: impact.Realistic1(),
		Buffer:   power.KW,
		Recorder: rec,
	})

	h.feed([]power.Watts{80 * power.KW, 80 * power.KW, 80 * power.KW, 80 * power.KW})
	if out := c.Step(); out.Overdraw {
		t.Fatal("normal operation flagged overdraw")
	}
	if e := findEvent(rec.Snapshot(), func(e *recorder.Event) bool { return e.Type == recorder.TypeOverdrawDetect }); e != nil {
		t.Fatalf("overdraw event without overdraw: %+v", *e)
	}

	h.feed([]power.Watts{0, 107 * power.KW, 106 * power.KW, 107 * power.KW})
	out := c.Step()
	if !out.Overdraw || out.Enforced == 0 {
		t.Fatalf("overdraw not enforced: %+v", out)
	}

	events := rec.Snapshot()
	detect := findEvent(events, func(e *recorder.Event) bool { return e.Type == recorder.TypeOverdrawDetect })
	if detect == nil {
		t.Fatal("no overdraw-detect event")
	}
	if detect.Episode == 0 {
		t.Fatal("detection did not open an episode")
	}
	if detect.Actor != "ctl-1" {
		t.Fatalf("detect actor = %q", detect.Actor)
	}

	// Root of the chain: the UPS sample-arrive the detection was made from.
	arrive := findEvent(events, func(e *recorder.Event) bool { return e.Seq == detect.Cause })
	if arrive == nil || arrive.Type != recorder.TypeSampleArrive {
		t.Fatalf("detect cause %d is not a sample-arrive event: %+v", detect.Cause, arrive)
	}
	if arrive.Actor != "ups-view" || arrive.Subject != detect.Subject {
		t.Fatalf("detect %q rooted at arrive %q/%q", detect.Subject, arrive.Actor, arrive.Subject)
	}

	planStart := findEvent(events, func(e *recorder.Event) bool {
		return e.Type == recorder.TypePlanStart && e.Cause == detect.Seq
	})
	if planStart == nil {
		t.Fatal("no plan-start chained to the detection")
	}
	commit := findEvent(events, func(e *recorder.Event) bool {
		return e.Type == recorder.TypePlanCommit && e.Cause == planStart.Seq
	})
	if commit == nil {
		t.Fatal("no plan-commit chained to the plan-start")
	}
	if commit.Aux != int64(len(out.Planned)) {
		t.Fatalf("commit counts %d actions, controller planned %d", commit.Aux, len(out.Planned))
	}

	var planned []*recorder.Event
	for i := range events {
		e := &events[i]
		if e.Type == recorder.TypeActionPlanned && e.Cause == planStart.Seq {
			planned = append(planned, e)
		}
	}
	if len(planned) != len(out.Planned) {
		t.Fatalf("%d action-planned events, %d planned actions", len(planned), len(out.Planned))
	}
	for i, pe := range planned {
		a := out.Planned[i]
		if pe.Subject != a.Rack || pe.Aux != int64(a.Kind) {
			t.Fatalf("planned event %d = %q/%v, action = %q/%v", i, pe.Subject, pe.Aux, a.Rack, a.Kind)
		}
		if pe.Episode != detect.Episode {
			t.Fatalf("planned event episode %d, detect episode %d", pe.Episode, detect.Episode)
		}
		dispatch := findEvent(events, func(e *recorder.Event) bool {
			return e.Type == recorder.TypeActionDispatch && e.Cause == pe.Seq
		})
		if dispatch == nil {
			t.Fatalf("no dispatch chained to planned action %s", a.Rack)
		}
		ack := findEvent(events, func(e *recorder.Event) bool {
			return e.Type == recorder.TypeActionAck && e.Cause == dispatch.Seq
		})
		if ack == nil {
			t.Fatalf("no ack chained to dispatch for %s", a.Rack)
		}
		if ack.Subject != a.Rack || ack.Aux != 1 {
			t.Fatalf("ack %+v not an effective action on %s", *ack, a.Rack)
		}
	}

	// The /events?episode=N&causes=1 view must contain the whole chain,
	// including the zero-episode sample-arrive pulled in through Cause
	// links.
	chain := recorder.ApplyFilter(events, recorder.Filter{Episode: detect.Episode, WithCauses: true})
	want := map[uint64]bool{arrive.Seq: true, detect.Seq: true, planStart.Seq: true, commit.Seq: true}
	for _, pe := range planned {
		want[pe.Seq] = true
	}
	for _, e := range chain {
		delete(want, e.Seq)
	}
	if len(want) != 0 {
		t.Fatalf("episode closure missing %d chain events: %v", len(want), want)
	}

	// Recovery closes the episode and restores through the same provenance
	// path.
	h.feed([]power.Watts{80 * power.KW, 60 * power.KW, 60 * power.KW, 60 * power.KW})
	if out := c.Step(); out.Restored == 0 {
		t.Fatalf("no restores after recovery: %+v", out)
	}
	events = rec.Snapshot()
	closeEv := findEvent(events, func(e *recorder.Event) bool { return e.Type == recorder.TypeEpisodeClose })
	if closeEv == nil || closeEv.Episode != detect.Episode {
		t.Fatalf("episode not closed: %+v", closeEv)
	}
	restore := findEvent(events, func(e *recorder.Event) bool {
		return e.Type == recorder.TypeActionAck && e.Detail == "restore" && e.Actor == "ctl-1"
	})
	if restore == nil {
		t.Fatal("no recorded restore ack")
	}
}
