package placement

import (
	"flex/internal/power"
	"flex/internal/workload"
)

// StrandedPower is Eq. 5: the room's allocatable power minus the total
// allocated (placed) power — the power made unusable by fragmentation or
// by lack of workload diversity. For a full zero-reserved-power room the
// allocatable power is the entire provisioned power.
func (p *Placement) StrandedPower() power.Watts {
	stranded := p.Room.AllocatablePower() - p.PairLoad().Total()
	if stranded < 0 {
		return 0
	}
	return stranded
}

// StrandedFraction is StrandedPower relative to allocatable power — the
// Y-axis of the paper's Figure 9.
func (p *Placement) StrandedFraction() float64 {
	return float64(p.StrandedPower()) / float64(p.Room.AllocatablePower())
}

// ThrottlingImbalance is the paper's fairness metric (§V-A): for every UPS
// maintenance event f, compute on every other UPS u the worst-case power
// that must be recovered through throttling (after shutting down all
// software-redundant racks), as a fraction r_u^f of that UPS's provisioned
// capacity; the imbalance is max(r) − min(r) across all (f, u). Zero means
// perfectly balanced throttling burden — the Y-axis of Figure 10.
func (p *Placement) ThrottlingImbalance() float64 {
	topo := p.Room.Topo
	// Non-SR pair loads at full allocation (worst case, 100% utilization).
	nonSR := power.NewPairLoad(topo)
	for _, d := range p.Deployments {
		pid, ok := p.Assignments[d.ID]
		if !ok || d.Category == workload.SoftwareRedundant {
			continue
		}
		nonSR[pid] += d.TotalPower()
	}
	first := true
	var maxR, minR float64
	for f := range topo.UPSes {
		loads := topo.FailoverLoads(nonSR, power.UPSID(f))
		for u := range topo.UPSes {
			if u == f {
				continue
			}
			need := float64(loads[u] - topo.UPSes[u].Capacity)
			if need < 0 {
				need = 0
			}
			r := need / float64(topo.UPSes[u].Capacity)
			if first {
				maxR, minR = r, r
				first = false
			} else {
				if r > maxR {
					maxR = r
				}
				if r < minR {
					minR = r
				}
			}
		}
	}
	if first {
		return 0
	}
	return maxR - minR
}

// PlacedPowerByCategory returns the placed power per workload category.
func (p *Placement) PlacedPowerByCategory() map[workload.Category]power.Watts {
	out := make(map[workload.Category]power.Watts, 3)
	for _, d := range p.Deployments {
		if _, ok := p.Assignments[d.ID]; ok {
			out[d.Category] += d.TotalPower()
		}
	}
	return out
}

// UPSUtilization returns each UPS's normal-operation allocated load as a
// fraction of its capacity.
func (p *Placement) UPSUtilization() []float64 {
	topo := p.Room.Topo
	loads := topo.UPSLoads(p.PairLoad())
	out := make([]float64, len(loads))
	for u, w := range loads {
		out[u] = float64(w) / float64(topo.UPSes[u].Capacity)
	}
	return out
}
