package placement

import (
	"math/rand"
	"testing"

	"flex/internal/power"
	"flex/internal/workload"
)

// TestGreedyBatchFallback exercises the path used when the ILP returns no
// incumbent: largest-first first-fit placement must still be safe.
func TestGreedyBatchFallback(t *testing.T) {
	room := PaperRoom()
	s := newState(room)
	cfg := workload.DefaultTraceConfig(room.Topo.ProvisionedPower())
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	f := FlexOffline{BatchFraction: 1}
	f.greedyBatch(s, trace)
	pl := s.result(trace)
	if err := pl.Validate(); err != nil {
		t.Fatalf("greedy fallback produced unsafe placement: %v", err)
	}
	if len(pl.Placed()) == 0 {
		t.Fatal("greedy fallback placed nothing")
	}
	// Largest-first: the biggest deployment must be placed (it fits an
	// empty room).
	maxPow := power.Watts(0)
	var maxID int
	for _, d := range trace {
		if d.TotalPower() > maxPow {
			maxPow, maxID = d.TotalPower(), d.ID
		}
	}
	if _, ok := pl.Assignments[maxID]; !ok {
		t.Fatal("largest deployment rejected by greedy fallback in an empty room")
	}
}

// TestPlaceInComboBestFit verifies the best-fit-by-space rule.
func TestPlaceInComboBestFit(t *testing.T) {
	room := PaperRoom()
	s := newState(room)
	combos := CombosOf(room.Topo)
	cb := combos[0]
	// Pre-fill the first pair of the combo so it has less space.
	filler := workload.Deployment{ID: 100, Workload: "w", Category: workload.SoftwareRedundant,
		Racks: 50, PowerPerRack: power.KW, FlexPowerFraction: 0}
	s.place(filler, cb.Pairs[0])
	d := workload.Deployment{ID: 101, Workload: "w", Category: workload.SoftwareRedundant,
		Racks: 10, PowerPerRack: power.KW, FlexPowerFraction: 0}
	f := FlexOffline{BatchFraction: 1}
	if !f.placeInCombo(s, cb, d) {
		t.Fatal("placeInCombo failed with ample space")
	}
	// Best fit = smallest sufficient free space = the pre-filled pair
	// (10 slots free) over the empty ones (60 free).
	if got := s.placed[101]; got != cb.Pairs[0] {
		t.Fatalf("placed on pair %d, want best-fit pair %d", got, cb.Pairs[0])
	}
	// When nothing in the combo fits, it must report false.
	big := workload.Deployment{ID: 102, Workload: "w", Category: workload.SoftwareRedundant,
		Racks: 61, PowerPerRack: power.KW, FlexPowerFraction: 0}
	if f.placeInCombo(s, cb, big) {
		t.Fatal("placeInCombo accepted an oversized deployment")
	}
}

// TestPackBinsEffortCap: pathological inputs fall back gracefully.
func TestPackBins(t *testing.T) {
	mk := func(racks ...int) []workload.Deployment {
		out := make([]workload.Deployment, len(racks))
		for i, r := range racks {
			out[i] = workload.Deployment{ID: i, Racks: r, PowerPerRack: power.KW,
				Category: workload.SoftwareRedundant, Workload: "w"}
		}
		return out
	}
	// Exact packing exists: 20+20+20 into 60? bins {60}: all fit one bin.
	if _, ok := packBins(mk(20, 20, 20), []int{60}); !ok {
		t.Fatal("trivial packing failed")
	}
	// 7×20 into 3×50 is unpackable (the case that motivated packBins).
	if _, ok := packBins(mk(20, 20, 20, 20, 20, 20, 20), []int{50, 50, 50}); ok {
		t.Fatal("unpackable input packed")
	}
	// But 6×20 + 2×10 + 2×5 into 3×50 works (50 = 20+20+10 twice, 20+20+5+5).
	assign, ok := packBins(mk(20, 20, 20, 20, 20, 20, 10, 10, 5, 5), []int{50, 50, 50})
	if !ok {
		t.Fatal("feasible packing not found")
	}
	// Verify the assignment respects capacities.
	used := map[int]int{}
	ds := mk(20, 20, 20, 20, 20, 20, 10, 10, 5, 5)
	for i, b := range assign {
		used[b] += ds[i].Racks
	}
	for b, u := range used {
		if u > 50 {
			t.Fatalf("bin %d overfilled: %d", b, u)
		}
	}
}
