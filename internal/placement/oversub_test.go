package placement

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"flex/internal/power"
	"flex/internal/workload"
)

func TestOversubscriptionRaisesAllocatable(t *testing.T) {
	topo := PaperRoom().Topo
	room, err := NewRoom(topo, 80)
	if err != nil {
		t.Fatal(err)
	}
	room.Oversubscription = 1.15
	// Limit = 2.4MW × 1 × 1.15.
	want := power.Watts(1.15 * 2.4e6)
	if got := room.NormalLimit(0); math.Abs(float64(got-want)) > 1 {
		t.Fatalf("NormalLimit = %v, want %v", got, want)
	}
	// Oversubscription below 1 is treated as 1.
	room.Oversubscription = 0.5
	if got := room.NormalLimit(0); got != 2.4*power.MW {
		t.Fatalf("sub-1 oversubscription limit = %v, want 2.4MW", got)
	}
}

// TestOversubscriptionPlacesMorePower: composing oversubscription with
// Flex (paper §I: "Oversubscription can be used in addition to Flex to
// further increase server density").
func TestOversubscriptionPlacesMorePower(t *testing.T) {
	topo := PaperRoom().Topo
	cfg := workload.DefaultTraceConfig(topo.ProvisionedPower())
	cfg.TargetDemand = power.Watts(1.4 * float64(topo.ProvisionedPower()))
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	pol := FlexOffline{BatchFraction: 0.5, MaxNodes: 150}

	base, _ := NewRoom(topo, 120)
	plBase, err := pol.Place(context.Background(), base, trace)
	if err != nil {
		t.Fatal(err)
	}
	over, _ := NewRoom(topo, 120)
	over.Oversubscription = 1.15
	plOver, err := pol.Place(context.Background(), over, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := plOver.Validate(); err != nil {
		t.Fatal(err)
	}
	gain := float64(plOver.PairLoad().Total())/float64(plBase.PairLoad().Total()) - 1
	if gain < 0.08 {
		t.Fatalf("oversubscription gain only %.1f%%", gain*100)
	}
	// Worst-case realized draw (nameplate/1.15) stays failover-safe.
	capLoad := plOver.CapPairLoad()
	for f := range topo.UPSes {
		if !topo.FailoverWithinCapacity(capLoad, power.UPSID(f)) {
			t.Fatalf("oversubscribed room unsafe for failure of UPS %d", f)
		}
		out := topo.SimulateCascade(capLoad, power.UPSID(f), power.EndOfLifeTripCurve, time.Hour)
		if out.Outage {
			t.Fatalf("cascade on failure of UPS %d", f)
		}
	}
}

func TestOversubscriptionValidateConsistency(t *testing.T) {
	// A placement valid under O=1.15 must fail validation when re-checked
	// with O=1 (the allocation exceeds the unscaled limits).
	topo := PaperRoom().Topo
	cfg := workload.DefaultTraceConfig(topo.ProvisionedPower())
	cfg.TargetDemand = power.Watts(1.4 * float64(topo.ProvisionedPower()))
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	over, _ := NewRoom(topo, 120)
	over.Oversubscription = 1.15
	pol := FlexOffline{BatchFraction: 0.5, MaxNodes: 150}
	pl, err := pol.Place(context.Background(), over, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	if float64(pl.PairLoad().Total()) <= float64(topo.ProvisionedPower()) {
		t.Skip("trace did not exceed nameplate; cannot test downgrade")
	}
	pl.Room.Oversubscription = 1
	if err := pl.Validate(); err == nil {
		t.Fatal("placement beyond nameplate must fail at O=1")
	}
}

func TestPairCapacityConstraint(t *testing.T) {
	topo := PaperRoom().Topo
	room, _ := NewRoom(topo, 60)
	room.PairCapacity = 400 * power.KW
	cfg := workload.DefaultTraceConfig(topo.ProvisionedPower())
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{BalancedRoundRobin{}, FlexOffline{BatchFraction: 0.5, MaxNodes: 150}} {
		pl, err := pol.Place(context.Background(), room, trace)
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		// Every pair within rating.
		pairPow := power.NewPairLoad(topo)
		for _, d := range pl.Placed() {
			pairPow[pl.Assignments[d.ID]] += d.TotalPower()
		}
		for pid, w := range pairPow {
			if w > 400*power.KW+power.CapacityTolerance {
				t.Fatalf("%s: pair %d at %v over 400kW rating", pol.Name(), pid, w)
			}
		}
		// The rating binds: total placed cannot exceed 18 × 400kW.
		if pl.PairLoad().Total() > 18*400*power.KW+power.CapacityTolerance {
			t.Fatalf("%s: total %v over aggregate rating", pol.Name(), pl.PairLoad().Total())
		}
	}
	// Validate catches a hand-built violation.
	d := workload.Deployment{ID: 0, Workload: "w", Category: workload.NonRedundantCapable,
		Racks: 40, PowerPerRack: 14.4 * power.KW, FlexPowerFraction: 0.8} // 576kW
	bad := &Placement{Room: room, Deployments: []workload.Deployment{d},
		Assignments: map[int]power.PDUPairID{0: 0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected pair-capacity violation")
	}
}
