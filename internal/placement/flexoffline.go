package placement

import (
	"context"
	"fmt"
	"sort"
	"time"

	"flex/internal/lp"
	"flex/internal/milp"
	"flex/internal/power"
	"flex/internal/workload"
)

// FlexOffline is the paper's ILP placement policy (§IV-B). It batches the
// short-term demand by BatchFraction of the room's provisioned power and,
// per batch, solves the placement ILP: maximize placed power (equivalently,
// minimize stranded power, Eq. 5) subject to single placement (Eq. 1),
// normal-operation capacity (Eq. 2), and failover safety under maximal
// shaving for every UPS failure (Eq. 4).
//
// Because all PDU-pairs connected to the same UPS combination are
// electrically interchangeable, the ILP assigns deployments to UPS
// combinations; deployments are then spread across that combination's
// actual PDU-pairs best-fit by space. After each batch a local-search pass
// rebalances placements across combinations (without changing the placed
// power) to minimize the throttling-imbalance metric — the soft constraint
// the paper mentions including in its evaluation.
type FlexOffline struct {
	// BatchFraction is the demand horizon as a fraction of provisioned
	// power: 0.33 for Flex-Offline-Short, 0.66 for Flex-Offline-Long; any
	// value >= the trace's total demand fraction behaves like
	// Flex-Offline-Oracle. Must be positive.
	BatchFraction float64
	// TimeLimit bounds each batch's ILP solve (the paper stops Gurobi
	// after 5 minutes). Zero means 15 seconds. MaxNodes is normally the
	// binding limit; the time limit is a safety net.
	TimeLimit time.Duration
	// MaxNodes bounds each batch's branch-and-bound node count. Node
	// budgets are deterministic, so two runs with the same trace produce
	// the same placement. Zero means 1500.
	MaxNodes int
	// Workers is the branch-and-bound worker count per ILP solve (zero
	// means runtime.NumCPU()). Solves run in the solver's Deterministic
	// mode, so the placement is identical for any Workers value.
	Workers int
	// SkipBalanceRefinement disables the post-batch imbalance local search
	// (used by ablation benchmarks).
	SkipBalanceRefinement bool
	// SkipDiversityReserve disables the workload-diversity headroom
	// constraint (used by ablation benchmarks). By default each batch ILP
	// keeps the room's cumulative post-shave allocation (CapPow) within
	// the failover budget (y/x of provisioned power): a room whose
	// post-shave load already equals surviving capacity at full fill can
	// accept any future mix, so early non-shaveable-heavy batches cannot
	// strand the remaining capacity (paper §IV: lack of workload
	// diversity leads to stranded power).
	SkipDiversityReserve bool
	// Label overrides Name() (e.g. "Flex-Offline-Short").
	Label string
	// SolverMetrics, when non-nil, accumulates branch-and-bound statistics
	// (nodes, simplex pivots, limit hits) across the per-batch ILP solves.
	SolverMetrics *milp.Metrics
}

// FlexOfflineShort returns the paper's Flex-Offline-Short configuration
// (batches ≈33% of provisioned power).
func FlexOfflineShort() FlexOffline {
	return FlexOffline{BatchFraction: 0.33, Label: "Flex-Offline-Short"}
}

// FlexOfflineLong returns Flex-Offline-Long (≈66% batches).
func FlexOfflineLong() FlexOffline {
	return FlexOffline{BatchFraction: 0.66, Label: "Flex-Offline-Long"}
}

// FlexOfflineOracle returns Flex-Offline-Oracle (the entire trace in one
// batch).
func FlexOfflineOracle() FlexOffline {
	return FlexOffline{BatchFraction: 10, Label: "Flex-Offline-Oracle"}
}

// Name implements Policy.
func (f FlexOffline) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return fmt.Sprintf("Flex-Offline(%.2f)", f.BatchFraction)
}

// Combo is one UPS combination with its member PDU-pairs. All pairs of a
// combination are electrically interchangeable, so both the batch ILP and
// the online admitter assign deployments to combos first and spread across
// the member pairs second.
type Combo struct {
	UPSes [2]power.UPSID
	Pairs []power.PDUPairID
}

// CombosOf groups a topology's PDU-pairs by UPS combination, in order of
// first appearance in topo.Pairs. The ordering is what BatchILP's decision
// variables and WarmIncumbent's load profiles are indexed by.
func CombosOf(topo *power.Topology) []Combo {
	byKey := map[[2]power.UPSID]*Combo{}
	var order [][2]power.UPSID
	for _, p := range topo.Pairs {
		key := p.UPSes
		c, ok := byKey[key]
		if !ok {
			c = &Combo{UPSes: key}
			byKey[key] = c
			order = append(order, key)
		}
		c.Pairs = append(c.Pairs, p.ID)
	}
	out := make([]Combo, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	return out
}

// Place implements Policy. Successive batch ILPs are warm-started with the
// previous batch's solution: its per-combination load profile seeds a
// headroom-aware greedy incumbent for the next solve, so later batches
// start pruning from a near-final bound instead of from scratch.
func (f FlexOffline) Place(ctx context.Context, room *Room, trace []workload.Deployment) (*Placement, error) {
	if f.BatchFraction <= 0 {
		return nil, fmt.Errorf("placement: FlexOffline.BatchFraction must be positive")
	}
	timeLimit := f.TimeLimit
	if timeLimit == 0 {
		timeLimit = 15 * time.Second
	}
	maxNodes := f.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1500
	}
	s := newState(room)
	combos := CombosOf(room.Topo)
	batchPow := power.Watts(f.BatchFraction * float64(room.Topo.ProvisionedPower()))

	var batch []workload.Deployment
	var batchSum power.Watts
	var prevLoad []float64 // previous batch's per-combo placed power (warm start)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		load, err := f.solveBatch(ctx, s, combos, batch, timeLimit, maxNodes, prevLoad)
		if err != nil {
			return err
		}
		prevLoad = load
		if !f.SkipBalanceRefinement {
			// Interim passes spread load only (imbalance weight 0): the
			// throttling-imbalance metric is a property of the final
			// placement, and folding it in early creates local optima
			// that block the spreading moves later batches depend on.
			f.refineBalance(ctx, s, 0)
		}
		batch, batchSum = nil, 0
		return nil
	}
	for _, d := range trace {
		batch = append(batch, d)
		batchSum += d.TotalPower()
		if batchSum >= batchPow {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if !f.SkipBalanceRefinement {
		// Final global passes: spread first, then minimize the residual
		// throttling-imbalance metric across all UPS failure combinations.
		f.refineBalance(ctx, s, 0)
		f.refineBalance(ctx, s, 100)
	}
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	return s.result(trace), nil
}

// BatchILP builds the paper's Eq. 1–5 placement ILP for one batch of
// deployments against an empty room: binary variables x[d*nc+c] choose a
// UPS combination per deployment, maximizing placed power subject to
// single placement, normal-operation headroom, failover safety under
// maximal shaving, space, and the workload-diversity reserve. It exposes
// the exact problem FlexOffline solves per batch, for benchmarks and
// solver experiments.
func BatchILP(room *Room, batch []workload.Deployment) *milp.Problem {
	return FlexOffline{}.batchILP(newState(room), CombosOf(room.Topo), batch)
}

// BatchILP builds the same problem under this FlexOffline configuration
// (honoring SkipDiversityReserve and friends) — the entry point the
// online admitter's warm background re-solve uses so its exact problem
// matches the admission-path constraint set exactly.
func (f FlexOffline) BatchILP(room *Room, batch []workload.Deployment) *milp.Problem {
	return f.batchILP(newState(room), CombosOf(room.Topo), batch)
}

// batchILP builds the batch ILP against the current committed state. All
// constraints are ≤ with non-negative coefficients, so rounding a
// relaxation down is always feasible.
func (f FlexOffline) batchILP(s *state, combos []Combo, batch []workload.Deployment) *milp.Problem {
	topo := s.room.Topo
	nd, nc := len(batch), len(combos)
	nVars := nd * nc // binary placement vars x[d*nc+c]

	const mw = 1e6 // scale watts → MW for numerical conditioning
	prob := &milp.Problem{
		LP:      lp.Problem{Maximize: true, Objective: make([]float64, nVars)},
		Integer: make([]bool, nVars),
	}
	for di, d := range batch {
		for c := 0; c < nc; c++ {
			prob.Integer[di*nc+c] = true
			prob.LP.Objective[di*nc+c] = float64(d.TotalPower()) / mw
		}
	}
	// Binary upper bounds.
	for j := 0; j < nVars; j++ {
		c := make([]float64, j+1)
		c[j] = 1
		prob.LP.AddConstraint(c, lp.LE, 1)
	}
	// Eq. 1: each deployment placed at most once.
	for di := range batch {
		c := make([]float64, nVars)
		for ci := 0; ci < nc; ci++ {
			c[di*nc+ci] = 1
		}
		prob.LP.AddConstraint(c, lp.LE, 1)
	}
	// Eq. 2: normal-operation headroom per UPS.
	for u := range topo.UPSes {
		c := make([]float64, nVars)
		for di, d := range batch {
			half := float64(d.TotalPower()) / 2 / mw
			for ci, cb := range combos {
				if cb.UPSes[0] == power.UPSID(u) || cb.UPSes[1] == power.UPSID(u) {
					c[di*nc+ci] = half
				}
			}
		}
		rhs := float64(s.room.NormalLimit(power.UPSID(u))-s.normal[u]) / mw
		prob.LP.AddConstraint(c, lp.LE, rhs)
	}
	// Eq. 4: failover headroom per (failed, survivor).
	for fi := range topo.UPSes {
		ff := power.UPSID(fi)
		for u := range topo.UPSes {
			uu := power.UPSID(u)
			if uu == ff {
				continue
			}
			c := make([]float64, nVars)
			any := false
			for di, d := range batch {
				capPow := float64(d.CapPower()) / s.room.oversub() / mw
				if capPow == 0 {
					continue
				}
				for ci, cb := range combos {
					w := failoverWeight(cb.UPSes[0], cb.UPSes[1], uu, ff)
					if w > 0 {
						c[di*nc+ci] = w * capPow
						any = true
					}
				}
			}
			if any {
				rhs := float64(topo.UPSes[u].Capacity-s.failCap[fi][u]) / mw
				prob.LP.AddConstraint(c, lp.LE, rhs)
			}
		}
	}
	// Space per combo (sum of its pairs' remaining slots).
	for ci, cb := range combos {
		c := make([]float64, nVars)
		free := 0
		for _, pid := range cb.Pairs {
			free += s.slotsLeft[pid]
		}
		for di, d := range batch {
			c[di*nc+ci] = float64(d.Racks)
		}
		prob.LP.AddConstraint(c, lp.LE, float64(free))
	}
	// Workload-diversity headroom: cumulative CapPow within the failover
	// budget, so that shave-ability never becomes the binding constraint
	// for future demand.
	if !f.SkipDiversityReserve {
		c := make([]float64, nVars)
		any := false
		for di, d := range batch {
			capPow := float64(d.CapPower()) / s.room.oversub() / mw
			if capPow == 0 {
				continue
			}
			for ci := 0; ci < nc; ci++ {
				c[di*nc+ci] = capPow
				any = true
			}
		}
		if any {
			budget := float64(topo.ProvisionedPower()) * topo.Design.AllocationLimitFraction()
			rhs := (budget - float64(s.placedCapPow)) / mw
			prob.LP.AddConstraint(c, lp.LE, rhs)
		}
	}
	// PDU-pair ratings (aggregate per combo; the pair-level check happens
	// again at commit time through canPlace).
	if s.room.PairCapacity > 0 {
		for ci, cb := range combos {
			c := make([]float64, nVars)
			var free float64
			for _, pid := range cb.Pairs {
				free += float64(s.room.PairCapacity-s.pairPow[pid]) / mw
			}
			for di, d := range batch {
				c[di*nc+ci] = float64(d.TotalPower()) / mw
			}
			prob.LP.AddConstraint(c, lp.LE, free)
		}
	}
	// Cooling (aggregate), if configured.
	if s.room.CoolingCFM > 0 {
		c := make([]float64, nVars)
		for di, d := range batch {
			for ci := 0; ci < nc; ci++ {
				c[di*nc+ci] = float64(d.TotalPower()) * s.room.CFMPerWatt / mw
			}
		}
		rhs := (s.room.CoolingCFM - float64(s.placedPow)*s.room.CFMPerWatt) / mw
		prob.LP.AddConstraint(c, lp.LE, rhs)
	}
	return prob
}

// solveBatch builds and solves the batch ILP and commits the resulting
// placements. The branch-and-bound is warm-started with the better of a
// greedy incumbent and a headroom-aware incumbent seeded from the previous
// batch's per-combo loads, and given a round-down-plus-completion
// heuristic. It returns this batch's per-combo placed power for the next
// batch's warm start.
func (f FlexOffline) solveBatch(ctx context.Context, s *state, combos []Combo, batch []workload.Deployment, timeLimit time.Duration, maxNodes int, prevLoad []float64) ([]float64, error) {
	nc := len(combos)
	prob := f.batchILP(s, combos, batch)
	heuristic := func(relaxed []float64) []float64 {
		return roundDownAndComplete(prob, relaxed, nc)
	}
	incumbent := milp.GreedyBinaryIncumbent(prob)
	if warm := WarmIncumbent(prob, batch, nc, prevLoad); warm != nil {
		if incumbent == nil || prob.ObjectiveValue(warm) > prob.ObjectiveValue(incumbent) {
			incumbent = warm
		}
	}
	res, err := milp.SolveContext(ctx, prob, milp.Options{
		Workers: f.Workers,
		// Deterministic mode keeps the placement identical for any worker
		// count: reproducible placements are part of FlexOffline's contract.
		Deterministic: true,
		TimeLimit:     timeLimit,
		MaxNodes:      maxNodes,
		Incumbent:     incumbent,
		Heuristic:     heuristic,
		Metrics:       f.SolverMetrics,
		// The placement objective is in MW; differences below ~0.1% of a
		// batch are far below a single deployment, so a 0.1% gap trades
		// no placement quality for a large node-count reduction.
		RelGap: 0.001,
	})
	if err != nil {
		return nil, err
	}
	var x []float64
	switch res.Status {
	case milp.Optimal, milp.Feasible:
		x = res.X
	}
	if x == nil {
		// No incumbent at all (cannot happen with a greedy warm start, but
		// stay defensive): greedy per-deployment placement.
		f.greedyBatch(s, batch)
		return nil, nil
	}
	// Commit: distribute the chosen deployments of each combo across its
	// PDU-pairs. The ILP's space constraint is aggregate per combo, so an
	// exact bin-packing search recovers a pair-level assignment whenever
	// one exists; only genuinely unpackable leftovers fall back.
	byCombo := make([][]workload.Deployment, nc)
	load := make([]float64, nc)
	for di, d := range batch {
		for ci := 0; ci < nc; ci++ {
			if x[di*nc+ci] > 0.5 {
				byCombo[ci] = append(byCombo[ci], d)
				load[ci] += float64(d.TotalPower())
				break
			}
		}
	}
	for ci, ds := range byCombo {
		f.commitCombo(s, combos[ci], ds)
	}
	return load, nil
}

// WarmIncumbent builds a feasible 0/1 warm start for a batch ILP (built by
// BatchILP against the same batch and combo ordering) from a per-combo load
// profile: deployments (largest first) go to the feasible combination
// carrying the least cumulative power, so the incumbent inherits the spread
// a previous solve (or the live committed state) converged to instead of
// piling onto the first combination the way a plain greedy does. Returns
// nil when the profile is missing or stale (its length does not match nc).
// The result is always feasible — deployments that fit nowhere are simply
// left unplaced, so a batch larger than the remaining capacity yields a
// partial (possibly all-zero) incumbent rather than an infeasible one.
func WarmIncumbent(prob *milp.Problem, batch []workload.Deployment, nc int, prevLoad []float64) []float64 {
	if len(prevLoad) != nc || nc == 0 {
		return nil
	}
	nd := len(batch)
	x := make([]float64, nd*nc)
	slack := make([]float64, len(prob.LP.Constraints))
	for i, c := range prob.LP.Constraints {
		slack[i] = c.RHS
	}
	fits := func(j int) bool {
		for i, c := range prob.LP.Constraints {
			if j < len(c.Coeffs) && c.Coeffs[j] > slack[i]+1e-9 {
				return false
			}
		}
		return true
	}
	take := func(j int) {
		x[j] = 1
		for i, c := range prob.LP.Constraints {
			if j < len(c.Coeffs) {
				slack[i] -= c.Coeffs[j]
			}
		}
	}
	load := append([]float64(nil), prevLoad...)
	order := make([]int, nd)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return batch[order[a]].TotalPower() > batch[order[b]].TotalPower()
	})
	for _, di := range order {
		bestC := -1
		for ci := 0; ci < nc; ci++ {
			if !fits(di*nc + ci) {
				continue
			}
			if bestC < 0 || load[ci] < load[bestC]-1e-9 {
				bestC = ci
			}
		}
		if bestC >= 0 {
			take(di*nc + bestC)
			load[bestC] += float64(batch[di].TotalPower())
		}
	}
	return x
}

// commitCombo places the deployments assigned to one combo onto its pairs,
// using an exact bin-packing search first and greedy fallbacks after.
func (f FlexOffline) commitCombo(s *state, cb Combo, ds []workload.Deployment) {
	if len(ds) == 0 {
		return
	}
	sorted := append([]workload.Deployment(nil), ds...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Racks > sorted[j].Racks })
	bins := make([]int, len(cb.Pairs))
	for i, pid := range cb.Pairs {
		bins[i] = s.slotsLeft[pid]
	}
	var rest []workload.Deployment
	if assign, ok := packBins(sorted, bins); ok {
		for i, d := range sorted {
			// The ILP guaranteed combo-level power feasibility, but guard
			// against accumulated rounding by re-checking each placement;
			// anything rejected goes through the greedy fallback below.
			if s.canPlace(d, cb.Pairs[assign[i]]) {
				s.place(d, cb.Pairs[assign[i]])
			} else {
				rest = append(rest, d)
			}
		}
	} else {
		rest = sorted
	}
	for _, d := range rest {
		if !f.placeInCombo(s, cb, d) {
			f.placeAnywhere(s, d)
		}
	}
}

// packBins searches for an assignment of every item (by rack count) to a
// bin with sufficient capacity, returning assign[i] = bin of items[i]. The
// backtracking search prunes symmetric bin states and caps its effort, so
// it stays fast for the ≤ a-few-dozen items per combo that occur here.
func packBins(items []workload.Deployment, bins []int) ([]int, bool) {
	assign := make([]int, len(items))
	free := append([]int(nil), bins...)
	steps := 0
	const maxSteps = 200000
	var try func(i int) bool
	try = func(i int) bool {
		if i == len(items) {
			return true
		}
		if steps++; steps > maxSteps {
			return false
		}
		seen := make(map[int]bool, len(free))
		for b := range free {
			if free[b] < items[i].Racks || seen[free[b]] {
				continue
			}
			seen[free[b]] = true // identical residual capacity ⇒ symmetric
			free[b] -= items[i].Racks
			assign[i] = b
			if try(i + 1) {
				return true
			}
			free[b] += items[i].Racks
		}
		return false
	}
	if try(0) {
		return assign, true
	}
	return nil, false
}

// roundDownAndComplete rounds a fractional relaxation down to a feasible
// 0/1 vector (valid because every constraint is ≤ with non-negative
// coefficients) and then greedily re-adds variables in descending
// relaxation-value-then-objective order while all constraints hold.
// Ties rotate across combos (the last sort key) so that an unconstrained
// batch is spread rather than piled onto combo 0 — concentrated
// placements poison later batches even when they are "optimal" now.
func roundDownAndComplete(prob *milp.Problem, relaxed []float64, nc int) []float64 {
	n := len(relaxed)
	x := make([]float64, n)
	slack := make([]float64, len(prob.LP.Constraints))
	for i, c := range prob.LP.Constraints {
		slack[i] = c.RHS
	}
	take := func(j int) bool {
		for i, c := range prob.LP.Constraints {
			if j < len(c.Coeffs) && c.Coeffs[j] > slack[i]+1e-9 {
				return false
			}
		}
		x[j] = 1
		for i, c := range prob.LP.Constraints {
			if j < len(c.Coeffs) {
				slack[i] -= c.Coeffs[j]
			}
		}
		return true
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	rot := func(j int) int { // combo index rotated by deployment index
		return (j%nc + j/nc) % nc
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := order[a], order[b]
		if relaxed[ja] != relaxed[jb] {
			return relaxed[ja] > relaxed[jb]
		}
		if prob.LP.Objective[ja] != prob.LP.Objective[jb] {
			return prob.LP.Objective[ja] > prob.LP.Objective[jb]
		}
		return rot(ja) < rot(jb)
	})
	for _, j := range order {
		if relaxed[j] > 0.999 {
			take(j)
		}
	}
	for _, j := range order {
		if x[j] == 0 && relaxed[j] > 1e-9 {
			take(j)
		}
	}
	for _, j := range order {
		if x[j] == 0 {
			take(j)
		}
	}
	return x
}

// placeInCombo places d on the best-fit pair (smallest sufficient free
// space) within the combo, honoring all constraints. Returns false when no
// pair in the combo fits.
func (f FlexOffline) placeInCombo(s *state, cb Combo, d workload.Deployment) bool {
	best := power.PDUPairID(-1)
	bestFree := int(^uint(0) >> 1)
	for _, pid := range cb.Pairs {
		if s.canPlace(d, pid) && s.slotsLeft[pid] < bestFree {
			best, bestFree = pid, s.slotsLeft[pid]
		}
	}
	if best < 0 {
		return false
	}
	s.place(d, best)
	return true
}

// placeAnywhere places d on the first feasible pair of any combo.
func (f FlexOffline) placeAnywhere(s *state, d workload.Deployment) bool {
	for pid := range s.room.Topo.Pairs {
		if s.canPlace(d, power.PDUPairID(pid)) {
			s.place(d, power.PDUPairID(pid))
			return true
		}
	}
	return false
}

// greedyBatch is the fallback when the ILP finds no incumbent in time:
// largest deployments first onto the first feasible pair.
func (f FlexOffline) greedyBatch(s *state, batch []workload.Deployment) {
	sorted := append([]workload.Deployment(nil), batch...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].TotalPower() > sorted[j].TotalPower()
	})
	for _, d := range sorted {
		f.placeAnywhere(s, d)
	}
}

// balanceScore is the hill-climbing objective for refineBalance. The
// dominant term is the throttling-imbalance metric itself; the quadratic
// terms provide a gradient even while nothing is overloaded yet, pushing
// placements toward evenly spread failover and normal loads — which keeps
// headroom balanced for future batches and is what lets large-horizon
// batching realize its advantage.
func (s *state) balanceScore(imbalanceWeight float64) float64 {
	topo := s.room.Topo
	score := imbalanceWeight * s.imbalance()
	for f := range topo.UPSes {
		for u := range topo.UPSes {
			if u == f {
				continue
			}
			cap := float64(topo.UPSes[u].Capacity)
			// Non-SR load balance tracks the paper's imbalance metric;
			// post-shave (failCap) balance preserves Eq. 4 headroom for
			// future batches — the two differ when capable-heavy and
			// non-cap-able-heavy combos coexist, and both matter.
			util := float64(s.failCap[f][u]+s.throttleRec[f][u]) / cap
			shaved := float64(s.failCap[f][u]) / cap
			score += util*util + 2*shaved*shaved
		}
	}
	for u := range topo.UPSes {
		util := float64(s.normal[u]) / float64(topo.UPSes[u].Capacity)
		score += util * util
	}
	return score
}

// refineBalance hill-climbs balanceScore by relocating placed deployments
// between PDU-pairs (placed power is unchanged; every move re-validates
// all constraints through the state). The search stops at a local optimum,
// after a bounded number of sweeps, or — since refinement is optional
// polish — as soon as ctx is done.
func (f FlexOffline) refineBalance(ctx context.Context, s *state, imbalanceWeight float64) {
	const maxSweeps = 12
	ids := make([]int, 0, len(s.placed))
	for id := range s.placed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	byID := s.deploymentsByID()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if ctx.Err() != nil {
			return
		}
		improved := false
		cur := s.balanceScore(imbalanceWeight)
		for _, id := range ids {
			d, ok := byID[id]
			if !ok {
				continue
			}
			from := s.placed[id]
			token := s.remove(d, from)
			bestPid, bestVal := from, cur
			for pid := range s.room.Topo.Pairs {
				p := power.PDUPairID(pid)
				if !s.canPlace(d, p) {
					continue
				}
				s.place(d, p)
				v := s.balanceScore(imbalanceWeight)
				s.remove(d, p)
				if v < bestVal-1e-9 {
					bestPid, bestVal = p, v
				}
			}
			if bestPid == from {
				s.restoreAt(d, from, token)
			} else {
				s.place(d, bestPid)
				improved = true
				cur = bestVal
			}
		}
		if s.swapSweep(ids, byID, imbalanceWeight) {
			improved = true
		}
		if !improved {
			return
		}
	}
}

// swapSweep tries exchanging the pairs of every two placed deployments —
// swaps can rebalance workload categories across UPS combinations when no
// single relocation improves the score (single moves get stuck once all
// pairs are nearly full). Returns whether any swap was applied.
func (s *state) swapSweep(ids []int, byID map[int]workload.Deployment, imbalanceWeight float64) bool {
	improved := false
	cur := s.balanceScore(imbalanceWeight)
	for i := 0; i < len(ids); i++ {
		d1, ok := byID[ids[i]]
		if !ok {
			continue
		}
		for j := i + 1; j < len(ids); j++ {
			d2, ok := byID[ids[j]]
			if !ok {
				continue
			}
			p1, ok1 := s.placed[d1.ID]
			p2, ok2 := s.placed[d2.ID]
			if !ok1 || !ok2 || p1 == p2 {
				continue
			}
			// Swapping identical electrical footprints cannot help.
			if d1.Category == d2.Category && d1.TotalPower() == d2.TotalPower() {
				continue
			}
			tok1 := s.remove(d1, p1)
			tok2 := s.remove(d2, p2)
			if s.canPlace(d1, p2) {
				s.place(d1, p2)
				if s.canPlace(d2, p1) {
					s.place(d2, p1)
					if v := s.balanceScore(imbalanceWeight); v < cur-1e-9 {
						cur = v
						improved = true
						continue // keep the swap
					}
					s.remove(d2, p1)
				}
				s.remove(d1, p2)
			}
			s.restoreAt(d1, p1, tok1)
			s.restoreAt(d2, p2, tok2)
		}
	}
	return improved
}
