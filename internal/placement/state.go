package placement

import (
	"flex/internal/power"
	"flex/internal/workload"
)

// state tracks the incremental feasibility bookkeeping shared by every
// policy: free slots per pair, normal-operation load per UPS, and the
// post-shave failover load (Eq. 4 left-hand side) for every (failed UPS,
// surviving UPS) combination. Policies only place through state, so every
// produced placement is safe by construction.
type state struct {
	room      *Room
	rows      *rowState // nil unless row modelling is enabled
	slotsLeft []int
	pairPow   []power.Watts   // allocated power per PDU-pair
	normal    []power.Watts   // per-UPS normal-operation allocated load
	failCap   [][]power.Watts // [failed][survivor] post-shave failover load
	// throttleRec is the [failed][survivor] failover-weighted power
	// recoverable by throttling alone (cap-able deployments only); used by
	// Flex-Offline's balance term and the imbalance metric.
	throttleRec  [][]power.Watts
	placedPow    power.Watts
	placedCapPow power.Watts // cumulative post-shave (CapPow) allocation
	placed       map[int]power.PDUPairID
	deps         map[int]workload.Deployment // placed deployments by ID
}

func newState(room *Room) *state {
	n := len(room.Topo.UPSes)
	rows, err := newRowState(room)
	if err != nil {
		// Room misconfiguration is a programming error at this level;
		// Policy implementations surface it before building state.
		panic(err)
	}
	s := &state{
		room:        room,
		rows:        rows,
		slotsLeft:   append([]int(nil), room.SlotsPerPair...),
		pairPow:     make([]power.Watts, len(room.Topo.Pairs)),
		normal:      make([]power.Watts, n),
		failCap:     make([][]power.Watts, n),
		throttleRec: make([][]power.Watts, n),
		placed:      make(map[int]power.PDUPairID),
		deps:        make(map[int]workload.Deployment),
	}
	for f := range s.failCap {
		s.failCap[f] = make([]power.Watts, n)
		s.throttleRec[f] = make([]power.Watts, n)
	}
	return s
}

// failoverWeight is the Eq. 4 weighting of a deployment on pair (a,b)
// towards survivor u when f fails: 0 if u is not on the pair, 1 if the
// pair also touches f (the survivor takes the whole load), 0.5 otherwise.
func failoverWeight(a, b, u, f power.UPSID) float64 {
	if u != a && u != b {
		return 0
	}
	if f == a || f == b {
		return 1
	}
	return 0.5
}

// canPlace reports whether deployment d fits on pair pid without violating
// space, cooling, normal-capacity, or any-failure safety constraints.
func (s *state) canPlace(d workload.Deployment, pid power.PDUPairID) bool {
	if s.slotsLeft[pid] < d.Racks {
		return false
	}
	if s.rows != nil && s.rows.fit(pid, d.Racks) == nil {
		return false
	}
	if s.room.PairCapacity > 0 &&
		s.pairPow[pid]+d.TotalPower() > s.room.PairCapacity+power.CapacityTolerance {
		return false
	}
	if s.room.CoolingCFM > 0 {
		if float64(s.placedPow+d.TotalPower())*s.room.CFMPerWatt > s.room.CoolingCFM+1e-6 {
			return false
		}
	}
	topo := s.room.Topo
	pair := topo.Pairs[pid]
	a, b := pair.UPSes[0], pair.UPSes[1]
	half := d.TotalPower() / 2
	if s.normal[a]+half > s.room.NormalLimit(a)+power.CapacityTolerance ||
		s.normal[b]+half > s.room.NormalLimit(b)+power.CapacityTolerance {
		return false
	}
	capPow := float64(d.CapPower()) / s.room.oversub()
	for f := range topo.UPSes {
		ff := power.UPSID(f)
		for _, u := range [2]power.UPSID{a, b} {
			if u == ff {
				continue
			}
			w := failoverWeight(a, b, u, ff)
			if s.failCap[f][u]+power.Watts(w*capPow) > topo.UPSes[u].Capacity+power.CapacityTolerance {
				return false
			}
		}
	}
	return true
}

// place commits deployment d to pair pid. Callers must have verified
// canPlace.
func (s *state) place(d workload.Deployment, pid power.PDUPairID) {
	pair := s.room.Topo.Pairs[pid]
	a, b := pair.UPSes[0], pair.UPSes[1]
	s.slotsLeft[pid] -= d.Racks
	if s.rows != nil {
		take := s.rows.fit(pid, d.Racks)
		if take == nil {
			panic("placement: place without canPlace (row fit)")
		}
		s.rows.place(d.ID, take)
	}
	s.pairPow[pid] += d.TotalPower()
	half := d.TotalPower() / 2
	s.normal[a] += half
	s.normal[b] += half
	capPow := float64(d.CapPower()) / s.room.oversub()
	throttle := float64(d.ThrottleRecoverablePower()) / s.room.oversub()
	for f := range s.room.Topo.UPSes {
		ff := power.UPSID(f)
		for _, u := range [2]power.UPSID{a, b} {
			if u == ff {
				continue
			}
			w := failoverWeight(a, b, u, ff)
			s.failCap[f][u] += power.Watts(w * capPow)
			s.throttleRec[f][u] += power.Watts(w * throttle)
		}
	}
	s.placedPow += d.TotalPower()
	s.placedCapPow += power.Watts(float64(d.CapPower()) / s.room.oversub())
	s.placed[d.ID] = pid
	s.deps[d.ID] = d
}

// remove reverses place, freeing d's slots and load contributions. The
// returned token restores the exact row allocation via restoreAt (nil
// when rows are disabled).
func (s *state) remove(d workload.Deployment, pid power.PDUPairID) []rowUse {
	pair := s.room.Topo.Pairs[pid]
	a, b := pair.UPSes[0], pair.UPSes[1]
	s.slotsLeft[pid] += d.Racks
	var token []rowUse
	if s.rows != nil {
		token = s.rows.remove(d.ID)
	}
	s.pairPow[pid] -= d.TotalPower()
	half := d.TotalPower() / 2
	s.normal[a] -= half
	s.normal[b] -= half
	capPow := float64(d.CapPower()) / s.room.oversub()
	throttle := float64(d.ThrottleRecoverablePower()) / s.room.oversub()
	for f := range s.room.Topo.UPSes {
		ff := power.UPSID(f)
		for _, u := range [2]power.UPSID{a, b} {
			if u == ff {
				continue
			}
			w := failoverWeight(a, b, u, ff)
			s.failCap[f][u] -= power.Watts(w * capPow)
			s.throttleRec[f][u] -= power.Watts(w * throttle)
		}
	}
	s.placedPow -= d.TotalPower()
	s.placedCapPow -= power.Watts(float64(d.CapPower()) / s.room.oversub())
	delete(s.placed, d.ID)
	delete(s.deps, d.ID)
	return token
}

// restoreAt undoes a remove exactly: it re-places d on pid reusing the
// remove token's row allocation. It bypasses canPlace — the caller is
// returning the state to a configuration that was valid moments ago.
func (s *state) restoreAt(d workload.Deployment, pid power.PDUPairID, token []rowUse) {
	pair := s.room.Topo.Pairs[pid]
	a, b := pair.UPSes[0], pair.UPSes[1]
	s.slotsLeft[pid] -= d.Racks
	if s.rows != nil {
		s.rows.restore(d.ID, token)
	}
	s.pairPow[pid] += d.TotalPower()
	half := d.TotalPower() / 2
	s.normal[a] += half
	s.normal[b] += half
	capPow := float64(d.CapPower()) / s.room.oversub()
	throttle := float64(d.ThrottleRecoverablePower()) / s.room.oversub()
	for f := range s.room.Topo.UPSes {
		ff := power.UPSID(f)
		for _, u := range [2]power.UPSID{a, b} {
			if u == ff {
				continue
			}
			w := failoverWeight(a, b, u, ff)
			s.failCap[f][u] += power.Watts(w * capPow)
			s.throttleRec[f][u] += power.Watts(w * throttle)
		}
	}
	s.placedPow += d.TotalPower()
	s.placedCapPow += power.Watts(float64(d.CapPower()) / s.room.oversub())
	s.placed[d.ID] = pid
	s.deps[d.ID] = d
}

// deploymentsByID exposes the placed deployments for refinement passes.
func (s *state) deploymentsByID() map[int]workload.Deployment { return s.deps }

// imbalance computes the throttling-imbalance metric from the incremental
// bookkeeping: for every (failed, survivor) UPS combination, the fraction
// of the survivor's capacity that throttling must recover in the worst
// case (non-SR failover load minus capacity), spread max minus min.
func (s *state) imbalance() float64 {
	topo := s.room.Topo
	first := true
	var maxR, minR float64
	for f := range topo.UPSes {
		for u := range topo.UPSes {
			if u == f {
				continue
			}
			cap := float64(topo.UPSes[u].Capacity)
			need := float64(s.failCap[f][u]+s.throttleRec[f][u]) - cap
			if need < 0 {
				need = 0
			}
			r := need / cap
			if first {
				maxR, minR, first = r, r, false
			} else {
				if r > maxR {
					maxR = r
				}
				if r < minR {
					minR = r
				}
			}
		}
	}
	if first {
		return 0
	}
	return maxR - minR
}

// result materializes the placement.
func (s *state) result(trace []workload.Deployment) *Placement {
	return &Placement{
		Room:        s.room,
		Deployments: trace,
		Assignments: s.placed,
	}
}
