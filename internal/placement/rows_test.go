package placement

import (
	"context"
	"math/rand"
	"testing"

	"flex/internal/power"
	"flex/internal/workload"
)

// rowRoom is the emulation room with explicit rows: 6 rows × 10 racks per
// PDU-pair (36 rows total — the paper's §V-C layout).
func rowRoom(t *testing.T) *Room {
	t.Helper()
	room := EmulationRoom()
	room.RowsPerPair = 6
	room.RowSlots = 10
	return room
}

func TestRowStateFitContiguity(t *testing.T) {
	room := rowRoom(t)
	rs, err := newRowState(room)
	if err != nil {
		t.Fatal(err)
	}
	// 20 racks = two full rows.
	take := rs.fit(0, 20)
	if len(take) != 2 || take[0].slots != 10 || take[1].slots != 10 {
		t.Fatalf("fit(20) = %+v", take)
	}
	if take[1].row != take[0].row+1 {
		t.Fatalf("rows not contiguous: %+v", take)
	}
	rs.place(1, take)
	// 5 racks fits a fresh row.
	take5 := rs.fit(0, 5)
	if len(take5) != 1 || take5[0].slots != 5 {
		t.Fatalf("fit(5) = %+v", take5)
	}
	rs.place(2, take5)
	// Another 20 may start in the half-used row 2 (5 free) and continue
	// through empty rows 3 and 4 — runs start anywhere but continuation
	// rows must be empty.
	take20 := rs.fit(0, 20)
	if len(take20) != 3 || take20[0].row != 2 || take20[0].slots != 5 {
		t.Fatalf("fit(20) after fragmentation = %+v", take20)
	}
	for i := 1; i < len(take20); i++ {
		if take20[i].row != take20[i-1].row+1 {
			t.Fatalf("rows not contiguous: %+v", take20)
		}
	}
	rs.place(3, take20)
	// Remaining free: 5 slots at the tail of row 4 and empty row 5 = 15,
	// not enough for another 20; fit must fail.
	if got := rs.fit(0, 20); got != nil {
		t.Fatalf("fit(20) should fail with fragmented rows, got %+v", got)
	}
	// Removal returns space: drop the first 20-rack deployment and retry.
	rs.remove(1)
	if got := rs.fit(0, 20); got == nil {
		t.Fatal("fit(20) should succeed after removal")
	}
}

func TestRowConfigValidation(t *testing.T) {
	room := rowRoom(t)
	room.RowSlots = 7 // 6×7 ≠ 60
	if _, err := newRowState(room); err == nil {
		t.Fatal("expected row config error")
	}
	room.RowSlots = 0
	if _, err := newRowState(room); err == nil {
		t.Fatal("expected RowSlots error")
	}
	room.RowsPerPair = 0
	rs, err := newRowState(room)
	if err != nil || rs != nil {
		t.Fatal("rows disabled should return nil, nil")
	}
}

func TestRowAwarePlacementSafety(t *testing.T) {
	room := rowRoom(t)
	cfg := workload.DefaultTraceConfig(room.Topo.ProvisionedPower())
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{BalancedRoundRobin{}, FlexOffline{BatchFraction: 0.5, MaxNodes: 150}} {
		pl, err := pol.Place(context.Background(), room, trace)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if len(pl.Placed()) == 0 {
			t.Fatalf("%s: nothing placed", pol.Name())
		}
	}
}

func TestRowFragmentationReducesCapacity(t *testing.T) {
	// Row granularity can only reduce (never increase) what fits: the
	// same trace placed with and without rows.
	cfg := workload.DefaultTraceConfig(4.8 * power.MW)
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	flat := EmulationRoom()
	rows := rowRoom(t)
	pol := BalancedRoundRobin{}
	plFlat, err := pol.Place(context.Background(), flat, trace)
	if err != nil {
		t.Fatal(err)
	}
	plRows, err := pol.Place(context.Background(), rows, trace)
	if err != nil {
		t.Fatal(err)
	}
	if plRows.PairLoad().Total() > plFlat.PairLoad().Total()+power.CapacityTolerance {
		t.Fatalf("row-constrained placement (%v) exceeds flat placement (%v)",
			plRows.PairLoad().Total(), plFlat.PairLoad().Total())
	}
}
