// Package placement implements Flex-Offline (paper §IV-B, §V-A): placing
// short-term-demand server deployments onto the PDU-pairs of a
// distributed-redundant room so that
//
//   - every deployment lands under exactly one PDU-pair (Eq. 1),
//   - normal-operation UPS loads stay within rated capacity (Eq. 2),
//   - for every single-UPS failure, the post-shave loads (using each
//     deployment's CapPow, Eq. 3) stay within the surviving UPSes' rated
//     capacity even at 100% utilization (Eq. 4), and
//   - stranded power (Eq. 5) is minimized.
//
// Alongside the ILP-based Flex-Offline policy the package implements the
// baseline policies the paper evaluates (Random, Balanced Round-Robin) and
// discusses (First-Fit, plain Round-Robin), plus the two evaluation
// metrics: stranded power and throttling imbalance.
package placement

import (
	"context"
	"fmt"

	"flex/internal/power"
	"flex/internal/workload"
)

// Room couples the electrical topology with physical space: every PDU-pair
// feeds a fixed number of rack slots (the paper's rows are folded into
// their PDU-pair: each row is fed by exactly one PDU-pair).
type Room struct {
	Topo *power.Topology
	// SlotsPerPair is the rack capacity under each PDU-pair, indexed by
	// PDUPairID.
	SlotsPerPair []int
	// CoolingCFM, when positive, caps the room's aggregate airflow; placed
	// power consumes CFMPerWatt of it (paper §VI "Implications on cooling
	// infrastructure"). Zero disables the constraint.
	CoolingCFM float64
	// CFMPerWatt is the airflow each placed watt requires.
	CFMPerWatt float64
	// ReserveUtilization is the fraction of the reserved power allocated
	// to servers: 1 is the paper's full zero-reserved-power design; 0.42
	// is the §VI partial deployment Microsoft ran first, where throttling
	// alone covers every failover and no workload is ever shut down; 0 is
	// a conventional room. NewRoom sets it to 1.
	ReserveUtilization float64
	// RowsPerPair and RowSlots, when positive, enable row-level space
	// modelling (§V-A: deployments land on specific rows): each PDU-pair
	// feeds RowsPerPair rows of RowSlots racks, and a deployment occupies
	// a contiguous run of rows. They must multiply to SlotsPerPair.
	RowsPerPair, RowSlots int
	// PairCapacity, when positive, caps the allocated power under each
	// PDU-pair — the busway/PDU rating the paper's Eq. 4 formulation
	// omits "for brevity" but production placement must respect. Zero
	// disables the constraint.
	PairCapacity power.Watts
	// Oversubscription composes conventional power oversubscription with
	// Flex (paper §I: "allocated power that is underutilized can be
	// oversubscribed", via capping during normal operation as in Dynamo/
	// Thunderbolt). A value of 1.15 allocates 15% more nameplate power
	// than the room's limits on the premise that normal-operation capping
	// bounds the realized draw: allocation checks scale up by this factor
	// while the failover-safety worst case (Eq. 4) scales rack draws down
	// by it. NewRoom sets it to 1 (no oversubscription). Must be >= 1.
	Oversubscription float64
}

// NormalLimit is the per-UPS allocation limit during normal operation:
// capacity × (y/x + ReserveUtilization × (1 − y/x)) × Oversubscription.
// At full reserve utilization and no oversubscription this is the UPS's
// rated capacity (the Flex Eq. 2 form); at zero reserve utilization it is
// the conventional y/x limit.
func (r *Room) NormalLimit(u power.UPSID) power.Watts {
	frac := r.Topo.Design.AllocationLimitFraction()
	frac += r.ReserveUtilization * (1 - frac)
	return power.Watts(frac * float64(r.Topo.UPSes[u].Capacity) * r.oversub())
}

func (r *Room) oversub() float64 {
	if r.Oversubscription < 1 {
		return 1
	}
	return r.Oversubscription
}

// AllocatablePower is the total power the room may allocate: the sum of
// the per-UPS normal limits.
func (r *Room) AllocatablePower() power.Watts {
	var sum power.Watts
	for u := range r.Topo.UPSes {
		sum += r.NormalLimit(power.UPSID(u))
	}
	return sum
}

// NewRoom builds a room with uniform slots per PDU-pair and no cooling
// constraint.
func NewRoom(topo *power.Topology, slotsPerPair int) (*Room, error) {
	if slotsPerPair <= 0 {
		return nil, fmt.Errorf("placement: slotsPerPair must be positive, got %d", slotsPerPair)
	}
	slots := make([]int, len(topo.Pairs))
	for i := range slots {
		slots[i] = slotsPerPair
	}
	return &Room{Topo: topo, SlotsPerPair: slots, ReserveUtilization: 1, Oversubscription: 1}, nil
}

// PartialReserveRoom builds a room that allocates only the given fraction
// of the reserved power (paper §VI: production starts at 42%, where no
// workload ever needs to be shut down — throttling covers every failover).
func PartialReserveRoom(topo *power.Topology, slotsPerPair int, reserveUtilization float64) (*Room, error) {
	if reserveUtilization < 0 || reserveUtilization > 1 {
		return nil, fmt.Errorf("placement: reserve utilization %v outside [0,1]", reserveUtilization)
	}
	room, err := NewRoom(topo, slotsPerPair)
	if err != nil {
		return nil, err
	}
	room.ReserveUtilization = reserveUtilization
	return room, nil
}

// PaperRoom builds the paper's §V-A evaluation room: a 9.6MW 4N/3 room
// (4 × 2.4MW UPSes), three PDU-pairs per UPS combination (18 pairs), with
// 60 rack slots per pair (space is deliberately
// non-binding: the paper treats power as the bottleneck resource, §II-C).
func PaperRoom() *Room {
	topo, err := power.NewRoom(power.RoomConfig{
		Design:              power.Redundancy{X: 4, Y: 3},
		UPSCapacity:         2.4 * power.MW,
		PairsPerCombination: 3,
	})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	room, err := NewRoom(topo, 60)
	if err != nil {
		panic(err)
	}
	return room
}

// EmulationRoom builds the paper's §V-C emulation room: 4 × 1.2MW UPSes
// (4.8MW, zero reserved power), 36 rows of 10 racks — six rows (60 slots)
// per UPS combination, one PDU-pair per combination.
func EmulationRoom() *Room {
	topo, err := power.NewRoom(power.RoomConfig{
		Design:              power.Redundancy{X: 4, Y: 3},
		UPSCapacity:         1.2 * power.MW,
		PairsPerCombination: 1,
	})
	if err != nil {
		panic(err)
	}
	room, err := NewRoom(topo, 60)
	if err != nil {
		panic(err)
	}
	return room
}

// TotalSlots returns the room's total rack capacity.
func (r *Room) TotalSlots() int {
	n := 0
	for _, s := range r.SlotsPerPair {
		n += s
	}
	return n
}

// Placement is the result of running a policy: which PDU-pair each placed
// deployment went to. Deployments absent from Assignments were rejected
// (the paper routes those to other rooms).
type Placement struct {
	Room        *Room
	Deployments []workload.Deployment
	// Assignments maps deployment ID → PDU-pair.
	Assignments map[int]power.PDUPairID
}

// Placed returns the deployments that were placed.
func (p *Placement) Placed() []workload.Deployment {
	var out []workload.Deployment
	for _, d := range p.Deployments {
		if _, ok := p.Assignments[d.ID]; ok {
			out = append(out, d)
		}
	}
	return out
}

// Unplaced returns the rejected deployments.
func (p *Placement) Unplaced() []workload.Deployment {
	var out []workload.Deployment
	for _, d := range p.Deployments {
		if _, ok := p.Assignments[d.ID]; !ok {
			out = append(out, d)
		}
	}
	return out
}

// PairLoad returns the full allocated power per PDU-pair (Pow_d terms).
func (p *Placement) PairLoad() power.PairLoad {
	load := power.NewPairLoad(p.Room.Topo)
	for _, d := range p.Deployments {
		if pid, ok := p.Assignments[d.ID]; ok {
			load[pid] += d.TotalPower()
		}
	}
	return load
}

// CapPairLoad returns the post-shave power per PDU-pair (CapPow_d terms,
// Eq. 3): the worst-case load after Flex shuts down software-redundant
// racks and throttles cap-able racks to their flex power. Under
// oversubscription the worst-case realized draw of an allocation is its
// nameplate divided by the oversubscription factor (normal-operation
// capping bounds the joint peak), so the Eq. 4 terms scale down by it.
func (p *Placement) CapPairLoad() power.PairLoad {
	load := power.NewPairLoad(p.Room.Topo)
	inv := 1 / p.Room.oversub()
	for _, d := range p.Deployments {
		if pid, ok := p.Assignments[d.ID]; ok {
			load[pid] += power.Watts(float64(d.CapPower()) * inv)
		}
	}
	return load
}

// Validate re-checks every constraint from scratch: space, normal-operation
// capacity (Eq. 2), and failover safety with maximal shaving (Eq. 4) for
// every possible UPS failure. It returns nil when the placement is safe.
func (p *Placement) Validate() error {
	topo := p.Room.Topo
	// Space.
	used := make([]int, len(topo.Pairs))
	for _, d := range p.Deployments {
		if pid, ok := p.Assignments[d.ID]; ok {
			if int(pid) < 0 || int(pid) >= len(topo.Pairs) {
				return fmt.Errorf("placement: deployment %d assigned to unknown pair %d", d.ID, pid)
			}
			used[pid] += d.Racks
		}
	}
	for pid, u := range used {
		if u > p.Room.SlotsPerPair[pid] {
			return fmt.Errorf("placement: pair %d uses %d slots of %d", pid, u, p.Room.SlotsPerPair[pid])
		}
	}
	// PDU-pair (busway) ratings.
	if p.Room.PairCapacity > 0 {
		pairPow := power.NewPairLoad(topo)
		for _, d := range p.Deployments {
			if pid, ok := p.Assignments[d.ID]; ok {
				pairPow[pid] += d.TotalPower()
			}
		}
		for pid, w := range pairPow {
			if w > p.Room.PairCapacity+power.CapacityTolerance {
				return fmt.Errorf("placement: pair %d allocates %v over its %v rating", pid, w, p.Room.PairCapacity)
			}
		}
	}
	// Cooling.
	if p.Room.CoolingCFM > 0 {
		needed := float64(p.PairLoad().Total()) * p.Room.CFMPerWatt
		if needed > p.Room.CoolingCFM+1e-6 {
			return fmt.Errorf("placement: cooling demand %.0f CFM exceeds %.0f CFM", needed, p.Room.CoolingCFM)
		}
	}
	// Normal operation (Eq. 2): the per-UPS allocation limit is the rated
	// capacity at full reserve utilization, less for partial-reserve rooms.
	load := p.PairLoad()
	for u, w := range topo.UPSLoads(load) {
		if w > p.Room.NormalLimit(power.UPSID(u))+power.CapacityTolerance {
			return fmt.Errorf("placement: normal-operation load on UPS %d exceeds its allocation limit", u)
		}
	}
	// Failover with maximal shaving (Eq. 4) for every failure.
	capLoad := p.CapPairLoad()
	for f := range topo.UPSes {
		if !topo.FailoverWithinCapacity(capLoad, power.UPSID(f)) {
			return fmt.Errorf("placement: failure of UPS %d is unsafe even after maximal shaving", f)
		}
	}
	return nil
}

// Policy places a trace of deployment requests into a room. Place honors
// ctx: policies return early with context.Cause(ctx) when it is canceled,
// and deadline-aware policies (FlexOffline) budget their ILP solves
// against it.
type Policy interface {
	Name() string
	Place(ctx context.Context, room *Room, trace []workload.Deployment) (*Placement, error)
}
