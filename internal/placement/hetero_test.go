package placement

import (
	"context"
	"math/rand"
	"testing"

	"flex/internal/power"
	"flex/internal/workload"
)

// heteroRoom builds a 4N/3 room with non-uniform UPS capacities: the
// paper's formulation (Eq. 2/4) is per-UPS, so heterogeneous rooms must
// work without code changes.
func heteroRoom(t *testing.T) *Room {
	t.Helper()
	upses := []power.UPS{
		{ID: 0, Name: "UPS-1", Capacity: 2.8 * power.MW},
		{ID: 1, Name: "UPS-2", Capacity: 2.4 * power.MW},
		{ID: 2, Name: "UPS-3", Capacity: 2.4 * power.MW},
		{ID: 3, Name: "UPS-4", Capacity: 2.0 * power.MW},
	}
	var pairs []power.PDUPair
	id := 0
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			pairs = append(pairs, power.PDUPair{
				ID: power.PDUPairID(id), Name: "p", UPSes: [2]power.UPSID{power.UPSID(a), power.UPSID(b)},
			})
			id++
		}
	}
	topo, err := power.NewCustomTopology(power.Redundancy{X: 4, Y: 3}, upses, pairs)
	if err != nil {
		t.Fatal(err)
	}
	room, err := NewRoom(topo, 80)
	if err != nil {
		t.Fatal(err)
	}
	return room
}

func TestHeterogeneousRoomPlacementSafety(t *testing.T) {
	room := heteroRoom(t)
	cfg := workload.DefaultTraceConfig(room.Topo.ProvisionedPower())
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{BalancedRoundRobin{}, FlexOffline{BatchFraction: 0.5, MaxNodes: 150}} {
		pl, err := pol.Place(context.Background(), room, trace)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if len(pl.Placed()) == 0 {
			t.Fatalf("%s: nothing placed", pol.Name())
		}
		// Heterogeneity must be respected: the small UPS-4 never exceeds
		// its 2.0MW on any failover after shaving.
		capLoad := pl.CapPairLoad()
		for f := 0; f < 4; f++ {
			loads := room.Topo.FailoverLoads(capLoad, power.UPSID(f))
			for u, w := range loads {
				if power.UPSID(u) == power.UPSID(f) {
					continue
				}
				if w > room.Topo.UPSes[u].Capacity+power.CapacityTolerance {
					t.Fatalf("%s: UPS %d over its heterogeneous rating on failure of %d", pol.Name(), u, f)
				}
			}
		}
	}
}
