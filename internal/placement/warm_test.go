package placement

import (
	"math/rand"
	"testing"

	"flex/internal/milp"
	"flex/internal/power"
	"flex/internal/workload"
)

// warmBatch builds a reproducible batch of n deployments for the paper
// room.
func warmBatch(t *testing.T, n int) []workload.Deployment {
	t.Helper()
	room := PaperRoom()
	trace, err := workload.GenerateTrace(
		workload.DefaultTraceConfig(room.Topo.ProvisionedPower()), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for len(trace) < n {
		clone := trace[len(trace)%len(trace)]
		clone.ID = 10_000 + len(trace)
		trace = append(trace, clone)
	}
	return trace[:n]
}

// assertFeasible checks an incumbent against every ILP constraint.
func assertFeasible(t *testing.T, prob *milp.Problem, x []float64) {
	t.Helper()
	for i, c := range prob.LP.Constraints {
		sum := 0.0
		for j, coeff := range c.Coeffs {
			sum += coeff * x[j]
		}
		if sum > c.RHS+1e-6 {
			t.Fatalf("constraint %d violated: %.6f > %.6f", i, sum, c.RHS)
		}
	}
}

// TestWarmIncumbentStaleProfile: a missing or stale per-combo profile
// (wrong length for the combo count) yields nil — the caller falls back
// to the plain greedy incumbent.
func TestWarmIncumbentStaleProfile(t *testing.T) {
	room := PaperRoom()
	batch := warmBatch(t, 8)
	nc := len(CombosOf(room.Topo))
	prob := BatchILP(room, batch)
	if x := WarmIncumbent(prob, batch, nc, nil); x != nil {
		t.Fatal("nil profile should yield a nil incumbent")
	}
	stale := make([]float64, nc-1) // e.g. a profile recorded before a topology change
	if x := WarmIncumbent(prob, batch, nc, stale); x != nil {
		t.Fatal("stale (wrong-length) profile should yield a nil incumbent")
	}
	if x := WarmIncumbent(prob, batch, 0, nil); x != nil {
		t.Fatal("nc == 0 should yield a nil incumbent")
	}
}

// TestWarmIncumbentFeasibleAndWarm: with a fresh profile the incumbent is
// feasible, places something, and respects the warm profile — combos the
// profile marks as heavily loaded are avoided while lighter ones have
// room.
func TestWarmIncumbentFeasibleAndWarm(t *testing.T) {
	room := PaperRoom()
	batch := warmBatch(t, 8)
	nc := len(CombosOf(room.Topo))
	prob := BatchILP(room, batch)
	prevLoad := make([]float64, nc)
	prevLoad[0] = 100 * float64(power.MW) // combo 0 saturated in the profile
	x := WarmIncumbent(prob, batch, nc, prevLoad)
	if x == nil {
		t.Fatal("fresh profile should yield an incumbent")
	}
	assertFeasible(t, prob, x)
	placed, onCombo0 := 0, 0
	for di := range batch {
		for c := 0; c < nc; c++ {
			if x[di*nc+c] > 0.5 {
				placed++
				if c == 0 {
					onCombo0++
				}
			}
		}
	}
	if placed == 0 {
		t.Fatal("incumbent placed nothing on an empty room")
	}
	if onCombo0 != 0 {
		t.Fatalf("%d deployments landed on the profile's saturated combo", onCombo0)
	}
}

// TestWarmIncumbentOversizedBatch: a batch demanding far more than the
// room yields a partial incumbent — still feasible, with the overflow
// left unplaced rather than crammed in.
func TestWarmIncumbentOversizedBatch(t *testing.T) {
	room := PaperRoom()
	batch := warmBatch(t, 120) // ~3x the room's demand
	nc := len(CombosOf(room.Topo))
	prob := BatchILP(room, batch)
	x := WarmIncumbent(prob, batch, nc, make([]float64, nc))
	if x == nil {
		t.Fatal("oversized batch should still yield an incumbent")
	}
	assertFeasible(t, prob, x)
	placed := 0
	for _, v := range x {
		if v > 0.5 {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("oversized batch should still place a prefix")
	}
	if placed == len(batch) {
		t.Fatal("placing 3x the room's demand cannot be feasible")
	}
}

// TestWarmIncumbentNothingFits: when no deployment fits at all (each one
// alone exceeds every combo), the incumbent is all-zero — feasible by
// construction, never nil, so the solver still starts with a valid bound.
func TestWarmIncumbentNothingFits(t *testing.T) {
	room := EmulationRoom()
	nc := len(CombosOf(room.Topo))
	batch := []workload.Deployment{
		{ID: 1, Workload: "goliath", Category: workload.NonRedundantNonCapable,
			Racks: 61, PowerPerRack: 50 * power.KW, FlexPowerFraction: 1},
		{ID: 2, Workload: "goliath", Category: workload.NonRedundantNonCapable,
			Racks: 61, PowerPerRack: 50 * power.KW, FlexPowerFraction: 1},
	}
	prob := BatchILP(room, batch)
	x := WarmIncumbent(prob, batch, nc, make([]float64, nc))
	if x == nil {
		t.Fatal("unplaceable batch should yield an all-zero incumbent, not nil")
	}
	assertFeasible(t, prob, x)
	for j, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want all-zero", j, v)
		}
	}
	if obj := prob.ObjectiveValue(x); obj != 0 {
		t.Fatalf("all-zero incumbent has objective %v", obj)
	}
}
