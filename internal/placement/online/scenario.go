// Scenario scoring: when more than one UPS combination can take an
// arriving deployment, the admitter picks between them with the online
// sampling optimization trick — cheap greedy completions of a few sampled
// future-arrival suffixes (drawn from a pre-generated workload stream),
// plus a deviation penalty against the per-combo target profile published
// by the warm background solver. All scoring runs on preallocated scratch
// buffers refreshed with copy(), keeping the admission path on the
// allocfree-analyzer-proven hot path.
package online

import (
	"fmt"
	"math/rand"

	"flex/internal/workload"
)

// scenarioDep is a pre-reduced future arrival: exactly the three numbers
// the simulated greedy completion needs.
type scenarioDep struct {
	racks  int
	pow    float64
	capPow float64
}

// scenarioStride decorrelates the sampled suffixes: scenario s starts at
// cursor + s*scenarioStride into the circular stream. Coprime with the
// default stream lengths.
const scenarioStride = 17

// devWeight trades scenario-placed watts against deviation from the
// solver's target profile. Both terms are in watts; the deviation term is
// deliberately the weaker signal so sampled evidence dominates when it is
// decisive and the target breaks ties.
const devWeight = 0.25

// initScenarios materializes the sampled future-arrival stream from
// cfg.ScenarioTrace or the default §V-A generator sized to the room.
func (a *Admitter) initScenarios() error {
	trace := a.cfg.ScenarioTrace
	if trace == nil {
		rng := rand.New(rand.NewSource(a.cfg.Seed))
		var err error
		trace, err = workload.GenerateTrace(
			workload.DefaultTraceConfig(a.room.Topo.ProvisionedPower()), rng)
		if err != nil {
			return fmt.Errorf("online: generating scenario stream: %w", err)
		}
	}
	if len(trace) == 0 {
		return fmt.Errorf("online: empty scenario stream")
	}
	a.streamDeps = append([]workload.Deployment(nil), trace...)
	a.stream = make([]scenarioDep, len(trace))
	for i, d := range trace {
		a.stream[i] = scenarioDep{
			racks:  d.Racks,
			pow:    float64(d.TotalPower()),
			capPow: float64(d.CapPower()) / a.oversub,
		}
	}
	return nil
}

// scoreCandidatesLocked picks the best combo among those with
// candPair >= 0 for a deployment of (pow, capPow, racks). Caller
// guarantees at least one candidate.
func (a *Admitter) scoreCandidatesLocked(pow, capPow float64, racks int) int {
	best, bestScore := -1, 0.0
	g := a.guidance.Load()
	for c := 0; c < a.nCombos; c++ {
		if a.candPair[c] < 0 {
			continue
		}
		score := a.scoreComboLocked(c, pow, capPow, racks, g.target)
		if best < 0 || score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// scoreComboLocked scores committing the in-flight deployment to combo c:
// the average power greedily placeable from sampled future suffixes,
// minus devWeight times the resulting distance from the target profile.
func (a *Admitter) scoreComboLocked(c int, pow, capPow float64, racks int, target []float64) float64 {
	dev := 0.0
	for k := 0; k < a.nCombos; k++ {
		load := a.comboPow[k]
		if k == c {
			load += pow
		}
		d := load - target[k]
		if d < 0 {
			d = -d
		}
		dev += d
	}
	if a.cfg.Scenarios <= 0 {
		return -dev
	}
	total := 0.0
	for s := 0; s < a.cfg.Scenarios; s++ {
		total += a.simulateSuffixLocked(c, pow, capPow, racks, a.scCursor+s*scenarioStride)
	}
	return total/float64(a.cfg.Scenarios) - devWeight*dev
}

// simulateSuffixLocked replays one sampled future suffix on the scratch
// state after committing the in-flight deployment to combo c, greedily
// placing each arrival on its least-loaded feasible combo, and returns
// the placed power. Combo-granular on purpose: pair-level best-fit inside
// a combo rarely changes which combo wins, and skipping it keeps the
// whole simulation a few thousand float ops.
func (a *Admitter) simulateSuffixLocked(c int, pow, capPow float64, racks, offset int) float64 {
	copy(a.runNormal, a.normal)
	copy(a.runFail, a.failCap)
	copy(a.runSlots, a.comboSlots)
	copy(a.runPow, a.comboPow)
	simPow, simCapPow := a.placedPow, a.placedCapPow
	comboApply(a.runNormal, a.runFail, a.nUPS, a.comboA[c], a.comboB[c], pow, capPow)
	a.runSlots[c] -= racks
	a.runPow[c] += pow
	simPow += pow
	simCapPow += capPow
	placed := 0.0
	n := len(a.stream)
	for k := 0; k < a.cfg.ScenarioDepth; k++ {
		dep := a.stream[(offset+k)%n]
		if a.coolPerWatt > 0 && (simPow+dep.pow)*a.coolPerWatt > a.coolCFM+coolTol {
			continue
		}
		if a.capBudget >= 0 && simCapPow+dep.capPow > a.capBudget+tol {
			continue
		}
		pick := -1
		for j := 0; j < a.nCombos; j++ {
			if a.runSlots[j] < dep.racks {
				continue
			}
			if pick >= 0 && a.runPow[j] >= a.runPow[pick] {
				continue
			}
			if !comboFits(a.runNormal, a.runFail, a.normalLimit, a.upsCap, a.nUPS, a.comboA[j], a.comboB[j], dep.pow, dep.capPow) {
				continue
			}
			pick = j
		}
		if pick < 0 {
			continue
		}
		comboApply(a.runNormal, a.runFail, a.nUPS, a.comboA[pick], a.comboB[pick], dep.pow, dep.capPow)
		a.runSlots[pick] -= dep.racks
		a.runPow[pick] += dep.pow
		simPow += dep.pow
		simCapPow += dep.capPow
		placed += dep.pow
	}
	return placed
}
