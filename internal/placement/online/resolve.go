// Warm background re-solve: the admitter keeps an exact solver warm off
// the decision path. Every ResolveEvery admissions it re-solves the
// committed state plus a sampled future window with the FlexOffline batch
// ILP — warm-started from the live per-combo load profile through
// placement.WarmIncumbent — and publishes the resulting per-combo target
// profile via an atomic pointer swap. The hot path snapshots the pointer;
// decisions never block on the solver.
package online

import (
	"context"

	"flex/internal/milp"
	"flex/internal/placement"
)

// ResolveOnce runs one exact re-solve of the committed state plus the
// next sampled future window and publishes the improved target profile.
// It is normally driven by StartResolve's goroutine (or the Online
// policy's SyncResolve loop) but is safe to call directly; the admitter
// keeps admitting concurrently. The solve is budgeted by ResolveBudget /
// ResolveNodes and honors ctx cancellation.
func (a *Admitter) ResolveOnce(ctx context.Context) error {
	// Snapshot the committed deployments, the next future window, and the
	// live per-combo loads (the warm-start profile) under the lock;
	// everything after runs unlocked.
	a.mu.Lock()
	batch := a.futureBatch[:0]
	for i := 0; i < a.nCommitted; i++ {
		batch = append(batch, a.committed[i].d)
	}
	n := len(a.streamDeps)
	for k := 0; k < a.cfg.ScenarioDepth && k < n; k++ {
		d := a.streamDeps[(a.scCursor+k)%n]
		// Future-window IDs must not collide with committed ones; the ILP
		// itself is index-based, but keep the batch well-formed.
		d.ID = -(k + 1)
		batch = append(batch, d)
	}
	prevLoad := make([]float64, a.nCombos)
	copy(prevLoad, a.comboPow)
	a.futureBatch = batch
	a.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}

	f := placement.FlexOffline{
		SkipDiversityReserve: a.cfg.SkipDiversityReserve,
		Workers:              a.cfg.ResolveWorkers,
	}
	prob := f.BatchILP(a.room, batch)
	nc := a.nCombos
	incumbent := milp.GreedyBinaryIncumbent(prob)
	if warm := placement.WarmIncumbent(prob, batch, nc, prevLoad); warm != nil {
		if incumbent == nil || prob.ObjectiveValue(warm) > prob.ObjectiveValue(incumbent) {
			incumbent = warm
		}
	}
	warmObj := 0.0
	if incumbent != nil {
		warmObj = prob.ObjectiveValue(incumbent)
	}
	res, err := milp.SolveContext(ctx, prob, milp.Options{
		Workers:       a.cfg.ResolveWorkers,
		Deterministic: true,
		TimeLimit:     a.cfg.ResolveBudget,
		MaxNodes:      a.cfg.ResolveNodes,
		Incumbent:     incumbent,
		RelGap:        0.001,
	})
	if err != nil {
		return err
	}
	a.cfg.Metrics.Resolves.Inc()
	var x []float64
	switch res.Status {
	case milp.Optimal, milp.Feasible:
		x = res.X
	}
	if x == nil {
		return nil
	}
	const mw = 1e6 // the batch ILP objective is in MW
	target := make([]float64, nc)
	for di := range batch {
		pow := float64(batch[di].TotalPower())
		for c := 0; c < nc; c++ {
			if x[di*nc+c] > 0.5 {
				target[c] += pow
				break
			}
		}
	}
	obj := prob.ObjectiveValue(x) * mw
	if obj > warmObj*mw+tol {
		a.cfg.Metrics.ResolveImprovements.Inc()
	}
	a.cfg.Metrics.ResolveObjective.Set(obj)
	a.guidance.Store(&guidance{target: target, objective: obj, solved: true})
	return nil
}

// StartResolve launches the background resolver goroutine: it waits for
// the admission path's every-ResolveEvery trigger and runs ResolveOnce
// per trigger. The returned stop function cancels the goroutine and
// waits for it; it is idempotent. A second StartResolve while one is
// live is a no-op returning a no-op stop.
func (a *Admitter) StartResolve(ctx context.Context) (stop func()) {
	a.mu.Lock()
	if a.started || a.cfg.ResolveEvery < 0 {
		a.mu.Unlock()
		return func() {}
	}
	a.started = true
	a.mu.Unlock()
	rctx, cancel := context.WithCancel(ctx)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for {
			select {
			case <-rctx.Done():
				return
			case <-a.resolveCh:
				// Best-effort: a canceled or deadline-hit solve keeps the
				// previous guidance; the next trigger retries.
				_ = a.ResolveOnce(rctx)
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		cancel()
		a.wg.Wait()
		a.mu.Lock()
		a.started = false
		a.mu.Unlock()
	}
}

// takeResolvePending consumes the every-ResolveEvery trigger for inline
// (SyncResolve) resolving.
func (a *Admitter) takeResolvePending() bool {
	a.mu.Lock()
	p := a.resolvePending
	a.resolvePending = false
	a.mu.Unlock()
	return p
}
