package online

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"flex/internal/placement"
	"flex/internal/power"
	"flex/internal/workload"
)

func emuTrace(t testing.TB, room *placement.Room, seed int64) []workload.Deployment {
	t.Helper()
	trace, err := workload.GenerateTrace(
		workload.DefaultTraceConfig(room.Topo.ProvisionedPower()), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	return trace
}

// deterministicConfig runs the resolver inline so two runs with the same
// seed make identical decisions.
func deterministicConfig(seed int64) Config {
	return Config{Seed: seed, SyncResolve: true, ResolveEvery: 8, ResolveNodes: 200, ResolveBudget: 5 * time.Second}
}

// TestOnlinePlaceSafe: every placement the online policy produces on the
// §V-C emulation room passes the from-scratch Validate — space, Eq. 2
// normal-operation capacity, and Eq. 4 failover safety for every UPS
// failure.
func TestOnlinePlaceSafe(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		room := placement.EmulationRoom()
		trace := emuTrace(t, room, seed)
		p, err := Online{Config: deterministicConfig(seed)}.Place(context.Background(), room, trace)
		if err != nil {
			t.Fatalf("seed %d: Place: %v", seed, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: unsafe placement: %v", seed, err)
		}
		if len(p.Assignments) == 0 {
			t.Fatalf("seed %d: nothing placed", seed)
		}
	}
}

// TestOnlineDeterministic: same seed and SyncResolve ⇒ identical
// assignments.
func TestOnlineDeterministic(t *testing.T) {
	room1, room2 := placement.EmulationRoom(), placement.EmulationRoom()
	trace := emuTrace(t, room1, 7)
	p1, err := Online{Config: deterministicConfig(7)}.Place(context.Background(), room1, trace)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Online{Config: deterministicConfig(7)}.Place(context.Background(), room2, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Assignments) != len(p2.Assignments) {
		t.Fatalf("placed %d vs %d deployments", len(p1.Assignments), len(p2.Assignments))
	}
	for id, pid := range p1.Assignments {
		if p2.Assignments[id] != pid {
			t.Fatalf("deployment %d: pair %d vs %d", id, pid, p2.Assignments[id])
		}
	}
}

// TestOnlineGapVsOffline is the acceptance criterion of ISSUE 9 in test
// form: on the §V-C trace the online policy's stranded power stays within
// 10 percentage points of the FlexOffline optimum, with zero safety
// violations.
func TestOnlineGapVsOffline(t *testing.T) {
	room := placement.EmulationRoom()
	trace := emuTrace(t, room, 42)
	on, err := Online{Config: deterministicConfig(42)}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := on.Validate(); err != nil {
		t.Fatalf("online placement unsafe: %v", err)
	}
	off, err := placement.FlexOfflineOracle().Place(context.Background(), placement.EmulationRoom(), trace)
	if err != nil {
		t.Fatal(err)
	}
	gap := on.StrandedFraction() - off.StrandedFraction()
	t.Logf("stranded: online %.4f, offline %.4f, gap %.4f", on.StrandedFraction(), off.StrandedFraction(), gap)
	if gap > 0.10 {
		t.Fatalf("online stranded fraction %.4f exceeds offline %.4f by more than 0.10",
			on.StrandedFraction(), off.StrandedFraction())
	}
}

// TestAdmitRemove: removing a committed deployment restores every
// residual table, so the freed capacity is admittable again; unknown and
// duplicate IDs are handled.
func TestAdmitRemove(t *testing.T) {
	room := placement.EmulationRoom()
	adm, err := NewAdmitter(room, Config{Seed: 3, ResolveEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	trace := emuTrace(t, room, 3)
	d := trace[0]
	if _, ok := adm.Admit(d); !ok {
		t.Fatal("first admission rejected on an empty room")
	}
	if _, ok := adm.Admit(d); ok {
		t.Fatal("duplicate ID admitted")
	}
	before := adm.Snapshot()
	if adm.Remove(999999) {
		t.Fatal("removed unknown ID")
	}
	if !adm.Remove(d.ID) {
		t.Fatal("failed to remove committed deployment")
	}
	after := adm.Snapshot()
	if after.Committed != before.Committed-1 || after.PlacedPower != 0 {
		t.Fatalf("remove did not restore state: %+v", after)
	}
	if _, ok := adm.Admit(d); !ok {
		t.Fatal("re-admission after remove rejected")
	}
}

// TestAdmitRejectLeavesStateUntouched: fill the room until a rejection,
// then check the rejection changed nothing.
func TestAdmitRejectLeavesStateUntouched(t *testing.T) {
	room := placement.EmulationRoom()
	adm, err := NewAdmitter(room, Config{Seed: 5, ResolveEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	trace := emuTrace(t, room, 5)
	rejected := -1
	for _, d := range trace {
		if _, ok := adm.Admit(d); !ok {
			rejected = d.ID
			break
		}
	}
	if rejected < 0 {
		t.Skip("trace fit entirely; no rejection to test")
	}
	before := adm.Snapshot()
	big := workload.Deployment{
		ID: 1 << 20, Racks: 60, PowerPerRack: 17.2 * power.KW,
		Category: workload.NonRedundantNonCapable, FlexPowerFraction: 1,
	}
	if _, ok := adm.Admit(big); ok {
		t.Fatal("expected rejection of an oversized deployment on a full room")
	}
	after := adm.Snapshot()
	if after.Committed != before.Committed || after.PlacedPower != before.PlacedPower {
		t.Fatalf("rejection mutated state: before %+v after %+v", before, after)
	}
}

// TestAdmitAllocFree pins the acceptance criterion: the hot-path
// admit/remove cycle performs zero heap allocations at steady state.
func TestAdmitAllocFree(t *testing.T) {
	room := placement.EmulationRoom()
	adm, err := NewAdmitter(room, Config{Seed: 11, ResolveEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	trace := emuTrace(t, room, 11)
	// Warm up: commit a realistic base load, then churn the remainder.
	for _, d := range trace[:len(trace)/2] {
		adm.Admit(d)
	}
	churn := trace[len(trace)/2:]
	if len(churn) == 0 {
		t.Fatal("trace too short")
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		d := churn[i%len(churn)]
		if _, ok := adm.Admit(d); ok {
			adm.Remove(d.ID)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("hot-path admit/remove allocates %.1f per op, want 0", allocs)
	}
}

// TestResolvePublishesGuidance: the warm re-solve publishes a solved
// target profile and objective the hot path snapshots.
func TestResolvePublishesGuidance(t *testing.T) {
	room := placement.EmulationRoom()
	cfg := deterministicConfig(13)
	cfg.ResolveEvery = 4
	adm, err := NewAdmitter(room, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := emuTrace(t, room, 13)
	resolved := false
	for _, d := range trace {
		adm.Admit(d)
		if adm.takeResolvePending() {
			if err := adm.ResolveOnce(context.Background()); err != nil {
				t.Fatalf("ResolveOnce: %v", err)
			}
			resolved = true
		}
	}
	if !resolved {
		t.Fatal("resolve never triggered")
	}
	s := adm.Snapshot()
	if s.ResolverObjective <= 0 {
		t.Fatalf("no solved guidance published: %+v", s)
	}
	if got := adm.cfg.Metrics.Resolves.Value(); got == 0 {
		t.Fatal("resolve counter not incremented")
	}
	var total power.Watts
	for _, w := range s.TargetLoad {
		total += w
	}
	if total <= 0 {
		t.Fatal("published target profile is empty")
	}
}

// TestBackgroundResolveDoesNotBlockAdmission: with the async resolver
// running, admissions complete and the final placement stays safe (the
// race detector guards the pointer-swap protocol).
func TestBackgroundResolveDoesNotBlockAdmission(t *testing.T) {
	room := placement.EmulationRoom()
	trace := emuTrace(t, room, 17)
	cfg := Config{Seed: 17, ResolveEvery: 4, ResolveNodes: 100, ResolveBudget: time.Second}
	p, err := Online{Config: cfg}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("unsafe placement with async resolver: %v", err)
	}
}

// TestOnlineRowsUnsupported: row-level space modelling cannot run on the
// allocation-free hot path; the constructor says so instead of silently
// mis-placing.
func TestOnlineRowsUnsupported(t *testing.T) {
	room := placement.EmulationRoom()
	room.RowsPerPair, room.RowSlots = 6, 10
	if _, err := NewAdmitter(room, Config{}); err == nil {
		t.Fatal("expected an error for a rows-enabled room")
	}
	if _, err := (Online{}).Place(context.Background(), room, nil); err == nil {
		t.Fatal("expected Place to surface the rows error")
	}
}

// TestOnlineCtxCancel: a canceled ctx aborts the trace promptly.
func TestOnlineCtxCancel(t *testing.T) {
	room := placement.EmulationRoom()
	trace := emuTrace(t, room, 19)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Online{Config: Config{ResolveEvery: -1}}).Place(ctx, room, trace); err == nil {
		t.Fatal("expected context cancellation error")
	}
}
