// Package online implements online incremental placement: deployments
// arrive one at a time and are accepted or rejected in microseconds to
// milliseconds, without touching the MILP on the decision path (ROADMAP
// item 2; "Online Rack Placement in Large-Scale Data Centers" is the
// closest published system — online sampling optimization, deployed at
// Microsoft).
//
// The hot path is an Admitter holding incremental safety state per room:
// per-combo residual headroom, Eq. 2 normal-operation headroom per UPS,
// Eq. 4 single-UPS-failover feasibility deltas for every (failed,
// survivor) combination, and the cooling / pair-rating / diversity
// budgets. Each place or remove updates the tables in O(combos touched),
// so admission is a table lookup plus a handful of float comparisons —
// allocation-free (//flex:hotpath, proven by the allocfree analyzer and
// pinned by an AllocsPerRun test).
//
// Candidate combos are scored with sampled future-arrival scenarios: a
// few cheap greedy completions of sampled demand suffixes (reusing the
// internal/workload generator), plus a deviation penalty against the
// target per-combo load profile published by the warm background solver
// (see resolve.go). The exact solver never blocks a decision: it re-solves
// the committed state asynchronously and publishes improved guidance via
// an atomic pointer swap the hot path snapshots.
package online

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flex/internal/obs"
	"flex/internal/placement"
	"flex/internal/power"
	"flex/internal/workload"
)

// tol mirrors power.CapacityTolerance for the float comparisons on the
// admission path.
const tol = float64(power.CapacityTolerance)

// coolTol mirrors the cooling slack used by placement's canPlace.
const coolTol = 1e-6

// Config parameterizes an Admitter (and the Online policy wrapping it).
// The zero value selects the defaults documented per field.
type Config struct {
	// Seed drives scenario-stream generation. The same seed and trace
	// reproduce the same decisions (with SyncResolve or with the resolver
	// disabled; an async resolver publishes guidance at racy times).
	Seed int64
	// Scenarios is the number of sampled future-arrival suffixes scored
	// per contested admission. 0 means 4; negative disables scenario
	// scoring (the deviation term against the solver target remains).
	Scenarios int
	// ScenarioDepth is the number of future deployments greedily completed
	// per scenario. 0 means 16.
	ScenarioDepth int
	// ScenarioTrace overrides the sampled arrival stream. Nil generates a
	// default stream from the room's provisioned power with the paper's
	// §V-A demand statistics.
	ScenarioTrace []workload.Deployment
	// ResolveEvery triggers a background (or, with SyncResolve, inline)
	// exact re-solve after that many admissions. 0 means 16; negative
	// disables the warm solver entirely.
	ResolveEvery int
	// ResolveNodes bounds each re-solve's branch-and-bound nodes. 0 means
	// 400.
	ResolveNodes int
	// ResolveBudget bounds each re-solve's wall time. 0 means 2s.
	ResolveBudget time.Duration
	// ResolveWorkers is the solver worker count (0 = NumCPU; the solve is
	// deterministic for any value).
	ResolveWorkers int
	// SyncResolve runs re-solves inline on the admission loop instead of
	// in a background goroutine — deterministic, for tests and smokes.
	SyncResolve bool
	// SkipDiversityReserve disables the workload-diversity headroom check
	// (see FlexOffline.SkipDiversityReserve): by default the admitter
	// keeps the cumulative post-shave allocation within the failover
	// budget so early non-shaveable-heavy arrivals cannot strand the
	// remaining capacity.
	SkipDiversityReserve bool
	// Metrics receives admission and resolver observability. Nil wires a
	// private throwaway registry so the hot path never branches on nil.
	Metrics *Metrics
	// Now supplies time for the admission-latency histogram (for tests);
	// nil uses time.Now. It is never read on the proven hot path itself.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Scenarios == 0 {
		c.Scenarios = 4
	}
	if c.ScenarioDepth == 0 {
		c.ScenarioDepth = 16
	}
	if c.ResolveEvery == 0 {
		c.ResolveEvery = 16
	}
	if c.ResolveNodes == 0 {
		c.ResolveNodes = 400
	}
	if c.ResolveBudget == 0 {
		c.ResolveBudget = 2 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(obs.NewRegistry())
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// committedRec is one live deployment with its PDU-pair.
type committedRec struct {
	d   workload.Deployment
	pid power.PDUPairID
}

// guidance is the solver-published steering state the hot path snapshots
// via atomic pointer swap. target is the per-combo load (watts) of the
// best known exact plan for committed-plus-sampled-future demand.
type guidance struct {
	target    []float64
	objective float64 // planned placed power (watts) of the published plan
	solved    bool    // false for the initial even-spread default
}

// Admitter is the online placement engine for one room. All methods are
// safe for concurrent use; Admit and Remove stay on the allocation-free
// hot path. The zero value is not usable — call NewAdmitter.
type Admitter struct {
	mu   sync.Mutex
	room *placement.Room
	cfg  Config

	combos  []placement.Combo
	nUPS    int
	nCombos int
	oversub float64

	// Static limits, precomputed at construction.
	normalLimit []float64 // per-UPS Eq. 2 allocation limit
	upsCap      []float64 // per-UPS rated capacity (Eq. 4 right-hand side)
	pairCap     float64   // per-pair rating; 0 disables
	coolPerWatt float64   // CFM per placed watt; 0 disables cooling checks
	coolCFM     float64
	capBudget   float64 // diversity reserve budget (watts); <0 disables

	// Combo geometry.
	comboA, comboB []int // the two UPS indices per combo
	comboPairs     [][]power.PDUPairID
	comboOfPair    []int

	// Live residual state, updated in O(combos touched) per place/remove.
	slotsLeft    []int
	pairPow      []float64
	normal       []float64 // per-UPS normal-operation load
	failCap      []float64 // flattened [failed*nUPS+survivor] post-shave failover load
	comboSlots   []int
	comboPow     []float64
	placedPow    float64
	placedCapPow float64

	// Committed deployments; bounded by the room's total rack slots, so
	// the backing array never grows after construction.
	committed  []committedRec
	nCommitted int
	idIndex    map[int]int

	// Scenario stream and scoring scratch (scenario.go).
	stream    []scenarioDep
	scCursor  int
	candPair  []int // per-combo chosen pair for the admission in flight; -1 infeasible
	runNormal []float64
	runFail   []float64
	runSlots  []int
	runPow    []float64

	// Warm-solver state (resolve.go).
	guidance       atomic.Pointer[guidance]
	resolveCh      chan struct{}
	sinceResolve   int
	resolvePending bool
	wg             sync.WaitGroup
	started        bool
	streamDeps     []workload.Deployment // scenario stream in Deployment form
	futureBatch    []workload.Deployment // resolver-side scratch, cold path

	decisions uint64
}

// NewAdmitter builds the incremental admission state for room. Rooms with
// row-level space modelling are not supported (the row fit search is not
// allocation-free); placement.Policy callers use FlexOffline for those.
func NewAdmitter(room *placement.Room, cfg Config) (*Admitter, error) {
	if room.RowsPerPair > 0 || room.RowSlots > 0 {
		return nil, fmt.Errorf("online: row-level space modelling is not supported on the admission hot path")
	}
	cfg = cfg.withDefaults()
	topo := room.Topo
	nUPS := len(topo.UPSes)
	combos := placement.CombosOf(topo)
	nc := len(combos)
	if nc == 0 {
		return nil, fmt.Errorf("online: room has no PDU-pairs")
	}
	oversub := room.Oversubscription
	if oversub < 1 {
		oversub = 1
	}
	a := &Admitter{
		room:        room,
		cfg:         cfg,
		combos:      combos,
		nUPS:        nUPS,
		nCombos:     nc,
		oversub:     oversub,
		normalLimit: make([]float64, nUPS),
		upsCap:      make([]float64, nUPS),
		pairCap:     float64(room.PairCapacity),
		coolCFM:     room.CoolingCFM,
		capBudget:   -1,
		comboA:      make([]int, nc),
		comboB:      make([]int, nc),
		comboPairs:  make([][]power.PDUPairID, nc),
		comboOfPair: make([]int, len(topo.Pairs)),
		slotsLeft:   append([]int(nil), room.SlotsPerPair...),
		pairPow:     make([]float64, len(topo.Pairs)),
		normal:      make([]float64, nUPS),
		failCap:     make([]float64, nUPS*nUPS),
		comboSlots:  make([]int, nc),
		comboPow:    make([]float64, nc),
		candPair:    make([]int, nc),
		runNormal:   make([]float64, nUPS),
		runFail:     make([]float64, nUPS*nUPS),
		runSlots:    make([]int, nc),
		runPow:      make([]float64, nc),
		resolveCh:   make(chan struct{}, 1),
	}
	if room.CoolingCFM > 0 {
		a.coolPerWatt = room.CFMPerWatt
	}
	if !cfg.SkipDiversityReserve {
		a.capBudget = float64(topo.ProvisionedPower()) * topo.Design.AllocationLimitFraction()
	}
	for u := 0; u < nUPS; u++ {
		a.normalLimit[u] = float64(room.NormalLimit(power.UPSID(u)))
		a.upsCap[u] = float64(topo.UPSes[u].Capacity)
	}
	for c, cb := range combos {
		a.comboA[c] = int(cb.UPSes[0])
		a.comboB[c] = int(cb.UPSes[1])
		a.comboPairs[c] = cb.Pairs
		for _, pid := range cb.Pairs {
			a.comboOfPair[pid] = c
			a.comboSlots[c] += room.SlotsPerPair[pid]
		}
	}
	maxDeps := room.TotalSlots()
	a.committed = make([]committedRec, maxDeps)
	a.idIndex = make(map[int]int, maxDeps)
	if err := a.initScenarios(); err != nil {
		return nil, err
	}
	// The pre-solve default steers toward an even spread: each combo's
	// share of the room's allocatable power.
	target := make([]float64, nc)
	for c := range target {
		target[c] = float64(room.AllocatablePower()) / float64(nc)
	}
	a.guidance.Store(&guidance{target: target})
	return a, nil
}

// Admit decides placement of d and commits it on acceptance, returning
// the chosen PDU-pair. The decision is a table lookup plus a handful of
// float comparisons against the incrementally maintained residual
// headroom; contested admissions are scored with sampled future-arrival
// scenarios and the background solver's target profile. Rejections leave
// the state untouched. Safe for concurrent use.
//
//flex:hotpath
func (a *Admitter) Admit(d workload.Deployment) (power.PDUPairID, bool) {
	a.mu.Lock()
	pid, ok := a.admitLocked(d)
	a.mu.Unlock()
	if ok {
		a.cfg.Metrics.Admitted.Inc()
	} else {
		a.cfg.Metrics.Rejected.Inc()
	}
	return pid, ok
}

func (a *Admitter) admitLocked(d workload.Deployment) (power.PDUPairID, bool) {
	a.decisions++
	a.scCursor++
	if a.scCursor >= len(a.stream) {
		a.scCursor = 0
	}
	if _, dup := a.idIndex[d.ID]; dup || d.Racks <= 0 || a.nCommitted >= len(a.committed) {
		return -1, false
	}
	pow := float64(d.TotalPower())
	capPow := float64(d.CapPower()) / a.oversub
	// Room-level budgets first: cooling and the diversity reserve bind
	// identically for every combo.
	if a.coolPerWatt > 0 && (a.placedPow+pow)*a.coolPerWatt > a.coolCFM+coolTol {
		return -1, false
	}
	if a.capBudget >= 0 && a.placedCapPow+capPow > a.capBudget+tol {
		return -1, false
	}
	nFeasible, only := 0, -1
	for c := 0; c < a.nCombos; c++ {
		a.candPair[c] = -1
		if a.comboSlots[c] < d.Racks {
			continue
		}
		if !comboFits(a.normal, a.failCap, a.normalLimit, a.upsCap, a.nUPS, a.comboA[c], a.comboB[c], pow, capPow) {
			continue
		}
		pid := a.bestPairLocked(c, d.Racks, pow)
		if pid < 0 {
			continue
		}
		a.candPair[c] = pid
		nFeasible++
		only = c
	}
	if nFeasible == 0 {
		return -1, false
	}
	best := only
	if nFeasible > 1 {
		best = a.scoreCandidatesLocked(pow, capPow, d.Racks)
	}
	pid := power.PDUPairID(a.candPair[best])
	a.applyLocked(d, best, pid, pow, capPow)
	return pid, true
}

// bestPairLocked returns the best-fit feasible pair of combo c (smallest
// sufficient free space, honoring the pair rating), or -1.
func (a *Admitter) bestPairLocked(c, racks int, pow float64) int {
	best, bestFree := -1, int(^uint(0)>>1)
	for _, pid := range a.comboPairs[c] {
		free := a.slotsLeft[pid]
		if free < racks || free >= bestFree {
			continue
		}
		if a.pairCap > 0 && a.pairPow[pid]+pow > a.pairCap+tol {
			continue
		}
		best, bestFree = int(pid), free
	}
	return best
}

// applyLocked commits d to pair pid on combo c, updating every residual
// table in O(combos touched).
func (a *Admitter) applyLocked(d workload.Deployment, c int, pid power.PDUPairID, pow, capPow float64) {
	a.slotsLeft[pid] -= d.Racks
	a.comboSlots[c] -= d.Racks
	a.pairPow[pid] += pow
	a.comboPow[c] += pow
	comboApply(a.normal, a.failCap, a.nUPS, a.comboA[c], a.comboB[c], pow, capPow)
	a.placedPow += pow
	a.placedCapPow += capPow
	a.committed[a.nCommitted] = committedRec{d: d, pid: pid}
	a.idIndex[d.ID] = a.nCommitted
	a.nCommitted++
	a.cfg.Metrics.PlacedWatts.Set(a.placedPow)
	a.sinceResolve++
	if a.cfg.ResolveEvery > 0 && a.sinceResolve >= a.cfg.ResolveEvery {
		a.sinceResolve = 0
		a.resolvePending = true
		if a.started {
			select {
			case a.resolveCh <- struct{}{}:
			default:
			}
		}
	}
}

// Remove frees a committed deployment by ID, reversing its contribution
// to every residual table. It reports whether the ID was present. Safe
// for concurrent use.
//
//flex:hotpath
func (a *Admitter) Remove(id int) bool {
	a.mu.Lock()
	idx, ok := a.idIndex[id]
	if !ok {
		a.mu.Unlock()
		return false
	}
	rec := a.committed[idx]
	c := a.comboOfPair[rec.pid]
	pow := float64(rec.d.TotalPower())
	capPow := float64(rec.d.CapPower()) / a.oversub
	a.slotsLeft[rec.pid] += rec.d.Racks
	a.comboSlots[c] += rec.d.Racks
	a.pairPow[rec.pid] -= pow
	a.comboPow[c] -= pow
	comboApply(a.normal, a.failCap, a.nUPS, a.comboA[c], a.comboB[c], -pow, -capPow)
	a.placedPow -= pow
	a.placedCapPow -= capPow
	last := a.nCommitted - 1
	a.committed[idx] = a.committed[last]
	a.idIndex[a.committed[idx].d.ID] = idx
	a.committed[last] = committedRec{}
	delete(a.idIndex, id)
	a.nCommitted--
	a.cfg.Metrics.PlacedWatts.Set(a.placedPow)
	a.mu.Unlock()
	a.cfg.Metrics.Removed.Inc()
	return true
}

// comboFits checks Eq. 2 normal-operation headroom and the Eq. 4
// failover feasibility deltas for placing (pow, capPow) on the combo
// (aU, bU), against the given residual tables. It is shared between the
// live admission check and the scenario-scoring simulation.
func comboFits(normal, fail, normalLimit, upsCap []float64, nUPS, aU, bU int, pow, capPow float64) bool {
	half := pow / 2
	if normal[aU]+half > normalLimit[aU]+tol || normal[bU]+half > normalLimit[bU]+tol {
		return false
	}
	for f := 0; f < nUPS; f++ {
		switch f {
		case aU:
			if fail[f*nUPS+bU]+capPow > upsCap[bU]+tol {
				return false
			}
		case bU:
			if fail[f*nUPS+aU]+capPow > upsCap[aU]+tol {
				return false
			}
		default:
			if fail[f*nUPS+aU]+0.5*capPow > upsCap[aU]+tol {
				return false
			}
			if fail[f*nUPS+bU]+0.5*capPow > upsCap[bU]+tol {
				return false
			}
		}
	}
	return true
}

// comboApply adds (pow, capPow) placed on combo (aU, bU) to the normal
// and failover tables (negative values reverse a placement). The Eq. 4
// weights mirror placement.failoverWeight: a surviving partner takes the
// whole post-shave load when the pair touches the failed UPS, half
// otherwise.
func comboApply(normal, fail []float64, nUPS, aU, bU int, pow, capPow float64) {
	half := pow / 2
	normal[aU] += half
	normal[bU] += half
	for f := 0; f < nUPS; f++ {
		switch f {
		case aU:
			fail[f*nUPS+bU] += capPow
		case bU:
			fail[f*nUPS+aU] += capPow
		default:
			fail[f*nUPS+aU] += 0.5 * capPow
			fail[f*nUPS+bU] += 0.5 * capPow
		}
	}
}

// Snapshot is a point-in-time summary of the admitter's committed state.
type Snapshot struct {
	Committed   int
	PlacedPower power.Watts
	// ComboLoad is the allocated power per UPS combination, in CombosOf
	// order.
	ComboLoad []power.Watts
	// TargetLoad is the per-combo target profile the hot path currently
	// steers toward (solver-published, or the even-spread default).
	TargetLoad []power.Watts
	// ResolverObjective is the planned placed power of the last published
	// exact plan (0 until the first solve lands).
	ResolverObjective power.Watts
	Decisions         uint64
}

// Snapshot returns a copy of the committed totals for reporting.
func (a *Admitter) Snapshot() Snapshot {
	a.mu.Lock()
	s := Snapshot{
		Committed:   a.nCommitted,
		PlacedPower: power.Watts(a.placedPow),
		ComboLoad:   make([]power.Watts, a.nCombos),
		Decisions:   a.decisions,
	}
	for c, w := range a.comboPow {
		s.ComboLoad[c] = power.Watts(w)
	}
	a.mu.Unlock()
	g := a.guidance.Load()
	s.TargetLoad = make([]power.Watts, len(g.target))
	for c, w := range g.target {
		s.TargetLoad[c] = power.Watts(w)
	}
	if g.solved {
		s.ResolverObjective = power.Watts(g.objective)
	}
	return s
}

// Assignments returns a copy of the committed deployment→pair map, in
// the shape placement.Placement consumes.
func (a *Admitter) Assignments() map[int]power.PDUPairID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]power.PDUPairID, a.nCommitted)
	for i := 0; i < a.nCommitted; i++ {
		out[a.committed[i].d.ID] = a.committed[i].pid
	}
	return out
}
