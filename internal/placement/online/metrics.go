package online

import "flex/internal/obs"

// Metrics is the admitter's observability surface. All fields are
// pre-bound obs children so the hot path updates them without label
// lookups or allocation. Construct with NewMetrics — zero-value obs
// histograms panic on Observe.
type Metrics struct {
	// Admitted / Rejected count admission decisions; their rates give
	// decisions/sec and the reject rate.
	Admitted *obs.Counter
	Rejected *obs.Counter
	// Removed counts committed deployments freed via Remove.
	Removed *obs.Counter
	// PlacedWatts is the committed allocated power.
	PlacedWatts *obs.Gauge
	// Latency is the hot-path admission latency in seconds, observed by
	// the Online policy around each Admit call (never on the proven
	// allocation-free path itself).
	Latency *obs.Histogram
	// Resolves counts background exact re-solves; ResolveImprovements
	// counts the subset whose exact plan beat the warm incumbent it
	// started from.
	Resolves            *obs.Counter
	ResolveImprovements *obs.Counter
	// ResolveObjective is the planned placed power (watts) of the last
	// published exact plan.
	ResolveObjective *obs.Gauge
}

// NewMetrics registers the online-placement metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Admitted: r.Counter("flex_online_admitted_total",
			"Deployments admitted by the online placement hot path."),
		Rejected: r.Counter("flex_online_rejected_total",
			"Deployments rejected by the online placement hot path."),
		Removed: r.Counter("flex_online_removed_total",
			"Committed deployments freed via Remove."),
		PlacedWatts: r.Gauge("flex_online_placed_watts",
			"Committed allocated power in the online admitter."),
		Latency: r.Histogram("flex_online_admit_seconds",
			"Hot-path admission latency.",
			[]float64{1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 5e-3, 1e-2}),
		Resolves: r.Counter("flex_online_resolves_total",
			"Warm background exact re-solves completed."),
		ResolveImprovements: r.Counter("flex_online_resolve_improvements_total",
			"Background re-solves whose exact plan improved on the warm incumbent."),
		ResolveObjective: r.Gauge("flex_online_resolve_objective_watts",
			"Planned placed power of the last published exact plan."),
	}
}
