package online

import (
	"context"
	"testing"
	"time"

	"flex/internal/placement"
)

// BenchmarkOnlinePlacement is the ISSUE 9 acceptance benchmark
// (make bench-online → BENCH_online.json).
//
//   - admit: hot-path decision throughput on the full 9.6MW paper room,
//     reported as decisions/s. The benchmark FAILS below 1000
//     decisions/s, and -benchmem must show 0 allocs/op.
//   - stranded-gap: placement quality on the §V-C emulation trace — the
//     online policy's stranded-power fraction minus the FlexOffline
//     optimum, reported in percentage points as gap-pp. The benchmark
//     FAILS above 10pp.
func BenchmarkOnlinePlacement(b *testing.B) {
	b.Run("admit", benchAdmit)
	b.Run("stranded-gap", benchStrandedGap)
}

func benchAdmit(b *testing.B) {
	room := placement.PaperRoom()
	adm, err := NewAdmitter(room, Config{Seed: 1, ResolveEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	trace := emuTrace(b, room, 1)
	// Base load: commit half the trace so decisions run against a
	// realistically loaded room, then churn the remainder.
	for _, d := range trace[:len(trace)/2] {
		adm.Admit(d)
	}
	churn := trace[len(trace)/2:]
	b.ReportAllocs()
	b.ResetTimer()
	decisions := 0
	for i := 0; i < b.N; i++ {
		d := churn[i%len(churn)]
		_, ok := adm.Admit(d)
		decisions++
		if ok {
			adm.Remove(d.ID)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		dps := float64(decisions) / sec
		b.ReportMetric(dps, "decisions/s")
		if dps < 1000 {
			b.Fatalf("online admission %.0f decisions/s, acceptance floor is 1000/s", dps)
		}
	}
}

func benchStrandedGap(b *testing.B) {
	// The gap is a quality metric, not a latency: measure it once per
	// invocation (each measurement runs FlexOffline's exact ILP) and
	// report it alongside the timing records.
	room := placement.EmulationRoom()
	trace := emuTrace(b, room, 42)
	cfg := Config{Seed: 42, SyncResolve: true, ResolveEvery: 8, ResolveNodes: 200, ResolveBudget: 5 * time.Second}
	on, err := Online{Config: cfg}.Place(context.Background(), room, trace)
	if err != nil {
		b.Fatal(err)
	}
	if err := on.Validate(); err != nil {
		b.Fatalf("unsafe online placement: %v", err)
	}
	off, err := placement.FlexOfflineOracle().Place(context.Background(), placement.EmulationRoom(), trace)
	if err != nil {
		b.Fatal(err)
	}
	gap := on.StrandedFraction() - off.StrandedFraction()
	for i := 0; i < b.N; i++ {
		// Timing is not the point of this sub-benchmark.
	}
	b.ReportMetric(gap*100, "gap-pp")
	b.ReportMetric(on.StrandedFraction()*100, "online-stranded-pp")
	b.ReportMetric(off.StrandedFraction()*100, "offline-stranded-pp")
	if gap > 0.10 {
		b.Fatalf("online stranded fraction %.4f exceeds the FlexOffline optimum %.4f by more than 10pp",
			on.StrandedFraction(), off.StrandedFraction())
	}
}
