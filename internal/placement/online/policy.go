package online

import (
	"context"

	"flex/internal/placement"
	"flex/internal/workload"
)

// Online is the placement.Policy view of the admitter: it feeds a trace
// through Admit one deployment at a time, exactly as arrivals would reach
// a production admission endpoint. With the default configuration the
// warm background resolver runs for the duration of the trace; with
// Config.SyncResolve the re-solves happen inline at the same cadence,
// making the whole placement deterministic for a fixed Config.Seed.
type Online struct {
	Config Config
	// Label overrides Name() (e.g. "Online-NoResolve" in ablations).
	Label string
}

// Name implements placement.Policy.
func (o Online) Name() string {
	if o.Label != "" {
		return o.Label
	}
	return "Online"
}

// Place implements placement.Policy. The per-deployment admission runs on
// the allocation-free hot path; this wrapper adds the ctx check and the
// latency observation around each decision.
func (o Online) Place(ctx context.Context, room *placement.Room, trace []workload.Deployment) (*placement.Placement, error) {
	adm, err := NewAdmitter(room, o.Config)
	if err != nil {
		return nil, err
	}
	cfg := adm.cfg // defaults applied
	if !cfg.SyncResolve && cfg.ResolveEvery > 0 {
		stop := adm.StartResolve(ctx)
		defer stop()
	}
	for _, d := range trace {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		start := cfg.Now()
		adm.Admit(d)
		cfg.Metrics.Latency.Observe(cfg.Now().Sub(start).Seconds())
		if cfg.SyncResolve && adm.takeResolvePending() {
			if err := adm.ResolveOnce(ctx); err != nil {
				return nil, err
			}
		}
	}
	return &placement.Placement{
		Room:        room,
		Deployments: trace,
		Assignments: adm.Assignments(),
	}, nil
}
