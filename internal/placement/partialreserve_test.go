package placement

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"flex/internal/power"
	"flex/internal/workload"
)

// publicCloudTrace is the §VI first-deployment demand: no software-
// redundant workloads, only cap-able VMs plus non-cap-able clusters.
func publicCloudTrace(t *testing.T, target power.Watts, seed int64) []workload.Deployment {
	t.Helper()
	cfg := workload.DefaultTraceConfig(0)
	cfg.TargetDemand = target
	cfg.CategoryShares = [3]float64{0, 0.69, 0.31}
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestPartialReserveRoomLimits(t *testing.T) {
	topo := PaperRoom().Topo
	room, err := PartialReserveRoom(topo, 60, 0.42)
	if err != nil {
		t.Fatal(err)
	}
	// Limit = 2.4MW × (0.75 + 0.42×0.25) = 2.4 × 0.855 = 2.052MW.
	want := power.Watts(0.855 * 2.4e6)
	if got := room.NormalLimit(0); math.Abs(float64(got-want)) > 1 {
		t.Fatalf("NormalLimit = %v, want %v", got, want)
	}
	if got := room.AllocatablePower(); math.Abs(float64(got-4*want)) > 1 {
		t.Fatalf("AllocatablePower = %v, want %v", got, 4*want)
	}
	// Conventional room: y/x limit.
	conv, _ := PartialReserveRoom(topo, 60, 0)
	if got := conv.NormalLimit(0); math.Abs(float64(got-1.8e6)) > 1 {
		t.Fatalf("conventional limit = %v, want 1.8MW", got)
	}
	// Full Flex room: rated capacity.
	full, _ := PartialReserveRoom(topo, 60, 1)
	if got := full.NormalLimit(0); got != 2.4*power.MW {
		t.Fatalf("full limit = %v, want 2.4MW", got)
	}
}

func TestPartialReserveRoomValidation(t *testing.T) {
	topo := PaperRoom().Topo
	if _, err := PartialReserveRoom(topo, 60, -0.1); err == nil {
		t.Error("expected error for negative reserve utilization")
	}
	if _, err := PartialReserveRoom(topo, 60, 1.1); err == nil {
		t.Error("expected error for >1 reserve utilization")
	}
}

// TestPartialReserveThrottleOnly reproduces the §VI scenario: a 42%-of-
// reserve room with a public-cloud trace (no software-redundant
// workloads). Placement must succeed, stay within the reduced limits,
// and — crucially — survive every UPS failure with throttling alone.
func TestPartialReserveThrottleOnly(t *testing.T) {
	topo := PaperRoom().Topo
	room, err := PartialReserveRoom(topo, 60, 0.42)
	if err != nil {
		t.Fatal(err)
	}
	trace := publicCloudTrace(t, power.Watts(1.15*float64(room.AllocatablePower())), 3)
	pol := FlexOffline{BatchFraction: 0.5, MaxNodes: 150}
	pl, err := pol.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.StrandedFraction() > 0.10 {
		t.Errorf("stranded %.1f%% of allocatable", pl.StrandedFraction()*100)
	}
	// Normal loads within the partial limit (not just capacity).
	for u, w := range topo.UPSLoads(pl.PairLoad()) {
		if w > room.NormalLimit(power.UPSID(u))+power.CapacityTolerance {
			t.Fatalf("UPS %d normal load %v over partial limit", u, w)
		}
	}
	// Failover with throttling alone (no shutdowns exist: no SR racks).
	capLoad := pl.CapPairLoad()
	for f := range topo.UPSes {
		if !topo.FailoverWithinCapacity(capLoad, power.UPSID(f)) {
			t.Fatalf("failure of UPS %d not covered by throttling alone", f)
		}
		out := topo.SimulateCascade(capLoad, power.UPSID(f), power.EndOfLifeTripCurve, time.Hour)
		if out.Outage {
			t.Fatalf("cascade on failure of UPS %d", f)
		}
	}
	for _, d := range pl.Placed() {
		if d.Category == workload.SoftwareRedundant {
			t.Fatal("public-cloud trace must not contain SR deployments")
		}
	}
}

// TestPartialReserveGainOverConventional quantifies the §VI payoff: the
// 42% room deploys measurably more power than a conventional room.
func TestPartialReserveGainOverConventional(t *testing.T) {
	topo := PaperRoom().Topo
	partial, _ := PartialReserveRoom(topo, 60, 0.42)
	conv, _ := PartialReserveRoom(topo, 60, 0)
	trace := publicCloudTrace(t, 11*power.MW, 5)
	pol := FlexOffline{BatchFraction: 0.5, MaxNodes: 150}
	plPartial, err := pol.Place(context.Background(), partial, trace)
	if err != nil {
		t.Fatal(err)
	}
	plConv, err := pol.Place(context.Background(), conv, trace)
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(plPartial.PairLoad().Total())/float64(plConv.PairLoad().Total()) - 1
	// Allocatable grows by 0.42×0.25/0.75 = 14%; placed power should
	// track that within fragmentation noise.
	if gain < 0.08 {
		t.Fatalf("partial-reserve gain only %.1f%%", gain*100)
	}
}
