package placement

import (
	"context"
	"math/rand"
	"testing"

	"flex/internal/power"
	"flex/internal/workload"
)

func TestSiteRoutesRejectedDeployments(t *testing.T) {
	site, err := NewUniformSite("site-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Demand worth ~1.5 rooms: room 1 overflows into room 2.
	cfg := workload.DefaultTraceConfig(0)
	cfg.TargetDemand = power.Watts(1.5 * 9.6e6)
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := site.Place(context.Background(), FlexOffline{BatchFraction: 0.5, MaxNodes: 150}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sp.Placements) != 2 {
		t.Fatalf("placements = %d", len(sp.Placements))
	}
	if len(sp.Placements[1].Placed()) == 0 {
		t.Fatal("overflow never reached room 2")
	}
	// Nothing placed twice: room-2 deployments are exactly room-1 rejects.
	placed1 := map[int]bool{}
	for _, d := range sp.Placements[0].Placed() {
		placed1[d.ID] = true
	}
	for _, d := range sp.Placements[1].Placed() {
		if placed1[d.ID] {
			t.Fatalf("deployment %d placed in both rooms", d.ID)
		}
	}
	// Site-wide accounting.
	if sp.PlacedPower() <= sp.Placements[0].PairLoad().Total() {
		t.Fatal("site power must include room 2")
	}
	if f := sp.StrandedFraction(); f < 0 || f > 1 {
		t.Fatalf("stranded fraction %v", f)
	}
	// With demand at 75% of site capacity, everything should place.
	if len(sp.Unplaced) > 0 {
		t.Fatalf("unplaced with ample site capacity: %d", len(sp.Unplaced))
	}
}

func TestSiteValidation(t *testing.T) {
	if _, err := (&Site{}).Place(context.Background(), FirstFit{}, nil); err == nil {
		t.Error("expected error for empty site")
	}
	if _, err := NewUniformSite("x", 0); err == nil {
		t.Error("expected error for zero rooms")
	}
}

func TestSiteOverflowBeyondCapacity(t *testing.T) {
	site, _ := NewUniformSite("site-1", 1)
	cfg := workload.DefaultTraceConfig(9.6 * power.MW) // 115% of one room
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := site.Place(context.Background(), BalancedRoundRobin{}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Unplaced) == 0 {
		t.Fatal("115% demand into one room must leave rejects")
	}
}
