package placement

import (
	"context"
	"fmt"

	"flex/internal/power"
	"flex/internal/workload"
)

// Site is an ordered set of rooms sharing one demand stream. Deployments a
// room rejects are routed to the next room (paper §V-A: "The undeployable
// requests can be routed to other rooms for placement"); a datacenter is
// several isolated rooms and a campus is several datacenters, so the same
// mechanism models both.
type Site struct {
	Name  string
	Rooms []*Room
}

// SitePlacement is the outcome of placing one trace across a site.
type SitePlacement struct {
	Site *Site
	// Placements holds one placement per room, aligned with Site.Rooms.
	Placements []*Placement
	// Unplaced lists deployments no room could take.
	Unplaced []workload.Deployment
}

// Place routes the trace through the site's rooms in order with the given
// policy. Each room sees only the deployments every earlier room rejected.
// ctx bounds the whole routing pass; it is handed to each room's solve.
func (s *Site) Place(ctx context.Context, policy Policy, trace []workload.Deployment) (*SitePlacement, error) {
	if len(s.Rooms) == 0 {
		return nil, fmt.Errorf("placement: site %q has no rooms", s.Name)
	}
	out := &SitePlacement{Site: s}
	remaining := trace
	for _, room := range s.Rooms {
		pl, err := policy.Place(ctx, room, remaining)
		if err != nil {
			return nil, err
		}
		out.Placements = append(out.Placements, pl)
		remaining = pl.Unplaced()
	}
	out.Unplaced = remaining
	return out, nil
}

// Validate re-checks every room's placement.
func (sp *SitePlacement) Validate() error {
	for i, pl := range sp.Placements {
		if err := pl.Validate(); err != nil {
			return fmt.Errorf("room %d: %w", i, err)
		}
	}
	return nil
}

// PlacedPower is the total power placed across all rooms.
func (sp *SitePlacement) PlacedPower() power.Watts {
	var sum power.Watts
	for _, pl := range sp.Placements {
		sum += pl.PairLoad().Total()
	}
	return sum
}

// AllocatablePower is the site's total allocatable power.
func (sp *SitePlacement) AllocatablePower() power.Watts {
	var sum power.Watts
	for _, pl := range sp.Placements {
		sum += pl.Room.AllocatablePower()
	}
	return sum
}

// StrandedFraction is the site-wide stranded power fraction.
func (sp *SitePlacement) StrandedFraction() float64 {
	alloc := sp.AllocatablePower()
	if alloc <= 0 {
		return 0
	}
	stranded := alloc - sp.PlacedPower()
	if stranded < 0 {
		stranded = 0
	}
	return float64(stranded) / float64(alloc)
}

// NewUniformSite builds a site of n identical paper rooms.
func NewUniformSite(name string, n int) (*Site, error) {
	if n <= 0 {
		return nil, fmt.Errorf("placement: site needs at least one room")
	}
	s := &Site{Name: name}
	for i := 0; i < n; i++ {
		s.Rooms = append(s.Rooms, PaperRoom())
	}
	return s, nil
}
