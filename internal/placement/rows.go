package placement

import (
	"fmt"

	"flex/internal/power"
)

// Row-level space modelling (optional): the paper's placement simulator
// "models the placement of each deployment of racks to a specific row in
// the room" (§V-A) — a deployment occupies whole contiguous rows under one
// PDU-pair (its network/busway unit), so row granularity adds a second,
// finer fragmentation source on top of pair-level slot counts.
//
// Rows are enabled by setting Room.RowsPerPair and Room.RowSlots; when
// enabled they must satisfy RowsPerPair × RowSlots == SlotsPerPair for
// every pair. Deployments are then placed on the first run of contiguous
// rows with enough total slots, filling partially used rows only as the
// first row of a run.

// rowState tracks per-pair row occupancy: rows fill front to back and a
// deployment records exactly which row slots it consumed so removal can
// return them.
type rowState struct {
	rowSlots int
	// free[pair][row] is the remaining slot count of each row.
	free [][]int
	// used[deploymentID] lists (pair, row, slots) consumptions.
	used map[int][]rowUse
}

type rowUse struct {
	pair  power.PDUPairID
	row   int
	slots int
}

func newRowState(room *Room) (*rowState, error) {
	if room.RowsPerPair <= 0 {
		return nil, nil // rows disabled
	}
	if room.RowSlots <= 0 {
		return nil, fmt.Errorf("placement: RowSlots must be positive when rows are enabled")
	}
	rs := &rowState{rowSlots: room.RowSlots, used: make(map[int][]rowUse)}
	for pid := range room.Topo.Pairs {
		if room.RowsPerPair*room.RowSlots != room.SlotsPerPair[pid] {
			return nil, fmt.Errorf("placement: pair %d has %d slots but rows give %d×%d",
				pid, room.SlotsPerPair[pid], room.RowsPerPair, room.RowSlots)
		}
		rows := make([]int, room.RowsPerPair)
		for r := range rows {
			rows[r] = room.RowSlots
		}
		rs.free = append(rs.free, rows)
	}
	return rs, nil
}

// fit returns the rows a deployment of racks would occupy under pair pid,
// or nil when no contiguous run fits. The allocation greedily takes the
// first run whose combined free slots (with every row after the first
// required to be completely empty, since a deployment is contiguous
// within its rows) hold the deployment.
func (rs *rowState) fit(pid power.PDUPairID, racks int) []rowUse {
	rows := rs.free[pid]
	for start := 0; start < len(rows); start++ {
		if rows[start] == 0 {
			continue
		}
		take := make([]rowUse, 0, 2)
		remaining := racks
		for r := start; r < len(rows) && remaining > 0; r++ {
			avail := rows[r]
			if r > start && avail != rs.rowSlots {
				break // continuation rows must be empty for contiguity
			}
			n := avail
			if n > remaining {
				n = remaining
			}
			take = append(take, rowUse{pair: pid, row: r, slots: n})
			remaining -= n
		}
		if remaining == 0 {
			return take
		}
	}
	return nil
}

// place commits the rows for deployment id.
func (rs *rowState) place(id int, take []rowUse) {
	for _, u := range take {
		rs.free[u.pair][u.row] -= u.slots
	}
	rs.used[id] = take
}

// remove returns deployment id's rows, handing back the exact allocation
// so callers that undo a speculative move can restore it verbatim (a
// re-fit is not guaranteed to succeed under the contiguity rule once other
// deployments moved).
func (rs *rowState) remove(id int) []rowUse {
	take := rs.used[id]
	for _, u := range take {
		rs.free[u.pair][u.row] += u.slots
	}
	delete(rs.used, id)
	return take
}

// restore re-applies an allocation returned by remove.
func (rs *rowState) restore(id int, take []rowUse) {
	for _, u := range take {
		rs.free[u.pair][u.row] -= u.slots
	}
	rs.used[id] = take
}
