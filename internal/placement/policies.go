package placement

import (
	"context"
	"math/rand"

	"flex/internal/power"
	"flex/internal/workload"
)

// Random places one deployment at a time on a uniformly random feasible
// PDU-pair (paper §V-A: "the simplest policy but also clearly naive").
type Random struct {
	// Seed drives pair-order shuffling; the same seed reproduces the same
	// placement for the same trace.
	Seed int64
}

// Name implements Policy.
func (Random) Name() string { return "Random" }

// Place implements Policy.
func (r Random) Place(ctx context.Context, room *Room, trace []workload.Deployment) (*Placement, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	s := newState(room)
	order := make([]power.PDUPairID, len(room.Topo.Pairs))
	for i := range order {
		order[i] = power.PDUPairID(i)
	}
	for _, d := range trace {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, pid := range order {
			if s.canPlace(d, pid) {
				s.place(d, pid)
				break
			}
		}
	}
	return s.result(trace), nil
}

// RoundRobin cycles through PDU-pairs with a single shared pointer,
// ignoring workload categories. The paper notes it is strictly worse for
// Flex than Balanced Round-Robin; it is provided as an ablation baseline.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "RoundRobin" }

// Place implements Policy.
func (RoundRobin) Place(ctx context.Context, room *Room, trace []workload.Deployment) (*Placement, error) {
	s := newState(room)
	n := len(room.Topo.Pairs)
	next := 0
	for _, d := range trace {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		for off := 0; off < n; off++ {
			pid := power.PDUPairID((next + off) % n)
			if s.canPlace(d, pid) {
				s.place(d, pid)
				next = (int(pid) + 1) % n
				break
			}
		}
	}
	return s.result(trace), nil
}

// BalancedRoundRobin spreads each workload category's power evenly across
// the PDU-pairs: a deployment goes to the feasible pair currently carrying
// the least power of the deployment's category, with round-robin
// tie-breaking. This realizes the paper's stated goal ("roughly balance
// the demand from each category under each UPS", §V-A) and is simple
// enough to hand to datacenter administrators as guidelines.
type BalancedRoundRobin struct{}

// Name implements Policy.
func (BalancedRoundRobin) Name() string { return "BalancedRoundRobin" }

// Place implements Policy.
func (BalancedRoundRobin) Place(ctx context.Context, room *Room, trace []workload.Deployment) (*Placement, error) {
	s := newState(room)
	order := interleavedPairOrder(room.Topo)
	n := len(order)
	catLoad := make(map[workload.Category][]power.Watts)
	for _, c := range workload.Categories {
		catLoad[c] = make([]power.Watts, len(room.Topo.Pairs))
	}
	next := map[workload.Category]int{}
	for _, d := range trace {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		loads := catLoad[d.Category]
		start := next[d.Category]
		best, bestIdx := power.PDUPairID(-1), -1
		for off := 0; off < n; off++ {
			idx := (start + off) % n
			pid := order[idx]
			if !s.canPlace(d, pid) {
				continue
			}
			if best < 0 || loads[pid] < loads[best] {
				best, bestIdx = pid, idx
			}
		}
		if best < 0 {
			continue
		}
		s.place(d, best)
		loads[best] += d.TotalPower()
		next[d.Category] = (bestIdx + 1) % n
	}
	return s.result(trace), nil
}

// interleavedPairOrder returns the PDU-pairs ordered so that consecutive
// entries cycle across UPS combinations (12, 13, 14, 23, 24, 34, 12, ...)
// rather than exhausting one combination at a time. Rotating in this order
// keeps every UPS's load balanced from the very first rotation, which is
// what makes Balanced Round-Robin effective.
func interleavedPairOrder(topo *power.Topology) []power.PDUPairID {
	byCombo := map[[2]power.UPSID][]power.PDUPairID{}
	var comboOrder [][2]power.UPSID
	for _, p := range topo.Pairs {
		if _, ok := byCombo[p.UPSes]; !ok {
			comboOrder = append(comboOrder, p.UPSes)
		}
		byCombo[p.UPSes] = append(byCombo[p.UPSes], p.ID)
	}
	var out []power.PDUPairID
	for k := 0; ; k++ {
		added := false
		for _, key := range comboOrder {
			if k < len(byCombo[key]) {
				out = append(out, byCombo[key][k])
				added = true
			}
		}
		if !added {
			return out
		}
	}
}

// FirstFit always picks the lowest-numbered feasible PDU-pair. The paper
// deliberately excludes it from the evaluation because it concentrates
// load instead of spreading it; it is implemented here as an ablation
// baseline demonstrating that behaviour.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "FirstFit" }

// Place implements Policy.
func (FirstFit) Place(ctx context.Context, room *Room, trace []workload.Deployment) (*Placement, error) {
	s := newState(room)
	for _, d := range trace {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		for pid := range room.Topo.Pairs {
			if s.canPlace(d, power.PDUPairID(pid)) {
				s.place(d, power.PDUPairID(pid))
				break
			}
		}
	}
	return s.result(trace), nil
}
