package placement

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"flex/internal/power"
	"flex/internal/workload"
)

func testTrace(t *testing.T, provisioned power.Watts, seed int64) []workload.Deployment {
	t.Helper()
	cfg := workload.DefaultTraceConfig(provisioned)
	trace, err := workload.GenerateTrace(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func allPolicies() []Policy {
	return []Policy{
		Random{Seed: 1},
		RoundRobin{},
		BalancedRoundRobin{},
		FirstFit{},
		fastFlexOffline(0.33, "Flex-Offline-Short"),
		fastFlexOffline(0.66, "Flex-Offline-Long"),
		fastFlexOffline(10, "Flex-Offline-Oracle"),
	}
}

// fastFlexOffline keeps unit-test runtime low and deterministic with a
// small branch-and-bound node budget.
func fastFlexOffline(batch float64, label string) FlexOffline {
	return FlexOffline{BatchFraction: batch, MaxNodes: 200, Label: label}
}

func TestPaperRoomShape(t *testing.T) {
	room := PaperRoom()
	if got := room.Topo.ProvisionedPower(); got != 9.6*power.MW {
		t.Fatalf("provisioned = %v, want 9.6MW", got)
	}
	if len(room.Topo.Pairs) != 18 {
		t.Fatalf("pairs = %d, want 18", len(room.Topo.Pairs))
	}
	if room.TotalSlots() != 18*60 {
		t.Fatalf("slots = %d, want 1080", room.TotalSlots())
	}
}

func TestEmulationRoomShape(t *testing.T) {
	room := EmulationRoom()
	if got := room.Topo.ProvisionedPower(); got != 4.8*power.MW {
		t.Fatalf("provisioned = %v, want 4.8MW", got)
	}
	if room.TotalSlots() != 360 {
		t.Fatalf("slots = %d, want 360", room.TotalSlots())
	}
}

func TestNewRoomRejectsBadSlots(t *testing.T) {
	if _, err := NewRoom(PaperRoom().Topo, 0); err == nil {
		t.Fatal("expected error")
	}
}

// Safety: every policy must produce placements that pass full validation —
// this is the paper's core invariant (Eq. 1/2/4 hold even at 100%
// utilization for every UPS failure).
func TestAllPoliciesProduceSafePlacements(t *testing.T) {
	room := PaperRoom()
	trace := testTrace(t, room.Topo.ProvisionedPower(), 7)
	for _, pol := range allPolicies() {
		pl, err := pol.Place(context.Background(), room, trace)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := pl.Validate(); err != nil {
			t.Errorf("%s: unsafe placement: %v", pol.Name(), err)
		}
		if len(pl.Placed()) == 0 {
			t.Errorf("%s: placed nothing", pol.Name())
		}
	}
}

// Safety under cascade: a safe placement, after maximal shaving, must not
// cascade for any initial UPS failure.
func TestSafePlacementPreventsCascade(t *testing.T) {
	room := PaperRoom()
	trace := testTrace(t, room.Topo.ProvisionedPower(), 3)
	pl, err := BalancedRoundRobin{}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	capLoad := pl.CapPairLoad()
	for f := range room.Topo.UPSes {
		out := room.Topo.SimulateCascade(capLoad, power.UPSID(f), power.EndOfLifeTripCurve, time.Hour)
		if out.Outage {
			t.Fatalf("maximally shaved placement cascades on failure of UPS %d", f)
		}
	}
}

func TestFlexOfflineBeatsNaivePolicies(t *testing.T) {
	room := PaperRoom()
	// Average over a few shuffled traces like the paper's 10 variations.
	base := testTrace(t, room.Topo.ProvisionedPower(), 11)
	var randomStranded, flexStranded float64
	n := 3
	for i := 0; i < n; i++ {
		tr := workload.Shuffle(base, rand.New(rand.NewSource(int64(100+i))))
		rp, err := Random{Seed: int64(i)}.Place(context.Background(), room, tr)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := fastFlexOffline(0.33, "short").Place(context.Background(), room, tr)
		if err != nil {
			t.Fatal(err)
		}
		randomStranded += rp.StrandedFraction()
		flexStranded += fp.StrandedFraction()
	}
	randomStranded /= float64(n)
	flexStranded /= float64(n)
	if flexStranded > randomStranded+1e-9 {
		t.Errorf("Flex-Offline stranded %.4f should be <= Random %.4f", flexStranded, randomStranded)
	}
	// The paper reports <4–5% median stranded power for Flex-Offline.
	if flexStranded > 0.08 {
		t.Errorf("Flex-Offline stranded %.4f unexpectedly high", flexStranded)
	}
}

func TestStrandedPowerEquation(t *testing.T) {
	room := PaperRoom()
	trace := testTrace(t, room.Topo.ProvisionedPower(), 5)
	pl, err := FirstFit{}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	placed := pl.PairLoad().Total()
	want := room.Topo.ProvisionedPower() - placed
	if math.Abs(float64(pl.StrandedPower()-want)) > 1 {
		t.Fatalf("StrandedPower = %v, want %v", pl.StrandedPower(), want)
	}
	frac := pl.StrandedFraction()
	if frac < 0 || frac > 1 {
		t.Fatalf("StrandedFraction = %v", frac)
	}
}

func TestThrottlingImbalanceProperties(t *testing.T) {
	room := PaperRoom()
	trace := testTrace(t, room.Topo.ProvisionedPower(), 9)
	for _, pol := range []Policy{Random{Seed: 4}, BalancedRoundRobin{}} {
		pl, err := pol.Place(context.Background(), room, trace)
		if err != nil {
			t.Fatal(err)
		}
		im := pl.ThrottlingImbalance()
		if im < 0 || im > 1 {
			t.Errorf("%s: imbalance %v outside [0,1]", pol.Name(), im)
		}
	}
	// Empty placement → zero imbalance.
	empty := &Placement{Room: room, Assignments: map[int]power.PDUPairID{}}
	if empty.ThrottlingImbalance() != 0 {
		t.Error("empty placement should have zero imbalance")
	}
}

func TestBalancedRoundRobinImprovesImbalanceOverFirstFit(t *testing.T) {
	room := PaperRoom()
	base := testTrace(t, room.Topo.ProvisionedPower(), 21)
	var ffSum, brrSum float64
	n := 3
	for i := 0; i < n; i++ {
		tr := workload.Shuffle(base, rand.New(rand.NewSource(int64(i))))
		ff, err := FirstFit{}.Place(context.Background(), room, tr)
		if err != nil {
			t.Fatal(err)
		}
		brr, err := BalancedRoundRobin{}.Place(context.Background(), room, tr)
		if err != nil {
			t.Fatal(err)
		}
		ffSum += ff.ThrottlingImbalance()
		brrSum += brr.ThrottlingImbalance()
	}
	if brrSum > ffSum {
		t.Errorf("BalancedRR mean imbalance %.4f should be <= FirstFit %.4f", brrSum/3, ffSum/3)
	}
}

func TestPlacedUnplacedPartition(t *testing.T) {
	room := PaperRoom()
	trace := testTrace(t, room.Topo.ProvisionedPower(), 13)
	pl, err := BalancedRoundRobin{}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	placed, unplaced := pl.Placed(), pl.Unplaced()
	if len(placed)+len(unplaced) != len(trace) {
		t.Fatalf("partition broken: %d + %d != %d", len(placed), len(unplaced), len(trace))
	}
	// Demand is 115% of provisioned, so some requests must be rejected.
	if len(unplaced) == 0 {
		t.Error("expected rejected deployments at 115% demand")
	}
}

func TestUPSUtilizationWithinBounds(t *testing.T) {
	room := PaperRoom()
	trace := testTrace(t, room.Topo.ProvisionedPower(), 17)
	pl, err := RoundRobin{}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	for u, util := range pl.UPSUtilization() {
		if util < 0 || util > 1+1e-9 {
			t.Errorf("UPS %d utilization %v outside [0,1]", u, util)
		}
	}
}

func TestPlacedPowerByCategoryDiversity(t *testing.T) {
	room := PaperRoom()
	trace := testTrace(t, room.Topo.ProvisionedPower(), 19)
	pl, err := BalancedRoundRobin{}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	by := pl.PlacedPowerByCategory()
	for _, cat := range workload.Categories {
		if by[cat] <= 0 {
			t.Errorf("no placed power for category %v", cat)
		}
	}
}

func TestFlexOfflineRejectsBadBatchFraction(t *testing.T) {
	room := PaperRoom()
	if _, err := (FlexOffline{}).Place(context.Background(), room, nil); err == nil {
		t.Fatal("expected error for zero batch fraction")
	}
}

func TestFlexOfflineNames(t *testing.T) {
	if FlexOfflineShort().Name() != "Flex-Offline-Short" {
		t.Error("short name")
	}
	if FlexOfflineLong().Name() != "Flex-Offline-Long" {
		t.Error("long name")
	}
	if FlexOfflineOracle().Name() != "Flex-Offline-Oracle" {
		t.Error("oracle name")
	}
	if (FlexOffline{BatchFraction: 0.5}).Name() != "Flex-Offline(0.50)" {
		t.Error("default name")
	}
}

func TestCombosOfGroupsPairs(t *testing.T) {
	room := PaperRoom()
	combos := CombosOf(room.Topo)
	if len(combos) != 6 {
		t.Fatalf("combos = %d, want 6", len(combos))
	}
	for _, c := range combos {
		if len(c.Pairs) != 3 {
			t.Errorf("combo %v has %d pairs, want 3", c.UPSes, len(c.Pairs))
		}
	}
}

func TestCoolingConstraintLimitsPlacement(t *testing.T) {
	room := PaperRoom()
	// Permit only ~2MW of cooling.
	room.CoolingCFM = 2e6
	room.CFMPerWatt = 1
	trace := testTrace(t, room.Topo.ProvisionedPower(), 23)
	pl, err := BalancedRoundRobin{}.Place(context.Background(), room, trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("cooling-constrained placement invalid: %v", err)
	}
	if got := pl.PairLoad().Total(); got > 2*power.MW+20*17.2*power.KW {
		t.Fatalf("placed %v exceeds cooling budget", got)
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	room := PaperRoom()
	d := workload.Deployment{ID: 0, Workload: "w", Category: workload.NonRedundantNonCapable,
		Racks: 1000, PowerPerRack: 14.4 * power.KW, FlexPowerFraction: 1}
	pl := &Placement{
		Room:        room,
		Deployments: []workload.Deployment{d},
		Assignments: map[int]power.PDUPairID{0: 0},
	}
	if err := pl.Validate(); err == nil {
		t.Fatal("expected space violation")
	}
	// Unknown pair.
	pl.Assignments[0] = power.PDUPairID(99)
	if err := pl.Validate(); err == nil {
		t.Fatal("expected unknown-pair violation")
	}
	// Failover violation: a non-cap-able deployment filling a whole pair
	// with 2.8MW — a partner UPS failure transfers all of it onto one
	// 2.4MW UPS and nothing can be shaved.
	d2 := workload.Deployment{ID: 0, Workload: "w", Category: workload.NonRedundantNonCapable,
		Racks: 40, PowerPerRack: 70 * power.KW, FlexPowerFraction: 1}
	pl2 := &Placement{
		Room:        room,
		Deployments: []workload.Deployment{d2},
		Assignments: map[int]power.PDUPairID{0: 0},
	}
	if err := pl2.Validate(); err == nil {
		t.Fatal("expected failover violation: 2.4MW non-shaveable on one pair")
	}
}

// Property: the state's incremental failCap bookkeeping matches a from-
// scratch recomputation after a sequence of placements.
func TestStateIncrementalMatchesRecompute(t *testing.T) {
	room := PaperRoom()
	trace := testTrace(t, room.Topo.ProvisionedPower(), 29)
	s := newState(room)
	for _, d := range trace {
		for pid := range room.Topo.Pairs {
			if s.canPlace(d, power.PDUPairID(pid)) {
				s.place(d, power.PDUPairID(pid))
				break
			}
		}
	}
	pl := s.result(trace)
	capLoad := pl.CapPairLoad()
	for f := range room.Topo.UPSes {
		loads := room.Topo.FailoverLoads(capLoad, power.UPSID(f))
		for u := range room.Topo.UPSes {
			if u == f {
				continue
			}
			if math.Abs(float64(loads[u]-s.failCap[f][u])) > 1 {
				t.Fatalf("failCap[%d][%d] = %v, recomputed %v", f, u, s.failCap[f][u], loads[u])
			}
		}
	}
	// Normal loads too.
	normals := room.Topo.UPSLoads(pl.PairLoad())
	for u := range normals {
		if math.Abs(float64(normals[u]-s.normal[u])) > 1 {
			t.Fatalf("normal[%d] = %v, recomputed %v", u, s.normal[u], normals[u])
		}
	}
}

func TestFailoverWeight(t *testing.T) {
	a, b := power.UPSID(0), power.UPSID(1)
	if failoverWeight(a, b, 2, 3) != 0 {
		t.Error("non-member survivor should weigh 0")
	}
	if failoverWeight(a, b, b, a) != 1 {
		t.Error("partner of failed UPS should take full load")
	}
	if failoverWeight(a, b, a, 3) != 0.5 {
		t.Error("uninvolved failure keeps half share")
	}
}
