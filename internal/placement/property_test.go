package placement

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flex/internal/power"
	"flex/internal/workload"
)

// randomDeployment builds a valid deployment from fuzz inputs.
func randomDeployment(id int, catRaw, racksRaw uint8, powRaw uint16, flexRaw uint8) workload.Deployment {
	cat := workload.Categories[int(catRaw)%3]
	racks := 1 + int(racksRaw)%20
	pow := power.Watts(5+int(powRaw)%15) * power.KW
	flex := 0.0
	switch cat {
	case workload.NonRedundantCapable:
		flex = 0.75 + float64(flexRaw%10)/100
	case workload.NonRedundantNonCapable:
		flex = 1
	}
	return workload.Deployment{
		ID: id, Workload: "w" + cat.String(), Category: cat,
		Racks: racks, PowerPerRack: pow, FlexPowerFraction: flex,
	}
}

// Property: place followed by remove returns the state to exactly its
// previous bookkeeping, for arbitrary valid deployments and pairs.
func TestPlaceRemoveRoundtripProperty(t *testing.T) {
	room := PaperRoom()
	f := func(catRaw, racksRaw uint8, powRaw uint16, flexRaw, pairRaw uint8) bool {
		s := newState(room)
		// Pre-load the state with a couple of fixed deployments so the
		// roundtrip is tested against a non-empty baseline.
		base1 := randomDeployment(0, 0, 10, 14, 0)
		base2 := randomDeployment(1, 1, 10, 14, 5)
		s.place(base1, 0)
		s.place(base2, 7)

		d := randomDeployment(2, catRaw, racksRaw, powRaw, flexRaw)
		pid := power.PDUPairID(int(pairRaw) % len(room.Topo.Pairs))
		if !s.canPlace(d, pid) {
			return true // nothing to verify
		}
		before := snapshotState(s)
		s.place(d, pid)
		s.remove(d, pid)
		after := snapshotState(s)
		return statesEqual(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

type stateSnapshot struct {
	slots       []int
	normal      []power.Watts
	failCap     [][]power.Watts
	throttleRec [][]power.Watts
	placedPow   power.Watts
	capPow      power.Watts
	placed      int
}

func snapshotState(s *state) stateSnapshot {
	snap := stateSnapshot{
		slots:     append([]int(nil), s.slotsLeft...),
		normal:    append([]power.Watts(nil), s.normal...),
		placedPow: s.placedPow,
		capPow:    s.placedCapPow,
		placed:    len(s.placed),
	}
	for _, row := range s.failCap {
		snap.failCap = append(snap.failCap, append([]power.Watts(nil), row...))
	}
	for _, row := range s.throttleRec {
		snap.throttleRec = append(snap.throttleRec, append([]power.Watts(nil), row...))
	}
	return snap
}

func statesEqual(a, b stateSnapshot) bool {
	if a.placed != b.placed || math.Abs(float64(a.placedPow-b.placedPow)) > 1e-6 ||
		math.Abs(float64(a.capPow-b.capPow)) > 1e-6 {
		return false
	}
	for i := range a.slots {
		if a.slots[i] != b.slots[i] {
			return false
		}
	}
	for i := range a.normal {
		if math.Abs(float64(a.normal[i]-b.normal[i])) > 1e-6 {
			return false
		}
	}
	for i := range a.failCap {
		for j := range a.failCap[i] {
			if math.Abs(float64(a.failCap[i][j]-b.failCap[i][j])) > 1e-6 {
				return false
			}
			if math.Abs(float64(a.throttleRec[i][j]-b.throttleRec[i][j])) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// Property: every placement any policy produces over random traces is
// safe (Validate passes) and its metrics are within range.
func TestRandomTracePlacementSafetyProperty(t *testing.T) {
	room := PaperRoom()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultTraceConfig(room.Topo.ProvisionedPower())
		// Randomize the mix a little while keeping it normalized.
		sr := 0.05 + rng.Float64()*0.2
		nc := 0.1 + rng.Float64()*0.3
		cfg.CategoryShares = [3]float64{sr, 1 - sr - nc, nc}
		trace, err := workload.GenerateTrace(cfg, rng)
		if err != nil {
			return false
		}
		for _, pol := range []Policy{Random{Seed: seed}, BalancedRoundRobin{}} {
			pl, err := pol.Place(context.Background(), room, trace)
			if err != nil {
				return false
			}
			if err := pl.Validate(); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if f := pl.StrandedFraction(); f < 0 || f > 1 {
				return false
			}
			if im := pl.ThrottlingImbalance(); im < 0 || im > 1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleavedPairOrder is a permutation of all pairs and cycles
// across UPS combinations.
func TestInterleavedPairOrderProperty(t *testing.T) {
	for _, combos := range []int{1, 2, 3, 5} {
		topo, err := power.NewRoom(power.RoomConfig{
			Design: power.Redundancy{X: 4, Y: 3}, UPSCapacity: power.MW,
			PairsPerCombination: combos,
		})
		if err != nil {
			t.Fatal(err)
		}
		order := interleavedPairOrder(topo)
		if len(order) != len(topo.Pairs) {
			t.Fatalf("order length %d, want %d", len(order), len(topo.Pairs))
		}
		seen := map[power.PDUPairID]bool{}
		for _, pid := range order {
			if seen[pid] {
				t.Fatalf("duplicate pair %d in order", pid)
			}
			seen[pid] = true
		}
		// The first 6 entries cover all 6 UPS combinations.
		if combos >= 1 {
			comboSeen := map[[2]power.UPSID]bool{}
			for _, pid := range order[:6] {
				comboSeen[topo.Pairs[pid].UPSes] = true
			}
			if len(comboSeen) != 6 {
				t.Fatalf("first rotation covers %d combos, want 6", len(comboSeen))
			}
		}
	}
}
