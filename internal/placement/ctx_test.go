package placement

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flex/internal/workload"
)

// cancelAfterCtx reports cancellation after its Err method has been
// consulted `after` times — a deterministic stand-in for "the context is
// canceled partway through a long trace". context.Cause falls back to
// ctx.Err() for contexts without a cancelCtx ancestor, so policies
// surface this as their returned error.
type cancelAfterCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *cancelAfterCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func (c *cancelAfterCtx) checks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// TestPoliciesAbortCanceledCtxPromptly: every baseline policy's Place
// loop checks ctx per deployment, so a cancellation mid-trace aborts
// within one deployment instead of running the remaining hundreds.
func TestPoliciesAbortCanceledCtxPromptly(t *testing.T) {
	// A long trace: many small deployments so the per-deployment check is
	// the only thing bounding the abort latency.
	var trace []workload.Deployment
	for i := 0; i < 400; i++ {
		trace = append(trace, workload.Deployment{
			ID: i, Workload: "w", Category: workload.SoftwareRedundant,
			Racks: 1, PowerPerRack: 10 * 1000,
		})
	}
	policies := []Policy{
		Random{Seed: 1},
		RoundRobin{},
		BalancedRoundRobin{},
		FirstFit{},
	}
	const after = 3
	for _, pol := range policies {
		ctx := &cancelAfterCtx{Context: context.Background(), after: after}
		p, err := pol.Place(ctx, PaperRoom(), trace)
		if err == nil {
			t.Errorf("%s: no error from a canceled ctx (placed %d)", pol.Name(), len(p.Assignments))
			continue
		}
		// Prompt: the policy stopped at the first failing check, not after
		// draining the trace. Allow a little slack for policies that consult
		// ctx more than once per deployment.
		if n := ctx.checks(); n > after+2 {
			t.Errorf("%s: ctx checked %d times before aborting; want <= %d", pol.Name(), n, after+2)
		}
	}
}

// TestPoliciesCancelWallClock: belt and braces on real contexts — a
// pre-canceled context aborts every policy immediately even on a large
// generated trace.
func TestPoliciesCancelWallClock(t *testing.T) {
	room := PaperRoom()
	trace, err := workload.GenerateTrace(
		workload.DefaultTraceConfig(room.Topo.ProvisionedPower()), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, pol := range []Policy{Random{Seed: 2}, RoundRobin{}, BalancedRoundRobin{}, FirstFit{}} {
		start := time.Now()
		if _, err := pol.Place(ctx, room, trace); err == nil {
			t.Errorf("%s: no error from pre-canceled ctx", pol.Name())
		}
		if d := time.Since(start); d > time.Second {
			t.Errorf("%s: abort took %v", pol.Name(), d)
		}
	}
}
