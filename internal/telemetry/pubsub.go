package telemetry

import (
	"sync"
	"time"

	"flex/internal/obs/recorder"
	"flex/internal/power"
)

// Sample is one published power measurement.
type Sample struct {
	Device string // e.g. "UPS-1" or "rack-12-03"
	Power  power.Watts
	// Valid is false when the poller could not obtain quorum for the
	// device; consumers must treat the power as unknown.
	Valid bool
	// MeasuredAt is when the poller took the reading; consumers use it
	// for latency accounting and deduplication.
	MeasuredAt time.Time
	// Poller identifies the publishing poller (for dedup across the
	// redundant paths).
	Poller string
	// Seq increases per (Poller, Device).
	Seq uint64
	// Event is the flight-recorder sequence of this sample's
	// sample-publish event (0 when unrecorded); downstream events
	// reference it as their Cause, rooting the causal chain.
	Event uint64
	// PublishedAt is when the sample entered a broker (stamped by the
	// publisher, from its injected clock, just before PublishBatch).
	// Zero when the producer predates stamping. Fixed-size so the stamp
	// survives batch coalescing and gob transport without allocating.
	PublishedAt time.Time
	// DequeuedAt is when a consumer pulled the sample out of its ingest
	// queue (stamped by the consumer, never by the broker). Together
	// with MeasuredAt and PublishedAt it decomposes sample age into the
	// sample/queue stages of the latency-attribution waterfall
	// (DESIGN.md "Latency attribution").
	DequeuedAt time.Time
}

// StampPublished sets PublishedAt=at on every sample in batch that does
// not already carry a publish stamp. Callers stamp immediately before
// PublishBatch; the helper is a plain field loop so it stays on the
// zero-alloc ingest path.
//
//flex:hotpath
func StampPublished(batch []Sample, at time.Time) {
	for i := range batch {
		if batch[i].PublishedAt.IsZero() {
			batch[i].PublishedAt = at
		}
	}
}

// Subscription receives samples for one topic. Drop-oldest semantics keep
// slow subscribers from blocking the pipeline — stale power data is
// worthless to Flex, fresh data is everything.
type Subscription struct {
	C      chan Sample
	broker *Broker
	topic  string

	mu      sync.Mutex
	dropped int
	closed  bool
}

// Dropped reports how many samples were discarded because the subscriber
// lagged.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// RecvBatch drains up to len(buf) buffered samples into buf without
// blocking and returns how many it copied. It is the batch counterpart of
// reading s.C one sample at a time: a consumer that fell behind catches up
// in one call instead of len(buf) scheduler round-trips. A closed
// subscription drains its remaining buffer, then keeps returning 0.
//
//flex:hotpath
func (s *Subscription) RecvBatch(buf []Sample) int {
	n := 0
	for n < len(buf) {
		select {
		case smp, ok := <-s.C:
			if !ok {
				return n
			}
			buf[n] = smp
			n++
		default:
			return n
		}
	}
	return n
}

// Close unsubscribes.
func (s *Subscription) Close() {
	s.broker.unsubscribe(s.topic, s)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.C)
	}
}

// Broker is an in-process topic-based publish/subscribe system. Flex
// deploys two independent brokers; controllers subscribe to both and
// deduplicate, so the loss of one broker is invisible (paper Figure 7).
type Broker struct {
	Name string
	// Metrics, when non-nil, counts samples dropped from slow subscriber
	// buffers. Set it before publishing begins.
	Metrics *Metrics
	// Recorder, when non-nil, receives a sample-drop event whenever a
	// lagging subscriber forces drop-oldest. Set it before publishing
	// begins.
	Recorder *recorder.Recorder

	mu     sync.Mutex
	topics map[string][]*Subscription
	down   bool
}

// NewBroker creates an empty broker.
func NewBroker(name string) *Broker {
	return &Broker{Name: name, topics: make(map[string][]*Subscription)}
}

// Subscribe registers a subscriber for topic with the given channel
// buffer.
func (b *Broker) Subscribe(topic string, buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{C: make(chan Sample, buffer), broker: b, topic: topic}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.topics[topic] = append(b.topics[topic], sub)
	return sub
}

func (b *Broker) unsubscribe(topic string, sub *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := b.topics[topic]
	for i, s := range subs {
		if s == sub {
			b.topics[topic] = append(subs[:i], subs[i+1:]...)
			return
		}
	}
}

// Publish fans one sample out to all of topic's subscribers. It is a
// documented single-element wrapper over PublishBatch, the primary ingest
// path: the sample is wrapped in a stack-backed one-element batch, so the
// wrapper stays allocation-free (the AllocsPerRun tests pin both entry
// points at zero).
//
//flex:hotpath
func (b *Broker) Publish(topic string, s Sample) {
	one := [1]Sample{s}
	b.PublishBatch(topic, one[:])
}

// PublishBatch fans a batch of samples out to all of topic's subscribers
// under a single lock acquisition — the primary ingest path. When a
// subscriber's buffer is full the oldest sample is dropped (stale power
// data is worthless to Flex, fresh data is everything). Publishing on a
// downed broker is a silent no-op (that is the failure the duplicated
// broker masks).
//
// The fan-out runs with b.mu held, iterating the subscriber list in
// place: every send and drop-recv is non-blocking (drop-oldest), so the
// critical section is bounded by len(batch)×subscribers and PublishBatch
// allocates nothing — it sits on the poller and fleet-ingest hot paths.
// Subscription locks nest under the broker lock (b.mu -> sub.mu); nothing
// acquires them in the reverse order.
//
//flex:hotpath
func (b *Broker) PublishBatch(topic string, batch []Sample) {
	if len(batch) == 0 {
		return
	}
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		return
	}
	dropped := 0
	for _, sub := range b.topics[topic] {
		sub.mu.Lock()
		if sub.closed {
			sub.mu.Unlock()
			continue
		}
		for _, s := range batch {
			for {
				select {
				case sub.C <- s:
				default:
					select {
					case <-sub.C:
						sub.dropped++
						dropped++
						if b.Metrics != nil {
							b.Metrics.DroppedSamples.Inc()
						}
					default:
					}
					continue
				}
				break
			}
		}
		sub.mu.Unlock()
	}
	b.mu.Unlock()
	if b.Metrics != nil {
		b.Metrics.BatchPublishes.Inc()
	}
	// One aggregated drop event per batch, attributed to the newest sample
	// and emitted after every lock is released (eventcheck: no emission
	// under a held mutex).
	if dropped > 0 && b.Recorder != nil {
		last := batch[len(batch)-1]
		b.Recorder.Emit(recorder.Event{
			Type:    recorder.TypeSampleDrop,
			Time:    last.MeasuredAt,
			Actor:   b.Name,
			Subject: last.Device,
			Cause:   last.Event,
			Aux:     int64(dropped),
		})
	}
}

// SetDown injects or clears a broker outage.
func (b *Broker) SetDown(down bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down = down
}

// Topics used by the Flex pipeline.
const (
	TopicUPS  = "power/ups"
	TopicRack = "power/rack"
)
