package telemetry

import (
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/power"
)

// TestEWMAEstimatorConservativeLowerBound drives the estimator on a
// virtual-clock timeline and checks the property the controller depends on
// when valuing corrective actions: the k=-1 bound never promises more
// recoverable power than the smoothed estimate, and on a steady series it
// converges to the true draw rather than below it.
func TestEWMAEstimatorConservativeLowerBound(t *testing.T) {
	clk := clock.NewVirtual(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))
	e := NewEWMAEstimator(0.25)

	feed := func(device string, w power.Watts) {
		clk.Advance(2 * time.Second) // the paper's rack polling cadence
		e.Update(Sample{Device: device, Power: w, Valid: true, MeasuredAt: clk.Now()})
	}

	// A perfectly steady rack: deviation stays 0, so the conservative
	// bound must equal the estimate exactly — no phantom pessimism.
	for i := 0; i < 50; i++ {
		feed("steady", 10*power.KW)
	}
	est, ok := e.Estimate("steady")
	if !ok || est != 10*power.KW {
		t.Fatalf("steady estimate = %v %v, want 10kW", est, ok)
	}
	lower, ok := e.Bound("steady", -1)
	if !ok || lower != est {
		t.Fatalf("steady lower bound = %v, want == estimate %v", lower, est)
	}

	// An oscillating rack: the lower bound must sit strictly below the
	// smoothed mean (deviation > 0) and stay within the observed range.
	for i := 0; i < 60; i++ {
		w := 8 * power.KW
		if i%2 == 0 {
			w = 12 * power.KW
		}
		feed("noisy", w)
	}
	estN, _ := e.Estimate("noisy")
	lowerN, _ := e.Bound("noisy", -1)
	if lowerN >= estN {
		t.Fatalf("noisy lower bound %v not below estimate %v", lowerN, estN)
	}
	if lowerN < 4*power.KW || lowerN > 12*power.KW {
		t.Fatalf("noisy lower bound %v escaped the plausible range", lowerN)
	}

	// BoundSnapshot must agree with per-device Bound for every device.
	snap := e.BoundSnapshot(-1)
	for _, dev := range []string{"steady", "noisy"} {
		want, _ := e.Bound(dev, -1)
		if snap[dev] != want {
			t.Errorf("BoundSnapshot[%s] = %v, want %v", dev, snap[dev], want)
		}
	}

	// A sample timestamped before the last accepted one (duplicate path
	// replay) must not move the estimate — ordering comes from the clock's
	// measurement times, not arrival order.
	before, _ := e.Estimate("steady")
	e.Update(Sample{Device: "steady", Power: 99 * power.KW, Valid: true,
		MeasuredAt: clk.Now().Add(-time.Hour)})
	after, _ := e.Estimate("steady")
	if before != after {
		t.Fatalf("out-of-order sample moved estimate: %v → %v", before, after)
	}
}
