package telemetry

import (
	"sync"
	"testing"
	"time"

	"flex/internal/power"
)

// TestBrokerConcurrencyStress hammers one broker with concurrent
// publishers, subscribers, and fault injection; run under -race this
// guards the locking discipline.
func TestBrokerConcurrencyStress(t *testing.T) {
	b := NewBroker("stress")
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// 4 publishers.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Publish(TopicUPS, Sample{
					Device: "UPS-1", Power: power.Watts(i), Valid: true,
					MeasuredAt: time.Unix(int64(i), int64(p)),
				})
			}
		}(p)
	}
	// 4 subscribers that churn (subscribe, read some, close).
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub := b.Subscribe(TopicUPS, 8)
				for i := 0; i < 50; i++ {
					select {
					case <-sub.C:
					case <-time.After(time.Millisecond):
					}
				}
				_ = sub.Dropped()
				sub.Close()
			}
		}()
	}
	// Fault injector flapping the broker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b.SetDown(i%2 == 0)
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestLatestPowerConcurrencyStress exercises the view under concurrent
// updates and reads.
func TestLatestPowerConcurrencyStress(t *testing.T) {
	lp := NewLatestPower()
	est := NewEWMAEstimator(0.3)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := Sample{Device: "d", Power: power.Watts(i), Valid: true,
					MeasuredAt: time.Unix(int64(i), int64(w))}
				lp.Update(s)
				est.Update(s)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lp.Get("d")
				lp.Snapshot()
				lp.Age("d", time.Now())
				est.Estimate("d")
				est.BoundSnapshot(-1)
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}
