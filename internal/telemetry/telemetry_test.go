package telemetry

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/obs"
	"flex/internal/power"
)

func t0() time.Time { return time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC) }

func TestSimMeterReadsSource(t *testing.T) {
	m := NewSimMeter("m", func() power.Watts { return 1000 }, SimMeterConfig{})
	v, err := m.Read(t0())
	if err != nil || v != 1000 {
		t.Fatalf("Read = %v, %v", v, err)
	}
}

func TestSimMeterNoiseBounded(t *testing.T) {
	m := NewSimMeter("m", func() power.Watts { return 1000 }, SimMeterConfig{Noise: 0.01, Seed: 1})
	for i := 0; i < 100; i++ {
		v, err := m.Read(t0().Add(time.Duration(i) * time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if v < 900 || v > 1100 {
			t.Fatalf("noisy reading %v implausible for 1kW ±1%%", v)
		}
	}
}

func TestSimMeterFailure(t *testing.T) {
	m := NewSimMeter("m", func() power.Watts { return 1000 }, SimMeterConfig{})
	m.SetFailed(true)
	if _, err := m.Read(t0()); !errors.Is(err, ErrMeterFailed) {
		t.Fatalf("err = %v, want ErrMeterFailed", err)
	}
	m.SetFailed(false)
	if _, err := m.Read(t0()); err != nil {
		t.Fatalf("recovered meter errored: %v", err)
	}
}

func TestSimMeterStaleness(t *testing.T) {
	var src atomic.Int64
	src.Store(1000)
	m := NewSimMeter("m", func() power.Watts { return power.Watts(src.Load()) },
		SimMeterConfig{StaleFor: 5 * time.Second})
	v1, _ := m.Read(t0())
	src.Store(2000)
	// Within the stale window the old value is returned (paper §VI: UPS
	// meters repeat values for up to 5 seconds).
	v2, _ := m.Read(t0().Add(2 * time.Second))
	if v2 != v1 {
		t.Fatalf("stale read = %v, want %v", v2, v1)
	}
	v3, _ := m.Read(t0().Add(6 * time.Second))
	if v3 != 2000 {
		t.Fatalf("post-stale read = %v, want 2000", v3)
	}
}

func TestSimMeterOffsetAndClamp(t *testing.T) {
	m := NewSimMeter("m", func() power.Watts { return 100 }, SimMeterConfig{})
	m.SetOffset(-500)
	v, _ := m.Read(t0())
	if v != 0 {
		t.Fatalf("negative reading should clamp to 0, got %v", v)
	}
}

func TestLogicalMeterMedianMasksOneBadMeter(t *testing.T) {
	lm, err := NewLogicalMeter("UPS-1",
		StaticMeter{MeterName: "a", Value: 1000},
		StaticMeter{MeterName: "b", Value: 1010},
		StaticMeter{MeterName: "c", Value: 5000}, // wildly misreading
	)
	if err != nil {
		t.Fatal(err)
	}
	v, err := lm.Read(t0())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1010 {
		t.Fatalf("median = %v, want 1010 (misreading masked)", v)
	}
}

func TestLogicalMeterQuorum(t *testing.T) {
	bad := StaticMeter{MeterName: "x", Err: ErrMeterFailed}
	lm, _ := NewLogicalMeter("UPS-1",
		StaticMeter{MeterName: "a", Value: 1000}, bad, bad)
	if _, err := lm.Read(t0()); err == nil {
		t.Fatal("1/3 readable should fail quorum 2")
	}
	lm2, _ := NewLogicalMeter("UPS-1",
		StaticMeter{MeterName: "a", Value: 1000},
		StaticMeter{MeterName: "b", Value: 1020}, bad)
	v, err := lm2.Read(t0())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1010 { // even count → mean of middle two
		t.Fatalf("median of 2 = %v, want 1010", v)
	}
}

func TestNewLogicalMeterRequiresMeters(t *testing.T) {
	if _, err := NewLogicalMeter("x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestUPSLogicalMeterToleratesSingleFailure(t *testing.T) {
	src := func() power.Watts { return 1.2 * power.MW }
	mech := func() power.Watts { return 100 * power.KW }
	lm := NewUPSLogicalMeter("UPS-1", src, mech, 42)
	v, err := lm.Read(t0())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(v-1.2*power.MW)) > 0.03*1.2e6 {
		t.Fatalf("consensus = %v, want ≈1.2MW", v)
	}
	// Fail the direct UPS meter; consensus must still work and stay
	// accurate.
	lm.Meters()[0].(*SimMeter).SetFailed(true)
	v, err = lm.Read(t0().Add(10 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(v-1.2*power.MW)) > 0.05*1.2e6 {
		t.Fatalf("post-failure consensus = %v, want ≈1.2MW", v)
	}
	// Misreading on one remaining meter is the worst case for quorum 2
	// (mean of two); the error stays bounded by half the offset.
	lm.Meters()[1].(*SimMeter).SetOffset(0.2 * power.MW)
	v, err = lm.Read(t0().Add(20 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(v-1.3*power.MW)) > 0.06*1.3e6 {
		t.Fatalf("degraded consensus = %v, want ≈1.3MW", v)
	}
}

func TestBrokerFanoutAndDropOldest(t *testing.T) {
	b := NewBroker("A")
	sub := b.Subscribe("t", 2)
	for i := 0; i < 5; i++ {
		b.Publish("t", Sample{Device: "d", Seq: uint64(i)})
	}
	if sub.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", sub.Dropped())
	}
	// The two newest survive.
	s1 := <-sub.C
	s2 := <-sub.C
	if s1.Seq != 3 || s2.Seq != 4 {
		t.Fatalf("kept seqs %d,%d, want 3,4", s1.Seq, s2.Seq)
	}
	sub.Close()
	// Publishing after close must not panic.
	b.Publish("t", Sample{Device: "d"})
}

func TestPublishZeroAllocations(t *testing.T) {
	b := NewBroker("A")
	b.Metrics = NewMetrics(obs.NewRegistry())
	sub := b.Subscribe("t", 2)
	defer sub.Close()
	s := Sample{Device: "d", Valid: true}
	// The buffer fills after two publishes; from then on every publish
	// exercises the drop-oldest path too. Publish must allocate nothing
	// either way — it runs once per device per poll on the poller hot
	// path (enforced statically by flexlint's allocfree analyzer).
	allocs := testing.AllocsPerRun(1000, func() {
		s.Seq++
		b.Publish("t", s)
	})
	if allocs != 0 {
		t.Fatalf("Publish allocated %.1f times per call, want 0", allocs)
	}
}

func TestBrokerDown(t *testing.T) {
	b := NewBroker("A")
	sub := b.Subscribe("t", 4)
	b.SetDown(true)
	b.Publish("t", Sample{Device: "d"})
	select {
	case <-sub.C:
		t.Fatal("downed broker delivered a sample")
	default:
	}
	b.SetDown(false)
	b.Publish("t", Sample{Device: "d"})
	select {
	case <-sub.C:
	default:
		t.Fatal("recovered broker did not deliver")
	}
}

func TestPollerPublishesToAllBrokers(t *testing.T) {
	clk := clock.NewVirtual(t0())
	b1, b2 := NewBroker("A"), NewBroker("B")
	lm, _ := NewLogicalMeter("UPS-1", StaticMeter{MeterName: "m", Value: 500})
	p := NewPoller("p1", clk, time.Second, []SamplePublisher{b1, b2},
		[]Target{{Meter: lm, Topic: TopicUPS}})
	s1 := b1.Subscribe(TopicUPS, 4)
	s2 := b2.Subscribe(TopicUPS, 4)
	p.PollOnce()
	for i, sub := range []*Subscription{s1, s2} {
		select {
		case s := <-sub.C:
			if s.Device != "UPS-1" || s.Power != 500 || !s.Valid {
				t.Fatalf("broker %d sample = %+v", i, s)
			}
		default:
			t.Fatalf("broker %d received nothing", i)
		}
	}
	if p.Polls() != 1 {
		t.Fatalf("Polls = %d", p.Polls())
	}
}

func TestPollerDownStopsPublishing(t *testing.T) {
	clk := clock.NewVirtual(t0())
	b := NewBroker("A")
	lm, _ := NewLogicalMeter("UPS-1", StaticMeter{MeterName: "m", Value: 500})
	p := NewPoller("p1", clk, time.Second, []SamplePublisher{b}, []Target{{Meter: lm, Topic: TopicUPS}})
	sub := b.Subscribe(TopicUPS, 4)
	p.SetDown(true)
	p.PollOnce()
	select {
	case <-sub.C:
		t.Fatal("downed poller published")
	default:
	}
}

func TestPollerMarksInvalidOnQuorumLoss(t *testing.T) {
	clk := clock.NewVirtual(t0())
	b := NewBroker("A")
	bad := StaticMeter{MeterName: "x", Err: ErrMeterFailed}
	lm, _ := NewLogicalMeter("UPS-1", bad, bad, bad)
	p := NewPoller("p1", clk, time.Second, []SamplePublisher{b}, []Target{{Meter: lm, Topic: TopicUPS}})
	sub := b.Subscribe(TopicUPS, 4)
	p.PollOnce()
	s := <-sub.C
	if s.Valid {
		t.Fatal("sample should be invalid without quorum")
	}
}

func TestDeduper(t *testing.T) {
	d := NewDeduper()
	s := Sample{Device: "UPS-1", MeasuredAt: t0()}
	if !d.Fresh(s) {
		t.Fatal("first sample should be fresh")
	}
	if d.Fresh(s) {
		t.Fatal("duplicate should be stale")
	}
	s2 := s
	s2.MeasuredAt = t0().Add(time.Second)
	if !d.Fresh(s2) {
		t.Fatal("newer sample should be fresh")
	}
	if d.Fresh(s) {
		t.Fatal("older sample should be stale")
	}
}

func TestLatestPower(t *testing.T) {
	lp := NewLatestPower()
	lp.Update(Sample{Device: "d", Power: 100, Valid: true, MeasuredAt: t0()})
	lp.Update(Sample{Device: "d", Power: 50, Valid: true, MeasuredAt: t0().Add(-time.Second)})  // older, ignored
	lp.Update(Sample{Device: "d", Power: 999, Valid: false, MeasuredAt: t0().Add(time.Second)}) // invalid, ignored
	v, at, ok := lp.Get("d")
	if !ok || v != 100 || !at.Equal(t0()) {
		t.Fatalf("Get = %v %v %v", v, at, ok)
	}
	if _, _, ok := lp.Get("missing"); ok {
		t.Fatal("missing device should not exist")
	}
	age, ok := lp.Age("d", t0().Add(3*time.Second))
	if !ok || age != 3*time.Second {
		t.Fatalf("Age = %v %v", age, ok)
	}
	if _, ok := lp.Age("missing", t0()); ok {
		t.Fatal("missing device should have no age")
	}
	snap := lp.Snapshot()
	if len(snap) != 1 || snap["d"] != 100 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestPipelineEndToEndRedundancy(t *testing.T) {
	clk := clock.NewVirtual(t0())
	truth := power.Watts(1.0 * power.MW)
	pl := NewPipeline(PipelineConfig{
		Clock:      clk,
		UPSSources: map[string]PowerSource{"UPS-1": func() power.Watts { return truth }},
		RackSources: map[string]PowerSource{
			"rack-1": func() power.Watts { return 10 * power.KW },
		},
		Seed: 7,
	})
	view := NewLatestPower()
	cancel := pl.SubscribeAll(TopicUPS, view)
	defer cancel()
	rackView := NewLatestPower()
	cancelR := pl.SubscribeAll(TopicRack, rackView)
	defer cancelR()

	pl.PollOnce()
	waitFor(t, func() bool { _, _, ok := view.Get("UPS-1"); return ok })
	v, _, _ := view.Get("UPS-1")
	if math.Abs(float64(v-truth)) > 0.03*float64(truth) {
		t.Fatalf("UPS view = %v, want ≈1MW", v)
	}
	waitFor(t, func() bool { _, _, ok := rackView.Get("rack-1"); return ok })

	// Kill one poller and one broker: the view must keep updating.
	pl.PollerSet[0].SetDown(true)
	pl.BrokerSet[0].SetDown(true)
	clk.Advance(2 * time.Second)
	truth = 2.0 * power.MW
	pl.PollOnce()
	waitFor(t, func() bool {
		v, _, _ := view.Get("UPS-1")
		return math.Abs(float64(v-2.0*power.MW)) < 0.05*2e6
	})
}

func TestPipelineRunLoop(t *testing.T) {
	clk := clock.NewVirtual(t0())
	pl := NewPipeline(PipelineConfig{
		Clock:      clk,
		UPSSources: map[string]PowerSource{"UPS-1": func() power.Watts { return power.MW }},
		Seed:       3,
	})
	view := NewLatestPower()
	cancel := pl.SubscribeAll(TopicUPS, view)
	defer cancel()
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	pl.Start(ctx)
	defer pl.Stop()
	// First poll happens immediately.
	waitFor(t, func() bool { _, _, ok := view.Get("UPS-1"); return ok })
	// Advance past one interval: another round fires.
	before, _, _ := view.Get("UPS-1")
	_ = before
	n0 := pl.PollerSet[0].Polls()
	clk.Advance(1600 * time.Millisecond)
	waitFor(t, func() bool { return pl.PollerSet[0].Polls() > n0 })
}

// waitFor polls cond for up to 2s of real time (goroutine scheduling is
// involved even with a virtual clock).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestEWMAEstimatorSmoothing(t *testing.T) {
	e := NewEWMAEstimator(0.5)
	base := t0()
	for i, v := range []power.Watts{100, 200, 200, 200} {
		e.Update(Sample{Device: "d", Power: v, Valid: true, MeasuredAt: base.Add(time.Duration(i) * time.Second)})
	}
	m, ok := e.Estimate("d")
	if !ok {
		t.Fatal("no estimate")
	}
	// EWMA(0.5) over 100,200,200,200 = 187.5.
	if math.Abs(float64(m)-187.5) > 1e-9 {
		t.Fatalf("estimate = %v, want 187.5", m)
	}
	// Lower bound below mean, upper above.
	lo, _ := e.Bound("d", -1)
	hi, _ := e.Bound("d", 1)
	if !(lo < m && m < hi) {
		t.Fatalf("bounds %v %v around %v", lo, hi, m)
	}
}

func TestEWMAEstimatorIgnoresInvalidAndStale(t *testing.T) {
	e := NewEWMAEstimator(0.5)
	e.Update(Sample{Device: "d", Power: 100, Valid: true, MeasuredAt: t0()})
	e.Update(Sample{Device: "d", Power: 999, Valid: false, MeasuredAt: t0().Add(time.Second)})
	e.Update(Sample{Device: "d", Power: 999, Valid: true, MeasuredAt: t0().Add(-time.Second)})
	m, _ := e.Estimate("d")
	if m != 100 {
		t.Fatalf("estimate = %v, want 100", m)
	}
	if _, ok := e.Estimate("missing"); ok {
		t.Fatal("missing device should not estimate")
	}
	if _, ok := e.Bound("missing", 1); ok {
		t.Fatal("missing device should not bound")
	}
}

func TestEWMAEstimatorBoundSnapshotClamps(t *testing.T) {
	e := NewEWMAEstimator(1)
	e.Update(Sample{Device: "a", Power: 10, Valid: true, MeasuredAt: t0()})
	e.Update(Sample{Device: "a", Power: 100, Valid: true, MeasuredAt: t0().Add(time.Second)})
	snap := e.BoundSnapshot(-10)
	if snap["a"] != 0 {
		t.Fatalf("lower bound should clamp at 0, got %v", snap["a"])
	}
	if len(snap) != 1 {
		t.Fatalf("snapshot size %d", len(snap))
	}
}

func TestEWMAEstimatorBadAlphaDefaults(t *testing.T) {
	e := NewEWMAEstimator(-3)
	e.Update(Sample{Device: "d", Power: 100, Valid: true, MeasuredAt: t0()})
	if m, ok := e.Estimate("d"); !ok || m != 100 {
		t.Fatalf("estimate = %v %v", m, ok)
	}
}
