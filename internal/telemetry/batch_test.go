package telemetry

import (
	"testing"

	"flex/internal/clock"
	"flex/internal/obs"
)

func TestPublishBatchFanoutAndDropOldest(t *testing.T) {
	b := NewBroker("A")
	fast := b.Subscribe("t", 8)
	slow := b.Subscribe("t", 2)
	batch := make([]Sample, 5)
	for i := range batch {
		batch[i] = Sample{Device: "d", Seq: uint64(i)}
	}
	b.PublishBatch("t", batch)

	if fast.Dropped() != 0 {
		t.Fatalf("fast sub dropped %d, want 0", fast.Dropped())
	}
	for i := 0; i < 5; i++ {
		s := <-fast.C
		if s.Seq != uint64(i) {
			t.Fatalf("fast sub sample %d has seq %d, want in-order delivery", i, s.Seq)
		}
	}
	// The slow subscriber keeps only the two newest.
	if slow.Dropped() != 3 {
		t.Fatalf("slow sub dropped %d, want 3", slow.Dropped())
	}
	s1, s2 := <-slow.C, <-slow.C
	if s1.Seq != 3 || s2.Seq != 4 {
		t.Fatalf("slow sub kept seqs %d,%d, want 3,4", s1.Seq, s2.Seq)
	}
}

func TestPublishBatchEmptyAndDown(t *testing.T) {
	b := NewBroker("A")
	b.Metrics = NewMetrics(obs.NewRegistry())
	sub := b.Subscribe("t", 4)
	defer sub.Close()

	b.PublishBatch("t", nil)
	if got := b.Metrics.BatchPublishes.Value(); got != 0 {
		t.Fatalf("empty batch counted as a publish (got %d)", got)
	}
	b.SetDown(true)
	b.PublishBatch("t", []Sample{{Device: "d"}})
	select {
	case <-sub.C:
		t.Fatal("downed broker delivered a batch")
	default:
	}
	b.SetDown(false)
	b.PublishBatch("t", []Sample{{Device: "d"}})
	select {
	case <-sub.C:
	default:
		t.Fatal("recovered broker did not deliver")
	}
}

func TestPublishCountsAsBatchOfOne(t *testing.T) {
	b := NewBroker("A")
	b.Metrics = NewMetrics(obs.NewRegistry())
	sub := b.Subscribe("t", 4)
	defer sub.Close()
	b.Publish("t", Sample{Device: "d"})
	if got := b.Metrics.BatchPublishes.Value(); got != 1 {
		t.Fatalf("BatchPublishes = %d after single Publish, want 1", got)
	}
	if got := <-sub.C; got.Device != "d" {
		t.Fatalf("delivered device %q, want d", got.Device)
	}
}

func TestRecvBatchDrains(t *testing.T) {
	b := NewBroker("A")
	sub := b.Subscribe("t", 8)
	for i := 0; i < 5; i++ {
		b.Publish("t", Sample{Device: "d", Seq: uint64(i)})
	}
	buf := make([]Sample, 3)
	// First call fills the buffer; second drains the remainder; third
	// returns 0 on an empty buffer without blocking.
	if n := sub.RecvBatch(buf); n != 3 {
		t.Fatalf("first RecvBatch = %d, want 3", n)
	}
	if buf[0].Seq != 0 || buf[2].Seq != 2 {
		t.Fatalf("first batch seqs %d..%d, want 0..2", buf[0].Seq, buf[2].Seq)
	}
	if n := sub.RecvBatch(buf); n != 2 {
		t.Fatalf("second RecvBatch = %d, want 2", n)
	}
	if buf[0].Seq != 3 || buf[1].Seq != 4 {
		t.Fatalf("second batch seqs %d,%d, want 3,4", buf[0].Seq, buf[1].Seq)
	}
	if n := sub.RecvBatch(buf); n != 0 {
		t.Fatalf("empty RecvBatch = %d, want 0", n)
	}
}

func TestRecvBatchClosedSubscription(t *testing.T) {
	b := NewBroker("A")
	sub := b.Subscribe("t", 8)
	b.Publish("t", Sample{Device: "d", Seq: 1})
	sub.Close()
	buf := make([]Sample, 4)
	// A closed subscription drains what is buffered, then returns 0 forever.
	if n := sub.RecvBatch(buf); n != 1 || buf[0].Seq != 1 {
		t.Fatalf("RecvBatch after close = %d (seq %d), want 1 buffered sample", n, buf[0].Seq)
	}
	if n := sub.RecvBatch(buf); n != 0 {
		t.Fatalf("RecvBatch on drained closed sub = %d, want 0", n)
	}
}

// TestBatchPathZeroAllocations pins the whole batched ingest hot path —
// PublishBatch fan-out (including drop-oldest) and RecvBatch drain — at
// zero allocations per call, the runtime counterpart of the static
// allocfree roots on those functions.
func TestBatchPathZeroAllocations(t *testing.T) {
	b := NewBroker("A")
	b.Metrics = NewMetrics(obs.NewRegistry())
	sub := b.Subscribe("t", 2)
	defer sub.Close()
	batch := make([]Sample, 4)
	for i := range batch {
		batch[i] = Sample{Device: "d", Valid: true, Seq: uint64(i)}
	}
	buf := make([]Sample, 8)
	if allocs := testing.AllocsPerRun(1000, func() {
		b.PublishBatch("t", batch)
	}); allocs != 0 {
		t.Fatalf("PublishBatch allocated %.1f times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		sub.RecvBatch(buf)
	}); allocs != 0 {
		t.Fatalf("RecvBatch allocated %.1f times per call, want 0", allocs)
	}
}

// TestPollerBatchesByTopic checks PollOnce hands consecutive same-topic
// targets to brokers as one batch instead of one publish per device.
func TestPollerBatchesByTopic(t *testing.T) {
	b := NewBroker("A")
	b.Metrics = NewMetrics(obs.NewRegistry())
	m1, _ := NewLogicalMeter("u1", StaticMeter{MeterName: "m", Value: 1000})
	m2, _ := NewLogicalMeter("u2", StaticMeter{MeterName: "m", Value: 2000})
	m3, _ := NewLogicalMeter("r1", StaticMeter{MeterName: "m", Value: 300})
	p := NewPoller("p1", clock.NewVirtual(t0()), 0, []SamplePublisher{b}, []Target{
		{Meter: m1, Topic: "power/ups"},
		{Meter: m2, Topic: "power/ups"},
		{Meter: m3, Topic: "power/rack"},
	})
	ups := b.Subscribe("power/ups", 8)
	rack := b.Subscribe("power/rack", 8)
	p.PollOnce()
	// Two topic runs → two PublishBatch calls, three samples total.
	if got := b.Metrics.BatchPublishes.Value(); got != 2 {
		t.Fatalf("BatchPublishes = %d, want 2 (one per topic run)", got)
	}
	upsBuf := make([]Sample, 8)
	if n := ups.RecvBatch(upsBuf); n != 2 {
		t.Fatalf("ups topic delivered %d samples, want 2", n)
	}
	rackBuf := make([]Sample, 8)
	if n := rack.RecvBatch(rackBuf); n != 1 {
		t.Fatalf("rack topic delivered %d samples, want 1", n)
	}
}
