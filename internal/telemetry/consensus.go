package telemetry

import (
	"fmt"
	"sort"
	"time"

	"flex/internal/obs/recorder"
	"flex/internal/power"
)

// LogicalMeter produces the power of one device from several redundant
// physical meters using median consensus. The paper uses three logical
// meters per UPS — UPSMeter ≈ ITMeter ≈ (TotalMeter − MechMeter) — so the
// failure or misreading of any single meter is masked (§IV-C).
type LogicalMeter struct {
	Device string
	meters []Meter
	// Quorum is the minimum number of successful readings required; the
	// default (set by NewLogicalMeter) is a majority of the meters.
	Quorum int
	// Metrics, when non-nil, counts reads whose physical meters disagree
	// beyond DisagreementFrac — the signal that the median is actively
	// masking a mis-calibrated meter.
	Metrics *Metrics
	// DisagreementFrac is the relative spread (max−min over median) above
	// which a read counts as a disagreement (default 0.05, set by
	// NewLogicalMeter).
	DisagreementFrac float64
	// Recorder, when non-nil, emits a consensus-verdict event per
	// successful read, a consensus-disagree event when the median masked
	// a spread beyond DisagreementFrac, and a consensus-quorum-loss event
	// on quorum failure. Set it before reads begin.
	Recorder *recorder.Recorder
}

// NewLogicalMeter builds a consensus meter over the given physical meters.
func NewLogicalMeter(device string, meters ...Meter) (*LogicalMeter, error) {
	if len(meters) == 0 {
		return nil, fmt.Errorf("telemetry: logical meter %q needs at least one physical meter", device)
	}
	return &LogicalMeter{Device: device, meters: meters, Quorum: len(meters)/2 + 1, DisagreementFrac: 0.05}, nil
}

// Read returns the median of the currently readable meters. It fails when
// fewer than Quorum meters respond — the caller must treat the device's
// power as unknown (and, for safety, assume the worst).
func (l *LogicalMeter) Read(now time.Time) (power.Watts, error) {
	vals := make([]float64, 0, len(l.meters))
	for _, m := range l.meters {
		v, err := m.Read(now)
		if err != nil {
			continue
		}
		vals = append(vals, float64(v))
	}
	if len(vals) < l.Quorum {
		if l.Recorder != nil {
			l.Recorder.Emit(recorder.Event{
				Type:    recorder.TypeConsensusQuorumLoss,
				Time:    now,
				Subject: l.Device,
				Aux:     int64(len(vals)),
			})
		}
		return 0, fmt.Errorf("telemetry: device %s: %d/%d meters readable, quorum %d",
			l.Device, len(vals), len(l.meters), l.Quorum)
	}
	sort.Float64s(vals)
	n := len(vals)
	med := vals[n/2]
	if n%2 == 0 {
		med = (vals[n/2-1] + vals[n/2]) / 2
	}
	disagree := n >= 2 && med > 0 && (vals[n-1]-vals[0]) > l.DisagreementFrac*med
	if l.Metrics != nil && disagree {
		l.Metrics.ConsensusDisagreements.Inc()
	}
	if l.Recorder != nil {
		verdict := l.Recorder.Emit(recorder.Event{
			Type:    recorder.TypeConsensusVerdict,
			Time:    now,
			Subject: l.Device,
			Value:   med,
			Aux:     int64(n),
		})
		if disagree {
			l.Recorder.Emit(recorder.Event{
				Type:    recorder.TypeConsensusDisagree,
				Time:    now,
				Subject: l.Device,
				Value:   (vals[n-1] - vals[0]) / med,
				Cause:   verdict,
			})
		}
	}
	return power.Watts(med), nil
}

// Meters returns the underlying physical meters (for fault injection in
// tests and experiments).
func (l *LogicalMeter) Meters() []Meter { return l.meters }

// NewUPSLogicalMeter builds the paper's three-way redundant logical meter
// for a UPS: a direct UPS output meter, a downstream IT meter, and the
// difference of the total and mechanical meters. All four physical meters
// observe the same ground-truth source here; their independent noise,
// staleness, and failure modes are what the consensus masks.
func NewUPSLogicalMeter(device string, source PowerSource, mechPower PowerSource, seed int64) *LogicalMeter {
	ups := NewSimMeter(device+"/UPSMeter", source, SimMeterConfig{
		Noise: 0.004, StaleFor: 3 * time.Second, Seed: seed,
	})
	it := NewSimMeter(device+"/ITMeter", source, SimMeterConfig{
		Noise: 0.006, Seed: seed + 1,
	})
	total := func() power.Watts { return source() + mechPower() }
	diff := &derivedMeter{
		name: device + "/TotalMinusMech",
		a:    NewSimMeter(device+"/TotalMeter", total, SimMeterConfig{Noise: 0.005, Seed: seed + 2}),
		b:    NewSimMeter(device+"/MechMeter", mechPower, SimMeterConfig{Noise: 0.01, Seed: seed + 3}),
	}
	lm, err := NewLogicalMeter(device, ups, it, diff)
	if err != nil {
		panic(err) // static construction; cannot fail
	}
	return lm
}

// derivedMeter computes a − b from two physical meters, mirroring the
// paper's (TotalMeter − MechMeter) logical meter.
type derivedMeter struct {
	name string
	a, b Meter
}

// Name implements Meter.
func (d *derivedMeter) Name() string { return d.name }

// Read implements Meter.
func (d *derivedMeter) Read(now time.Time) (power.Watts, error) {
	av, err := d.a.Read(now)
	if err != nil {
		return 0, err
	}
	bv, err := d.b.Read(now)
	if err != nil {
		return 0, err
	}
	v := av - bv
	if v < 0 {
		v = 0
	}
	return v, nil
}
