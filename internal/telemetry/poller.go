package telemetry

import (
	"context"
	"sync"
	"time"

	"flex/internal/clock"
	"flex/internal/obs/recorder"
	"flex/internal/power"
)

// Target is one device a poller polls: its logical (consensus) meter and
// the topic its samples are published on.
type Target struct {
	Meter *LogicalMeter
	Topic string
}

// Poller periodically reads a set of logical meters and publishes the
// samples to every configured broker. Flex runs two or more pollers on
// separate fault domains, each publishing the same devices; subscribers
// deduplicate (paper Figure 7).
type Poller struct {
	Name     string
	Interval time.Duration
	Clock    clock.Clock
	Brokers  []SamplePublisher
	Targets  []Target
	// Metrics, when non-nil, receives poll/publish/invalid-read counts.
	// Set it before Run (the pipeline wires it from PipelineConfig.Obs).
	Metrics *Metrics
	// Recorder, when non-nil, emits a sample-publish event per reading;
	// the event's sequence rides on Sample.Event so downstream consumers
	// can cite it as their Cause. Set it before Run.
	Recorder *recorder.Recorder

	mu    sync.Mutex
	seq   map[string]uint64
	down  bool
	polls int
	// batch is the reusable per-round publish buffer; PollOnce flushes it
	// to every broker with one PublishBatch per topic run, so steady-state
	// rounds reuse the same backing array.
	batch []Sample
}

// NewPoller constructs a poller. Interval defaults to 1.5 seconds (the
// paper's UPS telemetry frequency) when zero.
func NewPoller(name string, clk clock.Clock, interval time.Duration, brokers []SamplePublisher, targets []Target) *Poller {
	if interval <= 0 {
		interval = 1500 * time.Millisecond
	}
	return &Poller{
		Name:     name,
		Interval: interval,
		Clock:    clk,
		Brokers:  brokers,
		Targets:  targets,
		seq:      make(map[string]uint64),
	}
}

// PollOnce reads every target once and publishes the samples, batched:
// consecutive targets on the same topic accumulate into one buffer that
// is handed to every broker with a single PublishBatch call — one lock
// acquisition per broker per topic run instead of one per device. It is
// the unit of work Run repeats; tests and the emulator drive it directly
// for deterministic schedules.
func (p *Poller) PollOnce() {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return
	}
	p.polls++
	p.mu.Unlock()
	if p.Metrics != nil {
		p.Metrics.Polls.Inc()
	}
	now := p.Clock.Now()
	p.batch = p.batch[:0]
	topic := ""
	flush := func() {
		if len(p.batch) == 0 {
			return
		}
		// Stamp the batch at the moment it enters the brokers; the gap
		// back to MeasuredAt is the "sample" stage of the latency
		// waterfall (meter read + consensus + batching).
		StampPublished(p.batch, p.Clock.Now())
		for _, b := range p.Brokers {
			b.PublishBatch(topic, p.batch)
			if p.Metrics != nil {
				p.Metrics.SamplesPublished.Add(uint64(len(p.batch)))
			}
		}
		p.batch = p.batch[:0]
	}
	for _, t := range p.Targets {
		if t.Topic != topic {
			flush()
			topic = t.Topic
		}
		v, err := t.Meter.Read(now)
		if p.Metrics != nil && err != nil {
			p.Metrics.InvalidReads.Inc()
		}
		s := Sample{
			Device:     t.Meter.Device,
			Power:      v,
			Valid:      err == nil,
			MeasuredAt: now,
			Poller:     p.Name,
			Seq:        p.nextSeq(t.Meter.Device),
		}
		if p.Recorder != nil {
			valid := int64(0)
			if s.Valid {
				valid = 1
			}
			s.Event = p.Recorder.Emit(recorder.Event{
				Type:    recorder.TypeSamplePublish,
				Time:    now,
				Actor:   p.Name,
				Subject: s.Device,
				Value:   float64(s.Power),
				Aux:     valid,
			})
		}
		p.batch = append(p.batch, s)
	}
	flush()
}

func (p *Poller) nextSeq(device string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq[device]++
	return p.seq[device]
}

// Run polls until ctx is cancelled, sleeping Interval between rounds on
// the poller's clock.
func (p *Poller) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		p.PollOnce()
		select {
		case <-ctx.Done():
			return
		case <-p.Clock.After(p.Interval):
		}
	}
}

// SetDown injects or clears a poller outage.
func (p *Poller) SetDown(down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = down
}

// Polls reports how many poll rounds have executed.
func (p *Poller) Polls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.polls
}

// Deduper collapses the duplicate samples that arrive through the
// redundant poller × broker paths: a sample is fresh when it is newer than
// the last accepted measurement for its device (measurement time, then
// sequence as a tiebreaker per poller).
type Deduper struct {
	mu   sync.Mutex
	last map[string]time.Time
}

// NewDeduper returns an empty deduper.
func NewDeduper() *Deduper { return &Deduper{last: make(map[string]time.Time)} }

// Fresh reports whether s carries new information and records it if so.
func (d *Deduper) Fresh(s Sample) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, ok := d.last[s.Device]; ok && !s.MeasuredAt.After(t) {
		return false
	}
	d.last[s.Device] = s.MeasuredAt
	return true
}

// Stamps is the per-device ingest timeline retained by LatestPower: the
// birth timestamps of the sample currently installed in the view. Zero
// fields mean the corresponding stage was never stamped (e.g. a producer
// that predates stamping, or a view fed directly without a broker).
type Stamps struct {
	MeasuredAt  time.Time
	PublishedAt time.Time
	DequeuedAt  time.Time
}

// LatestPower is a thread-safe view of the most recent valid power per
// device, assembled from deduplicated samples — the controller's power
// snapshot (Algorithm 1 lines 2–3).
type LatestPower struct {
	mu     sync.Mutex
	power  map[string]power.Watts
	at     map[string]time.Time
	stamps map[string]Stamps
	event  map[string]uint64
	rec    *recorder.Recorder
	role   string
}

// NewLatestPower returns an empty view.
func NewLatestPower() *LatestPower {
	return &LatestPower{
		power:  make(map[string]power.Watts),
		at:     make(map[string]time.Time),
		stamps: make(map[string]Stamps),
		event:  make(map[string]uint64),
	}
}

// SetRecorder makes every accepted sample emit a sample-arrive event
// under the given role ("ups-view", "rack-view"); the event sequence is
// retained per device so readers (GetEvent) can cite the arrival as the
// Cause of decisions made from it. Set it before updates begin.
func (l *LatestPower) SetRecorder(rec *recorder.Recorder, role string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rec = rec
	l.role = role
}

// Update records a valid sample (invalid samples are ignored).
func (l *LatestPower) Update(s Sample) {
	if !s.Valid {
		return
	}
	l.mu.Lock()
	if t, ok := l.at[s.Device]; ok && !s.MeasuredAt.After(t) {
		l.mu.Unlock()
		return
	}
	l.power[s.Device] = s.Power
	l.at[s.Device] = s.MeasuredAt
	l.stamps[s.Device] = Stamps{
		MeasuredAt:  s.MeasuredAt,
		PublishedAt: s.PublishedAt,
		DequeuedAt:  s.DequeuedAt,
	}
	rec, role := l.rec, l.role
	l.mu.Unlock()
	if rec == nil {
		return
	}
	// Emit outside the mutex (eventcheck), then bind the arrival seq to
	// the device — unless an even newer sample won the race meanwhile.
	seq := rec.Emit(recorder.Event{
		Type:    recorder.TypeSampleArrive,
		Time:    s.MeasuredAt,
		Actor:   role,
		Subject: s.Device,
		Value:   float64(s.Power),
		Cause:   s.Event,
	})
	l.mu.Lock()
	if l.at[s.Device].Equal(s.MeasuredAt) {
		l.event[s.Device] = seq
	}
	l.mu.Unlock()
}

// Get returns the last power for device and whether one exists.
func (l *LatestPower) Get(device string) (power.Watts, time.Time, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.power[device]
	return v, l.at[device], ok
}

// GetEvent is Get plus the flight-recorder sequence of the sample-arrive
// event that installed the reading (0 when the view is unrecorded).
func (l *LatestPower) GetEvent(device string) (power.Watts, time.Time, uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.power[device]
	return v, l.at[device], l.event[device], ok
}

// GetStamps returns the ingest timeline of device's installed sample —
// the birth stamps the latency-attribution waterfall opens with.
// ok=false when the device has never reported.
func (l *LatestPower) GetStamps(device string) (Stamps, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.stamps[device]
	return st, ok
}

// Snapshot copies the current view.
func (l *LatestPower) Snapshot() map[string]power.Watts {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]power.Watts, len(l.power))
	for k, v := range l.power {
		out[k] = v
	}
	return out
}

// Age returns how stale device's last sample is at time now; ok=false when
// the device has never reported.
func (l *LatestPower) Age(device string, now time.Time) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.at[device]
	if !ok {
		return 0, false
	}
	return now.Sub(t), true
}

// Oldest returns the staleness of the view's least-fresh device at time
// now — the quantity the telemetry-freshness SLO watches: one stuck
// device is one stuck failover estimate. ok=false when the view is
// empty.
func (l *LatestPower) Oldest(now time.Time) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var worst time.Duration
	ok := false
	for _, t := range l.at {
		if age := now.Sub(t); !ok || age > worst {
			worst, ok = age, true
		}
	}
	return worst, ok
}

// Count reports how many devices have reported at least once.
func (l *LatestPower) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.power)
}
