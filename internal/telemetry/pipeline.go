package telemetry

import (
	"context"
	"time"

	"flex/internal/clock"
	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/power"
)

// PipelineConfig configures a full redundant room pipeline.
type PipelineConfig struct {
	Clock clock.Clock
	// UPSSources supplies ground-truth UPS output power by device name.
	UPSSources map[string]PowerSource
	// RackSources supplies ground-truth rack power by rack name.
	RackSources map[string]PowerSource
	// MechSource is the mechanical (cooling) load observed by the
	// Total−Mech derived meters; nil means a constant 5% of UPS power is
	// unavailable, so a zero source is used.
	MechSource PowerSource
	// UPSInterval is the UPS polling period (default 1.5s, paper §IV-D).
	UPSInterval time.Duration
	// RackInterval is the rack polling period (default 2s, paper §IV-D).
	RackInterval time.Duration
	// Pollers is the number of redundant pollers (default 2).
	Pollers int
	// Brokers is the number of redundant pub/sub systems (default 2).
	Brokers int
	// Seed drives meter noise.
	Seed int64
	// Obs, when non-nil, instruments the pipeline's own behaviour (poll
	// counts, publish lag, drops, consensus disagreements) on the given
	// registry.
	Obs *obs.Registry
	// Recorder, when non-nil, wires the flight recorder through the
	// pipeline: pollers emit sample-publish, brokers emit sample-drop,
	// and consensus meters emit verdict/disagree/quorum-loss events.
	// Views wired via SubscribeAll opt in separately with SetRecorder.
	Recorder *recorder.Recorder
}

// Pipeline is the assembled telemetry system for one room: per-device
// consensus meters, redundant pollers, and duplicated brokers.
type Pipeline struct {
	Clock      clock.Clock
	UPSMeters  map[string]*LogicalMeter
	RackMeters map[string]*LogicalMeter
	PollerSet  []*Poller
	BrokerSet  []*Broker
	// Metrics is non-nil when PipelineConfig.Obs was set.
	Metrics *Metrics

	cancel context.CancelFunc
}

// NewPipeline assembles (but does not start) a pipeline.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.UPSInterval <= 0 {
		cfg.UPSInterval = 1500 * time.Millisecond
	}
	if cfg.RackInterval <= 0 {
		cfg.RackInterval = 2 * time.Second
	}
	if cfg.Pollers <= 0 {
		cfg.Pollers = 2
	}
	if cfg.Brokers <= 0 {
		cfg.Brokers = 2
	}
	mech := cfg.MechSource
	if mech == nil {
		mech = func() power.Watts { return 0 }
	}
	p := &Pipeline{
		Clock:      cfg.Clock,
		UPSMeters:  make(map[string]*LogicalMeter),
		RackMeters: make(map[string]*LogicalMeter),
	}
	if cfg.Obs != nil {
		p.Metrics = NewMetrics(cfg.Obs)
	}
	for i := 0; i < cfg.Brokers; i++ {
		b := NewBroker(brokerName(i))
		b.Metrics = p.Metrics
		b.Recorder = cfg.Recorder
		p.BrokerSet = append(p.BrokerSet, b)
	}
	seed := cfg.Seed
	var upsTargets, rackTargets []Target
	for _, name := range sortedKeys(cfg.UPSSources) {
		lm := NewUPSLogicalMeter(name, cfg.UPSSources[name], mech, seed)
		lm.Metrics = p.Metrics
		lm.Recorder = cfg.Recorder
		seed += 10
		p.UPSMeters[name] = lm
		upsTargets = append(upsTargets, Target{Meter: lm, Topic: TopicUPS})
	}
	for _, name := range sortedKeys(cfg.RackSources) {
		// Racks carry a single PDU-fed meter pair (in-rack PSU telemetry
		// and the PDU branch meter) — two meters, quorum 1, so one failure
		// is tolerated but a misreading is not maskable (the controller's
		// safety buffer absorbs that, §IV-D).
		a := NewSimMeter(name+"/psu", cfg.RackSources[name], SimMeterConfig{Noise: 0.01, Seed: seed})
		b := NewSimMeter(name+"/pdu", cfg.RackSources[name], SimMeterConfig{Noise: 0.01, Seed: seed + 1})
		seed += 10
		lm, err := NewLogicalMeter(name, a, b)
		if err != nil {
			panic(err) // static construction; cannot fail
		}
		lm.Quorum = 1
		lm.Metrics = p.Metrics
		lm.Recorder = cfg.Recorder
		p.RackMeters[name] = lm
		rackTargets = append(rackTargets, Target{Meter: lm, Topic: TopicRack})
	}
	pubs := make([]SamplePublisher, len(p.BrokerSet))
	for i, b := range p.BrokerSet {
		pubs[i] = b
	}
	for i := 0; i < cfg.Pollers; i++ {
		ups := NewPoller(pollerName(i, "ups"), cfg.Clock, cfg.UPSInterval, pubs, upsTargets)
		rack := NewPoller(pollerName(i, "rack"), cfg.Clock, cfg.RackInterval, pubs, rackTargets)
		ups.Metrics = p.Metrics
		rack.Metrics = p.Metrics
		ups.Recorder = cfg.Recorder
		rack.Recorder = cfg.Recorder
		p.PollerSet = append(p.PollerSet, ups, rack)
	}
	return p
}

// Start launches every poller; Stop (or ctx cancellation) halts them.
func (p *Pipeline) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	p.cancel = cancel
	for _, poller := range p.PollerSet {
		go poller.Run(ctx)
	}
}

// Stop halts the pollers started by Start.
func (p *Pipeline) Stop() {
	if p.cancel != nil {
		p.cancel()
	}
}

// PollOnce runs a single synchronous poll round on every poller —
// deterministic simulation and tests drive the pipeline this way.
func (p *Pipeline) PollOnce() {
	for _, poller := range p.PollerSet {
		poller.PollOnce()
	}
}

// SubscribeAll subscribes to a topic on every broker and merges the
// streams into one deduplicated channel feeding view. The returned cancel
// function closes the subscriptions.
func (p *Pipeline) SubscribeAll(topic string, view *LatestPower) (cancel func()) {
	dedupe := NewDeduper()
	var subs []*Subscription
	done := make(chan struct{})
	for _, b := range p.BrokerSet {
		sub := b.Subscribe(topic, 1024)
		subs = append(subs, sub)
		go func(sub *Subscription) {
			for {
				select {
				case s, ok := <-sub.C:
					if !ok {
						return
					}
					if !dedupe.Fresh(s) {
						if p.Metrics != nil {
							p.Metrics.DedupeHits.Inc()
						}
						continue
					}
					// Stamp the dequeue instant before the view installs the
					// sample: PublishedAt→DequeuedAt is the queue-wait stage.
					now := p.Clock.Now()
					s.DequeuedAt = now
					view.Update(s)
					if p.Metrics != nil {
						p.Metrics.PublishLag.ObserveDuration(now.Sub(s.MeasuredAt))
					}
				case <-done:
					return
				}
			}
		}(sub)
	}
	return func() {
		close(done)
		for _, s := range subs {
			s.Close()
		}
	}
}

func brokerName(i int) string { return "pubsub-" + string(rune('A'+i)) }

func pollerName(i int, kind string) string {
	return "poller-" + string(rune('A'+i)) + "-" + kind
}

func sortedKeys(m map[string]PowerSource) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; tiny maps
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
