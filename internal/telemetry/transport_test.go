package telemetry

import (
	"net"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/power"
)

// startServer spins up a BrokerServer on a loopback listener.
func startServer(t *testing.T) (*BrokerServer, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewBrokerServer(NewBroker("net-A"))
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(srv.Close)
	return srv, l.Addr().String()
}

func recvSample(t *testing.T, ch <-chan Sample) Sample {
	t.Helper()
	select {
	case s, ok := <-ch:
		if !ok {
			t.Fatal("subscription closed")
		}
		return s
	case <-time.After(2 * time.Second):
		t.Fatal("no sample received")
	}
	return Sample{}
}

func TestTransportPublishSubscribe(t *testing.T) {
	_, addr := startServer(t)
	sub, err := RemoteSubscribe(addr, TopicUPS)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub := NewRemotePublisher(addr, nil)
	defer pub.Close()
	want := Sample{Device: "UPS-1", Power: 1.2 * power.MW, Valid: true,
		MeasuredAt: time.Unix(100, 0).UTC(), Poller: "p1", Seq: 7}
	// Publish until the subscriber sees it (the subscribe handshake races
	// the first publish on a fresh connection).
	done := make(chan Sample, 1)
	go func() { done <- recvSample(t, sub.C) }()
	deadline := time.Now().Add(2 * time.Second)
	var got Sample
loop:
	for time.Now().Before(deadline) {
		pub.Publish(TopicUPS, want)
		select {
		case got = <-done:
			break loop
		case <-time.After(20 * time.Millisecond):
		}
	}
	if got.Device != want.Device || got.Power != want.Power || got.Seq != want.Seq ||
		!got.MeasuredAt.Equal(want.MeasuredAt) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestTransportTopicIsolation(t *testing.T) {
	srv, addr := startServer(t)
	subRack, err := RemoteSubscribe(addr, TopicRack)
	if err != nil {
		t.Fatal(err)
	}
	defer subRack.Close()
	// Give the subscription a moment to register.
	waitFor(t, func() bool {
		srv.Broker.mu.Lock()
		defer srv.Broker.mu.Unlock()
		return len(srv.Broker.topics[TopicRack]) == 1
	})
	srv.Broker.Publish(TopicUPS, Sample{Device: "UPS-1", Valid: true})
	srv.Broker.Publish(TopicRack, Sample{Device: "rack-1", Valid: true})
	s := recvSample(t, subRack.C)
	if s.Device != "rack-1" {
		t.Fatalf("got %q on rack topic", s.Device)
	}
}

func TestTransportPollerOverTCP(t *testing.T) {
	srv, addr := startServer(t)
	_ = srv
	clk := clock.NewVirtual(time.Unix(0, 0))
	lm, err := NewLogicalMeter("UPS-1", StaticMeter{MeterName: "m", Value: 500 * power.KW})
	if err != nil {
		t.Fatal(err)
	}
	pub := NewRemotePublisher(addr, nil)
	defer pub.Close()
	p := NewPoller("p1", clk, time.Second, []SamplePublisher{pub},
		[]Target{{Meter: lm, Topic: TopicUPS}})
	sub, err := RemoteSubscribe(addr, TopicUPS)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Poll until delivery (handshake race again).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		p.PollOnce()
		select {
		case s := <-sub.C:
			if s.Device != "UPS-1" || s.Power != 500*power.KW {
				t.Fatalf("sample %+v", s)
			}
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	t.Fatal("no sample over TCP")
}

func TestTransportPublisherSurvivesServerBounce(t *testing.T) {
	srv1, addr := startServer(t)
	pub := NewRemotePublisher(addr, nil)
	pub.RetryInterval = time.Millisecond
	defer pub.Close()
	pub.Publish(TopicUPS, Sample{Device: "d", Valid: true}) // connects
	srv1.Close()
	// Publishing into a dead server must not panic or block.
	for i := 0; i < 5; i++ {
		pub.Publish(TopicUPS, Sample{Device: "d", Valid: true})
	}
	// Bring a new server up on a new address; the old publisher is bound
	// to the old address, so this documents best-effort semantics: a
	// fresh publisher is needed for a relocated broker.
	_, addr2 := startServer(t)
	pub2 := NewRemotePublisher(addr2, nil)
	defer pub2.Close()
	sub, err := RemoteSubscribe(addr2, TopicUPS)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		pub2.Publish(TopicUPS, Sample{Device: "d2", Valid: true})
		select {
		case s := <-sub.C:
			if s.Device != "d2" {
				t.Fatalf("sample %+v", s)
			}
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	t.Fatal("replacement path never delivered")
}

func TestTransportSubscriptionClosesOnServerClose(t *testing.T) {
	srv, addr := startServer(t)
	sub, err := RemoteSubscribe(addr, TopicUPS)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	select {
	case _, ok := <-sub.C:
		if ok {
			// A sample may have raced in; the close must still follow.
			select {
			case _, ok2 := <-sub.C:
				if ok2 {
					t.Fatal("channel did not close")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("channel did not close after server shutdown")
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel did not close after server shutdown")
	}
}

func TestTransportRetryThrottleUsesInjectedClock(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1000, 0))
	pub := NewRemotePublisher("127.0.0.1:1", clk)
	defer pub.Close()
	pub.Publish(TopicUPS, Sample{}) // dial fails, stamps lastRetry
	if got := pub.lastRetry; !got.Equal(clk.Now()) {
		t.Fatalf("lastRetry = %v, want %v", got, clk.Now())
	}
	first := pub.lastRetry
	pub.Publish(TopicUPS, Sample{}) // within RetryInterval: throttled
	if !pub.lastRetry.Equal(first) {
		t.Fatal("retry was not throttled within RetryInterval")
	}
	clk.Advance(2 * pub.RetryInterval)
	pub.Publish(TopicUPS, Sample{}) // past the interval: retried
	if pub.lastRetry.Equal(first) {
		t.Fatal("retry did not fire after the clock advanced")
	}
}

func TestTransportRejectsUnreachableAddress(t *testing.T) {
	if _, err := RemoteSubscribe("127.0.0.1:1", TopicUPS); err == nil {
		t.Fatal("expected dial error")
	}
	pub := NewRemotePublisher("127.0.0.1:1", nil)
	defer pub.Close()
	pub.Publish(TopicUPS, Sample{}) // must not panic
}
