// Package telemetry implements Flex's highly available power telemetry
// pipeline (paper §IV-C, Figure 7): redundant logical meters per power
// device with median consensus, independent pollers on separate fault
// domains, and duplicated publish/subscribe brokers. The pipeline has no
// single point of failure — it tolerates the failure or misreading of one
// meter per device, the loss of a poller, and the loss of a broker — and
// its end-to-end latency stays well inside the 10-second Flex budget.
package telemetry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"flex/internal/power"
)

// Meter is a pull-based power meter. Read returns the currently measured
// power or an error when the meter has failed or cannot produce a sample.
type Meter interface {
	Name() string
	Read(now time.Time) (power.Watts, error)
}

// ErrMeterFailed is returned by failed meters.
var ErrMeterFailed = errors.New("telemetry: meter failed")

// PowerSource supplies the ground-truth power a meter observes. The
// emulator wires rack/UPS models in through this.
type PowerSource func() power.Watts

// SimMeterConfig configures a simulated meter.
type SimMeterConfig struct {
	// Noise is the standard deviation of additive gaussian reading noise,
	// as a fraction of the true value (e.g. 0.005 = 0.5%).
	Noise float64
	// StaleFor emulates low-fidelity device meters that keep returning
	// the same value for a window (paper §VI reports up to 5 seconds on
	// UPS meters). Zero disables staleness.
	StaleFor time.Duration
	// Seed drives the noise generator.
	Seed int64
}

// SimMeter is a simulated physical meter with configurable noise,
// staleness, and injectable failure/misreading — the failure modes the
// pipeline's redundancy must mask.
type SimMeter struct {
	name   string
	source PowerSource
	cfg    SimMeterConfig

	mu        sync.Mutex
	rng       *rand.Rand
	failed    bool
	offset    power.Watts // injected mis-calibration
	staleVal  power.Watts
	staleTime time.Time
	haveStale bool
}

// NewSimMeter builds a simulated meter over a ground-truth source.
func NewSimMeter(name string, source PowerSource, cfg SimMeterConfig) *SimMeter {
	return &SimMeter{
		name:   name,
		source: source,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Name implements Meter.
func (m *SimMeter) Name() string { return m.name }

// Read implements Meter.
func (m *SimMeter) Read(now time.Time) (power.Watts, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return 0, fmt.Errorf("%w: %s", ErrMeterFailed, m.name)
	}
	if m.cfg.StaleFor > 0 && m.haveStale && now.Sub(m.staleTime) < m.cfg.StaleFor {
		return m.staleVal, nil
	}
	v := m.source()
	if m.cfg.Noise > 0 {
		v += power.Watts(m.rng.NormFloat64() * m.cfg.Noise * float64(v))
	}
	v += m.offset
	if v < 0 {
		v = 0
	}
	if m.cfg.StaleFor > 0 {
		m.staleVal, m.staleTime, m.haveStale = v, now, true
	}
	return v, nil
}

// SetFailed injects or clears a hard meter failure.
func (m *SimMeter) SetFailed(failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failed = failed
}

// SetOffset injects a constant misreading (mis-calibration) of off watts.
func (m *SimMeter) SetOffset(off power.Watts) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.offset = off
}

// StaticMeter is a Meter returning a fixed value; useful in tests.
type StaticMeter struct {
	MeterName string
	Value     power.Watts
	Err       error
}

// Name implements Meter.
func (s StaticMeter) Name() string { return s.MeterName }

// Read implements Meter.
func (s StaticMeter) Read(time.Time) (power.Watts, error) { return s.Value, s.Err }
