package telemetry

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"flex/internal/clock"
)

// SamplePublisher is anything samples can be published to: an in-process
// Broker or a RemotePublisher speaking the TCP transport. Pollers publish
// through this interface, so a pipeline can span machines — in production
// the pollers, pub/sub systems, and Flex controllers sit on separate
// fault domains (paper Figure 7).
type SamplePublisher interface {
	// Publish delivers one sample. It is the single-element convenience
	// form of PublishBatch.
	Publish(topic string, s Sample)
	// PublishBatch delivers a batch of samples in one call — the primary
	// ingest path. Implementations amortize per-call overhead (one lock
	// acquisition, one connection write) across the batch.
	PublishBatch(topic string, batch []Sample)
}

var _ SamplePublisher = (*Broker)(nil)
var _ SamplePublisher = (*RemotePublisher)(nil)

// wire messages. A connection opens with a hello declaring its role.
type wireHello struct {
	Role  string // "pub" or "sub"
	Topic string // for "sub": the topic to stream
}

type wireSample struct {
	Topic  string
	Sample Sample
}

// BrokerServer exposes a Broker over TCP: publishers stream samples in,
// subscribers stream samples out. One server per pub/sub fault domain.
type BrokerServer struct {
	Broker *Broker

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewBrokerServer wraps a broker.
func NewBrokerServer(b *Broker) *BrokerServer {
	return &BrokerServer{Broker: b, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close (or listener failure). It
// blocks; run it in a goroutine.
func (s *BrokerServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("telemetry: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.track(conn)
		go s.handle(conn)
	}
}

func (s *BrokerServer) track(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[c] = struct{}{}
}

func (s *BrokerServer) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

func (s *BrokerServer) handle(conn net.Conn) {
	defer func() {
		s.untrack(conn)
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	var hello wireHello
	if err := dec.Decode(&hello); err != nil {
		return
	}
	switch hello.Role {
	case "pub":
		for {
			var ws wireSample
			if err := dec.Decode(&ws); err != nil {
				return
			}
			s.Broker.Publish(ws.Topic, ws.Sample)
		}
	case "sub":
		sub := s.Broker.Subscribe(hello.Topic, 1024)
		defer sub.Close()
		enc := gob.NewEncoder(conn)
		for smp := range sub.C {
			if err := enc.Encode(wireSample{Topic: hello.Topic, Sample: smp}); err != nil {
				return
			}
		}
	}
}

// Close stops accepting and tears down every connection.
func (s *BrokerServer) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
}

// RemotePublisher publishes samples to a BrokerServer over TCP. Publishing
// is best-effort with automatic reconnection: a down broker loses samples,
// exactly like a down in-process Broker — the duplicated pipeline path is
// what masks it.
type RemotePublisher struct {
	addr string
	clk  clock.Clock

	mu        sync.Mutex
	conn      net.Conn
	enc       *gob.Encoder
	lastRetry time.Time
	// RetryInterval throttles reconnection attempts (default 1s).
	RetryInterval time.Duration
}

// NewRemotePublisher creates a publisher for the server at addr. The
// connection is established lazily on first Publish. The retry throttle
// reads clk, so tests can drive reconnection deterministically with a
// clock.Virtual; a nil clk falls back to the wall clock.
func NewRemotePublisher(addr string, clk clock.Clock) *RemotePublisher {
	if clk == nil {
		clk = clock.Real{}
	}
	return &RemotePublisher{addr: addr, clk: clk, RetryInterval: time.Second}
}

// Publish implements SamplePublisher.
func (p *RemotePublisher) Publish(topic string, s Sample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.publishLocked(topic, s)
}

// PublishBatch implements SamplePublisher: the whole batch streams out
// under one lock acquisition, so concurrent publishers interleave between
// batches rather than between samples.
func (p *RemotePublisher) PublishBatch(topic string, batch []Sample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range batch {
		p.publishLocked(topic, s)
	}
}

func (p *RemotePublisher) publishLocked(topic string, s Sample) {
	if p.conn == nil && !p.reconnectLocked() {
		return
	}
	if err := p.enc.Encode(wireSample{Topic: topic, Sample: s}); err != nil {
		_ = p.conn.Close()
		p.conn, p.enc = nil, nil
		// One immediate retry so a broker bounce loses at most the
		// in-flight sample.
		if p.reconnectLocked() {
			_ = p.enc.Encode(wireSample{Topic: topic, Sample: s})
		}
	}
}

func (p *RemotePublisher) reconnectLocked() bool {
	now := p.clk.Now()
	if now.Sub(p.lastRetry) < p.RetryInterval {
		return false
	}
	p.lastRetry = now
	conn, err := net.DialTimeout("tcp", p.addr, time.Second)
	if err != nil {
		return false
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(wireHello{Role: "pub"}); err != nil {
		_ = conn.Close()
		return false
	}
	p.conn, p.enc = conn, enc
	return true
}

// Close tears the connection down.
func (p *RemotePublisher) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn, p.enc = nil, nil
	}
}

// RemoteSubscription streams a topic from a BrokerServer into C. The
// channel closes when the connection drops or Close is called.
type RemoteSubscription struct {
	C    <-chan Sample
	conn net.Conn
	once sync.Once
}

// RemoteSubscribe dials a BrokerServer and subscribes to topic.
func RemoteSubscribe(addr, topic string) (*RemoteSubscription, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, fmt.Errorf("telemetry: subscribe %s: %w", addr, err)
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(wireHello{Role: "sub", Topic: topic}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("telemetry: subscribe %s: %w", addr, err)
	}
	ch := make(chan Sample, 1024)
	sub := &RemoteSubscription{C: ch, conn: conn}
	go func() {
		defer close(ch)
		dec := gob.NewDecoder(conn)
		for {
			var ws wireSample
			if err := dec.Decode(&ws); err != nil {
				return
			}
			select {
			case ch <- ws.Sample:
			default: // drop-oldest, matching the in-process Subscription
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- ws.Sample:
				default:
				}
			}
		}
	}()
	return sub, nil
}

// Close terminates the subscription.
func (r *RemoteSubscription) Close() {
	r.once.Do(func() { _ = r.conn.Close() })
}
