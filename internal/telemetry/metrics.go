package telemetry

import (
	"flex/internal/obs"
)

// Metrics is the telemetry pipeline's own observability: how the software
// that moves power samples behaves, as opposed to the power values it
// carries. All fields are pre-bound at construction; updates on the poll
// and fan-in hot paths are allocation-free. A nil *Metrics disables
// instrumentation everywhere it is accepted.
type Metrics struct {
	// Polls counts poll rounds across all pollers.
	Polls *obs.Counter
	// SamplesPublished counts samples handed to brokers (per broker copy).
	SamplesPublished *obs.Counter
	// InvalidReads counts meter reads that failed quorum at poll time.
	InvalidReads *obs.Counter
	// ConsensusDisagreements counts logical-meter reads whose physical
	// meters spread wider than the disagreement threshold — the early
	// signal of a mis-calibrated meter the §IV-C median is masking.
	ConsensusDisagreements *obs.Counter
	// DroppedSamples counts samples evicted from slow subscriber buffers.
	DroppedSamples *obs.Counter
	// BatchPublishes counts PublishBatch calls (a single Publish is a
	// batch of one); SamplesPublished / BatchPublishes is the observed
	// batching factor of the ingest path.
	BatchPublishes *obs.Counter
	// DedupeHits counts duplicate samples suppressed on the redundant
	// poller × broker paths.
	DedupeHits *obs.Counter
	// PublishLag is the seconds from a sample's MeasuredAt to its arrival
	// in a subscriber view — the telemetry share of the 10s budget.
	PublishLag *obs.Histogram
}

// NewMetrics registers the telemetry metrics on r (idempotent: calling
// twice with the same registry rebinds the same metrics).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Polls:            r.Counter("flex_telemetry_polls_total", "poll rounds executed"),
		SamplesPublished: r.Counter("flex_telemetry_samples_published_total", "samples handed to brokers (per broker copy)"),
		InvalidReads:     r.Counter("flex_telemetry_invalid_reads_total", "meter reads that failed consensus quorum"),
		ConsensusDisagreements: r.Counter("flex_telemetry_consensus_disagreements_total",
			"logical meter reads with physical meters spread beyond the disagreement threshold"),
		DroppedSamples: r.Counter("flex_telemetry_dropped_samples_total", "samples evicted from slow subscriber buffers"),
		BatchPublishes: r.Counter("flex_telemetry_batch_publishes_total", "PublishBatch calls (single publishes count as batches of one)"),
		DedupeHits:     r.Counter("flex_telemetry_dedupe_hits_total", "duplicate samples suppressed from redundant paths"),
		PublishLag: r.Histogram("flex_telemetry_publish_lag_seconds",
			"seconds from sample measurement to subscriber view update",
			[]float64{0.1, 0.25, 0.5, 1, 1.5, 2, 3, 5, 10}),
	}
}
