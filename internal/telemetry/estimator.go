package telemetry

import (
	"math"
	"sync"
	"time"

	"flex/internal/obs/recorder"
	"flex/internal/power"
)

// EWMAEstimator is the time-series rack-power estimator the paper's
// Algorithm 1 can plan from instead of a raw snapshot (§IV-D: "a recent
// snapshot or an estimate based on time series models can be used"). It
// tracks an exponentially weighted mean and mean absolute deviation per
// device, so planners can ask for a conservative bound instead of a
// point-in-time reading that may be mid-spike or mid-valley.
type EWMAEstimator struct {
	alpha float64

	mu   sync.Mutex
	mean map[string]float64
	dev  map[string]float64
	at   map[string]time.Time
	rec  *recorder.Recorder
}

// NewEWMAEstimator creates an estimator with smoothing factor alpha in
// (0, 1]; alpha 1 degenerates to the latest sample. A typical value for
// 2-second rack telemetry is 0.25.
func NewEWMAEstimator(alpha float64) *EWMAEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	return &EWMAEstimator{
		alpha: alpha,
		mean:  make(map[string]float64),
		dev:   make(map[string]float64),
		at:    make(map[string]time.Time),
	}
}

// SetRecorder makes every accepted update emit an estimator-bound event
// carrying the device's refreshed conservative lower bound (mean −
// deviation, clamped at zero — what the controller plans from). Set it
// before updates begin.
func (e *EWMAEstimator) SetRecorder(rec *recorder.Recorder) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rec = rec
}

// Update folds a valid sample into the estimate (invalid samples are
// ignored; out-of-order samples are dropped).
func (e *EWMAEstimator) Update(s Sample) {
	if !s.Valid {
		return
	}
	e.mu.Lock()
	if t, ok := e.at[s.Device]; ok && !s.MeasuredAt.After(t) {
		e.mu.Unlock()
		return
	}
	v := float64(s.Power)
	m, ok := e.mean[s.Device]
	if !ok {
		e.mean[s.Device] = v
		e.dev[s.Device] = 0
	} else {
		diff := math.Abs(v - m)
		e.mean[s.Device] = m + e.alpha*(v-m)
		e.dev[s.Device] = e.dev[s.Device] + e.alpha*(diff-e.dev[s.Device])
	}
	e.at[s.Device] = s.MeasuredAt
	bound := e.mean[s.Device] - e.dev[s.Device]
	rec := e.rec
	e.mu.Unlock()
	if rec == nil {
		return
	}
	if bound < 0 {
		bound = 0
	}
	rec.Emit(recorder.Event{
		Type:    recorder.TypeEstimatorBound,
		Time:    s.MeasuredAt,
		Subject: s.Device,
		Value:   bound,
		Score:   v,
		Cause:   s.Event,
	})
}

// Estimate returns the smoothed power for device.
func (e *EWMAEstimator) Estimate(device string) (power.Watts, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.mean[device]
	return power.Watts(m), ok
}

// Bound returns mean + k×deviation (use negative k for a conservative
// lower bound — the safe direction when estimating how much power a
// corrective action will recover). Results are clamped at zero.
func (e *EWMAEstimator) Bound(device string, k float64) (power.Watts, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.mean[device]
	if !ok {
		return 0, false
	}
	v := m + k*e.dev[device]
	if v < 0 {
		v = 0
	}
	return power.Watts(v), true
}

// DeviationTotal returns the sum of the per-device mean absolute
// deviations — the estimator's aggregate conservatism margin in watts.
// When the controller plans from Bound(-1), this is exactly how much
// recoverable power the conservative bounds give up relative to the
// smoothed means; the SLO auditor tracks it as a derived series.
func (e *EWMAEstimator) DeviationTotal() power.Watts {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sum float64
	for _, d := range e.dev {
		sum += d
	}
	return power.Watts(sum)
}

// BoundSnapshot returns mean + k×deviation for every tracked device.
func (e *EWMAEstimator) BoundSnapshot(k float64) map[string]power.Watts {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]power.Watts, len(e.mean))
	for d, m := range e.mean {
		v := m + k*e.dev[d]
		if v < 0 {
			v = 0
		}
		out[d] = power.Watts(v)
	}
	return out
}
