package telemetry

import (
	"sync"
	"testing"
	"time"

	"flex/internal/clock"
	"flex/internal/obs"
)

// TestPublishBatchDropAccountingUnderChurn runs PublishBatch against a
// topic whose subscriber list is being mutated concurrently (Subscribe /
// Close churn) and checks the drop accounting of a stable, never-read
// subscriber stays exact: with drop-oldest semantics every published
// sample is either still buffered or was counted as dropped. Run under
// -race this also exercises the b.mu -> sub.mu lock order against
// unsubscribe.
func TestPublishBatchDropAccountingUnderChurn(t *testing.T) {
	b := NewBroker("A")
	b.Metrics = NewMetrics(obs.NewRegistry())
	const buffer = 4
	stable := b.Subscribe("t", buffer)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub := b.Subscribe("t", 1)
				// Drain a little so churn subscribers also hit the
				// drop-oldest path before going away.
				var buf [2]Sample
				sub.RecvBatch(buf[:])
				sub.Close()
			}
		}()
	}

	const rounds, perBatch = 200, 5
	batch := make([]Sample, perBatch)
	for i := 0; i < rounds; i++ {
		for j := range batch {
			batch[j] = Sample{Device: "d", Valid: true, Seq: uint64(i*perBatch + j)}
		}
		b.PublishBatch("t", batch)
	}
	close(stop)
	wg.Wait()

	total := rounds * perBatch
	buf := make([]Sample, buffer+1)
	drained := stable.RecvBatch(buf)
	if got := stable.Dropped() + drained; got != total {
		t.Fatalf("stable subscriber accounts for %d samples (%d dropped + %d buffered), want %d published",
			got, stable.Dropped(), drained, total)
	}
	// The broker-wide metric counts every subscriber's drops, so it can
	// only exceed the stable subscriber's count.
	if got := b.Metrics.DroppedSamples.Value(); got < uint64(stable.Dropped()) {
		t.Fatalf("DroppedSamples metric = %d, below the stable subscriber's %d", got, stable.Dropped())
	}
}

// TestPollerStampMonotonicity drives several poll rounds over targets
// that coalesce into one same-topic batch and checks the birth stamps
// survive coalescing in order: per device, MeasuredAt <= PublishedAt
// within each sample and both stamps strictly increase across rounds on
// the advancing clock.
func TestPollerStampMonotonicity(t *testing.T) {
	b := NewBroker("A")
	clk := clock.NewVirtual(t0())
	m1, _ := NewLogicalMeter("u1", StaticMeter{MeterName: "m", Value: 1000})
	m2, _ := NewLogicalMeter("u2", StaticMeter{MeterName: "m", Value: 2000})
	p := NewPoller("p1", clk, 0, []SamplePublisher{b}, []Target{
		{Meter: m1, Topic: "power/ups"},
		{Meter: m2, Topic: "power/ups"},
	})
	sub := b.Subscribe("power/ups", 64)

	const rounds = 5
	for i := 0; i < rounds; i++ {
		p.PollOnce()
		clk.Advance(1500 * time.Millisecond)
	}

	buf := make([]Sample, 64)
	n := sub.RecvBatch(buf)
	if n != 2*rounds {
		t.Fatalf("received %d samples, want %d", n, 2*rounds)
	}
	lastPub := map[string]time.Time{}
	lastMeas := map[string]time.Time{}
	for _, s := range buf[:n] {
		if s.PublishedAt.IsZero() {
			t.Fatalf("sample %s seq %d has no publish stamp", s.Device, s.Seq)
		}
		if s.PublishedAt.Before(s.MeasuredAt) {
			t.Fatalf("sample %s seq %d published %v before measured %v",
				s.Device, s.Seq, s.PublishedAt, s.MeasuredAt)
		}
		if prev, ok := lastPub[s.Device]; ok && !s.PublishedAt.After(prev) {
			t.Fatalf("device %s publish stamp went backwards: %v after %v", s.Device, s.PublishedAt, prev)
		}
		if prev, ok := lastMeas[s.Device]; ok && !s.MeasuredAt.After(prev) {
			t.Fatalf("device %s measure stamp went backwards: %v after %v", s.Device, s.MeasuredAt, prev)
		}
		lastPub[s.Device] = s.PublishedAt
		lastMeas[s.Device] = s.MeasuredAt
	}
	// Coalesced same-topic batches are stamped once per flush: the two
	// devices of one round share the same PublishedAt.
	if !lastPub["u1"].Equal(lastPub["u2"]) {
		t.Fatalf("same-round coalesced samples carry different publish stamps: %v vs %v",
			lastPub["u1"], lastPub["u2"])
	}
	// StampPublished must not overwrite a stamp set upstream.
	pre := []Sample{{Device: "x", PublishedAt: t0().Add(time.Hour)}, {Device: "y"}}
	StampPublished(pre, t0().Add(2*time.Hour))
	if !pre[0].PublishedAt.Equal(t0().Add(time.Hour)) {
		t.Fatalf("StampPublished overwrote an existing stamp: %v", pre[0].PublishedAt)
	}
	if !pre[1].PublishedAt.Equal(t0().Add(2 * time.Hour)) {
		t.Fatalf("StampPublished skipped an unstamped sample: %v", pre[1].PublishedAt)
	}
}
