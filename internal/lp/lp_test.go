package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) Result {
	t.Helper()
	r, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if r.Status != Optimal {
		t.Fatalf("status = %v, want optimal", r.Status)
	}
	return r
}

func TestSolveSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4; x + 3y <= 6 → x=4, y=0, obj=12.
	p := &Problem{Maximize: true, Objective: []float64{3, 2}}
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 3}, LE, 6)
	r := solveOK(t, p)
	if math.Abs(r.Objective-12) > 1e-6 {
		t.Fatalf("objective = %v, want 12", r.Objective)
	}
	if math.Abs(r.X[0]-4) > 1e-6 || math.Abs(r.X[1]) > 1e-6 {
		t.Fatalf("x = %v, want [4 0]", r.X)
	}
}

func TestSolveClassicLP(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24; x + 2y <= 6 → x=3, y=1.5, obj=21.
	p := &Problem{Maximize: true, Objective: []float64{5, 4}}
	p.AddConstraint([]float64{6, 4}, LE, 24)
	p.AddConstraint([]float64{1, 2}, LE, 6)
	r := solveOK(t, p)
	if math.Abs(r.Objective-21) > 1e-6 {
		t.Fatalf("objective = %v, want 21", r.Objective)
	}
}

func TestSolveMinimize(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10; x >= 2 → x=10 is wrong; optimum
	// x=10,y=0? cost 20; or x=2,y=8 cost 28. Min is x=10,y=0 → 20.
	p := &Problem{Maximize: false, Objective: []float64{2, 3}}
	p.AddConstraint([]float64{1, 1}, GE, 10)
	p.AddConstraint([]float64{1, 0}, GE, 2)
	r := solveOK(t, p)
	if math.Abs(r.Objective-20) > 1e-6 {
		t.Fatalf("objective = %v, want 20", r.Objective)
	}
}

func TestSolveEquality(t *testing.T) {
	// max x + y s.t. x + y = 5; x <= 3 → obj 5.
	p := &Problem{Maximize: true, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	r := solveOK(t, p)
	if math.Abs(r.Objective-5) > 1e-6 {
		t.Fatalf("objective = %v, want 5", r.Objective)
	}
	if math.Abs(r.X[0]+r.X[1]-5) > 1e-6 {
		t.Fatalf("equality violated: %v", r.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{Maximize: true, Objective: []float64{1}}
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{Maximize: true, Objective: []float64{1, 0}}
	p.AddConstraint([]float64{0, 1}, LE, 5)
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// max x s.t. -x <= -2 (i.e. x >= 2), x <= 7.
	p := &Problem{Maximize: true, Objective: []float64{1}}
	p.AddConstraint([]float64{-1}, LE, -2)
	p.AddConstraint([]float64{1}, LE, 7)
	r := solveOK(t, p)
	if math.Abs(r.Objective-7) > 1e-6 {
		t.Fatalf("objective = %v, want 7", r.Objective)
	}
}

func TestSolveDegenerateTies(t *testing.T) {
	// Degenerate problem with redundant constraints; Bland tie-breaking
	// must still terminate at the optimum.
	p := &Problem{Maximize: true, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 1)
	p.AddConstraint([]float64{1, 1}, LE, 2)
	r := solveOK(t, p)
	if math.Abs(r.Objective-2) > 1e-6 {
		t.Fatalf("objective = %v, want 2", r.Objective)
	}
}

func TestSolveNoVariables(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Fatal("expected error for empty problem")
	}
}

func TestSolveTooManyCoeffs(t *testing.T) {
	p := &Problem{Maximize: true, Objective: []float64{1}}
	p.AddConstraint([]float64{1, 2}, LE, 1)
	if _, err := Solve(p); err == nil {
		t.Fatal("expected error for coefficient overflow")
	}
}

func TestShortCoeffsZeroExtended(t *testing.T) {
	// Constraint touching only x0 in a 3-var problem.
	p := &Problem{Maximize: true, Objective: []float64{1, 1, 1}}
	p.AddConstraint([]float64{1}, LE, 2)
	p.AddConstraint([]float64{1, 1, 1}, LE, 5)
	r := solveOK(t, p)
	if math.Abs(r.Objective-5) > 1e-6 {
		t.Fatalf("objective = %v, want 5", r.Objective)
	}
	if r.X[0] > 2+1e-6 {
		t.Fatalf("x0 = %v violates its bound", r.X[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Problem{Maximize: true, Objective: []float64{1, 2}}
	p.AddConstraint([]float64{1, 1}, LE, 3)
	q := p.Clone()
	q.Objective[0] = 99
	q.Constraints[0].Coeffs[0] = 99
	q.AddConstraint([]float64{1, 0}, LE, 1)
	if p.Objective[0] != 1 || p.Constraints[0].Coeffs[0] != 1 || len(p.Constraints) != 1 {
		t.Fatal("Clone shares state with original")
	}
}

func TestSenseAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" || Sense(9).String() != "?" {
		t.Error("Sense strings")
	}
	for s, want := range map[Status]string{Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterationLimit: "iteration-limit"} {
		if s.String() != want {
			t.Errorf("Status %d = %q, want %q", s, s.String(), want)
		}
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status string")
	}
}

// Property: for random bounded knapsack-style LPs, the solution respects
// every constraint and every variable bound.
func TestSolutionFeasibilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	f := func() bool {
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := &Problem{Maximize: true, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64() * 10
		}
		for i := 0; i < m; i++ {
			coeffs := make([]float64, n)
			for j := range coeffs {
				coeffs[j] = rng.Float64() * 5
			}
			p.AddConstraint(coeffs, LE, 1+rng.Float64()*20)
		}
		for j := 0; j < n; j++ { // bound each var so it's never unbounded
			coeffs := make([]float64, n)
			coeffs[j] = 1
			p.AddConstraint(coeffs, LE, 10)
		}
		r, err := Solve(p)
		if err != nil || r.Status != Optimal {
			return false
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, a := range c.Coeffs {
				lhs += a * r.X[j]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range r.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: LP optimum is invariant under constraint order permutation.
func TestOrderInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 3
		p := &Problem{Maximize: true, Objective: []float64{rng.Float64(), rng.Float64(), rng.Float64()}}
		for i := 0; i < 4; i++ {
			p.AddConstraint([]float64{rng.Float64(), rng.Float64(), rng.Float64()}, LE, 1+rng.Float64()*5)
		}
		for j := 0; j < n; j++ {
			coeffs := make([]float64, n)
			coeffs[j] = 1
			p.AddConstraint(coeffs, LE, 4)
		}
		q := p.Clone()
		rng.Shuffle(len(q.Constraints), func(i, j int) {
			q.Constraints[i], q.Constraints[j] = q.Constraints[j], q.Constraints[i]
		})
		r1, _ := Solve(p)
		r2, _ := Solve(q)
		if r1.Status != Optimal || r2.Status != Optimal {
			t.Fatalf("trial %d: statuses %v %v", trial, r1.Status, r2.Status)
		}
		if math.Abs(r1.Objective-r2.Objective) > 1e-6 {
			t.Fatalf("trial %d: objectives differ: %v vs %v", trial, r1.Objective, r2.Objective)
		}
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// Duplicated equality rows must not break phase 1 (redundant rows
	// leave artificial variables basic at zero).
	p := &Problem{Maximize: true, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	r := solveOK(t, p)
	if math.Abs(r.Objective-4) > 1e-6 {
		t.Fatalf("objective = %v, want 4", r.Objective)
	}
}

func TestSolveMixedSenses(t *testing.T) {
	// min x + 2y s.t. x + y = 5, x >= 1, y <= 3 → x=2, y=3? cost 8;
	// or x=4,y=1 cost 6; min picks y small: x=4,y=1 → 6... but y ≤ 3 and
	// y ≥ 0: minimize 2y → y as small: y=0 → x=5 cost 5. x unbounded above.
	p := &Problem{Maximize: false, Objective: []float64{1, 2}}
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{1, 0}, GE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	r := solveOK(t, p)
	if math.Abs(r.Objective-5) > 1e-6 {
		t.Fatalf("objective = %v, want 5", r.Objective)
	}
}

func TestSolveZeroRHSDegenerate(t *testing.T) {
	// x <= 0 forces x = 0; the optimum is on a degenerate vertex.
	p := &Problem{Maximize: true, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 0}, LE, 0)
	p.AddConstraint([]float64{0, 1}, LE, 2)
	r := solveOK(t, p)
	if math.Abs(r.Objective-2) > 1e-6 || r.X[0] > 1e-9 {
		t.Fatalf("objective = %v x = %v", r.Objective, r.X)
	}
}

func TestSolveLargeDense(t *testing.T) {
	// A bigger assignment-like LP to exercise pivoting performance and
	// stability: 60 vars, 40 constraints.
	rng := rand.New(rand.NewSource(8))
	n, m := 60, 40
	p := &Problem{Maximize: true, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = 1 + rng.Float64()
	}
	for i := 0; i < m; i++ {
		coeffs := make([]float64, n)
		for j := range coeffs {
			coeffs[j] = rng.Float64()
		}
		p.AddConstraint(coeffs, LE, 5+rng.Float64()*10)
	}
	for j := 0; j < n; j++ {
		c := make([]float64, n)
		c[j] = 1
		p.AddConstraint(c, LE, 1)
	}
	r := solveOK(t, p)
	if r.Objective <= 0 {
		t.Fatalf("objective = %v", r.Objective)
	}
	for _, c := range p.Constraints {
		lhs := 0.0
		for j, a := range c.Coeffs {
			lhs += a * r.X[j]
		}
		if lhs > c.RHS+1e-6 {
			t.Fatal("constraint violated")
		}
	}
}
