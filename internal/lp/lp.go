// Package lp implements a dense two-phase primal simplex solver for linear
// programs. It is the foundation of the branch-and-bound MILP solver in
// internal/milp, which together replace the commercial Gurobi solver the
// paper used for the Flex-Offline placement ILP (§IV-B, §V-A).
//
// Problems are stated as: optimize c·x subject to A·x {<=,>=,=} b, x >= 0.
// The solver converts to standard form with slack/surplus/artificial
// variables and runs phase 1 (drive artificials out) then phase 2.
package lp

import (
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // =
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Constraint is one linear constraint: Coeffs·x Sense RHS. Coeffs shorter
// than the variable count are zero-extended.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over n = len(Objective) variables, all
// implicitly bounded below by zero.
type Problem struct {
	Maximize    bool
	Objective   []float64
	Constraints []Constraint
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Objective) }

// AddConstraint appends a constraint and returns its index.
func (p *Problem) AddConstraint(coeffs []float64, s Sense, rhs float64) int {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: s, RHS: rhs})
	return len(p.Constraints) - 1
}

// Clone deep-copies the problem (constraint coefficient slices included).
func (p *Problem) Clone() *Problem {
	q := &Problem{Maximize: p.Maximize}
	q.Objective = append([]float64(nil), p.Objective...)
	q.Constraints = make([]Constraint, len(p.Constraints))
	for i, c := range p.Constraints {
		q.Constraints[i] = Constraint{
			Coeffs: append([]float64(nil), c.Coeffs...),
			Sense:  c.Sense,
			RHS:    c.RHS,
		}
	}
	return q
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the outcome of Solve. X and Objective are meaningful only when
// Status == Optimal.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations is the total number of simplex pivots across both phases,
	// for solver observability and performance accounting.
	Iterations int
}

const eps = 1e-9

// Solver runs two-phase primal simplex and keeps its tableau scratch
// (one flat arena plus row/basis headers) between calls, so repeated
// solves — every node relaxation of a branch-and-bound search — stop
// paying a fresh (m+1)×(cols+1) allocation each time.
//
// The zero value is ready to use. A Solver must not be shared between
// goroutines, but distinct Solvers are fully independent: Solve reads
// the Problem and never mutates it, so many Solvers may work on the
// same Problem concurrently. Result.X is freshly allocated and safe to
// retain.
type Solver struct {
	arena []float64   // backing storage for the tableau, rows laid out contiguously
	rows  [][]float64 // row headers into arena
	basis []int       // basic-variable index per row
}

// Solve runs two-phase primal simplex on p using a throwaway Solver.
// Callers with many solves should reuse a Solver to amortize tableau
// allocation.
func Solve(p *Problem) (Result, error) {
	var s Solver
	return s.Solve(p)
}

// Solve runs two-phase primal simplex on p, reusing the solver's scratch.
func (s *Solver) Solve(p *Problem) (Result, error) {
	n := p.NumVars()
	if n == 0 {
		return Result{}, fmt.Errorf("lp: problem has no variables")
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > n {
			return Result{}, fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", i, len(c.Coeffs), n)
		}
	}
	t := s.newTableau(p)
	iters := 0
	// Phase 1: minimize sum of artificials.
	if t.numArtificial > 0 {
		status, n := t.runSimplex(true)
		iters += n
		if status == IterationLimit {
			return Result{Status: IterationLimit, Iterations: iters}, nil
		}
		if t.phase1Objective() > 1e-6 {
			return Result{Status: Infeasible, Iterations: iters}, nil
		}
		t.driveOutArtificials()
	}
	// Phase 2.
	t.installPhase2Objective()
	status, n2 := t.runSimplex(false)
	iters += n2
	if status != Optimal {
		return Result{Status: status, Iterations: iters}, nil
	}
	x := t.extractSolution()
	obj := 0.0
	for i, c := range p.Objective {
		obj += c * x[i]
	}
	return Result{Status: Optimal, X: x, Objective: obj, Iterations: iters}, nil
}

// tableau is a dense simplex tableau. Column layout:
// [0..n) decision vars, [n..n+numSlack) slack/surplus, then artificials,
// then the RHS column. Row m is the objective row.
type tableau struct {
	p             *Problem
	n             int // decision variables
	m             int // constraints
	numSlack      int
	numArtificial int
	cols          int         // total variable columns (without RHS)
	a             [][]float64 // (m+1) x (cols+1)
	basis         []int       // basic variable per row
	artStart      int
}

// normalizedSense is the sense of constraint c once its row has been
// normalized to RHS >= 0 (rows with a negative RHS are negated, which
// flips LE and GE).
func normalizedSense(c *Constraint) Sense {
	if c.RHS < 0 {
		switch c.Sense {
		case LE:
			return GE
		case GE:
			return LE
		}
	}
	return c.Sense
}

func (s *Solver) newTableau(p *Problem) *tableau {
	n := p.NumVars()
	m := len(p.Constraints)
	// Count slack and artificial columns for the RHS >= 0 normal form.
	numSlack, numArt := 0, 0
	for i := range p.Constraints {
		switch normalizedSense(&p.Constraints[i]) {
		case LE:
			numSlack++ // slack enters basis
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &tableau{
		p: p, n: n, m: m,
		numSlack: numSlack, numArtificial: numArt,
		cols:     n + numSlack + numArt,
		artStart: n + numSlack,
	}
	// Carve the (m+1)×(cols+1) tableau out of the solver's arena, growing
	// it only when the problem outgrows what previous solves needed.
	stride := t.cols + 1
	need := (m + 1) * stride
	if cap(s.arena) < need {
		s.arena = make([]float64, need)
	} else {
		s.arena = s.arena[:need]
		clear(s.arena)
	}
	if cap(s.rows) < m+1 {
		s.rows = make([][]float64, m+1)
	}
	t.a = s.rows[:m+1]
	for i := range t.a {
		t.a[i] = s.arena[i*stride : (i+1)*stride]
	}
	if cap(s.basis) < m {
		s.basis = make([]int, m)
	}
	t.basis = s.basis[:m]
	slackIdx, artIdx := n, t.artStart
	for i := range p.Constraints {
		c := &p.Constraints[i]
		row := t.a[i]
		if c.RHS < 0 {
			for j, v := range c.Coeffs {
				row[j] = -v
			}
			row[t.cols] = -c.RHS
		} else {
			copy(row, c.Coeffs)
			row[t.cols] = c.RHS
		}
		switch normalizedSense(c) {
		case LE:
			row[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		}
	}
	// Phase-1 objective: minimize sum of artificials ⇔ maximize -sum.
	// Objective row holds reduced costs for maximization: we store -c in
	// the row and pivot until all entries >= -eps.
	if t.numArtificial > 0 {
		obj := t.a[m]
		for j := t.artStart; j < t.cols; j++ {
			obj[j] = 1 // minimize sum(artificials): row = c for min ⇒ use max(-sum) form below
		}
		// Convert to "maximize -sum(art)": row entries are -cj = -(−1)?  We
		// keep the convention: objective row r[j] = -c[j] for maximization.
		// For maximize -sum(art): c[art] = -1 ⇒ r[art] = 1 (already set).
		// Make the row consistent with the starting basis (artificials are
		// basic): subtract their rows.
		for i := 0; i < m; i++ {
			if t.basis[i] >= t.artStart {
				for j := 0; j <= t.cols; j++ {
					obj[j] -= t.a[i][j]
				}
			}
		}
	}
	return t
}

// phase1Objective returns sum of artificial variables at the current basis.
func (t *tableau) phase1Objective() float64 {
	sum := 0.0
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart {
			sum += t.a[i][t.cols]
		}
	}
	return sum
}

// driveOutArtificials pivots basic artificials out of the basis where
// possible (degenerate rows), so phase 2 never re-enters them.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find a non-artificial column with a nonzero entry to pivot in.
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
		// If none exists the row is all-zero (redundant); leave it.
	}
}

// installPhase2Objective rewrites the objective row for the real objective,
// expressed in terms of the current (feasible) basis.
func (t *tableau) installPhase2Objective() {
	obj := t.a[t.m]
	for j := range obj {
		obj[j] = 0
	}
	sign := 1.0
	if !t.p.Maximize {
		sign = -1.0 // minimize c·x ⇔ maximize (−c)·x
	}
	for j := 0; j < t.n; j++ {
		obj[j] = -sign * t.p.Objective[j] // row stores -c for maximization
	}
	// Eliminate basic columns from the objective row.
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if math.Abs(obj[b]) > eps {
			f := obj[b]
			for j := 0; j <= t.cols; j++ {
				obj[j] -= f * t.a[i][j]
			}
		}
	}
}

// runSimplex pivots until optimal, unbounded, or the iteration cap,
// returning the outcome and the number of pivots performed. In phase 1,
// artificial columns may leave but entering is allowed anywhere; in phase 2
// artificial columns are excluded from entering.
func (t *tableau) runSimplex(phase1 bool) (Status, int) {
	maxCols := t.cols
	if !phase1 {
		maxCols = t.artStart
	}
	obj := t.a[t.m]
	maxIter := 50 * (t.m + t.cols + 10)
	for iter := 0; iter < maxIter; iter++ {
		// Entering column: Dantzig (most negative reduced cost); switch to
		// Bland (first negative) late to guarantee termination.
		enter := -1
		if iter < maxIter/2 {
			best := -eps
			for j := 0; j < maxCols; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < maxCols; j++ {
				if obj[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter == -1 {
			return Optimal, iter
		}
		// Leaving row: minimum ratio; Bland tie-break on basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= eps {
				continue
			}
			ratio := t.a[i][t.cols] / aij
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave == -1 {
			return Unbounded, iter
		}
		t.pivot(leave, enter)
	}
	return IterationLimit, maxIter
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	row := t.a[leave]
	pv := row[enter]
	inv := 1 / pv
	for j := 0; j <= t.cols; j++ {
		row[j] *= inv
	}
	row[enter] = 1 // kill rounding noise
	for i := 0; i <= t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if math.Abs(f) <= eps {
			t.a[i][enter] = 0
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.cols; j++ {
			ri[j] -= f * row[j]
		}
		ri[enter] = 0
	}
	t.basis[leave] = enter
}

// extractSolution reads the decision variable values off the basis.
func (t *tableau) extractSolution() []float64 {
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			v := t.a[i][t.cols]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
