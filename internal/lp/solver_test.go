package lp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomLP builds a bounded feasible LP: maximize a positive objective
// under per-variable caps plus a few coupling rows.
func randomLP(seed int64, n int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{Maximize: true, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = 1 + rng.Float64()*9
		unit := make([]float64, n)
		unit[j] = 1
		p.AddConstraint(unit, LE, 1+rng.Float64()*4)
	}
	for k := 0; k < 3; k++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.AddConstraint(row, LE, float64(n)/2)
	}
	return p
}

// TestSolverReuseMatchesFresh: one Solver reused across many problems of
// varying shapes must return exactly what a fresh solve returns — the
// arena reuse cannot leak state between calls.
func TestSolverReuseMatchesFresh(t *testing.T) {
	var s Solver
	for i := 0; i < 25; i++ {
		p := randomLP(int64(i), 3+i%7)
		reused, err1 := s.Solve(p)
		fresh, err2 := Solve(p)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("iter %d: reused err=%v, fresh err=%v", i, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if reused.Status != fresh.Status {
			t.Fatalf("iter %d: status %v vs %v", i, reused.Status, fresh.Status)
		}
		if math.Abs(reused.Objective-fresh.Objective) > 1e-9 {
			t.Fatalf("iter %d: objective %v vs %v", i, reused.Objective, fresh.Objective)
		}
		for j := range fresh.X {
			if math.Abs(reused.X[j]-fresh.X[j]) > 1e-9 {
				t.Fatalf("iter %d: x[%d] %v vs %v", i, j, reused.X[j], fresh.X[j])
			}
		}
	}
}

// TestSolverResultsIndependent: Result.X must not alias solver scratch —
// a later solve on the same Solver cannot corrupt an earlier result.
func TestSolverResultsIndependent(t *testing.T) {
	var s Solver
	p1 := randomLP(1, 5)
	r1, err := s.Solve(p1)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]float64(nil), r1.X...)
	if _, err := s.Solve(randomLP(2, 9)); err != nil {
		t.Fatal(err)
	}
	for j := range saved {
		if r1.X[j] != saved[j] {
			t.Fatalf("earlier result mutated at x[%d]", j)
		}
	}
}

// TestDistinctSolversConcurrent: distinct Solver values are independent
// and safe to run concurrently (the milp workers rely on this).
func TestDistinctSolversConcurrent(t *testing.T) {
	want := make([]Result, 8)
	for g := range want {
		r, err := Solve(randomLP(int64(g), 6))
		if err != nil {
			t.Fatal(err)
		}
		want[g] = r
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var s Solver
			for i := 0; i < 20; i++ {
				r, err := s.Solve(randomLP(int64(g), 6))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if math.Abs(r.Objective-want[g].Objective) > 1e-9 {
					t.Errorf("goroutine %d iter %d: objective %v, want %v", g, i, r.Objective, want[g].Objective)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
