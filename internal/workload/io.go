package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"flex/internal/power"
)

// deploymentJSON is the on-disk schema for a deployment request. Power is
// in watts; Category is the canonical string form ("software-redundant",
// "non-redundant-capable", "non-redundant-non-capable").
type deploymentJSON struct {
	ID                int     `json:"id"`
	Workload          string  `json:"workload"`
	Category          string  `json:"category"`
	Racks             int     `json:"racks"`
	PowerPerRackWatts float64 `json:"power_per_rack_watts"`
	FlexPowerFraction float64 `json:"flex_power_fraction"`
}

func categoryFromString(s string) (Category, error) {
	for _, c := range Categories {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown category %q", s)
}

// WriteTrace encodes a demand trace as JSON (one array of deployment
// objects), so traces can be shared between the CLI tools and external
// capacity-planning systems.
func WriteTrace(w io.Writer, trace []Deployment) error {
	out := make([]deploymentJSON, len(trace))
	for i, d := range trace {
		out[i] = deploymentJSON{
			ID:                d.ID,
			Workload:          d.Workload,
			Category:          d.Category.String(),
			Racks:             d.Racks,
			PowerPerRackWatts: float64(d.PowerPerRack),
			FlexPowerFraction: d.FlexPowerFraction,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadTrace decodes a JSON demand trace and validates every deployment.
func ReadTrace(r io.Reader) ([]Deployment, error) {
	var raw []deploymentJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	out := make([]Deployment, len(raw))
	for i, d := range raw {
		cat, err := categoryFromString(d.Category)
		if err != nil {
			return nil, fmt.Errorf("workload: deployment %d: %w", i, err)
		}
		out[i] = Deployment{
			ID:                d.ID,
			Workload:          d.Workload,
			Category:          cat,
			Racks:             d.Racks,
			PowerPerRack:      power.Watts(d.PowerPerRackWatts),
			FlexPowerFraction: d.FlexPowerFraction,
		}
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
