package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"flex/internal/power"
)

func TestTraceRoundTrip(t *testing.T) {
	cfg := DefaultTraceConfig(4.8 * power.MW)
	trace, err := GenerateTrace(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("length %d vs %d", len(got), len(trace))
	}
	for i := range got {
		if got[i] != trace[i] {
			t.Fatalf("deployment %d: %+v vs %+v", i, got[i], trace[i])
		}
	}
}

func TestReadTraceRejectsBadInput(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ReadTrace(strings.NewReader(
		`[{"id":0,"workload":"w","category":"martian","racks":1,"power_per_rack_watts":100,"flex_power_fraction":1}]`)); err == nil {
		t.Error("expected category error")
	}
	if _, err := ReadTrace(strings.NewReader(
		`[{"id":0,"workload":"w","category":"software-redundant","racks":0,"power_per_rack_watts":100,"flex_power_fraction":0}]`)); err == nil {
		t.Error("expected validation error")
	}
}

func TestCategoryFromString(t *testing.T) {
	for _, c := range Categories {
		got, err := categoryFromString(c.String())
		if err != nil || got != c {
			t.Errorf("round trip failed for %v", c)
		}
	}
	if _, err := categoryFromString("x"); err == nil {
		t.Error("expected error")
	}
}
