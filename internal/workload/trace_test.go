package workload

import (
	"math"
	"math/rand"
	"testing"

	"flex/internal/power"
)

func TestDefaultTraceConfigValid(t *testing.T) {
	cfg := DefaultTraceConfig(9.6 * power.MW)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.TargetDemand != power.Watts(9.6*power.MW)*1.15 {
		t.Errorf("TargetDemand = %v, want 115%% of provisioned", cfg.TargetDemand)
	}
}

func TestTraceConfigValidation(t *testing.T) {
	base := DefaultTraceConfig(power.MW)
	mutate := []struct {
		name string
		f    func(*TraceConfig)
	}{
		{"zero demand", func(c *TraceConfig) { c.TargetDemand = 0 }},
		{"bad shares sum", func(c *TraceConfig) { c.CategoryShares = [3]float64{0.5, 0.5, 0.5} }},
		{"negative share", func(c *TraceConfig) { c.CategoryShares = [3]float64{-0.2, 0.9, 0.3} }},
		{"no sizes", func(c *TraceConfig) { c.Sizes = nil }},
		{"bad size", func(c *TraceConfig) { c.Sizes = []SizeWeight{{Racks: 0, Weight: 1}} }},
		{"no rack powers", func(c *TraceConfig) { c.RackPowers = nil }},
		{"bad flex range", func(c *TraceConfig) { c.FlexPowerMin, c.FlexPowerMax = 0.9, 0.8 }},
		{"flex max 1", func(c *TraceConfig) { c.FlexPowerMax = 1.0 }},
		{"zero workloads", func(c *TraceConfig) { c.WorkloadsPerCategory = 0 }},
	}
	for _, m := range mutate {
		cfg := base
		m.f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestGenerateTraceMatchesTargets(t *testing.T) {
	cfg := DefaultTraceConfig(9.6 * power.MW)
	rng := rand.New(rand.NewSource(42))
	trace, err := GenerateTrace(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// All deployments valid, IDs dense.
	for i, d := range trace {
		if err := d.Validate(); err != nil {
			t.Fatalf("deployment %d invalid: %v", i, err)
		}
		if d.ID != i {
			t.Fatalf("deployment %d has ID %d", i, d.ID)
		}
	}
	// Total demand meets the target (generator overshoots by at most one
	// deployment per category).
	total := TotalPowerOf(trace)
	if total < cfg.TargetDemand {
		t.Fatalf("total %v below target %v", total, cfg.TargetDemand)
	}
	maxDep := 20 * 17.2 * power.KW
	if total > cfg.TargetDemand+3*maxDep {
		t.Fatalf("total %v overshoots target %v too much", total, cfg.TargetDemand)
	}
	// Category mix tracks the configured shares within a few percent.
	by := PowerByCategory(trace)
	for c, share := range cfg.CategoryShares {
		got := float64(by[Category(c)]) / float64(total)
		if math.Abs(got-share) > 0.05 {
			t.Errorf("category %v share = %.3f, want ≈%.3f", Category(c), got, share)
		}
	}
	// Flex power fractions respect the configured range.
	for _, d := range trace {
		if d.Category == NonRedundantCapable &&
			(d.FlexPowerFraction < cfg.FlexPowerMin || d.FlexPowerFraction > cfg.FlexPowerMax) {
			t.Errorf("flex fraction %.3f outside [%.2f,%.2f]",
				d.FlexPowerFraction, cfg.FlexPowerMin, cfg.FlexPowerMax)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig(4.8 * power.MW)
	a, _ := GenerateTrace(cfg, rand.New(rand.NewSource(7)))
	b, _ := GenerateTrace(cfg, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("deployment %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateTraceRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultTraceConfig(power.MW)
	cfg.TargetDemand = -1
	if _, err := GenerateTrace(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerateTraceMaxDeploymentRacks(t *testing.T) {
	cfg := DefaultTraceConfig(9.6 * power.MW)
	cfg.MaxDeploymentRacks = 10
	trace, err := GenerateTrace(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range trace {
		if d.Racks > 10 {
			t.Fatalf("deployment %v exceeds 10 racks", d)
		}
	}
}

func TestSplitRacks(t *testing.T) {
	cases := []struct {
		racks, max int
		want       []int
	}{
		{20, 10, []int{10, 10}},
		{20, 0, []int{20}},
		{20, 25, []int{20}},
		{17, 5, []int{5, 5, 5, 2}},
	}
	for _, c := range cases {
		got := splitRacks(c.racks, c.max)
		if len(got) != len(c.want) {
			t.Errorf("splitRacks(%d,%d) = %v, want %v", c.racks, c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitRacks(%d,%d) = %v, want %v", c.racks, c.max, got, c.want)
				break
			}
		}
	}
}

func TestShufflePermutesAndReassignsIDs(t *testing.T) {
	cfg := DefaultTraceConfig(4.8 * power.MW)
	trace, _ := GenerateTrace(cfg, rand.New(rand.NewSource(1)))
	shuffled := Shuffle(trace, rand.New(rand.NewSource(99)))
	if len(shuffled) != len(trace) {
		t.Fatal("length changed")
	}
	if TotalPowerOf(shuffled) != TotalPowerOf(trace) {
		t.Fatal("total power changed")
	}
	for i, d := range shuffled {
		if d.ID != i {
			t.Fatalf("shuffled[%d].ID = %d", i, d.ID)
		}
	}
	// Original untouched (IDs still dense ascending and same order).
	for i, d := range trace {
		if d.ID != i {
			t.Fatal("Shuffle mutated its input")
		}
	}
}

func TestFigure3RegionsAverageIsPaperMix(t *testing.T) {
	avg := AverageMix(Figure3Regions())
	want := [3]float64{0.13, 0.56, 0.31}
	for c := range avg {
		if math.Abs(avg[c]-want[c]) > 1e-9 {
			t.Errorf("average share[%d] = %.4f, want %.2f", c, avg[c], want[c])
		}
	}
	// Every region's shares sum to 1.
	for _, r := range Figure3Regions() {
		sum := r.Shares[0] + r.Shares[1] + r.Shares[2]
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s shares sum to %.4f", r.Region, sum)
		}
	}
}

func TestAverageMixEmpty(t *testing.T) {
	if AverageMix(nil) != [3]float64{} {
		t.Fatal("AverageMix(nil) should be zero")
	}
}
