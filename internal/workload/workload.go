// Package workload models the cloud workloads and server deployments Flex
// places and manages (paper §II-B, §II-C).
//
// Deployments are the unbreakable units of capacity growth: a number of
// racks with a per-rack power allocation, belonging to a named workload.
// Every workload falls in one of three categories — software-redundant
// (can be shut down during failover), non-redundant but cap-able (can be
// throttled down to a pre-defined "flex power"), and non-redundant
// non-cap-able (must not be touched).
package workload

import (
	"fmt"

	"flex/internal/power"
)

// Category classifies a workload's tolerance to Flex corrective actions
// (paper §II-B).
type Category int

const (
	// SoftwareRedundant workloads (e.g. Web search, data analytics)
	// replicate across availability zones and tolerate rack shutdown.
	SoftwareRedundant Category = iota
	// NonRedundantCapable workloads (e.g. first-party VMs) cannot be shut
	// down but tolerate power capping down to their flex power.
	NonRedundantCapable
	// NonRedundantNonCapable workloads (e.g. GPU or storage clusters
	// without capping support) can be neither shut down nor throttled.
	NonRedundantNonCapable
)

// Categories lists all categories in canonical order.
var Categories = []Category{SoftwareRedundant, NonRedundantCapable, NonRedundantNonCapable}

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case SoftwareRedundant:
		return "software-redundant"
	case NonRedundantCapable:
		return "non-redundant-capable"
	case NonRedundantNonCapable:
		return "non-redundant-non-capable"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Shaveable reports whether Flex can recover any power from this category
// during a failover event.
func (c Category) Shaveable() bool { return c != NonRedundantNonCapable }

// Deployment is one server deployment request from the short-term demand
// (paper §II-C): Racks racks, each allocated PowerPerRack, belonging to
// Workload. The deployment is placed as a unit under a single PDU-pair.
type Deployment struct {
	ID       int
	Workload string
	Category Category
	Racks    int
	// PowerPerRack is the conservative per-rack peak power allocation.
	PowerPerRack power.Watts
	// FlexPowerFraction is, for cap-able deployments, the lowest power cap
	// as a fraction of PowerPerRack (the paper uses 0.75–0.85). It is 0
	// for software-redundant deployments (they are shut down instead) and
	// 1 for non-cap-able deployments (no power is recoverable).
	FlexPowerFraction float64
}

// Validate checks internal consistency.
func (d Deployment) Validate() error {
	if d.Racks <= 0 {
		return fmt.Errorf("workload: deployment %d has %d racks", d.ID, d.Racks)
	}
	if d.PowerPerRack <= 0 {
		return fmt.Errorf("workload: deployment %d has non-positive rack power", d.ID)
	}
	if d.FlexPowerFraction < 0 || d.FlexPowerFraction > 1 {
		return fmt.Errorf("workload: deployment %d flex fraction %.2f outside [0,1]", d.ID, d.FlexPowerFraction)
	}
	switch d.Category {
	case SoftwareRedundant:
		if d.FlexPowerFraction != 0 {
			return fmt.Errorf("workload: software-redundant deployment %d must have flex fraction 0", d.ID)
		}
	case NonRedundantNonCapable:
		if d.FlexPowerFraction != 1 {
			return fmt.Errorf("workload: non-cap-able deployment %d must have flex fraction 1", d.ID)
		}
	case NonRedundantCapable:
		if d.FlexPowerFraction <= 0 || d.FlexPowerFraction >= 1 {
			return fmt.Errorf("workload: cap-able deployment %d flex fraction %.2f outside (0,1)", d.ID, d.FlexPowerFraction)
		}
	default:
		return fmt.Errorf("workload: deployment %d has unknown category %d", d.ID, d.Category)
	}
	return nil
}

// TotalPower is the deployment's full power allocation (Pow_d in Eq. 2).
func (d Deployment) TotalPower() power.Watts {
	return d.PowerPerRack * power.Watts(d.Racks)
}

// FlexPowerPerRack is the per-rack power after capping.
func (d Deployment) FlexPowerPerRack() power.Watts {
	return power.Watts(float64(d.PowerPerRack) * d.FlexPowerFraction)
}

// CapPower is the deployment's power after worst-case corrective action
// (CapPow_d, paper Eq. 3): 0 for software-redundant (shut down), flex power
// for cap-able (throttled), full power for non-cap-able (untouched).
func (d Deployment) CapPower() power.Watts {
	switch d.Category {
	case SoftwareRedundant:
		return 0
	case NonRedundantCapable:
		return d.FlexPowerPerRack() * power.Watts(d.Racks)
	default:
		return d.TotalPower()
	}
}

// ShaveablePower is the maximum power Flex can recover from this
// deployment during failover: TotalPower − CapPower.
func (d Deployment) ShaveablePower() power.Watts {
	return d.TotalPower() - d.CapPower()
}

// ThrottleRecoverablePower is the power recoverable by throttling alone
// (i.e. excluding shutdowns) — used by the throttling-imbalance metric.
func (d Deployment) ThrottleRecoverablePower() power.Watts {
	if d.Category != NonRedundantCapable {
		return 0
	}
	return d.ShaveablePower()
}

// String renders a compact description.
func (d Deployment) String() string {
	return fmt.Sprintf("dep%d[%s %s %d×%v]", d.ID, d.Workload, d.Category, d.Racks, d.PowerPerRack)
}

// TotalPowerOf sums the full power allocation of a slice of deployments.
func TotalPowerOf(ds []Deployment) power.Watts {
	var sum power.Watts
	for _, d := range ds {
		sum += d.TotalPower()
	}
	return sum
}

// PowerByCategory sums deployment power per category.
func PowerByCategory(ds []Deployment) map[Category]power.Watts {
	out := make(map[Category]power.Watts, 3)
	for _, d := range ds {
		out[d.Category] += d.TotalPower()
	}
	return out
}
