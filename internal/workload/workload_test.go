package workload

import (
	"math"
	"testing"

	"flex/internal/power"
)

func TestCategoryString(t *testing.T) {
	if SoftwareRedundant.String() != "software-redundant" {
		t.Error("SoftwareRedundant string")
	}
	if NonRedundantCapable.String() != "non-redundant-capable" {
		t.Error("NonRedundantCapable string")
	}
	if NonRedundantNonCapable.String() != "non-redundant-non-capable" {
		t.Error("NonRedundantNonCapable string")
	}
	if Category(9).String() != "Category(9)" {
		t.Error("unknown category string")
	}
}

func TestCategoryShaveable(t *testing.T) {
	if !SoftwareRedundant.Shaveable() || !NonRedundantCapable.Shaveable() {
		t.Error("SR and cap-able must be shaveable")
	}
	if NonRedundantNonCapable.Shaveable() {
		t.Error("non-cap-able must not be shaveable")
	}
}

func dep(cat Category, racks int, perRack power.Watts, flexFrac float64) Deployment {
	return Deployment{ID: 1, Workload: "w", Category: cat, Racks: racks,
		PowerPerRack: perRack, FlexPowerFraction: flexFrac}
}

func TestDeploymentValidate(t *testing.T) {
	cases := []struct {
		name string
		d    Deployment
		ok   bool
	}{
		{"valid SR", dep(SoftwareRedundant, 20, 14.4*power.KW, 0), true},
		{"valid capable", dep(NonRedundantCapable, 10, 17.2*power.KW, 0.8), true},
		{"valid non-capable", dep(NonRedundantNonCapable, 5, 14.4*power.KW, 1), true},
		{"zero racks", dep(SoftwareRedundant, 0, 14.4*power.KW, 0), false},
		{"zero power", dep(SoftwareRedundant, 5, 0, 0), false},
		{"SR with flex", dep(SoftwareRedundant, 5, power.KW, 0.8), false},
		{"capable flex 0", dep(NonRedundantCapable, 5, power.KW, 0), false},
		{"capable flex 1", dep(NonRedundantCapable, 5, power.KW, 1), false},
		{"non-capable flex 0.5", dep(NonRedundantNonCapable, 5, power.KW, 0.5), false},
		{"flex > 1", dep(NonRedundantCapable, 5, power.KW, 1.5), false},
		{"unknown category", dep(Category(7), 5, power.KW, 0.5), false},
	}
	for _, c := range cases {
		if err := c.d.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestCapPowerEquation3(t *testing.T) {
	// Software-redundant: CapPow = 0.
	sr := dep(SoftwareRedundant, 10, 10*power.KW, 0)
	if sr.CapPower() != 0 {
		t.Errorf("SR CapPower = %v, want 0", sr.CapPower())
	}
	if sr.ShaveablePower() != 100*power.KW {
		t.Errorf("SR shaveable = %v, want 100kW", sr.ShaveablePower())
	}
	// Cap-able: CapPow = FlexPow.
	ca := dep(NonRedundantCapable, 10, 10*power.KW, 0.8)
	if ca.CapPower() != 80*power.KW {
		t.Errorf("capable CapPower = %v, want 80kW", ca.CapPower())
	}
	if ca.ShaveablePower() != 20*power.KW {
		t.Errorf("capable shaveable = %v, want 20kW", ca.ShaveablePower())
	}
	if ca.ThrottleRecoverablePower() != 20*power.KW {
		t.Errorf("capable throttle-recoverable = %v, want 20kW", ca.ThrottleRecoverablePower())
	}
	// Non-cap-able: CapPow = Pow.
	nc := dep(NonRedundantNonCapable, 10, 10*power.KW, 1)
	if nc.CapPower() != nc.TotalPower() {
		t.Errorf("non-capable CapPower = %v, want %v", nc.CapPower(), nc.TotalPower())
	}
	if nc.ShaveablePower() != 0 {
		t.Errorf("non-capable shaveable = %v, want 0", nc.ShaveablePower())
	}
	if sr.ThrottleRecoverablePower() != 0 || nc.ThrottleRecoverablePower() != 0 {
		t.Error("only cap-able deployments have throttle-recoverable power")
	}
}

func TestTotalPowerOfAndByCategory(t *testing.T) {
	ds := []Deployment{
		dep(SoftwareRedundant, 10, 10*power.KW, 0),
		dep(NonRedundantCapable, 5, 20*power.KW, 0.8),
	}
	if got := TotalPowerOf(ds); got != 200*power.KW {
		t.Errorf("TotalPowerOf = %v, want 200kW", got)
	}
	by := PowerByCategory(ds)
	if by[SoftwareRedundant] != 100*power.KW || by[NonRedundantCapable] != 100*power.KW {
		t.Errorf("PowerByCategory = %v", by)
	}
}

func TestDeploymentString(t *testing.T) {
	s := dep(SoftwareRedundant, 10, 14.4*power.KW, 0).String()
	if s == "" {
		t.Fatal("empty deployment string")
	}
}

func TestPowerPreservedBySplitConfig(t *testing.T) {
	// A deployment's power math must be linear in racks so that splitting
	// (the §V-A size study) preserves totals.
	whole := dep(NonRedundantCapable, 20, 14.4*power.KW, 0.8)
	halfA := dep(NonRedundantCapable, 10, 14.4*power.KW, 0.8)
	if math.Abs(float64(whole.TotalPower()-2*halfA.TotalPower())) > 1e-9 {
		t.Error("TotalPower not linear in racks")
	}
	if math.Abs(float64(whole.CapPower()-2*halfA.CapPower())) > 1e-9 {
		t.Error("CapPower not linear in racks")
	}
}
