package workload

import (
	"fmt"
	"math/rand"

	"flex/internal/power"
)

// SizeWeight is a deployment size (in racks) with a relative sampling
// weight.
type SizeWeight struct {
	Racks  int
	Weight float64
}

// TraceConfig parameterizes the synthetic short-term-demand generator. The
// defaults (see DefaultTraceConfig) reproduce the statistics the paper
// publishes about Microsoft's deployment traces (§V-A): deployments of
// mostly 20 racks with a few 10s and 5s, rack allocations around
// 14.4–17.2kW, a 13/56/31 category mix by power, flex power at 75–85% of
// allocated rack power, and total demand at 115% of the room's provisioned
// power.
type TraceConfig struct {
	// TargetDemand is the total power demand to generate.
	TargetDemand power.Watts
	// CategoryShares is the demanded power fraction per category,
	// indexed by Category. Must sum to ~1.
	CategoryShares [3]float64
	// Sizes are the deployment sizes and their weights.
	Sizes []SizeWeight
	// RackPowers are the possible per-rack power allocations, sampled
	// uniformly.
	RackPowers []power.Watts
	// FlexPowerMin/Max bound the flex power fraction for cap-able
	// deployments (sampled uniformly).
	FlexPowerMin, FlexPowerMax float64
	// MaxDeploymentRacks, when positive, splits any deployment larger than
	// this into smaller ones (the §V-A deployment-size sensitivity study).
	MaxDeploymentRacks int
	// WorkloadsPerCategory controls how many distinct named workloads each
	// category's deployments are spread across (>= 1).
	WorkloadsPerCategory int
}

// DefaultTraceConfig returns the paper's evaluation configuration for a
// room with the given provisioned power.
func DefaultTraceConfig(provisioned power.Watts) TraceConfig {
	return TraceConfig{
		TargetDemand:   power.Watts(float64(provisioned) * 1.15),
		CategoryShares: [3]float64{0.13, 0.56, 0.31},
		Sizes: []SizeWeight{
			{Racks: 20, Weight: 0.7},
			{Racks: 10, Weight: 0.2},
			{Racks: 5, Weight: 0.1},
		},
		RackPowers:           []power.Watts{14.4 * power.KW, 17.2 * power.KW},
		FlexPowerMin:         0.75,
		FlexPowerMax:         0.85,
		WorkloadsPerCategory: 3,
	}
}

// Validate checks the configuration.
func (c TraceConfig) Validate() error {
	if c.TargetDemand <= 0 {
		return fmt.Errorf("workload: target demand must be positive")
	}
	sum := 0.0
	for _, s := range c.CategoryShares {
		if s < 0 {
			return fmt.Errorf("workload: negative category share")
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: category shares sum to %.3f, want 1", sum)
	}
	if len(c.Sizes) == 0 {
		return fmt.Errorf("workload: no deployment sizes")
	}
	for _, s := range c.Sizes {
		if s.Racks <= 0 || s.Weight < 0 {
			return fmt.Errorf("workload: invalid size %+v", s)
		}
	}
	if len(c.RackPowers) == 0 {
		return fmt.Errorf("workload: no rack powers")
	}
	if c.FlexPowerMin <= 0 || c.FlexPowerMax >= 1 || c.FlexPowerMin > c.FlexPowerMax {
		return fmt.Errorf("workload: flex power range [%.2f,%.2f] outside (0,1)", c.FlexPowerMin, c.FlexPowerMax)
	}
	if c.WorkloadsPerCategory < 1 {
		return fmt.Errorf("workload: WorkloadsPerCategory must be >= 1")
	}
	return nil
}

// workloadNames are the synthetic workload identities per category.
var workloadNames = map[Category][]string{
	SoftwareRedundant:      {"websearch", "analytics", "indexer", "mlbatch", "exchange"},
	NonRedundantCapable:    {"vmservice", "fp-vms", "appservice", "sqlpool", "functions"},
	NonRedundantNonCapable: {"gpucluster", "storage", "netappliance", "hsm", "cache"},
}

// GenerateTrace produces a short-term-demand deployment trace following
// cfg, using rng for all randomness. Deployments are generated until the
// per-category power targets are met; category assignment always picks the
// category with the largest remaining deficit so realized shares track
// CategoryShares closely.
func GenerateTrace(cfg TraceConfig, rng *rand.Rand) ([]Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	remaining := [3]power.Watts{}
	for c, share := range cfg.CategoryShares {
		remaining[c] = power.Watts(float64(cfg.TargetDemand) * share)
	}
	totalWeight := 0.0
	for _, s := range cfg.Sizes {
		totalWeight += s.Weight
	}
	var out []Deployment
	id := 0
	for remaining[0] > 0 || remaining[1] > 0 || remaining[2] > 0 {
		// Category with the largest remaining deficit.
		cat := Category(0)
		for c := 1; c < 3; c++ {
			if remaining[c] > remaining[cat] {
				cat = Category(c)
			}
		}
		racks := sampleSize(cfg.Sizes, totalWeight, rng)
		rackPow := cfg.RackPowers[rng.Intn(len(cfg.RackPowers))]
		names := workloadNames[cat]
		name := names[rng.Intn(min(cfg.WorkloadsPerCategory, len(names)))]
		flexFrac := 0.0
		switch cat {
		case NonRedundantCapable:
			flexFrac = cfg.FlexPowerMin + rng.Float64()*(cfg.FlexPowerMax-cfg.FlexPowerMin)
		case NonRedundantNonCapable:
			flexFrac = 1
		}
		for _, r := range splitRacks(racks, cfg.MaxDeploymentRacks) {
			d := Deployment{
				ID:                id,
				Workload:          name,
				Category:          cat,
				Racks:             r,
				PowerPerRack:      rackPow,
				FlexPowerFraction: flexFrac,
			}
			id++
			out = append(out, d)
			remaining[cat] -= d.TotalPower()
		}
	}
	return out, nil
}

func sampleSize(sizes []SizeWeight, totalWeight float64, rng *rand.Rand) int {
	x := rng.Float64() * totalWeight
	for _, s := range sizes {
		if x < s.Weight {
			return s.Racks
		}
		x -= s.Weight
	}
	return sizes[len(sizes)-1].Racks
}

// splitRacks splits a deployment of racks into chunks of at most max racks
// (max <= 0 disables splitting), mirroring the paper's deployment-size
// study ("we broke any 20-rack deployments into two deployments of 10").
func splitRacks(racks, max int) []int {
	if max <= 0 || racks <= max {
		return []int{racks}
	}
	var out []int
	for racks > 0 {
		n := min(racks, max)
		out = append(out, n)
		racks -= n
	}
	return out
}

// Shuffle returns a copy of trace with deployment order permuted by rng,
// reassigning IDs to match the new order. The paper shuffles each trace 10
// times to study sensitivity to deployment order.
func Shuffle(trace []Deployment, rng *rand.Rand) []Deployment {
	out := make([]Deployment, len(trace))
	copy(out, trace)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	for i := range out {
		out[i].ID = i
	}
	return out
}

// RegionMix is the workload category distribution of one cloud region
// (paper Figure 3), as power fractions.
type RegionMix struct {
	Region string
	Shares [3]float64 // indexed by Category
}

// Figure3Regions returns a synthetic 4-region distribution whose mean is
// exactly the paper's published average mix (13% software-redundant, 56%
// non-redundant cap-able, 31% non-redundant non-cap-able). Per-region
// values are not published; these are representative.
func Figure3Regions() []RegionMix {
	return []RegionMix{
		{Region: "Region-1", Shares: [3]float64{0.15, 0.55, 0.30}},
		{Region: "Region-2", Shares: [3]float64{0.10, 0.60, 0.30}},
		{Region: "Region-3", Shares: [3]float64{0.18, 0.50, 0.32}},
		{Region: "Region-4", Shares: [3]float64{0.09, 0.59, 0.32}},
	}
}

// AverageMix returns the mean category shares across regions.
func AverageMix(regions []RegionMix) [3]float64 {
	var avg [3]float64
	if len(regions) == 0 {
		return avg
	}
	for _, r := range regions {
		for c := range avg {
			avg[c] += r.Shares[c]
		}
	}
	for c := range avg {
		avg[c] /= float64(len(regions))
	}
	return avg
}
