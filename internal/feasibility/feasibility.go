// Package feasibility implements the paper's §III analysis: the joint
// probability that a maintenance event coincides with power utilization
// high enough to require Flex corrective actions, and the resulting
// availability for each workload category.
//
// The analysis models (a) the distribution of planned and unplanned power
// device downtime (the paper's fleet data: ~1 hour/year unplanned, ~40
// hours/year planned, with planned maintenance schedulable into low-
// utilization windows) and (b) the distribution of room power utilization
// (peaks of 65–80% of non-reserve provisioned power, i.e. the same
// fractions of total provisioned power once Flex deploys proportionally
// more servers).
package feasibility

import (
	"fmt"
	"math"
	"sort"
	"time"

	"flex/internal/power"
	"flex/internal/stats"
)

// UtilizationModel gives the probability that room utilization (fraction
// of provisioned power) exceeds a threshold at a random instant.
type UtilizationModel interface {
	ProbAbove(threshold float64) float64
}

// NormalUtilization models utilization as a Gaussian (clipped to [0,1]).
type NormalUtilization struct {
	Mean, Std float64
}

// ProbAbove implements UtilizationModel.
func (n NormalUtilization) ProbAbove(x float64) float64 {
	if n.Std <= 0 {
		if n.Mean > x {
			return 1
		}
		return 0
	}
	z := (x - n.Mean) / n.Std
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// EmpiricalUtilization models utilization from observed samples.
type EmpiricalUtilization struct {
	sorted []float64
}

// NewEmpiricalUtilization builds a model from samples.
func NewEmpiricalUtilization(samples []float64) (*EmpiricalUtilization, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("feasibility: no samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &EmpiricalUtilization{sorted: s}, nil
}

// ProbAbove implements UtilizationModel.
func (e *EmpiricalUtilization) ProbAbove(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, x)
	// Count samples strictly above x.
	for i < len(e.sorted) && e.sorted[i] <= x {
		i++
	}
	return float64(len(e.sorted)-i) / float64(len(e.sorted))
}

// Params configures Analyze.
type Params struct {
	// Design is the redundancy pattern (4N/3 in the paper).
	Design power.Redundancy
	// UnplannedDowntimePerYear is the expected unplanned loss of one
	// power supply (paper fleet data: 1 hour/year).
	UnplannedDowntimePerYear time.Duration
	// PlannedDowntimePerYear is planned maintenance taking out a supply
	// (paper: 40 hours/year).
	PlannedDowntimePerYear time.Duration
	// PlannedSchedulable marks planned maintenance as schedulable into
	// low-utilization windows (nights/weekends run 15–19% below weekday
	// peaks for 6–12 hours, §III), in which case it never coincides with
	// utilization above the failover budget.
	PlannedSchedulable bool
	// Utilization models room utilization at failure times.
	Utilization UtilizationModel
	// CapableShare is the fraction of room power in non-redundant
	// cap-able workloads (paper average: 56%).
	CapableShare float64
	// SoftwareRedundantShare is the software-redundant power fraction
	// (paper average: 13%).
	SoftwareRedundantShare float64
	// ThrottleDepth is the average fraction of cap-able power recoverable
	// by throttling (1 − flex power fraction; paper: 15–25%, ~20%).
	ThrottleDepth float64
}

// DefaultParams returns parameters calibrated to the paper's published
// fleet statistics.
func DefaultParams() Params {
	return Params{
		Design:                   power.Redundancy{X: 4, Y: 3},
		UnplannedDowntimePerYear: time.Hour,
		PlannedDowntimePerYear:   40 * time.Hour,
		PlannedSchedulable:       true,
		// Utilization at unplanned-failure instants: high-side of the
		// 65–80% peak band (failures are independent of load, but the
		// analysis is run against the riskier busy-hours distribution).
		Utilization:            NormalUtilization{Mean: 0.83, Std: 0.075},
		CapableShare:           0.56,
		SoftwareRedundantShare: 0.13,
		ThrottleDepth:          0.20,
	}
}

// Analysis is the result of Analyze.
type Analysis struct {
	// ActionThreshold is the utilization above which a supply failure
	// requires corrective actions: the failover budget y/x.
	ActionThreshold float64
	// ShutdownThreshold is the utilization above which throttling alone
	// cannot recover enough power and software-redundant racks must be
	// shut down.
	ShutdownThreshold float64
	// ProbActionNeeded is the probability, at a random instant, that a
	// maintenance event is in progress AND utilization requires actions.
	ProbActionNeeded float64
	// NoActionAvailability = 1 − ProbActionNeeded (paper: ≥ 99.99%).
	NoActionAvailability float64
	// NoActionNines is NoActionAvailability expressed in nines.
	NoActionNines float64
	// ProbSRShutdown is the probability that a software-redundant server
	// must be shut down (paper: ≈ 0.005%).
	ProbSRShutdown float64
	// SRAvailability bounds software-redundant server availability
	// (paper: at least 4 nines).
	SRAvailability float64
	SRNines        float64
	// NonRedundantNines is the design availability for non-redundant
	// servers — corrective actions at most throttle them, so the
	// datacenter's design availability (5 nines) is preserved.
	NonRedundantNines float64
}

const hoursPerYear = 8760.0

// Analyze runs the §III analysis.
func Analyze(p Params) (Analysis, error) {
	if err := p.Design.Validate(); err != nil {
		return Analysis{}, err
	}
	if p.Utilization == nil {
		return Analysis{}, fmt.Errorf("feasibility: utilization model required")
	}
	if p.CapableShare < 0 || p.SoftwareRedundantShare < 0 ||
		p.CapableShare+p.SoftwareRedundantShare > 1 {
		return Analysis{}, fmt.Errorf("feasibility: invalid workload shares")
	}
	if p.ThrottleDepth <= 0 || p.ThrottleDepth >= 1 {
		return Analysis{}, fmt.Errorf("feasibility: throttle depth %v outside (0,1)", p.ThrottleDepth)
	}

	a := Analysis{}
	a.ActionThreshold = p.Design.AllocationLimitFraction()
	// Actions must shave utilization u down to y/x. Throttling recovers
	// CapableShare × ThrottleDepth × u; shutdown is needed when
	// u − y/x > CapableShare × ThrottleDepth × u.
	a.ShutdownThreshold = a.ActionThreshold / (1 - p.CapableShare*p.ThrottleDepth)

	maintFrac := p.UnplannedDowntimePerYear.Hours() / hoursPerYear
	if !p.PlannedSchedulable {
		maintFrac += p.PlannedDowntimePerYear.Hours() / hoursPerYear
	}
	a.ProbActionNeeded = maintFrac * p.Utilization.ProbAbove(a.ActionThreshold)
	a.NoActionAvailability = 1 - a.ProbActionNeeded
	a.NoActionNines = stats.Nines(a.NoActionAvailability)

	a.ProbSRShutdown = maintFrac * p.Utilization.ProbAbove(a.ShutdownThreshold)
	a.SRAvailability = 1 - a.ProbSRShutdown
	a.SRNines = stats.Nines(a.SRAvailability)
	a.NonRedundantNines = 5 // datacenter design availability; at most throttled
	return a, nil
}
