package feasibility

import (
	"fmt"
	"math"
	"sort"
)

// utilEps is the tolerance below which two utilization fractions are
// considered equal when ordering maintenance windows.
const utilEps = 1e-9

// MaintenanceWindow is a stretch of hours whose utilization stays below a
// threshold — where planned maintenance can run without ever engaging
// Flex-Online (paper §III: utilizations are 15–19% lower at night and on
// weekends for 6–12 hours, "providing enough time for planned
// maintenance").
type MaintenanceWindow struct {
	// StartHour indexes into the utilization profile.
	StartHour int
	// Hours is the window length.
	Hours int
	// PeakUtilization is the maximum utilization inside the window.
	PeakUtilization float64
}

// FindMaintenanceWindows scans an hourly utilization profile (typically
// one week, 168 entries, wrapping around) for all maximal windows of at
// least minHours whose utilization stays below threshold. Windows are
// returned sorted by ascending peak utilization (safest first).
func FindMaintenanceWindows(hourlyUtil []float64, minHours int, threshold float64) ([]MaintenanceWindow, error) {
	n := len(hourlyUtil)
	if n == 0 {
		return nil, fmt.Errorf("feasibility: empty utilization profile")
	}
	if minHours <= 0 || minHours > n {
		return nil, fmt.Errorf("feasibility: minHours %d outside [1,%d]", minHours, n)
	}
	below := func(i int) bool { return hourlyUtil[i%n] < threshold }

	// Walk runs of below-threshold hours on the circular profile.
	var windows []MaintenanceWindow
	// If every hour is below threshold, the whole profile is one window.
	all := true
	for h := 0; h < n; h++ {
		if !below(h) {
			all = false
			break
		}
	}
	if all {
		peak := 0.0
		for _, u := range hourlyUtil {
			if u > peak {
				peak = u
			}
		}
		return []MaintenanceWindow{{StartHour: 0, Hours: n, PeakUtilization: peak}}, nil
	}
	// Anchor the circular scan at an above-threshold hour so no quiet run
	// is split across the wrap: every run encountered in the following n
	// hours is complete (the hour after the scan is the above-threshold
	// anchor again).
	anchor := 0
	for h := 0; h < n; h++ {
		if !below(h) {
			anchor = h
			break
		}
	}
	pos := anchor
	for scanned := 0; scanned < n; {
		for scanned < n && !below(pos%n) {
			pos++
			scanned++
		}
		if scanned >= n {
			break
		}
		start := pos
		peak := 0.0
		for scanned < n && below(pos%n) {
			if u := hourlyUtil[pos%n]; u > peak {
				peak = u
			}
			pos++
			scanned++
		}
		if pos-start >= minHours {
			windows = append(windows, MaintenanceWindow{
				StartHour:       start % n,
				Hours:           pos - start,
				PeakUtilization: peak,
			})
		}
	}
	sort.Slice(windows, func(a, b int) bool {
		// Near-equal peaks (within utilEps) tie-break on start hour so the
		// ordering is stable under float noise in the utilization profile.
		pa, pb := windows[a].PeakUtilization, windows[b].PeakUtilization
		if math.Abs(pa-pb) > utilEps {
			return pa < pb
		}
		return windows[a].StartHour < windows[b].StartHour
	})
	return windows, nil
}

// WeekProfile synthesizes an hourly one-week utilization profile with
// weekday peaks at peak and nights/weekends dipping by nightDip (the
// paper's 15–19%), for maintenance-scheduling studies.
func WeekProfile(peak, nightDip float64) []float64 {
	out := make([]float64, 7*24)
	for d := 0; d < 7; d++ {
		weekend := d >= 5
		for h := 0; h < 24; h++ {
			u := peak
			night := h < 7 || h >= 21
			if night {
				u = peak - nightDip
			}
			if weekend {
				u = peak - nightDip
				if night {
					u = peak - nightDip*1.15
				}
			}
			out[d*24+h] = u
		}
	}
	return out
}
