package feasibility

import "testing"

func TestFindMaintenanceWindowsBasic(t *testing.T) {
	// 24 hours: busy 8..20, quiet otherwise.
	util := make([]float64, 24)
	for h := range util {
		if h >= 8 && h < 20 {
			util[h] = 0.78
		} else {
			util[h] = 0.60
		}
	}
	ws, err := FindMaintenanceWindows(util, 6, 0.70)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 {
		t.Fatalf("windows = %v, want 1 (night wraps midnight)", ws)
	}
	w := ws[0]
	if w.Hours != 12 { // 20..08 across the wrap
		t.Fatalf("window hours = %d, want 12", w.Hours)
	}
	if w.StartHour != 20 {
		t.Fatalf("window start = %d, want 20", w.StartHour)
	}
	if w.PeakUtilization != 0.60 {
		t.Fatalf("window peak = %v", w.PeakUtilization)
	}
}

func TestFindMaintenanceWindowsTooShortExcluded(t *testing.T) {
	util := []float64{0.6, 0.6, 0.8, 0.6, 0.8, 0.8}
	ws, err := FindMaintenanceWindows(util, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Runs: {5?..no} hours below: 0,1 (len2, wrapping? hour5=0.8 so no wrap), 3 (len1) → none ≥3.
	if len(ws) != 0 {
		t.Fatalf("windows = %v, want none", ws)
	}
}

func TestFindMaintenanceWindowsAllQuiet(t *testing.T) {
	util := []float64{0.5, 0.5, 0.5}
	ws, err := FindMaintenanceWindows(util, 2, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].Hours != 3 {
		t.Fatalf("windows = %v", ws)
	}
}

func TestFindMaintenanceWindowsValidation(t *testing.T) {
	if _, err := FindMaintenanceWindows(nil, 1, 0.5); err == nil {
		t.Error("expected error for empty profile")
	}
	if _, err := FindMaintenanceWindows([]float64{0.5}, 0, 0.5); err == nil {
		t.Error("expected error for zero minHours")
	}
	if _, err := FindMaintenanceWindows([]float64{0.5}, 2, 0.5); err == nil {
		t.Error("expected error for minHours > len")
	}
}

func TestWeekProfileSupportsPlannedMaintenance(t *testing.T) {
	// Paper §III: nights/weekends run 15–19% below weekday peaks for 6–12
	// hours — enough to schedule the 40 h/yr of planned maintenance
	// below the 75% action threshold.
	profile := WeekProfile(0.80, 0.17)
	if len(profile) != 168 {
		t.Fatalf("profile hours = %d", len(profile))
	}
	ws, err := FindMaintenanceWindows(profile, 6, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("no maintenance windows in the paper's profile")
	}
	total := 0
	for _, w := range ws {
		if w.Hours < 6 {
			t.Fatalf("window shorter than minimum: %+v", w)
		}
		if w.PeakUtilization >= 0.75 {
			t.Fatalf("window above threshold: %+v", w)
		}
		total += w.Hours
	}
	// Nights + weekends: far more than the 40 hours/year needed.
	if total < 40 {
		t.Fatalf("only %d quiet hours per week", total)
	}
	// Windows sorted safest-first.
	for i := 1; i < len(ws); i++ {
		if ws[i].PeakUtilization < ws[i-1].PeakUtilization {
			t.Fatal("windows not sorted by peak utilization")
		}
	}
}
