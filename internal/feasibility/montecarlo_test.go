package feasibility

import (
	"testing"
	"time"

	"flex/internal/power"
)

func TestSimulateYearsValidation(t *testing.T) {
	p := DefaultMonteCarloParams()
	p.Years = 0
	if _, err := SimulateYears(p); err == nil {
		t.Error("expected error for zero years")
	}
	p = DefaultMonteCarloParams()
	p.Profile = nil
	if _, err := SimulateYears(p); err == nil {
		t.Error("expected error for empty profile")
	}
	p = DefaultMonteCarloParams()
	p.Design = power.Redundancy{X: 2, Y: 2}
	if _, err := SimulateYears(p); err == nil {
		t.Error("expected error for bad design")
	}
}

func TestSimulateYearsMatchesPaperHeadlines(t *testing.T) {
	p := DefaultMonteCarloParams()
	p.Years = 300
	res, err := SimulateYears(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hours != 300*8760 {
		t.Fatalf("hours = %d", res.Hours)
	}
	// Maintenance time ≈ (1 + 40) h/yr within sampling noise.
	perYear := float64(res.MaintenanceHours) / 300
	if perYear < 25 || perYear > 60 {
		t.Fatalf("maintenance %0.1f h/yr, want ≈41", perYear)
	}
	// Paper headline: ≥4 nines of action-free operation.
	if res.NoActionNines < 4 {
		t.Fatalf("no-action nines = %.2f, want ≥ 4", res.NoActionNines)
	}
	// SR availability at least 4 nines.
	if res.SRNines < 4 {
		t.Fatalf("SR nines = %.2f, want ≥ 4", res.SRNines)
	}
	// Consistency: splits add up.
	if res.ThrottleOnlyHours+res.SRShutdownHours != res.ActionHours {
		t.Fatal("action hour split inconsistent")
	}
	if res.ActionHours > res.MaintenanceHours {
		t.Fatal("actions without maintenance")
	}
	if res.Duration() != time.Duration(res.Hours)*time.Hour {
		t.Fatal("duration mismatch")
	}
}

func TestSimulateYearsSchedulingMatters(t *testing.T) {
	// Scheduling planned maintenance into quiet windows (the paper's §III
	// argument) must dramatically cut corrective-action hours vs placing
	// the same 40 h/yr at random times.
	sched := DefaultMonteCarloParams()
	sched.Years = 150
	rand := sched
	rand.SchedulePlanned = false
	rand.Seed = 2
	rs, err := SimulateYears(sched)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SimulateYears(rand)
	if err != nil {
		t.Fatal(err)
	}
	if rr.ActionHours <= rs.ActionHours {
		t.Fatalf("random scheduling (%d action hours) should exceed window scheduling (%d)",
			rr.ActionHours, rs.ActionHours)
	}
	if rr.NoActionNines >= 4 {
		t.Fatalf("random planned maintenance should break 4 nines, got %.2f", rr.NoActionNines)
	}
}

func TestSimulateYearsAgreesWithAnalyticModel(t *testing.T) {
	// The Monte Carlo result and the closed-form Analyze must agree on
	// the order of magnitude of the action probability when fed matched
	// assumptions (unplanned events only; same utilization distribution).
	mc := DefaultMonteCarloParams()
	mc.Years = 500
	mc.PlannedHoursPerYear = 0
	res, err := SimulateYears(mc)
	if err != nil {
		t.Fatal(err)
	}
	probSim := float64(res.ActionHours) / float64(res.Hours)
	// Analytic counterpart: P(maintenance) × P(util > 0.75) under the
	// profile+noise distribution.
	samples := make([]float64, 0, len(mc.Profile)*10)
	for rep := 0; rep < 10; rep++ {
		for _, u := range mc.Profile {
			samples = append(samples, u)
		}
	}
	emp, err := NewEmpiricalUtilization(samples)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(Params{
		Design:                   mc.Design,
		UnplannedDowntimePerYear: time.Hour,
		PlannedDowntimePerYear:   0,
		PlannedSchedulable:       true,
		Utilization:              emp,
		CapableShare:             mc.CapableShare,
		SoftwareRedundantShare:   mc.SRShare,
		ThrottleDepth:            mc.ThrottleDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both tiny probabilities; require the same order of magnitude
	// (within 10× — the noise model differs slightly).
	if probSim > 0 && a.ProbActionNeeded > 0 {
		ratio := probSim / a.ProbActionNeeded
		if ratio > 10 || ratio < 0.1 {
			t.Fatalf("simulated %.3g vs analytic %.3g (ratio %.2f)", probSim, a.ProbActionNeeded, ratio)
		}
	}
}
