package feasibility

import (
	"math"
	"testing"
	"time"

	"flex/internal/power"
)

func TestNormalUtilizationProbAbove(t *testing.T) {
	n := NormalUtilization{Mean: 0.8, Std: 0.1}
	if got := n.ProbAbove(0.8); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("P(>mean) = %v, want 0.5", got)
	}
	if got := n.ProbAbove(0.5); got < 0.99 {
		t.Fatalf("P(>mean-3σ) = %v, want ≈1", got)
	}
	if got := n.ProbAbove(1.1); got > 0.01 {
		t.Fatalf("P(>mean+3σ) = %v, want ≈0", got)
	}
	// Degenerate σ=0: step function.
	d := NormalUtilization{Mean: 0.8}
	if d.ProbAbove(0.7) != 1 || d.ProbAbove(0.9) != 0 {
		t.Fatal("degenerate model should be a step")
	}
}

func TestEmpiricalUtilization(t *testing.T) {
	e, err := NewEmpiricalUtilization([]float64{0.6, 0.7, 0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.ProbAbove(0.75); got != 0.5 {
		t.Fatalf("P(>0.75) = %v, want 0.5", got)
	}
	if got := e.ProbAbove(0.9); got != 0 {
		t.Fatalf("P(>max) = %v, want 0", got)
	}
	if got := e.ProbAbove(0.5); got != 1 {
		t.Fatalf("P(>min-) = %v, want 1", got)
	}
	if _, err := NewEmpiricalUtilization(nil); err == nil {
		t.Fatal("expected error for no samples")
	}
}

func TestAnalyzeDefaultMatchesPaper(t *testing.T) {
	a, err := Analyze(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// §II-A/§III: actions needed above the y/x failover budget.
	if math.Abs(a.ActionThreshold-0.75) > 1e-9 {
		t.Errorf("ActionThreshold = %v, want 0.75", a.ActionThreshold)
	}
	// Shutdown threshold is above the action threshold.
	if a.ShutdownThreshold <= a.ActionThreshold || a.ShutdownThreshold > 1 {
		t.Errorf("ShutdownThreshold = %v", a.ShutdownThreshold)
	}
	// Paper: 99.99% (4 nines) of the time no corrective actions needed.
	if a.NoActionNines < 3.9 {
		t.Errorf("NoActionNines = %v, want ≥ ~4", a.NoActionNines)
	}
	// Paper: P(SR shutdown) ≈ 0.005%.
	if a.ProbSRShutdown < 1e-5 || a.ProbSRShutdown > 2e-4 {
		t.Errorf("ProbSRShutdown = %v, want ≈5e-5", a.ProbSRShutdown)
	}
	// Paper: SR availability at least 4 nines.
	if a.SRNines < 4 {
		t.Errorf("SRNines = %v, want ≥ 4", a.SRNines)
	}
	if a.NonRedundantNines != 5 {
		t.Errorf("NonRedundantNines = %v, want 5", a.NonRedundantNines)
	}
}

func TestAnalyzePlannedMaintenanceMatters(t *testing.T) {
	p := DefaultParams()
	p.PlannedSchedulable = false
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := Analyze(DefaultParams())
	// Unschedulable planned maintenance (40h/yr vs 1h/yr) raises the
	// action probability by roughly 40×.
	if a.ProbActionNeeded <= sched.ProbActionNeeded*10 {
		t.Errorf("planned maintenance should dominate: %v vs %v",
			a.ProbActionNeeded, sched.ProbActionNeeded)
	}
	// This is exactly why the paper schedules planned maintenance into
	// low-utilization windows: availability would drop below 4 nines.
	if a.NoActionNines >= 4 {
		t.Errorf("unschedulable planned maintenance should break 4 nines, got %v", a.NoActionNines)
	}
}

func TestAnalyzeThresholdFormula(t *testing.T) {
	p := DefaultParams()
	p.CapableShare = 0.56
	p.ThrottleDepth = 0.20
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75 / (1 - 0.56*0.20)
	if math.Abs(a.ShutdownThreshold-want) > 1e-12 {
		t.Fatalf("ShutdownThreshold = %v, want %v", a.ShutdownThreshold, want)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	p := DefaultParams()
	p.Design = power.Redundancy{X: 3, Y: 3}
	if _, err := Analyze(p); err == nil {
		t.Error("expected error for bad design")
	}
	p = DefaultParams()
	p.Utilization = nil
	if _, err := Analyze(p); err == nil {
		t.Error("expected error for missing utilization model")
	}
	p = DefaultParams()
	p.CapableShare = 0.9
	p.SoftwareRedundantShare = 0.5
	if _, err := Analyze(p); err == nil {
		t.Error("expected error for shares > 1")
	}
	p = DefaultParams()
	p.ThrottleDepth = 0
	if _, err := Analyze(p); err == nil {
		t.Error("expected error for zero throttle depth")
	}
}

func TestAnalyzeMoreDowntimeLowersAvailability(t *testing.T) {
	p := DefaultParams()
	base, _ := Analyze(p)
	p.UnplannedDowntimePerYear = 10 * time.Hour
	worse, _ := Analyze(p)
	if worse.NoActionAvailability >= base.NoActionAvailability {
		t.Fatal("more downtime must lower availability")
	}
}
