package feasibility

import (
	"fmt"
	"math/rand"
	"time"

	"flex/internal/power"
	"flex/internal/stats"
)

// MonteCarloParams configures SimulateYears, the stochastic counterpart of
// the §III analytic model: years of room operation at hour granularity
// with a weekly utilization profile, Poisson unplanned supply failures,
// and planned maintenance scheduled into low-utilization windows.
type MonteCarloParams struct {
	Years int
	Seed  int64
	// Design is the redundancy pattern.
	Design power.Redundancy
	// Profile is the hourly utilization profile (wrapping; typically one
	// week = 168 entries).
	Profile []float64
	// UtilNoiseStd adds Gaussian noise per hour.
	UtilNoiseStd float64
	// UnplannedEventsPerYear is the Poisson rate of unplanned supply
	// failures (the paper's fleet: ~1 hour/year of unplanned downtime).
	UnplannedEventsPerYear float64
	// UnplannedEventHours is each unplanned event's duration.
	UnplannedEventHours int
	// PlannedHoursPerYear is the planned maintenance budget (paper: 40
	// h/yr), scheduled greedily into the quietest windows when
	// SchedulePlanned is true and uniformly at random otherwise.
	PlannedHoursPerYear int
	SchedulePlanned     bool
	// CapableShare/ThrottleDepth/SRShare describe the workload mix (as in
	// Params).
	CapableShare, ThrottleDepth, SRShare float64
}

// DefaultMonteCarloParams mirrors DefaultParams for the simulation.
func DefaultMonteCarloParams() MonteCarloParams {
	return MonteCarloParams{
		Years:                  200,
		Seed:                   1,
		Design:                 power.Redundancy{X: 4, Y: 3},
		Profile:                WeekProfile(0.80, 0.17),
		UtilNoiseStd:           0.05,
		UnplannedEventsPerYear: 1,
		UnplannedEventHours:    1,
		PlannedHoursPerYear:    40,
		SchedulePlanned:        true,
		CapableShare:           0.56,
		ThrottleDepth:          0.20,
		SRShare:                0.13,
	}
}

// MonteCarloResult aggregates the simulated years.
type MonteCarloResult struct {
	Hours int
	// MaintenanceHours is hours with a supply out of service.
	MaintenanceHours int
	// ActionHours is hours where corrective actions were required
	// (maintenance coinciding with utilization above the failover budget).
	ActionHours int
	// ThrottleOnlyHours / SRShutdownHours split ActionHours by whether
	// throttling alone sufficed.
	ThrottleOnlyHours int
	SRShutdownHours   int
	// NoActionAvailability is 1 − ActionHours/Hours, in nines too.
	NoActionAvailability float64
	NoActionNines        float64
	// SRAvailability is the software-redundant server availability
	// (weighted by the average fraction of SR racks shut during shutdown
	// hours).
	SRAvailability float64
	SRNines        float64
	// MeanSRFractionShut is the average SR fraction shut during shutdown
	// hours.
	MeanSRFractionShut float64
}

// SimulateYears runs the Monte Carlo model. It is the empirical check on
// Analyze: over enough simulated years the two must agree on the paper's
// headline claims (≥4 nines of action-free operation, SR availability ≥4
// nines).
func SimulateYears(p MonteCarloParams) (MonteCarloResult, error) {
	if p.Years <= 0 {
		return MonteCarloResult{}, fmt.Errorf("feasibility: years must be positive")
	}
	if len(p.Profile) == 0 {
		return MonteCarloResult{}, fmt.Errorf("feasibility: empty profile")
	}
	if err := p.Design.Validate(); err != nil {
		return MonteCarloResult{}, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	const hoursPerYearInt = 8760
	totalHours := p.Years * hoursPerYearInt
	budget := p.Design.AllocationLimitFraction()

	// Pre-compute the planned-maintenance schedule as hour-of-week slots.
	plannedSlot := make([]bool, len(p.Profile))
	if p.PlannedHoursPerYear > 0 {
		if p.SchedulePlanned {
			windows, err := FindMaintenanceWindows(p.Profile, 1, budget)
			if err == nil {
				// Mark quiet hours round-robin until the weekly share of the
				// planned budget is covered.
				weekly := p.PlannedHoursPerYear * len(p.Profile) / hoursPerYearInt
				if weekly < 1 {
					weekly = 1
				}
				marked := 0
				for _, w := range windows {
					for h := 0; h < w.Hours && marked < weekly; h++ {
						plannedSlot[(w.StartHour+h)%len(p.Profile)] = true
						marked++
					}
					if marked >= weekly {
						break
					}
				}
			}
		}
	}

	res := MonteCarloResult{Hours: totalHours}
	var srFractions []float64
	unplannedLeft := 0 // remaining hours of the current unplanned event
	hourlyRate := p.UnplannedEventsPerYear / hoursPerYearInt
	plannedUsedThisYear := 0

	for h := 0; h < totalHours; h++ {
		if h%hoursPerYearInt == 0 {
			plannedUsedThisYear = 0
		}
		week := h % len(p.Profile)
		util := p.Profile[week] + rng.NormFloat64()*p.UtilNoiseStd
		if util < 0 {
			util = 0
		}
		if util > 1 {
			util = 1
		}
		// Unplanned events arrive Poisson-ly; model as Bernoulli per hour.
		if unplannedLeft == 0 && rng.Float64() < hourlyRate {
			unplannedLeft = p.UnplannedEventHours
		}
		maintenance := false
		if unplannedLeft > 0 {
			unplannedLeft--
			maintenance = true
		}
		// Planned maintenance in its scheduled (or random) slots.
		if plannedUsedThisYear < p.PlannedHoursPerYear {
			scheduled := plannedSlot[week]
			if !p.SchedulePlanned {
				scheduled = rng.Float64() < float64(p.PlannedHoursPerYear)/hoursPerYearInt
			}
			if scheduled {
				maintenance = true
				plannedUsedThisYear++
			}
		}
		if !maintenance {
			continue
		}
		res.MaintenanceHours++
		if util <= budget {
			continue
		}
		res.ActionHours++
		need := util - budget
		throttleCap := p.CapableShare * p.ThrottleDepth * util
		if need <= throttleCap {
			res.ThrottleOnlyHours++
			continue
		}
		res.SRShutdownHours++
		srPool := p.SRShare * util
		frac := 1.0
		if srPool > 0 {
			frac = (need - throttleCap) / srPool
			if frac > 1 {
				frac = 1
			}
		}
		srFractions = append(srFractions, frac)
	}

	res.NoActionAvailability = 1 - float64(res.ActionHours)/float64(res.Hours)
	res.NoActionNines = stats.Nines(res.NoActionAvailability)
	res.MeanSRFractionShut = stats.Mean(srFractions)
	srDowntime := float64(res.SRShutdownHours) * res.MeanSRFractionShut
	res.SRAvailability = 1 - srDowntime/float64(res.Hours)
	res.SRNines = stats.Nines(res.SRAvailability)
	return res, nil
}

// Duration reports the simulated wall time.
func (r MonteCarloResult) Duration() time.Duration {
	return time.Duration(r.Hours) * time.Hour
}
