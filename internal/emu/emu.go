// Package emu reproduces the paper's end-to-end Flex-Online emulation
// (§V-C, Figure 13): a 4.8MW zero-reserved-power room of 360 emulated
// racks running synthetic workloads — a TeraSort-like batch job for the
// software-redundant workload and a latency-sensitive TPC-E-like OLTP
// workload for the non-redundant categories — placed by Flex-Offline-Short
// and driven through setup → normal operation → UPS failure → corrective
// action → recovery, with the real controller and telemetry code in the
// loop on a virtual clock.
package emu

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"flex/internal/clock"
	"flex/internal/controller"
	"flex/internal/impact"
	"flex/internal/milp"
	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/obs/slo"
	"flex/internal/obs/tsdb"
	"flex/internal/placement"
	"flex/internal/power"
	"flex/internal/rackmgr"
	"flex/internal/replay"
	"flex/internal/sim"
	"flex/internal/stats"
	"flex/internal/telemetry"
	"flex/internal/workload"
)

// Config drives Run. Zero values select the paper's §V-C setup.
type Config struct {
	// Utilization is the steady-state aggregate utilization of provisioned
	// power (paper: 80%).
	Utilization float64
	// Scenario supplies impact functions (paper: Figure 11(c),
	// Realistic-1).
	Scenario *impact.Scenario
	// FailUPS is the UPS to fail.
	FailUPS power.UPSID
	// FailAt, RecoverAt, Duration stage the experiment (paper: failure
	// after 12 minutes).
	FailAt, RecoverAt, Duration time.Duration
	// Tick is the simulation step (default 500ms).
	Tick time.Duration
	// Controllers is the number of multi-primary controller instances
	// (default 3).
	Controllers int
	// Seed drives workload dynamics and meter noise.
	Seed int64
	// TraceSeed drives the demand trace.
	TraceSeed int64
	// InjectTelemetryFaults, when true, fails one physical meter of every
	// surviving UPS's consensus set and mis-calibrates another at the
	// moment of the UPS failure — the §IV-C redundancy must mask both
	// while Flex-Online is acting.
	InjectTelemetryFaults bool
	// Obs, when non-nil, instruments the run: controller, actuation,
	// consensus, and placement-solver metrics all register here.
	Obs *obs.Registry
	// Tracer, when non-nil, records detect→plan→act traces of overdraw
	// rounds (it is handed to every controller primary).
	Tracer *obs.Tracer
	// Recorder, when non-nil, captures the whole run as a flight-recorder
	// event log: a replay.Header meta event first, then every telemetry,
	// consensus, planning and actuation event — a log cmd/flexreplay can
	// re-drive deterministically.
	Recorder *recorder.Recorder
	// Safety, when non-nil, is the continuous safety auditor: Run binds
	// it to the emulated control plane (topology, telemetry views,
	// controllers) and drives one audit tick per emulation tick on the
	// virtual clock, after telemetry pumps and controller steps. When
	// Obs is also set, a tsdb sampler scrapes the registry into the
	// auditor's store on the same cadence.
	Safety *slo.Auditor
	// Debug prints controller decisions to stdout.
	Debug bool
}

func (c *Config) fillDefaults() {
	if c.Utilization == 0 {
		c.Utilization = 0.80
	}
	if c.Scenario == nil {
		s := impact.Realistic1()
		c.Scenario = &s
	}
	if c.FailAt == 0 {
		c.FailAt = 12 * time.Minute
	}
	if c.RecoverAt == 0 {
		c.RecoverAt = 18 * time.Minute
	}
	if c.Duration == 0 {
		c.Duration = 24 * time.Minute
	}
	if c.Tick == 0 {
		c.Tick = 500 * time.Millisecond
	}
	if c.Controllers == 0 {
		c.Controllers = 3
	}
	if c.TraceSeed == 0 {
		c.TraceSeed = 9
	}
}

// Stage labels for the timeline (Figure 13's A–G annotations).
const (
	StageSetup    = "setup"
	StageNormal   = "normal"
	StageFailover = "failover"
	StageRecovery = "recovery"
)

// TimePoint is one sample of the emulation timeline.
type TimePoint struct {
	T     time.Duration
	Stage string
	// UPSPower is the ground-truth output power per UPS (Figure 13a).
	UPSPower []power.Watts
	// RackPower is the total rack power by category (Figure 13b).
	RackPower map[workload.Category]power.Watts
}

// Result summarizes a run.
type Result struct {
	Series []TimePoint
	// SRShutdownFrac is the fraction of software-redundant racks shut
	// down during the failover (paper: 64%).
	SRShutdownFrac float64
	// CapThrottledFrac is the fraction of cap-able racks throttled
	// (paper: 51%).
	CapThrottledFrac float64
	// NonCapTouched counts non-cap-able racks acted on (must be 0).
	NonCapTouched int
	// DetectionLatency is from the UPS failure to the first enforced
	// corrective action.
	DetectionLatency time.Duration
	// ShaveLatency is from the UPS failure until every surviving UPS is
	// back below rated capacity (must be within the Flex 10s budget).
	ShaveLatency time.Duration
	// Outage reports whether any UPS overload outlasted its trip-curve
	// tolerance (cascading failure — must be false).
	Outage bool
	// Insufficient is true when Algorithm 1 ran out of shaveable racks.
	Insufficient bool
	// BaselineP95, ThrottledP95 are the TPC-E-like 95th-percentile
	// latencies (arbitrary units) of cap-able racks outside and inside
	// the throttled window; P95IncreasePct compares them (paper: +4.7%).
	BaselineP95, ThrottledP95 float64
	P95IncreasePct            float64
	// WorstIncreasePct is the worst per-tick latency increase of any
	// throttled rack (paper: 14%).
	WorstIncreasePct float64
	// RestoredAll reports whether every acted rack was restored by the
	// end of the run.
	RestoredAll bool
}

// rackSim is the live state of one emulated rack.
type rackSim struct {
	sim.Rack
	demand    float64 // demanded power fraction of allocation (AR(1))
	rampUntil time.Duration
}

// Run executes the emulation. ctx bounds the offline placement solve and
// is threaded to the controller's planning passes.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	room := placement.EmulationRoom()
	topo := room.Topo

	// Place the demand with Flex-Offline-Short (paper methodology), one
	// workload per category.
	tcfg := workload.DefaultTraceConfig(topo.ProvisionedPower())
	tcfg.WorkloadsPerCategory = 1
	tcfg.FlexPowerMin, tcfg.FlexPowerMax = 0.845, 0.855 // paper: flex power 85%
	trace, err := workload.GenerateTrace(tcfg, rand.New(rand.NewSource(cfg.TraceSeed)))
	if err != nil {
		return nil, err
	}
	var solverMetrics *milp.Metrics
	if cfg.Obs != nil {
		solverMetrics = milp.NewMetrics(cfg.Obs)
	}
	pl, err := placement.FlexOffline{BatchFraction: 0.33, MaxNodes: 150, SolverMetrics: solverMetrics}.Place(ctx, room, trace)
	if err != nil {
		return nil, err
	}
	racks := sim.ExpandRacks(pl)
	if len(racks) == 0 {
		return nil, fmt.Errorf("emu: nothing placed")
	}
	managed := sim.ManagedRacks(racks)

	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewVirtual(start)

	// Per-category demand ratios (TeraSort-like batch hot, TPC-E-like
	// OLTP near its flex power, non-cap-able cooler), normalized against
	// the placed mix so the aggregate draw hits cfg.Utilization exactly.
	ratio := map[workload.Category]float64{
		workload.SoftwareRedundant:      0.90 / 0.80,
		workload.NonRedundantCapable:    0.83 / 0.80,
		workload.NonRedundantNonCapable: 0.67 / 0.80,
	}
	var weighted float64
	for _, r := range racks {
		weighted += ratio[r.Category] * float64(r.Allocated)
	}
	// Scale so the aggregate draw at full demand equals Utilization ×
	// provisioned power — the paper's "80% of the provisioned power at
	// the UPS level" (§V-C); placed allocation is slightly below
	// provisioned, so per-rack duty runs a little above the aggregate.
	norm := cfg.Utilization * float64(topo.ProvisionedPower()) / weighted
	for c := range ratio {
		ratio[c] *= norm
	}

	// Live rack state.
	sims := make([]*rackSim, len(racks))
	for i, r := range racks {
		sims[i] = &rackSim{Rack: r, demand: 0.2}
	}
	ids := make([]string, len(racks))
	for i, r := range racks {
		ids[i] = r.ID
	}
	mgr := rackmgr.NewManager(clk, ids)
	if cfg.Obs != nil {
		mgr.Metrics = rackmgr.NewMetrics(cfg.Obs)
	}
	mgr.Recorder = cfg.Recorder

	// Ground truth: rack power honoring actuation state, and UPS loads
	// honoring the failover transfer.
	inactive := map[power.UPSID]bool{}
	rackPowerOf := func(rs *rackSim) power.Watts {
		st, cap, _ := mgr.State(rs.ID)
		switch st {
		case rackmgr.Off:
			return 0
		case rackmgr.Throttled:
			p := power.Watts(rs.demand * float64(rs.Allocated))
			if p > cap {
				p = cap
			}
			return p
		default:
			return power.Watts(rs.demand * float64(rs.Allocated))
		}
	}
	upsTruth := func() []power.Watts {
		load := power.NewPairLoad(topo)
		for _, rs := range sims {
			load[rs.Pair] += rackPowerOf(rs)
		}
		loads := make([]power.Watts, len(topo.UPSes))
		for _, p := range topo.Pairs {
			w := load[p.ID]
			a, b := p.UPSes[0], p.UPSes[1]
			switch {
			case inactive[a] && inactive[b]:
			case inactive[a]:
				loads[b] += w
			case inactive[b]:
				loads[a] += w
			default:
				loads[a] += w / 2
				loads[b] += w / 2
			}
		}
		return loads
	}

	// Telemetry: consensus meters over the ground truth, pumped
	// synchronously into the controller views on the paper's cadences.
	upsView := telemetry.NewLatestPower()
	rackView := telemetry.NewLatestPower()
	if cfg.Recorder != nil {
		upsView.SetRecorder(cfg.Recorder, replay.RoleUPSView)
		rackView.SetRecorder(cfg.Recorder, replay.RoleRackView)
	}
	var telMetrics *telemetry.Metrics
	if cfg.Obs != nil {
		telMetrics = telemetry.NewMetrics(cfg.Obs)
	}
	upsMeters := make([]*telemetry.LogicalMeter, len(topo.UPSes))
	for u := range topo.UPSes {
		u := u
		upsMeters[u] = telemetry.NewUPSLogicalMeter(topo.UPSes[u].Name,
			func() power.Watts { return upsTruth()[u] },
			func() power.Watts { return 60 * power.KW }, // mechanical load
			cfg.Seed+int64(u)*7)
		upsMeters[u].Metrics = telMetrics
		upsMeters[u].Recorder = cfg.Recorder
	}
	rackMeters := make([]*telemetry.SimMeter, len(sims))
	for i, rs := range sims {
		rs := rs
		rackMeters[i] = telemetry.NewSimMeter(rs.ID,
			func() power.Watts { return rackPowerOf(rs) },
			telemetry.SimMeterConfig{Noise: 0.01, Seed: cfg.Seed + 1000 + int64(i)})
	}

	// Controllers (multi-primary). The instances share one Metrics so the
	// room's counters and latency histograms aggregate across primaries.
	var ctlMetrics *controller.Metrics
	var stages *obs.StageMetrics
	if cfg.Obs != nil {
		ctlMetrics = controller.NewMetrics(cfg.Obs)
		stages = obs.NewStageMetrics(cfg.Obs)
	}
	ctls := make([]*controller.Controller, cfg.Controllers)
	for i := range ctls {
		ctls[i] = controller.New(controller.Config{
			Name:     fmt.Sprintf("flex-ctl-%d", i+1),
			Clock:    clk,
			Topo:     topo,
			Racks:    managed,
			UPSView:  upsView,
			RackView: rackView,
			Actuator: mgr,
			Scenario: *cfg.Scenario,
			Metrics:  ctlMetrics,
			Tracer:   cfg.Tracer,
			Stages:   stages,
			Recorder: cfg.Recorder,
		})
	}

	// Safety auditor: bound to the same views, controllers and planning
	// inputs the live control plane runs with, ticked synchronously on
	// the virtual clock.
	var sampler *tsdb.Sampler
	if cfg.Safety != nil {
		cfg.Safety.Bind(slo.Bindings{
			Clock:            clk,
			Topo:             topo,
			Racks:            managed,
			UPSView:          upsView,
			RackView:         rackView,
			Controllers:      ctls,
			Scenario:         *cfg.Scenario,
			Buffer:           controller.DefaultBuffer(topo),
			AllocatablePower: room.AllocatablePower(),
			Stages:           stages,
		})
		if cfg.Obs != nil {
			sampler = &tsdb.Sampler{Registry: cfg.Obs, Store: cfg.Safety.Store(), Clock: clk}
		}
	}

	// The episode log leads with its replay header: everything the event
	// stream cannot carry (room, scenario, managed racks) pinned up front
	// so cmd/flexreplay can rebuild the controllers' exact PlanInputs.
	if cfg.Recorder != nil {
		hdr := replay.NewHeader("emulation", start, cfg.Scenario.Name, 0, managed)
		hdr.Utilization = cfg.Utilization
		hdr.Seed = cfg.Seed
		for i := range ctls {
			hdr.Controllers = append(hdr.Controllers, fmt.Sprintf("flex-ctl-%d", i+1))
		}
		me, err := hdr.MetaEvent(clk.Now(), "emu")
		if err != nil {
			return nil, fmt.Errorf("emu: encoding replay header: %w", err)
		}
		cfg.Recorder.Emit(me)
	}

	res := &Result{}
	curve := power.EndOfLifeTripCurve
	overFor := make([]time.Duration, len(topo.UPSes))
	var latBase, latThrottled []float64
	firstEnforce := time.Duration(-1)
	shavedAt := time.Duration(-1)

	srTotal, capTotal := 0, 0
	for _, r := range racks {
		switch r.Category {
		case workload.SoftwareRedundant:
			srTotal++
		case workload.NonRedundantCapable:
			capTotal++
		}
	}
	maxShut, maxThrottled := 0, 0

	ticks := int(cfg.Duration / cfg.Tick)
	upsTick := int((1500 * time.Millisecond) / cfg.Tick) // UPS poll cadence
	rackTick := int((2 * time.Second) / cfg.Tick)        // rack poll cadence
	if upsTick < 1 {
		upsTick = 1
	}
	if rackTick < 1 {
		rackTick = 1
	}

	dt := cfg.Tick.Seconds()
	for i := 0; i <= ticks; i++ {
		now := time.Duration(i) * cfg.Tick
		stage := StageSetup
		target := cfg.Utilization
		switch {
		case now < 2*time.Minute:
			stage = StageSetup
			target = cfg.Utilization * (0.25 + 0.75*now.Seconds()/120)
		case now < cfg.FailAt:
			stage = StageNormal
		case now < cfg.RecoverAt:
			stage = StageFailover
		default:
			stage = StageRecovery
		}

		// Failure / recovery events.
		if now == cfg.FailAt {
			inactive[cfg.FailUPS] = true
			if cfg.Recorder != nil {
				cfg.Recorder.Emit(recorder.Event{
					Type:    recorder.TypeUPSFail,
					Time:    clk.Now(),
					Actor:   "emu",
					Subject: topo.UPSes[cfg.FailUPS].Name,
				})
			}
			if cfg.InjectTelemetryFaults {
				for u, lm := range upsMeters {
					if power.UPSID(u) == cfg.FailUPS {
						continue
					}
					// One hard meter failure and one +2% misreading per
					// surviving UPS; the median consensus absorbs both.
					lm.Meters()[0].(*telemetry.SimMeter).SetFailed(true)
					lm.Meters()[1].(*telemetry.SimMeter).SetOffset(
						power.Watts(0.02 * float64(topo.UPSes[u].Capacity)))
				}
			}
		}
		if now == cfg.RecoverAt {
			delete(inactive, cfg.FailUPS)
			if cfg.Recorder != nil {
				cfg.Recorder.Emit(recorder.Event{
					Type:    recorder.TypeUPSRecover,
					Time:    clk.Now(),
					Actor:   "emu",
					Subject: topo.UPSes[cfg.FailUPS].Name,
				})
			}
		}

		// Advance workload dynamics (AR(1) demand around per-category
		// targets). The synthetic benchmarks run at different duty:
		// TeraSort-like batch (software-redundant) near full tilt, the
		// TPC-E-like OLTP (cap-able) close to its flex power, and the
		// non-cap-able racks lower — mixing to the aggregate target
		// (ratios relative to the paper's 80% aggregate setup).
		for _, rs := range sims {
			// target already folds in the setup ramp; ratio folds in the
			// steady-state utilization.
			catTarget := target / cfg.Utilization * ratio[rs.Category]
			if catTarget > 1 {
				catTarget = 1
			}
			theta, sigma := 0.08, 0.020
			rs.demand += theta*(catTarget-rs.demand)*dt + sigma*rng.NormFloat64()*dt
			if rs.demand < 0.1 {
				rs.demand = 0.1
			}
			if rs.demand > 1 {
				rs.demand = 1
			}
		}

		// TPC-E-like latency model for cap-able racks: capping below the
		// demanded power queues requests and inflates tail latency.
		for _, rs := range sims {
			if rs.Category != workload.NonRedundantCapable {
				continue
			}
			st, cap, _ := mgr.State(rs.ID)
			base := 1.0 + 0.02*rng.NormFloat64()
			lat := base
			throttledNow := st == rackmgr.Throttled
			if throttledNow {
				demand := rs.demand * float64(rs.Allocated)
				if demand > float64(cap) && cap > 0 {
					over := (demand - float64(cap)) / float64(cap)
					lat = base * (1 + 0.42*over)
					if inc := (lat/base - 1) * 100; inc > res.WorstIncreasePct {
						res.WorstIncreasePct = inc
					}
				}
			}
			if stage == StageFailover && throttledNow {
				latThrottled = append(latThrottled, lat)
			} else if stage == StageNormal {
				latBase = append(latBase, lat)
			}
		}

		// Telemetry pumps on their cadences.
		wall := clk.Now()
		if i%upsTick == 0 {
			for u, lm := range upsMeters {
				v, err := lm.Read(wall)
				upsView.Update(telemetry.Sample{
					Device: topo.UPSes[u].Name, Power: v, Valid: err == nil, MeasuredAt: wall,
				})
			}
		}
		if i%rackTick == 0 {
			for j, m := range rackMeters {
				v, err := m.Read(wall)
				rackView.Update(telemetry.Sample{
					Device: sims[j].ID, Power: v, Valid: err == nil, MeasuredAt: wall,
				})
			}
		}

		if cfg.Debug && now >= cfg.FailAt && now <= cfg.FailAt+5*time.Second {
			tr := upsTruth()
			fmt.Printf("t=%v truth=[%.3f %.3f %.3f %.3f]MW\n", now,
				float64(tr[0])/1e6, float64(tr[1])/1e6, float64(tr[2])/1e6, float64(tr[3])/1e6)
		}
		// Controllers evaluate.
		for ci, c := range ctls {
			out := c.StepContext(ctx)
			if cfg.Debug && (out.Enforced > 0 || out.Restored > 0 || out.Insufficient) {
				kinds := map[string]int{}
				for _, a := range out.Planned {
					kinds[a.Kind.String()]++
				}
				fmt.Printf("t=%v ctl=%d planned=%v enforced=%d restored=%d insufficient=%v errs=%d\n",
					now, ci, kinds, out.Enforced, out.Restored, out.Insufficient, out.EnforceErrors)
			}
			if out.Enforced > 0 && firstEnforce < 0 && now >= cfg.FailAt {
				firstEnforce = now - cfg.FailAt
			}
			if out.Insufficient {
				res.Insufficient = true
			}
		}

		// Audit tick: the safety auditor sees the post-step world — the
		// same ordering a wall-clock deployment converges to, with the
		// monitoring loop sampling at least as often as the control loop.
		if cfg.Safety != nil {
			if sampler != nil {
				sampler.Tick(wall)
			}
			cfg.Safety.Tick(ctx, wall)
		}

		// Count action extents.
		shut, throttled := 0, 0
		for _, rs := range sims {
			st, _, _ := mgr.State(rs.ID)
			switch {
			case st == rackmgr.Off && rs.Category == workload.SoftwareRedundant:
				shut++
			case st == rackmgr.Throttled && rs.Category == workload.NonRedundantCapable:
				throttled++
			case st != rackmgr.On && rs.Category == workload.NonRedundantNonCapable:
				res.NonCapTouched++
			}
		}
		if shut > maxShut {
			maxShut = shut
		}
		if throttled > maxThrottled {
			maxThrottled = throttled
		}

		// Safety: overload accumulation vs trip curve.
		truth := upsTruth()
		for u := range topo.UPSes {
			if inactive[power.UPSID(u)] {
				overFor[u] = 0
				continue
			}
			capW := topo.UPSes[u].Capacity
			if truth[u] > capW {
				overFor[u] += cfg.Tick
				if overFor[u] > curve.Tolerance(float64(truth[u]/capW)) {
					res.Outage = true
				}
			} else {
				overFor[u] = 0
			}
		}
		if now >= cfg.FailAt && now < cfg.RecoverAt && shavedAt < 0 {
			allUnder := true
			for u := range topo.UPSes {
				if inactive[power.UPSID(u)] {
					continue
				}
				if truth[u] > topo.UPSes[u].Capacity {
					allUnder = false
				}
			}
			if allUnder && now > cfg.FailAt {
				shavedAt = now - cfg.FailAt
			}
		}

		// Record the timeline.
		byCat := map[workload.Category]power.Watts{}
		for _, rs := range sims {
			byCat[rs.Category] += rackPowerOf(rs)
		}
		res.Series = append(res.Series, TimePoint{
			T: now, Stage: stage, UPSPower: truth, RackPower: byCat,
		})

		clk.Advance(cfg.Tick)
	}

	if srTotal > 0 {
		res.SRShutdownFrac = float64(maxShut) / float64(srTotal)
	}
	if capTotal > 0 {
		res.CapThrottledFrac = float64(maxThrottled) / float64(capTotal)
	}
	res.DetectionLatency = firstEnforce
	res.ShaveLatency = shavedAt
	res.BaselineP95 = stats.Percentile(latBase, 95)
	res.ThrottledP95 = stats.Percentile(latThrottled, 95)
	if res.BaselineP95 > 0 {
		res.P95IncreasePct = (res.ThrottledP95/res.BaselineP95 - 1) * 100
	}
	restored := true
	for _, rs := range sims {
		st, _, _ := mgr.State(rs.ID)
		if st != rackmgr.On {
			restored = false
		}
	}
	res.RestoredAll = restored
	return res, nil
}
