package emu

import (
	"context"
	"fmt"
	"testing"
	"time"

	"flex/internal/power"
)

// BenchmarkFleetDetectToShed measures the detect→shed latency of a UPS
// failure as the fleet grows: one placement solved once, replicated
// across 1/10/100 shards on one virtual clock, failure injected into the
// middle room. The benchmark reports the failed room's detect and shed
// latency (virtual-clock seconds) alongside the wall-clock ns/op, and
// fails outright if any iteration breaks the 10s FlexLatencyBudget —
// the budget must hold at 100 rooms, not just 1.
//
// Recorded as BENCH_fleet.json by `make bench-fleet`.
func BenchmarkFleetDetectToShed(b *testing.B) {
	for _, rooms := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("rooms=%d", rooms), func(b *testing.B) {
			var detect, shed time.Duration
			for i := 0; i < b.N; i++ {
				res, err := RunFleet(context.Background(), FleetConfig{
					Rooms:    rooms,
					FailRoom: rooms / 2,
					Seed:     int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.DetectLatency < 0 {
					b.Fatalf("rooms=%d: UPS failure never detected", rooms)
				}
				if res.ShedLatency < 0 || res.ShedLatency > power.FlexLatencyBudget {
					b.Fatalf("rooms=%d: shed latency %v outside the %v budget",
						rooms, res.ShedLatency, power.FlexLatencyBudget)
				}
				if res.CrossRoomDrops != 0 {
					b.Fatalf("rooms=%d: %d cross-room drops, want 0", rooms, res.CrossRoomDrops)
				}
				detect += res.DetectLatency
				shed += res.ShedLatency
			}
			b.ReportMetric(detect.Seconds()/float64(b.N), "detect-s/op")
			b.ReportMetric(shed.Seconds()/float64(b.N), "shed-s/op")
		})
	}
}
