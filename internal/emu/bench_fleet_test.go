package emu

import (
	"context"
	"fmt"
	"testing"
	"time"

	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/obs/slo"
	"flex/internal/power"
)

// BenchmarkFleetDetectToShed measures the detect→shed latency of a UPS
// failure as the fleet grows: one placement solved once, replicated
// across 1/10/100 shards on one virtual clock, failure injected into the
// middle room. The benchmark reports the failed room's detect and shed
// latency (virtual-clock seconds) alongside the wall-clock ns/op, and
// fails outright if any iteration breaks the 10s FlexLatencyBudget —
// the budget must hold at 100 rooms, not just 1.
//
// Recorded as BENCH_fleet.json by `make bench-fleet`.
func BenchmarkFleetDetectToShed(b *testing.B) {
	for _, rooms := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("rooms=%d", rooms), func(b *testing.B) {
			var detect, shed time.Duration
			for i := 0; i < b.N; i++ {
				res, err := RunFleet(context.Background(), FleetConfig{
					Rooms:    rooms,
					FailRoom: rooms / 2,
					Seed:     int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.DetectLatency < 0 {
					b.Fatalf("rooms=%d: UPS failure never detected", rooms)
				}
				if res.ShedLatency < 0 || res.ShedLatency > power.FlexLatencyBudget {
					b.Fatalf("rooms=%d: shed latency %v outside the %v budget",
						rooms, res.ShedLatency, power.FlexLatencyBudget)
				}
				if res.CrossRoomDrops != 0 {
					b.Fatalf("rooms=%d: %d cross-room drops, want 0", rooms, res.CrossRoomDrops)
				}
				detect += res.DetectLatency
				shed += res.ShedLatency
			}
			b.ReportMetric(detect.Seconds()/float64(b.N), "detect-s/op")
			b.ReportMetric(shed.Seconds()/float64(b.N), "shed-s/op")
		})
	}
}

// BenchmarkFleetStageLatency measures the critical-path stage quantiles
// (sample/queue/view/detect/plan/act, virtual-clock seconds) of a
// recorded UPS-failure run as the fleet grows. Each stage's p50 and p99
// ride as custom metrics next to the wall-clock ns/op, so the latency
// attribution is tracked per room count across changes; the benchmark
// fails outright when a stage was never observed or its p99 escapes the
// stage's carve of the 10s budget.
//
// Recorded as BENCH_latency.json by `make bench-latency`.
func BenchmarkFleetStageLatency(b *testing.B) {
	budgets := map[string]float64{}
	for _, stg := range obs.Stages() {
		budgets[stg.String()] = slo.StageBudgets()[stg].Seconds()
	}
	for _, rooms := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("rooms=%d", rooms), func(b *testing.B) {
			p50 := map[string]float64{}
			p99 := map[string]float64{}
			for i := 0; i < b.N; i++ {
				rec := recorder.New(1 << 16)
				res, err := RunFleet(context.Background(), FleetConfig{
					Rooms:    rooms,
					FailRoom: rooms / 2,
					Seed:     int64(i + 1),
					Recorder: rec,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Episodes) == 0 {
					b.Fatalf("rooms=%d: no stitched episodes", rooms)
				}
				for _, st := range res.Stages {
					if st.Count == 0 {
						b.Fatalf("rooms=%d: stage %s never observed", rooms, st.Stage)
					}
					if st.P99 > budgets[st.Stage] {
						b.Fatalf("rooms=%d: stage %s p99 %.3fs over its %.1fs budget carve",
							rooms, st.Stage, st.P99, budgets[st.Stage])
					}
					p50[st.Stage] += st.P50
					p99[st.Stage] += st.P99
				}
			}
			for _, stg := range obs.Stages() {
				name := stg.String()
				b.ReportMetric(p50[name]/float64(b.N), name+"-p50-s")
				b.ReportMetric(p99[name]/float64(b.N), name+"-p99-s")
			}
		})
	}
}
