package emu

import (
	"context"
	"testing"
	"time"

	"flex/internal/obs"
	"flex/internal/power"
)

// quickObsConfig compresses the timeline like flexmon -quick so the test
// stays fast; the virtual clock makes every recorded latency exact.
func quickObsConfig(reg *obs.Registry, tracer *obs.Tracer) Config {
	return Config{
		Tick:      time.Second,
		FailAt:    4 * time.Minute,
		RecoverAt: 7 * time.Minute,
		Duration:  10 * time.Minute,
		Obs:       reg,
		Tracer:    tracer,
	}
}

func findSnapshot(t *testing.T, reg *obs.Registry, name string) obs.Snapshot {
	t.Helper()
	for _, s := range reg.Snapshots() {
		if s.Name == name && len(s.Labels) == 0 {
			return s
		}
	}
	t.Fatalf("metric %s not found in registry", name)
	return obs.Snapshot{}
}

// TestEmulationShedLatencyWithinBudget injects the §V-C UPS failure under a
// virtual clock and asserts, from the shed-latency histogram the
// controllers populated, that every detection→enforcement episode finished
// inside the 10-second UPS overload tolerance.
func TestEmulationShedLatencyWithinBudget(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(64)
	res, err := Run(context.Background(), quickObsConfig(reg, tracer))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outage {
		t.Fatal("emulation suffered a cascading outage")
	}

	shed := findSnapshot(t, reg, "flex_controller_shed_latency_seconds")
	if shed.Count == 0 {
		t.Fatal("shed-latency histogram recorded no episodes")
	}
	budget := power.FlexLatencyBudget.Seconds()
	withinBudget := uint64(0)
	for _, b := range shed.Buckets {
		if b.Le <= budget {
			withinBudget = b.Count // cumulative; last bucket ≤ budget wins
		}
	}
	if withinBudget != shed.Count {
		t.Errorf("shed latency: %d/%d episodes within the %.0fs budget (p99=%.2fs)",
			withinBudget, shed.Count, budget, shed.Quantile(0.99))
	}

	first := findSnapshot(t, reg, "flex_controller_first_action_latency_seconds")
	if first.Count == 0 {
		t.Error("first-action latency histogram recorded nothing")
	}

	episodes := findSnapshot(t, reg, "flex_controller_overdraw_episodes_total")
	if episodes.Value < 1 {
		t.Errorf("overdraw episodes = %v, want >= 1", episodes.Value)
	}
	enforced := findSnapshot(t, reg, "flex_controller_enforced_total")
	if enforced.Value < 1 {
		t.Errorf("enforced actions = %v, want >= 1", enforced.Value)
	}

	// The detect→plan→act pipeline must show up in the trace ring with all
	// three stages on at least one acted trace.
	traces := tracer.Recent()
	if len(traces) == 0 {
		t.Fatal("tracer recorded no overdraw traces")
	}
	found := false
	for _, tr := range traces {
		stages := map[string]bool{}
		for _, sp := range tr.Spans {
			stages[sp.Name] = true
		}
		if stages["detect"] && stages["plan"] && stages["act"] {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no trace carries detect+plan+act spans; got %d traces", len(traces))
	}
}

// TestEmulationMetricsDisabledByDefault keeps the nil-Metrics path honest:
// a run without a registry must behave identically and not panic.
func TestEmulationMetricsDisabledByDefault(t *testing.T) {
	res, err := Run(context.Background(), quickObsConfig(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outage {
		t.Fatal("emulation suffered a cascading outage")
	}
}
