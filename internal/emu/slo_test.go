package emu

import (
	"context"
	"strings"
	"testing"
	"time"

	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/obs/slo"
	"flex/internal/obs/tsdb"
)

// TestEmulationSafetyAuditor is the end-to-end acceptance run: a single
// simulated UPS failure on the virtual clock with the continuous safety
// auditor attached. /slo must report budget burn for the open episode,
// /healthz must flip ready→degraded and back, and the slo-breach /
// slo-recover events must be causally linked and carry the episode ID.
func TestEmulationSafetyAuditor(t *testing.T) {
	reg := obs.NewRegistry()
	// A full quick run emits far more telemetry events than the default
	// ring retains; size it so the mid-run SLO events survive to the end.
	rec := recorder.New(1 << 18)
	aud := slo.NewAuditor(slo.Config{
		Store:    tsdb.NewStore(tsdb.Options{}),
		Recorder: rec,
		// The emulator pumps UPS telemetry every 1.5s and rack telemetry
		// every 2s; freshness thresholds must sit above the pump cadence.
		UPSFreshness:  3 * time.Second,
		RackFreshness: 4 * time.Second,
	})
	cfg := quickObsConfig(reg, nil)
	cfg.Recorder = rec
	cfg.Safety = aud
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outage {
		t.Fatal("emulation suffered a cascading outage")
	}
	if aud.Ticks() == 0 {
		t.Fatal("auditor never ticked")
	}

	// Health flipped degraded during the episode and recovered — and
	// never went unsafe (the shed stayed inside the 10s budget).
	var sawDegrade, sawRecover bool
	for _, tr := range aud.Transitions() {
		if tr.To == slo.StateUnsafe {
			t.Fatalf("health went unsafe: %+v", tr)
		}
		if tr.From == slo.StateReady && tr.To == slo.StateDegraded {
			sawDegrade = true
		}
		if sawDegrade && tr.From == slo.StateDegraded && tr.To == slo.StateReady {
			sawRecover = true
		}
	}
	if !sawDegrade || !sawRecover {
		t.Fatalf("health transitions missed the ready→degraded→ready flip: %+v", aud.Transitions())
	}
	if got := aud.Health(); got.State != slo.StateReady {
		t.Fatalf("final health = %v (%v), want ready", got.State, got.Reasons)
	}

	// The budget-burn series recorded real burn during the episode but
	// the budget was never exhausted.
	store := aud.Store()
	burn, ok := store.Lookup(slo.SeriesBudgetBurn)
	if !ok {
		t.Fatal("budget-burn series missing")
	}
	var maxBurn float64
	for _, b := range burn.Buckets(tsdb.Tier10s) {
		if b.Max > maxBurn {
			maxBurn = b.Max
		}
	}
	if maxBurn <= 0 || maxBurn >= 1 {
		t.Fatalf("peak budget burn = %v, want in (0,1)", maxBurn)
	}

	// Breach and recover events for the shed-budget objective are
	// causally paired and carry the overdraw episode ID.
	breaches := rec.Query(recorder.Filter{Type: recorder.TypeSLOBreach, Subject: slo.ObjShedBudget})
	recovers := rec.Query(recorder.Filter{Type: recorder.TypeSLORecover, Subject: slo.ObjShedBudget})
	if len(breaches) == 0 || len(recovers) == 0 {
		t.Fatalf("shed-budget events: %d breaches, %d recovers, want >=1 each", len(breaches), len(recovers))
	}
	if breaches[0].Episode == 0 {
		t.Fatal("breach event carries no episode ID")
	}
	if recovers[0].Cause != breaches[0].Seq {
		t.Fatalf("recover.Cause = %d, want breach seq %d", recovers[0].Cause, breaches[0].Seq)
	}
	// The episode the breach cites really exists in the recorder.
	if evs := rec.Query(recorder.Filter{Episode: breaches[0].Episode, Type: recorder.TypeOverdrawDetect}); len(evs) == 0 {
		t.Fatalf("episode %d has no overdraw-detect event", breaches[0].Episode)
	}

	// The what-if probe ran and found steady state feasible.
	st := aud.Status()
	if st.Probe.Rounds == 0 {
		t.Fatal("probe never ran")
	}
	if st.Probe.Failures != 0 {
		t.Fatalf("probe failures = %d (infeasible: %v), want 0", st.Probe.Failures, st.Probe.Infeasible)
	}
	if st.Probe.CleanRounds == 0 {
		t.Fatal("no probe-fail-free steady state at end of run")
	}

	// Derived headroom series exist per UPS, and the registry sampler
	// scraped controller metrics into the same store.
	var haveHeadroom, haveScraped bool
	for _, name := range store.Names() {
		if strings.HasPrefix(name, slo.SeriesUPSHeadroom+";") {
			haveHeadroom = true
		}
		if strings.HasPrefix(name, "flex_controller_") {
			haveScraped = true
		}
	}
	if !haveHeadroom {
		t.Fatalf("no per-UPS headroom series; have %v", store.Names())
	}
	if !haveScraped {
		t.Fatalf("sampler scraped no controller metrics; have %v", store.Names())
	}
}
