package emu

import (
	"context"
	"testing"
	"time"

	"flex/internal/obs/slo"
	"flex/internal/power"
)

// TestRunFleetShedsWithinBudget is the fleet smoke: a 10-room emulation
// where one room's UPS fails. The failed room must detect and shed inside
// the 10s FlexLatencyBudget, no room may trip, and the aggregate stranded
// power must equal the sum of per-room Eq. 5.
func TestRunFleetShedsWithinBudget(t *testing.T) {
	res, err := RunFleet(context.Background(), FleetConfig{Rooms: 10, FailRoom: 3, FailUPS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectLatency < 0 {
		t.Fatal("UPS failure never produced a corrective action")
	}
	if res.ShedLatency < 0 || res.ShedLatency > power.FlexLatencyBudget {
		t.Fatalf("shed latency = %v, want within %v", res.ShedLatency, power.FlexLatencyBudget)
	}
	if res.Outage {
		t.Fatal("a UPS outlasted its trip curve")
	}
	if res.CrossRoomDrops != 0 {
		t.Fatalf("unsaturated rooms dropped %d samples, want 0", res.CrossRoomDrops)
	}
	if got, want := res.Snapshot.StrandedPower, power.Watts(10)*res.PerRoomStranded; got != want {
		t.Fatalf("aggregate stranded = %v, want 10 × %v = %v", got, res.PerRoomStranded, want)
	}
	if len(res.Snapshot.Rooms) != 10 {
		t.Fatalf("snapshot has %d rooms, want 10", len(res.Snapshot.Rooms))
	}
	// Every shard saw telemetry within freshness by the final tick.
	for _, room := range res.Snapshot.Rooms {
		if room.TelemetryAge < 0 {
			t.Fatalf("room %s never received telemetry", room.Name)
		}
		if room.Pumped == 0 || room.Steps == 0 {
			t.Fatalf("room %s: pumped=%d steps=%d, want both > 0", room.Name, room.Pumped, room.Steps)
		}
	}
}

// TestRunFleetShardIsolation saturates one room's ingest queue while a
// different room's UPS fails: backpressure must engage (drops counted) in
// the flooded room only, and the failed room must still shed within the
// 10s budget — zero cross-shard stall.
func TestRunFleetShardIsolation(t *testing.T) {
	res, err := RunFleet(context.Background(), FleetConfig{
		Rooms:          4,
		FailRoom:       0,
		FailUPS:        2,
		SaturateRoom:   1,
		SaturateFactor: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SaturatedDrops == 0 {
		t.Fatal("flooded shard dropped nothing; backpressure not engaged")
	}
	if res.CrossRoomDrops != 0 {
		t.Fatalf("non-flooded rooms dropped %d samples, want 0", res.CrossRoomDrops)
	}
	if res.ShedLatency < 0 || res.ShedLatency > power.FlexLatencyBudget {
		t.Fatalf("shed latency = %v under neighbor saturation, want within %v",
			res.ShedLatency, power.FlexLatencyBudget)
	}
	if res.Outage {
		t.Fatal("a UPS outlasted its trip curve")
	}
	// The flooded room keeps functioning on its newest samples: drop-oldest
	// sheds stale data, not the room's health.
	for _, room := range res.Snapshot.Rooms {
		if room.Name == "room-001" {
			if room.State == slo.StateUnsafe {
				t.Fatalf("flooded room went unsafe: %+v", room)
			}
			if room.Dropped == 0 {
				t.Fatal("flooded room reports no drops in snapshot")
			}
		}
	}
}

// TestRunFleetValidation rejects an out-of-range FailRoom.
func TestRunFleetValidation(t *testing.T) {
	if _, err := RunFleet(context.Background(), FleetConfig{Rooms: 2, FailRoom: 5}); err == nil {
		t.Fatal("out-of-range FailRoom accepted")
	}
}

// TestRunFleetSingleRoom exercises the degenerate 1-room fleet — the
// configuration the per-room-count benchmark starts from.
func TestRunFleetSingleRoom(t *testing.T) {
	res, err := RunFleet(context.Background(), FleetConfig{Rooms: 1, Duration: 40 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedLatency < 0 || res.ShedLatency > power.FlexLatencyBudget {
		t.Fatalf("shed latency = %v, want within %v", res.ShedLatency, power.FlexLatencyBudget)
	}
}
