package emu

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"flex/internal/clock"
	"flex/internal/fleet"
	"flex/internal/impact"
	"flex/internal/milp"
	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/placement"
	"flex/internal/power"
	"flex/internal/rackmgr"
	"flex/internal/sim"
	"flex/internal/telemetry"
	"flex/internal/workload"
)

// FleetConfig drives RunFleet: N identical paper rooms on one virtual
// clock, each a fleet shard with its own controller and bounded ingest
// queue, plus the fleet aggregator. Zero values select a 10-room, 60s
// compressed timeline.
type FleetConfig struct {
	// Rooms is the number of UPS fault domains (default 10).
	Rooms int
	// Utilization is the steady-state aggregate utilization (default 0.80).
	Utilization float64
	// FailRoom is the room index whose UPS fails (default 0).
	FailRoom int
	// FailUPS is the UPS to fail inside FailRoom.
	FailUPS power.UPSID
	// FailAt and Duration stage the compressed timeline (defaults 20s /
	// 60s — the fleet run measures detect→shed, not the full Figure 13
	// recovery arc).
	FailAt, Duration time.Duration
	// Tick is the simulation step (default 500ms).
	Tick time.Duration
	// Controllers is the number of controller primaries per shard
	// (default 1).
	Controllers int
	// QueueDepth is the per-shard ingest buffer (default 1024).
	QueueDepth int
	// SaturateRoom and SaturateFactor, when SaturateFactor > 0, flood
	// SaturateRoom's rack ingest queue with SaturateFactor redundant
	// copies of every rack batch — the backpressure stress: the flooded
	// shard must drop (counted) while every other shard stays unaffected.
	// SaturateFactor 0 disables the flood.
	SaturateRoom   int
	SaturateFactor int
	// Seed drives workload dynamics.
	Seed int64
	// TraceSeed drives the placed demand trace.
	TraceSeed int64
	// Obs, when non-nil, instruments the run; fleet metrics, controller
	// metrics, and ingest drop counters all register here. When nil the
	// run still instruments itself on a private registry so the latency
	// waterfalls (Episodes, Stages) are always produced.
	Obs *obs.Registry
	// Recorder, when non-nil, wires the flight recorder through the
	// fleet: controllers allocate episode ids and emit causal chains, so
	// stage exemplars and trace roots resolve to recorder events.
	Recorder *recorder.Recorder
	// Attach, when non-nil, is called with the live fleet after every
	// room is added and before the first tick — the hook flexsim uses to
	// mount /fleet and /fleet/traces while the emulation runs.
	Attach func(*fleet.Fleet)
}

func (c *FleetConfig) fillDefaults() {
	if c.Rooms == 0 {
		c.Rooms = 10
	}
	if c.Utilization == 0 {
		c.Utilization = 0.80
	}
	if c.FailAt == 0 {
		c.FailAt = 20 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.Tick == 0 {
		c.Tick = 500 * time.Millisecond
	}
	if c.Controllers == 0 {
		c.Controllers = 1
	}
	if c.TraceSeed == 0 {
		c.TraceSeed = 9
	}
}

// FleetResult summarizes a fleet run.
type FleetResult struct {
	Rooms int
	// DetectLatency is from the UPS failure to the failed room's first
	// enforced corrective action.
	DetectLatency time.Duration
	// ShedLatency is from the UPS failure until every surviving UPS in
	// the failed room is back below rated capacity (the 10s budget).
	ShedLatency time.Duration
	// Outage reports whether any UPS in any room outlasted its trip-curve
	// tolerance.
	Outage bool
	// SaturatedDrops counts ingest-queue evictions in the saturated room
	// (0 when no room was saturated).
	SaturatedDrops int
	// CrossRoomDrops counts evictions in every *other* room — the
	// isolation criterion demands 0.
	CrossRoomDrops int
	// PerRoomStranded is each room's placement Eq. 5 stranded power (the
	// rooms are identical).
	PerRoomStranded power.Watts
	// Snapshot is the fleet aggregate after the final tick.
	Snapshot fleet.Snapshot
	// Episodes are the stitched per-episode stage waterfalls (newest
	// first) — what /fleet/traces serves on a live fleet.
	Episodes []fleet.EpisodeTrace
	// Stages digests the fleet's per-stage latency histograms.
	Stages []fleet.StageSummary
}

// fleetRoom is one room's live emulation state.
type fleetRoom struct {
	shard     *fleet.Shard
	mgr       *rackmgr.Manager
	sims      []*rackSim
	inactive  map[power.UPSID]bool
	overFor   []time.Duration
	upsBatch  []telemetry.Sample
	rackBatch []telemetry.Sample
}

// RunFleet executes the multi-room emulation: one Flex-Offline placement
// solved once and replicated across cfg.Rooms shards, telemetry batched
// into per-shard queues on the paper's cadences, every shard pumped and
// stepped each tick of one shared virtual clock, and a UPS failure
// injected into one room. The failed room must detect and shed inside the
// 10s FlexLatencyBudget regardless of how many rooms ride alongside — and
// regardless of a neighbor's queue being saturated.
func RunFleet(ctx context.Context, cfg FleetConfig) (*FleetResult, error) {
	cfg.fillDefaults()
	if cfg.FailRoom < 0 || cfg.FailRoom >= cfg.Rooms {
		return nil, fmt.Errorf("emu: FailRoom %d out of range [0,%d)", cfg.FailRoom, cfg.Rooms)
	}

	// Solve the placement once; the fleet replicates one paper room N
	// times. (A real fleet solves per room; the emulation measures the
	// online layer, not the solver.)
	room := placement.EmulationRoom()
	topo := room.Topo
	tcfg := workload.DefaultTraceConfig(topo.ProvisionedPower())
	tcfg.WorkloadsPerCategory = 1
	tcfg.FlexPowerMin, tcfg.FlexPowerMax = 0.845, 0.855
	trace, err := workload.GenerateTrace(tcfg, rand.New(rand.NewSource(cfg.TraceSeed)))
	if err != nil {
		return nil, err
	}
	var solverMetrics *milp.Metrics
	if cfg.Obs != nil {
		solverMetrics = milp.NewMetrics(cfg.Obs)
	}
	pl, err := placement.FlexOffline{BatchFraction: 0.33, MaxNodes: 150, SolverMetrics: solverMetrics}.Place(ctx, room, trace)
	if err != nil {
		return nil, err
	}
	protoRacks := sim.ExpandRacks(pl)
	if len(protoRacks) == 0 {
		return nil, fmt.Errorf("emu: nothing placed")
	}
	managed := sim.ManagedRacks(protoRacks)
	stranded := pl.StrandedPower()

	start := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewVirtual(start)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Always instrument: the latency waterfalls (Episodes, Stages) come
	// from the fleet's tracer and stage histograms, which only exist with
	// a registry — fall back to a private one when the caller brought
	// none.
	obsReg := cfg.Obs
	if obsReg == nil {
		obsReg = obs.NewRegistry()
	}
	fl := fleet.New(fleet.Config{
		Name:       "emu-fleet",
		Clock:      clk,
		QueueDepth: cfg.QueueDepth,
		Obs:        obsReg,
		Recorder:   cfg.Recorder,
	})

	// Demand normalization, as in the single-room run.
	ratio := map[workload.Category]float64{
		workload.SoftwareRedundant:      0.90 / 0.80,
		workload.NonRedundantCapable:    0.83 / 0.80,
		workload.NonRedundantNonCapable: 0.67 / 0.80,
	}
	var weighted float64
	for _, r := range protoRacks {
		weighted += ratio[r.Category] * float64(r.Allocated)
	}
	norm := cfg.Utilization * float64(topo.ProvisionedPower()) / weighted
	for c := range ratio {
		ratio[c] *= norm
	}

	ids := make([]string, len(protoRacks))
	for i, r := range protoRacks {
		ids[i] = r.ID
	}
	sc := impact.Realistic1()
	rooms := make([]*fleetRoom, cfg.Rooms)
	for i := range rooms {
		name := fmt.Sprintf("room-%03d", i)
		mgr := rackmgr.NewManager(clk, ids)
		shard, err := fl.AddRoom(fleet.RoomConfig{
			Name:        name,
			Topo:        topo,
			Racks:       managed,
			Actuator:    mgr,
			Scenario:    sc,
			Controllers: cfg.Controllers,
			Stranded:    stranded,
			Allocatable: room.AllocatablePower(),
			Interval:    cfg.Tick,
		})
		if err != nil {
			return nil, err
		}
		fr := &fleetRoom{
			shard:     shard,
			mgr:       mgr,
			sims:      make([]*rackSim, len(protoRacks)),
			inactive:  map[power.UPSID]bool{},
			overFor:   make([]time.Duration, len(topo.UPSes)),
			upsBatch:  make([]telemetry.Sample, 0, len(topo.UPSes)),
			rackBatch: make([]telemetry.Sample, 0, len(protoRacks)),
		}
		for j, r := range protoRacks {
			fr.sims[j] = &rackSim{Rack: r, demand: 0.2}
		}
		rooms[i] = fr
	}
	if cfg.Attach != nil {
		cfg.Attach(fl)
	}

	rackPowerOf := func(fr *fleetRoom, rs *rackSim) power.Watts {
		st, cap, _ := fr.mgr.State(rs.ID)
		switch st {
		case rackmgr.Off:
			return 0
		case rackmgr.Throttled:
			p := power.Watts(rs.demand * float64(rs.Allocated))
			if p > cap {
				p = cap
			}
			return p
		default:
			return power.Watts(rs.demand * float64(rs.Allocated))
		}
	}
	upsTruth := func(fr *fleetRoom) []power.Watts {
		load := power.NewPairLoad(topo)
		for _, rs := range fr.sims {
			load[rs.Pair] += rackPowerOf(fr, rs)
		}
		loads := make([]power.Watts, len(topo.UPSes))
		for _, p := range topo.Pairs {
			w := load[p.ID]
			a, b := p.UPSes[0], p.UPSes[1]
			switch {
			case fr.inactive[a] && fr.inactive[b]:
			case fr.inactive[a]:
				loads[b] += w
			case fr.inactive[b]:
				loads[a] += w
			default:
				loads[a] += w / 2
				loads[b] += w / 2
			}
		}
		return loads
	}

	res := &FleetResult{Rooms: cfg.Rooms, PerRoomStranded: stranded}
	curve := power.EndOfLifeTripCurve
	firstEnforce := time.Duration(-1)
	shavedAt := time.Duration(-1)

	ticks := int(cfg.Duration / cfg.Tick)
	upsTick := int((1500 * time.Millisecond) / cfg.Tick)
	rackTick := int((2 * time.Second) / cfg.Tick)
	if upsTick < 1 {
		upsTick = 1
	}
	if rackTick < 1 {
		rackTick = 1
	}
	// Setup ramp: demand climbs for the first quarter of the pre-failure
	// window, then holds at the target.
	ramp := cfg.FailAt / 2
	dt := cfg.Tick.Seconds()

	for i := 0; i <= ticks; i++ {
		now := time.Duration(i) * cfg.Tick
		target := cfg.Utilization
		if now < ramp {
			target = cfg.Utilization * (0.5 + 0.5*now.Seconds()/ramp.Seconds())
		}

		if now == cfg.FailAt {
			rooms[cfg.FailRoom].inactive[cfg.FailUPS] = true
		}

		// Workload dynamics, every room.
		for _, fr := range rooms {
			for _, rs := range fr.sims {
				catTarget := target / cfg.Utilization * ratio[rs.Category]
				if catTarget > 1 {
					catTarget = 1
				}
				theta, sigma := 0.30, 0.015
				rs.demand += theta*(catTarget-rs.demand)*dt + sigma*rng.NormFloat64()*dt
				if rs.demand < 0.1 {
					rs.demand = 0.1
				}
				if rs.demand > 1 {
					rs.demand = 1
				}
			}
		}

		// Telemetry on the paper's cadences, batched per room.
		wall := clk.Now()
		if i%upsTick == 0 {
			for _, fr := range rooms {
				truth := upsTruth(fr)
				fr.upsBatch = fr.upsBatch[:0]
				for u := range topo.UPSes {
					fr.upsBatch = append(fr.upsBatch, telemetry.Sample{
						Device: topo.UPSes[u].Name, Power: truth[u], Valid: true,
						MeasuredAt: wall, PublishedAt: wall,
					})
				}
				fr.shard.IngestUPS(fr.upsBatch)
			}
		}
		if i%rackTick == 0 {
			for ri, fr := range rooms {
				fr.rackBatch = fr.rackBatch[:0]
				for _, rs := range fr.sims {
					fr.rackBatch = append(fr.rackBatch, telemetry.Sample{
						Device: rs.ID, Power: rackPowerOf(fr, rs), Valid: true,
						MeasuredAt: wall, PublishedAt: wall,
					})
				}
				fr.shard.IngestRacks(fr.rackBatch)
				if cfg.SaturateFactor > 0 && ri == cfg.SaturateRoom {
					// Backpressure stress: flood the queue with redundant
					// copies; drop-oldest must absorb it here and nowhere
					// else.
					for k := 0; k < cfg.SaturateFactor; k++ {
						fr.shard.IngestRacks(fr.rackBatch)
					}
				}
			}
		}

		// Every shard pumps and steps on the shared clock. (The emulation
		// drives shards synchronously for determinism; live deployments
		// run Shard.Start loops — same pump/step path.)
		for ri, fr := range rooms {
			fr.shard.Pump()
			_, enforced, _ := fr.shard.StepContext(ctx)
			if ri == cfg.FailRoom && enforced > 0 && firstEnforce < 0 && now >= cfg.FailAt {
				firstEnforce = now - cfg.FailAt
			}
		}

		// Trip-curve safety in every room; shed point for the failed one.
		for ri, fr := range rooms {
			truth := upsTruth(fr)
			for u := range topo.UPSes {
				if fr.inactive[power.UPSID(u)] {
					fr.overFor[u] = 0
					continue
				}
				capW := topo.UPSes[u].Capacity
				if truth[u] > capW {
					fr.overFor[u] += cfg.Tick
					if fr.overFor[u] > curve.Tolerance(float64(truth[u]/capW)) {
						res.Outage = true
					}
				} else {
					fr.overFor[u] = 0
				}
			}
			if ri == cfg.FailRoom && now > cfg.FailAt && shavedAt < 0 {
				allUnder := true
				for u := range topo.UPSes {
					if fr.inactive[power.UPSID(u)] {
						continue
					}
					if truth[u] > topo.UPSes[u].Capacity {
						allUnder = false
					}
				}
				if allUnder {
					shavedAt = now - cfg.FailAt
				}
			}
		}

		clk.Advance(cfg.Tick)
	}

	res.DetectLatency = firstEnforce
	res.ShedLatency = shavedAt
	for ri, fr := range rooms {
		if cfg.SaturateFactor > 0 && ri == cfg.SaturateRoom {
			res.SaturatedDrops = fr.shard.Dropped()
		} else {
			res.CrossRoomDrops += fr.shard.Dropped()
		}
	}
	res.Snapshot = fl.AggregateOnce(clk.Now())
	res.Episodes = fl.EpisodeTraces(0)
	res.Stages = fl.StageSummaries()
	return res, nil
}
