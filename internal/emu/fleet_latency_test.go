package emu

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"flex/internal/fleet"
	"flex/internal/obs"
	"flex/internal/obs/recorder"
	"flex/internal/obs/slo"
)

// TestFleetLatencyAttribution is the reconciliation contract of the
// latency waterfalls: a recorded 10-room run must stitch the failed
// room's overdraw episode into a waterfall whose per-stage totals tile
// the episode span, the episode span must reconcile with the measured
// detect→shed latency to within one telemetry cadence, every stage p99
// must sit inside its carve of the 10s budget, and every stage exemplar
// must resolve to a real flight-recorder event.
func TestFleetLatencyAttribution(t *testing.T) {
	rec := recorder.New(1 << 16)
	res, err := RunFleet(context.Background(), FleetConfig{
		Rooms: 10, FailRoom: 4, FailUPS: 1, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stage digests: in timeline order, observed, inside the budget carve.
	if len(res.Stages) != int(obs.NumStages) {
		t.Fatalf("got %d stage digests, want %d", len(res.Stages), obs.NumStages)
	}
	budgets := slo.StageBudgets()
	for i, stg := range obs.Stages() {
		st := res.Stages[i]
		if st.Stage != stg.String() {
			t.Fatalf("stage %d = %q, want %q (timeline order)", i, st.Stage, stg)
		}
		if st.Count == 0 {
			t.Fatalf("stage %s never observed", st.Stage)
		}
		if b := budgets[stg].Seconds(); st.P99 > b {
			t.Fatalf("stage %s p99 %.3fs over its %.1fs budget carve", st.Stage, st.P99, b)
		}
		if st.Exemplar == nil {
			t.Fatalf("stage %s has no exemplar", st.Stage)
		}
		if st.Exemplar.Episode == 0 || st.Exemplar.Event == 0 {
			t.Fatalf("stage %s exemplar not joined to the recorder: %+v", st.Stage, st.Exemplar)
		}
		evs := rec.Query(recorder.Filter{MinSeq: st.Exemplar.Event, MaxSeq: st.Exemplar.Event})
		if len(evs) != 1 {
			t.Fatalf("stage %s exemplar event %d not found in the recorder", st.Stage, st.Exemplar.Event)
		}
		if evs[0].Episode != st.Exemplar.Episode {
			t.Fatalf("stage %s exemplar event %d belongs to episode %d, exemplar says %d",
				st.Stage, st.Exemplar.Event, evs[0].Episode, st.Exemplar.Episode)
		}
	}
	// The aggregator folds the same digests into the fleet snapshot.
	if len(res.Snapshot.Stages) != int(obs.NumStages) {
		t.Fatalf("snapshot carries %d stage digests, want %d", len(res.Snapshot.Stages), obs.NumStages)
	}

	// The failed room's stitched waterfall.
	var ep *fleet.EpisodeTrace
	for i := range res.Episodes {
		if res.Episodes[i].Room == "room-004" {
			ep = &res.Episodes[i]
			break
		}
	}
	if ep == nil {
		t.Fatalf("no stitched episode for room-004 in %d episodes", len(res.Episodes))
	}
	if ep.Root == 0 {
		t.Fatal("failed room's episode has no recorder root")
	}
	if chain := rec.Query(recorder.Filter{Episode: ep.Episode}); len(chain) == 0 {
		t.Fatalf("episode %d resolves to no recorder events", ep.Episode)
	}
	var sum float64
	for _, v := range ep.TotalsSeconds {
		sum += v
	}
	if math.Abs(sum-ep.TotalSeconds) > 1e-6 {
		t.Fatalf("stage totals %.6fs do not tile the %.6fs episode span", sum, ep.TotalSeconds)
	}
	if d := math.Abs(res.ShedLatency.Seconds() - ep.TotalSeconds); d > 2.5 {
		t.Fatalf("episode span %.3fs vs measured shed latency %v: off by %.3fs, want within 2.5s",
			ep.TotalSeconds, res.ShedLatency, d)
	}
	// Spans are offset-ordered and stay inside the episode.
	for _, sp := range ep.Stages {
		if sp.OffsetSeconds < 0 || sp.OffsetSeconds+sp.DurationSeconds > ep.TotalSeconds+1e-6 {
			t.Fatalf("span %+v escapes the [0, %.3fs] episode window", sp, ep.TotalSeconds)
		}
	}
}

// TestFleetTracesHandler drives a recorded fleet run, then serves the
// live fleet's /fleet/traces endpoint and checks the JSON shape plus the
// ?episode= and ?limit= filters.
func TestFleetTracesHandler(t *testing.T) {
	var fl *fleet.Fleet
	rec := recorder.New(1 << 16)
	res, err := RunFleet(context.Background(), FleetConfig{
		Rooms: 3, FailRoom: 1, Recorder: rec,
		Attach: func(f *fleet.Fleet) { fl = f },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fl == nil {
		t.Fatal("Attach never ran")
	}
	if len(res.Episodes) == 0 {
		t.Fatal("run produced no episodes")
	}

	srv := httptest.NewServer(fl.TracesHandler())
	defer srv.Close()

	get := func(url string) (struct {
		Episodes []fleet.EpisodeTrace `json:"episodes"`
		Stages   []fleet.StageSummary `json:"stages"`
	}, int) {
		var out struct {
			Episodes []fleet.EpisodeTrace `json:"episodes"`
			Stages   []fleet.StageSummary `json:"stages"`
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("%s: %v", url, err)
			}
		}
		return out, resp.StatusCode
	}

	full, code := get(srv.URL)
	if code != http.StatusOK {
		t.Fatalf("GET /fleet/traces = %d", code)
	}
	if len(full.Episodes) != len(res.Episodes) {
		t.Fatalf("handler served %d episodes, run produced %d", len(full.Episodes), len(res.Episodes))
	}
	if len(full.Stages) != int(obs.NumStages) {
		t.Fatalf("handler served %d stage digests, want %d", len(full.Stages), obs.NumStages)
	}

	want := res.Episodes[0].Episode
	one, code := get(fmt.Sprintf("%s?episode=%d", srv.URL, want))
	if code != http.StatusOK {
		t.Fatalf("GET ?episode=%d = %d", want, code)
	}
	if len(one.Episodes) != 1 || one.Episodes[0].Episode != want {
		t.Fatalf("?episode=%d returned %+v", want, one.Episodes)
	}

	lim, code := get(srv.URL + "?limit=1")
	if code != http.StatusOK || len(lim.Episodes) != 1 {
		t.Fatalf("?limit=1 returned %d episodes (status %d), want 1", len(lim.Episodes), code)
	}
	if _, code := get(srv.URL + "?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("?limit=bogus = %d, want 400", code)
	}
	if _, code := get(srv.URL + "?episode=bogus"); code != http.StatusBadRequest {
		t.Fatalf("?episode=bogus = %d, want 400", code)
	}
}
