package emu

import (
	"context"
	"testing"
	"time"

	"flex/internal/impact"
	"flex/internal/power"
	"flex/internal/workload"
)

func extreme2() impact.Scenario { return impact.Extreme2() }

// runShort runs a compressed emulation to keep unit tests fast: 1s ticks,
// failure at 4 minutes, recovery at 7, 10 minutes total.
func runShort(t *testing.T, mutate func(*Config)) *Result {
	t.Helper()
	cfg := Config{
		Tick:      time.Second,
		FailAt:    4 * time.Minute,
		RecoverAt: 7 * time.Minute,
		Duration:  10 * time.Minute,
		Seed:      1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEmulationLifecycle(t *testing.T) {
	res := runShort(t, nil)

	// No cascading failure, ever.
	if res.Outage {
		t.Fatal("emulation cascaded into an outage")
	}
	// Corrective actions happened and touched only permissible racks.
	if res.SRShutdownFrac <= 0 {
		t.Error("no software-redundant racks were shut down")
	}
	if res.CapThrottledFrac <= 0 {
		t.Error("no cap-able racks were throttled")
	}
	if res.NonCapTouched != 0 {
		t.Errorf("non-cap-able racks touched: %d", res.NonCapTouched)
	}
	// Detection + shaving inside the 10-second Flex budget.
	if res.DetectionLatency < 0 {
		t.Fatal("no corrective action was enforced")
	}
	if res.ShaveLatency < 0 || res.ShaveLatency > power.FlexLatencyBudget {
		t.Errorf("shave latency %v outside the 10s budget", res.ShaveLatency)
	}
	// Everything restored after recovery.
	if !res.RestoredAll {
		t.Error("racks left unrestored at the end")
	}
	if res.Insufficient {
		t.Error("Algorithm 1 ran out of shaveable power at 80% utilization")
	}
}

func TestEmulationTimelineShape(t *testing.T) {
	res := runShort(t, nil)
	if len(res.Series) == 0 {
		t.Fatal("empty series")
	}
	stages := map[string]bool{}
	for _, p := range res.Series {
		stages[p.Stage] = true
	}
	for _, s := range []string{StageSetup, StageNormal, StageFailover, StageRecovery} {
		if !stages[s] {
			t.Errorf("stage %s missing from timeline", s)
		}
	}
	// During failover the failed UPS carries no load.
	var failoverSeen bool
	for _, p := range res.Series {
		if p.Stage == StageFailover {
			failoverSeen = true
			if p.UPSPower[0] != 0 {
				t.Fatalf("failed UPS carries %v during failover", p.UPSPower[0])
			}
		}
	}
	if !failoverSeen {
		t.Fatal("no failover points")
	}
	// Normal-operation utilization approaches the 80% target.
	var lastNormal TimePoint
	for _, p := range res.Series {
		if p.Stage == StageNormal {
			lastNormal = p
		}
	}
	var total power.Watts
	for _, w := range lastNormal.UPSPower {
		total += w
	}
	util := float64(total) / float64(4.8*power.MW)
	if util < 0.6 || util > 0.95 {
		t.Errorf("steady utilization %.2f, want ≈0.8", util)
	}
}

func TestEmulationLatencyModel(t *testing.T) {
	res := runShort(t, nil)
	if res.BaselineP95 <= 0 || res.ThrottledP95 <= 0 {
		t.Fatal("latency percentiles missing")
	}
	// The paper reports +4.7% p95 on throttled racks (worst 14%). The
	// shape requirement: a small but positive degradation, far below 2×.
	if res.P95IncreasePct < 0 {
		t.Errorf("throttled p95 below baseline: %+.2f%%", res.P95IncreasePct)
	}
	if res.P95IncreasePct > 30 {
		t.Errorf("throttled p95 increase %.1f%% implausibly high", res.P95IncreasePct)
	}
	if res.WorstIncreasePct > 60 {
		t.Errorf("worst-case increase %.1f%% implausibly high", res.WorstIncreasePct)
	}
}

func TestEmulationSeriesCategoriesPresent(t *testing.T) {
	res := runShort(t, nil)
	last := res.Series[len(res.Series)-1]
	for _, cat := range workload.Categories {
		if last.RackPower[cat] <= 0 {
			t.Errorf("category %v has no power at end of run", cat)
		}
	}
}

func TestEmulationDeterministic(t *testing.T) {
	a := runShort(t, nil)
	b := runShort(t, nil)
	if a.SRShutdownFrac != b.SRShutdownFrac || a.CapThrottledFrac != b.CapThrottledFrac {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v",
			a.SRShutdownFrac, a.CapThrottledFrac, b.SRShutdownFrac, b.CapThrottledFrac)
	}
	if a.DetectionLatency != b.DetectionLatency {
		t.Fatalf("nondeterministic detection latency: %v vs %v", a.DetectionLatency, b.DetectionLatency)
	}
}

func TestEmulationLowUtilizationNeedsNoActions(t *testing.T) {
	res := runShort(t, func(c *Config) { c.Utilization = 0.55 })
	// At 55% utilization the failover load stays below capacity
	// (0.55 × 4/3 ≈ 0.73), so no corrective actions are needed.
	if res.SRShutdownFrac > 0 || res.CapThrottledFrac > 0 {
		t.Errorf("actions at 55%% utilization: shut=%v throttled=%v",
			res.SRShutdownFrac, res.CapThrottledFrac)
	}
	if res.Outage {
		t.Error("outage at low utilization")
	}
}

func TestEmulationSurvivesTelemetryFaults(t *testing.T) {
	// §IV-C: the pipeline's redundancy must mask a meter failure plus a
	// misreading per device injected at the worst possible moment — the
	// UPS failure itself.
	res := runShort(t, func(c *Config) { c.InjectTelemetryFaults = true })
	if res.Outage {
		t.Fatal("outage with telemetry faults")
	}
	if res.DetectionLatency < 0 {
		t.Fatal("failover never detected with degraded telemetry")
	}
	if res.ShaveLatency < 0 || res.ShaveLatency > power.FlexLatencyBudget {
		t.Fatalf("shave latency %v with degraded telemetry", res.ShaveLatency)
	}
	if res.NonCapTouched != 0 {
		t.Fatal("non-cap-able racks touched")
	}
}

// TestEmulationMultiSeedRobustness sweeps seeds and scenarios asserting
// the global safety invariants hold everywhere (guarded by -short).
func TestEmulationMultiSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	scenarios := map[string]func() *Result{}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		for _, mk := range []struct {
			name string
			mut  func(*Config)
		}{
			{"Realistic-1", nil},
			{"Extreme-2", func(c *Config) { s := extreme2(); c.Scenario = &s }},
		} {
			mk := mk
			scenarios[mk.name+"-"+string(rune('0'+seed))] = func() *Result {
				return runShort(t, func(c *Config) {
					c.Seed = seed
					if mk.mut != nil {
						mk.mut(c)
					}
				})
			}
		}
	}
	for name, run := range scenarios {
		res := run()
		if res.Outage {
			t.Errorf("%s: outage", name)
		}
		if res.NonCapTouched != 0 {
			t.Errorf("%s: non-cap-able touched", name)
		}
		if res.ShaveLatency > power.FlexLatencyBudget {
			t.Errorf("%s: shave latency %v", name, res.ShaveLatency)
		}
		if !res.RestoredAll {
			t.Errorf("%s: not fully restored", name)
		}
	}
}
