// Package cost implements the paper's §I construction-cost analysis:
// allocating the reserved power of an xN/y datacenter to additional
// servers avoids building that capacity elsewhere, saving the
// per-provisioned-watt construction cost.
package cost

import (
	"fmt"

	"flex/internal/power"
)

// Savings summarizes the Flex economics for one site.
type Savings struct {
	Design power.Redundancy
	// SitePower is the site's IT capacity before Flex.
	SitePower power.Watts
	// ExtraServerFraction is the relative increase in deployable servers
	// (x/y − 1; 33% for 4N/3, the paper's headline).
	ExtraServerFraction float64
	// ExtraPower is the additional IT capacity unlocked.
	ExtraPower power.Watts
	// DollarsPerWatt is the construction cost basis.
	DollarsPerWatt float64
	// Dollars is the avoided construction cost.
	Dollars float64
}

// Compute returns the savings of running sitePower of IT capacity as
// zero-reserved-power under the given design at the given construction
// cost. The paper's reference points: a 128MW site saves $211M at $5/W
// and $422M at $10/W (using the rounded 33% figure for 4N/3).
func Compute(design power.Redundancy, sitePower power.Watts, dollarsPerWatt float64) (Savings, error) {
	if err := design.Validate(); err != nil {
		return Savings{}, err
	}
	if sitePower <= 0 {
		return Savings{}, fmt.Errorf("cost: site power must be positive")
	}
	if dollarsPerWatt <= 0 {
		return Savings{}, fmt.Errorf("cost: dollars per watt must be positive")
	}
	frac := design.ExtraServersFraction()
	extra := power.Watts(frac * float64(sitePower))
	return Savings{
		Design:              design,
		SitePower:           sitePower,
		ExtraServerFraction: frac,
		ExtraPower:          extra,
		DollarsPerWatt:      dollarsPerWatt,
		Dollars:             float64(extra) * dollarsPerWatt,
	}, nil
}

// DesignComparison contrasts redundancy designs on reserved power and
// Flex gains — the §II-A discussion of why distributed redundancy is key.
type DesignComparison struct {
	Design              power.Redundancy
	Name                string
	ReservedFraction    float64
	ExtraServerFraction float64
	// WorstFailoverLoad is the worst-case post-failover load on a
	// surviving supply as a fraction of its rating under zero reserve.
	WorstFailoverLoad float64
}

// CompareDesigns evaluates the standard designs the paper discusses. N+1
// and 2N are included for the reserved-power accounting even though their
// wiring cannot support Flex (§II-A: "N+1 cannot accommodate Flex because
// the redundant supply is not active; 2N is not ideal because a failure
// would require one supply to take twice its normal load").
func CompareDesigns() []DesignComparison {
	entries := []struct {
		name   string
		design power.Redundancy
	}{
		{"2N", power.Redundancy{X: 2, Y: 1}},
		{"3N/2", power.Redundancy{X: 3, Y: 2}},
		{"4N/3 (paper)", power.Redundancy{X: 4, Y: 3}},
		{"5N/4", power.Redundancy{X: 5, Y: 4}},
		{"6N/5", power.Redundancy{X: 6, Y: 5}},
	}
	out := make([]DesignComparison, len(entries))
	for i, e := range entries {
		out[i] = DesignComparison{
			Design:              e.design,
			Name:                e.name,
			ReservedFraction:    e.design.ReservedFraction(),
			ExtraServerFraction: e.design.ExtraServersFraction(),
			WorstFailoverLoad:   e.design.WorstCaseFailoverFraction(),
		}
	}
	return out
}
