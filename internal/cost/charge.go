package cost

import (
	"fmt"

	"flex/internal/feasibility"
	"flex/internal/workload"
)

// ChargeModel prices the paper's §VI financial incentives: "new charge
// models that incentivize workloads with relaxed performance and
// availability requirements". Workloads that let Flex act on them receive
// a discount funded by the construction savings their flexibility unlocks.
//
// The model is deliberately simple and explicit: a discount per nine of
// infrastructure availability given up (software-redundant workloads run
// at ≥4 instead of 5 nines) plus a discount per expected annual hour of
// throttling exposure (cap-able workloads keep full availability but
// accept bounded performance impact).
type ChargeModel struct {
	// DiscountPerNine is the price discount for each nine of availability
	// below the 5-nines design baseline (e.g. 0.05 = 5% per nine).
	DiscountPerNine float64
	// DiscountPerThrottleHour is the discount per expected annual hour of
	// throttling (e.g. 0.01 = 1% per hour/year).
	DiscountPerThrottleHour float64
	// MaxDiscount caps the total discount.
	MaxDiscount float64
}

// DefaultChargeModel returns a conservative parameterization: 5% per lost
// nine, 1% per expected annual throttle-hour, capped at 30%.
func DefaultChargeModel() ChargeModel {
	return ChargeModel{
		DiscountPerNine:         0.05,
		DiscountPerThrottleHour: 0.01,
		MaxDiscount:             0.30,
	}
}

const hoursPerYearCharge = 8760.0

// Discount computes the price discount fraction for a workload category
// under the given feasibility analysis.
func (m ChargeModel) Discount(cat workload.Category, a feasibility.Analysis) (float64, error) {
	if m.DiscountPerNine < 0 || m.DiscountPerThrottleHour < 0 || m.MaxDiscount < 0 {
		return 0, fmt.Errorf("cost: negative charge model parameters")
	}
	d := 0.0
	switch cat {
	case workload.NonRedundantNonCapable:
		// Never touched: full price, full availability.
		d = 0
	case workload.NonRedundantCapable:
		// Keeps design availability; pays only in rare throttling.
		expectedThrottleHours := a.ProbActionNeeded * hoursPerYearCharge
		d = m.DiscountPerThrottleHour * expectedThrottleHours
	case workload.SoftwareRedundant:
		// Gives up infrastructure nines (bounded below at the analysis
		// result) and also absorbs shutdowns.
		ninesLost := a.NonRedundantNines - a.SRNines
		if ninesLost < 0 {
			ninesLost = 0
		}
		expectedShutdownHours := a.ProbSRShutdown * hoursPerYearCharge
		d = m.DiscountPerNine*ninesLost + m.DiscountPerThrottleHour*expectedShutdownHours
	default:
		return 0, fmt.Errorf("cost: unknown category %v", cat)
	}
	if d > m.MaxDiscount {
		d = m.MaxDiscount
	}
	return d, nil
}

// FundedBy reports what fraction of the construction savings the discounts
// consume for a room with the given workload mix (power-weighted): the
// provider keeps the remainder. Discounts are sustainable when the result
// is below 1.
func (m ChargeModel) FundedBy(shares map[workload.Category]float64, a feasibility.Analysis, s Savings) (float64, error) {
	if s.Dollars <= 0 {
		return 0, fmt.Errorf("cost: savings must be positive")
	}
	var weighted float64
	for cat, share := range shares {
		d, err := m.Discount(cat, a)
		if err != nil {
			return 0, err
		}
		weighted += share * d
	}
	// Treat the power-weighted discount as revenue forgone against the
	// capacity the site serves; compare to the savings fraction the extra
	// servers represent.
	savingsFraction := s.ExtraServerFraction
	if savingsFraction <= 0 {
		return 0, fmt.Errorf("cost: no extra capacity")
	}
	return weighted / savingsFraction, nil
}
