package cost

import (
	"testing"

	"flex/internal/feasibility"
	"flex/internal/power"
	"flex/internal/workload"
)

func analysis(t *testing.T) feasibility.Analysis {
	t.Helper()
	a, err := feasibility.Analyze(feasibility.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestChargeModelOrdering(t *testing.T) {
	m := DefaultChargeModel()
	a := analysis(t)
	dNC, err := m.Discount(workload.NonRedundantNonCapable, a)
	if err != nil {
		t.Fatal(err)
	}
	dCap, err := m.Discount(workload.NonRedundantCapable, a)
	if err != nil {
		t.Fatal(err)
	}
	dSR, err := m.Discount(workload.SoftwareRedundant, a)
	if err != nil {
		t.Fatal(err)
	}
	if dNC != 0 {
		t.Errorf("non-cap-able discount = %v, want 0", dNC)
	}
	// The more flexibility a workload offers, the bigger the discount
	// (§VI's incentive direction).
	if !(dSR > dCap && dCap > 0) {
		t.Errorf("discount ordering broken: SR=%v cap=%v", dSR, dCap)
	}
	if dSR > m.MaxDiscount {
		t.Errorf("discount above cap: %v", dSR)
	}
}

func TestChargeModelCapAndValidation(t *testing.T) {
	a := analysis(t)
	m := ChargeModel{DiscountPerNine: 10, DiscountPerThrottleHour: 10, MaxDiscount: 0.3}
	d, err := m.Discount(workload.SoftwareRedundant, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.3 {
		t.Fatalf("discount = %v, want capped 0.3", d)
	}
	bad := ChargeModel{DiscountPerNine: -1}
	if _, err := bad.Discount(workload.SoftwareRedundant, a); err == nil {
		t.Error("expected error for negative parameters")
	}
	if _, err := DefaultChargeModel().Discount(workload.Category(9), a); err == nil {
		t.Error("expected error for unknown category")
	}
}

func TestChargeModelFundedBy(t *testing.T) {
	a := analysis(t)
	m := DefaultChargeModel()
	s, err := Compute(power.Redundancy{X: 4, Y: 3}, 128*power.MW, 5)
	if err != nil {
		t.Fatal(err)
	}
	shares := map[workload.Category]float64{
		workload.SoftwareRedundant:      0.13,
		workload.NonRedundantCapable:    0.56,
		workload.NonRedundantNonCapable: 0.31,
	}
	frac, err := m.FundedBy(shares, a, s)
	if err != nil {
		t.Fatal(err)
	}
	// Discounts must be comfortably fundable by the 33% capacity gain.
	if frac <= 0 || frac >= 1 {
		t.Fatalf("funded fraction = %v, want in (0,1)", frac)
	}
	if _, err := m.FundedBy(shares, a, Savings{}); err == nil {
		t.Error("expected error for zero savings")
	}
}
