package cost

import (
	"math"
	"testing"

	"flex/internal/power"
)

func TestComputePaperNumbers(t *testing.T) {
	// Paper §I: a 128MW site saves $211M at $5/W and $422M at $10/W for
	// 4N/3 (the paper rounds x/y−1 to 33%; the exact fraction is 1/3).
	s, err := Compute(power.Redundancy{X: 4, Y: 3}, 128*power.MW, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ExtraServerFraction-1.0/3.0) > 1e-12 {
		t.Errorf("ExtraServerFraction = %v, want 1/3", s.ExtraServerFraction)
	}
	if math.Abs(float64(s.ExtraPower)-128e6/3) > 1 {
		t.Errorf("ExtraPower = %v, want ≈42.67MW", s.ExtraPower)
	}
	// $213.3M exact vs the paper's rounded $211M: within 1.5%.
	if s.Dollars < 205e6 || s.Dollars > 220e6 {
		t.Errorf("savings at $5/W = $%.1fM, want ≈$211M", s.Dollars/1e6)
	}
	s10, _ := Compute(power.Redundancy{X: 4, Y: 3}, 128*power.MW, 10)
	if math.Abs(s10.Dollars-2*s.Dollars) > 1 {
		t.Error("savings should scale linearly with $/W")
	}
	if s10.Dollars < 410e6 || s10.Dollars > 440e6 {
		t.Errorf("savings at $10/W = $%.1fM, want ≈$422M", s10.Dollars/1e6)
	}
}

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(power.Redundancy{X: 3, Y: 3}, power.MW, 5); err == nil {
		t.Error("expected error for invalid design")
	}
	if _, err := Compute(power.Redundancy{X: 4, Y: 3}, 0, 5); err == nil {
		t.Error("expected error for zero site power")
	}
	if _, err := Compute(power.Redundancy{X: 4, Y: 3}, power.MW, 0); err == nil {
		t.Error("expected error for zero $/W")
	}
}

func TestCompareDesigns(t *testing.T) {
	ds := CompareDesigns()
	if len(ds) != 5 {
		t.Fatalf("designs = %d", len(ds))
	}
	// 2N reserves half; 4N/3 reserves a quarter; reserved fraction must
	// decrease as designs get more distributed.
	for i := 1; i < len(ds); i++ {
		if ds[i].ReservedFraction >= ds[i-1].ReservedFraction {
			t.Errorf("reserved fraction not decreasing: %v", ds)
		}
	}
	if math.Abs(ds[0].ReservedFraction-0.5) > 1e-12 {
		t.Errorf("2N reserved = %v, want 0.5", ds[0].ReservedFraction)
	}
	var paper *DesignComparison
	for i := range ds {
		if ds[i].Design == (power.Redundancy{X: 4, Y: 3}) {
			paper = &ds[i]
		}
	}
	if paper == nil {
		t.Fatal("4N/3 missing")
	}
	if math.Abs(paper.ReservedFraction-0.25) > 1e-12 ||
		math.Abs(paper.ExtraServerFraction-1.0/3.0) > 1e-12 ||
		math.Abs(paper.WorstFailoverLoad-4.0/3.0) > 1e-12 {
		t.Errorf("4N/3 comparison = %+v", paper)
	}
}
