package impact

import (
	"math"
	"testing"
	"testing/quick"

	"flex/internal/workload"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
		ok   bool
	}{
		{"empty", nil, false},
		{"single", []Point{{0.5, 0.5}}, true},
		{"fraction out of range", []Point{{-0.1, 0}}, false},
		{"fraction above 1", []Point{{1.1, 0}}, false},
		{"impact out of range", []Point{{0, -0.1}}, false},
		{"impact above 1", []Point{{0, 1.5}}, false},
		{"duplicate fraction", []Point{{0.5, 0.1}, {0.5, 0.2}}, false},
		{"decreasing impact", []Point{{0, 0.5}, {1, 0.2}}, false},
		{"valid", []Point{{0, 0}, {0.5, 0.3}, {1, 1}}, true},
	}
	for _, c := range cases {
		_, err := New(c.name, c.pts)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("bad", nil)
}

func TestAtInterpolation(t *testing.T) {
	f := MustNew("f", []Point{{0.2, 0}, {0.8, 0.6}})
	cases := []struct{ frac, want float64 }{
		{0, 0},     // flat before first point
		{0.2, 0},   // at first point
		{0.5, 0.3}, // midpoint
		{0.8, 0.6}, // at last point
		{1.0, 0.6}, // flat after last point
		{-0.5, 0},  // clamped
		{1.5, 0.6}, // clamped
		{0.35, 0.15},
	}
	for _, c := range cases {
		if got := f.At(c.frac); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.frac, got, c.want)
		}
	}
}

func TestZeroFunctionIsZero(t *testing.T) {
	var zero Function
	for _, frac := range []float64{0, 0.5, 1} {
		if zero.At(frac) != 0 {
			t.Errorf("zero value At(%v) = %v", frac, zero.At(frac))
		}
	}
	z := Zero("z")
	if z.At(0.7) != 0 || z.Name() != "z" {
		t.Error("Zero() misbehaves")
	}
}

func TestLinear(t *testing.T) {
	f := Linear("lin", 0.8)
	if math.Abs(f.At(0.5)-0.4) > 1e-12 {
		t.Errorf("Linear At(0.5) = %v, want 0.4", f.At(0.5))
	}
}

func TestCritical(t *testing.T) {
	f := MustNew("crit", []Point{{0, 0}, {0.9, 0.5}, {0.95, 1}})
	if f.Critical(0.5) {
		t.Error("0.5 should not be critical")
	}
	if !f.Critical(0.95) || !f.Critical(1) {
		t.Error("0.95+ should be critical")
	}
}

func TestMonotoneProperty(t *testing.T) {
	fns := []Function{Figure8A(), Figure8B(), Figure8C(),
		Realistic1().ByCategory[workload.SoftwareRedundant],
		Realistic2().ByCategory[workload.NonRedundantCapable]}
	check := func(a, b float64) bool {
		fa := math.Mod(math.Abs(a), 1)
		fb := math.Mod(math.Abs(b), 1)
		if fa > fb {
			fa, fb = fb, fa
		}
		for _, f := range fns {
			if f.At(fa) > f.At(fb)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedProperty(t *testing.T) {
	f := Figure8C()
	check := func(x float64) bool {
		v := f.At(math.Mod(math.Abs(x), 2)) // also exercises clamping
		return v >= 0 && v <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointsReturnsCopy(t *testing.T) {
	f := Figure8A()
	ps := f.Points()
	ps[0].Impact = 0.99
	if f.Points()[0].Impact == 0.99 {
		t.Fatal("Points leaked internal state")
	}
}

func TestFigure8Shapes(t *testing.T) {
	// A: protected critical racks near the end.
	if !Figure8A().Critical(0.95) {
		t.Error("Figure8A should protect management racks")
	}
	// B: large free-shutdown region.
	if Figure8B().At(0.5) != 0 {
		t.Error("Figure8B should have zero impact at 50%")
	}
	// C: growth buffer then critical tail.
	if Figure8C().At(0.1) != 0 {
		t.Error("Figure8C growth buffer should be free")
	}
	if !Figure8C().Critical(0.95) {
		t.Error("Figure8C should protect management racks")
	}
}

func TestScenarioFor(t *testing.T) {
	s := Realistic1()
	srF := s.For("websearch", workload.SoftwareRedundant)
	if srF.Name() != "real1-sr" {
		t.Errorf("SR function = %q", srF.Name())
	}
	// Unknown category (non-cap-able has no function) → zero function.
	if f := s.For("gpu", workload.NonRedundantNonCapable); f.At(0.5) != 0 {
		t.Error("missing category should yield zero function")
	}
	// Per-workload override wins.
	s.ByWorkload = map[string]Function{"websearch": Linear("override", 1)}
	if got := s.For("websearch", workload.SoftwareRedundant).Name(); got != "override" {
		t.Errorf("override not applied: %q", got)
	}
}

func TestExtremeScenarioOrdering(t *testing.T) {
	// Extreme-1: shutdown (SR) must always look cheaper than throttling.
	e1 := Extreme1()
	sr := e1.ByCategory[workload.SoftwareRedundant]
	cap := e1.ByCategory[workload.NonRedundantCapable]
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if sr.At(frac) >= cap.At(frac) {
			t.Errorf("Extreme-1 at %.2f: SR %.2f !< cap %.2f", frac, sr.At(frac), cap.At(frac))
		}
	}
	// Extreme-2 is the mirror image.
	e2 := Extreme2()
	sr2 := e2.ByCategory[workload.SoftwareRedundant]
	cap2 := e2.ByCategory[workload.NonRedundantCapable]
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if cap2.At(frac) >= sr2.At(frac) {
			t.Errorf("Extreme-2 at %.2f: cap %.2f !< SR %.2f", frac, cap2.At(frac), sr2.At(frac))
		}
	}
}

func TestDefaultScenarioThrottlesBeforeShutdown(t *testing.T) {
	d := Default()
	sr := d.ByCategory[workload.SoftwareRedundant]
	cap := d.ByCategory[workload.NonRedundantCapable]
	// Even fully throttling all cap-able racks must look cheaper than the
	// first shutdown (paper: act on SR only after cap-ables are throttled).
	if cap.At(1) >= sr.At(0) {
		t.Errorf("default: cap.At(1)=%.2f should be < sr.At(0)=%.2f", cap.At(1), sr.At(0))
	}
}

func TestFigure11ScenariosComplete(t *testing.T) {
	ss := Figure11Scenarios()
	if len(ss) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(ss))
	}
	names := map[string]bool{}
	for _, s := range ss {
		names[s.Name] = true
		for _, cat := range []workload.Category{workload.SoftwareRedundant, workload.NonRedundantCapable} {
			if _, ok := s.ByCategory[cat]; !ok {
				t.Errorf("%s missing function for %v", s.Name, cat)
			}
		}
	}
	for _, want := range []string{"Extreme-1", "Extreme-2", "Realistic-1", "Realistic-2"} {
		if !names[want] {
			t.Errorf("missing scenario %s", want)
		}
	}
}
