// Package impact implements the paper's workload impact functions
// (§IV-D, Figures 8 and 11).
//
// An impact function maps the fraction of a workload's racks that have been
// affected (shut down or throttled) to a perceived performance/availability
// impact in [0, 1]. Flex-Online consults these functions in Algorithm 1 to
// pick, at every step, the corrective action with the minimum impact.
// Impact 0 means no perceivable impact; impact 1 marks racks that are
// critical and must not be touched unless absolutely vital for safety.
package impact

import (
	"fmt"
	"sort"
)

// Point is one vertex of a piecewise-linear impact function.
type Point struct {
	Fraction float64 // fraction of the workload's racks affected, in [0,1]
	Impact   float64 // perceived impact, in [0,1]
}

// Function is a piecewise-linear, monotonically non-decreasing impact
// function. The zero value is the constant-zero function ("no impact").
type Function struct {
	name   string
	points []Point
}

// New builds an impact function from vertices. Fractions must be strictly
// increasing within [0,1]; impacts must be non-decreasing within [0,1].
// The function is linearly interpolated between vertices, extends flat
// from the first vertex to fraction 0 and from the last to fraction 1.
func New(name string, points []Point) (Function, error) {
	if len(points) == 0 {
		return Function{}, fmt.Errorf("impact: function %q needs at least one point", name)
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Fraction < ps[j].Fraction })
	for i, p := range ps {
		if p.Fraction < 0 || p.Fraction > 1 {
			return Function{}, fmt.Errorf("impact: %q point %d fraction %.3f outside [0,1]", name, i, p.Fraction)
		}
		if p.Impact < 0 || p.Impact > 1 {
			return Function{}, fmt.Errorf("impact: %q point %d impact %.3f outside [0,1]", name, i, p.Impact)
		}
		if i > 0 {
			if p.Fraction == ps[i-1].Fraction {
				return Function{}, fmt.Errorf("impact: %q has duplicate fraction %.3f", name, p.Fraction)
			}
			if p.Impact < ps[i-1].Impact {
				return Function{}, fmt.Errorf("impact: %q impact must be non-decreasing", name)
			}
		}
	}
	return Function{name: name, points: ps}, nil
}

// MustNew is New but panics on error; for static scenario tables.
func MustNew(name string, points []Point) Function {
	f, err := New(name, points)
	if err != nil {
		panic(err)
	}
	return f
}

// Name returns the function's name ("" for the zero function).
func (f Function) Name() string { return f.name }

// At evaluates the function at the given affected fraction, clamping the
// input to [0,1]. The zero Function returns 0 everywhere.
func (f Function) At(frac float64) float64 {
	if len(f.points) == 0 {
		return 0
	}
	if frac <= f.points[0].Fraction {
		return f.points[0].Impact
	}
	last := f.points[len(f.points)-1]
	if frac >= last.Fraction {
		return last.Impact
	}
	i := sort.Search(len(f.points), func(i int) bool { return f.points[i].Fraction >= frac })
	a, b := f.points[i-1], f.points[i]
	t := (frac - a.Fraction) / (b.Fraction - a.Fraction)
	return a.Impact + t*(b.Impact-a.Impact)
}

// Critical reports whether affecting this fraction reaches impact 1, i.e.
// touches racks the workload declared critical.
func (f Function) Critical(frac float64) bool { return f.At(frac) >= 1 }

// Points returns a copy of the function's vertices.
func (f Function) Points() []Point {
	ps := make([]Point, len(f.points))
	copy(ps, f.points)
	return ps
}

// Zero returns the constant-zero impact function.
func Zero(name string) Function {
	return Function{name: name, points: []Point{{0, 0}, {1, 0}}}
}

// Linear returns a function rising linearly from 0 at fraction 0 to maxI
// at fraction 1.
func Linear(name string, maxI float64) Function {
	return MustNew(name, []Point{{0, 0}, {1, maxI}})
}

// Figure 8's three production examples.

// Figure8A is a typical non-redundant but cap-able workload (e.g. the VM
// service): incremental impact from throttling any rack, plus a set of
// critical management racks (the last ~10%) that must be protected.
func Figure8A() Function {
	return MustNew("fig8-A-vmservice", []Point{
		{0, 0.05}, {0.9, 0.5}, {0.92, 1}, {1, 1},
	})
}

// Figure8B is a software-redundant stateless workload: shutting down a
// large share of racks has no impact as load migrates seamlessly.
func Figure8B() Function {
	return MustNew("fig8-B-stateless", []Point{
		{0, 0}, {0.6, 0}, {0.95, 0.6}, {1, 0.8},
	})
}

// Figure8C is a software-redundant stateful workload: a growth buffer
// (free to shut down), a working set (incremental impact), and critical
// management racks (protected).
func Figure8C() Function {
	return MustNew("fig8-C-stateful", []Point{
		{0, 0}, {0.15, 0}, {0.85, 0.6}, {0.9, 1}, {1, 1},
	})
}
