package impact

import "flex/internal/workload"

// Scenario assigns an impact function to each workload category — the
// simplified form used in the paper's Figure 11/12 evaluation ("all
// software-redundant workloads have the same needs, and all non-redundant
// cap-able workloads have the same needs as well"). Per-workload overrides
// refine the per-category defaults.
type Scenario struct {
	Name       string
	ByCategory map[workload.Category]Function
	// ByWorkload overrides ByCategory for specific named workloads.
	ByWorkload map[string]Function
}

// For returns the impact function for a workload with the given name and
// category. A missing entry yields the zero function for software-redundant
// workloads and a conservative default ordering otherwise (see Default).
func (s Scenario) For(name string, cat workload.Category) Function {
	if f, ok := s.ByWorkload[name]; ok {
		return f
	}
	if f, ok := s.ByCategory[cat]; ok {
		return f
	}
	return Function{}
}

// The four Figure 11 scenarios. Shapes follow the paper's description:
//
//   - Extreme-1: shutting down software-redundant racks is free, while
//     throttling cap-able racks is maximally costly → the controller shuts
//     down aggressively and throttles as little as possible.
//   - Extreme-2: the mirror image — throttling is free, shutdown costly →
//     the controller throttles all candidates before any shutdown.
//   - Realistic-1: both actions have incremental cost, with shutdown
//     cheaper than throttling (more shutdowns, fewer throttles).
//   - Realistic-2: both incremental, with throttling cheaper than shutdown.

// Extreme1 returns the Figure 11(a) scenario.
func Extreme1() Scenario {
	return Scenario{
		Name: "Extreme-1",
		ByCategory: map[workload.Category]Function{
			workload.SoftwareRedundant:   Zero("ext1-sr"),
			workload.NonRedundantCapable: MustNew("ext1-cap", []Point{{0, 0.9}, {1, 1}}),
		},
	}
}

// Extreme2 returns the Figure 11(b) scenario.
func Extreme2() Scenario {
	return Scenario{
		Name: "Extreme-2",
		ByCategory: map[workload.Category]Function{
			workload.SoftwareRedundant:   MustNew("ext2-sr", []Point{{0, 0.9}, {1, 1}}),
			workload.NonRedundantCapable: Zero("ext2-cap"),
		},
	}
}

// Realistic1 returns the Figure 11(c) scenario — the one used in the
// paper's end-to-end emulation (§V-C).
func Realistic1() Scenario {
	return Scenario{
		Name: "Realistic-1",
		ByCategory: map[workload.Category]Function{
			// Shutting down is cheap for the first quarter of the racks
			// (replicas absorb it), then cost ramps; critical management
			// racks at the tail are protected.
			workload.SoftwareRedundant: MustNew("real1-sr", []Point{
				{0, 0}, {0.55, 0.05}, {0.82, 0.55}, {0.9, 1}, {1, 1},
			}),
			// Throttling has a small fixed perceived cost and grows
			// slowly — so once shutdowns stop being free, Flex-Online
			// interleaves broad throttling with further shutdowns.
			workload.NonRedundantCapable: MustNew("real1-cap", []Point{
				{0, 0.05}, {0.9, 0.26}, {0.95, 1}, {1, 1},
			}),
		},
	}
}

// Realistic2 returns the Figure 11(d) scenario: throttling is perceived as
// cheaper than shutdown.
func Realistic2() Scenario {
	return Scenario{
		Name: "Realistic-2",
		ByCategory: map[workload.Category]Function{
			workload.SoftwareRedundant: MustNew("real2-sr", []Point{
				{0, 0.08}, {0.85, 0.4}, {0.9, 1}, {1, 1},
			}),
			workload.NonRedundantCapable: MustNew("real2-cap", []Point{
				{0, 0}, {0.5, 0.05}, {0.9, 0.3}, {0.95, 1}, {1, 1},
			}),
		},
	}
}

// Default returns the paper's default behaviour in the absence of impact
// functions: throttle all cap-able workloads before shutting down any
// software-redundant ones (§III, §IV-D).
func Default() Scenario {
	return Scenario{
		Name: "Default",
		ByCategory: map[workload.Category]Function{
			workload.SoftwareRedundant:   MustNew("default-sr", []Point{{0, 0.5}, {1, 0.9}}),
			workload.NonRedundantCapable: MustNew("default-cap", []Point{{0, 0}, {1, 0.45}}),
		},
	}
}

// Figure11Scenarios returns the four scenarios in presentation order.
func Figure11Scenarios() []Scenario {
	return []Scenario{Extreme1(), Extreme2(), Realistic1(), Realistic2()}
}
