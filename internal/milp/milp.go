// Package milp implements a branch-and-bound mixed-integer linear program
// solver on top of the simplex solver in internal/lp. Together they stand
// in for the Gurobi solver the paper drives from its placement simulator
// (§V-A); like the paper — which stops Gurobi after 5 minutes — milp
// accepts a deadline and returns the best incumbent found so far.
package milp

import (
	"fmt"
	"math"
	"sort"
	"time"

	"flex/internal/lp"
)

// Problem is an LP plus integrality requirements. Variables marked in
// Integer must take integer values in the solution. (Binary variables are
// expressed as integer variables with an explicit x <= 1 constraint.)
type Problem struct {
	LP      lp.Problem
	Integer []bool // len == LP.NumVars(); true ⇒ variable must be integral
}

// Options tunes the search.
type Options struct {
	// TimeLimit bounds the wall-clock search time; zero means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored branch-and-bound nodes;
	// zero means no limit.
	MaxNodes int
	// Incumbent, when non-nil, is a candidate solution used to warm-start
	// pruning. It is verified for feasibility and integrality first.
	Incumbent []float64
	// Heuristic, when non-nil, maps a fractional relaxation solution to a
	// candidate integral solution (e.g. rounding + greedy completion). The
	// candidate is verified before being adopted; returning nil is fine.
	Heuristic func(relaxed []float64) []float64
	// RelGap, when positive, stops the search once the incumbent is within
	// this relative distance of the best open bound (e.g. 0.01 = 1%). The
	// result is then reported as Optimal within the gap.
	RelGap float64
	// Now supplies time (for tests); nil uses time.Now.
	Now func() time.Time
	// Metrics, when non-nil, accumulates search statistics (nodes, simplex
	// pivots, limit hits) across solves.
	Metrics *Metrics
}

// Status is the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal: the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible: the search hit a limit; the incumbent is feasible but not
	// proven optimal (the paper's "stop the ILP solver after 5 minutes").
	Feasible
	// Infeasible: no integral solution exists.
	Infeasible
	// Unbounded: the relaxation is unbounded.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// SimplexIterations is the total simplex pivots spent across all node
	// relaxations.
	SimplexIterations int
	// DeadlineHit is true when Options.TimeLimit stopped the search.
	DeadlineHit bool
	// NodeLimitHit is true when Options.MaxNodes stopped the search.
	NodeLimitHit bool
}

const intEps = 1e-6

// Solve runs branch and bound. The search explores nodes best-bound-first,
// branching on the most fractional integer variable.
func Solve(p *Problem, opts Options) (Result, error) {
	n := p.LP.NumVars()
	if len(p.Integer) != n {
		return Result{}, fmt.Errorf("milp: Integer mask has %d entries for %d variables", len(p.Integer), n)
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = now().Add(opts.TimeLimit)
	}

	sign := 1.0
	if !p.LP.Maximize {
		sign = -1.0 // internally we compare in "maximize" terms
	}

	var best *Result
	tryCandidate := func(cand []float64) {
		if cand == nil || len(cand) != n {
			return
		}
		x := roundIntegers(cand, p.Integer)
		if !p.feasible(x) {
			return
		}
		obj := p.objectiveOf(x)
		if best == nil || sign*obj > sign*best.Objective {
			xc := append([]float64(nil), x...)
			best = &Result{Status: Feasible, X: xc, Objective: obj}
		}
	}
	tryCandidate(opts.Incumbent)

	type node struct {
		extra []lp.Constraint // branching constraints
		bound float64         // parent relaxation objective (max-sense)
	}
	// Depth-first search (LIFO stack): incumbents surface quickly and the
	// heuristic + bound pruning keep the tree small.
	stack := []node{{bound: math.Inf(1)}}
	res := Result{}
	hitLimit := false

	for len(stack) > 0 {
		if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
			hitLimit = true
			res.NodeLimitHit = true
			break
		}
		if !deadline.IsZero() && now().After(deadline) {
			hitLimit = true
			res.DeadlineHit = true
			break
		}
		if opts.RelGap > 0 && best != nil {
			open := math.Inf(-1)
			for i := range stack {
				if stack[i].bound > open {
					open = stack[i].bound
				}
			}
			if sign*best.Objective >= open-opts.RelGap*math.Abs(open) {
				break // incumbent proven within the requested gap
			}
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if best != nil && nd.bound <= sign*best.Objective+intEps {
			continue // pruned by bound
		}

		sub := p.LP.Clone()
		sub.Constraints = append(sub.Constraints, nd.extra...)
		r, err := lp.Solve(sub)
		if err != nil {
			return Result{}, err
		}
		res.Nodes++
		res.SimplexIterations += r.Iterations
		switch r.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if len(nd.extra) == 0 {
				res.Status = Unbounded
				opts.Metrics.record(&res)
				return res, nil
			}
			continue
		case lp.IterationLimit:
			continue // treat as unexplorable; keeps the search sound
		}
		relax := sign * r.Objective
		if best != nil && relax <= sign*best.Objective+intEps {
			continue
		}
		// Find the most fractional integer variable.
		branch, frac := -1, 0.0
		for j := 0; j < n; j++ {
			if !p.Integer[j] {
				continue
			}
			f := r.X[j] - math.Floor(r.X[j])
			dist := math.Min(f, 1-f)
			if dist > intEps && dist > frac {
				frac = dist
				branch = j
			}
		}
		if branch == -1 {
			tryCandidate(r.X) // integral relaxation: new incumbent
			continue
		}
		if opts.Heuristic != nil {
			tryCandidate(opts.Heuristic(r.X))
		}
		// Branch: push floor first so the ceil ("take it") branch is
		// explored first, which tends to reach incumbents sooner in
		// packing problems.
		floorC := lp.Constraint{Coeffs: unit(n, branch), Sense: lp.LE, RHS: math.Floor(r.X[branch])}
		ceilC := lp.Constraint{Coeffs: unit(n, branch), Sense: lp.GE, RHS: math.Ceil(r.X[branch])}
		for _, c := range []lp.Constraint{floorC, ceilC} {
			child := node{bound: relax, extra: make([]lp.Constraint, len(nd.extra)+1)}
			copy(child.extra, nd.extra)
			child.extra[len(nd.extra)] = c
			stack = append(stack, child)
		}
	}

	if best == nil {
		if hitLimit {
			res.Status = Feasible
		} else {
			res.Status = Infeasible
		}
		opts.Metrics.record(&res)
		return res, nil
	}
	best.Nodes = res.Nodes
	best.SimplexIterations = res.SimplexIterations
	best.DeadlineHit = res.DeadlineHit
	best.NodeLimitHit = res.NodeLimitHit
	if hitLimit {
		best.Status = Feasible
	} else {
		best.Status = Optimal
	}
	opts.Metrics.record(best)
	return *best, nil
}

// feasible reports whether x satisfies every constraint (with tolerance)
// and every integrality requirement, and is non-negative.
func (p *Problem) feasible(x []float64) bool {
	for j, v := range x {
		if v < -1e-9 {
			return false
		}
		if p.Integer[j] && math.Abs(v-math.Round(v)) > intEps {
			return false
		}
	}
	for _, c := range p.LP.Constraints {
		lhs := 0.0
		for j, a := range c.Coeffs {
			lhs += a * x[j]
		}
		switch c.Sense {
		case lp.LE:
			if lhs > c.RHS+1e-7 {
				return false
			}
		case lp.GE:
			if lhs < c.RHS-1e-7 {
				return false
			}
		case lp.EQ:
			if math.Abs(lhs-c.RHS) > 1e-7 {
				return false
			}
		}
	}
	return true
}

// objectiveOf evaluates the objective at x.
func (p *Problem) objectiveOf(x []float64) float64 {
	obj := 0.0
	for j, c := range p.LP.Objective {
		obj += c * x[j]
	}
	return obj
}

// roundIntegers snaps near-integral entries to exact integers.
func roundIntegers(x []float64, integer []bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, isInt := range integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

func unit(n, j int) []float64 {
	c := make([]float64, n)
	c[j] = 1
	return c
}

// GreedyBinaryIncumbent produces a feasible 0/1 assignment for a pure
// binary maximization problem by setting variables to 1 in descending
// objective-coefficient order whenever all constraints stay satisfied. It
// is used to warm-start and as an ablation baseline for the placement ILP.
// Only LE constraints with non-negative coefficients are supported; other
// constraints cause a nil return.
func GreedyBinaryIncumbent(p *Problem) []float64 {
	n := p.LP.NumVars()
	for _, c := range p.LP.Constraints {
		if c.Sense != lp.LE {
			return nil
		}
		for _, a := range c.Coeffs {
			if a < 0 {
				return nil
			}
		}
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	obj := p.LP.Objective
	sort.Slice(order, func(a, b int) bool { return obj[order[a]] > obj[order[b]] })
	x := make([]float64, n)
	slack := make([]float64, len(p.LP.Constraints))
	for i, c := range p.LP.Constraints {
		slack[i] = c.RHS
	}
	for _, j := range order {
		if obj[j] <= 0 {
			continue
		}
		ok := true
		for i, c := range p.LP.Constraints {
			var a float64
			if j < len(c.Coeffs) {
				a = c.Coeffs[j]
			}
			if a > slack[i]+1e-9 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		x[j] = 1
		for i, c := range p.LP.Constraints {
			if j < len(c.Coeffs) {
				slack[i] -= c.Coeffs[j]
			}
		}
	}
	return x
}
