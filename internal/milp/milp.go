// Package milp implements a parallel branch-and-bound mixed-integer linear
// program solver on top of the simplex solver in internal/lp. Together they
// stand in for the Gurobi solver the paper drives from its placement
// simulator (§V-A); like the paper — which stops Gurobi after 5 minutes —
// milp accepts a deadline (via context or Options.TimeLimit) and returns
// the best incumbent found so far.
//
// SolveContext is the primary entry point. The search runs Options.Workers
// goroutines pulling subproblems from a shared best-bound frontier; every
// incumbent is published through an atomically-updated shared bound so all
// workers prune against the global best. Options.Deterministic trades a
// little pruning sharpness for a worker-count-independent exploration
// order, so parallel and serial runs return identical results.
package milp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flex/internal/lp"
)

// Problem is an LP plus integrality requirements. Variables marked in
// Integer must take integer values in the solution. (Binary variables are
// expressed as integer variables with an explicit x <= 1 constraint.)
type Problem struct {
	LP      lp.Problem
	Integer []bool // len == LP.NumVars(); true ⇒ variable must be integral
}

// Options tunes the search.
type Options struct {
	// Workers is the number of branch-and-bound workers pulling nodes from
	// the shared frontier. Zero or negative means runtime.NumCPU(); one
	// runs the search serially.
	Workers int
	// Deterministic fixes the exploration order independently of Workers:
	// nodes are evaluated in synchronized rounds, pruned against the
	// incumbent as of the round start, and their outcomes applied in node
	// sequence order. Serial and parallel runs then return the same
	// objective, status, solution, and node count. (Wall-clock limits
	// remain timing-dependent; use MaxNodes for reproducible truncation.)
	Deterministic bool
	// TimeLimit bounds the wall-clock search time; zero means no limit.
	// When the limit expires the search stops with Stop == StopDeadline
	// and a nil error — the paper's "stop Gurobi after 5 minutes" budget.
	//
	// Deprecated: pass a deadline on the context given to SolveContext
	// instead. TimeLimit is kept as a per-call budget and composes with
	// the context: whichever expires first stops the search.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored branch-and-bound nodes;
	// zero means no limit.
	MaxNodes int
	// Incumbent, when non-nil, is a candidate solution used to warm-start
	// pruning. It is verified for feasibility and integrality first.
	Incumbent []float64
	// Heuristic, when non-nil, maps a fractional relaxation solution to a
	// candidate integral solution (e.g. rounding + greedy completion). The
	// candidate is verified before being adopted; returning nil is fine.
	// With Workers > 1 it is called concurrently from several workers and
	// must be safe for concurrent use (pure functions are). The relaxed
	// slice is a per-worker scratch buffer: the heuristic must not retain
	// it after returning.
	Heuristic func(relaxed []float64) []float64
	// RelGap, when positive, stops the search once the incumbent is within
	// this relative distance of the best open bound (e.g. 0.01 = 1%). The
	// result is then reported as Optimal within the gap.
	RelGap float64
	// Now supplies time (for tests); nil uses time.Now. It is only ever
	// called with the frontier lock held — never concurrently — so
	// non-thread-safe test clocks are fine.
	Now func() time.Time
	// Metrics, when non-nil, accumulates search statistics (nodes, simplex
	// pivots, limit hits, incumbent improvements, worker idle time) across
	// solves.
	Metrics *Metrics
}

// Status is the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal: the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible: the search hit a limit; the incumbent is feasible but not
	// proven optimal (the paper's "stop the ILP solver after 5 minutes").
	Feasible
	// Infeasible: no integral solution exists.
	Infeasible
	// Unbounded: the relaxation is unbounded.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// StopReason says why a search ended before proving optimality. Every
// truncated search reports exactly one reason; StopNone means the frontier
// was exhausted (the result is exact, or exact within RelGap).
type StopReason int

// Stop reasons.
const (
	// StopNone: the search ran to completion.
	StopNone StopReason = iota
	// StopDeadline: the context deadline or Options.TimeLimit expired.
	StopDeadline
	// StopNodeLimit: Options.MaxNodes was reached.
	StopNodeLimit
	// StopCanceled: the context was canceled; SolveContext also returns
	// context.Cause(ctx) alongside the partial result.
	StopCanceled
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopNone:
		return "none"
	case StopDeadline:
		return "deadline"
	case StopNodeLimit:
		return "node-limit"
	case StopCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// SimplexIterations is the total simplex pivots spent across all node
	// relaxations.
	SimplexIterations int
	// Stop records why a truncated search stopped; StopNone when the
	// frontier was exhausted.
	Stop StopReason
	// Cause is context.Cause(ctx) when Stop == StopCanceled, nil otherwise.
	Cause error
	// Workers is the worker count the search actually ran with.
	Workers int
	// Elapsed is the wall-clock duration of the search (per Options.Now).
	Elapsed time.Duration
	// IncumbentImprovements counts adoptions of a strictly better incumbent
	// (including a verified Options.Incumbent warm start).
	IncumbentImprovements int
	// WorkerIdle is the cumulative time workers spent blocked waiting for
	// frontier work; high values mean the tree is too narrow for Workers.
	WorkerIdle time.Duration
	// DeadlineHit is true when the time budget stopped the search.
	//
	// Deprecated: equivalent to Stop == StopDeadline.
	DeadlineHit bool
	// NodeLimitHit is true when Options.MaxNodes stopped the search.
	//
	// Deprecated: equivalent to Stop == StopNodeLimit.
	NodeLimitHit bool
}

const (
	intEps  = 1e-6
	feasTol = 1e-7
	zeroTol = 1e-12
	// detRoundSize is the number of frontier nodes evaluated per round in
	// Deterministic mode. It is a fixed constant — independent of Workers —
	// so the explored set is identical for any worker count.
	detRoundSize = 16
)

// SolveContext runs branch and bound until the frontier is exhausted, a
// limit (context deadline, TimeLimit, MaxNodes, RelGap) is reached, or ctx
// is canceled. The search explores nodes best-bound-first, branching on the
// most fractional integer variable.
//
// Deadlines are budgets: the search returns the best incumbent found with
// Stop == StopDeadline and a nil error. Cancellation is an abort: the
// partial result (still carrying the best incumbent found so far) is
// returned together with context.Cause(ctx).
func SolveContext(ctx context.Context, p *Problem, opts Options) (Result, error) {
	n := p.LP.NumVars()
	if len(p.Integer) != n {
		return Result{}, fmt.Errorf("milp: Integer mask has %d entries for %d variables", len(p.Integer), n)
	}
	if n == 0 {
		return Result{}, fmt.Errorf("milp: problem has no variables")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}

	s := &search{
		p:    p,
		n:    n,
		opts: opts,
		now:  now,
		sign: 1.0,
		up0:  impliedUpperBounds(p),
	}
	s.skip = redundantSingletonRows(p)
	if !p.LP.Maximize {
		s.sign = -1.0 // internally we compare in "maximize" terms
	}
	s.incBits.Store(math.Float64bits(math.Inf(-1)))
	s.f.cond = sync.NewCond(&s.f.mu)
	s.start = now()
	if opts.TimeLimit > 0 {
		s.deadline = s.start.Add(opts.TimeLimit)
	}

	s.tryCandidate(opts.Incumbent)
	s.pushRoot()

	// A context that expired before the search started stops it here, not
	// via the watcher goroutine: otherwise a fast solve could race the
	// watcher and report a clean completion under a dead context.
	if err := ctx.Err(); err != nil {
		if err == context.DeadlineExceeded {
			s.setStop(StopDeadline, nil)
		} else {
			s.setStop(StopCanceled, context.Cause(ctx))
		}
	}

	// Watch ctx while the search runs. A context deadline is a budget
	// (StopDeadline, nil error); anything else is an abort (StopCanceled,
	// context.Cause returned).
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			if ctx.Err() == context.DeadlineExceeded {
				s.setStop(StopDeadline, nil)
			} else {
				s.setStop(StopCanceled, context.Cause(ctx))
			}
		case <-stopWatch:
		}
	}()

	if opts.Deterministic {
		s.runDeterministic(workers)
	} else {
		s.runParallel(workers)
	}
	close(stopWatch)
	<-watchDone
	return s.finish(now(), workers)
}

// node is one open subproblem: the parent relaxation bound plus an
// immutable chain of branching bound changes back to the root.
type node struct {
	bound float64  // parent relaxation objective in max-sense (+Inf for root)
	seq   int64    // creation sequence number; deterministic tie-break
	chain *bchange // branching decisions, newest first; nil at the root
}

// bchange is one branching decision: variable j gained lower bound lo
// and/or upper bound up. math.Inf(-1)/math.Inf(1) mean "unchanged".
type bchange struct {
	j      int
	lo, up float64
	prev   *bchange
}

// frontier is the shared best-bound priority queue. heap is ordered by
// bound descending, then seq ascending, so ties resolve to the oldest node
// and the exploration order is reproducible.
type frontier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   []*node
	active int // nodes popped but not yet finished
}

// search is the shared state of one SolveContext call.
type search struct {
	p    *Problem
	n    int
	sign float64
	opts Options
	up0  []float64 // implied upper bound per variable (from singleton LE rows)
	skip []bool    // constraint rows provably redundant in every node LP
	now  func() time.Time

	start    time.Time
	deadline time.Time // zero when no TimeLimit

	f frontier

	// incBits is math.Float64bits of the incumbent objective in max-sense
	// (-Inf before the first incumbent); workers read it lock-free to prune.
	incBits atomic.Uint64
	iters   atomic.Int64

	// stopFlag mirrors stop for lock-free polling: 0 = running, >0 = the
	// StopReason, haltInternal = unbounded root or solver error.
	stopFlag atomic.Int32

	mu        sync.Mutex // guards everything below
	best      *Result    // Status Feasible while searching; nil if none yet
	stop      StopReason
	cause     error
	err       error
	unbounded bool
	improved  int

	// Frontier-lock-protected tallies (f.mu): nodesTotal counts popped
	// nodes, seqCtr numbers created nodes, idle accumulates worker waits.
	nodesTotal int
	seqCtr     int64
	idle       time.Duration
}

const haltInternal = -1

// stopped reports whether the search should halt.
func (s *search) stopped() bool { return s.stopFlag.Load() != 0 }

// setStop records the first stop reason and wakes all frontier waiters.
func (s *search) setStop(reason StopReason, cause error) {
	s.mu.Lock()
	if s.stop == StopNone && s.err == nil && !s.unbounded {
		s.stop = reason
		s.cause = cause
		s.stopFlag.Store(int32(reason))
	}
	s.mu.Unlock()
	s.f.cond.Broadcast()
}

// fail aborts the search with an internal solver error.
func (s *search) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
		s.stopFlag.Store(haltInternal)
	}
	s.mu.Unlock()
	s.f.cond.Broadcast()
}

// markUnbounded aborts the search because the root relaxation is unbounded.
func (s *search) markUnbounded() {
	s.mu.Lock()
	if !s.unbounded && s.err == nil {
		s.unbounded = true
		s.stopFlag.Store(haltInternal)
	}
	s.mu.Unlock()
	s.f.cond.Broadcast()
}

// incumbentValue returns the incumbent objective in max-sense (-Inf when
// there is none yet). Lock-free; safe from any goroutine.
func (s *search) incumbentValue() float64 {
	return math.Float64frombits(s.incBits.Load())
}

// tryCandidate verifies cand against the full problem and adopts it as the
// new incumbent when strictly better. Safe for concurrent use; cand is
// copied on adoption.
func (s *search) tryCandidate(cand []float64) {
	if cand == nil || len(cand) != s.n {
		return
	}
	x := roundIntegers(cand, s.p.Integer)
	if !s.p.feasible(x) {
		return
	}
	obj := s.p.objectiveOf(x)
	v := s.sign * obj
	if v <= s.incumbentValue() {
		return // lock-free fast path: not an improvement
	}
	s.mu.Lock()
	if s.best == nil || v > s.sign*s.best.Objective {
		xc := append([]float64(nil), x...)
		s.best = &Result{Status: Feasible, X: xc, Objective: obj}
		s.improved++
		s.incBits.Store(math.Float64bits(v))
	}
	s.mu.Unlock()
}

// prunable reports whether a node with the given max-sense bound cannot
// improve on the incumbent (bound dominance or the RelGap tolerance).
// Because the frontier is ordered by bound, a prunable top node makes the
// entire heap prunable.
func (s *search) prunable(bound, inc float64) bool {
	if math.IsInf(inc, -1) {
		return false
	}
	if bound <= inc+intEps {
		return true
	}
	if s.opts.RelGap > 0 && inc >= bound-s.opts.RelGap*math.Abs(bound) {
		return true
	}
	return false
}

// pushRoot seeds the frontier.
func (s *search) pushRoot() {
	s.f.mu.Lock()
	heapPush(&s.f.heap, &node{bound: math.Inf(1), seq: s.seqCtr})
	s.seqCtr++
	s.f.mu.Unlock()
}

// pushChildren creates the two children of parent from branching variable j
// at fractional value v and publishes them. The ceil ("take it") child gets
// the smaller sequence number so it is explored first on bound ties, which
// tends to reach incumbents sooner in packing problems.
func (s *search) pushChildren(parent *node, bound float64, j int, v float64) {
	ceil := &node{bound: bound, chain: &bchange{j: j, lo: math.Ceil(v), up: math.Inf(1), prev: parent.chain}}
	floor := &node{bound: bound, chain: &bchange{j: j, lo: math.Inf(-1), up: math.Floor(v), prev: parent.chain}}
	s.f.mu.Lock()
	ceil.seq = s.seqCtr
	floor.seq = s.seqCtr + 1
	s.seqCtr += 2
	heapPush(&s.f.heap, ceil)
	heapPush(&s.f.heap, floor)
	s.f.mu.Unlock()
	s.f.cond.Broadcast()
}

// popNode hands out the next frontier node, blocking while other workers
// may still publish children. It returns false when the search is over:
// frontier exhausted, a limit hit, or the search stopped. Limit checks run
// under the frontier lock, so opts.Now is never called concurrently.
func (s *search) popNode() (*node, bool) {
	f := &s.f
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if s.stopped() {
			return nil, false
		}
		inc := s.incumbentValue()
		if len(f.heap) > 0 && s.prunable(f.heap[0].bound, inc) {
			f.heap = f.heap[:0] // top bound dominates: everything is prunable
		}
		if len(f.heap) == 0 {
			if f.active == 0 {
				f.cond.Broadcast() // search exhausted: release the others
				return nil, false
			}
			t0 := s.now()
			f.cond.Wait()
			s.idle += s.now().Sub(t0)
			continue
		}
		if s.opts.MaxNodes > 0 && s.nodesTotal >= s.opts.MaxNodes {
			f.mu.Unlock()
			s.setStop(StopNodeLimit, nil)
			f.mu.Lock()
			return nil, false
		}
		if !s.deadline.IsZero() && s.now().After(s.deadline) {
			f.mu.Unlock()
			s.setStop(StopDeadline, nil)
			f.mu.Lock()
			return nil, false
		}
		nd := heapPop(&f.heap)
		f.active++
		s.nodesTotal++
		return nd, true
	}
}

// nodeDone retires a popped node and wakes waiters if the search drained.
func (s *search) nodeDone() {
	f := &s.f
	f.mu.Lock()
	f.active--
	drained := f.active == 0 && len(f.heap) == 0
	f.mu.Unlock()
	if drained {
		f.cond.Broadcast()
	}
}

// runParallel is the free-running mode: workers race on the shared
// frontier, pruning against the live incumbent bound. After evaluating a
// node a worker dives on the ceil child (publishing only the floor
// sibling): each dive level fixes another integer variable, so the
// fix-and-substitute presolve keeps shrinking the subproblem and per-node
// cost falls with depth — where the throughput win over a clone-and-solve
// engine comes from — while integral leaves surface incumbents early.
func (s *search) runParallel(workers int) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := newWorker(s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var o outcome
			for {
				nd, ok := s.popNode()
				if !ok {
					return
				}
				for {
					w.eval(nd, s.incumbentValue(), &o)
					child := s.applyDive(nd, &o)
					if child == nil || !s.claimDive(child) {
						break
					}
					nd = child
				}
				s.nodeDone()
			}
		}()
	}
	wg.Wait()
}

// apply folds one evaluated node's outcome into the shared state.
func (s *search) apply(nd *node, o *outcome) {
	if o.err != nil {
		s.fail(o.err)
		return
	}
	if o.unbounded {
		if nd.chain == nil {
			s.markUnbounded()
		}
		return // a branched unbounded relaxation is unexplorable; prune
	}
	for _, c := range o.cands {
		s.tryCandidate(c)
	}
	if o.branchJ >= 0 {
		s.pushChildren(nd, o.bound, o.branchJ, o.branchV)
	}
}

// applyDive folds one outcome like apply, but keeps the ceil ("take it")
// child for the evaluating worker to dive on: only the floor sibling is
// published to the frontier. The returned child is not yet claimed — the
// worker must pass it through claimDive before evaluating it.
func (s *search) applyDive(nd *node, o *outcome) *node {
	if o.err != nil {
		s.fail(o.err)
		return nil
	}
	if o.unbounded {
		if nd.chain == nil {
			s.markUnbounded()
		}
		return nil
	}
	for _, c := range o.cands {
		s.tryCandidate(c)
	}
	if o.branchJ < 0 {
		return nil
	}
	ceil := &node{bound: o.bound, chain: &bchange{j: o.branchJ, lo: math.Ceil(o.branchV), up: math.Inf(1), prev: nd.chain}}
	floor := &node{bound: o.bound, chain: &bchange{j: o.branchJ, lo: math.Inf(-1), up: math.Floor(o.branchV), prev: nd.chain}}
	s.f.mu.Lock()
	ceil.seq = s.seqCtr
	floor.seq = s.seqCtr + 1
	s.seqCtr += 2
	heapPush(&s.f.heap, floor)
	s.f.mu.Unlock()
	s.f.cond.Broadcast()
	return ceil
}

// claimDive registers a kept dive child as the worker's next node under
// popNode's limit checks. On a stop the child returns to the frontier so
// no subtree is silently lost; a bound-pruned child is discarded. The
// worker's active claim carries over from the parent, so nodeDone is not
// called between dive levels.
func (s *search) claimDive(nd *node) bool {
	f := &s.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if s.stopped() {
		heapPush(&f.heap, nd)
		return false
	}
	if s.prunable(nd.bound, s.incumbentValue()) {
		return false
	}
	if s.opts.MaxNodes > 0 && s.nodesTotal >= s.opts.MaxNodes {
		f.mu.Unlock()
		s.setStop(StopNodeLimit, nil)
		f.mu.Lock()
		heapPush(&f.heap, nd)
		return false
	}
	if !s.deadline.IsZero() && s.now().After(s.deadline) {
		f.mu.Unlock()
		s.setStop(StopDeadline, nil)
		f.mu.Lock()
		heapPush(&f.heap, nd)
		return false
	}
	s.nodesTotal++
	return true
}

// runDeterministic is the round-synchronized mode: each round pops a fixed
// batch off the frontier (independent of the worker count), evaluates it in
// parallel against the round-start incumbent, and applies the outcomes in
// node order. The explored set — and therefore the result — is identical
// for any Workers value.
func (s *search) runDeterministic(workers int) {
	pool := make([]*worker, workers)
	for i := range pool {
		pool[i] = newWorker(s)
	}
	batch := make([]*node, 0, detRoundSize)
	outs := make([]outcome, detRoundSize)
	for {
		if s.stopped() {
			return
		}
		s.f.mu.Lock()
		inc := s.incumbentValue()
		batch = batch[:0]
		for len(s.f.heap) > 0 && len(batch) < detRoundSize {
			if s.prunable(s.f.heap[0].bound, inc) {
				s.f.heap = s.f.heap[:0]
				break
			}
			if s.opts.MaxNodes > 0 && s.nodesTotal+len(batch) >= s.opts.MaxNodes {
				if len(batch) == 0 {
					s.f.mu.Unlock()
					s.setStop(StopNodeLimit, nil)
					return
				}
				break // finish the allowed remainder; flag on the next round
			}
			batch = append(batch, heapPop(&s.f.heap))
		}
		if len(batch) > 0 {
			if !s.deadline.IsZero() && s.now().After(s.deadline) {
				s.f.mu.Unlock()
				s.setStop(StopDeadline, nil)
				return
			}
			s.nodesTotal += len(batch)
		}
		s.f.mu.Unlock()
		if len(batch) == 0 {
			return // frontier exhausted
		}
		s.evalBatch(pool, batch, inc, outs)
		for i, nd := range batch {
			s.apply(nd, &outs[i])
			if s.stopFlag.Load() == haltInternal {
				return
			}
		}
	}
}

// evalBatch evaluates batch[i] into outs[i], fanning out over the worker
// pool when it helps. Workers only write their own outs slot; candidates
// and children are applied later, in order, by the scheduler.
func (s *search) evalBatch(pool []*worker, batch []*node, inc float64, outs []outcome) {
	if len(pool) == 1 || len(batch) == 1 {
		for i, nd := range batch {
			pool[0].eval(nd, inc, &outs[i])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	nw := len(pool)
	if nw > len(batch) {
		nw = len(batch)
	}
	for g := 0; g < nw; g++ {
		w := pool[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				w.eval(batch[i], inc, &outs[i])
			}
		}()
	}
	wg.Wait()
}

// finish assembles the final Result and records metrics.
func (s *search) finish(end time.Time, workers int) (Result, error) {
	if s.err != nil {
		return Result{}, s.err
	}
	res := Result{
		Nodes:                 s.nodesTotal,
		SimplexIterations:     int(s.iters.Load()),
		Stop:                  s.stop,
		Cause:                 s.cause,
		Workers:               workers,
		Elapsed:               end.Sub(s.start),
		IncumbentImprovements: s.improved,
		WorkerIdle:            s.idle,
	}
	if s.unbounded {
		res.Status = Unbounded
		res.Stop, res.Cause = StopNone, nil
		s.opts.Metrics.record(&res)
		return res, nil
	}
	res.DeadlineHit = res.Stop == StopDeadline
	res.NodeLimitHit = res.Stop == StopNodeLimit
	truncated := res.Stop != StopNone
	switch {
	case s.best != nil:
		res.X = s.best.X
		res.Objective = s.best.Objective
		if truncated {
			res.Status = Feasible
		} else {
			res.Status = Optimal
		}
	case truncated:
		res.Status = Feasible // stopped before proving anything either way
	default:
		res.Status = Infeasible
	}
	s.opts.Metrics.record(&res)
	if res.Stop == StopCanceled {
		err := res.Cause
		if err == nil {
			err = context.Canceled
		}
		return res, err
	}
	return res, nil
}

// outcome is what evaluating one node produced. Candidate slices are
// freshly allocated; everything else is plain data, so outcomes can be
// buffered and applied later without aliasing worker scratch.
type outcome struct {
	cands     [][]float64 // integral relaxations / heuristic candidates
	branchJ   int         // branching variable, -1 when the node is a leaf
	branchV   float64     // fractional value of branchJ
	bound     float64     // node relaxation objective in max-sense
	unbounded bool
	err       error
}

// worker holds one goroutine's scratch: a reusable lp.Solver plus buffers
// for materializing a node's bounds and building its reduced subproblem.
// Branching constraints on binaries become variable fixings
// (fix-and-substitute) instead of extra rows, so the common all-LE
// placement subproblems keep an all-slack basis and skip simplex phase 1
// entirely.
type worker struct {
	s       *search
	solver  lp.Solver
	lo, up  []float64 // current node's variable bounds
	touched []int     // variables whose bounds deviate from [0, up0]
	mark    []int64   // dedup generation stamp per variable
	gen     int64
	redIdx  []int // full index -> reduced column, -1 when fixed
	free    []int // reduced column -> full index
	objBuf  []float64
	consBuf []lp.Constraint
	coef    []float64 // arena for reduced constraint coefficient rows
	xfull   []float64 // full-length relaxation vector (fixed + free values)
}

func newWorker(s *search) *worker {
	n := s.n
	w := &worker{
		s:      s,
		lo:     make([]float64, n),
		up:     make([]float64, n),
		mark:   make([]int64, n),
		redIdx: make([]int, n),
		free:   make([]int, n),
		objBuf: make([]float64, n),
		xfull:  make([]float64, n),
	}
	copy(w.up, s.up0)
	return w
}

// eval solves nd's relaxation into o, pruning against the max-sense
// incumbent bound inc. A zero-valued o with branchJ == -1 and no
// candidates means the node was pruned (infeasible or bound-dominated).
func (w *worker) eval(nd *node, inc float64, o *outcome) {
	s := w.s
	*o = outcome{branchJ: -1, cands: o.cands[:0]}
	// Restore default bounds from the previous node, then apply the chain.
	for _, j := range w.touched {
		w.lo[j] = 0
		w.up[j] = s.up0[j]
	}
	w.touched = w.touched[:0]
	for c := nd.chain; c != nil; c = c.prev {
		w.touched = append(w.touched, c.j)
		if c.lo > w.lo[c.j] {
			w.lo[c.j] = c.lo
		}
		if c.up < w.up[c.j] {
			w.up[c.j] = c.up
		}
	}
	// Tighten integer bounds by activity reasoning before classifying:
	// branching that fixes one binary cascades through its rows (an
	// assignment row with one member at 1 zeroes the siblings), so dives
	// shed several columns per level instead of one.
	if !w.propagate() {
		return // propagation proved the domain empty
	}
	// Classify variables; fold fixed integers into the RHS and objective.
	nFree := 0
	objOffset := 0.0
	for j := 0; j < s.n; j++ {
		if w.lo[j] > w.up[j]+intEps {
			return // empty domain: infeasible
		}
		if s.p.Integer[j] && w.up[j]-w.lo[j] <= intEps {
			v := math.Round(w.lo[j])
			w.xfull[j] = v
			w.redIdx[j] = -1
			objOffset += s.p.LP.Objective[j] * v
			continue
		}
		w.redIdx[j] = nFree
		w.free[nFree] = j
		nFree++
	}
	if nFree == 0 {
		// Every variable fixed by branching: the chain itself is the
		// candidate; no relaxation needed.
		o.cands = append(o.cands, append([]float64(nil), w.xfull...))
		return
	}
	// Reduced constraints: substitute fixed values into each row, dropping
	// rows that became vacuous and detecting cheap infeasibility.
	maxRows := len(s.p.LP.Constraints) + 2*len(w.touched)
	if need := maxRows * nFree; cap(w.coef) < need {
		w.coef = make([]float64, need)
	}
	coef := w.coef
	off := 0
	w.consBuf = w.consBuf[:0]
	for ci := range s.p.LP.Constraints {
		if s.skip[ci] {
			continue
		}
		c := &s.p.LP.Constraints[ci]
		seg := coef[off : off+nFree]
		for k := range seg {
			seg[k] = 0
		}
		rhs := c.RHS
		nz := false
		nonneg := true
		for j, a := range c.Coeffs {
			if ri := w.redIdx[j]; ri >= 0 {
				seg[ri] = a
				if a > zeroTol || a < -zeroTol {
					nz = true
				}
				if a < 0 {
					nonneg = false
				}
			} else {
				rhs -= a * w.xfull[j]
			}
		}
		if !nz {
			switch c.Sense {
			case lp.LE:
				if rhs < -feasTol {
					return // fixed variables alone violate the row
				}
			case lp.GE:
				if rhs > feasTol {
					return
				}
			case lp.EQ:
				if rhs > feasTol || rhs < -feasTol {
					return
				}
			}
			continue // vacuous row: drop it
		}
		if c.Sense == lp.LE && nonneg && rhs < -feasTol {
			return // x >= 0 forces lhs >= 0 > rhs: infeasible without an LP
		}
		w.consBuf = append(w.consBuf, lp.Constraint{Coeffs: seg, Sense: c.Sense, RHS: rhs})
		off += nFree
	}
	// Explicit bound rows for free variables whose branch bounds tightened
	// (general integers; binaries always end up fixed instead).
	w.gen++
	for _, j := range w.touched {
		if w.mark[j] == w.gen {
			continue
		}
		w.mark[j] = w.gen
		ri := w.redIdx[j]
		if ri < 0 {
			continue
		}
		if w.lo[j] > intEps {
			seg := coef[off : off+nFree]
			for k := range seg {
				seg[k] = 0
			}
			seg[ri] = 1
			w.consBuf = append(w.consBuf, lp.Constraint{Coeffs: seg, Sense: lp.GE, RHS: w.lo[j]})
			off += nFree
		}
		if w.up[j] < s.up0[j]-intEps {
			seg := coef[off : off+nFree]
			for k := range seg {
				seg[k] = 0
			}
			seg[ri] = 1
			w.consBuf = append(w.consBuf, lp.Constraint{Coeffs: seg, Sense: lp.LE, RHS: w.up[j]})
			off += nFree
		}
	}
	obj := w.objBuf[:nFree]
	for k, j := range w.free[:nFree] {
		obj[k] = s.p.LP.Objective[j]
	}
	sub := lp.Problem{Maximize: s.p.LP.Maximize, Objective: obj, Constraints: w.consBuf}
	r, err := w.solver.Solve(&sub)
	if err != nil {
		o.err = err
		return
	}
	s.iters.Add(int64(r.Iterations))
	switch r.Status {
	case lp.Infeasible:
		return
	case lp.Unbounded:
		o.unbounded = true
		return
	case lp.IterationLimit:
		return // treat as unexplorable; keeps the search sound
	}
	relax := s.sign * (r.Objective + objOffset)
	o.bound = relax
	if relax <= inc+intEps {
		return // bound-dominated
	}
	for k, j := range w.free[:nFree] {
		w.xfull[j] = r.X[k]
	}
	// Find the most fractional free integer variable.
	branchJ, frac := -1, 0.0
	for _, j := range w.free[:nFree] {
		if !s.p.Integer[j] {
			continue
		}
		f := w.xfull[j] - math.Floor(w.xfull[j])
		dist := math.Min(f, 1-f)
		if dist > intEps && dist > frac {
			frac = dist
			branchJ = j
		}
	}
	if branchJ == -1 {
		o.cands = append(o.cands, append([]float64(nil), w.xfull...))
		return
	}
	if s.opts.Heuristic != nil {
		if cand := s.opts.Heuristic(w.xfull); cand != nil {
			o.cands = append(o.cands, append([]float64(nil), cand...))
		}
	}
	o.branchJ = branchJ
	o.branchV = w.xfull[branchJ]
}

// maxPropRounds bounds the fixpoint iteration in propagate; most of the
// benefit lands in the first pass (row sees a newly fixed member), the
// rest by the second.
const maxPropRounds = 4

// propagate tightens the integer-variable bounds in w.lo/w.up by
// min-activity reasoning over every row, iterating to a (bounded)
// fixpoint. The tightened bounds are implied for every integer-feasible
// point, so imposing them on the relaxation keeps the node bound valid —
// and lets the fix-and-substitute step below drop the affected columns
// entirely. Returns false when a row's minimum activity already exceeds
// its RHS: the domain holds no integer point.
func (w *worker) propagate() bool {
	for round := 0; round < maxPropRounds; round++ {
		changed := false
		for ci := range w.s.p.LP.Constraints {
			if w.s.skip[ci] {
				continue // a singleton bound row: already folded into w.up
			}
			c := &w.s.p.LP.Constraints[ci]
			// lhs <= rhs reasoning covers LE and EQ rows; lhs >= rhs (GE
			// and EQ) is the same row mirrored through sign.
			if c.Sense == lp.LE || c.Sense == lp.EQ {
				if !w.propagateRow(c.Coeffs, c.RHS, 1, &changed) {
					return false
				}
			}
			if c.Sense == lp.GE || c.Sense == lp.EQ {
				if !w.propagateRow(c.Coeffs, -c.RHS, -1, &changed) {
					return false
				}
			}
		}
		if !changed {
			return true
		}
	}
	return true
}

// propagateRow applies one row in "sign*coeffs · x <= rhs" form: with the
// row's minimum activity over the current box, each member's bound
// tightens to what the remaining slack allows, rounded to integrality.
// Variables it tightens are appended to w.touched so eval restores them
// on the next node.
func (w *worker) propagateRow(coeffs []float64, rhs, sign float64, changed *bool) bool {
	s := w.s
	minAct := 0.0
	for j, a0 := range coeffs {
		a := sign * a0
		if a > zeroTol {
			minAct += a * w.lo[j]
		} else if a < -zeroTol {
			u := w.up[j]
			if math.IsInf(u, 1) {
				return true // an unbounded term: no finite activity floor
			}
			minAct += a * u
		}
	}
	if minAct > rhs+feasTol {
		return false
	}
	slack := rhs - minAct
	for j, a0 := range coeffs {
		if !s.p.Integer[j] {
			continue
		}
		a := sign * a0
		if a > zeroTol {
			newUp := math.Floor(w.lo[j] + slack/a + intEps)
			if newUp < w.up[j]-intEps {
				w.up[j] = newUp
				w.touched = append(w.touched, j)
				*changed = true
			}
		} else if a < -zeroTol {
			if math.IsInf(w.up[j], 1) {
				continue
			}
			newLo := math.Ceil(w.up[j] + slack/a - intEps)
			if newLo > w.lo[j]+intEps {
				w.lo[j] = newLo
				w.touched = append(w.touched, j)
				*changed = true
			}
		}
	}
	return true
}

// redundantSingletonRows marks singleton LE rows ("a·x_j <= b", a > 0)
// whose bound is already implied by some other all-nonnegative LE row:
// sum_k c_k·x_k <= r with every c_k >= 0 and x >= 0 forces
// x_j <= r/c_j for each member, and fix-and-substitute only ever lowers
// such a row's RHS (fixed values are nonnegative), so the domination
// holds at every branch-and-bound node. Workers skip marked rows when
// building a node's reduced LP; on placement problems this removes the
// per-binary "x_j <= 1" rows — most of the tableau — because the Eq. 1
// assignment rows already imply them.
func redundantSingletonRows(p *Problem) []bool {
	n := p.LP.NumVars()
	dom := make([]float64, n) // tightest bound implied by non-singleton rows
	for j := range dom {
		dom[j] = math.Inf(1)
	}
	type singleton struct {
		row   int
		j     int
		bound float64
	}
	var singles []singleton
	for ci := range p.LP.Constraints {
		c := &p.LP.Constraints[ci]
		if c.Sense != lp.LE {
			continue
		}
		idx, nz, nonneg := -1, 0, true
		for j, a := range c.Coeffs {
			if a > zeroTol {
				idx = j
				nz++
			} else if a < -zeroTol {
				nonneg = false
				break
			}
		}
		if !nonneg || nz == 0 {
			continue
		}
		if nz == 1 {
			singles = append(singles, singleton{row: ci, j: idx, bound: c.RHS / c.Coeffs[idx]})
			continue
		}
		for j, a := range c.Coeffs {
			if a > zeroTol {
				if b := c.RHS / a; b < dom[j] {
					dom[j] = b
				}
			}
		}
	}
	skip := make([]bool, len(p.LP.Constraints))
	for _, sg := range singles {
		if dom[sg.j] <= sg.bound+intEps {
			skip[sg.row] = true
		}
	}
	return skip
}

// impliedUpperBounds extracts per-variable upper bounds from singleton LE
// rows (a*x_j <= b with a > 0) — the "x_j <= 1" rows every binary carries.
// The rows stay in the problem; the bounds let branching fix variables
// instead of stacking constraint rows.
func impliedUpperBounds(p *Problem) []float64 {
	n := p.LP.NumVars()
	up := make([]float64, n)
	for j := range up {
		up[j] = math.Inf(1)
	}
	for ci := range p.LP.Constraints {
		c := &p.LP.Constraints[ci]
		if c.Sense != lp.LE {
			continue
		}
		idx := -1
		single := true
		for j, a := range c.Coeffs {
			if a > zeroTol || a < -zeroTol {
				if idx != -1 {
					single = false
					break
				}
				if a < 0 {
					single = false
					break
				}
				idx = j
			}
		}
		if !single || idx == -1 {
			continue
		}
		if b := c.RHS / c.Coeffs[idx]; b < up[idx] {
			up[idx] = b
		}
	}
	return up
}

// Frontier heap: max by bound, ties to the smallest sequence number.

func nodeBefore(a, b *node) bool {
	if a.bound > b.bound {
		return true
	}
	if a.bound < b.bound {
		return false
	}
	return a.seq < b.seq
}

func heapPush(h *[]*node, nd *node) {
	*h = append(*h, nd)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeBefore((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func heapPop(h *[]*node) *node {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = nil
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		c := l
		if r < last && nodeBefore(old[r], old[l]) {
			c = r
		}
		if !nodeBefore(old[c], old[i]) {
			break
		}
		old[i], old[c] = old[c], old[i]
		i = c
	}
	return top
}

// feasible reports whether x satisfies every constraint (with tolerance)
// and every integrality requirement, and is non-negative.
func (p *Problem) feasible(x []float64) bool {
	for j, v := range x {
		if v < -1e-9 {
			return false
		}
		if p.Integer[j] && math.Abs(v-math.Round(v)) > intEps {
			return false
		}
	}
	for _, c := range p.LP.Constraints {
		lhs := 0.0
		for j, a := range c.Coeffs {
			lhs += a * x[j]
		}
		switch c.Sense {
		case lp.LE:
			if lhs > c.RHS+feasTol {
				return false
			}
		case lp.GE:
			if lhs < c.RHS-feasTol {
				return false
			}
		case lp.EQ:
			if math.Abs(lhs-c.RHS) > feasTol {
				return false
			}
		}
	}
	return true
}

// objectiveOf evaluates the objective at x.
func (p *Problem) objectiveOf(x []float64) float64 {
	obj := 0.0
	for j, c := range p.LP.Objective {
		obj += c * x[j]
	}
	return obj
}

// ObjectiveValue evaluates the problem objective at x (no feasibility
// check). It lets callers compare warm-start candidates before handing the
// better one to Options.Incumbent.
func (p *Problem) ObjectiveValue(x []float64) float64 { return p.objectiveOf(x) }

// roundIntegers snaps near-integral entries to exact integers.
func roundIntegers(x []float64, integer []bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, isInt := range integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

// GreedyBinaryIncumbent produces a feasible 0/1 assignment for a pure
// binary maximization problem by setting variables to 1 in descending
// objective-coefficient order whenever all constraints stay satisfied. It
// is used to warm-start and as an ablation baseline for the placement ILP.
// Only LE constraints with non-negative coefficients are supported; other
// constraints cause a nil return.
func GreedyBinaryIncumbent(p *Problem) []float64 {
	n := p.LP.NumVars()
	for _, c := range p.LP.Constraints {
		if c.Sense != lp.LE {
			return nil
		}
		for _, a := range c.Coeffs {
			if a < 0 {
				return nil
			}
		}
	}
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	obj := p.LP.Objective
	sort.Slice(order, func(a, b int) bool { return obj[order[a]] > obj[order[b]] })
	x := make([]float64, n)
	slack := make([]float64, len(p.LP.Constraints))
	for i, c := range p.LP.Constraints {
		slack[i] = c.RHS
	}
	for _, j := range order {
		if obj[j] <= 0 {
			continue
		}
		ok := true
		for i, c := range p.LP.Constraints {
			var a float64
			if j < len(c.Coeffs) {
				a = c.Coeffs[j]
			}
			if a > slack[i]+1e-9 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		x[j] = 1
		for i, c := range p.LP.Constraints {
			if j < len(c.Coeffs) {
				slack[i] -= c.Coeffs[j]
			}
		}
	}
	return x
}
