package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"flex/internal/lp"
)

// Solve is the ctx-less shorthand these tests use. Production code calls
// SolveContext with the caller's budget; the Background wrapper lives here
// so ctxflow keeps it out of the library surface.
func Solve(p *Problem, opts Options) (Result, error) {
	return SolveContext(context.Background(), p, opts)
}

func binaryProblem(maximize bool, obj []float64) *Problem {
	n := len(obj)
	p := &Problem{
		LP:      lp.Problem{Maximize: maximize, Objective: obj},
		Integer: make([]bool, n),
	}
	for j := 0; j < n; j++ {
		p.Integer[j] = true
		coeffs := make([]float64, n)
		coeffs[j] = 1
		p.LP.AddConstraint(coeffs, lp.LE, 1)
	}
	return p
}

func TestSolveKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. weights 5a+4b+3c <= 7, binary.
	// Optimal: a + c? 10+4=14 weight 8 >7. a alone: 10 (w5). b+c: 10 (w7).
	// a+b: 16 w9 no. Best is 14? a+c w=8 infeasible. So max(10, 10)=10...
	// Use classic: values 60,100,120 weights 10,20,30 cap 50 → 100+120=220.
	p := binaryProblem(true, []float64{60, 100, 120})
	p.LP.AddConstraint([]float64{10, 20, 30}, lp.LE, 50)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Objective-220) > 1e-6 {
		t.Fatalf("objective = %v, want 220", r.Objective)
	}
	if r.X[0] != 0 || r.X[1] != 1 || r.X[2] != 1 {
		t.Fatalf("x = %v, want [0 1 1]", r.X)
	}
}

func TestSolveIntegerVsRelaxationGap(t *testing.T) {
	// LP relaxation would take fractional items; MILP must not.
	p := binaryProblem(true, []float64{10, 10})
	p.LP.AddConstraint([]float64{6, 6}, lp.LE, 7) // only one item fits
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-10) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 10", r.Status, r.Objective)
	}
	for _, x := range r.X {
		if math.Abs(x-math.Round(x)) > 1e-6 {
			t.Fatalf("non-integral solution %v", r.X)
		}
	}
}

func TestSolveMinimization(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 3, x,y integer (bounded by <= 10).
	p := &Problem{
		LP:      lp.Problem{Maximize: false, Objective: []float64{3, 2}},
		Integer: []bool{true, true},
	}
	p.LP.AddConstraint([]float64{1, 1}, lp.GE, 3)
	p.LP.AddConstraint([]float64{1, 0}, lp.LE, 10)
	p.LP.AddConstraint([]float64{0, 1}, lp.LE, 10)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-6) > 1e-6 { // y=3
		t.Fatalf("got %v obj=%v, want optimal 6", r.Status, r.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := binaryProblem(true, []float64{1})
	p.LP.AddConstraint([]float64{1}, lp.GE, 2) // x>=2 but x<=1
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		LP:      lp.Problem{Maximize: true, Objective: []float64{1}},
		Integer: []bool{true},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestSolveBadMask(t *testing.T) {
	p := &Problem{LP: lp.Problem{Maximize: true, Objective: []float64{1, 2}}, Integer: []bool{true}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("expected error for wrong Integer mask length")
	}
}

func TestSolveMixedIntegerContinuous(t *testing.T) {
	// max x + y, x integer <= 2.5 bound via constraint, y continuous <= 1.5:
	// x=2 (integer), y=1.5 → 3.5.
	p := &Problem{
		LP:      lp.Problem{Maximize: true, Objective: []float64{1, 1}},
		Integer: []bool{true, false},
	}
	p.LP.AddConstraint([]float64{1, 0}, lp.LE, 2.5)
	p.LP.AddConstraint([]float64{0, 1}, lp.LE, 1.5)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-3.5) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 3.5", r.Status, r.Objective)
	}
	if math.Abs(r.X[0]-2) > 1e-6 {
		t.Fatalf("x0 = %v, want 2", r.X[0])
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	// A somewhat larger knapsack; with a fake clock that expires after the
	// first node, we should still get a Feasible (not Optimal) answer if
	// any incumbent was found, or Feasible with nil X otherwise.
	rng := rand.New(rand.NewSource(5))
	n := 12
	obj := make([]float64, n)
	w := make([]float64, n)
	for j := range obj {
		obj[j] = 1 + rng.Float64()*9
		w[j] = 1 + rng.Float64()*9
	}
	p := binaryProblem(true, obj)
	p.LP.AddConstraint(w, lp.LE, 15)

	calls := 0
	fakeNow := func() time.Time {
		calls++
		return time.Unix(int64(calls), 0) // 1s per call; limit hits fast
	}
	r, err := Solve(p, Options{TimeLimit: 2 * time.Second, Now: fakeNow})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Feasible {
		t.Fatalf("status = %v, want feasible (deadline)", r.Status)
	}
}

func TestMaxNodesLimit(t *testing.T) {
	p := binaryProblem(true, []float64{3, 5, 7, 9})
	p.LP.AddConstraint([]float64{2, 3, 4, 5}, lp.LE, 7)
	r, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes > 1 {
		t.Fatalf("explored %d nodes, limit 1", r.Nodes)
	}
	if r.Status == Optimal {
		t.Fatal("cannot prove optimality in 1 node for a fractional root")
	}
}

// Exhaustive cross-check: B&B matches brute force on random small binary
// knapsacks.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5) // 3..7 binaries
		obj := make([]float64, n)
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = math.Round(rng.Float64()*20) + 1
			w1[j] = math.Round(rng.Float64()*10) + 1
			w2[j] = math.Round(rng.Float64()*10) + 1
		}
		cap1 := math.Round(rng.Float64()*20) + 5
		cap2 := math.Round(rng.Float64()*20) + 5
		p := binaryProblem(true, obj)
		p.LP.AddConstraint(w1, lp.LE, cap1)
		p.LP.AddConstraint(w2, lp.LE, cap2)

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			s1, s2, v := 0.0, 0.0, 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					s1 += w1[j]
					s2 += w2[j]
					v += obj[j]
				}
			}
			if s1 <= cap1 && s2 <= cap2 && v > best {
				best = v
			}
		}
		r, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		if math.Abs(r.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: B&B %v vs brute force %v", trial, r.Objective, best)
		}
	}
}

func TestGreedyBinaryIncumbent(t *testing.T) {
	p := binaryProblem(true, []float64{60, 100, 120})
	p.LP.AddConstraint([]float64{10, 20, 30}, lp.LE, 50)
	x := GreedyBinaryIncumbent(p)
	if x == nil {
		t.Fatal("greedy returned nil")
	}
	// Greedy by value picks 120 (w30) then 100 (w20) → cap exactly 50.
	if x[2] != 1 || x[1] != 1 || x[0] != 0 {
		t.Fatalf("greedy x = %v", x)
	}
	// Feasibility always holds.
	used := 10*x[0] + 20*x[1] + 30*x[2]
	if used > 50 {
		t.Fatalf("greedy violates capacity: %v", used)
	}
}

func TestGreedyRejectsUnsupportedForms(t *testing.T) {
	p := binaryProblem(true, []float64{1})
	p.LP.AddConstraint([]float64{1}, lp.GE, 0)
	if GreedyBinaryIncumbent(p) != nil {
		t.Fatal("greedy should reject GE constraints")
	}
	q := binaryProblem(true, []float64{1})
	q.LP.AddConstraint([]float64{-1}, lp.LE, 0)
	if GreedyBinaryIncumbent(q) != nil {
		t.Fatal("greedy should reject negative coefficients")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{Optimal: "optimal", Feasible: "feasible",
		Infeasible: "infeasible", Unbounded: "unbounded"} {
		if s.String() != want {
			t.Errorf("%d → %q, want %q", s, s.String(), want)
		}
	}
	if Status(7).String() != "Status(7)" {
		t.Error("unknown status")
	}
}

func TestSolveWithEqualityConstraint(t *testing.T) {
	// Exactly two of four items (equality), maximize value.
	p := binaryProblem(true, []float64{5, 4, 3, 2})
	p.LP.AddConstraint([]float64{1, 1, 1, 1}, lp.EQ, 2)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-9) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 9", r.Status, r.Objective)
	}
	count := 0.0
	for _, x := range r.X {
		count += x
	}
	if math.Abs(count-2) > 1e-6 {
		t.Fatalf("selected %v items, want exactly 2", count)
	}
}

func TestRelGapTerminatesEarly(t *testing.T) {
	// A loose gap accepts the first incumbent once it is close to the
	// bound. With gap=1.0 any positive incumbent ends the search.
	p := binaryProblem(true, []float64{3, 5, 7, 9, 11, 13})
	p.LP.AddConstraint([]float64{2, 3, 4, 5, 6, 7}, lp.LE, 11)
	exact, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Solve(p, Options{RelGap: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Status != Optimal && loose.Status != Feasible {
		t.Fatalf("loose status %v", loose.Status)
	}
	if loose.Nodes > exact.Nodes {
		t.Fatalf("loose gap explored more nodes (%d) than exact (%d)", loose.Nodes, exact.Nodes)
	}
	if loose.Objective > exact.Objective+1e-9 {
		t.Fatal("loose objective exceeds exact optimum")
	}
}

func TestHeuristicCandidateAdopted(t *testing.T) {
	// A heuristic that immediately returns the optimum must be adopted.
	p := binaryProblem(true, []float64{60, 100, 120})
	p.LP.AddConstraint([]float64{10, 20, 30}, lp.LE, 50)
	called := false
	r, err := Solve(p, Options{
		Heuristic: func(relaxed []float64) []float64 {
			called = true
			return []float64{0, 1, 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("heuristic never called")
	}
	if r.Status != Optimal || math.Abs(r.Objective-220) > 1e-6 {
		t.Fatalf("status=%v obj=%v", r.Status, r.Objective)
	}
}

func TestInvalidIncumbentIgnored(t *testing.T) {
	p := binaryProblem(true, []float64{60, 100, 120})
	p.LP.AddConstraint([]float64{10, 20, 30}, lp.LE, 50)
	// Infeasible incumbent (violates knapsack) and wrong-length incumbent
	// must both be ignored without corrupting the search.
	r, err := Solve(p, Options{Incumbent: []float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-220) > 1e-6 {
		t.Fatalf("status=%v obj=%v", r.Status, r.Objective)
	}
	r2, err := Solve(p, Options{Incumbent: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Status != Optimal {
		t.Fatalf("status=%v", r2.Status)
	}
}
