package milp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flex/internal/lp"
)

// randomKnapsack builds a seeded multi-constraint binary knapsack with n
// items; the instances have enough near-ties to force real branching.
func randomKnapsack(seed int64, n int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = 1 + float64(rng.Intn(40))
	}
	p := binaryProblem(true, obj)
	for k := 0; k < 2; k++ {
		w := make([]float64, n)
		var total float64
		for j := range w {
			w[j] = 1 + float64(rng.Intn(20))
			total += w[j]
		}
		p.LP.AddConstraint(w, lp.LE, math.Floor(total*0.45))
	}
	return p
}

// TestDeterministicAcrossWorkers is the determinism contract: with
// Options.Deterministic, serial and parallel runs of the same problem
// return the same objective, status, solution, and node count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 11} {
		p := randomKnapsack(seed, 14)
		ref, err := SolveContext(context.Background(), p, Options{Workers: 1, Deterministic: true})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{2, 4, 8} {
			r, err := SolveContext(context.Background(), p, Options{Workers: workers, Deterministic: true})
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			if r.Status != ref.Status {
				t.Errorf("seed %d workers=%d: status %v, serial %v", seed, workers, r.Status, ref.Status)
			}
			if math.Abs(r.Objective-ref.Objective) > 1e-9 {
				t.Errorf("seed %d workers=%d: objective %v, serial %v", seed, workers, r.Objective, ref.Objective)
			}
			if r.Nodes != ref.Nodes {
				t.Errorf("seed %d workers=%d: nodes %d, serial %d", seed, workers, r.Nodes, ref.Nodes)
			}
			for j := range ref.X {
				if math.Abs(r.X[j]-ref.X[j]) > 1e-9 {
					t.Errorf("seed %d workers=%d: x[%d]=%v, serial %v", seed, workers, j, r.X[j], ref.X[j])
					break
				}
			}
		}
	}
}

// TestParallelMatchesSerialObjective checks the weaker contract of the
// default (non-deterministic) mode: any worker count that runs the search
// to completion proves the same optimal objective.
func TestParallelMatchesSerialObjective(t *testing.T) {
	for _, seed := range []int64{5, 9} {
		p := randomKnapsack(seed, 12)
		ref, err := SolveContext(context.Background(), p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Status != Optimal {
			t.Fatalf("serial status = %v", ref.Status)
		}
		for _, workers := range []int{2, 4, 8} {
			r, err := SolveContext(context.Background(), p, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if r.Status != Optimal || math.Abs(r.Objective-ref.Objective) > 1e-9 {
				t.Errorf("workers=%d: got %v obj=%v, want optimal %v", workers, r.Status, r.Objective, ref.Objective)
			}
			if r.Workers != workers {
				t.Errorf("Result.Workers = %d, want %d", r.Workers, workers)
			}
		}
	}
}

// TestConcurrentIncumbentStress hammers the shared incumbent from many
// workers across many concurrent solves; run under -race it checks the
// lock-free bound publication and the mutex double-check path.
func TestConcurrentIncumbentStress(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := randomKnapsack(int64(100+g), 13)
			r, err := SolveContext(context.Background(), p, Options{Workers: 8})
			if err != nil {
				t.Errorf("solve %d: %v", g, err)
				return
			}
			if r.Status != Optimal {
				t.Errorf("solve %d: status %v", g, r.Status)
			}
			if r.IncumbentImprovements < 1 {
				t.Errorf("solve %d: no incumbent improvements recorded", g)
			}
		}(g)
	}
	wg.Wait()
}

// TestCancelReturnsIncumbent cancels mid-search and asserts a prompt
// return carrying the best incumbent found so far, Stop == StopCanceled,
// and context.Cause as the error.
func TestCancelReturnsIncumbent(t *testing.T) {
	p := randomKnapsack(21, 16)
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())

	// A heuristic that cancels once the search has an incumbent: the solve
	// must still hand that incumbent back.
	warm := GreedyBinaryIncumbent(p)
	if warm == nil {
		t.Fatal("greedy produced no warm start")
	}
	var once sync.Once
	opts := Options{
		Workers:   2,
		Incumbent: warm,
		Heuristic: func([]float64) []float64 {
			once.Do(func() { cancel(cause) })
			// Pace node evaluation so the remaining tree cannot be
			// exhausted before the cancellation watcher fires.
			time.Sleep(time.Millisecond)
			return nil
		},
	}
	start := time.Now()
	r, err := SolveContext(ctx, p, opts)
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want cause %v", err, cause)
	}
	if r.Stop != StopCanceled {
		t.Fatalf("Stop = %v, want StopCanceled", r.Stop)
	}
	if !errors.Is(r.Cause, cause) {
		t.Fatalf("Cause = %v, want %v", r.Cause, cause)
	}
	if r.X == nil {
		t.Fatal("canceled solve dropped the incumbent")
	}
	if want := p.ObjectiveValue(warm); r.Objective < want-1e-9 {
		t.Fatalf("objective %v worse than warm start %v", r.Objective, want)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestPreCanceledContext: a solve under an already-canceled context must
// not search, but still reports the verified warm start.
func TestPreCanceledContext(t *testing.T) {
	p := randomKnapsack(33, 12)
	warm := GreedyBinaryIncumbent(p)
	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("already done")
	cancel(cause)
	r, err := SolveContext(ctx, p, Options{Workers: 4, Incumbent: warm})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want %v", err, cause)
	}
	if r.Stop != StopCanceled {
		t.Fatalf("Stop = %v", r.Stop)
	}
	if warm != nil && r.X == nil {
		t.Fatal("warm start lost")
	}
}

// TestStopReasonAudit checks that every truncation path reports exactly
// one reason through both the new Stop field and the deprecated booleans.
func TestStopReasonAudit(t *testing.T) {
	base := randomKnapsack(21, 18) // 67 nodes serial: deep enough to truncate

	t.Run("complete", func(t *testing.T) {
		r, err := SolveContext(context.Background(), base, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if r.Stop != StopNone || r.DeadlineHit || r.NodeLimitHit || r.Cause != nil {
			t.Fatalf("complete search reported Stop=%v deadline=%v nodelimit=%v cause=%v",
				r.Stop, r.DeadlineHit, r.NodeLimitHit, r.Cause)
		}
	})

	t.Run("node-limit", func(t *testing.T) {
		r, err := SolveContext(context.Background(), base, Options{Workers: 2, MaxNodes: 3})
		if err != nil {
			t.Fatal(err)
		}
		if r.Stop != StopNodeLimit || !r.NodeLimitHit || r.DeadlineHit {
			t.Fatalf("Stop=%v NodeLimitHit=%v DeadlineHit=%v", r.Stop, r.NodeLimitHit, r.DeadlineHit)
		}
	})

	t.Run("options-timelimit", func(t *testing.T) {
		fake := time.Unix(0, 0)
		var mu sync.Mutex
		calls := 0
		now := func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			calls++
			return fake.Add(time.Duration(calls) * time.Second)
		}
		r, err := SolveContext(context.Background(), base, Options{Workers: 1, TimeLimit: time.Millisecond, Now: now})
		if err != nil {
			t.Fatal(err)
		}
		if r.Stop != StopDeadline || !r.DeadlineHit {
			t.Fatalf("Stop=%v DeadlineHit=%v", r.Stop, r.DeadlineHit)
		}
	})

	t.Run("ctx-deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
		defer cancel()
		time.Sleep(time.Millisecond)
		r, err := SolveContext(ctx, base, Options{Workers: 2})
		if err != nil {
			t.Fatalf("deadline must be a budget, not an error: %v", err)
		}
		if r.Stop != StopDeadline || !r.DeadlineHit {
			t.Fatalf("Stop=%v DeadlineHit=%v", r.Stop, r.DeadlineHit)
		}
	})
}

// TestDeterministicTruncationReproducible: Deterministic + MaxNodes gives
// identical truncated results for any worker count.
func TestDeterministicTruncationReproducible(t *testing.T) {
	p := randomKnapsack(21, 18)
	ref, err := SolveContext(context.Background(), p, Options{Workers: 1, Deterministic: true, MaxNodes: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stop != StopNodeLimit {
		t.Skipf("instance solved in %d nodes; truncation not exercised", ref.Nodes)
	}
	for _, workers := range []int{2, 8} {
		r, err := SolveContext(context.Background(), p, Options{Workers: workers, Deterministic: true, MaxNodes: 40})
		if err != nil {
			t.Fatal(err)
		}
		if r.Nodes != ref.Nodes || math.Abs(r.Objective-ref.Objective) > 1e-9 || r.Status != ref.Status {
			t.Errorf("workers=%d: (%v, %v, %d nodes) != serial (%v, %v, %d nodes)",
				workers, r.Status, r.Objective, r.Nodes, ref.Status, ref.Objective, ref.Nodes)
		}
	}
}

// TestObjectiveValue pins the public evaluation helper used by warm-start
// construction.
func TestObjectiveValue(t *testing.T) {
	p := binaryProblem(true, []float64{3, 5})
	if got := p.ObjectiveValue([]float64{1, 1}); math.Abs(got-8) > 1e-12 {
		t.Fatalf("ObjectiveValue = %v, want 8", got)
	}
}
