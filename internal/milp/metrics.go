package milp

import "flex/internal/obs"

// Metrics instruments the branch-and-bound search across solves. A nil
// *Metrics disables instrumentation.
type Metrics struct {
	// Solves counts Solve calls that ran the search (input validation
	// failures are excluded).
	Solves *obs.Counter
	// Nodes counts branch-and-bound nodes explored.
	Nodes *obs.Counter
	// SimplexIterations counts simplex pivots spent in node relaxations.
	SimplexIterations *obs.Counter
	// DeadlineHits counts solves stopped by the time budget (context
	// deadline or Options.TimeLimit) — the paper's "stop the ILP solver
	// after 5 minutes" path.
	DeadlineHits *obs.Counter
	// NodeLimitHits counts solves stopped by Options.MaxNodes.
	NodeLimitHits *obs.Counter
	// Cancellations counts solves aborted by context cancellation.
	Cancellations *obs.Counter
	// IncumbentImprovements counts adoptions of a strictly better
	// incumbent across all solves.
	IncumbentImprovements *obs.Counter
	// WorkerIdleNanos accumulates time workers spent blocked on an empty
	// frontier; high values relative to solve time mean the tree is too
	// narrow for the configured worker count.
	WorkerIdleNanos *obs.Counter
	// NodesPerSec is the node throughput of the most recent solve.
	NodesPerSec *obs.Gauge
}

// NewMetrics registers the milp metrics on r (idempotent).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Solves:                r.Counter("flex_milp_solves_total", "branch-and-bound searches run"),
		Nodes:                 r.Counter("flex_milp_nodes_total", "branch-and-bound nodes explored"),
		SimplexIterations:     r.Counter("flex_milp_simplex_iterations_total", "simplex pivots spent in node relaxations"),
		DeadlineHits:          r.Counter("flex_milp_deadline_hits_total", "solves stopped by the time limit"),
		NodeLimitHits:         r.Counter("flex_milp_node_limit_hits_total", "solves stopped by the node limit"),
		Cancellations:         r.Counter("flex_milp_cancellations_total", "solves aborted by context cancellation"),
		IncumbentImprovements: r.Counter("flex_milp_incumbent_improvements_total", "strictly better incumbents adopted"),
		WorkerIdleNanos:       r.Counter("flex_milp_worker_idle_nanoseconds_total", "time workers spent waiting on an empty frontier"),
		NodesPerSec:           r.Gauge("flex_milp_nodes_per_second", "node throughput of the most recent solve"),
	}
}

// record folds one finished solve into the counters (nil-safe).
func (m *Metrics) record(res *Result) {
	if m == nil {
		return
	}
	m.Solves.Inc()
	if res.Nodes > 0 {
		m.Nodes.Add(uint64(res.Nodes))
	}
	if res.SimplexIterations > 0 {
		m.SimplexIterations.Add(uint64(res.SimplexIterations))
	}
	if res.DeadlineHit {
		m.DeadlineHits.Inc()
	}
	if res.NodeLimitHit {
		m.NodeLimitHits.Inc()
	}
	if res.Stop == StopCanceled {
		m.Cancellations.Inc()
	}
	if res.IncumbentImprovements > 0 {
		m.IncumbentImprovements.Add(uint64(res.IncumbentImprovements))
	}
	if res.WorkerIdle > 0 {
		m.WorkerIdleNanos.Add(uint64(res.WorkerIdle.Nanoseconds()))
	}
	if res.Elapsed > 0 {
		m.NodesPerSec.Set(float64(res.Nodes) / res.Elapsed.Seconds())
	}
}
