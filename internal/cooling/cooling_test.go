package cooling

import (
	"math"
	"testing"
	"time"

	"flex/internal/power"
	"flex/internal/workload"
)

func twoDomains() []Domain {
	return []Domain{
		{ID: 0, Name: "dom-A", Units: 4, UnitCFM: 40000, RedundantUnits: 1},
		{ID: 1, Name: "dom-B", Units: 4, UnitCFM: 40000, RedundantUnits: 1},
	}
}

// rackSet loads domain A close to its full (zero-reserve) airflow and
// domain B lightly.
func rackSet() []Rack {
	var racks []Rack
	mk := func(id string, dom DomainID, cat workload.Category, kw float64) Rack {
		r := Rack{ID: id, Domain: dom, Power: power.Watts(kw * 1e3),
			CFMPerWatt: 0.1, Category: cat}
		if cat == workload.NonRedundantCapable {
			r.FlexPower = power.Watts(0.85 * float64(r.Power))
		}
		return r
	}
	// Domain A: 1.5MW → 150k CFM of 160k total.
	for i := 0; i < 3; i++ {
		racks = append(racks, mk("a-sr-"+string(rune('0'+i)), 0, workload.SoftwareRedundant, 100))
	}
	for i := 0; i < 6; i++ {
		racks = append(racks, mk("a-cap-"+string(rune('0'+i)), 0, workload.NonRedundantCapable, 100))
	}
	for i := 0; i < 6; i++ {
		racks = append(racks, mk("a-nc-"+string(rune('0'+i)), 0, workload.NonRedundantNonCapable, 100))
	}
	// Domain B: 0.5MW → 50k CFM of 160k (plenty spare).
	for i := 0; i < 5; i++ {
		racks = append(racks, mk("b-nc-"+string(rune('0'+i)), 1, workload.NonRedundantNonCapable, 100))
	}
	return racks
}

func TestDomainCFMAccounting(t *testing.T) {
	d := twoDomains()[0]
	if d.TotalCFM() != 160000 {
		t.Fatalf("TotalCFM = %v", d.TotalCFM())
	}
	if d.ConventionalCFM() != 120000 {
		t.Fatalf("ConventionalCFM = %v", d.ConventionalCFM())
	}
	if d.CFMWithFailures(2) != 80000 {
		t.Fatalf("CFMWithFailures(2) = %v", d.CFMWithFailures(2))
	}
	if d.CFMWithFailures(99) != 0 {
		t.Fatalf("CFMWithFailures(99) = %v", d.CFMWithFailures(99))
	}
}

func TestTimeToCriticalGradual(t *testing.T) {
	p := DefaultThermalParams()
	// No deficit → effectively never.
	if p.TimeToCritical(100, 100) < 24*time.Hour {
		t.Fatal("no deficit should never go critical")
	}
	// Small deficit whose steady state stays below critical → never.
	// deficit 20%: steady = 25 + 12 = 37°C < 45°C.
	if p.TimeToCritical(100, 80) < 24*time.Hour {
		t.Fatal("small deficit should never go critical")
	}
	// 50% deficit: steady = 55°C > 45°C → finite window, and — the §VI
	// claim — measured in minutes, far beyond the 10-second power budget.
	w := p.TimeToCritical(100, 50)
	if w < time.Minute || w > time.Hour {
		t.Fatalf("window = %v, want minutes", w)
	}
	if w < 10*power.FlexLatencyBudget {
		t.Fatalf("cooling window %v should dwarf the 10s power budget", w)
	}
	// More deficit → shorter window.
	if p.TimeToCritical(100, 30) >= w {
		t.Fatal("window must shrink with deficit")
	}
}

func TestPlanMitigationPrefersMigration(t *testing.T) {
	// Lose 2 of 4 units in domain A: available 80k vs demand 150k.
	plan, err := PlanMitigation(twoDomains(), rackSet(), 0, 2, DefaultThermalParams())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Safe {
		t.Fatalf("plan not safe, residual %v", plan.ResidualDeficitCFM)
	}
	if plan.Window < time.Minute {
		t.Fatalf("window = %v", plan.Window)
	}
	// Safety needs demand ≤ available/(1−1/3) = 120k: recover ≥30k. The
	// three 10k-CFM SR migrations cover it exactly — no throttling, no
	// shutdown (mitigation stops at safety, §VI's "no extra cost" story).
	kinds := map[MitigationKind]int{}
	for _, s := range plan.Steps {
		kinds[s.Kind]++
		if s.Kind == Migrate && s.Target != 1 {
			t.Fatalf("migration to %d, want domain B", s.Target)
		}
	}
	if kinds[Migrate] != 3 {
		t.Fatalf("migrations = %d, want 3", kinds[Migrate])
	}
	if kinds[Throttle] != 0 || kinds[Shutdown] != 0 {
		t.Fatalf("unnecessary strict actions: %v", kinds)
	}
	recovered := 0.0
	for _, s := range plan.Steps {
		recovered += s.CFMRecovered
	}
	if recovered < 30000-1e-6 {
		t.Fatalf("recovered %v CFM, need ≥30k", recovered)
	}
}

func TestPlanMitigationNoDeficitNoSteps(t *testing.T) {
	// Losing only the redundant unit leaves 120k ≥ 150k? No: 150k > 120k.
	// Use a single failed unit with lighter load: drop domain A to 100k
	// demand by removing racks.
	racks := rackSet()[:10] // 3 SR + 6 cap + 1 nc = 1.0MW → 100k CFM
	plan, err := PlanMitigation(twoDomains(), racks, 0, 1, DefaultThermalParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 || plan.ResidualDeficitCFM != 0 {
		t.Fatalf("expected no-op plan, got %+v", plan)
	}
	if plan.Window < 24*time.Hour {
		t.Fatalf("no-deficit window = %v", plan.Window)
	}
}

func TestPlanMitigationFallsBackToShutdown(t *testing.T) {
	// Remove domain B's spare capacity: fill it to the brim so nothing
	// can migrate; the plan must throttle and then shut down SR racks.
	racks := rackSet()
	for i := 0; i < 11; i++ {
		racks = append(racks, Rack{
			ID: "b-fill-" + string(rune('a'+i)), Domain: 1,
			Power: power.Watts(100e3), CFMPerWatt: 0.1,
			Category: workload.NonRedundantNonCapable,
		})
	}
	plan, err := PlanMitigation(twoDomains(), racks, 0, 2, DefaultThermalParams())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[MitigationKind]int{}
	for _, s := range plan.Steps {
		kinds[s.Kind]++
	}
	if kinds[Migrate] != 0 {
		t.Fatalf("migrated %d racks into a full domain", kinds[Migrate])
	}
	if kinds[Shutdown] == 0 {
		t.Fatal("expected shutdowns as last resort")
	}
	if kinds[Throttle] == 0 {
		t.Fatal("expected throttles before shutdowns")
	}
}

func TestPlanMitigationUnknownDomain(t *testing.T) {
	if _, err := PlanMitigation(twoDomains(), rackSet(), 99, 1, DefaultThermalParams()); err == nil {
		t.Fatal("expected error")
	}
}

func TestMitigationKindString(t *testing.T) {
	if Migrate.String() != "migrate" || Throttle.String() != "throttle" || Shutdown.String() != "shutdown" {
		t.Error("kind strings")
	}
	if MitigationKind(9).String() != "MitigationKind(9)" {
		t.Error("unknown kind")
	}
}

func TestRackCFM(t *testing.T) {
	r := Rack{Power: 10e3, CFMPerWatt: 0.1}
	if math.Abs(r.CFM()-1000) > 1e-9 {
		t.Fatalf("CFM = %v", r.CFM())
	}
}
