// Package cooling models the §VI cooling story: like reserved power,
// redundant cooling capacity can be allocated to additional servers.
// Unlike a power failover — where batteries give ~10 seconds — losing a
// redundant cooling unit raises the room temperature *gradually*, leaving
// several minutes for mitigation. The preferred mitigation is migrating
// software-redundant workloads to another cooling domain (service healing
// in another AZ); strict Flex throttling/shutdown is the last resort.
package cooling

import (
	"fmt"
	"math"
	"sort"
	"time"

	"flex/internal/power"
	"flex/internal/workload"
)

// DomainID identifies a cooling domain (a set of racks sharing CRAH units
// and airflow containment).
type DomainID int

// Domain is one cooling domain: Units CRAH units of UnitCFM airflow each.
// A conventional design reserves RedundantUnits of them; a zero-reserved
// design sizes the IT load against all units and relies on mitigation.
type Domain struct {
	ID             DomainID
	Name           string
	Units          int
	UnitCFM        float64
	RedundantUnits int
}

// TotalCFM is the airflow with every unit running.
func (d Domain) TotalCFM() float64 { return float64(d.Units) * d.UnitCFM }

// CFMWithFailures is the airflow after failedUnits units are lost.
func (d Domain) CFMWithFailures(failedUnits int) float64 {
	remaining := d.Units - failedUnits
	if remaining < 0 {
		remaining = 0
	}
	return float64(remaining) * d.UnitCFM
}

// ConventionalCFM is the airflow a conventional design counts on (total
// minus the reserved units) — the §VI claim is that sizing against
// TotalCFM instead deploys more servers at no extra cooling cost.
func (d Domain) ConventionalCFM() float64 {
	return d.CFMWithFailures(d.RedundantUnits)
}

// Rack is one rack from the cooling system's perspective.
type Rack struct {
	ID     string
	Domain DomainID
	// Power is the rack's heat load.
	Power power.Watts
	// CFMPerWatt is the airflow the rack requires per watt.
	CFMPerWatt float64
	// Category decides the available mitigations: software-redundant
	// racks migrate (scale out in another AZ), cap-able racks throttle,
	// non-cap-able racks can only be saved by others making room.
	Category workload.Category
	// FlexPower is the throttle floor for cap-able racks.
	FlexPower power.Watts
}

// CFM is the rack's airflow demand.
func (r Rack) CFM() float64 { return float64(r.Power) * r.CFMPerWatt }

// ThermalParams model a domain's temperature dynamics under an airflow
// deficit: the inlet temperature approaches
//
//	Ambient + DegCPerDeficit × deficitFraction
//
// with first-order time constant Tau — temperature rise is gradual
// (paper: "several minutes are available for mitigation").
type ThermalParams struct {
	AmbientC       float64
	CriticalC      float64
	DegCPerDeficit float64 // steady-state °C above ambient at 100% deficit
	Tau            time.Duration
}

// DefaultThermalParams is a representative air-cooled room: 25°C supply,
// 45°C critical inlet, 60°C asymptotic rise at total airflow loss, and a
// 5-minute thermal time constant.
func DefaultThermalParams() ThermalParams {
	return ThermalParams{AmbientC: 25, CriticalC: 45, DegCPerDeficit: 60, Tau: 5 * time.Minute}
}

// TimeToCritical returns how long after the airflow drops the inlet
// temperature reaches critical, or a very large duration when the
// steady-state temperature never gets there (deficit small enough).
func (p ThermalParams) TimeToCritical(demandCFM, availableCFM float64) time.Duration {
	const never = 100 * 365 * 24 * time.Hour
	if demandCFM <= availableCFM || demandCFM <= 0 {
		return never
	}
	deficit := (demandCFM - availableCFM) / demandCFM // fraction of airflow missing
	steady := p.AmbientC + p.DegCPerDeficit*deficit
	if steady <= p.CriticalC {
		return never
	}
	// Solve Ambient + (steady−Ambient)(1−e^{−t/τ}) = Critical.
	frac := (p.CriticalC - p.AmbientC) / (steady - p.AmbientC)
	t := -float64(p.Tau) * math.Log(1-frac)
	return time.Duration(t)
}

// MitigationKind labels a planned step.
type MitigationKind int

// Mitigation kinds, in preference order (paper §VI: "other mitigations,
// such as workload migration to another cooling domain, can be used
// before enacting strict Flex capping/shutdown actions").
const (
	Migrate MitigationKind = iota
	Throttle
	Shutdown
)

// String implements fmt.Stringer.
func (k MitigationKind) String() string {
	switch k {
	case Migrate:
		return "migrate"
	case Throttle:
		return "throttle"
	case Shutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("MitigationKind(%d)", int(k))
	}
}

// Mitigation is one planned step.
type Mitigation struct {
	Rack string
	Kind MitigationKind
	// Target is the destination domain for Migrate.
	Target DomainID
	// CFMRecovered is the airflow demand removed from the failed domain.
	CFMRecovered float64
}

// SafeDeficitFraction is the largest airflow-deficit fraction whose
// steady-state temperature stays below critical — deficits below it need
// no mitigation at all.
func (p ThermalParams) SafeDeficitFraction() float64 {
	if p.DegCPerDeficit <= 0 {
		return 1
	}
	f := (p.CriticalC - p.AmbientC) / p.DegCPerDeficit
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// PlanResult is the outcome of PlanMitigation.
type PlanResult struct {
	Steps []Mitigation
	// Window is the time available before the domain goes critical (from
	// the moment of the failure, before any mitigation).
	Window time.Duration
	// Safe reports whether the post-mitigation steady-state temperature
	// stays below critical.
	Safe bool
	// ResidualDeficitCFM is the airflow recovery still missing for safety
	// (0 when Safe).
	ResidualDeficitCFM float64
}

// PlanMitigation plans the response to losing failedUnits cooling units in
// domain failed: first migrate software-redundant racks into other
// domains' spare airflow, then throttle cap-able racks (less power, less
// heat), and only then shut down remaining software-redundant racks.
func PlanMitigation(domains []Domain, racks []Rack, failed DomainID, failedUnits int, params ThermalParams) (PlanResult, error) {
	var fd *Domain
	spare := map[DomainID]float64{}
	for i := range domains {
		d := domains[i]
		demand := 0.0
		for _, r := range racks {
			if r.Domain == d.ID {
				demand += r.CFM()
			}
		}
		if d.ID == failed {
			fd = &domains[i]
			continue
		}
		spare[d.ID] = d.TotalCFM() - demand
	}
	if fd == nil {
		return PlanResult{}, fmt.Errorf("cooling: unknown domain %d", failed)
	}
	demand := 0.0
	for _, r := range racks {
		if r.Domain == failed {
			demand += r.CFM()
		}
	}
	available := fd.CFMWithFailures(failedUnits)
	res := PlanResult{Window: params.TimeToCritical(demand, available)}
	// Mitigation only needs to bring the demand down to the level whose
	// steady-state temperature is sub-critical — the room tolerates a
	// bounded airflow deficit indefinitely.
	fSafe := params.SafeDeficitFraction()
	safeDemand := math.Inf(1)
	if fSafe < 1 {
		safeDemand = available / (1 - fSafe)
	}
	// cfmEps absorbs floating-point noise in the CFM arithmetic.
	const cfmEps = 1e-3
	needed := demand - safeDemand
	if needed <= cfmEps {
		res.Safe = true
		return res, nil
	}

	// Candidates in the failed domain, largest airflow first within each
	// preference tier.
	var srRacks, capRacks []Rack
	for _, r := range racks {
		if r.Domain != failed {
			continue
		}
		switch r.Category {
		case workload.SoftwareRedundant:
			srRacks = append(srRacks, r)
		case workload.NonRedundantCapable:
			capRacks = append(capRacks, r)
		}
	}
	byCFM := func(rs []Rack) {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].CFM() != rs[j].CFM() {
				return rs[i].CFM() > rs[j].CFM()
			}
			return rs[i].ID < rs[j].ID
		})
	}
	byCFM(srRacks)
	byCFM(capRacks)

	deficit := needed
	// Tier 1: migrate SR racks into spare airflow elsewhere.
	domIDs := make([]DomainID, 0, len(spare))
	for id := range spare {
		domIDs = append(domIDs, id)
	}
	sort.Slice(domIDs, func(i, j int) bool { return spare[domIDs[i]] > spare[domIDs[j]] })
	migrated := map[string]bool{}
	for _, r := range srRacks {
		if deficit <= cfmEps {
			break
		}
		for _, id := range domIDs {
			if spare[id] >= r.CFM() {
				spare[id] -= r.CFM()
				deficit -= r.CFM()
				migrated[r.ID] = true
				res.Steps = append(res.Steps, Mitigation{
					Rack: r.ID, Kind: Migrate, Target: id, CFMRecovered: r.CFM(),
				})
				sort.Slice(domIDs, func(i, j int) bool { return spare[domIDs[i]] > spare[domIDs[j]] })
				break
			}
		}
	}
	// Tier 2: throttle cap-able racks (airflow demand scales with power).
	for _, r := range capRacks {
		if deficit <= cfmEps {
			break
		}
		rec := float64(r.Power-r.FlexPower) * r.CFMPerWatt
		if rec <= 0 {
			continue
		}
		deficit -= rec
		res.Steps = append(res.Steps, Mitigation{Rack: r.ID, Kind: Throttle, CFMRecovered: rec})
	}
	// Tier 3: shut down the SR racks that could not migrate.
	for _, r := range srRacks {
		if deficit <= cfmEps {
			break
		}
		if migrated[r.ID] {
			continue
		}
		deficit -= r.CFM()
		res.Steps = append(res.Steps, Mitigation{Rack: r.ID, Kind: Shutdown, CFMRecovered: r.CFM()})
	}
	if deficit > cfmEps {
		res.ResidualDeficitCFM = deficit
	} else {
		res.Safe = true
	}
	return res, nil
}
