package power

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewTripCurveValidation(t *testing.T) {
	if _, err := NewTripCurve("empty", nil); err == nil {
		t.Error("expected error for empty curve")
	}
	if _, err := NewTripCurve("bad-frac", []TripPoint{{LoadFraction: 0.9, Tolerance: time.Second}}); err == nil {
		t.Error("expected error for fraction <= 1")
	}
	if _, err := NewTripCurve("bad-tol", []TripPoint{{LoadFraction: 1.2, Tolerance: 0}}); err == nil {
		t.Error("expected error for non-positive tolerance")
	}
	if _, err := NewTripCurve("non-monotone", []TripPoint{
		{LoadFraction: 1.1, Tolerance: time.Second},
		{LoadFraction: 1.2, Tolerance: 2 * time.Second},
	}); err == nil {
		t.Error("expected error for increasing tolerance")
	}
}

func TestEndOfLifeCurvePaperAnchor(t *testing.T) {
	// Paper §IV-A: at the worst-case failover load of 133%, the UPS
	// provides 10 seconds of tolerance (end of battery life).
	got := EndOfLifeTripCurve.Tolerance(4.0 / 3.0)
	if got != 10*time.Second {
		t.Fatalf("tolerance at 133%% = %v, want 10s", got)
	}
	if BeginOfLifeTripCurve.Tolerance(4.0/3.0) != 30*time.Second {
		t.Fatal("begin-of-life at 133% should be 30s")
	}
}

func TestToleranceBelowRatingNeverTrips(t *testing.T) {
	for _, f := range []float64{0, 0.5, 0.99, 1.0} {
		if got := EndOfLifeTripCurve.Tolerance(f); got < 24*time.Hour {
			t.Errorf("tolerance at %.2f = %v, want effectively infinite", f, got)
		}
	}
}

func TestToleranceMonotoneDecreasing(t *testing.T) {
	f := func(a, b uint16) bool {
		fa := 1.0 + float64(a%1000)/1000.0 // 1.0 .. 2.0
		fb := 1.0 + float64(b%1000)/1000.0
		if fa > fb {
			fa, fb = fb, fa
		}
		return EndOfLifeTripCurve.Tolerance(fa) >= EndOfLifeTripCurve.Tolerance(fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestToleranceClampsBeyondLastPoint(t *testing.T) {
	last := EndOfLifeTripCurve.Points()[len(EndOfLifeTripCurve.Points())-1]
	if got := EndOfLifeTripCurve.Tolerance(3.0); got != last.Tolerance {
		t.Fatalf("tolerance beyond curve = %v, want %v", got, last.Tolerance)
	}
}

func TestToleranceInterpolatesBetweenPoints(t *testing.T) {
	// Between 1.20 (28s) and 1.333 (10s): tolerance must be inside (10,28).
	got := EndOfLifeTripCurve.Tolerance(1.27)
	if got <= 10*time.Second || got >= 28*time.Second {
		t.Fatalf("interpolated tolerance = %v, want in (10s, 28s)", got)
	}
}

func TestPointsReturnsCopy(t *testing.T) {
	ps := EndOfLifeTripCurve.Points()
	ps[0].Tolerance = 0
	if EndOfLifeTripCurve.Points()[0].Tolerance == 0 {
		t.Fatal("Points exposed internal state")
	}
}

func TestFlexLatencyBudgetWithinWorstCaseTolerance(t *testing.T) {
	// The 10-second Flex budget must not exceed the end-of-life tolerance
	// at the worst-case 133% failover load — this is the paper's design
	// equation for the end-to-end deadline.
	tol := EndOfLifeTripCurve.Tolerance(Redundancy{X: 4, Y: 3}.WorstCaseFailoverFraction())
	if FlexLatencyBudget > tol {
		t.Fatalf("latency budget %v exceeds worst-case tolerance %v", FlexLatencyBudget, tol)
	}
}

func TestSimulateCascadeNoActionCausesOutage(t *testing.T) {
	topo := fourN3Room(t, 1)
	// Full allocation, 100% utilization: failover pushes survivors to 133%.
	load := NewPairLoad(topo)
	for i := range load {
		load[i] = 9.6 * MW / 6
	}
	out := topo.SimulateCascade(load, 0, EndOfLifeTripCurve, time.Hour)
	if !out.Outage {
		t.Fatal("expected cascading outage without corrective action")
	}
	if len(out.Tripped) < 2 {
		t.Fatalf("expected at least one overload trip, got %v", out.Tripped)
	}
	if out.TimeToOutage <= 0 || out.TimeToOutage > time.Hour {
		t.Fatalf("TimeToOutage = %v", out.TimeToOutage)
	}
}

func TestSimulateCascadeStableAfterShaving(t *testing.T) {
	topo := fourN3Room(t, 1)
	// Conventional allocation: failover keeps survivors at capacity.
	load := NewPairLoad(topo)
	for i := range load {
		load[i] = 7.2 * MW / 6
	}
	out := topo.SimulateCascade(load, 0, EndOfLifeTripCurve, time.Hour)
	if out.Outage {
		t.Fatal("conventional allocation must not cascade")
	}
	if len(out.Tripped) != 1 {
		t.Fatalf("Tripped = %v, want only the initial failure", out.Tripped)
	}
}

func TestSimulateCascadeHorizonBoundsTrips(t *testing.T) {
	topo := fourN3Room(t, 1)
	load := NewPairLoad(topo)
	for i := range load {
		load[i] = 9.6 * MW / 6
	}
	// Survivors sit at 133% → first trip at 10s. A 5s horizon means the
	// corrective action (modeled as "we stop simulating") arrives first.
	out := topo.SimulateCascade(load, 0, EndOfLifeTripCurve, 5*time.Second)
	if out.Outage || len(out.Tripped) != 1 {
		t.Fatalf("cascade within 5s horizon: %+v", out)
	}
}
