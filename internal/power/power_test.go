package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRedundancyValidate(t *testing.T) {
	cases := []struct {
		r  Redundancy
		ok bool
	}{
		{Redundancy{4, 3}, true},
		{Redundancy{2, 1}, true},
		{Redundancy{5, 4}, true},
		{Redundancy{3, 3}, false},
		{Redundancy{3, 4}, false},
		{Redundancy{1, 0}, false},
		{Redundancy{0, 0}, false},
	}
	for _, c := range cases {
		err := c.r.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", c.r, err, c.ok)
		}
	}
}

func TestRedundancyFractions4N3(t *testing.T) {
	r := Redundancy{X: 4, Y: 3}
	if got := r.AllocationLimitFraction(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AllocationLimitFraction = %v, want 0.75", got)
	}
	if got := r.ReservedFraction(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("ReservedFraction = %v, want 0.25", got)
	}
	// The paper's headline: 33% more servers for 4N/3.
	if got := r.ExtraServersFraction(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("ExtraServersFraction = %v, want 1/3", got)
	}
	// Worst-case failover load is 133% of UPS rating.
	if got := r.WorstCaseFailoverFraction(); math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("WorstCaseFailoverFraction = %v, want 4/3", got)
	}
}

func TestRedundancyString(t *testing.T) {
	if s := (Redundancy{4, 3}).String(); s != "4N/3" {
		t.Errorf("String = %q, want 4N/3", s)
	}
}

func TestWattsString(t *testing.T) {
	cases := []struct {
		w    Watts
		want string
	}{
		{500, "500W"},
		{14.4 * KW, "14.4kW"},
		{1.2 * MW, "1.20MW"},
		{9.6 * MW, "9.60MW"},
	}
	for _, c := range cases {
		if got := c.w.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.w), got, c.want)
		}
	}
}

// fourN3Room builds the paper's standard 9.6MW 4N/3 room: 4 × 2.4MW UPSes.
func fourN3Room(t *testing.T, pairsPerCombo int) *Topology {
	t.Helper()
	topo, err := NewRoom(RoomConfig{
		Design:              Redundancy{X: 4, Y: 3},
		UPSCapacity:         2.4 * MW,
		PairsPerCombination: pairsPerCombo,
	})
	if err != nil {
		t.Fatalf("NewRoom: %v", err)
	}
	return topo
}

func TestNewRoom4N3Shape(t *testing.T) {
	topo := fourN3Room(t, 1)
	if len(topo.UPSes) != 4 {
		t.Fatalf("UPSes = %d, want 4", len(topo.UPSes))
	}
	if len(topo.Pairs) != 6 { // C(4,2)
		t.Fatalf("Pairs = %d, want 6", len(topo.Pairs))
	}
	if got := topo.ProvisionedPower(); got != 9.6*MW {
		t.Fatalf("ProvisionedPower = %v, want 9.6MW", got)
	}
	if got := topo.ConventionalAllocatablePower(); got != 7.2*MW {
		t.Fatalf("ConventionalAllocatablePower = %v, want 7.2MW", got)
	}
	// Every UPS feeds exactly x-1 = 3 pairs.
	for u := range topo.UPSes {
		if got := len(topo.PairsOn(UPSID(u))); got != 3 {
			t.Errorf("UPS %d feeds %d pairs, want 3", u, got)
		}
	}
	if got := topo.AllocationLimit(0); got != 1.8*MW {
		t.Errorf("AllocationLimit = %v, want 1.8MW", got)
	}
}

func TestNewRoomValidation(t *testing.T) {
	if _, err := NewRoom(RoomConfig{Design: Redundancy{3, 3}, UPSCapacity: MW, PairsPerCombination: 1}); err == nil {
		t.Error("expected error for invalid design")
	}
	if _, err := NewRoom(RoomConfig{Design: Redundancy{4, 3}, UPSCapacity: 0, PairsPerCombination: 1}); err == nil {
		t.Error("expected error for zero capacity")
	}
	if _, err := NewRoom(RoomConfig{Design: Redundancy{4, 3}, UPSCapacity: MW, PairsPerCombination: 0}); err == nil {
		t.Error("expected error for zero pairs per combination")
	}
}

func TestNewCustomTopologyValidation(t *testing.T) {
	ups := []UPS{{ID: 0, Name: "a", Capacity: MW}, {ID: 1, Name: "b", Capacity: MW}}
	if _, err := NewCustomTopology(Redundancy{2, 1}, ups,
		[]PDUPair{{ID: 0, UPSes: [2]UPSID{0, 0}}}); err == nil {
		t.Error("expected error for self-pair")
	}
	if _, err := NewCustomTopology(Redundancy{2, 1}, ups,
		[]PDUPair{{ID: 0, UPSes: [2]UPSID{0, 5}}}); err == nil {
		t.Error("expected error for unknown UPS")
	}
	if _, err := NewCustomTopology(Redundancy{2, 1}, ups[:1], nil); err == nil {
		t.Error("expected error for wrong UPS count")
	}
	if _, err := NewCustomTopology(Redundancy{2, 1}, ups,
		[]PDUPair{{ID: 7, UPSes: [2]UPSID{0, 1}}}); err == nil {
		t.Error("expected error for non-dense pair IDs")
	}
	ok := []PDUPair{{ID: 0, UPSes: [2]UPSID{0, 1}}}
	if _, err := NewCustomTopology(Redundancy{2, 1}, ups, ok); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestPartnerUPS(t *testing.T) {
	topo := fourN3Room(t, 1)
	p := topo.Pairs[0] // UPSes {0,1}
	if got := topo.PartnerUPS(p.ID, p.UPSes[0]); got != p.UPSes[1] {
		t.Errorf("PartnerUPS = %d, want %d", got, p.UPSes[1])
	}
	if got := topo.PartnerUPS(p.ID, p.UPSes[1]); got != p.UPSes[0] {
		t.Errorf("PartnerUPS = %d, want %d", got, p.UPSes[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-feeding UPS")
		}
	}()
	topo.PartnerUPS(p.ID, 3) // pair 0 is {0,1}; UPS 3 does not feed it
}

func TestUPSLoadsUniform(t *testing.T) {
	topo := fourN3Room(t, 1)
	// Load every pair with 1MW: each UPS feeds 3 pairs at half each = 1.5MW.
	load := NewPairLoad(topo)
	for i := range load {
		load[i] = MW
	}
	for u, w := range topo.UPSLoads(load) {
		if math.Abs(float64(w-1.5*MW)) > 1 {
			t.Errorf("UPS %d load = %v, want 1.5MW", u, w)
		}
	}
}

func TestFailoverLoadsTransfer(t *testing.T) {
	topo := fourN3Room(t, 1)
	load := NewPairLoad(topo)
	for i := range load {
		load[i] = MW
	}
	loads := topo.FailoverLoads(load, 0)
	if loads[0] != 0 {
		t.Fatalf("failed UPS load = %v, want 0", loads[0])
	}
	// Each survivor previously had 1.5MW; it gains the other half (0.5MW)
	// of the single pair it shared with UPS 0 → 2.0MW.
	for u := 1; u < 4; u++ {
		if math.Abs(float64(loads[u]-2.0*MW)) > 1 {
			t.Errorf("survivor %d load = %v, want 2.0MW", u, loads[u])
		}
	}
	// Conservation: total survivor load equals total pair load.
	var sum Watts
	for _, w := range loads {
		sum += w
	}
	if math.Abs(float64(sum-load.Total())) > 1 {
		t.Errorf("failover total = %v, want %v", sum, load.Total())
	}
}

// Property: load is conserved under failover for arbitrary loads, and the
// worst-survivor fraction at full allocation approaches x/(x-1).
func TestFailoverConservationProperty(t *testing.T) {
	topo := fourN3Room(t, 2)
	f := func(raw []uint16, failedRaw uint8) bool {
		load := NewPairLoad(topo)
		for i := range load {
			if i < len(raw) {
				load[i] = Watts(raw[i]) * KW
			}
		}
		failed := UPSID(int(failedRaw) % len(topo.UPSes))
		loads := topo.FailoverLoads(load, failed)
		var sum Watts
		for _, w := range loads {
			sum += w
		}
		return math.Abs(float64(sum-load.Total())) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorstSurvivorLoadFractionAtFullAllocation(t *testing.T) {
	topo := fourN3Room(t, 1)
	// Allocate 100% of provisioned power uniformly: 9.6MW over 6 pairs.
	load := NewPairLoad(topo)
	for i := range load {
		load[i] = 9.6 * MW / 6
	}
	got := topo.WorstSurvivorLoadFraction(load)
	if math.Abs(got-4.0/3.0) > 1e-9 {
		t.Fatalf("worst survivor fraction = %v, want 4/3", got)
	}
}

func TestOverdrawnAndHeadroom(t *testing.T) {
	topo := fourN3Room(t, 1)
	loads := []Watts{2.5 * MW, 2.4 * MW, 1 * MW, 2.41 * MW}
	over := topo.Overdrawn(loads, 0)
	if len(over) != 2 || over[0] != 0 || over[1] != 3 {
		t.Fatalf("Overdrawn = %v, want [0 3]", over)
	}
	// With 200kW slack only UPS 0 is overdrawn.
	over = topo.Overdrawn(loads, 200*KW)
	if len(over) != 0 {
		t.Fatalf("Overdrawn with slack = %v, want none", over)
	}
	hr := topo.Headroom(loads)
	if hr[2] != 1.4*MW {
		t.Fatalf("Headroom[2] = %v, want 1.4MW", hr[2])
	}
	if hr[0] >= 0 {
		t.Fatalf("Headroom[0] = %v, want negative", hr[0])
	}
}

func TestNormalLimitChecks(t *testing.T) {
	topo := fourN3Room(t, 1)
	load := NewPairLoad(topo)
	// 7.2MW allocated uniformly = conventional limit exactly.
	for i := range load {
		load[i] = 7.2 * MW / 6
	}
	if !topo.NormalWithinConventionalLimits(load) {
		t.Error("7.2MW uniform should satisfy conventional limits")
	}
	if !topo.NormalWithinCapacity(load) {
		t.Error("7.2MW uniform should satisfy capacity")
	}
	// 9.6MW uniform exceeds conventional limits but not capacity (Flex).
	for i := range load {
		load[i] = 9.6 * MW / 6
	}
	if topo.NormalWithinConventionalLimits(load) {
		t.Error("9.6MW uniform should violate conventional limits")
	}
	if !topo.NormalWithinCapacity(load) {
		t.Error("9.6MW uniform should satisfy Flex capacity constraint")
	}
}

func TestFailoverWithinCapacity(t *testing.T) {
	topo := fourN3Room(t, 1)
	load := NewPairLoad(topo)
	for i := range load {
		load[i] = 7.2 * MW / 6 // conventional allocation survives failover
	}
	for f := 0; f < 4; f++ {
		if !topo.FailoverWithinCapacity(load, UPSID(f)) {
			t.Errorf("conventional allocation should survive failure of UPS %d", f)
		}
	}
	for i := range load {
		load[i] = 9.6 * MW / 6 // full allocation does not (before shaving)
	}
	for f := 0; f < 4; f++ {
		if topo.FailoverWithinCapacity(load, UPSID(f)) {
			t.Errorf("full allocation should overdraw on failure of UPS %d", f)
		}
	}
}

func TestShaveTarget(t *testing.T) {
	topo := fourN3Room(t, 1)
	load := NewPairLoad(topo)
	for i := range load {
		load[i] = 9.6 * MW / 6
	}
	need, ids := topo.ShaveTarget(load, 0, 0)
	if len(ids) != 3 {
		t.Fatalf("overloaded survivors = %v, want 3", ids)
	}
	// Each survivor is at 4/3 × 2.4MW = 3.2MW → must shed 0.8MW.
	for _, u := range ids {
		if math.Abs(float64(need[u]-0.8*MW)) > 1 {
			t.Errorf("shave need[%d] = %v, want 0.8MW", u, need[u])
		}
	}
	// With a buffer the requirement grows by the buffer.
	need, _ = topo.ShaveTarget(load, 0, 100*KW)
	for u, w := range need {
		if math.Abs(float64(w-0.9*MW)) > 1 {
			t.Errorf("buffered shave need[%d] = %v, want 0.9MW", u, w)
		}
	}
}

func TestPairLoadHelpers(t *testing.T) {
	topo := fourN3Room(t, 1)
	load := NewPairLoad(topo)
	load[0] = MW
	c := load.Clone()
	c[0] = 2 * MW
	if load[0] != MW {
		t.Error("Clone aliases the original")
	}
	if load.Total() != MW {
		t.Errorf("Total = %v, want 1MW", load.Total())
	}
	// Short PairLoads treat missing pairs as zero.
	short := PairLoad{MW}
	loads := topo.UPSLoads(short)
	if loads[0] != MW/2 || loads[1] != MW/2 {
		t.Errorf("short PairLoad UPS loads = %v", loads)
	}
}

func TestPairFeeds(t *testing.T) {
	topo := fourN3Room(t, 1)
	p := topo.Pairs[0]
	if !topo.PairFeeds(p.ID, p.UPSes[0]) || !topo.PairFeeds(p.ID, p.UPSes[1]) {
		t.Error("PairFeeds should be true for both upstream UPSes")
	}
	for u := 0; u < 4; u++ {
		id := UPSID(u)
		if id != p.UPSes[0] && id != p.UPSes[1] && topo.PairFeeds(p.ID, id) {
			t.Errorf("PairFeeds(%d) should be false", u)
		}
	}
}
