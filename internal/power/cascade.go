package power

import (
	"sort"
	"time"
)

// CascadeOutcome describes how a room fares after an initial UPS failure if
// the given pair loads persist unchanged (i.e. no corrective action, or the
// corrective action reflected in the loads has already been applied).
type CascadeOutcome struct {
	// Tripped lists every UPS that goes out of service, in order: the
	// initial failure first, then each overload trip.
	Tripped []UPSID
	// Outage reports whether any PDU-pair lost both upstream UPSes, i.e.
	// racks lost power entirely — the cascading failure Flex must prevent.
	Outage bool
	// TimeToOutage is when the outage occurs relative to the initial
	// failure (meaningful only when Outage is true).
	TimeToOutage time.Duration
}

// SimulateCascade plays out the overload trip dynamics after initialFailure
// with constant pair loads: at each step the surviving UPS with the
// shortest remaining tolerance trips (if any is overloaded), transferring
// its load onward, until either no UPS is overloaded or some PDU-pair has
// lost both of its UPSes. The horizon bounds the simulation; overloads that
// would trip after the horizon (e.g. because corrective action will arrive
// first) are ignored.
//
// This is the safety model behind the paper's Figure 4(right): load
// exceeding surviving capacity must be shaved within the trip tolerance or
// the initial failure cascades into an outage.
func (t *Topology) SimulateCascade(load PairLoad, initialFailure UPSID, curve TripCurve, horizon time.Duration) CascadeOutcome {
	out := CascadeOutcome{Tripped: []UPSID{initialFailure}}
	failed := make([]bool, len(t.UPSes))
	failed[initialFailure] = true
	elapsed := time.Duration(0)

	for {
		loads, outagePair := t.loadsWithFailures(load, failed)
		if outagePair {
			out.Outage = true
			out.TimeToOutage = elapsed
			return out
		}
		// Find the overloaded survivor that trips soonest.
		trip := -1
		var tripAt time.Duration
		for i, u := range t.UPSes {
			if failed[i] || loads[i] <= u.Capacity {
				continue
			}
			tol := curve.Tolerance(float64(loads[i] / u.Capacity))
			if trip == -1 || tol < tripAt {
				trip, tripAt = i, tol
			}
		}
		if trip == -1 || elapsed+tripAt > horizon {
			return out // stable (or survives past the horizon)
		}
		elapsed += tripAt
		failed[trip] = true
		out.Tripped = append(out.Tripped, UPSID(trip))
	}
}

// loadsWithFailures computes UPS loads when a set of UPSes has failed.
// It reports whether any loaded pair has lost both upstream UPSes.
func (t *Topology) loadsWithFailures(load PairLoad, failed []bool) (loads []Watts, outage bool) {
	loads = make([]Watts, len(t.UPSes))
	for _, p := range t.Pairs {
		w := load.at(p.ID)
		if w <= 0 {
			continue
		}
		a, b := p.UPSes[0], p.UPSes[1]
		fa, fb := failed[a], failed[b]
		switch {
		case fa && fb:
			outage = true
		case fa:
			loads[b] += w
		case fb:
			loads[a] += w
		default:
			loads[a] += w / 2
			loads[b] += w / 2
		}
	}
	return loads, outage
}

// WorstSurvivorLoadFraction returns, across all single-UPS failures, the
// maximum post-failover load on any surviving UPS as a fraction of its
// capacity. For a uniformly loaded xN/y room at 100% utilization this
// approaches x/(x-1).
func (t *Topology) WorstSurvivorLoadFraction(load PairLoad) float64 {
	worst := 0.0
	for f := range t.UPSes {
		loads := t.FailoverLoads(load, UPSID(f))
		for u, w := range loads {
			if UPSID(u) == UPSID(f) {
				continue
			}
			frac := float64(w / t.UPSes[u].Capacity)
			if frac > worst {
				worst = frac
			}
		}
	}
	return worst
}

// ShaveTarget returns, for the failure of UPS f, how much power must be
// shed from each overloaded surviving UPS to bring it back to capacity
// minus buffer. The result maps UPSID → required reduction (only entries
// with a positive requirement are present). Keys are returned in a sorted
// slice alongside for deterministic iteration.
func (t *Topology) ShaveTarget(load PairLoad, f UPSID, buffer Watts) (map[UPSID]Watts, []UPSID) {
	loads := t.FailoverLoads(load, f)
	need := make(map[UPSID]Watts)
	var ids []UPSID
	for u := range t.UPSes {
		if UPSID(u) == f {
			continue
		}
		limit := t.UPSes[u].Capacity - buffer
		if loads[u] > limit {
			need[UPSID(u)] = loads[u] - limit
			ids = append(ids, UPSID(u))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return need, ids
}
