// Package power models the distributed-redundant datacenter power delivery
// infrastructure that Flex manages (paper §II-A, Figure 2).
//
// The model is parametric in the redundancy design xN/y: a room has x UPS
// devices, each IT rack is fed by a PDU-pair connected to two distinct
// upstream UPSes in an active-active configuration, and the PDU-pairs are
// spread across UPS combinations so that each UPS shares roughly 1/(x-1) of
// its load with each other UPS. When a UPS fails, its share of every
// PDU-pair it feeds transfers instantaneously to the pair's other UPS.
//
// The package provides normal-operation and failover load flow (paper
// Equations 2 and 4), the UPS allocation limit (capacity × y/x), overload
// trip curves (Figure 6), and a cascading-failure simulation.
package power

import "fmt"

// Watts is electrical power in watts. All power quantities in this
// repository are expressed in Watts.
type Watts float64

// KW and MW are convenience multipliers: 14.4 * power.KW.
const (
	KW Watts = 1e3
	MW Watts = 1e6
)

// String renders the power with an adaptive unit.
func (w Watts) String() string {
	switch {
	case w >= MW || w <= -MW:
		return fmt.Sprintf("%.2fMW", float64(w)/1e6)
	case w >= KW || w <= -KW:
		return fmt.Sprintf("%.1fkW", float64(w)/1e3)
	default:
		return fmt.Sprintf("%.0fW", float64(w))
	}
}

// Redundancy describes an xN/y distributed-redundant design: x active
// supplies jointly carry a load that must survive the loss of any one
// supply while staying within the remaining supplies' rated capacity when
// the room is operated conventionally (i.e. with reserved power).
//
// The paper's production design is 4N/3 (X=4, Y=3). N+1 and 2N map onto
// this scheme as {X: n + 1, Y: n} and {X: 2, Y: 1} respectively for
// capacity accounting, although their wiring differs.
type Redundancy struct {
	X int // number of active supplies (UPSes)
	Y int // supplies that must be able to carry the full allocated load
}

// Validate reports whether the design is meaningful (X > Y >= 1).
func (r Redundancy) Validate() error {
	if r.Y < 1 || r.X <= r.Y {
		return fmt.Errorf("power: invalid redundancy %dN/%d: need X > Y >= 1", r.X, r.Y)
	}
	return nil
}

// String renders the design in the paper's "4N/3" notation.
func (r Redundancy) String() string { return fmt.Sprintf("%dN/%d", r.X, r.Y) }

// AllocationLimitFraction is the fraction of each UPS's capacity that a
// conventional (non-Flex) datacenter may allocate: y/x (paper §II-A).
func (r Redundancy) AllocationLimitFraction() float64 {
	return float64(r.Y) / float64(r.X)
}

// ReservedFraction is the fraction of provisioned power a conventional
// datacenter keeps reserved: 1 - y/x.
func (r Redundancy) ReservedFraction() float64 {
	return 1 - r.AllocationLimitFraction()
}

// ExtraServersFraction is the relative increase in deployable servers when
// Flex allocates all reserved power: x/y - 1 (33% for 4N/3).
func (r Redundancy) ExtraServersFraction() float64 {
	return float64(r.X)/float64(r.Y) - 1
}

// WorstCaseFailoverFraction is the worst-case load on a surviving UPS
// during a single-supply failover at 100% utilization of provisioned power,
// as a fraction of UPS capacity: x/(x-1) ... for the paper's 4N/3 design
// each surviving UPS takes 4/3 ≈ 133% of its rating.
func (r Redundancy) WorstCaseFailoverFraction() float64 {
	return float64(r.X) / float64(r.X-1)
}
