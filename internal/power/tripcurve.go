package power

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// TripPoint is one point on a UPS overload tolerance curve: at LoadFraction
// of rated capacity the UPS can sustain the overload for Tolerance before
// tripping.
type TripPoint struct {
	LoadFraction float64 // load / rated capacity, > 1 for overload
	Tolerance    time.Duration
}

// TripCurve is a UPS overload tolerance curve (paper Figure 6). Tolerance
// is interpolated log-linearly between points; loads at or below the rated
// capacity (fraction <= 1 beyond the first point) never trip.
type TripCurve struct {
	Name   string
	points []TripPoint // sorted by LoadFraction ascending, all > 1
}

// NewTripCurve builds a curve from points. Points must have LoadFraction
// > 1 and strictly decreasing tolerance with increasing load.
func NewTripCurve(name string, points []TripPoint) (TripCurve, error) {
	if len(points) == 0 {
		return TripCurve{}, fmt.Errorf("power: trip curve %q needs at least one point", name)
	}
	ps := make([]TripPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].LoadFraction < ps[j].LoadFraction })
	for i, p := range ps {
		if p.LoadFraction <= 1 {
			return TripCurve{}, fmt.Errorf("power: trip point %d has load fraction %.3f <= 1", i, p.LoadFraction)
		}
		if p.Tolerance <= 0 {
			return TripCurve{}, fmt.Errorf("power: trip point %d has non-positive tolerance", i)
		}
		if i > 0 && p.Tolerance >= ps[i-1].Tolerance {
			return TripCurve{}, fmt.Errorf("power: trip curve %q tolerance must decrease with load", name)
		}
	}
	return TripCurve{Name: name, points: ps}, nil
}

// Tolerance returns how long the UPS sustains a load of loadFraction × its
// rated capacity before tripping. Loads at or below rating return a very
// large duration (no trip). Between curve points the tolerance is
// interpolated linearly in log(time); beyond the last point it clamps to
// the last point's tolerance.
func (c TripCurve) Tolerance(loadFraction float64) time.Duration {
	const never = 100 * 365 * 24 * time.Hour
	if len(c.points) == 0 || loadFraction <= 1 {
		return never
	}
	first := c.points[0]
	if loadFraction <= first.LoadFraction {
		// Interpolate from "infinite" at 1.0 down to the first point using
		// the same log-linear rule anchored at 10× the first tolerance.
		anchor := TripPoint{LoadFraction: 1.0, Tolerance: first.Tolerance * 20}
		return interpLog(anchor, first, loadFraction)
	}
	for i := 1; i < len(c.points); i++ {
		if loadFraction <= c.points[i].LoadFraction {
			return interpLog(c.points[i-1], c.points[i], loadFraction)
		}
	}
	return c.points[len(c.points)-1].Tolerance
}

func interpLog(a, b TripPoint, f float64) time.Duration {
	t := (f - a.LoadFraction) / (b.LoadFraction - a.LoadFraction)
	la := math.Log(float64(a.Tolerance))
	lb := math.Log(float64(b.Tolerance))
	return time.Duration(math.Exp(la + t*(lb-la)))
}

// Points returns a copy of the curve's points.
func (c TripCurve) Points() []TripPoint {
	ps := make([]TripPoint, len(c.points))
	copy(ps, c.points)
	return ps
}

// The paper's UPSes provide 10 seconds of tolerance at the worst-case
// failover load of 133% at end of battery life, plus an additional 3.5
// minutes of ride-through at 100% load while generators start (Figure 6
// and §IV-A). Begin-of-life batteries tolerate roughly 3× longer.
var (
	// EndOfLifeTripCurve is the conservative curve Flex designs against.
	EndOfLifeTripCurve = mustCurve("end-of-life", []TripPoint{
		{LoadFraction: 1.05, Tolerance: 150 * time.Second},
		{LoadFraction: 1.10, Tolerance: 75 * time.Second},
		{LoadFraction: 1.20, Tolerance: 28 * time.Second},
		{LoadFraction: 4.0 / 3.0, Tolerance: 10 * time.Second},
		{LoadFraction: 1.50, Tolerance: 3 * time.Second},
	})
	// BeginOfLifeTripCurve reflects fresh batteries.
	BeginOfLifeTripCurve = mustCurve("begin-of-life", []TripPoint{
		{LoadFraction: 1.05, Tolerance: 450 * time.Second},
		{LoadFraction: 1.10, Tolerance: 225 * time.Second},
		{LoadFraction: 1.20, Tolerance: 84 * time.Second},
		{LoadFraction: 4.0 / 3.0, Tolerance: 30 * time.Second},
		{LoadFraction: 1.50, Tolerance: 9 * time.Second},
	})
)

// RideThroughAt100Pct is the additional time available at exactly 100% load
// after shaving, while generators start and take over (paper §IV-A).
const RideThroughAt100Pct = 210 * time.Second // 3.5 minutes

// FlexLatencyBudget is the end-to-end deadline the paper enforces on
// Flex-Online — failover detection, telemetry collection, and controller
// actions must complete within this window (paper §IV-A).
const FlexLatencyBudget = 10 * time.Second

func mustCurve(name string, pts []TripPoint) TripCurve {
	c, err := NewTripCurve(name, pts)
	if err != nil {
		panic(err)
	}
	return c
}
