package power

// PairLoad is the power drawn (or allocated) on each PDU-pair, indexed by
// PDUPairID. A PairLoad with fewer entries than the topology has pairs
// treats the missing pairs as unloaded.
type PairLoad []Watts

// NewPairLoad returns a zero PairLoad sized for topology t.
func NewPairLoad(t *Topology) PairLoad { return make(PairLoad, len(t.Pairs)) }

// Total returns the sum of all pair loads.
func (l PairLoad) Total() Watts {
	var sum Watts
	for _, w := range l {
		sum += w
	}
	return sum
}

// Clone returns a copy of l.
func (l PairLoad) Clone() PairLoad {
	c := make(PairLoad, len(l))
	copy(c, l)
	return c
}

// CapacityTolerance is the slack allowed when checking loads against
// rated capacities. Loads are MW-scale; rounding noise from the placement
// ILP (which works in MW) is far below this.
const CapacityTolerance Watts = 2

// at returns the load on pair p, treating out-of-range as zero.
func (l PairLoad) at(p PDUPairID) Watts {
	if int(p) >= len(l) {
		return 0
	}
	return l[p]
}

// UPSLoads computes the normal-operation load on every UPS (paper Eq. 2):
// each UPS carries half of every PDU-pair it feeds.
func (t *Topology) UPSLoads(load PairLoad) []Watts {
	out := make([]Watts, len(t.UPSes))
	for _, p := range t.Pairs {
		half := load.at(p.ID) / 2
		out[p.UPSes[0]] += half
		out[p.UPSes[1]] += half
	}
	return out
}

// FailoverLoads computes the load on every UPS immediately after UPS
// `failed` goes out of service (paper Eq. 4's left-hand side, before any
// corrective action): pairs fed by the failed UPS transfer their full load
// to the surviving partner, other pairs are unchanged. The failed UPS's
// entry is 0.
func (t *Topology) FailoverLoads(load PairLoad, failed UPSID) []Watts {
	out := make([]Watts, len(t.UPSes))
	for _, p := range t.Pairs {
		w := load.at(p.ID)
		a, b := p.UPSes[0], p.UPSes[1]
		switch failed {
		case a:
			out[b] += w
		case b:
			out[a] += w
		default:
			out[a] += w / 2
			out[b] += w / 2
		}
	}
	out[failed] = 0
	return out
}

// Overdrawn returns the UPSes whose load exceeds their rated capacity by
// more than slack (use slack 0 for a strict check).
func (t *Topology) Overdrawn(loads []Watts, slack Watts) []UPSID {
	var over []UPSID
	for i, u := range t.UPSes {
		if loads[i] > u.Capacity+slack {
			over = append(over, UPSID(i))
		}
	}
	return over
}

// Headroom returns, for every UPS, capacity minus load (negative when
// overdrawn).
func (t *Topology) Headroom(loads []Watts) []Watts {
	out := make([]Watts, len(t.UPSes))
	for i, u := range t.UPSes {
		out[i] = u.Capacity - loads[i]
	}
	return out
}

// NormalWithinConventionalLimits reports whether the normal-operation UPS
// loads respect the conventional per-UPS allocation limit (capacity × y/x).
// A conventional datacenter enforces this; a Flex datacenter instead allows
// loads up to full capacity during normal operation.
func (t *Topology) NormalWithinConventionalLimits(load PairLoad) bool {
	for u, w := range t.UPSLoads(load) {
		if w > t.AllocationLimit(UPSID(u))+CapacityTolerance {
			return false
		}
	}
	return true
}

// NormalWithinCapacity reports whether normal-operation UPS loads are
// within rated capacity — the Flex normal-operation constraint (Eq. 2 with
// the full capacity on the right-hand side).
func (t *Topology) NormalWithinCapacity(load PairLoad) bool {
	for u, w := range t.UPSLoads(load) {
		if w > t.UPSes[u].Capacity+CapacityTolerance {
			return false
		}
	}
	return true
}

// FailoverWithinCapacity reports whether, for the failure of UPS f, the
// post-shave loads given by shavedLoad keep every surviving UPS within
// rated capacity (paper Eq. 4). Callers pass the pair loads after applying
// CapPow to each deployment.
func (t *Topology) FailoverWithinCapacity(shavedLoad PairLoad, f UPSID) bool {
	loads := t.FailoverLoads(shavedLoad, f)
	for u := range t.UPSes {
		if UPSID(u) == f {
			continue
		}
		if loads[u] > t.UPSes[u].Capacity+CapacityTolerance {
			return false
		}
	}
	return true
}
