package power

import (
	"fmt"
	"sort"
)

// UPSID identifies a UPS within a Topology (0-based, dense).
type UPSID int

// PDUPairID identifies a PDU-pair within a Topology (0-based, dense).
type PDUPairID int

// UPS is an uninterruptible power supply. Its Capacity is the rated
// continuous output; overload behaviour is governed by a TripCurve.
type UPS struct {
	ID       UPSID
	Name     string
	Capacity Watts
}

// PDUPair is a pair of power distribution units feeding a set of racks in
// active-active mode. Each PDU of the pair is connected to one of the two
// distinct upstream UPSes, so under normal operation each UPS carries half
// of the pair's load, and during failover of one UPS the other carries all
// of it (paper Figure 2).
type PDUPair struct {
	ID    PDUPairID
	Name  string
	UPSes [2]UPSID // the two distinct upstream UPSes; UPSes[0] < UPSes[1]
}

// Topology is the electrical topology of one datacenter room: the
// redundancy design, the UPS fleet, and the PDU-pairs with their upstream
// mapping. Topologies are immutable after construction.
type Topology struct {
	Design Redundancy
	UPSes  []UPS
	Pairs  []PDUPair

	pairsByUPS [][]PDUPairID // UPSID -> pairs it feeds
}

// RoomConfig configures NewRoom.
type RoomConfig struct {
	// Design is the redundancy pattern at the UPS level, e.g. {X:4, Y:3}.
	Design Redundancy
	// UPSCapacity is the rated capacity of each UPS. The room's provisioned
	// power is Design.X × UPSCapacity.
	UPSCapacity Watts
	// PairsPerCombination is how many PDU-pairs to instantiate for each
	// unordered combination of two distinct UPSes. With X=4 there are 6
	// combinations; PairsPerCombination=3 yields 18 PDU-pairs.
	PairsPerCombination int
}

// NewRoom builds the room topology used throughout the paper: x UPSes of
// equal capacity and PDU-pairs spread uniformly across all C(x,2) UPS
// combinations, which realizes the "each UPS shares roughly 1/(x-1) of its
// load with each other UPS" property of the distributed-redundant design.
func NewRoom(cfg RoomConfig) (*Topology, error) {
	if err := cfg.Design.Validate(); err != nil {
		return nil, err
	}
	if cfg.UPSCapacity <= 0 {
		return nil, fmt.Errorf("power: UPS capacity must be positive, got %v", cfg.UPSCapacity)
	}
	if cfg.PairsPerCombination < 1 {
		return nil, fmt.Errorf("power: PairsPerCombination must be >= 1, got %d", cfg.PairsPerCombination)
	}
	t := &Topology{Design: cfg.Design}
	for i := 0; i < cfg.Design.X; i++ {
		t.UPSes = append(t.UPSes, UPS{
			ID:       UPSID(i),
			Name:     fmt.Sprintf("UPS-%d", i+1),
			Capacity: cfg.UPSCapacity,
		})
	}
	for a := 0; a < cfg.Design.X; a++ {
		for b := a + 1; b < cfg.Design.X; b++ {
			for k := 0; k < cfg.PairsPerCombination; k++ {
				id := PDUPairID(len(t.Pairs))
				t.Pairs = append(t.Pairs, PDUPair{
					ID:    id,
					Name:  fmt.Sprintf("PDU-%d%d-%c", a+1, b+1, 'a'+k),
					UPSes: [2]UPSID{UPSID(a), UPSID(b)},
				})
			}
		}
	}
	t.index()
	return t, nil
}

// NewCustomTopology builds a topology from an explicit UPS list and
// PDU-pair→UPS mapping, validating the mapping. It is used by tests and by
// callers modelling non-uniform rooms.
func NewCustomTopology(design Redundancy, upses []UPS, pairs []PDUPair) (*Topology, error) {
	if err := design.Validate(); err != nil {
		return nil, err
	}
	if len(upses) != design.X {
		return nil, fmt.Errorf("power: design %v needs %d UPSes, got %d", design, design.X, len(upses))
	}
	t := &Topology{Design: design, UPSes: upses, Pairs: pairs}
	for i, u := range upses {
		if u.ID != UPSID(i) {
			return nil, fmt.Errorf("power: UPS %d has ID %d; IDs must be dense and ordered", i, u.ID)
		}
		if u.Capacity <= 0 {
			return nil, fmt.Errorf("power: UPS %s has non-positive capacity", u.Name)
		}
	}
	for i, p := range pairs {
		if p.ID != PDUPairID(i) {
			return nil, fmt.Errorf("power: pair %d has ID %d; IDs must be dense and ordered", i, p.ID)
		}
		a, b := p.UPSes[0], p.UPSes[1]
		if a == b {
			return nil, fmt.Errorf("power: pair %s connects to a single UPS", p.Name)
		}
		if int(a) < 0 || int(a) >= len(upses) || int(b) < 0 || int(b) >= len(upses) {
			return nil, fmt.Errorf("power: pair %s references unknown UPS", p.Name)
		}
	}
	t.index()
	return t, nil
}

func (t *Topology) index() {
	t.pairsByUPS = make([][]PDUPairID, len(t.UPSes))
	for _, p := range t.Pairs {
		t.pairsByUPS[p.UPSes[0]] = append(t.pairsByUPS[p.UPSes[0]], p.ID)
		t.pairsByUPS[p.UPSes[1]] = append(t.pairsByUPS[p.UPSes[1]], p.ID)
	}
	for _, ids := range t.pairsByUPS {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
}

// ProvisionedPower is the sum of all UPS capacities — the paper's
// "provisioned" power (reserve plus non-reserve).
func (t *Topology) ProvisionedPower() Watts {
	var sum Watts
	for _, u := range t.UPSes {
		sum += u.Capacity
	}
	return sum
}

// ConventionalAllocatablePower is the power a non-Flex datacenter may
// allocate: provisioned × y/x. A Flex datacenter allocates the full
// provisioned power instead.
func (t *Topology) ConventionalAllocatablePower() Watts {
	return Watts(float64(t.ProvisionedPower()) * t.Design.AllocationLimitFraction())
}

// AllocationLimit is the conventional per-UPS allocation limit:
// capacity × y/x (paper §II-A).
func (t *Topology) AllocationLimit(u UPSID) Watts {
	return Watts(float64(t.UPSes[u].Capacity) * t.Design.AllocationLimitFraction())
}

// PairsOn returns the PDU-pairs fed by UPS u, in ID order.
func (t *Topology) PairsOn(u UPSID) []PDUPairID { return t.pairsByUPS[u] }

// PartnerUPS returns the other upstream UPS of pair p, given one of its
// two UPSes. It panics if u does not feed p.
func (t *Topology) PartnerUPS(p PDUPairID, u UPSID) UPSID {
	pair := t.Pairs[p]
	switch u {
	case pair.UPSes[0]:
		return pair.UPSes[1]
	case pair.UPSes[1]:
		return pair.UPSes[0]
	}
	panic(fmt.Sprintf("power: UPS %d does not feed pair %d", u, p))
}

// PairFeeds reports whether pair p is fed by UPS u.
func (t *Topology) PairFeeds(p PDUPairID, u UPSID) bool {
	pair := t.Pairs[p]
	return pair.UPSes[0] == u || pair.UPSes[1] == u
}
