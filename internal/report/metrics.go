package report

import (
	"encoding/csv"
	"io"
	"strconv"

	"flex/internal/obs"
)

// WriteMetricsSummary writes every metric in the registry as CSV: counters
// and gauges carry a value; histograms carry count, sum, and the p50/p95/p99
// quantile estimates. Rows are sorted by metric name (registry order), so
// summaries of two runs diff cleanly.
func WriteMetricsSummary(w io.Writer, r *obs.Registry) error {
	cw := csv.NewWriter(w)
	header := []string{"metric", "labels", "kind", "value", "count", "sum", "p50", "p95", "p99"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range r.Snapshots() {
		labels := ""
		for i, l := range s.Labels {
			if i > 0 {
				labels += ","
			}
			labels += l.Name + "=" + l.Value
		}
		rec := []string{s.Name, labels, s.Kind.String(), "", "", "", "", "", ""}
		if s.Kind == obs.KindHistogram {
			rec[4] = strconv.FormatUint(s.Count, 10)
			rec[5] = f(s.Sum)
			rec[6] = f(s.Quantile(0.50))
			rec[7] = f(s.Quantile(0.95))
			rec[8] = f(s.Quantile(0.99))
		} else {
			rec[3] = f(s.Value)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
