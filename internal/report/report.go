// Package report renders experiment results as CSV, so the figures the
// benchmark harness reproduces can be regenerated, plotted, and diffed
// outside Go (the paper's figures are box plots and series; the CSV rows
// here carry exactly those statistics).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"flex/internal/emu"
	"flex/internal/sim"
	"flex/internal/stats"
	"flex/internal/workload"
)

// PolicyRow is one policy's box statistics for Figures 9 and 10.
type PolicyRow struct {
	Policy    string
	Stranded  stats.Box
	Imbalance stats.Box
}

// WritePolicyBoxes writes Figure 9/10 rows as CSV.
func WritePolicyBoxes(w io.Writer, rows []PolicyRow) error {
	cw := csv.NewWriter(w)
	header := []string{"policy",
		"stranded_min", "stranded_p25", "stranded_med", "stranded_p75", "stranded_max",
		"imbalance_min", "imbalance_p25", "imbalance_med", "imbalance_p75", "imbalance_max"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Policy,
			f(r.Stranded.Min), f(r.Stranded.P25), f(r.Stranded.Median), f(r.Stranded.P75), f(r.Stranded.Max),
			f(r.Imbalance.Min), f(r.Imbalance.P25), f(r.Imbalance.Median), f(r.Imbalance.P75), f(r.Imbalance.Max)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure12 writes one scenario's Figure 12 series as CSV.
func WriteFigure12(w io.Writer, scenario string, pts []sim.Figure12Point) error {
	cw := csv.NewWriter(w)
	header := []string{"scenario", "utilization",
		"impacted_mean", "impacted_std",
		"shutdown_mean", "shutdown_std",
		"throttled_mean", "throttled_std", "insufficient_runs"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{scenario, f(p.Utilization),
			f(p.Impacted.Mean), f(p.Impacted.Std),
			f(p.ShutDown.Mean), f(p.ShutDown.Std),
			f(p.Throttled.Mean), f(p.Throttled.Std),
			strconv.Itoa(p.Insufficient)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure13 writes the emulation timeline as CSV (Figure 13a+13b).
func WriteFigure13(w io.Writer, res *emu.Result) error {
	cw := csv.NewWriter(w)
	if len(res.Series) == 0 {
		return fmt.Errorf("report: empty emulation series")
	}
	n := len(res.Series[0].UPSPower)
	header := []string{"t_seconds", "stage"}
	for u := 0; u < n; u++ {
		header = append(header, fmt.Sprintf("ups%d_watts", u+1))
	}
	header = append(header, "sr_watts", "capable_watts", "noncapable_watts")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range res.Series {
		rec := []string{f(p.T.Seconds()), p.Stage}
		for _, v := range p.UPSPower {
			rec = append(rec, f(float64(v)))
		}
		rec = append(rec,
			f(float64(p.RackPower[workload.SoftwareRedundant])),
			f(float64(p.RackPower[workload.NonRedundantCapable])),
			f(float64(p.RackPower[workload.NonRedundantNonCapable])))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
