package report

import (
	"fmt"
	"io"

	"flex/internal/obs/slo"
)

// WriteSLOSummary renders the safety auditor's final state as a
// human-readable summary: one line per objective with its burn rates,
// the what-if probe record, and the /healthz transition history. The
// flexsim -slo episode experiment and flexmon print this after a run.
func WriteSLOSummary(w io.Writer, st slo.Status, transitions []slo.Transition) error {
	if _, err := fmt.Fprintf(w, "SLO summary (%d audit ticks, health %s):\n", st.Ticks, st.Health.State); err != nil {
		return err
	}
	for _, o := range st.Objectives {
		status := "ok"
		if o.Breached {
			status = "BREACHED"
		} else if o.Bad {
			status = "burning"
		}
		if _, err := fmt.Fprintf(w, "  %-20s target %.2f%%  fast burn %5.2fx  slow burn %5.2fx  %s\n",
			o.Name, o.Target*100, o.FastBurn, o.SlowBurn, status); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  what-if probe: %d rounds, %d infeasible, %d clean in a row (last %.3fs)\n",
		st.Probe.Rounds, st.Probe.Failures, st.Probe.CleanRounds, st.Probe.LastLatencySeconds); err != nil {
		return err
	}
	if st.EpisodeOpen {
		if _, err := fmt.Fprintf(w, "  open overdraw episode %d: budget burn %.0f%%\n",
			st.EpisodeID, st.BudgetBurn*100); err != nil {
			return err
		}
	}
	if len(transitions) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "  health transitions:"); err != nil {
		return err
	}
	for _, tr := range transitions {
		reason := ""
		if len(tr.Reasons) > 0 {
			reason = "  (" + tr.Reasons[0] + ")"
		}
		if _, err := fmt.Fprintf(w, "    %s  %s → %s%s\n",
			tr.Time.Format("15:04:05"), tr.From, tr.To, reason); err != nil {
			return err
		}
	}
	return nil
}
