package report

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"flex/internal/emu"
	"flex/internal/impact"
	"flex/internal/sim"
	"flex/internal/stats"
)

func TestWritePolicyBoxes(t *testing.T) {
	var buf bytes.Buffer
	rows := []PolicyRow{
		{Policy: "Random", Stranded: stats.Box{Min: 1, P25: 2, Median: 3, P75: 4, Max: 5},
			Imbalance: stats.Box{Min: 6, P25: 7, Median: 8, P75: 9, Max: 10}},
	}
	if err := WritePolicyBoxes(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "policy,stranded_min") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Random,1.0000,2.0000,3.0000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteFigure12(t *testing.T) {
	var buf bytes.Buffer
	pts := []sim.Figure12Point{{
		Utilization: 0.8,
		Impacted:    stats.MeanStd{Mean: 10, Std: 1},
		ShutDown:    stats.MeanStd{Mean: 20, Std: 2},
		Throttled:   stats.MeanStd{Mean: 30, Std: 3},
	}}
	if err := WriteFigure12(&buf, "Realistic-1", pts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Realistic-1,0.8000,10.0000,1.0000,20.0000") {
		t.Fatalf("csv = %q", out)
	}
}

func TestWriteFigure13(t *testing.T) {
	sc := impact.Realistic1()
	res, err := emu.Run(context.Background(), emu.Config{
		Scenario:  &sc,
		Tick:      2 * time.Second,
		FailAt:    2 * time.Minute,
		RecoverAt: 4 * time.Minute,
		Duration:  6 * time.Minute,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigure13(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Series)+1 {
		t.Fatalf("lines = %d, want %d", len(lines), len(res.Series)+1)
	}
	if !strings.HasPrefix(lines[0], "t_seconds,stage,ups1_watts") {
		t.Fatalf("header = %q", lines[0])
	}
	if err := WriteFigure13(&buf, &emu.Result{}); err == nil {
		t.Fatal("expected error for empty series")
	}
}
