package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEq(got, 2.5) {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev single = %v, want 0", got)
	}
	// Population std of {2,4,4,4,5,5,7,9} is exactly 2.
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestBoxOf(t *testing.T) {
	b := BoxOf([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || !almostEq(b.Median, 3) {
		t.Fatalf("BoxOf = %+v", b)
	}
	if b.P25 != 2 || b.P75 != 4 {
		t.Fatalf("quartiles = %+v", b)
	}
	if BoxOf(nil) != (Box{}) {
		t.Fatal("BoxOf(nil) should be zero Box")
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs { // sanitize NaN/Inf from quick
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		b := BoxOf(xs)
		return b.Min <= b.P25 && b.P25 <= b.Median &&
			b.Median <= b.P75 && b.P75 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, p1, p2 float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // under
	h.Add(11) // over
	if h.Count != 12 || h.Under != 1 || h.Over != 1 {
		t.Fatalf("counts: %+v", h)
	}
	if got := h.FractionAtOrAbove(5); !almostEq(got, 6.0/12.0) {
		t.Fatalf("FractionAtOrAbove(5) = %v", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestNines(t *testing.T) {
	if got := Nines(0.9999); !almostEq(got, 4) {
		t.Fatalf("Nines(0.9999) = %v, want 4", got)
	}
	if got := Nines(0.999); !almostEq(got, 3) {
		t.Fatalf("Nines(0.999) = %v, want 3", got)
	}
	if !math.IsInf(Nines(1), 1) {
		t.Fatal("Nines(1) should be +Inf")
	}
	if Nines(0) != 0 || Nines(-1) != 0 {
		t.Fatal("Nines(<=0) should be 0")
	}
}

func TestMeanStdString(t *testing.T) {
	ms := MeanStdOf([]float64{1, 1, 1})
	if ms.Mean != 1 || ms.Std != 0 {
		t.Fatalf("MeanStdOf = %+v", ms)
	}
	if ms.String() != "1.00±0.00" {
		t.Fatalf("String = %q", ms.String())
	}
}

func TestBoxString(t *testing.T) {
	s := BoxOf([]float64{1, 2, 3}).String()
	if s == "" {
		t.Fatal("empty box string")
	}
}
